//===--- auto_placement.cpp - Automatic block insertion --------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// Demonstrates the refinement loop the paper envisions in Section 1 /
// Section 4.6: start from an unannotated program, and let the analysis
// insert symbolic blocks where type checking fails — "this approach
// resembles abstraction refinement".
//
//===----------------------------------------------------------------------===//

#include "lang/AstPrinter.h"
#include "lang/Parser.h"
#include "mix/AutoPlacement.h"

#include <iostream>

using namespace mix;

namespace {

void refineAndReport(const char *Title, const char *Source,
                     const TypeEnv &Gamma = {}) {
  std::cout << "== " << Title << " ==\n";
  std::cout << "input    : " << Source << "\n";
  AstContext Ctx;
  DiagnosticEngine Diags;
  const Expr *Program = parseExpression(Source, Ctx, Diags);
  if (!Program) {
    std::cout << Diags.str();
    return;
  }
  AutoPlacementResult R =
      autoPlaceSymbolicBlocks(Ctx, Program, Gamma, Diags);
  if (R.ResultType) {
    std::cout << "refined  : " << printExpr(R.Program) << "\n";
    std::cout << "result   : " << R.ResultType->str() << " ("
              << R.BlocksInserted << " block(s) inserted)\n\n";
  } else {
    std::cout << "gave up after " << R.Refinements << " refinement(s):\n"
              << Diags.str() << "\n";
  }
}

} // namespace

int main() {
  refineAndReport("dead ill-typed branch",
                  "if true then 5 else (1 + true)");

  refineAndReport(
      "the div idiom",
      "(fun (y: int) : int -> if y = 0 then 1 + true else 100 - y) 4");

  refineAndReport("write-then-correct",
                  "let x = ref 1 in (x := true; x := 2; !x + 1)");

  refineAndReport("two independent dead branches",
                  "(if true then 1 else (1 + true)) + "
                  "(if false then (true + 1) else 2)");

  // A genuine bug: no placement helps, and the refinement loop says so.
  AstContext Ctx;
  TypeEnv Gamma;
  Gamma["b"] = Ctx.types().boolType();
  refineAndReport("a real error stays an error",
                  "if b then 1 else (1 + true)", Gamma);
  return 0;
}
