//===--- sign_refinement.cpp - Local refinements of data ------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// Reproduces the "Local Refinements of Data" example of Section 2: a
// symbolic block forks three ways on the sign of an unknown integer, and
// the exhaustive() check proves the three path conditions cover every
// input. The example also shows what happens when a case is missing.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "mix/MixChecker.h"
#include "sign/SignMix.h"
#include "symexec/SymExecutor.h"

#include <iostream>

using namespace mix;

namespace {

/// Runs the sign-qualifier MIX instantiation (the full Section 2 example)
/// and prints the derived qualified type.
void signDemo() {
  std::cout << "\n== the sign-qualifier system, mixed ==\n";
  AstContext Ctx;
  DiagnosticEngine Diags;
  SignMixChecker Mix(Ctx.types(), Diags);

  SignEnv Gamma;
  Gamma["x"] = Mix.signTypes().intType(SignQual::Unknown);

  struct Case {
    const char *Label;
    const char *Source;
  } Cases[] = {
      {"pure checker cannot see the guard", "if 0 < x then x else 1"},
      {"symbolic block recovers pos", "{s if 0 < x then x else 1 s}"},
      {"the Section 2 split; typed blocks see refined x",
       "{s if 0 < x then {t x + x t} "
       "else if x = 0 then {t 7 t} else {t 0 - x t} s}"},
  };
  for (const Case &C : Cases) {
    DiagnosticEngine LocalDiags;
    SignMixChecker LocalMix(Ctx.types(), LocalDiags);
    SignEnv LocalGamma;
    LocalGamma["x"] = LocalMix.signTypes().intType(SignQual::Unknown);
    const Expr *E = parseExpression(C.Source, Ctx, LocalDiags);
    if (!E) {
      std::cerr << LocalDiags.str();
      continue;
    }
    const SType *S = LocalMix.checkTyped(E, LocalGamma);
    std::cout << "  " << C.Label << ":\n    " << C.Source << "\n    : "
              << (S ? S->str() : "rejected") << "\n";
  }
}

} // namespace

int main() {
  AstContext Ctx;
  DiagnosticEngine Diags;

  TypeEnv Gamma;
  Gamma["x"] = Ctx.types().intType();

  // The paper's sign split: each branch would, in a richer type system,
  // refine x to pos/zero/neg int. Here the typed blocks stand for the
  // refined regions.
  const char *Split = "{s if 0 < x then {t 1 t} "
                      "else if x = 0 then {t 2 t} else {t 3 t} s}";
  std::cout << "three-way sign split: " << Split << "\n";

  const Expr *Program = parseExpression(Split, Ctx, Diags);
  if (!Program) {
    std::cerr << Diags.str();
    return 1;
  }

  MixChecker Mix(Ctx.types(), Diags);
  const Type *T = Mix.checkTyped(Program, Gamma);
  std::cout << "result: " << (T ? T->str() : "rejected") << "\n";
  std::cout << "paths explored: " << Mix.stats().PathsExplored
            << ", exhaustiveness checks: "
            << Mix.stats().ExhaustivenessChecks << "\n";
  std::cout << "solver: " << Mix.solver().queries() << " queries ("
            << Mix.solver().name() << ")\n\n";

  // Peek under the hood: run the symbolic executor directly and print
  // each path's condition and value — the <g ; m> states of Figure 2.
  std::cout << "the paths, as the executor sees them:\n";
  SymArena Arena(Ctx.types());
  SymExecutor Exec(Arena, Diags);
  SymEnv Env;
  Env["x"] = Arena.freshVar(Ctx.types().intType(), false, "x");
  const Expr *Bare = parseExpression(
      "if 0 < x then 1 else if x = 0 then 2 else 3", Ctx, Diags);
  for (const PathResult &P : Exec.run(Bare, Env).Paths)
    std::cout << "  path " << P.State.Path->str() << "  ==>  "
              << P.Value->str() << "\n";

  // A missing case: exhaustive() rejects. (We simulate an executor that
  // lost a path by checking validity of the incomplete disjunction.)
  std::cout << "\ndropping the zero case by hand:\n";
  smt::TermArena Terms;
  smt::SmtSolver Solver(Terms);
  const smt::Term *X = Terms.freshIntVar("x");
  const smt::Term *Pos = Terms.lt(Terms.intConst(0), X);
  const smt::Term *Neg = Terms.lt(X, Terms.intConst(0));
  const smt::Term *Zero = Terms.eqInt(X, Terms.intConst(0));
  std::cout << "  exhaustive(pos, neg)       : "
            << (Solver.isDefinitelyValid(Terms.orTerm(Pos, Neg)) ? "yes"
                                                                 : "NO")
            << "\n";
  std::cout << "  exhaustive(pos, neg, zero) : "
            << (Solver.isDefinitelyValid(
                    Terms.orList({Pos, Neg, Zero}))
                    ? "yes"
                    : "NO")
            << "\n";

  signDemo();
  return 0;
}
