//===--- vsftpd_nullness.cpp - MIXY on the vsftpd case studies ------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// Reproduces Section 4.5: runs pure type qualifier inference and the
// full MIXY analysis on each of the four vsftpd-derived case studies and
// prints the per-case warning counts — the paper's headline result is
// that every baseline false positive disappears under MIXY.
//
//===----------------------------------------------------------------------===//

#include "cfront/CParser.h"
#include "mixy/Mixy.h"
#include "mixy/VsftpdMini.h"

#include <iomanip>
#include <iostream>

using namespace mix::c;
using mix::DiagnosticEngine;

namespace {

unsigned baseline(const std::string &Source) {
  CAstContext Ctx;
  DiagnosticEngine Diags;
  const CProgram *P = parseC(Source, Ctx, Diags);
  if (!P) {
    std::cerr << Diags.str();
    return ~0u;
  }
  QualInference Inf(*P, Ctx, Diags);
  Inf.analyzeAll();
  Inf.solve();
  return Inf.reportWarnings();
}

unsigned mixy(const std::string &Source, MixyStats *StatsOut = nullptr,
              std::string *DiagsOut = nullptr) {
  CAstContext Ctx;
  DiagnosticEngine Diags;
  const CProgram *P = parseC(Source, Ctx, Diags);
  if (!P) {
    std::cerr << Diags.str();
    return ~0u;
  }
  MixyAnalysis Analysis(*P, Ctx, Diags);
  unsigned W = Analysis.run(MixyAnalysis::StartMode::Typed);
  if (StatsOut)
    *StatsOut = Analysis.stats();
  if (DiagsOut)
    *DiagsOut = Diags.str();
  return W;
}

} // namespace

int main() {
  const char *Names[] = {
      "Case 1: flow/path insensitivity in sockaddr_clear",
      "Case 2: path/context insensitivity in str_next_dirent",
      "Case 3: flow/path insensitivity in dns_resolve and main",
      "Case 4: symbolic function pointer in sysutil_exit",
  };

  std::cout << "MIXY on the vsftpd-derived case studies (Section 4.5)\n";
  std::cout << std::string(72, '-') << "\n";
  std::cout << std::left << std::setw(56) << "case" << std::setw(10)
            << "baseline" << "MIXY\n";
  std::cout << std::string(72, '-') << "\n";

  for (unsigned CaseNo = 1; CaseNo <= 4; ++CaseNo) {
    // Case 4 demonstrates the opposite direction (typed helping
    // symbolic), so its "baseline" is the un-annotated MIXY run.
    unsigned Base = CaseNo == 4
                        ? mixy(corpus::vsftpdCase(CaseNo, false))
                        : baseline(corpus::vsftpdCase(CaseNo, false));
    unsigned Mixed = mixy(corpus::vsftpdCase(CaseNo, true));
    std::cout << std::left << std::setw(56) << Names[CaseNo - 1]
              << std::setw(10) << Base << Mixed << "\n";
  }

  std::cout << std::string(72, '-') << "\n\n";

  // The merged corpus, with block-switching statistics.
  MixyStats Stats;
  MixyOptions Opts;
  std::string DiagText;
  CAstContext Ctx;
  DiagnosticEngine Diags;
  const CProgram *P = parseC(corpus::vsftpdFull(true), Ctx, Diags);
  if (!P) {
    std::cerr << Diags.str();
    return 1;
  }
  MixyOptions NoAlias;
  NoAlias.RestoreAliasing = false;
  MixyAnalysis Analysis(*P, Ctx, Diags, NoAlias);
  unsigned W = Analysis.run(MixyAnalysis::StartMode::Typed);
  Stats = Analysis.stats();

  std::cout << "full corpus (annotated, aliasing restoration off): " << W
            << " warnings\n";
  std::cout << "  typed->symbolic switches : "
            << Stats.SymbolicCallsFromTyped << "\n";
  std::cout << "  symbolic->typed switches : "
            << Stats.TypedCallsFromSymbolic << "\n";
  std::cout << "  symbolic block runs      : " << Stats.SymbolicBlockRuns
            << " (+" << Stats.SymbolicCacheHits << " cache hits)\n";
  std::cout << "  fixpoint iterations      : " << Stats.FixpointIterations
            << "\n";
  std::cout << "\nnote: with aliasing restoration on, the merged corpus "
               "keeps one residual\nwarning from context-insensitive "
               "alias pollution -- the limitation the paper\nreports in "
               "Section 4.6.\n";
  return 0;
}
