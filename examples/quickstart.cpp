//===--- quickstart.cpp - First steps with the MIX library ----------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// Parses a small program with typed and symbolic blocks, runs the mixed
// analysis, and contrasts it with pure type checking. Build and run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "lang/AstClone.h"
#include "lang/Parser.h"
#include "mix/MixChecker.h"

#include <iostream>

using namespace mix;

namespace {

void analyze(const char *Title, const char *Source) {
  std::cout << "== " << Title << " ==\n";
  std::cout << "program: " << Source << "\n";

  AstContext Ctx;
  DiagnosticEngine Diags;
  const Expr *Program = parseExpression(Source, Ctx, Diags);
  if (!Program) {
    std::cout << "parse error:\n" << Diags.str() << "\n";
    return;
  }

  // Pure type checking: strip the analysis blocks and run the checker
  // alone.
  {
    DiagnosticEngine PureDiags;
    TypeChecker Pure(Ctx.types(), PureDiags);
    const Type *T = Pure.check(cloneStrippingBlocks(Ctx, Program), {});
    std::cout << "type checking alone : "
              << (T ? T->str() : "rejected") << "\n";
  }

  // The mixed analysis: the type checker handles typed regions, the
  // symbolic executor handles `{s ... s}` blocks, and the two exchange
  // information only at block boundaries (Figure 4 of the paper).
  {
    DiagnosticEngine MixDiags;
    MixChecker Mix(Ctx.types(), MixDiags);
    const Type *T = Mix.checkTyped(Program);
    std::cout << "MIX                 : " << (T ? T->str() : "rejected")
              << "\n";
    if (!T)
      std::cout << MixDiags.str();
    std::cout << "  symbolic blocks checked: "
              << Mix.stats().SymBlocksChecked
              << ", paths explored: " << Mix.stats().PathsExplored << "\n";
  }
  std::cout << "\n";
}

} // namespace

int main() {
  // Section 2, "Path, Flow, and Context Sensitivity": the false branch is
  // dead code with a type error; only MIX can accept the program.
  analyze("unreachable ill-typed branch",
          "{s if true then {t 5 t} else {t 1 + true t} s}");

  // Section 2's div example: the function returns different types on its
  // two branches, which monomorphic typing rejects; symbolically
  // executing the call shows the bad branch is infeasible.
  analyze("context-sensitive call",
          "{s (fun (y: int) : int -> if y = 0 then 1 + true else 100 - y) "
          "4 s}");

  // The flow-sensitivity idiom: an ill-typed write immediately corrected
  // (the x->obj = NULL; x->obj = malloc(...) shape of Section 2).
  analyze("write-then-correct",
          "{s let x = ref 1 in (x := true; x := 2; {t !x + 1 t}) s}");

  // Soundness: a feasible ill-typed branch is still rejected by MIX.
  analyze("feasible type error is caught",
          "let b = true in {s if b then {t 5 t} else {t 1 + true t} s}");

  return 0;
}
