//===--- defer_vs_fork.cpp - Deferral versus execution ---------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// Section 3.1 ("Deferral Versus Execution") observes that conditionals
// can either fork the executor (SEIf-True/False) or defer the choice to
// the solver with conditional values (SEIf-Defer), trading executor paths
// against solver formula size. This example makes the trade-off visible
// on a ladder of N independent conditionals.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "mix/MixChecker.h"

#include <iostream>
#include <string>

using namespace mix;

namespace {

/// Builds `{s if b0 then 1 else 0 + if b1 then 1 else 0 + ... s}` — a
/// ladder of N independent symbolic conditionals.
std::string ladder(unsigned N) {
  std::string Out = "{s ";
  for (unsigned I = 0; I != N; ++I) {
    if (I != 0)
      Out += " + ";
    Out += "(if b" + std::to_string(I) + " then 1 else 0)";
  }
  Out += " s}";
  return Out;
}

} // namespace

int main() {
  std::cout << "conditional ladders under the two strategies of "
               "Section 3.1\n\n";
  std::cout << "N   fork: paths  solver-queries   defer: paths  "
               "solver-queries\n";

  for (unsigned N = 1; N <= 10; ++N) {
    AstContext Ctx;
    DiagnosticEngine Diags;
    TypeEnv Gamma;
    for (unsigned I = 0; I != N; ++I)
      Gamma["b" + std::to_string(I)] = Ctx.types().boolType();
    const Expr *Program = parseExpression(ladder(N), Ctx, Diags);
    if (!Program) {
      std::cerr << Diags.str();
      return 1;
    }

    unsigned ForkPaths = 0, ForkQueries = 0;
    {
      DiagnosticEngine D2;
      MixOptions Opts;
      Opts.Exec.Strat = SymExecOptions::Strategy::Fork;
      MixChecker Mix(Ctx.types(), D2, Opts);
      Mix.checkTyped(Program, Gamma);
      ForkPaths = Mix.stats().PathsExplored;
      ForkQueries = (unsigned)Mix.solver().queries();
    }

    unsigned DeferPaths = 0, DeferQueries = 0;
    {
      DiagnosticEngine D2;
      MixOptions Opts;
      Opts.Exec.Strat = SymExecOptions::Strategy::Defer;
      MixChecker Mix(Ctx.types(), D2, Opts);
      Mix.checkTyped(Program, Gamma);
      DeferPaths = Mix.stats().PathsExplored;
      DeferQueries = (unsigned)Mix.solver().queries();
    }

    std::printf("%-3u %11u %15u %14u %15u\n", N, ForkPaths, ForkQueries,
                DeferPaths, DeferQueries);
  }

  std::cout << "\nforking explores 2^N paths with simple path conditions; "
               "deferring keeps one\npath whose conditions pile the "
               "disjunctions onto the solver — 'these choices\ntrade off "
               "the amount of work done between the symbolic executor and "
               "the\nunderlying SMT solver.'\n";
  return 0;
}
