# Empty dependencies file for mix_csym.
# This may be replaced when dependencies are built.
