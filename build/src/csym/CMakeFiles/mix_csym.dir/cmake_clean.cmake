file(REMOVE_RECURSE
  "CMakeFiles/mix_csym.dir/CSymExecutor.cpp.o"
  "CMakeFiles/mix_csym.dir/CSymExecutor.cpp.o.d"
  "CMakeFiles/mix_csym.dir/CSymValue.cpp.o"
  "CMakeFiles/mix_csym.dir/CSymValue.cpp.o.d"
  "libmix_csym.a"
  "libmix_csym.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mix_csym.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
