file(REMOVE_RECURSE
  "libmix_csym.a"
)
