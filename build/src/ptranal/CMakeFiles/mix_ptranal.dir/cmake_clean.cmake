file(REMOVE_RECURSE
  "CMakeFiles/mix_ptranal.dir/PointsTo.cpp.o"
  "CMakeFiles/mix_ptranal.dir/PointsTo.cpp.o.d"
  "libmix_ptranal.a"
  "libmix_ptranal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mix_ptranal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
