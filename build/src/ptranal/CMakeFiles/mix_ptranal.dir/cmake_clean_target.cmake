file(REMOVE_RECURSE
  "libmix_ptranal.a"
)
