# Empty dependencies file for mix_ptranal.
# This may be replaced when dependencies are built.
