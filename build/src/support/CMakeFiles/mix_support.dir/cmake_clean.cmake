file(REMOVE_RECURSE
  "CMakeFiles/mix_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/mix_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/mix_support.dir/StringExtras.cpp.o"
  "CMakeFiles/mix_support.dir/StringExtras.cpp.o.d"
  "libmix_support.a"
  "libmix_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mix_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
