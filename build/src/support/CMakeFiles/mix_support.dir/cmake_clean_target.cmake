file(REMOVE_RECURSE
  "libmix_support.a"
)
