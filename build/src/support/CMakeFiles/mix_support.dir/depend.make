# Empty dependencies file for mix_support.
# This may be replaced when dependencies are built.
