file(REMOVE_RECURSE
  "libmix_sign.a"
)
