file(REMOVE_RECURSE
  "CMakeFiles/mix_sign.dir/SignChecker.cpp.o"
  "CMakeFiles/mix_sign.dir/SignChecker.cpp.o.d"
  "CMakeFiles/mix_sign.dir/SignMix.cpp.o"
  "CMakeFiles/mix_sign.dir/SignMix.cpp.o.d"
  "CMakeFiles/mix_sign.dir/SignTypes.cpp.o"
  "CMakeFiles/mix_sign.dir/SignTypes.cpp.o.d"
  "libmix_sign.a"
  "libmix_sign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mix_sign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
