# Empty dependencies file for mix_sign.
# This may be replaced when dependencies are built.
