file(REMOVE_RECURSE
  "libmix_mixy.a"
)
