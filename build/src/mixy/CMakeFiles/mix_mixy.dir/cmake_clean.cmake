file(REMOVE_RECURSE
  "CMakeFiles/mix_mixy.dir/Mixy.cpp.o"
  "CMakeFiles/mix_mixy.dir/Mixy.cpp.o.d"
  "CMakeFiles/mix_mixy.dir/VsftpdMini.cpp.o"
  "CMakeFiles/mix_mixy.dir/VsftpdMini.cpp.o.d"
  "libmix_mixy.a"
  "libmix_mixy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mix_mixy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
