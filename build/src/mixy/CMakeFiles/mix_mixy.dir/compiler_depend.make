# Empty compiler generated dependencies file for mix_mixy.
# This may be replaced when dependencies are built.
