# Empty compiler generated dependencies file for mix_sym.
# This may be replaced when dependencies are built.
