file(REMOVE_RECURSE
  "CMakeFiles/mix_sym.dir/SymArena.cpp.o"
  "CMakeFiles/mix_sym.dir/SymArena.cpp.o.d"
  "CMakeFiles/mix_sym.dir/SymExpr.cpp.o"
  "CMakeFiles/mix_sym.dir/SymExpr.cpp.o.d"
  "CMakeFiles/mix_sym.dir/SymToSmt.cpp.o"
  "CMakeFiles/mix_sym.dir/SymToSmt.cpp.o.d"
  "libmix_sym.a"
  "libmix_sym.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mix_sym.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
