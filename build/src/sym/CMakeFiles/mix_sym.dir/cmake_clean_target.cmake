file(REMOVE_RECURSE
  "libmix_sym.a"
)
