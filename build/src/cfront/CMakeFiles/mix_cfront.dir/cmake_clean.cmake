file(REMOVE_RECURSE
  "CMakeFiles/mix_cfront.dir/CAst.cpp.o"
  "CMakeFiles/mix_cfront.dir/CAst.cpp.o.d"
  "CMakeFiles/mix_cfront.dir/CLexer.cpp.o"
  "CMakeFiles/mix_cfront.dir/CLexer.cpp.o.d"
  "CMakeFiles/mix_cfront.dir/CParser.cpp.o"
  "CMakeFiles/mix_cfront.dir/CParser.cpp.o.d"
  "CMakeFiles/mix_cfront.dir/CPrinter.cpp.o"
  "CMakeFiles/mix_cfront.dir/CPrinter.cpp.o.d"
  "CMakeFiles/mix_cfront.dir/CSema.cpp.o"
  "CMakeFiles/mix_cfront.dir/CSema.cpp.o.d"
  "CMakeFiles/mix_cfront.dir/CType.cpp.o"
  "CMakeFiles/mix_cfront.dir/CType.cpp.o.d"
  "libmix_cfront.a"
  "libmix_cfront.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mix_cfront.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
