# Empty compiler generated dependencies file for mix_cfront.
# This may be replaced when dependencies are built.
