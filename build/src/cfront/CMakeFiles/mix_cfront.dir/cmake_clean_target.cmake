file(REMOVE_RECURSE
  "libmix_cfront.a"
)
