file(REMOVE_RECURSE
  "CMakeFiles/mix_concrete.dir/Interp.cpp.o"
  "CMakeFiles/mix_concrete.dir/Interp.cpp.o.d"
  "libmix_concrete.a"
  "libmix_concrete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mix_concrete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
