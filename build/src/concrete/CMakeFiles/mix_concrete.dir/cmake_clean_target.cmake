file(REMOVE_RECURSE
  "libmix_concrete.a"
)
