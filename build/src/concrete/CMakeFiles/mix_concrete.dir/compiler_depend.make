# Empty compiler generated dependencies file for mix_concrete.
# This may be replaced when dependencies are built.
