# CMake generated Testfile for 
# Source directory: /root/repo/src/mix
# Build directory: /root/repo/build/src/mix
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
