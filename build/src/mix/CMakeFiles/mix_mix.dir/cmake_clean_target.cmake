file(REMOVE_RECURSE
  "libmix_mix.a"
)
