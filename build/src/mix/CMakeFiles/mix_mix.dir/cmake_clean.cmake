file(REMOVE_RECURSE
  "CMakeFiles/mix_mix.dir/AutoPlacement.cpp.o"
  "CMakeFiles/mix_mix.dir/AutoPlacement.cpp.o.d"
  "CMakeFiles/mix_mix.dir/ConcolicDriver.cpp.o"
  "CMakeFiles/mix_mix.dir/ConcolicDriver.cpp.o.d"
  "CMakeFiles/mix_mix.dir/MixChecker.cpp.o"
  "CMakeFiles/mix_mix.dir/MixChecker.cpp.o.d"
  "libmix_mix.a"
  "libmix_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mix_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
