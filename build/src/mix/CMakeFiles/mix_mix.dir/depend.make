# Empty dependencies file for mix_mix.
# This may be replaced when dependencies are built.
