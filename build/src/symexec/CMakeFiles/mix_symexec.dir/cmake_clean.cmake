file(REMOVE_RECURSE
  "CMakeFiles/mix_symexec.dir/Effects.cpp.o"
  "CMakeFiles/mix_symexec.dir/Effects.cpp.o.d"
  "CMakeFiles/mix_symexec.dir/MemCheck.cpp.o"
  "CMakeFiles/mix_symexec.dir/MemCheck.cpp.o.d"
  "CMakeFiles/mix_symexec.dir/SymExecutor.cpp.o"
  "CMakeFiles/mix_symexec.dir/SymExecutor.cpp.o.d"
  "libmix_symexec.a"
  "libmix_symexec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mix_symexec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
