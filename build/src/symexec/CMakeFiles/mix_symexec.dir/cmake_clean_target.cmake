file(REMOVE_RECURSE
  "libmix_symexec.a"
)
