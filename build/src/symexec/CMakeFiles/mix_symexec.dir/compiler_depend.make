# Empty compiler generated dependencies file for mix_symexec.
# This may be replaced when dependencies are built.
