file(REMOVE_RECURSE
  "CMakeFiles/mix_lang.dir/Ast.cpp.o"
  "CMakeFiles/mix_lang.dir/Ast.cpp.o.d"
  "CMakeFiles/mix_lang.dir/AstClone.cpp.o"
  "CMakeFiles/mix_lang.dir/AstClone.cpp.o.d"
  "CMakeFiles/mix_lang.dir/AstPrinter.cpp.o"
  "CMakeFiles/mix_lang.dir/AstPrinter.cpp.o.d"
  "CMakeFiles/mix_lang.dir/Lexer.cpp.o"
  "CMakeFiles/mix_lang.dir/Lexer.cpp.o.d"
  "CMakeFiles/mix_lang.dir/Parser.cpp.o"
  "CMakeFiles/mix_lang.dir/Parser.cpp.o.d"
  "CMakeFiles/mix_lang.dir/Type.cpp.o"
  "CMakeFiles/mix_lang.dir/Type.cpp.o.d"
  "libmix_lang.a"
  "libmix_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mix_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
