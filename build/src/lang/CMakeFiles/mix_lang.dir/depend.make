# Empty dependencies file for mix_lang.
# This may be replaced when dependencies are built.
