file(REMOVE_RECURSE
  "libmix_lang.a"
)
