# Empty compiler generated dependencies file for mix_types.
# This may be replaced when dependencies are built.
