file(REMOVE_RECURSE
  "libmix_types.a"
)
