file(REMOVE_RECURSE
  "CMakeFiles/mix_types.dir/TypeChecker.cpp.o"
  "CMakeFiles/mix_types.dir/TypeChecker.cpp.o.d"
  "libmix_types.a"
  "libmix_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mix_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
