# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("lang")
subdirs("solver")
subdirs("sym")
subdirs("symexec")
subdirs("types")
subdirs("mix")
subdirs("concrete")
subdirs("cfront")
subdirs("ptranal")
subdirs("qual")
subdirs("csym")
subdirs("mixy")
subdirs("sign")
