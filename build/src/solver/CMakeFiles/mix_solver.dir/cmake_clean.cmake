file(REMOVE_RECURSE
  "CMakeFiles/mix_solver.dir/LinearArith.cpp.o"
  "CMakeFiles/mix_solver.dir/LinearArith.cpp.o.d"
  "CMakeFiles/mix_solver.dir/Sat.cpp.o"
  "CMakeFiles/mix_solver.dir/Sat.cpp.o.d"
  "CMakeFiles/mix_solver.dir/SmtSolver.cpp.o"
  "CMakeFiles/mix_solver.dir/SmtSolver.cpp.o.d"
  "CMakeFiles/mix_solver.dir/Term.cpp.o"
  "CMakeFiles/mix_solver.dir/Term.cpp.o.d"
  "libmix_solver.a"
  "libmix_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mix_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
