# Empty dependencies file for mix_solver.
# This may be replaced when dependencies are built.
