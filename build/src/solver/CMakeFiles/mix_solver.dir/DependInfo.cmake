
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/LinearArith.cpp" "src/solver/CMakeFiles/mix_solver.dir/LinearArith.cpp.o" "gcc" "src/solver/CMakeFiles/mix_solver.dir/LinearArith.cpp.o.d"
  "/root/repo/src/solver/Sat.cpp" "src/solver/CMakeFiles/mix_solver.dir/Sat.cpp.o" "gcc" "src/solver/CMakeFiles/mix_solver.dir/Sat.cpp.o.d"
  "/root/repo/src/solver/SmtSolver.cpp" "src/solver/CMakeFiles/mix_solver.dir/SmtSolver.cpp.o" "gcc" "src/solver/CMakeFiles/mix_solver.dir/SmtSolver.cpp.o.d"
  "/root/repo/src/solver/Term.cpp" "src/solver/CMakeFiles/mix_solver.dir/Term.cpp.o" "gcc" "src/solver/CMakeFiles/mix_solver.dir/Term.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mix_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
