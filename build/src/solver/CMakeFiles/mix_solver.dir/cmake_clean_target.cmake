file(REMOVE_RECURSE
  "libmix_solver.a"
)
