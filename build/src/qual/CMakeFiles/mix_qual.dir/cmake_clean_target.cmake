file(REMOVE_RECURSE
  "libmix_qual.a"
)
