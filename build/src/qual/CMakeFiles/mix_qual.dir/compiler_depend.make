# Empty compiler generated dependencies file for mix_qual.
# This may be replaced when dependencies are built.
