file(REMOVE_RECURSE
  "CMakeFiles/mix_qual.dir/QualGraph.cpp.o"
  "CMakeFiles/mix_qual.dir/QualGraph.cpp.o.d"
  "CMakeFiles/mix_qual.dir/QualInference.cpp.o"
  "CMakeFiles/mix_qual.dir/QualInference.cpp.o.d"
  "libmix_qual.a"
  "libmix_qual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mix_qual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
