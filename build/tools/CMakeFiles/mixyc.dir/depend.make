# Empty dependencies file for mixyc.
# This may be replaced when dependencies are built.
