file(REMOVE_RECURSE
  "CMakeFiles/mixyc.dir/mixyc.cpp.o"
  "CMakeFiles/mixyc.dir/mixyc.cpp.o.d"
  "mixyc"
  "mixyc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixyc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
