# Empty compiler generated dependencies file for mixyc.
# This may be replaced when dependencies are built.
