# Empty dependencies file for mixcheck.
# This may be replaced when dependencies are built.
