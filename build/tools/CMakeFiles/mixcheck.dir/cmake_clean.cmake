file(REMOVE_RECURSE
  "CMakeFiles/mixcheck.dir/mixcheck.cpp.o"
  "CMakeFiles/mixcheck.dir/mixcheck.cpp.o.d"
  "mixcheck"
  "mixcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
