file(REMOVE_RECURSE
  "CMakeFiles/vsftpd_nullness.dir/vsftpd_nullness.cpp.o"
  "CMakeFiles/vsftpd_nullness.dir/vsftpd_nullness.cpp.o.d"
  "vsftpd_nullness"
  "vsftpd_nullness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsftpd_nullness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
