# Empty compiler generated dependencies file for vsftpd_nullness.
# This may be replaced when dependencies are built.
