# Empty dependencies file for auto_placement.
# This may be replaced when dependencies are built.
