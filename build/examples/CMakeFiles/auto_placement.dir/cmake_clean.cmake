file(REMOVE_RECURSE
  "CMakeFiles/auto_placement.dir/auto_placement.cpp.o"
  "CMakeFiles/auto_placement.dir/auto_placement.cpp.o.d"
  "auto_placement"
  "auto_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auto_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
