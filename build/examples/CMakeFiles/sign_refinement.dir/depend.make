# Empty dependencies file for sign_refinement.
# This may be replaced when dependencies are built.
