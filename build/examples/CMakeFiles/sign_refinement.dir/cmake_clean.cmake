file(REMOVE_RECURSE
  "CMakeFiles/sign_refinement.dir/sign_refinement.cpp.o"
  "CMakeFiles/sign_refinement.dir/sign_refinement.cpp.o.d"
  "sign_refinement"
  "sign_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sign_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
