file(REMOVE_RECURSE
  "CMakeFiles/defer_vs_fork.dir/defer_vs_fork.cpp.o"
  "CMakeFiles/defer_vs_fork.dir/defer_vs_fork.cpp.o.d"
  "defer_vs_fork"
  "defer_vs_fork.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defer_vs_fork.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
