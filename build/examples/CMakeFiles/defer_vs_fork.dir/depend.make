# Empty dependencies file for defer_vs_fork.
# This may be replaced when dependencies are built.
