# Empty compiler generated dependencies file for test_csym.
# This may be replaced when dependencies are built.
