file(REMOVE_RECURSE
  "CMakeFiles/test_csym.dir/CSymTest.cpp.o"
  "CMakeFiles/test_csym.dir/CSymTest.cpp.o.d"
  "test_csym"
  "test_csym.pdb"
  "test_csym[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csym.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
