file(REMOVE_RECURSE
  "CMakeFiles/test_csymvalue.dir/CSymValueTest.cpp.o"
  "CMakeFiles/test_csymvalue.dir/CSymValueTest.cpp.o.d"
  "test_csymvalue"
  "test_csymvalue.pdb"
  "test_csymvalue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csymvalue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
