# Empty dependencies file for test_csymvalue.
# This may be replaced when dependencies are built.
