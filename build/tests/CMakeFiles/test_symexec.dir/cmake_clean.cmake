file(REMOVE_RECURSE
  "CMakeFiles/test_symexec.dir/SymExecutorTest.cpp.o"
  "CMakeFiles/test_symexec.dir/SymExecutorTest.cpp.o.d"
  "test_symexec"
  "test_symexec.pdb"
  "test_symexec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_symexec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
