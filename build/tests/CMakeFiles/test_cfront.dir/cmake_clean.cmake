file(REMOVE_RECURSE
  "CMakeFiles/test_cfront.dir/CFrontTest.cpp.o"
  "CMakeFiles/test_cfront.dir/CFrontTest.cpp.o.d"
  "test_cfront"
  "test_cfront.pdb"
  "test_cfront[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cfront.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
