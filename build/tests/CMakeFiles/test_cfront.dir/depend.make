# Empty dependencies file for test_cfront.
# This may be replaced when dependencies are built.
