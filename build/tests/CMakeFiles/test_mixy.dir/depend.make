# Empty dependencies file for test_mixy.
# This may be replaced when dependencies are built.
