file(REMOVE_RECURSE
  "CMakeFiles/test_mixy.dir/MixyTest.cpp.o"
  "CMakeFiles/test_mixy.dir/MixyTest.cpp.o.d"
  "test_mixy"
  "test_mixy.pdb"
  "test_mixy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mixy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
