# Empty compiler generated dependencies file for test_qual.
# This may be replaced when dependencies are built.
