file(REMOVE_RECURSE
  "CMakeFiles/test_qual.dir/QualTest.cpp.o"
  "CMakeFiles/test_qual.dir/QualTest.cpp.o.d"
  "test_qual"
  "test_qual.pdb"
  "test_qual[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
