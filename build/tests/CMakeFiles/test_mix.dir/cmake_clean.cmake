file(REMOVE_RECURSE
  "CMakeFiles/test_mix.dir/MixCheckerTest.cpp.o"
  "CMakeFiles/test_mix.dir/MixCheckerTest.cpp.o.d"
  "test_mix"
  "test_mix.pdb"
  "test_mix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
