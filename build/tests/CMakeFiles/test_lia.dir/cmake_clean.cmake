file(REMOVE_RECURSE
  "CMakeFiles/test_lia.dir/LinearArithTest.cpp.o"
  "CMakeFiles/test_lia.dir/LinearArithTest.cpp.o.d"
  "test_lia"
  "test_lia.pdb"
  "test_lia[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
