# Empty compiler generated dependencies file for test_ptranal.
# This may be replaced when dependencies are built.
