file(REMOVE_RECURSE
  "CMakeFiles/test_ptranal.dir/PointsToTest.cpp.o"
  "CMakeFiles/test_ptranal.dir/PointsToTest.cpp.o.d"
  "test_ptranal"
  "test_ptranal.pdb"
  "test_ptranal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ptranal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
