# Empty dependencies file for test_sign.
# This may be replaced when dependencies are built.
