file(REMOVE_RECURSE
  "CMakeFiles/test_sign.dir/SignTest.cpp.o"
  "CMakeFiles/test_sign.dir/SignTest.cpp.o.d"
  "test_sign"
  "test_sign.pdb"
  "test_sign[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
