# Empty dependencies file for test_symexpr.
# This may be replaced when dependencies are built.
