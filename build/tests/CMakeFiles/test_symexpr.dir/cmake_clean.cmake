file(REMOVE_RECURSE
  "CMakeFiles/test_symexpr.dir/SymExprTest.cpp.o"
  "CMakeFiles/test_symexpr.dir/SymExprTest.cpp.o.d"
  "test_symexpr"
  "test_symexpr.pdb"
  "test_symexpr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_symexpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
