file(REMOVE_RECURSE
  "CMakeFiles/test_cinterp.dir/CInterpTest.cpp.o"
  "CMakeFiles/test_cinterp.dir/CInterpTest.cpp.o.d"
  "test_cinterp"
  "test_cinterp.pdb"
  "test_cinterp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cinterp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
