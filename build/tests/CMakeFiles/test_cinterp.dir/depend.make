# Empty dependencies file for test_cinterp.
# This may be replaced when dependencies are built.
