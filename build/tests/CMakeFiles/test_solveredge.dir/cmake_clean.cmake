file(REMOVE_RECURSE
  "CMakeFiles/test_solveredge.dir/SolverEdgeTest.cpp.o"
  "CMakeFiles/test_solveredge.dir/SolverEdgeTest.cpp.o.d"
  "test_solveredge"
  "test_solveredge.pdb"
  "test_solveredge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solveredge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
