# Empty dependencies file for test_solveredge.
# This may be replaced when dependencies are built.
