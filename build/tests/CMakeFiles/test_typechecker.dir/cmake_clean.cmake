file(REMOVE_RECURSE
  "CMakeFiles/test_typechecker.dir/TypeCheckerTest.cpp.o"
  "CMakeFiles/test_typechecker.dir/TypeCheckerTest.cpp.o.d"
  "test_typechecker"
  "test_typechecker.pdb"
  "test_typechecker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_typechecker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
