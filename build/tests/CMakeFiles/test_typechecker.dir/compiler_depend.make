# Empty compiler generated dependencies file for test_typechecker.
# This may be replaced when dependencies are built.
