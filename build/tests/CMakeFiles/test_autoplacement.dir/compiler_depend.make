# Empty compiler generated dependencies file for test_autoplacement.
# This may be replaced when dependencies are built.
