file(REMOVE_RECURSE
  "CMakeFiles/test_autoplacement.dir/AutoPlacementTest.cpp.o"
  "CMakeFiles/test_autoplacement.dir/AutoPlacementTest.cpp.o.d"
  "test_autoplacement"
  "test_autoplacement.pdb"
  "test_autoplacement[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_autoplacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
