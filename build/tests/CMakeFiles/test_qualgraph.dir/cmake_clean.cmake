file(REMOVE_RECURSE
  "CMakeFiles/test_qualgraph.dir/QualGraphTest.cpp.o"
  "CMakeFiles/test_qualgraph.dir/QualGraphTest.cpp.o.d"
  "test_qualgraph"
  "test_qualgraph.pdb"
  "test_qualgraph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qualgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
