# Empty compiler generated dependencies file for test_qualgraph.
# This may be replaced when dependencies are built.
