# Empty dependencies file for bench_fork_vs_defer.
# This may be replaced when dependencies are built.
