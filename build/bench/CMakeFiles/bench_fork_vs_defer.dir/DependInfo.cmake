
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fork_vs_defer.cpp" "bench/CMakeFiles/bench_fork_vs_defer.dir/bench_fork_vs_defer.cpp.o" "gcc" "bench/CMakeFiles/bench_fork_vs_defer.dir/bench_fork_vs_defer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mix/CMakeFiles/mix_mix.dir/DependInfo.cmake"
  "/root/repo/build/src/symexec/CMakeFiles/mix_symexec.dir/DependInfo.cmake"
  "/root/repo/build/src/sym/CMakeFiles/mix_sym.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/mix_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/mix_types.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/mix_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mix_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
