file(REMOVE_RECURSE
  "CMakeFiles/bench_fork_vs_defer.dir/bench_fork_vs_defer.cpp.o"
  "CMakeFiles/bench_fork_vs_defer.dir/bench_fork_vs_defer.cpp.o.d"
  "bench_fork_vs_defer"
  "bench_fork_vs_defer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fork_vs_defer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
