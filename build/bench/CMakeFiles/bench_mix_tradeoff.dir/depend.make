# Empty dependencies file for bench_mix_tradeoff.
# This may be replaced when dependencies are built.
