file(REMOVE_RECURSE
  "CMakeFiles/bench_mix_tradeoff.dir/bench_mix_tradeoff.cpp.o"
  "CMakeFiles/bench_mix_tradeoff.dir/bench_mix_tradeoff.cpp.o.d"
  "bench_mix_tradeoff"
  "bench_mix_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mix_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
