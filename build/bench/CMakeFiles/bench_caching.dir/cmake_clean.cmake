file(REMOVE_RECURSE
  "CMakeFiles/bench_caching.dir/bench_caching.cpp.o"
  "CMakeFiles/bench_caching.dir/bench_caching.cpp.o.d"
  "bench_caching"
  "bench_caching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
