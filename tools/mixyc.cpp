//===--- mixyc.cpp - Command-line driver for MIXY ---------------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// Runs null/nonnull checking on a mini-C file: pure type qualifier
// inference (--baseline) or the full MIXY analysis with MIX(typed) /
// MIX(symbolic) block switching. See --help.
//
//===----------------------------------------------------------------------===//

#include "cfront/CParser.h"
#include "mixy/Mixy.h"
#include "mixy/VsftpdMini.h"

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace mix::c;
using mix::DiagnosticEngine;

namespace {

void printUsage() {
  std::cout <<
      R"(usage: mixyc [options] <file | - | @caseN | @vsftpd>

Null-pointer checking for mini-C. '@case1'..'@case4' and '@vsftpd' load
the built-in vsftpd-derived corpus (Section 4.5 of the paper); append
':baseline' (e.g. @case1:baseline) for the un-annotated variant.

options:
  --baseline          pure type qualifier inference (ignore MIX blocks)
  --entry=NAME        entry function (default: main)
  --start=typed|symbolic  initial analysis mode (default: typed)
  --no-cache          disable block-result caching (Section 4.3)
  --no-alias-restore  disable aliasing restoration (Section 4.2)
  --jobs=N            analyze symbolic blocks on N worker threads
                      (default 1 = serial; 0 = one per hardware thread)
  --warn-derefs       treat every dereference as a nonnull requirement
  --stats             print analysis statistics
  --help              this text

exit status: 0 with no warnings, 1 with warnings, 2 on usage/parse errors.
)";
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Path;
  std::string Entry = "main";
  bool Baseline = false;
  bool Stats = false;
  MixyAnalysis::StartMode Mode = MixyAnalysis::StartMode::Typed;
  MixyOptions Opts;

  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--help") {
      printUsage();
      return 0;
    } else if (Arg == "--baseline") {
      Baseline = true;
    } else if (Arg.rfind("--entry=", 0) == 0) {
      Entry = Arg.substr(8);
    } else if (Arg == "--start=typed") {
      Mode = MixyAnalysis::StartMode::Typed;
    } else if (Arg == "--start=symbolic") {
      Mode = MixyAnalysis::StartMode::Symbolic;
    } else if (Arg == "--no-cache") {
      Opts.EnableCache = false;
    } else if (Arg == "--no-alias-restore") {
      Opts.RestoreAliasing = false;
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      std::string N = Arg.substr(7);
      if (N.empty() || N.find_first_not_of("0123456789") != std::string::npos) {
        std::cerr << "mixyc: bad --jobs value '" << N << "'\n";
        return 2;
      }
      Opts.Jobs = (unsigned)std::stoul(N);
      if (Opts.Jobs == 0)
        Opts.Jobs = mix::rt::ThreadPool::hardwareWorkers();
    } else if (Arg == "--warn-derefs") {
      Opts.Qual.WarnAllDereferences = true;
      Opts.Sym.CheckDereferences = true;
    } else if (Arg == "--stats") {
      Stats = true;
    } else if (!Arg.empty() && Arg[0] == '-' && Arg != "-") {
      std::cerr << "mixyc: unknown option '" << Arg << "'\n";
      return 2;
    } else if (Path.empty()) {
      Path = Arg;
    } else {
      std::cerr << "mixyc: extra argument '" << Arg << "'\n";
      return 2;
    }
  }
  if (Path.empty()) {
    printUsage();
    return 2;
  }

  std::string Source;
  if (!Path.empty() && Path[0] == '@') {
    bool Annotated = Path.find(":baseline") == std::string::npos;
    std::string Corpus = Path.substr(1, Path.find(':') - 1);
    if (Corpus == "vsftpd")
      Source = corpus::vsftpdFull(Annotated);
    else if (Corpus.size() == 5 && Corpus.rfind("case", 0) == 0 &&
             Corpus[4] >= '1' && Corpus[4] <= '4')
      Source = corpus::vsftpdCase(Corpus[4] - '0', Annotated);
    else {
      std::cerr << "mixyc: unknown corpus '" << Path << "'\n";
      return 2;
    }
  } else if (Path == "-") {
    std::ostringstream Buf;
    Buf << std::cin.rdbuf();
    Source = Buf.str();
  } else {
    std::ifstream In(Path);
    if (!In) {
      std::cerr << "mixyc: cannot open '" << Path << "'\n";
      return 2;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Source = Buf.str();
  }

  CAstContext Ctx;
  DiagnosticEngine Diags;
  const CProgram *Program = parseC(Source, Ctx, Diags);
  if (!Program) {
    std::cerr << Diags.str();
    return 2;
  }

  unsigned Warnings = 0;
  if (Baseline) {
    QualInference Inference(*Program, Ctx, Diags, Opts.Qual);
    Inference.analyzeAll();
    Inference.solve();
    Warnings = Inference.reportWarnings();
    if (Stats)
      std::cout << "qualifier variables : "
                << Inference.graph().numNodes() << "\n"
                << "flow edges          : " << Inference.graph().numEdges()
                << "\n";
  } else {
    MixyAnalysis Analysis(*Program, Ctx, Diags, Opts);
    Warnings = Analysis.run(Mode, Entry);
    if (Stats) {
      const MixyStats &S = Analysis.stats();
      std::cout << "typed->symbolic switches : " << S.SymbolicCallsFromTyped
                << "\n"
                << "symbolic->typed switches : " << S.TypedCallsFromSymbolic
                << "\n"
                << "symbolic block runs      : " << S.SymbolicBlockRuns
                << " (+" << S.SymbolicCacheHits << " cached)\n"
                << "typed block runs         : " << S.TypedBlockRuns << " (+"
                << S.TypedCacheHits << " cached)\n"
                << "fixpoint iterations      : " << S.FixpointIterations
                << "\n"
                << "recursions detected      : " << S.RecursionsDetected
                << "\n";
      if (Opts.Jobs > 1)
        std::cout << "sym block cache          : "
                  << Analysis.symCacheStats().str() << "\n"
                  << "typed block cache        : "
                  << Analysis.typedCacheStats().str() << "\n";
    }
  }

  std::cerr << Diags.str();
  std::cout << Warnings << " warning(s)\n";
  return Warnings == 0 ? 0 : 1;
}
