//===--- mixyc.cpp - Command-line driver for MIXY ---------------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// Runs null/nonnull checking on a mini-C file: pure type qualifier
// inference (--baseline) or the full MIXY analysis with MIX(typed) /
// MIX(symbolic) block switching. A thin client of the AnalysisService:
// the flags build an AnalysisRequest, the service runs it, and this file
// only routes the response pieces to the historical streams. See --help.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "driver/InputLoader.h"
#include "service/AnalysisService.h"

#include <iostream>
#include <string>

using mix::obs::MetricsRegistry;
namespace driver = mix::driver;
namespace service = mix::service;

namespace {

// The options section is generated from the parser registrations
// (OptionParser::renderHelp), so --help cannot drift from the flags the
// tool actually accepts; a golden test enforces the coverage.
void printUsage(const driver::OptionParser &Parser) {
  std::cout <<
      R"(usage: mixyc [options] <file | - | @caseN | @vsftpd>

Null-pointer checking for mini-C. '@case1'..'@case4' and '@vsftpd' load
the built-in vsftpd-derived corpus (Section 4.5 of the paper); append
':baseline' (e.g. @case1:baseline) for the un-annotated variant.

options:
)" << Parser.renderHelp()
            << R"(
exit status: 0 with no warnings, 1 with warnings, 2 on usage/parse errors.
)";
}

/// The built-in corpus behind '@' specs, resolved through the service so
/// the CLI and the daemon serve the exact same bytes per spec.
bool resolveCorpus(const std::string &Spec, std::string &SourceOut) {
  service::AnalysisRequest R;
  R.Corpus = Spec;
  std::string Error;
  return service::AnalysisService::resolveInput(R, SourceOut, Error);
}

} // namespace

int main(int Argc, char **Argv) {
  bool Help = false;
  service::AnalysisRequest Req;
  Req.ToolKind = service::Tool::Mixy;

  driver::OptionParser Parser("mixyc");
  driver::DriverContext Driver;
  Parser.flag("--baseline", &Req.Baseline,
              "pure type qualifier inference (ignore MIX blocks)");
  Parser.value(
      "--entry",
      [&](const std::string &V) {
        if (V.empty())
          return false;
        Req.Entry = V;
        return true;
      },
      "NAME", "entry function (default: main)");
  Parser.value(
      "--start",
      [&](const std::string &V) {
        if (V == "typed")
          Req.StartSymbolic = false;
        else if (V == "symbolic")
          Req.StartSymbolic = true;
        else
          return false;
        return true;
      },
      "typed|symbolic", "initial analysis mode (default: typed)");
  Parser.flag("--no-cache", &Req.NoCache,
              "disable block-result caching (Section 4.3)");
  Parser.flag("--no-alias-restore", &Req.NoAliasRestore,
              "disable aliasing restoration (Section 4.2)");
  Parser.flag("--warn-derefs", &Req.WarnDerefs,
              "treat every dereference as a nonnull requirement");
  driver::registerCommonOptions(
      Parser, Driver, &Req.Jobs,
      "analyze symbolic blocks on N worker threads\n"
      "(default 1 = serial; 0 = one per hardware thread)");
  Parser.flag("--incremental", &Req.Incremental,
              "with --cache-dir: reuse per-block summaries across runs,\n"
              "re-analyzing only functions whose code or dependencies "
              "changed");
  Parser.flag("--help", &Help, "this text");

  if (!Parser.parse(Argc, Argv))
    return driver::ExitUsage;
  if (Help) {
    printUsage(Parser);
    return driver::ExitClean;
  }
  if (Req.Incremental && !Driver.cacheDirRequested()) {
    std::cerr << "mixyc: --incremental requires --cache-dir\n";
    return driver::ExitUsage;
  }
  if (Parser.positionals().size() > 1) {
    std::cerr << "mixyc: extra argument '" << Parser.positionals()[1] << "'\n";
    return driver::ExitUsage;
  }
  if (Parser.positionals().empty()) {
    printUsage(Parser);
    return driver::ExitUsage;
  }

  std::string Source;
  if (!driver::loadInput("mixyc", Parser.positionals()[0], Source,
                         resolveCorpus)) {
    // The driver is live from here on: artifacts the user asked for
    // (--trace, --metrics) are flushed on every exit path, including the
    // exit-code-2 ones.
    Driver.writeArtifacts("mixyc");
    return driver::ExitUsage;
  }
  if (Parser.positionals()[0] != "-")
    Driver.setInputName(Parser.positionals()[0]);

  // The request carries the resolved source plus every cross-cutting flag;
  // run() attaches observability (metrics always; trace under --trace,
  // provenance when the output renders evidence) and the persist session
  // (--cache-dir, honoring --incremental) on the service side.
  Req.Source = std::move(Source);
  Req.HasSource = true;
  Driver.applyCommonRequest(Req);

  service::AnalysisResponse Resp = Driver.service().run(Req);

  std::ostream &Info = Driver.jsonOutput() ? std::cerr : std::cout;
  const MetricsRegistry &Reg = Driver.metrics();

  if (Driver.statsRequested() && Resp.Exit != driver::ExitUsage) {
    // Rendered from the metrics registry — the same numbers --metrics
    // exports (the analyses publish their stats there at the end of each
    // run).
    if (Req.Baseline) {
      Info << "qualifier variables : " << Reg.counterValue("qual.variables")
           << "\n"
           << "flow edges          : " << Reg.counterValue("qual.flow_edges")
           << "\n";
    } else {
      Info << "typed->symbolic switches : "
           << Reg.counterValue("mixy.switch.typed_to_sym") << "\n"
           << "symbolic->typed switches : "
           << Reg.counterValue("mixy.switch.sym_to_typed") << "\n"
           << "symbolic block runs      : "
           << Reg.counterValue("mixy.sym_block_runs") << " (+"
           << Reg.counterValue("mixy.sym_cache_hits") << " cached)\n"
           << "typed block runs         : "
           << Reg.counterValue("mixy.typed_block_runs") << " (+"
           << Reg.counterValue("mixy.typed_cache_hits") << " cached)\n"
           << "fixpoint iterations      : "
           << Reg.counterValue("mixy.fixpoint_rounds") << "\n"
           << "recursions detected      : "
           << Reg.counterValue("mixy.recursions") << "\n"
           // The shared engine layer's view of the same run: blocks it
           // scheduled, cache hits it served, and how the fixpoint was
           // driven (dependency-aware worklist re-runs vs round-barrier
           // rounds).
           << "engine blocks scheduled  : "
           << Reg.counterValue("engine.mixy.blocks") << "\n"
           << "engine cache hits        : "
           << Reg.counterValue("engine.cache.mixy.hits") << "\n"
           << "worklist re-runs         : "
           << Reg.counterValue("engine.worklist.reruns") << "\n"
           << "round-barrier rounds     : "
           << Reg.counterValue("engine.fixpoint.rounds") << "\n";
      // The IR engine's mini-C coverage: bodies lowered once (then served
      // from the per-function cache) and bodies that fell back to the AST
      // walker because the lowering declined them — the loud counterpart
      // of what used to be a silent no-op.
      if (Req.ExecMode == mix::SymExecOptions::Engine::Ir)
        Info << "ir-engine bodies         : "
             << Reg.counterValue("ir.lower.misses") << " lowered (+"
             << Reg.counterValue("ir.lower.hits") << " cached), "
             << Reg.counterValue("exec.fallback.ast") << " AST fallback(s)\n";
      if (Req.Jobs > 1)
        Info << "sym block cache          : " << Resp.SymCacheStats << "\n"
             << "typed block cache        : " << Resp.TypedCacheStats << "\n";
    }
    Info << driver::renderPhaseBreakdown(Resp);
  }

  Driver.emitPayload(Resp.Payload);
  if (Resp.Exit == driver::ExitUsage) {
    Driver.writeArtifacts("mixyc");
    return driver::ExitUsage;
  }
  if (!Driver.writeArtifacts("mixyc"))
    return driver::ExitUsage;
  if (!Driver.jsonOutput())
    std::cout << Resp.Warnings << " warning(s)\n";
  return Resp.Exit;
}
