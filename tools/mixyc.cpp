//===--- mixyc.cpp - Command-line driver for MIXY ---------------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// Runs null/nonnull checking on a mini-C file: pure type qualifier
// inference (--baseline) or the full MIXY analysis with MIX(typed) /
// MIX(symbolic) block switching. See --help.
//
//===----------------------------------------------------------------------===//

#include "cfront/CParser.h"
#include "driver/Driver.h"
#include "driver/InputLoader.h"
#include "mixy/Mixy.h"
#include "mixy/VsftpdMini.h"

#include <iostream>
#include <string>

using namespace mix::c;
using mix::DiagnosticEngine;
namespace driver = mix::driver;
namespace obs = mix::obs;

namespace {

// The options section is generated from the parser registrations
// (OptionParser::renderHelp), so --help cannot drift from the flags the
// tool actually accepts; a golden test enforces the coverage.
void printUsage(const driver::OptionParser &Parser) {
  std::cout <<
      R"(usage: mixyc [options] <file | - | @caseN | @vsftpd>

Null-pointer checking for mini-C. '@case1'..'@case4' and '@vsftpd' load
the built-in vsftpd-derived corpus (Section 4.5 of the paper); append
':baseline' (e.g. @case1:baseline) for the un-annotated variant.

options:
)" << Parser.renderHelp()
            << R"(
exit status: 0 with no warnings, 1 with warnings, 2 on usage/parse errors.
)";
}

/// The built-in corpus behind '@' specs ("case1".."case4" and "vsftpd",
/// with an optional ":baseline" suffix for the un-annotated variants).
bool resolveCorpus(const std::string &Spec, std::string &SourceOut) {
  bool Annotated = Spec.find(":baseline") == std::string::npos;
  std::string Corpus = Spec.substr(0, Spec.find(':'));
  if (Corpus == "vsftpd") {
    SourceOut = corpus::vsftpdFull(Annotated);
    return true;
  }
  if (Corpus.size() == 5 && Corpus.rfind("case", 0) == 0 && Corpus[4] >= '1' &&
      Corpus[4] <= '4') {
    SourceOut = corpus::vsftpdCase(Corpus[4] - '0', Annotated);
    return true;
  }
  return false;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Help = false;
  std::string Entry = "main";
  bool Baseline = false;
  bool Incremental = false;
  MixyAnalysis::StartMode Mode = MixyAnalysis::StartMode::Typed;
  MixyOptions Opts;

  driver::OptionParser Parser("mixyc");
  driver::DriverContext Driver;
  Parser.flag("--baseline", &Baseline,
              "pure type qualifier inference (ignore MIX blocks)");
  Parser.value(
      "--entry",
      [&](const std::string &V) {
        if (V.empty())
          return false;
        Entry = V;
        return true;
      },
      "NAME", "entry function (default: main)");
  Parser.value(
      "--start",
      [&](const std::string &V) {
        if (V == "typed")
          Mode = MixyAnalysis::StartMode::Typed;
        else if (V == "symbolic")
          Mode = MixyAnalysis::StartMode::Symbolic;
        else
          return false;
        return true;
      },
      "typed|symbolic", "initial analysis mode (default: typed)");
  Parser.flag("--no-cache", [&] { Opts.EnableCache = false; },
              "disable block-result caching (Section 4.3)");
  Parser.flag("--no-alias-restore", [&] { Opts.RestoreAliasing = false; },
              "disable aliasing restoration (Section 4.2)");
  Parser.flag("--warn-derefs",
              [&] {
                Opts.Qual.WarnAllDereferences = true;
                Opts.Sym.CheckDereferences = true;
              },
              "treat every dereference as a nonnull requirement");
  driver::registerCommonOptions(
      Parser, Driver, &Opts.Jobs,
      "analyze symbolic blocks on N worker threads\n"
      "(default 1 = serial; 0 = one per hardware thread)");
  Parser.flag("--incremental", &Incremental,
              "with --cache-dir: reuse per-block summaries across runs,\n"
              "re-analyzing only functions whose code or dependencies "
              "changed");
  Parser.flag("--help", &Help, "this text");

  if (!Parser.parse(Argc, Argv))
    return driver::ExitUsage;
  if (Help) {
    printUsage(Parser);
    return driver::ExitClean;
  }
  if (Incremental && !Driver.cacheDirRequested()) {
    std::cerr << "mixyc: --incremental requires --cache-dir\n";
    return driver::ExitUsage;
  }
  if (Parser.positionals().size() > 1) {
    std::cerr << "mixyc: extra argument '" << Parser.positionals()[1] << "'\n";
    return driver::ExitUsage;
  }
  if (Parser.positionals().empty()) {
    printUsage(Parser);
    return driver::ExitUsage;
  }

  std::string Source;
  if (!driver::loadInput("mixyc", Parser.positionals()[0], Source,
                         resolveCorpus)) {
    // The driver is live from here on: artifacts the user asked for
    // (--trace, --metrics) are flushed on every exit path, including the
    // exit-code-2 ones.
    Driver.writeArtifacts("mixyc");
    return driver::ExitUsage;
  }
  if (Parser.positionals()[0] != "-")
    Driver.setInputName(Parser.positionals()[0]);

  // Observability: the analysis (solver, caches, pool, fixpoint driver)
  // reports into the driver's registry; the trace sink is attached only
  // under --trace, the provenance sink only when the output renders
  // evidence (--explain / --format=sarif).
  Opts.Metrics = &Driver.metrics();
  Opts.Trace = Driver.traceSink();
  Opts.Prov = Driver.provenanceSink();
  // Before the fingerprint below: the backend choice is part of the
  // persisted-summary identity (DecidedBy lives in witness payloads).
  Opts.Solver = Driver.solverSpec();

  CAstContext Ctx;
  DiagnosticEngine Diags;

  // Persistence: the session (null without --cache-dir) is loaded now and
  // saved by writeArtifacts. A rejected cache degrades to a cold run with
  // one MIX502 note.
  Opts.Persist =
      Driver.openPersist(Incremental, mixyPersistFingerprint(Opts), Diags);

  const CProgram *Program = parseC(Source, Ctx, Diags);
  if (!Program) {
    Driver.emitDiagnostics(Diags, "mixyc");
    Driver.writeArtifacts("mixyc");
    return driver::ExitUsage;
  }

  std::ostream &Info = Driver.jsonOutput() ? std::cerr : std::cout;
  obs::MetricsRegistry &Reg = Driver.metrics();

  unsigned Warnings = 0;
  if (Baseline) {
    // Baseline inference runs outside MixyAnalysis, so the provenance
    // sink is pushed into the qualifier options here.
    Opts.Qual.Prov = Opts.Prov;
    QualInference Inference(*Program, Ctx, Diags, Opts.Qual);
    Inference.analyzeAll();
    Inference.solve();
    Warnings = Inference.reportWarnings();
    Reg.counter("qual.variables").add(Inference.graph().numNodes());
    Reg.counter("qual.flow_edges").add(Inference.graph().numEdges());
    if (Driver.statsRequested())
      Info << "qualifier variables : " << Reg.counterValue("qual.variables")
           << "\n"
           << "flow edges          : " << Reg.counterValue("qual.flow_edges")
           << "\n";
  } else {
    MixyAnalysis Analysis(*Program, Ctx, Diags, Opts);
    Warnings = Analysis.run(Mode, Entry);
    if (Driver.statsRequested()) {
      // Rendered from the metrics registry — the same numbers --metrics
      // exports (MixyAnalysis publishes its stats there at the end of
      // each run).
      Info << "typed->symbolic switches : "
           << Reg.counterValue("mixy.switch.typed_to_sym") << "\n"
           << "symbolic->typed switches : "
           << Reg.counterValue("mixy.switch.sym_to_typed") << "\n"
           << "symbolic block runs      : "
           << Reg.counterValue("mixy.sym_block_runs") << " (+"
           << Reg.counterValue("mixy.sym_cache_hits") << " cached)\n"
           << "typed block runs         : "
           << Reg.counterValue("mixy.typed_block_runs") << " (+"
           << Reg.counterValue("mixy.typed_cache_hits") << " cached)\n"
           << "fixpoint iterations      : "
           << Reg.counterValue("mixy.fixpoint_rounds") << "\n"
           << "recursions detected      : "
           << Reg.counterValue("mixy.recursions") << "\n"
           // The shared engine layer's view of the same run: blocks it
           // scheduled, cache hits it served, and how the fixpoint was
           // driven (dependency-aware worklist re-runs vs round-barrier
           // rounds).
           << "engine blocks scheduled  : "
           << Reg.counterValue("engine.mixy.blocks") << "\n"
           << "engine cache hits        : "
           << Reg.counterValue("engine.cache.mixy.hits") << "\n"
           << "worklist re-runs         : "
           << Reg.counterValue("engine.worklist.reruns") << "\n"
           << "round-barrier rounds     : "
           << Reg.counterValue("engine.fixpoint.rounds") << "\n";
      if (Opts.Jobs > 1)
        Info << "sym block cache          : " << Analysis.symCacheStats().str()
             << "\n"
             << "typed block cache        : "
             << Analysis.typedCacheStats().str() << "\n";
    }
  }

  Driver.emitDiagnostics(Diags, "mixyc");
  if (!Driver.writeArtifacts("mixyc"))
    return driver::ExitUsage;
  if (!Driver.jsonOutput())
    std::cout << Warnings << " warning(s)\n";
  return Warnings == 0 ? driver::ExitClean : driver::ExitFindings;
}
