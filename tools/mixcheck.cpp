//===--- mixcheck.cpp - Command-line driver for the core MIX analysis ------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// Checks a core-language program (with `{t ... t}` / `{s ... s}` blocks)
// using the mixed analysis. A thin client of the AnalysisService: the
// flags build an AnalysisRequest, the service runs it, and this file only
// routes the response pieces to the historical streams in the historical
// order. See --help for options.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "driver/InputLoader.h"
#include "service/AnalysisService.h"

#include <iostream>
#include <string>

using namespace mix;

namespace {

// The options section is generated from the parser registrations
// (OptionParser::renderHelp), so --help cannot drift from the flags the
// tool actually accepts; a golden test enforces the coverage.
void printUsage(const driver::OptionParser &Parser) {
  std::cout <<
      R"(usage: mixcheck [options] <file | ->

Checks a MIX core-language program. Reads from stdin when the file is '-'.

options:
)" << Parser.renderHelp()
            << R"(
exit status: 0 when the program checks, 1 when it is rejected, 2 on
usage or parse errors.
)";
}

} // namespace

int main(int Argc, char **Argv) {
  bool Help = false;
  service::AnalysisRequest Req;
  Req.ToolKind = service::Tool::MixCheck;

  driver::OptionParser Parser("mixcheck");
  driver::DriverContext Driver;
  Parser.value(
      "--mode",
      [&](const std::string &V) {
        if (V == "typed")
          Req.Symbolic = false;
        else if (V == "symbolic")
          Req.Symbolic = true;
        else
          return false;
        return true;
      },
      "typed|symbolic",
      "treat the outermost scope as a typed (default) or symbolic block");
  Parser.value(
      "--strategy",
      [&](const std::string &V) {
        if (V == "fork")
          Req.Strategy = SymExecOptions::Strategy::Fork;
        else if (V == "defer")
          Req.Strategy = SymExecOptions::Strategy::Defer;
        else
          return false;
        return true;
      },
      "fork|defer", "conditional strategy (Section 3.1); default fork");
  Parser.value(
      "--havoc",
      [&](const std::string &V) {
        if (V == "full")
          Req.Havoc = SymExecOptions::HavocPolicy::FullMemory;
        else if (V == "effects")
          Req.Havoc = SymExecOptions::HavocPolicy::WriteEffects;
        else
          return false;
        return true;
      },
      "full|effects",
      "SETypBlock memory havoc policy (Section 3.2); default full");
  Parser.flag("--precise-deref", &Req.PreciseDeref,
              "use the refined SEDeref rule (Section 3.1)");
  Parser.flag("--assume-complete", [&] { Req.AssumeComplete = true; },
              "skip the exhaustive() check (unsound mode)");
  Parser.value(
      "--explore",
      [&](const std::string &V) {
        if (V == "concolic")
          Req.Explore = MixOptions::Exploration::Concolic;
        else if (V == "all")
          Req.Explore = MixOptions::Exploration::AllPaths;
        else
          return false;
        return true;
      },
      "concolic",
      "enumerate paths DART-style (one per concrete run, flips solved\n"
      "via model extraction)");
  Parser.flag("--auto-place", &Req.AutoPlace,
              "insert symbolic blocks automatically on failure");
  Parser.separateValue(
      "--var",
      [&](const std::string &Spec) {
        size_t Colon = Spec.find(':');
        if (Colon == std::string::npos)
          return false;
        Req.Vars.emplace_back(Spec.substr(0, Colon), Spec.substr(Colon + 1));
        return true;
      },
      "name:type",
      "add a free variable to Gamma (type: int, bool, 'int ref', ...);\n"
      "may be repeated");
  Parser.flag("--print-program", &Req.PrintProgram,
              "echo the (possibly auto-annotated) program");
  driver::registerCommonOptions(
      Parser, Driver, &Req.Jobs,
      "check a block's paths (and auto-place candidates) on N\n"
      "worker threads (default 1 = serial; 0 = one per hardware "
      "thread)");
  Parser.flag("--help", &Help, "this text");

  if (!Parser.parse(Argc, Argv))
    return driver::ExitUsage;
  if (Help) {
    printUsage(Parser);
    return driver::ExitClean;
  }
  if (Parser.positionals().size() > 1) {
    std::cerr << "mixcheck: extra argument '" << Parser.positionals()[1]
              << "'\n";
    return driver::ExitUsage;
  }
  if (Parser.positionals().empty()) {
    printUsage(Parser);
    return driver::ExitUsage;
  }

  std::string Source;
  if (!driver::loadInput("mixcheck", Parser.positionals()[0], Source)) {
    // The driver is live from here on: artifacts the user asked for
    // (--trace, --metrics) are flushed on every exit path, including the
    // exit-code-2 ones.
    Driver.writeArtifacts("mixcheck");
    return driver::ExitUsage;
  }
  if (Parser.positionals()[0] != "-")
    Driver.setInputName(Parser.positionals()[0]);

  // The request carries the resolved source plus every cross-cutting flag;
  // run() attaches observability (metrics always; trace under --trace,
  // provenance when the output renders evidence) and the persist session
  // (--cache-dir) on the service side.
  Req.Source = std::move(Source);
  Req.HasSource = true;
  Driver.applyCommonRequest(Req);

  service::AnalysisResponse Resp = Driver.service().run(Req);

  std::ostream &Info = Driver.jsonOutput() ? std::cerr : std::cout;

  // Historical stream order: the usage error (bad --var type), the
  // auto-placement note, the stats block, the echoed program, then the
  // diagnostics payload.
  if (!Resp.ErrorText.empty())
    std::cerr << "mixcheck: " << Resp.ErrorText << "\n";
  if (!Resp.AutoPlaceNote.empty())
    Info << Resp.AutoPlaceNote;

  if (Driver.statsRequested() && !Req.AutoPlace &&
      Resp.Exit != driver::ExitUsage) {
    // Rendered from the metrics registry — the same numbers --metrics
    // exports (and, serially, the same the pre-registry tool printed).
    const obs::MetricsRegistry &Reg = Driver.metrics();
    Info << "symbolic blocks checked : "
         << Reg.counterValue("mix.sym_blocks_checked") << "\n"
         << "typed blocks executed   : "
         << Reg.counterValue("mix.typed_blocks_executed") << "\n"
         << "paths explored          : "
         << Reg.counterValue("mix.paths_explored") << "\n"
         << "infeasible discarded    : "
         << Reg.counterValue("mix.paths_infeasible") << "\n"
         << "solver queries          : " << Reg.counterValue("solver.queries")
         << "\n"
         // The shared engine layer's view of the same run: blocks it
         // scheduled and cache hits it served across both domains.
         << "engine blocks scheduled : " << Reg.counterValue("engine.mix.blocks")
         << "\n"
         << "engine cache hits       : "
         << Reg.counterValue("engine.cache.mix.hits") << "\n"
         // The execution engine's own counters (--exec=ast|ir): both
         // engines report paths and solver-skipped concrete branches;
         // terms built/GC'd expose the IR engine's lazy-expression win.
         << "exec paths run          : " << Reg.counterValue("exec.paths")
         << "\n"
         << "exec concrete branches  : "
         << Reg.counterValue("exec.branches.concrete") << "\n"
         << "exec terms built        : "
         << Reg.counterValue("exec.terms.built") << "\n"
         << "exec terms collected    : "
         << Reg.counterValue("exec.terms.gcd") << "\n"
         << driver::renderPhaseBreakdown(Resp);
  }

  if (!Resp.PrintedProgram.empty())
    Info << Resp.PrintedProgram;

  Driver.emitPayload(Resp.Payload);
  if (Resp.Exit == driver::ExitUsage) {
    Driver.writeArtifacts("mixcheck");
    return driver::ExitUsage;
  }
  if (!Driver.writeArtifacts("mixcheck"))
    return driver::ExitUsage;
  if (!Driver.jsonOutput())
    std::cout << (Resp.Accepted ? "ok: " + Resp.ResultType : "rejected")
              << "\n";
  return Resp.Exit;
}
