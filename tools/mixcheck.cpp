//===--- mixcheck.cpp - Command-line driver for the core MIX analysis ------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// Checks a core-language program (with `{t ... t}` / `{s ... s}` blocks)
// using the mixed analysis. See --help for options.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "driver/InputLoader.h"
#include "lang/AstPrinter.h"
#include "lang/Parser.h"
#include "mix/AutoPlacement.h"
#include "mix/MixChecker.h"

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace mix;

namespace {

// The options section is generated from the parser registrations
// (OptionParser::renderHelp), so --help cannot drift from the flags the
// tool actually accepts; a golden test enforces the coverage.
void printUsage(const driver::OptionParser &Parser) {
  std::cout <<
      R"(usage: mixcheck [options] <file | ->

Checks a MIX core-language program. Reads from stdin when the file is '-'.

options:
)" << Parser.renderHelp()
            << R"(
exit status: 0 when the program checks, 1 when it is rejected, 2 on
usage or parse errors.
)";
}

/// Parses a type spelled on the command line, e.g. "int ref ref".
const Type *parseTypeSpec(TypeContext &Types, const std::string &Spec) {
  std::istringstream In(Spec);
  std::string Word;
  if (!(In >> Word))
    return nullptr;
  const Type *T = nullptr;
  if (Word == "int")
    T = Types.intType();
  else if (Word == "bool")
    T = Types.boolType();
  else
    return nullptr;
  while (In >> Word) {
    if (Word != "ref")
      return nullptr;
    T = Types.refType(T);
  }
  return T;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Help = false;
  bool Symbolic = false;
  bool AutoPlace = false;
  bool PrintProgram = false;
  MixOptions Opts;
  std::vector<std::pair<std::string, std::string>> VarSpecs;

  driver::OptionParser Parser("mixcheck");
  driver::DriverContext Driver;
  Parser.value(
      "--mode",
      [&](const std::string &V) {
        if (V == "typed")
          Symbolic = false;
        else if (V == "symbolic")
          Symbolic = true;
        else
          return false;
        return true;
      },
      "typed|symbolic",
      "treat the outermost scope as a typed (default) or symbolic block");
  Parser.value(
      "--strategy",
      [&](const std::string &V) {
        if (V == "fork")
          Opts.Exec.Strat = SymExecOptions::Strategy::Fork;
        else if (V == "defer")
          Opts.Exec.Strat = SymExecOptions::Strategy::Defer;
        else
          return false;
        return true;
      },
      "fork|defer", "conditional strategy (Section 3.1); default fork");
  Parser.value(
      "--havoc",
      [&](const std::string &V) {
        if (V == "full")
          Opts.Exec.Havoc = SymExecOptions::HavocPolicy::FullMemory;
        else if (V == "effects")
          Opts.Exec.Havoc = SymExecOptions::HavocPolicy::WriteEffects;
        else
          return false;
        return true;
      },
      "full|effects",
      "SETypBlock memory havoc policy (Section 3.2); default full");
  Parser.flag("--precise-deref", &Opts.Exec.PreciseDeref,
              "use the refined SEDeref rule (Section 3.1)");
  Parser.flag("--assume-complete",
              [&] {
                Opts.Exhaustive = MixOptions::Exhaustiveness::AssumeComplete;
              },
              "skip the exhaustive() check (unsound mode)");
  Parser.value(
      "--explore",
      [&](const std::string &V) {
        if (V == "concolic")
          Opts.Explore = MixOptions::Exploration::Concolic;
        else if (V == "all")
          Opts.Explore = MixOptions::Exploration::AllPaths;
        else
          return false;
        return true;
      },
      "concolic",
      "enumerate paths DART-style (one per concrete run, flips solved\n"
      "via model extraction)");
  Parser.flag("--auto-place", &AutoPlace,
              "insert symbolic blocks automatically on failure");
  Parser.separateValue(
      "--var",
      [&](const std::string &Spec) {
        size_t Colon = Spec.find(':');
        if (Colon == std::string::npos)
          return false;
        VarSpecs.emplace_back(Spec.substr(0, Colon), Spec.substr(Colon + 1));
        return true;
      },
      "name:type",
      "add a free variable to Gamma (type: int, bool, 'int ref', ...);\n"
      "may be repeated");
  Parser.flag("--print-program", &PrintProgram,
              "echo the (possibly auto-annotated) program");
  driver::registerCommonOptions(
      Parser, Driver, &Opts.Jobs,
      "check a block's paths (and auto-place candidates) on N\n"
      "worker threads (default 1 = serial; 0 = one per hardware "
      "thread)");
  Parser.flag("--help", &Help, "this text");

  if (!Parser.parse(Argc, Argv))
    return driver::ExitUsage;
  if (Help) {
    printUsage(Parser);
    return driver::ExitClean;
  }
  if (Parser.positionals().size() > 1) {
    std::cerr << "mixcheck: extra argument '" << Parser.positionals()[1]
              << "'\n";
    return driver::ExitUsage;
  }
  if (Parser.positionals().empty()) {
    printUsage(Parser);
    return driver::ExitUsage;
  }

  std::string Source;
  if (!driver::loadInput("mixcheck", Parser.positionals()[0], Source)) {
    // The driver is live from here on: artifacts the user asked for
    // (--trace, --metrics) are flushed on every exit path, including the
    // exit-code-2 ones.
    Driver.writeArtifacts("mixcheck");
    return driver::ExitUsage;
  }
  if (Parser.positionals()[0] != "-")
    Driver.setInputName(Parser.positionals()[0]);

  // Observability: every analysis below reports into the driver's
  // registry; the trace sink is attached only under --trace, the
  // provenance sink only when the output renders evidence (--explain /
  // --format=sarif).
  Opts.Metrics = &Driver.metrics();
  Opts.Trace = Driver.traceSink();
  Opts.Prov = Driver.provenanceSink();
  Opts.Solver = Driver.solverSpec();

  AstContext Ctx;
  DiagnosticEngine Diags;

  // Persistence (--cache-dir): reuse solver verdicts across runs. The
  // session is saved by writeArtifacts; a rejected cache degrades to a
  // cold run with one MIX502 note.
  if (auto *Session = Driver.openPersist(/*Incremental=*/false,
                                         /*BlockFingerprint=*/0, Diags))
    Opts.Smt.Cache = &Session->solverCache();

  const Expr *Program = parseExpression(Source, Ctx, Diags);
  if (!Program) {
    Driver.emitDiagnostics(Diags, "mixcheck");
    Driver.writeArtifacts("mixcheck");
    return driver::ExitUsage;
  }

  TypeEnv Gamma;
  for (const auto &[Name, Spec] : VarSpecs) {
    const Type *T = parseTypeSpec(Ctx.types(), Spec);
    if (!T) {
      std::cerr << "mixcheck: bad type '" << Spec << "' for variable " << Name
                << "\n";
      Driver.emitDiagnostics(Diags, "mixcheck");
      Driver.writeArtifacts("mixcheck");
      return driver::ExitUsage;
    }
    Gamma[Name] = T;
  }

  std::ostream &Info = Driver.jsonOutput() ? std::cerr : std::cout;

  const Type *ResultType = nullptr;
  if (AutoPlace) {
    AutoPlacementOptions APOpts;
    APOpts.Mix = Opts;
    APOpts.Jobs = Opts.Jobs;
    AutoPlacementResult R =
        autoPlaceSymbolicBlocks(Ctx, Program, Gamma, Diags, APOpts);
    ResultType = R.ResultType;
    Program = R.Program;
    if (R.BlocksInserted)
      Info << "auto-placement inserted " << R.BlocksInserted
           << " symbolic block(s) in " << R.Refinements << " refinement(s)\n";
  } else {
    MixChecker Mix(Ctx.types(), Diags, Opts);
    ResultType = Symbolic ? Mix.checkSymbolic(Program, Gamma)
                          : Mix.checkTyped(Program, Gamma);
  }

  if (Driver.statsRequested() && !AutoPlace) {
    // Rendered from the metrics registry — the same numbers --metrics
    // exports (and, serially, the same the pre-registry tool printed).
    const obs::MetricsRegistry &Reg = Driver.metrics();
    Info << "symbolic blocks checked : "
         << Reg.counterValue("mix.sym_blocks_checked") << "\n"
         << "typed blocks executed   : "
         << Reg.counterValue("mix.typed_blocks_executed") << "\n"
         << "paths explored          : "
         << Reg.counterValue("mix.paths_explored") << "\n"
         << "infeasible discarded    : "
         << Reg.counterValue("mix.paths_infeasible") << "\n"
         << "solver queries          : " << Reg.counterValue("solver.queries")
         << "\n"
         // The shared engine layer's view of the same run: blocks it
         // scheduled and cache hits it served across both domains.
         << "engine blocks scheduled : " << Reg.counterValue("engine.mix.blocks")
         << "\n"
         << "engine cache hits       : "
         << Reg.counterValue("engine.cache.mix.hits") << "\n";
  }

  if (PrintProgram)
    Info << printExpr(Program) << "\n";

  Driver.emitDiagnostics(Diags, "mixcheck");
  if (!Driver.writeArtifacts("mixcheck"))
    return driver::ExitUsage;
  if (!ResultType) {
    if (!Driver.jsonOutput())
      std::cout << "rejected\n";
    return driver::ExitFindings;
  }
  if (!Driver.jsonOutput())
    std::cout << "ok: " << ResultType->str() << "\n";
  return driver::ExitClean;
}
