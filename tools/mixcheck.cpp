//===--- mixcheck.cpp - Command-line driver for the core MIX analysis ------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// Checks a core-language program (with `{t ... t}` / `{s ... s}` blocks)
// using the mixed analysis. See --help for options.
//
//===----------------------------------------------------------------------===//

#include "lang/AstPrinter.h"
#include "lang/Parser.h"
#include "mix/AutoPlacement.h"
#include "mix/MixChecker.h"

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace mix;

namespace {

void printUsage() {
  std::cout <<
      R"(usage: mixcheck [options] <file | ->

Checks a MIX core-language program. Reads from stdin when the file is '-'.

options:
  --mode=typed|symbolic   treat the outermost scope as a typed (default)
                          or symbolic block
  --strategy=fork|defer   conditional strategy (Section 3.1); default fork
  --havoc=full|effects    SETypBlock memory havoc policy (Section 3.2);
                          default full
  --precise-deref         use the refined SEDeref rule (Section 3.1)
  --assume-complete       skip the exhaustive() check (unsound mode)
  --explore=concolic      enumerate paths DART-style (one per concrete
                          run, flips solved via model extraction)
  --auto-place            insert symbolic blocks automatically on failure
  --jobs=N                check a block's paths (and auto-place
                          candidates) on N worker threads (default 1 =
                          serial; 0 = one per hardware thread)
  --var name:type         add a free variable to Gamma (type: int, bool,
                          'int ref', ...); may be repeated
  --print-program         echo the (possibly auto-annotated) program
  --stats                 print analysis statistics
  --help                  this text

exit status: 0 when the program checks, 1 otherwise.
)";
}

/// Parses a type spelled on the command line, e.g. "int ref ref".
const Type *parseTypeSpec(TypeContext &Types, const std::string &Spec) {
  std::istringstream In(Spec);
  std::string Word;
  if (!(In >> Word))
    return nullptr;
  const Type *T = nullptr;
  if (Word == "int")
    T = Types.intType();
  else if (Word == "bool")
    T = Types.boolType();
  else
    return nullptr;
  while (In >> Word) {
    if (Word != "ref")
      return nullptr;
    T = Types.refType(T);
  }
  return T;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Path;
  bool Symbolic = false;
  bool AutoPlace = false;
  bool PrintProgram = false;
  bool Stats = false;
  MixOptions Opts;
  std::vector<std::pair<std::string, std::string>> VarSpecs;

  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--help") {
      printUsage();
      return 0;
    } else if (Arg == "--mode=typed") {
      Symbolic = false;
    } else if (Arg == "--mode=symbolic") {
      Symbolic = true;
    } else if (Arg == "--strategy=fork") {
      Opts.Exec.Strat = SymExecOptions::Strategy::Fork;
    } else if (Arg == "--strategy=defer") {
      Opts.Exec.Strat = SymExecOptions::Strategy::Defer;
    } else if (Arg == "--havoc=full") {
      Opts.Exec.Havoc = SymExecOptions::HavocPolicy::FullMemory;
    } else if (Arg == "--havoc=effects") {
      Opts.Exec.Havoc = SymExecOptions::HavocPolicy::WriteEffects;
    } else if (Arg == "--precise-deref") {
      Opts.Exec.PreciseDeref = true;
    } else if (Arg == "--assume-complete") {
      Opts.Exhaustive = MixOptions::Exhaustiveness::AssumeComplete;
    } else if (Arg == "--explore=concolic") {
      Opts.Explore = MixOptions::Exploration::Concolic;
    } else if (Arg == "--explore=all") {
      Opts.Explore = MixOptions::Exploration::AllPaths;
    } else if (Arg == "--auto-place") {
      AutoPlace = true;
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      std::string N = Arg.substr(7);
      if (N.empty() || N.find_first_not_of("0123456789") != std::string::npos) {
        std::cerr << "mixcheck: bad --jobs value '" << N << "'\n";
        return 2;
      }
      Opts.Jobs = (unsigned)std::stoul(N);
      if (Opts.Jobs == 0)
        Opts.Jobs = rt::ThreadPool::hardwareWorkers();
    } else if (Arg == "--var" && I + 1 != Argc) {
      std::string Spec = Argv[++I];
      size_t Colon = Spec.find(':');
      if (Colon == std::string::npos) {
        std::cerr << "mixcheck: bad --var spec '" << Spec
                  << "' (want name:type)\n";
        return 2;
      }
      VarSpecs.emplace_back(Spec.substr(0, Colon), Spec.substr(Colon + 1));
    } else if (Arg == "--print-program") {
      PrintProgram = true;
    } else if (Arg == "--stats") {
      Stats = true;
    } else if (!Arg.empty() && Arg[0] == '-' && Arg != "-") {
      std::cerr << "mixcheck: unknown option '" << Arg << "'\n";
      return 2;
    } else if (Path.empty()) {
      Path = Arg;
    } else {
      std::cerr << "mixcheck: extra argument '" << Arg << "'\n";
      return 2;
    }
  }
  if (Path.empty()) {
    printUsage();
    return 2;
  }

  std::string Source;
  if (Path == "-") {
    std::ostringstream Buf;
    Buf << std::cin.rdbuf();
    Source = Buf.str();
  } else {
    std::ifstream In(Path);
    if (!In) {
      std::cerr << "mixcheck: cannot open '" << Path << "'\n";
      return 2;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Source = Buf.str();
  }

  AstContext Ctx;
  DiagnosticEngine Diags;
  const Expr *Program = parseExpression(Source, Ctx, Diags);
  if (!Program) {
    std::cerr << Diags.str();
    return 1;
  }

  TypeEnv Gamma;
  for (const auto &[Name, Spec] : VarSpecs) {
    const Type *T = parseTypeSpec(Ctx.types(), Spec);
    if (!T) {
      std::cerr << "mixcheck: bad type '" << Spec << "' for variable "
                << Name << "\n";
      return 2;
    }
    Gamma[Name] = T;
  }

  const Type *ResultType = nullptr;
  if (AutoPlace) {
    AutoPlacementOptions APOpts;
    APOpts.Mix = Opts;
    APOpts.Jobs = Opts.Jobs;
    AutoPlacementResult R =
        autoPlaceSymbolicBlocks(Ctx, Program, Gamma, Diags, APOpts);
    ResultType = R.ResultType;
    Program = R.Program;
    if (R.BlocksInserted)
      std::cout << "auto-placement inserted " << R.BlocksInserted
                << " symbolic block(s) in " << R.Refinements
                << " refinement(s)\n";
  } else {
    MixChecker Mix(Ctx.types(), Diags, Opts);
    ResultType = Symbolic ? Mix.checkSymbolic(Program, Gamma)
                          : Mix.checkTyped(Program, Gamma);
    if (Stats) {
      std::cout << "symbolic blocks checked : "
                << Mix.stats().SymBlocksChecked << "\n"
                << "typed blocks executed   : "
                << Mix.stats().TypedBlocksExecuted << "\n"
                << "paths explored          : "
                << Mix.stats().PathsExplored << "\n"
                << "infeasible discarded    : "
                << Mix.stats().InfeasiblePathsDiscarded << "\n"
                << "solver queries          : "
                << Mix.solver().stats().Queries << "\n";
    }
  }

  if (PrintProgram)
    std::cout << printExpr(Program) << "\n";

  std::cerr << Diags.str();
  if (!ResultType) {
    std::cout << "rejected\n";
    return 1;
  }
  std::cout << "ok: " << ResultType->str() << "\n";
  return 0;
}
