//===--- mixyd.cpp - The analysis-as-a-service daemon -----------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// Long-lived server over the AnalysisService: speaks newline-delimited
// JSON-RPC 2.0 on stdio (default) or a Unix socket (--listen=PATH), keeps
// the engines, persist sessions, and solver stores warm across requests,
// deduplicates identical in-flight requests by dependency-closure hash,
// and runs analyses on a thread pool behind admission control
// (--max-inflight) with an optional per-request deadline (--deadline-ms).
//
// Methods:
//   analyze      params = protocol-v1 AnalysisRequest (src/service/Protocol.h),
//                plus optional "stream": true to receive each diagnostic
//                as a "diagnostic" notification before the final result.
//   fileChanged  params = {"path": P}; drops cached responses computed
//                from P and invalidates warm per-function summaries.
//   status       in-flight/admission/cache counters, request-latency
//                quantiles, and the slowest requests seen so far.
//   metrics      the full metrics registry as OpenMetrics text.
//   shutdown     saves warm sessions, writes artifacts, exits cleanly.
//
// SIGINT/SIGTERM take the same clean-shutdown path as the shutdown
// method: in-flight work drains, warm sessions save, and the --trace /
// --metrics / --metrics-file artifacts flush before exit.
//
// The payload inside an "analyze" result is byte-identical to what the
// corresponding CLI prints for the same input and format (the CI daemon
// smoke diffs them).
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "service/AnalysisService.h"
#include "service/Protocol.h"
#include "support/Json.h"
#include "support/StringExtras.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <deque>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/ThreadPool.h"

using namespace mix;
namespace driver = mix::driver;
namespace service = mix::service;

namespace {

/// Set by the SIGINT/SIGTERM handler; polled by the serve loops. The
/// handlers are installed without SA_RESTART so a blocked read()/accept()
/// returns EINTR and the loop can notice the flag.
volatile std::sig_atomic_t GSignal = 0;

void onShutdownSignal(int Sig) { GSignal = Sig; }

void installSignalHandlers() {
  struct sigaction SA{};
  SA.sa_handler = onShutdownSignal;
  sigemptyset(&SA.sa_mask);
  SA.sa_flags = 0; // no SA_RESTART: blocked syscalls must wake up
  ::sigaction(SIGINT, &SA, nullptr);
  ::sigaction(SIGTERM, &SA, nullptr);
}

void printUsage(const driver::OptionParser &Parser) {
  std::cout <<
      R"(usage: mixyd [options]

Analysis daemon: newline-delimited JSON-RPC 2.0 over stdio, or over a
Unix socket with --listen=PATH. See DESIGN.md section 15 for the
protocol; requests carry their own output format, so the CLI-only output
flags (--format, --explain, --stats) do not exist here.

options:
)" << Parser.renderHelp()
            << R"(
exit status: 0 on clean shutdown, 2 on usage errors.
)";
}

/// One reply channel: stdout (Fd = -1) or a connected socket. Writes are
/// whole lines under a mutex so concurrent workers cannot interleave.
class Channel {
public:
  explicit Channel(int Fd) : Fd(Fd) {}

  void send(const std::string &Line) {
    std::lock_guard<std::mutex> Lock(WriteMu);
    if (Fd < 0) {
      std::cout << Line << "\n" << std::flush;
      return;
    }
    std::string Framed = Line + "\n";
    size_t Off = 0;
    while (Off < Framed.size()) {
      ssize_t N = ::write(Fd, Framed.data() + Off, Framed.size() - Off);
      if (N <= 0)
        return; // client went away; nothing useful to do
      Off += (size_t)N;
    }
  }

private:
  int Fd;
  std::mutex WriteMu;
};

/// Expires analyze tickets that outlive --deadline-ms: whoever claims the
/// ticket first (worker completion or this watcher) sends the reply.
class DeadlineWatcher {
  struct Ticket {
    std::chrono::steady_clock::time_point Deadline;
    std::shared_ptr<std::atomic<bool>> Claimed;
    std::function<void()> OnTimeout;
  };

public:
  ~DeadlineWatcher() { stop(); }

  void start() {
    Worker = std::thread([this] { run(); });
  }

  void add(std::chrono::steady_clock::time_point Deadline,
           std::shared_ptr<std::atomic<bool>> Claimed,
           std::function<void()> OnTimeout) {
    {
      std::lock_guard<std::mutex> Lock(M);
      Tickets.push_back({Deadline, std::move(Claimed), std::move(OnTimeout)});
    }
    CV.notify_one();
  }

  void stop() {
    {
      std::lock_guard<std::mutex> Lock(M);
      if (Stopped)
        return;
      Stopped = true;
    }
    CV.notify_one();
    if (Worker.joinable())
      Worker.join();
  }

private:
  void run() {
    std::unique_lock<std::mutex> Lock(M);
    while (!Stopped) {
      auto Now = std::chrono::steady_clock::now();
      std::vector<std::function<void()>> Fired;
      auto Next = Now + std::chrono::hours(24);
      for (size_t I = 0; I < Tickets.size();) {
        if (Tickets[I].Claimed->load()) {
          // The worker already replied; retire the ticket silently even
          // when the sweep runs at/after its deadline.
          Tickets[I] = std::move(Tickets.back());
          Tickets.pop_back();
          continue;
        }
        if (Tickets[I].Deadline <= Now) {
          // Fire only when this sweep wins the claim; losing the race
          // to a concurrent completion must stay silent too.
          if (!Tickets[I].Claimed->exchange(true) && Tickets[I].OnTimeout)
            Fired.push_back(std::move(Tickets[I].OnTimeout));
          Tickets[I] = std::move(Tickets.back());
          Tickets.pop_back();
          continue;
        }
        Next = std::min(Next, Tickets[I].Deadline);
        ++I;
      }
      if (!Fired.empty()) {
        Lock.unlock();
        for (auto &Fn : Fired)
          Fn();
        Lock.lock();
        continue;
      }
      if (Tickets.empty())
        CV.wait(Lock, [this] { return Stopped || !Tickets.empty(); });
      else
        CV.wait_until(Lock, Next);
    }
  }

  std::mutex M;
  std::condition_variable CV;
  std::vector<Ticket> Tickets;
  std::thread Worker;
  bool Stopped = false;
};

/// The daemon: owns the service (via a DriverContext so artifacts and
/// observability reuse the CLI plumbing), the worker pool, and admission
/// state. handleLine() is the whole protocol.
class Daemon {
public:
  Daemon(driver::DriverContext &Driver, unsigned Workers, unsigned MaxInflight,
         unsigned DeadlineMs)
      : Driver(Driver), Svc(Driver.service()), MaxInflight(MaxInflight),
        DeadlineMs(DeadlineMs),
        Pool(Workers, Driver.traceSink(), "mixyd") {
    if (DeadlineMs)
      Deadlines.start();
  }

  ~Daemon() { finish(); }

  /// Joins in-flight work and the deadline watcher. Call before saving
  /// sessions so no worker is still writing into them.
  void finish() {
    drainFutures(/*All=*/true);
    Deadlines.stop();
  }

  bool stopped() const { return Stop.load(); }

  /// Invoked (once) when a client asks for shutdown — the socket mode
  /// uses it to unblock accept().
  void onStop(std::function<void()> Fn) { StopFn = std::move(Fn); }

  void handleLine(const std::string &Line, std::shared_ptr<Channel> Out) {
    json::Value Msg;
    std::string ParseError;
    if (!json::parseDocument(Line, Msg, &ParseError)) {
      Out->send(service::rpcError("null", service::RpcParseError,
                                  "parse error: " + ParseError));
      return;
    }
    if (!Msg.isObject() || !Msg["method"].isString()) {
      Out->send(service::rpcError(service::encodeRpcId(Msg["id"]),
                                  service::RpcInvalidRequest,
                                  "expected an object with a \"method\""));
      return;
    }
    std::string Id = service::encodeRpcId(Msg["id"]);
    const std::string &Method = Msg["method"].Str;

    if (Method == "analyze")
      return analyze(Msg, Id, std::move(Out));
    if (Method == "fileChanged") {
      const json::Value &Path = Msg["params"]["path"];
      if (!Path.isString()) {
        Out->send(service::rpcError(Id, service::RpcInvalidParams,
                                    "params must carry a string \"path\""));
        return;
      }
      Svc.fileChanged(Path.Str);
      Out->send(service::rpcResult(Id, "{\"ok\": true}"));
      return;
    }
    if (Method == "status") {
      const obs::MetricsRegistry &Reg = Svc.metrics();
      std::string S =
          "{\"in_flight\": " + std::to_string(InFlightCount.load()) +
          ", \"max_inflight\": " + std::to_string(MaxInflight) +
          ", \"requests\": " +
          std::to_string(Reg.counterValue("service.requests")) +
          ", \"cache_hits\": " +
          std::to_string(Reg.counterValue("service.cache.hits")) +
          ", \"dedup_hits\": " +
          std::to_string(Reg.counterValue("service.dedup.hits")) +
          ", \"busy_rejections\": " +
          std::to_string(Reg.counterValue("daemon.busy_rejections")) +
          ", \"timeouts\": " +
          std::to_string(Reg.counterValue("daemon.timeouts"));
      // Latency quantiles over every executed (non-cached) request, in
      // integer microseconds — bucket-interpolated, so read them as
      // order-of-magnitude numbers, not exact ranks.
      obs::HistogramSnapshot H = Reg.histogramSnapshot("service.request.us");
      S += ", \"request_us\": {\"count\": " + std::to_string(H.Count) +
           ", \"p50\": " + std::to_string((uint64_t)(H.quantile(0.5) + 0.5)) +
           ", \"p90\": " + std::to_string((uint64_t)(H.quantile(0.9) + 0.5)) +
           ", \"p99\": " + std::to_string((uint64_t)(H.quantile(0.99) + 0.5)) +
           "}";
      S += ", \"slow_requests\": [";
      bool FirstSlow = true;
      for (const service::SlowRequest &SR : Svc.slowRequests()) {
        S += FirstSlow ? "{" : ", {";
        FirstSlow = false;
        S += "\"id\": \"" + jsonEscape(SR.Id) + "\", \"key\": \"" +
             std::to_string(SR.Key) + "\", \"total_us\": " +
             std::to_string(SR.TotalUs) + ", \"exit\": " +
             std::to_string(SR.Exit) + ", \"warnings\": " +
             std::to_string(SR.Warnings) + ", \"errors\": " +
             std::to_string(SR.Errors);
        std::string Phases;
        for (unsigned I = 0; I != obs::NumPhases; ++I) {
          if (!SR.PhaseUs[I])
            continue;
          Phases += Phases.empty() ? "{" : ", ";
          Phases += "\"" + std::string(obs::phaseName((obs::Phase)I)) +
                    "\": " + std::to_string(SR.PhaseUs[I]);
        }
        if (!Phases.empty())
          S += ", \"phases\": " + Phases + "}";
        S += "}";
      }
      S += "]}";
      Out->send(service::rpcResult(Id, S));
      return;
    }
    if (Method == "metrics") {
      Out->send(service::rpcResult(
          Id, "{\"openmetrics\": \"" +
                  jsonEscape(Svc.metrics().renderOpenMetrics()) + "\"}"));
      return;
    }
    if (Method == "shutdown") {
      Out->send(service::rpcResult(Id, "{\"ok\": true}"));
      Stop.store(true);
      if (StopFn)
        StopFn();
      return;
    }
    Out->send(service::rpcError(Id, service::RpcMethodNotFound,
                                "unknown method '" + Method + "'"));
  }

private:
  void analyze(const json::Value &Msg, const std::string &Id,
               std::shared_ptr<Channel> Out) {
    const json::Value &Params = Msg["params"];
    if (!Params.isObject()) {
      Out->send(service::rpcError(Id, service::RpcInvalidParams,
                                  "params must be a request object"));
      return;
    }

    // "stream" is framing, not analysis input: strip it before the strict
    // protocol decode.
    bool Stream = Params["stream"].boolean();
    json::Value Req = Params;
    Req.Fields.erase("stream");

    service::AnalysisRequest AReq;
    std::string DecodeError;
    if (!service::decodeRequest(Req, AReq, DecodeError)) {
      Out->send(
          service::rpcError(Id, service::RpcInvalidParams, DecodeError));
      return;
    }

    // Daemon-level defaults for fields the request left unset: the
    // launch flags name the cache directory and solver this server warms.
    if (!Params.has("cache_dir"))
      AReq.CacheDir = Driver.cacheDir();
    if (!Params.has("solver"))
      AReq.Solver.Backend = Driver.solverSpec().Backend;
    if (!Params.has("solver_portfolio"))
      AReq.Solver.Portfolio = Driver.solverSpec().Portfolio;
    if (!Params.has("trace"))
      AReq.Trace = Driver.traceSink() != nullptr;
    if (!Params.has("exec"))
      AReq.ExecMode = Driver.execMode();

    // Admission control: never more than --max-inflight analyses queued
    // or running; extra requests get a structured busy error immediately.
    unsigned Queued = InFlightCount.fetch_add(1);
    if (Queued >= MaxInflight) {
      InFlightCount.fetch_sub(1);
      Svc.metrics().counter("daemon.busy_rejections").inc();
      Out->send(service::rpcError(
          Id, service::RpcServerBusy,
          "server busy: " + std::to_string(MaxInflight) +
              " requests already in flight"));
      return;
    }

    // First claimant replies: the worker with the result, or the
    // deadline watcher with a timeout error. The slot is only freed when
    // the analysis actually finishes — a timed-out request keeps
    // consuming its slot until then, which is what bounds engine load.
    auto Claimed = std::make_shared<std::atomic<bool>>(false);
    if (DeadlineMs) {
      Deadlines.add(std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(DeadlineMs),
                    Claimed, [this, Id, Out] {
                      Svc.metrics().counter("daemon.timeouts").inc();
                      Out->send(service::rpcError(
                          Id, service::RpcDeadlineExceeded,
                          "deadline exceeded after " +
                              std::to_string(DeadlineMs) + " ms"));
                    });
    }

    auto Future = Pool.submit([this, AReq = std::move(AReq), Id, Out, Claimed,
                               Stream] {
      service::AnalysisResponse Resp = Svc.serve(AReq);
      InFlightCount.fetch_sub(1);
      if (Claimed->exchange(true))
        return; // timed out; the error envelope already went out
      if (Stream)
        for (const service::DiagnosticSummary &D : Resp.Diagnostics)
          Out->send(service::rpcNotification(
              "diagnostic",
              "{\"request\": " + Id + ", \"diagnostic\": {\"id\": \"" +
                  jsonEscape(D.Id) + "\", \"severity\": \"" +
                  jsonEscape(D.Severity) + "\", \"line\": " +
                  std::to_string(D.Line) + ", \"column\": " +
                  std::to_string(D.Column) + ", \"message\": \"" +
                  jsonEscape(D.Message) + "\"}}"));
      Out->send(service::rpcResult(Id, service::encodeResponse(Resp)));
    });
    trackFuture(std::move(Future));
  }

  /// Outstanding futures must be awaited before the pool dies; completed
  /// ones are reaped opportunistically so the deque stays bounded by the
  /// admission cap.
  void trackFuture(rt::TaskFuture<void> Future) {
    std::lock_guard<std::mutex> Lock(FuturesMu);
    for (size_t I = 0; I < Futures.size();) {
      if (Futures[I].ready()) {
        Futures[I] = std::move(Futures.back());
        Futures.pop_back();
      } else {
        ++I;
      }
    }
    Futures.push_back(std::move(Future));
  }

  void drainFutures(bool All) {
    std::vector<rt::TaskFuture<void>> Local;
    {
      std::lock_guard<std::mutex> Lock(FuturesMu);
      Local.swap(Futures);
    }
    for (auto &F : Local)
      if (All || F.ready())
        F.get();
  }

  driver::DriverContext &Driver;
  service::AnalysisService &Svc;
  unsigned MaxInflight;
  unsigned DeadlineMs;
  rt::ThreadPool Pool;
  DeadlineWatcher Deadlines;
  std::atomic<unsigned> InFlightCount{0};
  std::atomic<bool> Stop{false};
  std::function<void()> StopFn;
  std::mutex FuturesMu;
  std::vector<rt::TaskFuture<void>> Futures;
};

/// Reads newline-delimited messages from \p Fd until EOF, daemon stop, or
/// a shutdown signal.
void serveFd(Daemon &D, int Fd, std::shared_ptr<Channel> Out) {
  std::string Buf;
  char Chunk[4096];
  while (!D.stopped() && !GSignal) {
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N < 0 && errno == EINTR)
      continue; // the loop condition rechecks GSignal
    if (N <= 0)
      break;
    Buf.append(Chunk, (size_t)N);
    size_t Start = 0;
    for (size_t NL; (NL = Buf.find('\n', Start)) != std::string::npos;
         Start = NL + 1) {
      std::string Line = Buf.substr(Start, NL - Start);
      if (!std::string(trim(Line)).empty())
        D.handleLine(Line, Out);
      if (D.stopped())
        break;
    }
    Buf.erase(0, Start);
  }
}

} // namespace

int main(int Argc, char **Argv) {
  bool Help = false;
  std::string ListenPath;
  unsigned MaxInflight = 8;
  unsigned DeadlineMs = 0;
  unsigned Workers = rt::ThreadPool::hardwareWorkers();

  driver::OptionParser Parser("mixyd");
  // Per-request output makes the CLI-output flags meaningless here; the
  // exclusion keeps them out of parsing, help, and did-you-mean — an
  // excluded flag is exactly as unknown as a misspelled one.
  Parser.excludeGroup("cli-output");
  driver::DriverContext Driver([] {
    service::ServiceConfig SC;
    SC.KeepWarm = true;
    SC.PerRequestMetrics = true;
    // Daemon responses always carry their request id and phase breakdown;
    // span trees additionally need the request to ask for tracing.
    SC.RequestTelemetry = true;
    return SC;
  }());

  Parser.value(
      "--listen",
      [&](const std::string &V) {
        if (V.empty())
          return false;
        ListenPath = V;
        return true;
      },
      "PATH", "accept connections on a Unix socket at PATH instead of\n"
              "serving one client on stdio");
  Parser.value(
      "--max-inflight",
      [&](const std::string &V) {
        if (V.empty() || V.find_first_not_of("0123456789") != std::string::npos)
          return false;
        MaxInflight = (unsigned)std::stoul(V);
        return MaxInflight != 0;
      },
      "N", "admit at most N concurrent analyze requests; extras get a\n"
           "structured \"server busy\" error (default 8)");
  Parser.value(
      "--deadline-ms",
      [&](const std::string &V) {
        if (V.empty() || V.find_first_not_of("0123456789") != std::string::npos)
          return false;
        DeadlineMs = (unsigned)std::stoul(V);
        return true;
      },
      "T", "answer analyze requests that run longer than T ms with a\n"
           "structured timeout error (default 0 = no deadline)");
  std::string MetricsFilePath;
  unsigned MetricsIntervalMs = 5000;
  Parser.value(
      "--metrics-file",
      [&](const std::string &V) {
        if (V.empty())
          return false;
        MetricsFilePath = V;
        return true;
      },
      "PATH", "periodically rewrite PATH with the metrics registry as\n"
              "OpenMetrics text (scrape it with any OpenMetrics collector);\n"
              "also flushed once at shutdown");
  Parser.value(
      "--metrics-interval-ms",
      [&](const std::string &V) {
        if (V.empty() || V.find_first_not_of("0123456789") != std::string::npos)
          return false;
        MetricsIntervalMs = (unsigned)std::stoul(V);
        return MetricsIntervalMs != 0;
      },
      "T", "rewrite --metrics-file every T ms (default 5000)");
  driver::registerCommonOptions(
      Parser, Driver, &Workers,
      "serve analyze requests on N pool workers (default: one per\n"
      "hardware thread); each request's own \"jobs\" field still "
      "controls\nits engine parallelism");
  Parser.flag("--help", &Help, "this text");

  if (!Parser.parse(Argc, Argv))
    return driver::ExitUsage;
  if (Help) {
    printUsage(Parser);
    return driver::ExitClean;
  }
  if (!Parser.positionals().empty()) {
    std::cerr << "mixyd: extra argument '" << Parser.positionals()[0] << "'\n";
    return driver::ExitUsage;
  }

  Daemon D(Driver, Workers, MaxInflight, DeadlineMs);
  installSignalHandlers();

  // The --metrics-file flusher: one background thread rewriting the file
  // every interval, woken early at shutdown for the final flush. Reads
  // sum the sharded slots, so an off-barrier flush is approximate in the
  // same way any scrape of a live process is.
  std::mutex FlushMu;
  std::condition_variable FlushCv;
  bool FlushStop = false;
  std::thread Flusher;
  if (!MetricsFilePath.empty())
    Flusher = std::thread([&] {
      std::unique_lock<std::mutex> Lock(FlushMu);
      for (;;) {
        FlushCv.wait_for(Lock, std::chrono::milliseconds(MetricsIntervalMs),
                         [&] { return FlushStop; });
        if (FlushStop)
          return;
        Lock.unlock();
        driver::writeFile("mixyd", MetricsFilePath,
                          Driver.metrics().renderOpenMetrics());
        Lock.lock();
      }
    });

  if (ListenPath.empty()) {
    // Stdio mode: one client, the pipe is the connection. Reading fd 0
    // directly (instead of std::getline) lets a shutdown signal
    // interrupt the blocked read.
    auto Out = std::make_shared<Channel>(-1);
    serveFd(D, 0, Out);
  } else {
    int ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (ListenFd < 0) {
      std::cerr << "mixyd: cannot create socket\n";
      return driver::ExitUsage;
    }
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    if (ListenPath.size() >= sizeof(Addr.sun_path)) {
      std::cerr << "mixyd: socket path too long '" << ListenPath << "'\n";
      return driver::ExitUsage;
    }
    std::snprintf(Addr.sun_path, sizeof(Addr.sun_path), "%s",
                  ListenPath.c_str());
    ::unlink(ListenPath.c_str());
    if (::bind(ListenFd, (sockaddr *)&Addr, sizeof(Addr)) < 0 ||
        ::listen(ListenFd, 16) < 0) {
      std::cerr << "mixyd: cannot listen on '" << ListenPath << "'\n";
      ::close(ListenFd);
      return driver::ExitUsage;
    }

    // The shutdown method unblocks the accept loop by closing the
    // listener's read side from the handling thread.
    D.onStop([ListenFd] { ::shutdown(ListenFd, SHUT_RDWR); });

    std::vector<std::thread> Clients;
    std::vector<int> ClientFds;
    std::mutex ClientsMu;
    while (!D.stopped() && !GSignal) {
      int Fd = ::accept(ListenFd, nullptr, nullptr);
      if (Fd < 0) {
        if (errno == EINTR && !GSignal && !D.stopped())
          continue;
        break;
      }
      if (D.stopped() || GSignal) {
        ::close(Fd);
        break;
      }
      {
        std::lock_guard<std::mutex> Lock(ClientsMu);
        ClientFds.push_back(Fd);
      }
      // The Channel outlives this reader thread through the shared_ptr
      // any in-flight worker holds; only the read side ends at EOF.
      Clients.emplace_back([&D, Fd] {
        auto Out = std::make_shared<Channel>(Fd);
        serveFd(D, Fd, Out);
      });
    }
    ::close(ListenFd);
    ::unlink(ListenPath.c_str());
    // Unblock the reader threads but leave the write side open: drained
    // in-flight workers can still deliver their final replies.
    {
      std::lock_guard<std::mutex> Lock(ClientsMu);
      for (int Fd : ClientFds)
        ::shutdown(Fd, SHUT_RD);
    }
    for (std::thread &T : Clients)
      T.join();
    // Drain in-flight analyses before closing the fds their Channels
    // wrap: the analyses themselves open files (source reads, persist
    // save, artifacts), so a closed fd number could be reused and a late
    // reply would write response JSON into an unrelated file.
    D.finish();
    {
      std::lock_guard<std::mutex> Lock(ClientsMu);
      for (int Fd : ClientFds)
        ::close(Fd);
    }
  }

  // Clean shutdown — reached from the shutdown method, client EOF, and
  // SIGINT/SIGTERM alike: finish in-flight work first, then publish warm
  // sessions and flush the --trace/--metrics/--metrics-file artifacts
  // (the final --metrics-file write runs at a barrier, so it is exact).
  D.finish();
  if (Flusher.joinable()) {
    {
      std::lock_guard<std::mutex> Lock(FlushMu);
      FlushStop = true;
    }
    FlushCv.notify_one();
    Flusher.join();
  }
  bool Ok = Driver.writeArtifacts("mixyd");
  if (!MetricsFilePath.empty())
    Ok = driver::writeFile("mixyd", MetricsFilePath,
                           Driver.metrics().renderOpenMetrics()) && Ok;
  return Ok ? driver::ExitClean : driver::ExitUsage;
}
