//===--- BenchReport.h - Shared main() for the benchmark binaries ---------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MIX_BENCH_MAIN(name) replaces BENCHMARK_MAIN() in every bench_*
/// binary: unless the caller already passed --benchmark_out, results are
/// additionally written to BENCH_<name>.json (google benchmark's JSON
/// format) in the working directory. CI uploads the uniform BENCH_*.json
/// artifact set without per-binary plumbing; local runs get the same
/// files for free.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_BENCH_BENCHREPORT_H
#define MIX_BENCH_BENCHREPORT_H

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

namespace mix {
namespace benchreport {

inline int benchMain(int argc, char **argv, const char *Name) {
  std::vector<char *> Args(argv, argv + argc);
  bool HasOut = false;
  for (int I = 1; I < argc; ++I)
    if (std::strncmp(argv[I], "--benchmark_out=", 16) == 0)
      HasOut = true;
  std::string OutFlag, FmtFlag;
  if (!HasOut) {
    OutFlag = std::string("--benchmark_out=BENCH_") + Name + ".json";
    FmtFlag = "--benchmark_out_format=json";
    Args.push_back(OutFlag.data());
    Args.push_back(FmtFlag.data());
  }
  int Argc = (int)Args.size();
  benchmark::Initialize(&Argc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(Argc, Args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

} // namespace benchreport
} // namespace mix

#define MIX_BENCH_MAIN(name)                                                   \
  int main(int argc, char **argv) {                                            \
    return mix::benchreport::benchMain(argc, argv, #name);                     \
  }

#endif // MIX_BENCH_BENCHREPORT_H
