//===--- bench_caching.cpp - E7: block caching ------------------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// Experiment E7 (Section 4.3): "since it can be quite costly to analyze
// that block repeatedly, we cache the calling context and the results of
// the analysis for that block". The workload calls the same symbolic
// function from many call sites under compatible contexts; with caching
// the executor runs it once, without it once per site.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "cfront/CParser.h"
#include "mixy/Mixy.h"

#include <benchmark/benchmark.h>

#include <string>

using namespace mix::c;
using mix::DiagnosticEngine;

namespace {

std::string manyCallersProgram(unsigned Callers) {
  std::string Out = R"(
void sysutil_free(void * nonnull p_ptr) MIX(typed);
int g;
void helper(int *p, int n) MIX(symbolic) {
  int i;
  i = 0;
  while (i < n) { i = i + 1; }
  if (p != NULL) { sysutil_free((void*)p); }
}
)";
  for (unsigned I = 0; I != Callers; ++I)
    Out += "void caller" + std::to_string(I) +
           "(void) { helper(&g, " + std::to_string(5 + (I % 3)) + "); }\n";
  Out += "int main(void) {\n";
  for (unsigned I = 0; I != Callers; ++I)
    Out += "  caller" + std::to_string(I) + "();\n";
  Out += "  return 0;\n}\n";
  return Out;
}

void runCaching(benchmark::State &State, bool EnableCache) {
  unsigned Callers = (unsigned)State.range(0);
  std::string Source = manyCallersProgram(Callers);
  unsigned BlockRuns = 0, CacheHits = 0;
  for (auto _ : State) {
    CAstContext Ctx;
    DiagnosticEngine Diags;
    const CProgram *P = parseC(Source, Ctx, Diags);
    MixyOptions Opts;
    Opts.EnableCache = EnableCache;
    MixyAnalysis Analysis(*P, Ctx, Diags, Opts);
    benchmark::DoNotOptimize(
        Analysis.run(MixyAnalysis::StartMode::Typed));
    BlockRuns = Analysis.stats().SymbolicBlockRuns;
    CacheHits = Analysis.stats().SymbolicCacheHits;
  }
  State.counters["block_runs"] = BlockRuns;
  State.counters["cache_hits"] = CacheHits;
}

void BM_Caching_On(benchmark::State &State) {
  runCaching(State, true);
}
void BM_Caching_Off(benchmark::State &State) {
  runCaching(State, false);
}

} // namespace

BENCHMARK(BM_Caching_On)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Caching_Off)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

MIX_BENCH_MAIN(caching)
