//===--- bench_observe.cpp - Observability overhead guard -------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// Guards the overhead contract from DESIGN.md section 10: a detached
// (null) metrics handle or trace sink must cost one predictable branch
// per instrumentation site, so the instrumented analyses run at seed
// speed when no --trace/--metrics is requested. The attached variants are
// benchmarked alongside so a regression in either direction is visible.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "cfront/CParser.h"
#include "mixy/Mixy.h"
#include "mixy/VsftpdMini.h"
#include "observe/Metrics.h"
#include "observe/Phase.h"
#include "observe/Trace.h"
#include "provenance/Provenance.h"

#include <benchmark/benchmark.h>

using namespace mix::c;
using mix::DiagnosticEngine;
namespace obs = mix::obs;
namespace prov = mix::prov;

namespace {

//===----------------------------------------------------------------------===//
// Micro: the per-site cost of detached vs attached handles.
//===----------------------------------------------------------------------===//

void BM_Counter_Detached(benchmark::State &State) {
  obs::Counter C; // null handle: add() is a branch
  for (auto _ : State) {
    C.inc();
    benchmark::DoNotOptimize(C);
  }
}

void BM_Counter_Attached(benchmark::State &State) {
  obs::MetricsRegistry Reg;
  obs::Counter C = Reg.counter("bench.count");
  for (auto _ : State) {
    C.inc();
    benchmark::DoNotOptimize(C);
  }
}

void BM_Histogram_Detached(benchmark::State &State) {
  obs::Histogram H;
  uint64_t V = 0;
  for (auto _ : State) {
    H.record(++V);
    benchmark::DoNotOptimize(H);
  }
}

void BM_Histogram_Attached(benchmark::State &State) {
  obs::MetricsRegistry Reg;
  obs::Histogram H = Reg.histogram("bench.lat");
  uint64_t V = 0;
  for (auto _ : State) {
    H.record(++V);
    benchmark::DoNotOptimize(H);
  }
}

void BM_PhaseTimer_Detached(benchmark::State &State) {
  // Null telemetry context: constructor and destructor are one branch
  // each, no clock reads — the state every CLI run without --stats or
  // --profile is in.
  for (auto _ : State) {
    obs::PhaseTimer Timer(nullptr, obs::Phase::BlockExec);
    benchmark::DoNotOptimize(Timer);
  }
}

void BM_PhaseTimer_Attached(benchmark::State &State) {
  obs::RequestTelemetry T;
  for (auto _ : State) {
    obs::PhaseTimer Timer(&T, obs::Phase::BlockExec);
    benchmark::DoNotOptimize(Timer);
  }
  State.counters["block_exec_us"] =
      (double)T.phaseUs(obs::Phase::BlockExec);
}

void BM_PhaseTimer_AttachedWithSpans(benchmark::State &State) {
  obs::TraceSink Sink;
  obs::RequestTelemetry T;
  T.enableSpans(Sink.epoch());
  for (auto _ : State) {
    obs::PhaseTimer Timer(&T, obs::Phase::BlockExec);
    benchmark::DoNotOptimize(Timer);
  }
  State.counters["events"] = (double)(T.sink() ? T.sink()->eventCount() : 0);
}

void BM_TraceSpan_NullSink(benchmark::State &State) {
  for (auto _ : State) {
    obs::TraceSpan Span(nullptr, "bench.span", "bench");
    benchmark::DoNotOptimize(Span);
  }
}

void BM_TraceSpan_LiveSink(benchmark::State &State) {
  obs::TraceSink Sink;
  for (auto _ : State) {
    obs::TraceSpan Span(&Sink, "bench.span", "bench");
    benchmark::DoNotOptimize(Span);
  }
  State.counters["events"] = (double)Sink.eventCount();
}

//===----------------------------------------------------------------------===//
// Macro: a full MIXY case-study run with instrumentation off / on. The
// "Off" variant is the configuration every untraced CLI run uses and is
// the one the <2% regression budget applies to.
//===----------------------------------------------------------------------===//

void runCase(benchmark::State &State, bool Metrics, bool Trace,
             bool Explain = false, bool Telemetry = false) {
  std::string Source = corpus::vsftpdCase(2, true);
  for (auto _ : State) {
    CAstContext Ctx;
    DiagnosticEngine Diags;
    const CProgram *P = parseC(Source, Ctx, Diags);
    obs::MetricsRegistry Reg;
    obs::TraceSink Sink;
    prov::ProvenanceSink Prov;
    obs::RequestTelemetry T;
    MixyOptions Opts;
    if (Metrics)
      Opts.Metrics = &Reg;
    if (Trace)
      Opts.Trace = &Sink;
    if (Explain)
      Opts.Prov = &Prov;
    if (Telemetry)
      Opts.Telemetry = &T;
    MixyAnalysis Analysis(*P, Ctx, Diags, Opts);
    benchmark::DoNotOptimize(Analysis.run(MixyAnalysis::StartMode::Typed));
  }
}

void BM_Mixy_ObservabilityOff(benchmark::State &State) {
  runCase(State, false, false);
}
void BM_Mixy_MetricsOn(benchmark::State &State) { runCase(State, true, false); }
void BM_Mixy_MetricsAndTraceOn(benchmark::State &State) {
  runCase(State, true, true);
}
// The provenance sink follows the same null-handle contract: the default
// (detached) run above doubles as the explain-off baseline, and this
// variant shows what recording witness paths / flow chains / block
// contexts costs when --explain or --format=sarif asks for them.
void BM_Mixy_ProvenanceOn(benchmark::State &State) {
  runCase(State, true, false, /*Explain=*/true);
}
// Per-request phase attribution on top of metrics — the daemon's default
// request configuration (spans stay off unless the request traces).
void BM_Mixy_TelemetryOn(benchmark::State &State) {
  runCase(State, true, false, /*Explain=*/false, /*Telemetry=*/true);
}

} // namespace

BENCHMARK(BM_Counter_Detached);
BENCHMARK(BM_Counter_Attached);
BENCHMARK(BM_Histogram_Detached);
BENCHMARK(BM_Histogram_Attached);
BENCHMARK(BM_PhaseTimer_Detached);
BENCHMARK(BM_PhaseTimer_Attached);
BENCHMARK(BM_PhaseTimer_AttachedWithSpans);
BENCHMARK(BM_TraceSpan_NullSink);
BENCHMARK(BM_TraceSpan_LiveSink);
BENCHMARK(BM_Mixy_ObservabilityOff);
BENCHMARK(BM_Mixy_MetricsOn);
BENCHMARK(BM_Mixy_MetricsAndTraceOn);
BENCHMARK(BM_Mixy_ProvenanceOn);
BENCHMARK(BM_Mixy_TelemetryOn);

MIX_BENCH_MAIN(observe)
