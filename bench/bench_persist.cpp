//===--- bench_persist.cpp - Cold vs. warm persistent-cache runs ------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// Measures the persistent analysis cache (src/persist/): a cold run
// pays full symbolic execution and solver cost and fills the cache; a
// warm run on the unchanged program answers block summaries and solver
// queries from disk. The gap between BM_Mixy_Cold and BM_Mixy_Warm is
// what --cache-dir buys a re-run; BM_Mixy_NoCache is the baseline
// without any persistence plumbing at all.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "cfront/CParser.h"
#include "mixy/Mixy.h"
#include "mixy/VsftpdMini.h"
#include "persist/PersistSession.h"

#include <benchmark/benchmark.h>

#include <filesystem>
#include <memory>
#include <string>

using namespace mix;
using namespace mix::c;

namespace {

std::string benchDir(const std::string &Tag) {
  std::string Dir =
      (std::filesystem::temp_directory_path() / ("mix_bench_persist_" + Tag))
          .string();
  return Dir;
}

unsigned analyzeOnce(const std::string &Source, const std::string &Dir,
                     obs::MetricsRegistry *Reg) {
  CAstContext Ctx;
  DiagnosticEngine Diags;
  const CProgram *P = parseC(Source, Ctx, Diags);
  MixyOptions Opts;
  Opts.Metrics = Reg;
  std::unique_ptr<persist::PersistSession> Session;
  if (!Dir.empty()) {
    persist::PersistOptions PO;
    PO.Dir = Dir;
    PO.Incremental = true;
    PO.BlockFingerprint = mixyPersistFingerprint(Opts);
    PO.Metrics = Reg;
    Session = std::make_unique<persist::PersistSession>(std::move(PO));
    Opts.Persist = Session.get();
  }
  MixyAnalysis Analysis(*P, Ctx, Diags, Opts);
  unsigned W = Analysis.run(MixyAnalysis::StartMode::Typed, "filler_main");
  if (Session)
    Session->save(nullptr);
  return W;
}

std::string scaledSource(benchmark::State &State) {
  return corpus::vsftpdScaled(/*Annotated=*/true,
                              /*Modules=*/(unsigned)State.range(0),
                              /*Symbolic=*/(unsigned)State.range(0) / 2);
}

/// Baseline: no persistence at all.
void BM_Mixy_NoCache(benchmark::State &State) {
  std::string Source = scaledSource(State);
  for (auto _ : State)
    benchmark::DoNotOptimize(analyzeOnce(Source, "", nullptr));
}

/// Cold: every iteration starts from an empty cache directory and pays
/// the fill + save cost on top of the full analysis.
void BM_Mixy_Cold(benchmark::State &State) {
  std::string Source = scaledSource(State);
  std::string Dir = benchDir("cold" + std::to_string(State.range(0)));
  for (auto _ : State) {
    std::filesystem::remove_all(Dir);
    benchmark::DoNotOptimize(analyzeOnce(Source, Dir, nullptr));
  }
  std::filesystem::remove_all(Dir);
}

/// Warm: the cache directory is pre-filled once outside the timed loop;
/// every iteration replays block summaries from disk.
void BM_Mixy_Warm(benchmark::State &State) {
  std::string Source = scaledSource(State);
  std::string Dir = benchDir("warm" + std::to_string(State.range(0)));
  std::filesystem::remove_all(Dir);
  analyzeOnce(Source, Dir, nullptr); // fill
  uint64_t Hits = 0, Misses = 0;
  for (auto _ : State) {
    obs::MetricsRegistry Reg;
    benchmark::DoNotOptimize(analyzeOnce(Source, Dir, &Reg));
    Hits = Reg.counterValue("persist.block.hits");
    Misses = Reg.counterValue("persist.block.misses");
  }
  State.counters["block_hits"] = (double)Hits;
  State.counters["block_misses"] = (double)Misses;
  std::filesystem::remove_all(Dir);
}

} // namespace

BENCHMARK(BM_Mixy_NoCache)->Arg(2)->Arg(6)->Arg(12)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Mixy_Cold)->Arg(2)->Arg(6)->Arg(12)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Mixy_Warm)->Arg(2)->Arg(6)->Arg(12)->Unit(benchmark::kMillisecond);

MIX_BENCH_MAIN(persist)
