//===--- bench_fork_vs_defer.cpp - E8: deferral versus execution ----------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// Experiment E8 (Section 3.1, "Deferral Versus Execution"): forking
// explores 2^N paths with cheap per-path conditions; SEIf-Defer keeps one
// path whose conditional values push the case analysis into the solver.
// The expected shape: fork time grows exponentially in ladder depth,
// defer time grows with solver effort instead.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "lang/Parser.h"
#include "mix/MixChecker.h"

#include <benchmark/benchmark.h>

#include <string>

using namespace mix;

namespace {

std::string ladder(unsigned N) {
  std::string Out = "{s ";
  for (unsigned I = 0; I != N; ++I) {
    if (I != 0)
      Out += " + ";
    Out += "(if b" + std::to_string(I) + " then 1 else 0)";
  }
  Out += " s}";
  return Out;
}

void runLadder(benchmark::State &State, SymExecOptions::Strategy Strat,
               MixOptions::Exploration Explore =
                   MixOptions::Exploration::AllPaths) {
  unsigned N = (unsigned)State.range(0);
  AstContext Ctx;
  DiagnosticEngine Diags;
  TypeEnv Gamma;
  for (unsigned I = 0; I != N; ++I)
    Gamma["b" + std::to_string(I)] = Ctx.types().boolType();
  const Expr *Program = parseExpression(ladder(N), Ctx, Diags);

  unsigned Paths = 0;
  uint64_t Queries = 0;
  for (auto _ : State) {
    DiagnosticEngine RunDiags;
    MixOptions Opts;
    Opts.Exec.Strat = Strat;
    Opts.Explore = Explore;
    MixChecker Mix(Ctx.types(), RunDiags, Opts);
    benchmark::DoNotOptimize(Mix.checkTyped(Program, Gamma));
    Paths = Mix.stats().PathsExplored;
    Queries = Mix.solver().queries();
  }
  State.counters["paths"] = Paths;
  State.counters["solver_queries"] = (double)Queries;
}

void BM_Ladder_Fork(benchmark::State &State) {
  runLadder(State, SymExecOptions::Strategy::Fork);
}
void BM_Ladder_Defer(benchmark::State &State) {
  runLadder(State, SymExecOptions::Strategy::Defer);
}
void BM_Ladder_Concolic(benchmark::State &State) {
  // The DART/CUTE style: one path per concrete run, flips solved with
  // model extraction. Same 2^N paths as forking, but each path costs an
  // extra solver query for its seed.
  runLadder(State, SymExecOptions::Strategy::Concolic,
            MixOptions::Exploration::Concolic);
}

} // namespace

BENCHMARK(BM_Ladder_Fork)
    ->Arg(2)
    ->Arg(4)
    ->Arg(6)
    ->Arg(8)
    ->Arg(10)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Ladder_Defer)
    ->Arg(2)
    ->Arg(4)
    ->Arg(6)
    ->Arg(8)
    ->Arg(10)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Ladder_Concolic)
    ->Arg(2)
    ->Arg(4)
    ->Arg(6)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond);

MIX_BENCH_MAIN(fork_vs_defer)
