//===--- bench_fixpoint.cpp - E6: the typed/symbolic fixpoint ---------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// Experiment E6 (Section 4.1): optimistic qualifier translation forces a
// fixpoint — "after we analyze the left symbolic block, we will discover
// a new constraint on x, and hence when we iterate and reanalyze the
// right symbolic block, we will discover the error". The workload chains
// N symbolic blocks where block i taints the pointer block i+1 frees, in
// the order that maximizes re-analysis.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "cfront/CParser.h"
#include "mixy/Mixy.h"

#include <benchmark/benchmark.h>

#include <string>

using namespace mix::c;
using mix::DiagnosticEngine;

namespace {

/// N pointer globals; use-block i frees x_i, null-block i nulls x_i. The
/// use blocks are called first, so every taint arrives "late" and must be
/// propagated by fixpoint iteration.
std::string fixpointChain(unsigned N) {
  std::string Out = "void sysutil_free(void * nonnull p_ptr) MIX(typed);\n";
  for (unsigned I = 0; I != N; ++I)
    Out += "int *x" + std::to_string(I) + ";\n";
  for (unsigned I = 0; I != N; ++I) {
    std::string Idx = std::to_string(I);
    Out += "void use_block" + Idx + "(void) MIX(symbolic) {\n"
           "  sysutil_free((void*)x" + Idx + ");\n}\n";
    Out += "void null_block" + Idx + "(void) MIX(symbolic) {\n"
           "  x" + Idx + " = NULL;\n}\n";
  }
  Out += "int main(void) {\n";
  for (unsigned I = 0; I != N; ++I)
    Out += "  use_block" + std::to_string(I) + "();\n";
  for (unsigned I = 0; I != N; ++I)
    Out += "  null_block" + std::to_string(I) + "();\n";
  Out += "  return 0;\n}\n";
  return Out;
}

/// A depth-D def-use chain: step_i copies x_{i-1} into x_i, and main
/// calls the steps deepest-first, so the taint planted by source() must
/// travel the whole chain before sink()'s error becomes visible. Under a
/// round barrier every round re-runs all D+2 sites while the taint
/// advances one link per round (O(D^2) block runs); the dependency-aware
/// worklist re-runs only the link whose input actually changed.
std::string deepCallChain(unsigned Depth) {
  std::string Out = "void sysutil_free(void * nonnull p_ptr) MIX(typed);\n";
  for (unsigned I = 0; I <= Depth; ++I)
    Out += "int *x" + std::to_string(I) + ";\n";
  for (unsigned I = 1; I <= Depth; ++I) {
    std::string Idx = std::to_string(I);
    Out += "void step" + Idx + "(void) MIX(symbolic) {\n"
           "  x" + Idx + " = x" + std::to_string(I - 1) + ";\n}\n";
  }
  Out += "void sink(void) MIX(symbolic) {\n"
         "  sysutil_free((void*)x" + std::to_string(Depth) + ");\n}\n"
         "void source(void) MIX(symbolic) {\n"
         "  x0 = NULL;\n}\n"
         "int main(void) {\n  sink();\n";
  for (unsigned I = Depth; I >= 1; --I)
    Out += "  step" + std::to_string(I) + "();\n";
  Out += "  source();\n  return 0;\n}\n";
  return Out;
}

/// Runs \p Source through the parallel fixpoint under the schedule the
/// benchmark axis selects (0 = round barrier, 1 = worklist) and reports
/// the block-run counters that distinguish the two.
void runSchedule(benchmark::State &State, const std::string &Source,
                 unsigned MaxRounds = 0) {
  bool Worklist = State.range(1) != 0;
  unsigned Warnings = 0, Iterations = 0, Reruns = 0;
  for (auto _ : State) {
    CAstContext Ctx;
    DiagnosticEngine Diags;
    const CProgram *P = parseC(Source, Ctx, Diags);
    MixyOptions Opts;
    Opts.Jobs = 4;
    if (MaxRounds)
      Opts.MaxFixpointIterations = MaxRounds;
    Opts.ParallelSchedule = Worklist ? MixyOptions::Schedule::Worklist
                                     : MixyOptions::Schedule::RoundBarrier;
    MixyAnalysis Analysis(*P, Ctx, Diags, Opts);
    Warnings = Analysis.run(MixyAnalysis::StartMode::Typed);
    Iterations = Analysis.stats().FixpointIterations;
    Reruns = Analysis.stats().SymbolicBlockRuns;
  }
  State.counters["warnings"] = Warnings;
  State.counters["fixpoint_iters"] = Iterations;
  State.counters["block_runs"] = Reruns;
}

/// The schedule axis on the original E6 chain: late taints, but no
/// cross-block dependencies, so the two schedules should be close —
/// this is the "worklist must not be slower" guard.
void BM_FixpointSchedule(benchmark::State &State) {
  runSchedule(State, fixpointChain((unsigned)State.range(0)));
}

/// The schedule axis on the deep call chain, where dependency-aware
/// scheduling is expected to win outright. The taint needs ~depth rounds
/// to cross the chain, so the rounds budget scales with depth — with the
/// default cap the round barrier silently truncates (and reports zero
/// warnings), which would make the timing comparison meaningless.
void BM_DeepChainSchedule(benchmark::State &State) {
  unsigned Depth = (unsigned)State.range(0);
  runSchedule(State, deepCallChain(Depth), 2 * Depth + 8);
}

void BM_Fixpoint(benchmark::State &State) {
  unsigned N = (unsigned)State.range(0);
  std::string Source = fixpointChain(N);
  unsigned Warnings = 0, Iterations = 0, Reruns = 0;
  for (auto _ : State) {
    CAstContext Ctx;
    DiagnosticEngine Diags;
    const CProgram *P = parseC(Source, Ctx, Diags);
    MixyAnalysis Analysis(*P, Ctx, Diags);
    Warnings = Analysis.run(MixyAnalysis::StartMode::Typed);
    Iterations = Analysis.stats().FixpointIterations;
    Reruns = Analysis.stats().SymbolicBlockRuns;
  }
  // Every use-block's error must be found despite the late constraints.
  State.counters["warnings"] = Warnings;
  State.counters["fixpoint_iters"] = Iterations;
  State.counters["block_runs"] = Reruns;
}

} // namespace

BENCHMARK(BM_Fixpoint)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_FixpointSchedule)
    ->ArgNames({"n", "worklist"})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({16, 0})
    ->Args({16, 1})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_DeepChainSchedule)
    ->ArgNames({"depth", "worklist"})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({32, 0})
    ->Args({32, 1})
    ->Unit(benchmark::kMillisecond);

MIX_BENCH_MAIN(fixpoint)
