//===--- bench_fixpoint.cpp - E6: the typed/symbolic fixpoint ---------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// Experiment E6 (Section 4.1): optimistic qualifier translation forces a
// fixpoint — "after we analyze the left symbolic block, we will discover
// a new constraint on x, and hence when we iterate and reanalyze the
// right symbolic block, we will discover the error". The workload chains
// N symbolic blocks where block i taints the pointer block i+1 frees, in
// the order that maximizes re-analysis.
//
//===----------------------------------------------------------------------===//

#include "cfront/CParser.h"
#include "mixy/Mixy.h"

#include <benchmark/benchmark.h>

#include <string>

using namespace mix::c;
using mix::DiagnosticEngine;

namespace {

/// N pointer globals; use-block i frees x_i, null-block i nulls x_i. The
/// use blocks are called first, so every taint arrives "late" and must be
/// propagated by fixpoint iteration.
std::string fixpointChain(unsigned N) {
  std::string Out = "void sysutil_free(void * nonnull p_ptr) MIX(typed);\n";
  for (unsigned I = 0; I != N; ++I)
    Out += "int *x" + std::to_string(I) + ";\n";
  for (unsigned I = 0; I != N; ++I) {
    std::string Idx = std::to_string(I);
    Out += "void use_block" + Idx + "(void) MIX(symbolic) {\n"
           "  sysutil_free((void*)x" + Idx + ");\n}\n";
    Out += "void null_block" + Idx + "(void) MIX(symbolic) {\n"
           "  x" + Idx + " = NULL;\n}\n";
  }
  Out += "int main(void) {\n";
  for (unsigned I = 0; I != N; ++I)
    Out += "  use_block" + std::to_string(I) + "();\n";
  for (unsigned I = 0; I != N; ++I)
    Out += "  null_block" + std::to_string(I) + "();\n";
  Out += "  return 0;\n}\n";
  return Out;
}

void BM_Fixpoint(benchmark::State &State) {
  unsigned N = (unsigned)State.range(0);
  std::string Source = fixpointChain(N);
  unsigned Warnings = 0, Iterations = 0, Reruns = 0;
  for (auto _ : State) {
    CAstContext Ctx;
    DiagnosticEngine Diags;
    const CProgram *P = parseC(Source, Ctx, Diags);
    MixyAnalysis Analysis(*P, Ctx, Diags);
    Warnings = Analysis.run(MixyAnalysis::StartMode::Typed);
    Iterations = Analysis.stats().FixpointIterations;
    Reruns = Analysis.stats().SymbolicBlockRuns;
  }
  // Every use-block's error must be found despite the late constraints.
  State.counters["warnings"] = Warnings;
  State.counters["fixpoint_iters"] = Iterations;
  State.counters["block_runs"] = Reruns;
}

} // namespace

BENCHMARK(BM_Fixpoint)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
