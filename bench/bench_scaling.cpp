//===--- bench_scaling.cpp - E5: cost per added symbolic block ------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// Experiment E5 (Section 4.6): "our small examples take less than a
// second to run without symbolic blocks, but from 5 to 25 seconds to run
// with one symbolic block, and about 60 seconds with two". The expected
// *shape* is that pure typed analysis is orders of magnitude cheaper than
// runs with symbolic blocks, and each added block multiplies cost —
// absolute numbers differ from the authors' 2010 testbed.
//
// The workload is the vsftpd-mini corpus plus filler modules; the
// argument selects how many filler entry points carry MIX(symbolic).
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "cfront/CParser.h"
#include "mixy/Mixy.h"
#include "mixy/VsftpdMini.h"

#include <benchmark/benchmark.h>

using namespace mix::c;
using mix::DiagnosticEngine;

namespace {

constexpr unsigned FillerModules = 24;

/// Pure typed analysis over the scaled corpus (0 symbolic blocks).
void BM_Scaling_PureTyped(benchmark::State &State) {
  std::string Source =
      corpus::vsftpdScaled(/*Annotated=*/false, FillerModules, 0);
  for (auto _ : State) {
    CAstContext Ctx;
    DiagnosticEngine Diags;
    const CProgram *P = parseC(Source, Ctx, Diags);
    QualInference Inf(*P, Ctx, Diags);
    Inf.analyzeAll();
    Inf.solve();
    benchmark::DoNotOptimize(Inf.violationCount());
  }
  State.counters["symbolic_blocks"] = 0;
}

/// MIXY with k symbolic filler blocks (plus the corpus's own).
void BM_Scaling_SymbolicBlocks(benchmark::State &State) {
  unsigned Blocks = (unsigned)State.range(0);
  std::string Source =
      corpus::vsftpdScaled(/*Annotated=*/true, FillerModules, Blocks);
  unsigned BlockRuns = 0;
  for (auto _ : State) {
    CAstContext Ctx;
    DiagnosticEngine Diags;
    const CProgram *P = parseC(Source, Ctx, Diags);
    MixyAnalysis Analysis(*P, Ctx, Diags);
    // Enter through the filler-extended main so every block is reached.
    benchmark::DoNotOptimize(
        Analysis.run(MixyAnalysis::StartMode::Typed, "filler_main"));
    BlockRuns = Analysis.stats().SymbolicBlockRuns;
  }
  State.counters["symbolic_blocks"] = Blocks;
  State.counters["block_runs"] = BlockRuns;
}

/// Threads axis: a fixed 8-symbolic-block workload analyzed with
/// --jobs=N. On multi-core hardware the symbolic blocks of each fixpoint
/// round run concurrently, so wall time should drop with N until the
/// round's block count or the core count saturates; on a single hardware
/// thread the parallel engine only measures its own overhead.
void BM_Scaling_Threads(benchmark::State &State) {
  unsigned Jobs = (unsigned)State.range(0);
  std::string Source =
      corpus::vsftpdScaled(/*Annotated=*/true, FillerModules, 8);
  unsigned BlockRuns = 0;
  for (auto _ : State) {
    CAstContext Ctx;
    DiagnosticEngine Diags;
    const CProgram *P = parseC(Source, Ctx, Diags);
    MixyOptions Opts;
    Opts.Jobs = Jobs;
    MixyAnalysis Analysis(*P, Ctx, Diags, Opts);
    benchmark::DoNotOptimize(
        Analysis.run(MixyAnalysis::StartMode::Typed, "filler_main"));
    BlockRuns = Analysis.stats().SymbolicBlockRuns;
  }
  State.counters["jobs"] = Jobs;
  State.counters["block_runs"] = BlockRuns;
  State.counters["hw_threads"] = std::thread::hardware_concurrency();
}

} // namespace

BENCHMARK(BM_Scaling_PureTyped)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Scaling_SymbolicBlocks)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Scaling_Threads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

MIX_BENCH_MAIN(scaling)
