//===--- bench_mix_tradeoff.cpp - E9: precision/efficiency trade-off ------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// Experiment E9 (Sections 1 and 3.2): the mixed analysis is "more precise
// than type checking alone and more efficient than exclusive symbolic
// execution". The workload is a program with K independent conditionals;
// exclusive symbolic execution explores 2^K paths, while MIX wraps all
// but a fixed window of them in typed blocks, so its cost tracks the
// small symbolic region rather than the whole program.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "lang/Parser.h"
#include "mix/MixChecker.h"

#include <benchmark/benchmark.h>

#include <string>

using namespace mix;

namespace {

/// K conditionals; those below `SymbolicWindow` stay bare (inside the
/// top-level symbolic block), the rest are wrapped in typed blocks so the
/// executor models them by type instead of forking.
std::string tradeoffProgram(unsigned K, unsigned SymbolicWindow) {
  std::string Out = "{s ";
  for (unsigned I = 0; I != K; ++I) {
    if (I != 0)
      Out += " + ";
    std::string Cond =
        "(if b" + std::to_string(I) + " then 1 else 0)";
    if (I < SymbolicWindow)
      Out += Cond;
    else
      Out += "{t " + Cond + " t}";
  }
  Out += " s}";
  return Out;
}

void runTradeoff(benchmark::State &State, bool Mixed) {
  unsigned K = (unsigned)State.range(0);
  const unsigned Window = 3;
  AstContext Ctx;
  DiagnosticEngine Diags;
  TypeEnv Gamma;
  for (unsigned I = 0; I != K; ++I)
    Gamma["b" + std::to_string(I)] = Ctx.types().boolType();
  const Expr *Program =
      parseExpression(tradeoffProgram(K, Mixed ? Window : K), Ctx, Diags);

  unsigned Paths = 0;
  for (auto _ : State) {
    DiagnosticEngine RunDiags;
    MixChecker Mix(Ctx.types(), RunDiags);
    benchmark::DoNotOptimize(Mix.checkTyped(Program, Gamma));
    Paths = Mix.stats().PathsExplored;
  }
  State.counters["paths"] = Paths;
}

void BM_ExclusiveSymbolic(benchmark::State &State) {
  runTradeoff(State, /*Mixed=*/false);
}
void BM_MixedAnalysis(benchmark::State &State) {
  runTradeoff(State, /*Mixed=*/true);
}

} // namespace

BENCHMARK(BM_ExclusiveSymbolic)
    ->Arg(4)
    ->Arg(6)
    ->Arg(8)
    ->Arg(10)
    ->Arg(12)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MixedAnalysis)
    ->Arg(4)
    ->Arg(6)
    ->Arg(8)
    ->Arg(10)
    ->Arg(12)
    ->Unit(benchmark::kMicrosecond);

MIX_BENCH_MAIN(mix_tradeoff)
