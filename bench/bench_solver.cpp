//===--- bench_solver.cpp - E10: solver cost on analysis obligations -------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// Experiment E10: the SMT-lite substrate's cost on the two query shapes
// the analyses generate — path-condition feasibility (conjunctions of
// comparisons) and exhaustive() tautologies (disjunctions of path
// conditions), plus the raw CDCL core on random 3-SAT.
//
//===----------------------------------------------------------------------===//

#include "solver/Sat.h"
#include "solver/SmtSolver.h"

#include <benchmark/benchmark.h>

#include <random>

using namespace mix::smt;

namespace {

/// Path-condition feasibility: x0 < x1 < ... < xN with interval bounds.
void BM_Solver_PathCondition(benchmark::State &State) {
  unsigned N = (unsigned)State.range(0);
  for (auto _ : State) {
    TermArena A;
    SmtSolver S(A);
    std::vector<const Term *> Xs;
    for (unsigned I = 0; I <= N; ++I)
      Xs.push_back(A.freshIntVar());
    const Term *Path = A.trueTerm();
    for (unsigned I = 0; I != N; ++I)
      Path = A.andTerm(Path, A.lt(Xs[I], Xs[I + 1]));
    Path = A.andTerm(Path, A.le(A.intConst(0), Xs[0]));
    Path = A.andTerm(Path, A.le(Xs[N], A.intConst((long long)N)));
    benchmark::DoNotOptimize(S.checkSat(Path));
  }
}

/// Exhaustiveness obligations: the disjunction of the 2^K fork guards of
/// a K-deep conditional ladder must be a tautology.
void BM_Solver_Exhaustive(benchmark::State &State) {
  unsigned K = (unsigned)State.range(0);
  for (auto _ : State) {
    TermArena A;
    SmtSolver S(A);
    std::vector<const Term *> Bs;
    for (unsigned I = 0; I != K; ++I)
      Bs.push_back(A.freshBoolVar());
    std::vector<const Term *> Guards;
    for (unsigned Mask = 0; Mask != (1u << K); ++Mask) {
      const Term *G = A.trueTerm();
      for (unsigned I = 0; I != K; ++I)
        G = A.andTerm(G, (Mask >> I) & 1 ? Bs[I] : A.notTerm(Bs[I]));
      Guards.push_back(G);
    }
    benchmark::DoNotOptimize(S.isDefinitelyValid(A.orList(Guards)));
  }
}

/// The CDCL core on random 3-SAT at the hard density (~4.3).
void BM_Solver_Random3Sat(benchmark::State &State) {
  unsigned Vars = (unsigned)State.range(0);
  std::mt19937 Rng(12345);
  for (auto _ : State) {
    SatSolver S;
    for (unsigned I = 0; I != Vars; ++I)
      S.newVar();
    unsigned Clauses = (unsigned)(Vars * 4.3);
    for (unsigned I = 0; I != Clauses; ++I) {
      std::vector<Lit> C;
      for (int K = 0; K != 3; ++K)
        C.push_back(Lit(Rng() % Vars, Rng() % 2 == 0));
      S.addClause(C);
    }
    benchmark::DoNotOptimize(S.solve());
  }
}

/// Integer reasoning: gcd/tightening obligations FM must refute.
void BM_Solver_IntegerTightening(benchmark::State &State) {
  unsigned N = (unsigned)State.range(0);
  for (auto _ : State) {
    TermArena A;
    SmtSolver S(A);
    // sum of N vars even and odd at once: unsat through gcd reasoning.
    std::vector<const Term *> Xs;
    for (unsigned I = 0; I != N; ++I)
      Xs.push_back(A.freshIntVar());
    const Term *Sum = A.intConst(0);
    for (const Term *X : Xs)
      Sum = A.add(Sum, A.mulConst(2, X));
    const Term *F = A.eqInt(Sum, A.intConst(1));
    benchmark::DoNotOptimize(S.checkSat(F));
  }
}

} // namespace

BENCHMARK(BM_Solver_PathCondition)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Solver_Exhaustive)
    ->Arg(2)
    ->Arg(4)
    ->Arg(6)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Solver_Random3Sat)
    ->Arg(20)
    ->Arg(40)
    ->Arg(60)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Solver_IntegerTightening)
    ->Arg(2)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
