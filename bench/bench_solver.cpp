//===--- bench_solver.cpp - E10: solver cost on analysis obligations -------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// Experiment E10: the SMT-lite substrate's cost on the two query shapes
// the analyses generate — path-condition feasibility (conjunctions of
// comparisons) and exhaustive() tautologies (disjunctions of path
// conditions), plus the raw CDCL core on random 3-SAT.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "solver/AssertionStack.h"
#include "solver/Sat.h"
#include "solver/SmtSolver.h"
#include "solver/SolverFactory.h"

#include <benchmark/benchmark.h>

#include <functional>
#include <random>

using namespace mix::smt;

namespace {

/// Path-condition feasibility: x0 < x1 < ... < xN with interval bounds.
void BM_Solver_PathCondition(benchmark::State &State) {
  unsigned N = (unsigned)State.range(0);
  for (auto _ : State) {
    TermArena A;
    SmtSolver S(A);
    std::vector<const Term *> Xs;
    for (unsigned I = 0; I <= N; ++I)
      Xs.push_back(A.freshIntVar());
    const Term *Path = A.trueTerm();
    for (unsigned I = 0; I != N; ++I)
      Path = A.andTerm(Path, A.lt(Xs[I], Xs[I + 1]));
    Path = A.andTerm(Path, A.le(A.intConst(0), Xs[0]));
    Path = A.andTerm(Path, A.le(Xs[N], A.intConst((long long)N)));
    benchmark::DoNotOptimize(S.checkSat(Path));
  }
}

/// Exhaustiveness obligations: the disjunction of the 2^K fork guards of
/// a K-deep conditional ladder must be a tautology.
void BM_Solver_Exhaustive(benchmark::State &State) {
  unsigned K = (unsigned)State.range(0);
  for (auto _ : State) {
    TermArena A;
    SmtSolver S(A);
    std::vector<const Term *> Bs;
    for (unsigned I = 0; I != K; ++I)
      Bs.push_back(A.freshBoolVar());
    std::vector<const Term *> Guards;
    for (unsigned Mask = 0; Mask != (1u << K); ++Mask) {
      const Term *G = A.trueTerm();
      for (unsigned I = 0; I != K; ++I)
        G = A.andTerm(G, (Mask >> I) & 1 ? Bs[I] : A.notTerm(Bs[I]));
      Guards.push_back(G);
    }
    benchmark::DoNotOptimize(S.isDefinitelyValid(A.orList(Guards)));
  }
}

/// The CDCL core on random 3-SAT at the hard density (~4.3).
void BM_Solver_Random3Sat(benchmark::State &State) {
  unsigned Vars = (unsigned)State.range(0);
  std::mt19937 Rng(12345);
  for (auto _ : State) {
    SatSolver S;
    for (unsigned I = 0; I != Vars; ++I)
      S.newVar();
    unsigned Clauses = (unsigned)(Vars * 4.3);
    for (unsigned I = 0; I != Clauses; ++I) {
      std::vector<Lit> C;
      for (int K = 0; K != 3; ++K)
        C.push_back(Lit(Rng() % Vars, Rng() % 2 == 0));
      S.addClause(C);
    }
    benchmark::DoNotOptimize(S.solve());
  }
}

/// Integer reasoning: gcd/tightening obligations FM must refute.
void BM_Solver_IntegerTightening(benchmark::State &State) {
  unsigned N = (unsigned)State.range(0);
  for (auto _ : State) {
    TermArena A;
    SmtSolver S(A);
    // sum of N vars even and odd at once: unsat through gcd reasoning.
    std::vector<const Term *> Xs;
    for (unsigned I = 0; I != N; ++I)
      Xs.push_back(A.freshIntVar());
    const Term *Sum = A.intConst(0);
    for (const Term *X : Xs)
      Sum = A.add(Sum, A.mulConst(2, X));
    const Term *F = A.eqInt(Sum, A.intConst(1));
    benchmark::DoNotOptimize(S.checkSat(F));
  }
}

/// The deep-branch exploration pattern path executors generate: DFS over
/// a K-deep branch ladder with a then/else feasibility probe at every
/// node. range(1) selects from-scratch conjunctions (0) or the
/// incremental assertion stack (1) — the axis the incremental-mode
/// regression test pins with query counters, measured here in time.
void BM_Solver_DeepBranchProbes(benchmark::State &State) {
  unsigned K = (unsigned)State.range(0);
  bool Incremental = State.range(1) != 0;
  uint64_t Queries = 0;
  for (auto _ : State) {
    TermArena A;
    SmtSolver S(A);
    std::vector<const Term *> Xs;
    for (unsigned I = 0; I != K; ++I)
      Xs.push_back(A.freshIntVar());
    std::unique_ptr<AssertionStack> St;
    if (Incremental)
      St = S.openStack();
    // DFS: probe both polarities of x_d > 0 at depth d, descend into the
    // feasible ones.
    std::function<void(unsigned, const Term *)> Walk =
        [&](unsigned Depth, const Term *Path) {
          if (Depth == K)
            return;
          const Term *Cond = A.lt(A.intConst(0), Xs[Depth]);
          for (const Term *Delta : {Cond, A.notTerm(Cond)}) {
            bool Feasible;
            if (Incremental) {
              St->push();
              St->assertTerm(Delta);
              Feasible = St->checkSat() != SolveResult::Unsat;
              if (Feasible)
                Walk(Depth + 1, A.andTerm(Path, Delta));
              St->pop();
            } else {
              const Term *Whole = A.andTerm(Path, Delta);
              Feasible = S.checkSat(Whole) != SolveResult::Unsat;
              if (Feasible)
                Walk(Depth + 1, Whole);
            }
          }
        };
    Walk(0, A.trueTerm());
    Queries = S.queries();
  }
  State.counters["backend_queries"] = (double)Queries;
}

/// Every registered backend on the path-condition chain, so a backend
/// whose latency regresses shows up in the archived JSON next to its
/// peers. range(0) indexes registeredBackends() (sorted, stable).
void BM_Solver_BackendPathCondition(benchmark::State &State) {
  std::vector<std::string> Backends = registeredBackends();
  const std::string &Name = Backends[(size_t)State.range(0)];
  State.SetLabel(Name);
  unsigned N = 16;
  for (auto _ : State) {
    TermArena A;
    std::unique_ptr<ISolver> S = createBackend(Name, A, SmtOptions());
    std::vector<const Term *> Xs;
    for (unsigned I = 0; I <= N; ++I)
      Xs.push_back(A.freshIntVar());
    const Term *Path = A.trueTerm();
    for (unsigned I = 0; I != N; ++I)
      Path = A.andTerm(Path, A.lt(Xs[I], Xs[I + 1]));
    Path = A.andTerm(Path, A.le(A.intConst(0), Xs[0]));
    Path = A.andTerm(Path, A.le(Xs[N], A.intConst((long long)N)));
    benchmark::DoNotOptimize(S->checkSat(Path));
  }
}

/// Portfolio racing overhead/benefit on the same chain: range(0) turns
/// the portfolio on. Latency is the point — verdicts are identical by
/// construction.
void BM_Solver_Portfolio(benchmark::State &State) {
  SolverSpec Spec;
  Spec.Portfolio = State.range(0) != 0;
  unsigned N = 16;
  for (auto _ : State) {
    TermArena A;
    std::unique_ptr<ISolver> S = createSolver(Spec, A, SmtOptions());
    std::vector<const Term *> Xs;
    for (unsigned I = 0; I <= N; ++I)
      Xs.push_back(A.freshIntVar());
    const Term *Path = A.trueTerm();
    for (unsigned I = 0; I != N; ++I)
      Path = A.andTerm(Path, A.lt(Xs[I], Xs[I + 1]));
    Path = A.andTerm(Path, A.le(A.intConst(0), Xs[0]));
    benchmark::DoNotOptimize(S->checkSat(Path));
  }
}

} // namespace

BENCHMARK(BM_Solver_PathCondition)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Solver_Exhaustive)
    ->Arg(2)
    ->Arg(4)
    ->Arg(6)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Solver_Random3Sat)
    ->Arg(20)
    ->Arg(40)
    ->Arg(60)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Solver_IntegerTightening)
    ->Arg(2)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Solver_DeepBranchProbes)
    ->Args({5, 0})
    ->Args({5, 1})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Solver_BackendPathCondition)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Solver_Portfolio)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

MIX_BENCH_MAIN(solver)
