//===--- bench_ir.cpp - AST walker vs. compiled concolic engine -----------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// Measures the --exec=ir engine against the AST walker on two ProgramGen
// corpora:
//
//  - concrete_heavy: programs with no symbolic inputs at all. Every
//    branch guard is concrete, so the compiled engine runs on native
//    shadows — no arena traffic, no forks, every branch solver-skipped
//    (exec.branches.concrete). This is the workload the subsystem exists
//    for; the acceptance bar is >=5x symbolic-block throughput.
//
//  - deep_branch: programs over symbolic ints/bools that fork heavily.
//    Here both engines do the same arena and path work, so the compiled
//    engine's edge shrinks to dispatch overhead; the corpus guards
//    against the IR engine regressing the symbolic-heavy case.
//
// Each iteration runs the whole corpus through one long-lived engine, so
// warm iterations exercise the lowering cache exactly like a KeepWarm
// daemon session (ir.lower.hits counts them).
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"
#include "ProgramGen.h"

#include "cfront/CParser.h"
#include "concolic/CIrExecutor.h"
#include "concolic/IrExecutor.h"
#include "csym/CSymExecutor.h"
#include "observe/Metrics.h"
#include "solver/SolverFactory.h"
#include "symexec/SymExecutor.h"

#include <benchmark/benchmark.h>

#include <memory>
#include <random>
#include <vector>

using namespace mix;

namespace {

struct Corpus {
  AstContext Ctx;
  std::vector<const Expr *> Programs;
  bool Symbolic;
};

/// No symbolic inputs: every leaf is a literal, every guard concrete.
/// Deep programs (depth 12) keep per-run setup from drowning out
/// per-node interpretation cost. Programs that end in a (deterministic)
/// error are filtered out so every run walks the whole expression.
Corpus &concreteHeavyCorpus() {
  static Corpus *C = [] {
    auto *Cp = new Corpus();
    Cp->Symbolic = false;
    std::mt19937 Rng(42);
    testgen::ProgramGenerator Gen(Cp->Ctx, Rng, /*AllowBlocks=*/false,
                                  /*AllowRefs=*/false, /*AllowCalls=*/false);
    testgen::ProgramGenerator::Scope Empty;

    SymArena Arena(Cp->Ctx.types());
    DiagnosticEngine Diags;
    SymExecutor Probe(Arena, Diags);
    while (Cp->Programs.size() < 16) {
      const Expr *E = Gen.genInt(Empty, 12);
      SymExecResult R = Probe.run(E, SymEnv());
      if (R.Paths.size() == 1 && !R.Paths[0].IsError)
        Cp->Programs.push_back(E);
    }
    return Cp;
  }();
  return *C;
}

/// Symbolic ints and bools in scope: branches fork, paths multiply.
Corpus &deepBranchCorpus() {
  static Corpus *C = [] {
    auto *Cp = new Corpus();
    Cp->Symbolic = true;
    std::mt19937 Rng(7);
    testgen::ProgramGenerator Gen(Cp->Ctx, Rng, /*AllowBlocks=*/false);
    testgen::ProgramGenerator::Scope S;
    S.IntVars = {"x", "y"};
    S.BoolVars = {"b"};
    for (int I = 0; I != 24; ++I)
      Cp->Programs.push_back(Gen.genInt(S, 5));
    return Cp;
  }();
  return *C;
}

void runCorpus(benchmark::State &State, Corpus &C,
               SymExecOptions::Engine Mode) {
  obs::MetricsRegistry Reg;
  SymExecOptions Opts;
  Opts.ExecMode = Mode;
  Opts.Metrics = &Reg;
  SymArena Arena(C.Ctx.types());
  DiagnosticEngine Diags;
  std::unique_ptr<ExecEngine> Exec = concolic::makeExecEngine(Arena, Diags, Opts);

  SymEnv Env;
  if (C.Symbolic) {
    Env["x"] = Arena.freshVar(C.Ctx.types().intType(), false, "x");
    Env["y"] = Arena.freshVar(C.Ctx.types().intType(), false, "y");
    Env["b"] = Arena.freshVar(C.Ctx.types().boolType(), false, "b");
  }

  size_t Paths = 0;
  for (auto _ : State) {
    for (const Expr *E : C.Programs) {
      SymExecResult R = Exec->run(E, Env);
      Paths += R.Paths.size();
      benchmark::DoNotOptimize(R.Paths.data());
    }
  }

  State.SetItemsProcessed((int64_t)(State.iterations() * C.Programs.size()));
  State.counters["paths"] = (double)Paths;
  State.counters["solver_skips"] =
      (double)Reg.counterValue("exec.branches.concrete");
  State.counters["terms_built"] =
      (double)Reg.counterValue("exec.terms.built");
  State.counters["terms_gcd"] = (double)Reg.counterValue("exec.terms.gcd");
  State.counters["lower_hits"] = (double)Reg.counterValue("ir.lower.hits");
}

//===----------------------------------------------------------------------===//
// Mini-C axis: the same engines under CSymExecutor's memory model
//===----------------------------------------------------------------------===//

/// Concrete-heavy mini-C: one path, no symbolic guards — long runs of
/// stores through pointers, struct fields, and locals. Measures pure
/// per-statement dispatch of the lowered bytecode against the recursive
/// AST walk over identical solver/store traffic.
const char *MiniCConcreteSrc = R"(struct box { int a; int b; };
int main(int argc) {
  int x = 1;
  int y = 2;
  int z = 3;
  int *p;
  int *q;
  p = &x;
  q = &y;
  struct box s;
  struct box *h;
  h = &s;
  s.a = x + y;
  s.b = s.a + z;
  *p = s.b + 4;
  *q = *p + x;
  h->a = *q - y;
  h->b = h->a + h->a;
  x = h->b + z;
  y = x - z;
  z = x + y;
  s.a = z - s.b;
  s.b = s.a + x;
  *p = s.a + s.b;
  *q = *p - z;
  h->a = *p + *q;
  h->b = h->a - y;
  x = h->a + h->b;
  y = x + z;
  z = y - x;
  return x + y + z;
}
)";

/// Pointer/branch-heavy mini-C: symbolic argument drives forks, a
/// may-be-null pointer threads through a loop and an inlined call.
/// Both engines do the same path and solver work, so this axis guards
/// against the lowered interpreter regressing the fork-heavy case.
const char *MiniCBranchySrc = R"(int pick(int a, int *w) {
  if (a > 0) { return *w; }
  return 0;
}
int main(int argc) {
  int x = argc;
  int y = 0;
  int *p;
  int *q;
  p = &x;
  if (x > 0) { q = p; } else { q = NULL; }
  while (x > 0) {
    x = x - 1;
    y = y + pick(x, q);
  }
  if (q == NULL) { y = y - 1; } else { y = *q; }
  return y;
}
)";

void runMiniCCorpus(benchmark::State &State, const char *Src,
                    SymExecOptions::Engine Mode) {
  obs::MetricsRegistry Reg;
  c::CAstContext Ctx;
  DiagnosticEngine Diags;
  const c::CProgram *P = c::parseC(Src, Ctx, Diags);
  smt::TermArena Terms;
  smt::SmtOptions SO;
  SO.Metrics = &Reg;
  std::unique_ptr<smt::ISolver> Solver =
      smt::createBackend("smtlite", Terms, SO);
  c::CSymExecutor Exec(*P, Ctx, Diags, Terms, *Solver);
  std::unique_ptr<c::CBodyEngine> Engine =
      concolic::makeCBodyEngine(Exec, Mode, &Reg, nullptr);
  if (Engine)
    Exec.setBodyEngine(Engine.get());
  const c::CFuncDecl *F = P->findFunc("main");

  size_t Paths = 0;
  for (auto _ : State) {
    c::CSymResult R = Exec.runFunction(F);
    Paths += R.Paths.size();
    benchmark::DoNotOptimize(&R);
  }

  State.SetItemsProcessed((int64_t)State.iterations());
  State.counters["paths"] = (double)Paths;
  State.counters["solver_queries"] =
      (double)Reg.counterValue("solver.queries");
  State.counters["lower_hits"] = (double)Reg.counterValue("ir.lower.hits");
  State.counters["fallbacks"] =
      (double)Reg.counterValue("exec.fallback.ast");
}

void BM_MiniCConcrete_Ast(benchmark::State &State) {
  runMiniCCorpus(State, MiniCConcreteSrc, SymExecOptions::Engine::Ast);
}
void BM_MiniCConcrete_Ir(benchmark::State &State) {
  runMiniCCorpus(State, MiniCConcreteSrc, SymExecOptions::Engine::Ir);
}
void BM_MiniCBranchy_Ast(benchmark::State &State) {
  runMiniCCorpus(State, MiniCBranchySrc, SymExecOptions::Engine::Ast);
}
void BM_MiniCBranchy_Ir(benchmark::State &State) {
  runMiniCCorpus(State, MiniCBranchySrc, SymExecOptions::Engine::Ir);
}

void BM_ConcreteHeavy_Ast(benchmark::State &State) {
  runCorpus(State, concreteHeavyCorpus(), SymExecOptions::Engine::Ast);
}
void BM_ConcreteHeavy_Ir(benchmark::State &State) {
  runCorpus(State, concreteHeavyCorpus(), SymExecOptions::Engine::Ir);
}
void BM_DeepBranch_Ast(benchmark::State &State) {
  runCorpus(State, deepBranchCorpus(), SymExecOptions::Engine::Ast);
}
void BM_DeepBranch_Ir(benchmark::State &State) {
  runCorpus(State, deepBranchCorpus(), SymExecOptions::Engine::Ir);
}

} // namespace

BENCHMARK(BM_ConcreteHeavy_Ast)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ConcreteHeavy_Ir)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DeepBranch_Ast)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DeepBranch_Ir)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MiniCConcrete_Ast)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MiniCConcrete_Ir)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MiniCBranchy_Ast)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MiniCBranchy_Ir)->Unit(benchmark::kMicrosecond);

MIX_BENCH_MAIN(ir)
