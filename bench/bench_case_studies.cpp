//===--- bench_case_studies.cpp - E1-E4: the vsftpd case studies ----------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// Experiments E1-E4 (Section 4.5): per case study, the baseline qualifier
// inference reports a false positive (`warnings` counter = 1) which the
// MIXY-annotated run eliminates (= 0). The timings show the cost of the
// added symbolic execution — the paper's "less than a second ... 5 to 25
// seconds" contrast in miniature.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "cfront/CParser.h"
#include "mixy/Mixy.h"
#include "mixy/VsftpdMini.h"

#include <benchmark/benchmark.h>

using namespace mix::c;
using mix::DiagnosticEngine;

namespace {

void runBaseline(benchmark::State &State, unsigned CaseNo) {
  std::string Source = corpus::vsftpdCase(CaseNo, /*Annotated=*/false);
  unsigned Warnings = 0;
  for (auto _ : State) {
    CAstContext Ctx;
    DiagnosticEngine Diags;
    const CProgram *P = parseC(Source, Ctx, Diags);
    if (CaseNo == 4) {
      // Case 4's baseline is the un-annotated symbolic run (the typed
      // block is what *helps* the executor there).
      MixyAnalysis Analysis(*P, Ctx, Diags);
      Warnings = Analysis.run(MixyAnalysis::StartMode::Typed);
    } else {
      QualInference Inf(*P, Ctx, Diags);
      Inf.analyzeAll();
      Inf.solve();
      Warnings = Inf.reportWarnings();
    }
    benchmark::DoNotOptimize(Warnings);
  }
  State.counters["warnings"] = Warnings;
}

void runMixy(benchmark::State &State, unsigned CaseNo) {
  std::string Source = corpus::vsftpdCase(CaseNo, /*Annotated=*/true);
  unsigned Warnings = 0;
  for (auto _ : State) {
    CAstContext Ctx;
    DiagnosticEngine Diags;
    const CProgram *P = parseC(Source, Ctx, Diags);
    MixyAnalysis Analysis(*P, Ctx, Diags);
    Warnings = Analysis.run(MixyAnalysis::StartMode::Typed);
    benchmark::DoNotOptimize(Warnings);
  }
  State.counters["warnings"] = Warnings;
}

void BM_Case_Baseline(benchmark::State &State) {
  runBaseline(State, (unsigned)State.range(0));
}
void BM_Case_Mixy(benchmark::State &State) {
  runMixy(State, (unsigned)State.range(0));
}

} // namespace

BENCHMARK(BM_Case_Baseline)->DenseRange(1, 4)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Case_Mixy)->DenseRange(1, 4)->Unit(benchmark::kMicrosecond);

MIX_BENCH_MAIN(case_studies)
