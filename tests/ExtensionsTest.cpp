//===--- ExtensionsTest.cpp - The paper's sketched refinements ------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// Tests for two refinements the paper describes but did not implement:
// effect-limited havoc at typed blocks (Section 3.2) and the precise
// dereference rule (Section 3.1's "consistency up to a set of writes U").
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "mix/MixChecker.h"
#include "symexec/Effects.h"
#include "symexec/SymExecutor.h"

#include <gtest/gtest.h>

using namespace mix;

// === write-effect inference ==================================================

namespace {

WriteEffects effectsOf(std::string_view Source) {
  static AstContext Ctx; // effects only inspect syntax
  DiagnosticEngine Diags;
  const Expr *E = parseExpression(Source, Ctx, Diags);
  EXPECT_NE(E, nullptr) << Diags.str();
  return computeWriteEffects(E);
}

} // namespace

TEST(EffectsTest, PureExpressionsHaveNoEffect) {
  WriteEffects E = effectsOf("1 + x - (if b then 2 else 3)");
  EXPECT_FALSE(E.MayWriteUnknown);
  EXPECT_TRUE(E.Vars.empty());
}

TEST(EffectsTest, DirectWritesAreCollected) {
  WriteEffects E = effectsOf("(x := 1; y := true)");
  EXPECT_FALSE(E.MayWriteUnknown);
  EXPECT_EQ(E.Vars, (std::set<std::string>{"x", "y"}));
}

TEST(EffectsTest, LocalFreshRefWritesAreInvisible) {
  WriteEffects E = effectsOf("let t = ref 0 in (t := 1; !t)");
  EXPECT_FALSE(E.MayWriteUnknown);
  EXPECT_TRUE(E.Vars.empty());
}

TEST(EffectsTest, LocalAliasWritesAreUnknown) {
  // t aliases x; a write through t escapes the block.
  WriteEffects E = effectsOf("let t = x in t := 1");
  EXPECT_TRUE(E.MayWriteUnknown);
}

TEST(EffectsTest, ComputedTargetsAreUnknown) {
  EXPECT_TRUE(effectsOf("!p := 1").MayWriteUnknown);
}

TEST(EffectsTest, ApplicationsAreUnknown) {
  EXPECT_TRUE(effectsOf("f 3").MayWriteUnknown);
}

TEST(EffectsTest, ConditionalWritesAreMayWrites) {
  WriteEffects E = effectsOf("if b then x := 1 else 0");
  EXPECT_FALSE(E.MayWriteUnknown);
  EXPECT_EQ(E.Vars, (std::set<std::string>{"x"}));
}

TEST(EffectsTest, ShadowingRestoresOnExit) {
  // The inner let shadows x with a fresh ref; the later write targets
  // the outer x again. (Effects are per-branch scope.)
  WriteEffects E =
      effectsOf("((let x = ref 0 in x := 1); x := 2)");
  EXPECT_FALSE(E.MayWriteUnknown);
  EXPECT_EQ(E.Vars, (std::set<std::string>{"x"}));
}

// === effect-limited havoc in MIX =============================================

namespace {

class HavocTest : public ::testing::Test {
protected:
  std::string check(std::string_view Source,
                    SymExecOptions::HavocPolicy Policy,
                    const TypeEnv &Gamma = {}) {
    Diags.clear();
    const Expr *E = parseExpression(Source, Ctx, Diags);
    EXPECT_NE(E, nullptr) << Diags.str();
    if (!E)
      return "<parse-error>";
    MixOptions Opts;
    Opts.Exec.Havoc = Policy;
    MixChecker Mix(Ctx.types(), Diags, Opts);
    const Type *T = Mix.checkTyped(E, Gamma);
    return T ? T->str() : "<error>";
  }

  /// Runs the executor directly and returns the final value's rendering.
  std::string finalValue(std::string_view Source,
                         SymExecOptions::HavocPolicy Policy) {
    Diags.clear();
    const Expr *E = parseExpression(Source, Ctx, Diags);
    if (!E)
      return "<parse-error>";
    SymArena Arena(Ctx.types());
    SymExecOptions Opts;
    Opts.Havoc = Policy;
    SymExecutor Exec(Arena, Diags, Opts);
    Oracle.IntTy = Ctx.types().intType();
    Exec.setTypedBlockOracle(&Oracle);
    SymExecResult R = Exec.run(E, {});
    if (R.Paths.size() != 1 || R.Paths[0].IsError)
      return "<error>";
    return R.Paths[0].Value->str();
  }

  struct IntOracle : TypedBlockOracle {
    const Type *typeOfTypedBlock(const BlockExpr *, const SymEnv &,
                                 const SymState &) override {
      return IntTy;
    }
    const Type *IntTy = nullptr;
  };

  AstContext Ctx;
  DiagnosticEngine Diags;
  IntOracle Oracle;
};

} // namespace

TEST_F(HavocTest, FullHavocForgetsUntouchedCells) {
  // The typed block writes nothing, yet the paper's rule havocs all of
  // memory: the read afterwards is a deferred select, not the constant.
  const char *P = "let x = ref 41 in ({t 0 t}; !x)";
  std::string Full =
      finalValue(P, SymExecOptions::HavocPolicy::FullMemory);
  EXPECT_NE(Full.find("["), std::string::npos) << Full; // a select
}

TEST_F(HavocTest, EffectHavocKeepsUntouchedCells) {
  const char *P = "let x = ref 41 in ({t 0 t}; !x)";
  std::string Refined =
      finalValue(P, SymExecOptions::HavocPolicy::WriteEffects);
  EXPECT_EQ(Refined, "41:int");
}

TEST_F(HavocTest, EffectHavocStillForgetsWrittenCells) {
  const char *P = "let x = ref 41 in ({t x := 0 t}; !x)";
  std::string Refined =
      finalValue(P, SymExecOptions::HavocPolicy::WriteEffects);
  EXPECT_EQ(Refined.find("41"), std::string::npos) << Refined;
}

TEST_F(HavocTest, UnknownEffectsFallBackToFullHavoc) {
  // A write through a computed target: the whole memory must go.
  const char *P = "let x = ref 41 in let p = ref x in "
                  "({t !p := 0 t}; !x)";
  std::string Refined =
      finalValue(P, SymExecOptions::HavocPolicy::WriteEffects);
  EXPECT_EQ(Refined.find("41"), std::string::npos) << Refined;
}

TEST_F(HavocTest, MixAcceptsTheSameProgramsUnderBothPolicies) {
  const char *Programs[] = {
      "{s let x = ref 1 in ({t x := 2 t}; !x + 1) s}",
      "{s let x = ref 1 in ({t 9 t}; !x + 1) s}",
  };
  for (const char *P : Programs) {
    EXPECT_EQ(check(P, SymExecOptions::HavocPolicy::FullMemory), "int")
        << P;
    EXPECT_EQ(check(P, SymExecOptions::HavocPolicy::WriteEffects), "int")
        << P;
  }
}

// === precise dereference ======================================================

namespace {

class PreciseDerefTest : public ::testing::Test {
protected:
  std::string check(std::string_view Source, bool Precise,
                    const TypeEnv &Gamma = {}) {
    Diags.clear();
    const Expr *E = parseExpression(Source, Ctx, Diags);
    EXPECT_NE(E, nullptr) << Diags.str();
    if (!E)
      return "<parse-error>";
    MixOptions Opts;
    Opts.Exec.PreciseDeref = Precise;
    Opts.CheckFinalMemory = false; // isolate the SEDeref premise
    MixChecker Mix(Ctx.types(), Diags, Opts);
    const Type *T = Mix.checkTyped(E, Gamma);
    return T ? T->str() : "<error>";
  }

  AstContext Ctx;
  DiagnosticEngine Diags;
};

} // namespace

TEST_F(PreciseDerefTest, ReadPastUnrelatedIllTypedWrite) {
  // x's cell is temporarily ill-typed; reading y is provably safe (two
  // distinct allocations), but the baseline global |- m ok rejects it.
  const char *P = "{s let x = ref 1 in let y = ref 2 in "
                  "(x := true; !y + 1) s}";
  EXPECT_EQ(check(P, /*Precise=*/false), "<error>");
  EXPECT_EQ(check(P, /*Precise=*/true), "int");
}

TEST_F(PreciseDerefTest, ReadOfTheBadCellIsStillRejected) {
  const char *P = "{s let x = ref 1 in (x := true; !x) s}";
  EXPECT_EQ(check(P, false), "<error>");
  EXPECT_EQ(check(P, true), "<error>");
}

TEST_F(PreciseDerefTest, UnknownPointerStillRejected) {
  // p comes from Gamma; it could alias x, so the read must not be
  // excused even in precise mode.
  TypeEnv Gamma;
  Gamma["p"] = Ctx.types().refType(Ctx.types().intType());
  const char *P = "{s let x = ref 1 in (p := 2; x := true; !p) s}";
  // Note the roles: the *bad* write is to x (an allocation), the read is
  // through p (unknown). x being an allocation means p cannot alias it
  // (p predates it), so precise mode accepts.
  EXPECT_EQ(check(P, false, Gamma), "<error>");
  EXPECT_EQ(check(P, true, Gamma), "int");

  // Flip the roles: the bad write is through unknown p, the read through
  // unknown q — possible alias, rejected either way.
  TypeEnv Gamma2;
  Gamma2["p"] = Ctx.types().refType(Ctx.types().boolType());
  Gamma2["q"] = Ctx.types().refType(Ctx.types().boolType());
  // Writing an int through a bool ref is the inconsistency.
  const char *P2 = "{s (p := 1; !q) s}";
  EXPECT_EQ(check(P2, false, Gamma2), "<error>");
  EXPECT_EQ(check(P2, true, Gamma2), "<error>");
}

TEST_F(PreciseDerefTest, OverwriteStillClearsWithoutPreciseMode) {
  // Sanity: Overwrite-Ok continues to work in both modes.
  const char *P = "{s let x = ref 1 in (x := true; x := 2; !x) s}";
  EXPECT_EQ(check(P, false), "int");
  EXPECT_EQ(check(P, true), "int");
}
