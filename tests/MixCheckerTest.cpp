//===--- MixCheckerTest.cpp - Tests for the MIX mixed analysis ------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// These tests exercise the mix rules of Figure 4 and reproduce the
// motivating idioms of Section 2: each "idiom" program is rejected by one
// analysis alone but accepted by the mixture.
//
//===----------------------------------------------------------------------===//

#include "lang/AstClone.h"
#include "lang/Parser.h"
#include "mix/MixChecker.h"

#include <gtest/gtest.h>

using namespace mix;

namespace {

class MixTest : public ::testing::Test {
protected:
  const Expr *parse(std::string_view Source) {
    const Expr *E = parseExpression(Source, Ctx, Diags);
    EXPECT_NE(E, nullptr) << "parse failed: " << Diags.str();
    return E;
  }

  /// Runs the mixed analysis with the program's outermost scope typed.
  std::string mixTyped(std::string_view Source, const TypeEnv &Gamma = {},
                       MixOptions Opts = MixOptions()) {
    Diags.clear();
    const Expr *E = parse(Source);
    if (!E)
      return "<parse-error>";
    MixChecker Mix(Ctx.types(), Diags, Opts);
    const Type *T = Mix.checkTyped(E, Gamma);
    return T ? T->str() : "<error>";
  }

  /// Runs the mixed analysis with the outermost scope symbolic.
  std::string mixSymbolic(std::string_view Source,
                          const TypeEnv &Gamma = {},
                          MixOptions Opts = MixOptions()) {
    Diags.clear();
    const Expr *E = parse(Source);
    if (!E)
      return "<parse-error>";
    MixChecker Mix(Ctx.types(), Diags, Opts);
    const Type *T = Mix.checkSymbolic(E, Gamma);
    return T ? T->str() : "<error>";
  }

  /// "Type checking alone": strips the blocks and runs the pure checker.
  std::string pureTyped(std::string_view Source, const TypeEnv &Gamma = {}) {
    DiagnosticEngine LocalDiags;
    const Expr *E = parseExpression(Source, Ctx, LocalDiags);
    if (!E)
      return "<parse-error>";
    const Expr *Stripped = cloneStrippingBlocks(Ctx, E);
    TypeChecker Checker(Ctx.types(), LocalDiags);
    const Type *T = Checker.check(Stripped, Gamma);
    return T ? T->str() : "<error>";
  }

  AstContext Ctx;
  DiagnosticEngine Diags;
};

} // namespace

// --- plumbing ---------------------------------------------------------------

TEST_F(MixTest, PlainProgramsTypeCheck) {
  EXPECT_EQ(mixTyped("1 + 2"), "int");
  EXPECT_EQ(mixTyped("let r = ref 1 in (r := 2; !r)"), "int");
}

TEST_F(MixTest, SymbolicBlocksProduceTypes) {
  EXPECT_EQ(mixTyped("{s 1 + 2 s} + 3"), "int");
  EXPECT_EQ(mixTyped("if {s true s} then 1 else 2"), "int");
}

TEST_F(MixTest, TypedBlocksInsideSymbolic) {
  EXPECT_EQ(mixSymbolic("{t 1 + 2 t} + 3"), "int");
}

TEST_F(MixTest, DeepNesting) {
  EXPECT_EQ(mixTyped("{s {t {s {t 1 t} + 1 s} + 1 t} + 1 s} + 1"), "int");
}

TEST_F(MixTest, SymbolicBlockSeesGammaVariables) {
  TypeEnv Gamma;
  Gamma["x"] = Ctx.types().intType();
  EXPECT_EQ(mixTyped("{s x + 1 s}", Gamma), "int");
}

// --- Section 2: path sensitivity -------------------------------------------

TEST_F(MixTest, UnreachableCodeIdiom) {
  // {t ... {s if true then {t 5 t} else {t <ill-typed> t} s} ... t}
  // Pure typing rejects the dead ill-typed branch; MIX never reaches it.
  const char *Program = "{s if true then {t 5 t} else {t 1 + true t} s}";
  EXPECT_EQ(pureTyped(Program), "<error>");
  EXPECT_EQ(mixTyped(Program), "int");
}

TEST_F(MixTest, FeasibleIllTypedBranchStillRejected) {
  // Soundness check: with a symbolic condition both branches are
  // feasible, so the ill-typed one must be reported.
  TypeEnv Gamma;
  Gamma["b"] = Ctx.types().boolType();
  EXPECT_EQ(mixTyped("{s if b then {t 5 t} else {t 1 + true t} s}", Gamma),
            "<error>");
}

TEST_F(MixTest, InfeasiblePathErrorsAreDiscarded) {
  // The guard x = x + 1 is unsatisfiable; the error behind it is on an
  // infeasible path and must be discarded by the solver check.
  TypeEnv Gamma;
  Gamma["x"] = Ctx.types().intType();
  EXPECT_EQ(mixTyped("{s if x = x + 1 then 1 + true else 7 s}", Gamma),
            "int");
}

// --- Section 2: flow sensitivity --------------------------------------------

TEST_F(MixTest, VariableReuseByRebinding) {
  // `{s var x = 1; {t ... t}; x = "foo" s}`: in the paper's
  // dynamically-typed rendition, reassignment rebinds the variable; the
  // ML-core analogue is let-shadowing at a different type, which the
  // symbolic executor tracks per binding.
  const char *Program =
      "{s let x = 1 in ({t x + 1 t}; let x = true in "
      "{t if x then 2 else 3 t}) s}";
  EXPECT_EQ(mixTyped(Program), "int");
}

TEST_F(MixTest, CellReuseAtAnotherTypeIsFlaggedAtBoundaries) {
  // The *reference-cell* version of variable reuse violates the formal
  // system's global |- m ok at every boundary — exactly the limitation
  // the paper reports in Section 4.6 ("any temporary violation of type
  // invariants from symbolic blocks would immediately be flagged when
  // switching to typed blocks").
  const char *Program =
      "{s let x = ref 1 in ({t !x + 1 t}; x := true; !x) s}";
  EXPECT_EQ(pureTyped(Program), "<error>");
  EXPECT_EQ(mixTyped(Program), "<error>");
}

TEST_F(MixTest, NullThenInitIdiom) {
  // Section 2's x->obj = NULL; x->obj = malloc(...) shape: an ill-typed
  // first write immediately overwritten by a well-typed one.
  const char *Program =
      "{s let x = ref 1 in (x := true; x := 2; {t !x + 1 t}) s}";
  EXPECT_EQ(pureTyped(Program), "<error>");
  EXPECT_EQ(mixTyped(Program), "int");
}

TEST_F(MixTest, UnoverwrittenIllTypedWriteRejected) {
  // Leaving memory inconsistent at the typed-block boundary fails
  // SETypBlock's |- m ok premise.
  EXPECT_EQ(mixTyped("{s let x = ref 1 in (x := true; {t 0 t}) s}"),
            "<error>");
}

// --- Section 2: context sensitivity ------------------------------------------

TEST_F(MixTest, ContextSensitivityThroughSymbolicBlocks) {
  // `div` returns different types on its two branches, so typing alone
  // rejects it; symbolically executing the call `div 7 4`-style shows the
  // error branch is infeasible.
  const char *Program =
      "{s (fun (y: int) : int -> if y = 0 then 1 + true else 7) 4 s}";
  EXPECT_EQ(pureTyped(Program), "<error>");
  EXPECT_EQ(mixTyped(Program), "int");
}

TEST_F(MixTest, PathAndContextSensitivityCombined) {
  // The div example: the error branch is infeasible at both call sites,
  // and each call is executed separately (context sensitivity).
  const char *Program = "{s let div = fun (y: int) : int -> "
                        "if y = 0 then true + 1 else 100 - y in "
                        "(div 4) + (div 10) s}";
  EXPECT_EQ(pureTyped(Program), "<error>");
  EXPECT_EQ(mixTyped(Program), "int");
}

TEST_F(MixTest, EscapingClosuresMustTypeCheck) {
  // Regression test for a soundness hole in the closure extension: a
  // closure returned from a symbolic block carries its annotated arrow
  // type into the typed world, which may apply it to *any* argument —
  // so its body must type check on all inputs, not just the ones the
  // block exercised.
  const char *Escape =
      "({s fun (y: int) : int -> if y = 0 then 1 + true else y s}) 0";
  EXPECT_EQ(mixTyped(Escape), "<error>");

  // The same closure applied *inside* the block is fine: symbolic
  // execution checks exactly the feasible behaviour (the div idiom).
  const char *Internal =
      "{s (fun (y: int) : int -> if y = 0 then 1 + true else y) 4 s}";
  EXPECT_EQ(mixTyped(Internal), "int");

  // A well-typed closure escapes without complaint.
  const char *Good = "({s fun (y: int) : int -> y + 1 s}) 41";
  EXPECT_EQ(mixTyped(Good), "int");
}

TEST_F(MixTest, ClosuresStoredInMemoryAreVerifiedAtBoundaries) {
  // The memory route for the same hole: the block stores a bad closure
  // into a Gamma-provided reference; the typed world could fetch and
  // apply it.
  TypeEnv Gamma;
  Gamma["p"] = Ctx.types().refType(
      Ctx.types().funType(Ctx.types().intType(), Ctx.types().intType()));
  const char *ViaMemory =
      "{s p := (fun (y: int) : int -> if y = 0 then 1 + true else y); "
      "0 s}";
  EXPECT_EQ(mixTyped(ViaMemory, Gamma), "<error>");

  const char *GoodViaMemory =
      "{s p := (fun (y: int) : int -> y + y); 0 s}";
  EXPECT_EQ(mixTyped(GoodViaMemory, Gamma), "int");
}

TEST_F(MixTest, ClosuresEnteringTypedBlocksAreVerified) {
  // The Sigma route: a bad closure bound to a local crosses into a typed
  // block which could apply it by type.
  const char *ViaSigma =
      "{s let f = fun (y: int) : int -> if y = 0 then 1 + true else y in "
      "{t f 0 t} s}";
  EXPECT_EQ(mixTyped(ViaSigma), "<error>");
}

TEST_F(MixTest, FunctionsDoNotCrossBlockBoundaries) {
  // A known limitation the paper notes ("the lexical scoping of typed
  // and symbolic blocks is one limitation"): a function value entering a
  // typed block is abstracted to its arrow type, so a nested symbolic
  // block can no longer execute its body.
  const char *Program = "{s let f = fun (y: int) : int -> y in "
                        "{t {s f 4 s} t} s}";
  EXPECT_EQ(mixTyped(Program), "<error>");
}

// --- Section 2: local refinements -------------------------------------------

TEST_F(MixTest, SignSplitIsExhaustive) {
  // The sign-refinement example: three-way split over a symbolic int.
  TypeEnv Gamma;
  Gamma["x"] = Ctx.types().intType();
  const char *Program = "{s if 0 < x then {t 1 t} "
                        "else if x = 0 then {t 2 t} else {t 3 t} s}";
  EXPECT_EQ(mixTyped(Program, Gamma), "int");
}

TEST_F(MixTest, LocalInitializationIdiom) {
  // The malloc-then-initialize idiom: a fresh cell is written step by
  // step inside the symbolic block; the surrounding typed code sees a
  // consistently typed memory.
  const char *Program =
      "{t let y = {s let x = ref 0 in (x := 1; x := 2; !x) s} in y + 1 t}";
  EXPECT_EQ(mixTyped(Program), "int");
}

// --- Section 2: helping symbolic execution ----------------------------------

TEST_F(MixTest, TypedBlockModelsUnknownCall) {
  // Wrapping an operation the executor cannot handle (here: applying a
  // symbolic function value) in a typed block models its result by type.
  TypeEnv Gamma;
  Gamma["f"] =
      Ctx.types().funType(Ctx.types().intType(), Ctx.types().intType());
  // Without the typed block, symbolic execution fails...
  EXPECT_EQ(mixSymbolic("f 1 + 2", Gamma), "<error>");
  // ... with it, the call is conservatively modeled by its type.
  EXPECT_EQ(mixSymbolic("{t f 1 t} + 2", Gamma), "int");
}

// --- result-type agreement and memory premises -------------------------------

TEST_F(MixTest, PathsMustAgreeOnResultType) {
  TypeEnv Gamma;
  Gamma["b"] = Ctx.types().boolType();
  EXPECT_EQ(mixTyped("{s if b then 1 else true s}", Gamma), "<error>");
}

TEST_F(MixTest, FinalMemoryMustBeConsistent) {
  // The symbolic block ends with an un-overwritten ill-typed write.
  EXPECT_EQ(mixTyped("{s let x = ref 1 in (x := true; 0) s}"), "<error>");
  // Turning the final-memory premise off (ablation hook) accepts it.
  MixOptions Opts;
  Opts.CheckFinalMemory = false;
  EXPECT_EQ(mixTyped("{s let x = ref 1 in (x := true; 0) s}", {}, Opts),
            "int");
}

// --- strategies and options ---------------------------------------------------

TEST_F(MixTest, DeferStrategyChecksTheSamePrograms) {
  MixOptions Opts;
  Opts.Exec.Strat = SymExecOptions::Strategy::Defer;
  TypeEnv Gamma;
  Gamma["x"] = Ctx.types().intType();
  EXPECT_EQ(mixTyped("{s if 0 < x then 1 else 2 s}", Gamma, Opts), "int");
  EXPECT_EQ(mixTyped("{s if 0 < x then 1 else true s}", Gamma, Opts),
            "<error>");
}

TEST_F(MixTest, ExhaustivenessIsCheckedAndCounted) {
  TypeEnv Gamma;
  Gamma["x"] = Ctx.types().intType();
  const Expr *E = parse("{s if 0 < x then 1 else 2 s}");
  ASSERT_NE(E, nullptr);
  MixChecker Mix(Ctx.types(), Diags);
  ASSERT_NE(Mix.checkTyped(E, Gamma), nullptr);
  EXPECT_EQ(Mix.stats().SymBlocksChecked, 1u);
  EXPECT_EQ(Mix.stats().ExhaustivenessChecks, 1u);
  EXPECT_EQ(Mix.stats().PathsExplored, 2u);
}

TEST_F(MixTest, AssumeCompleteSkipsExhaustiveness) {
  MixOptions Opts;
  Opts.Exhaustive = MixOptions::Exhaustiveness::AssumeComplete;
  TypeEnv Gamma;
  Gamma["x"] = Ctx.types().intType();
  const Expr *E = parse("{s if 0 < x then 1 else 2 s}");
  ASSERT_NE(E, nullptr);
  MixChecker Mix(Ctx.types(), Diags, Opts);
  ASSERT_NE(Mix.checkTyped(E, Gamma), nullptr);
  EXPECT_EQ(Mix.stats().ExhaustivenessChecks, 0u);
}

TEST_F(MixTest, ResourceLimitRejectsSoundly) {
  MixOptions Opts;
  Opts.Exec.MaxPaths = 2;
  TypeEnv Gamma;
  Gamma["a"] = Ctx.types().boolType();
  Gamma["b"] = Ctx.types().boolType();
  EXPECT_EQ(mixTyped("{s if a then (if b then 1 else 2) else "
                     "(if b then 3 else 4) s}",
                     Gamma, Opts),
            "<error>");
}

// --- the running example of Section 1 ----------------------------------------

TEST_F(MixTest, MultithreadedFlagIdiom) {
  // The introduction's shape: a top-level symbolic block separates the
  // multithreaded=true and =false worlds; the typed regions are analyzed
  // once per world. We model fork/lock/unlock effects as reference
  // updates whose consistency depends on the flag correlation.
  TypeEnv Gamma;
  Gamma["multithreaded"] = Ctx.types().boolType();
  const char *Program =
      "{s let locked = ref 0 in ("
      "  (if multithreaded then locked := 1 else 0); "
      "  {t !locked t}; "
      "  (if multithreaded then locked := 0 else 0); "
      "  !locked) s}";
  EXPECT_EQ(mixTyped(Program, Gamma), "int");
}

TEST_F(MixTest, FeasibleErrorsCarryConcreteWitnesses) {
  // A rejected symbolic block reports a concrete input triggering the
  // failing path — made possible by the solver's model extraction.
  TypeEnv Gamma;
  Gamma["x"] = Ctx.types().intType();
  EXPECT_EQ(mixTyped("{s if x = 7 then 1 + true else 0 s}", Gamma),
            "<error>");
  bool SawWitness = false;
  for (const Diagnostic &D : Diags.diagnostics())
    if (D.Kind == DiagKind::Note &&
        D.Message.find("x = 7") != std::string::npos)
      SawWitness = true;
  EXPECT_TRUE(SawWitness) << Diags.str();
}

// --- the shared engine layer (Sections 4.3 / 4.4) ----------------------------

TEST_F(MixTest, SymbolicBlockResultsAreCachedPerContext) {
  TypeEnv Gamma;
  Gamma["x"] = Ctx.types().intType();
  const Expr *E = parse("{s if 0 < x then 1 else 2 s}");
  ASSERT_NE(E, nullptr);
  MixChecker Mix(Ctx.types(), Diags);
  ASSERT_NE(Mix.checkTyped(E, Gamma), nullptr);
  ASSERT_NE(Mix.checkTyped(E, Gamma), nullptr);
  // The boundary rule fired twice, but the block was executed once: the
  // second call hit the Section 4.3 cache for this (block, Gamma).
  EXPECT_EQ(Mix.stats().SymBlocksChecked, 2u);
  EXPECT_EQ(Mix.stats().PathsExplored, 2u);
  EXPECT_EQ(Mix.symCacheStats().Inserts, 1u);
  EXPECT_EQ(Mix.symCacheStats().Hits, 1u);
  // A different Gamma is a different calling context.
  Gamma["y"] = Ctx.types().boolType();
  ASSERT_NE(Mix.checkTyped(E, Gamma), nullptr);
  EXPECT_EQ(Mix.symCacheStats().Inserts, 2u);
  EXPECT_EQ(Mix.stats().PathsExplored, 4u);
}

TEST_F(MixTest, TypedBlocksAreCachedAcrossPaths) {
  // Both symbolic paths reach the same typed block with the same derived
  // Gamma (x:int on either branch), so SETypBlock type checks it once
  // and replays the cached type on the second path.
  TypeEnv Gamma;
  Gamma["b"] = Ctx.types().boolType();
  const Expr *E =
      parse("{s let x = (if b then 1 else 2) in {t x + 1 t} s}");
  ASSERT_NE(E, nullptr);
  MixChecker Mix(Ctx.types(), Diags);
  ASSERT_NE(Mix.checkTyped(E, Gamma), nullptr);
  EXPECT_EQ(Mix.stats().PathsExplored, 2u);
  EXPECT_EQ(Mix.stats().TypedBlocksExecuted, 2u);
  EXPECT_EQ(Mix.typedCacheStats().Inserts, 1u);
  EXPECT_EQ(Mix.typedCacheStats().Hits, 1u);
}

TEST_F(MixTest, EngineCountersTrackBlockStackDiscipline) {
  // Four nested blocks push and pop cleanly through the engine's block
  // stack, with no Section 4.4 re-entry: the formal language has no
  // recursion, so the cut-off never fires here (its semantics are
  // covered by the generic engine tests). All four evaluations and the
  // absence of recursions are visible in the engine.* counters.
  obs::MetricsRegistry Reg;
  MixOptions Opts;
  Opts.Metrics = &Reg;
  EXPECT_EQ(mixTyped("{s {t {s {t 1 t} + 1 s} + 1 t} + 1 s} + 1", {}, Opts),
            "int");
  EXPECT_EQ(Reg.counterValue("engine.mix.blocks"), 4u);
  EXPECT_EQ(Reg.counterValue("engine.mix.recursions"), 0u);
  EXPECT_EQ(Reg.counterValue("engine.cache.mix.hits"), 0u);
}

TEST_F(MixTest, BooleanWitnesses) {
  TypeEnv Gamma;
  Gamma["b"] = Ctx.types().boolType();
  EXPECT_EQ(mixTyped("{s if b then 1 + true else 0 s}", Gamma), "<error>");
  bool SawWitness = false;
  for (const Diagnostic &D : Diags.diagnostics())
    if (D.Kind == DiagKind::Note &&
        D.Message.find("b = true") != std::string::npos)
      SawWitness = true;
  EXPECT_TRUE(SawWitness) << Diags.str();
}
