//===--- ThreadPoolTest.cpp - Tests for the work-stealing pool ------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// The pool underpins block-level parallelism in both analyses, so these
// tests pin its contract: submit/join round trips, exception propagation
// through futures, nested submission without deadlock (futures help run
// tasks while waiting), the degenerate 0- and 1-worker configurations,
// and parallelFor's barrier semantics.
//
//===----------------------------------------------------------------------===//

#include "runtime/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

using namespace mix::rt;

TEST(ThreadPoolTest, SubmitAndJoinReturnsValues) {
  ThreadPool Pool(4);
  std::vector<TaskFuture<int>> Futures;
  for (int I = 0; I != 100; ++I)
    Futures.push_back(Pool.submit([I] { return I * I; }));
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(Futures[(size_t)I].get(), I * I);
}

TEST(ThreadPoolTest, VoidTasksComplete) {
  ThreadPool Pool(2);
  std::atomic<int> Count{0};
  std::vector<TaskFuture<void>> Futures;
  for (int I = 0; I != 64; ++I)
    Futures.push_back(Pool.submit([&Count] { ++Count; }));
  for (auto &F : Futures)
    F.get();
  EXPECT_EQ(Count.load(), 64);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughGet) {
  ThreadPool Pool(2);
  TaskFuture<int> Bad = Pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(Bad.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(Pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, NestedSubmissionDoesNotDeadlock) {
  // A task that awaits its own subtasks: with blocking waits this
  // deadlocks a 1-worker pool; the future's help-while-waiting loop must
  // drain the subtasks instead.
  ThreadPool Pool(1);
  TaskFuture<int> Outer = Pool.submit([&Pool] {
    TaskFuture<int> A = Pool.submit([] { return 20; });
    TaskFuture<int> B = Pool.submit([] { return 22; });
    return A.get() + B.get();
  });
  EXPECT_EQ(Outer.get(), 42);
}

TEST(ThreadPoolTest, DeeplyNestedSubmission) {
  ThreadPool Pool(2);
  // Recursive fork-join: sum(1..N) via binary splitting.
  std::function<int(int, int)> Sum = [&](int Lo, int Hi) -> int {
    if (Hi - Lo <= 4) {
      int S = 0;
      for (int I = Lo; I != Hi; ++I)
        S += I;
      return S;
    }
    int Mid = Lo + (Hi - Lo) / 2;
    TaskFuture<int> Left = Pool.submit([&, Lo, Mid] { return Sum(Lo, Mid); });
    int Right = Sum(Mid, Hi);
    return Left.get() + Right;
  };
  EXPECT_EQ(Sum(1, 101), 5050);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.workerCount(), 0u);
  // submit() must execute on the calling thread, immediately.
  std::thread::id Caller = std::this_thread::get_id();
  TaskFuture<std::thread::id> F =
      Pool.submit([] { return std::this_thread::get_id(); });
  EXPECT_TRUE(F.ready());
  EXPECT_EQ(F.get(), Caller);
  EXPECT_THROW(
      Pool.submit([]() -> int { throw std::logic_error("inline"); }).get(),
      std::logic_error);
}

TEST(ThreadPoolTest, OneWorkerIsSerial) {
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.workerCount(), 1u);
  // All tasks run on the single worker thread, never concurrently: an
  // unsynchronized counter stays exact.
  int Plain = 0;
  std::vector<TaskFuture<void>> Futures;
  for (int I = 0; I != 200; ++I)
    Futures.push_back(Pool.submit([&Plain] { ++Plain; }));
  for (auto &F : Futures)
    F.get();
  EXPECT_EQ(Plain, 200);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Seen(257);
  Pool.parallelFor(Seen.size(), [&](size_t I) { ++Seen[I]; });
  for (size_t I = 0; I != Seen.size(); ++I)
    EXPECT_EQ(Seen[I].load(), 1) << "index " << I;
}

TEST(ThreadPoolTest, ParallelForPropagatesAnException) {
  ThreadPool Pool(3);
  EXPECT_THROW(Pool.parallelFor(32,
                                [&](size_t I) {
                                  if (I == 17)
                                    throw std::runtime_error("index 17");
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForZeroAndOneItems) {
  ThreadPool Pool(2);
  int Ran = 0;
  Pool.parallelFor(0, [&](size_t) { ++Ran; });
  EXPECT_EQ(Ran, 0);
  Pool.parallelFor(1, [&](size_t I) {
    EXPECT_EQ(I, 0u);
    ++Ran;
  });
  EXPECT_EQ(Ran, 1);
}

TEST(ThreadPoolTest, CurrentWorkerIdentifiesPoolThreads) {
  ThreadPool Pool(3);
  EXPECT_EQ(Pool.currentWorker(), -1); // the test thread is not a worker
  std::vector<TaskFuture<int>> Futures;
  for (int I = 0; I != 24; ++I)
    Futures.push_back(Pool.submit([&Pool] { return Pool.currentWorker(); }));
  for (auto &F : Futures) {
    int W = F.get();
    EXPECT_GE(W, 0);
    EXPECT_LT(W, 3);
  }
}

TEST(ThreadPoolTest, ManyTasksAcrossManyWorkersSum) {
  ThreadPool Pool(8);
  std::atomic<long long> Total{0};
  std::vector<TaskFuture<void>> Futures;
  for (long long I = 1; I <= 1000; ++I)
    Futures.push_back(Pool.submit([&Total, I] { Total += I; }));
  for (auto &F : Futures)
    F.get();
  EXPECT_EQ(Total.load(), 500500);
}
