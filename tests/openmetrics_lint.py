#!/usr/bin/env python3
"""Lints an OpenMetrics text exposition (the subset mixyd emits).

Usage: openmetrics_lint.py <exposition.txt> [...]

Checks, per file:
  * the exposition ends with a final `# EOF` line and nothing after it,
  * every `# TYPE` line declares a valid name and a known type, once,
  * every sample line parses as `name[{labels}] value`, the name uses
    the metric charset, and belongs to a declared family with the
    suffix its type allows (counter -> `_total`; histogram ->
    `_bucket`/`_sum`/`_count`; gauge -> the bare name),
  * histogram buckets are cumulative (monotone non-decreasing), their
    `le` bounds strictly increase, the last bucket is `le="+Inf"`, and
    its value equals the family's `_count` sample.

Exits non-zero with a message naming the offending line on failure.
Used by the CI daemon metrics step; has no dependencies beyond the
standard library.
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? "
    r"(?P<value>[^ ]+)$")
TYPES = {"counter", "gauge", "histogram"}

# type -> allowed sample-name suffixes relative to the family name
SUFFIXES = {
    "counter": ["_total"],
    "gauge": [""],
    "histogram": ["_bucket", "_sum", "_count"],
}


def fail(path, lineno, message):
    sys.exit(f"{path}:{lineno}: {message}")


def family_for(name, families):
    """The declared family a sample name belongs to, or None."""
    for fam, typ in families.items():
        for suffix in SUFFIXES[typ]:
            if name == fam + suffix:
                return fam, typ
    return None


def lint(path):
    with open(path) as f:
        text = f.read()
    if not text.endswith("# EOF\n"):
        fail(path, text.count("\n"), "exposition must end with '# EOF'")

    families = {}  # name -> type
    # histogram family -> list of (le, cumulative count); counts by family
    buckets = {}
    counts = {}
    lines = text.splitlines()
    for lineno, line in enumerate(lines, 1):
        if line == "# EOF":
            if lineno != len(lines):
                fail(path, lineno, "'# EOF' must be the last line")
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                fail(path, lineno, f"malformed TYPE line: {line!r}")
            _, _, name, typ = parts
            if not NAME_RE.match(name):
                fail(path, lineno, f"bad metric name {name!r}")
            if typ not in TYPES:
                fail(path, lineno, f"unknown metric type {typ!r}")
            if name in families:
                fail(path, lineno, f"duplicate TYPE for {name!r}")
            families[name] = typ
            continue
        if line.startswith("#"):
            fail(path, lineno, f"unknown comment line: {line!r}")

        m = SAMPLE_RE.match(line)
        if not m:
            fail(path, lineno, f"malformed sample line: {line!r}")
        name = m.group("name")
        hit = family_for(name, families)
        if hit is None:
            fail(path, lineno, f"sample {name!r} has no TYPE declaration")
        fam, typ = hit
        try:
            value = float(m.group("value"))
        except ValueError:
            fail(path, lineno, f"non-numeric value {m.group('value')!r}")
        if name == fam + "_bucket":
            labels = m.group("labels") or ""
            lm = re.match(r'^le="([^"]+)"$', labels)
            if not lm:
                fail(path, lineno, f"_bucket needs exactly an le label: {line!r}")
            le = float("inf") if lm.group(1) == "+Inf" else float(lm.group(1))
            buckets.setdefault(fam, []).append((lineno, le, value))
        elif name == fam + "_count":
            counts[fam] = (lineno, value)

    for fam, series in buckets.items():
        prev_le, prev_cum = None, None
        for lineno, le, cum in series:
            if prev_le is not None and le <= prev_le:
                fail(path, lineno, f"{fam}: le bounds must increase")
            if prev_cum is not None and cum < prev_cum:
                fail(path, lineno, f"{fam}: buckets must be cumulative")
            prev_le, prev_cum = le, cum
        last_line, last_le, last_cum = series[-1]
        if last_le != float("inf"):
            fail(path, last_line, f"{fam}: last bucket must be le=\"+Inf\"")
        if fam not in counts:
            fail(path, last_line, f"{fam}: histogram without a _count sample")
        if counts[fam][1] != last_cum:
            fail(path, counts[fam][0],
                 f"{fam}: _count {counts[fam][1]} != +Inf bucket {last_cum}")

    print(f"{path}: OpenMetrics exposition OK "
          f"({len(families)} families, {len(buckets)} histograms)")


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    for path in sys.argv[1:]:
        lint(path)


if __name__ == "__main__":
    main()
