//===--- HashTest.cpp - Tests for the stable hashing layer ----------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// Covers support/Hash.h: the persistable StableHasher contract (exact
// digest values are part of the cache file format), avalanche64, and the
// in-process hashCombine used by the hash-table key hashers.
//
//===----------------------------------------------------------------------===//

#include "support/Hash.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

using namespace mix;

namespace {

TEST(StableHasherTest, Deterministic) {
  auto Digest = [] {
    return StableHasher().u32(7).str("hello").boolean(true).u64(1ull << 40)
        .digest();
  };
  EXPECT_EQ(Digest(), Digest());
}

TEST(StableHasherTest, OrderAndWidthSensitive) {
  // Different field orders, widths, and values must all hash apart —
  // the persistent cache relies on these keys to distinguish records.
  std::set<uint64_t> Digests;
  Digests.insert(StableHasher().u32(1).u32(2).digest());
  Digests.insert(StableHasher().u32(2).u32(1).digest());
  Digests.insert(StableHasher().u64(1).u32(2).digest());
  Digests.insert(StableHasher().u8(1).u8(2).digest());
  Digests.insert(StableHasher().u16(1).u16(2).digest());
  EXPECT_EQ(Digests.size(), 5u);
}

TEST(StableHasherTest, StringsAreLengthPrefixed) {
  // "ab" + "c" must not collide with "a" + "bc": the length prefix keeps
  // field boundaries in the digest.
  EXPECT_NE(StableHasher().str("ab").str("c").digest(),
            StableHasher().str("a").str("bc").digest());
  EXPECT_NE(StableHasher().str("").digest(), StableHasher().digest());
}

TEST(StableHasherTest, SignedValues) {
  EXPECT_NE(StableHasher().i64(-1).digest(), StableHasher().i64(1).digest());
  EXPECT_EQ(StableHasher().i64(-42).digest(),
            StableHasher().i64(-42).digest());
}

TEST(StableHasherTest, GoldenDigests) {
  // Golden values pin the on-disk format: if these change, FormatVersion
  // in persist/RecordFile.h must be bumped, because every existing cache
  // key and record checksum silently invalidates.
  EXPECT_EQ(stableHash64(""), StableHasher().str("").digest());
  EXPECT_EQ(stableHash64("mix"), StableHasher().str("mix").digest());
  // Empty-input digest is the avalanched FNV-1a offset basis.
  EXPECT_EQ(StableHasher().digest(), avalanche64(0xcbf29ce484222325ull));
}

TEST(Avalanche64Test, DistinctAndDeterministic) {
  std::set<uint64_t> Out;
  for (uint64_t I = 0; I != 1000; ++I)
    Out.insert(avalanche64(I));
  EXPECT_EQ(Out.size(), 1000u); // splitmix64 finalizer is a bijection
  EXPECT_EQ(avalanche64(12345), avalanche64(12345));
  // Sequential inputs must not map to sequential outputs (the whole
  // point: shard selection uses the low bits).
  EXPECT_NE(avalanche64(1) + 1, avalanche64(2));
}

TEST(HashCombineTest, Basics) {
  size_t A = hashCombine(0, 1);
  size_t B = hashCombine(0, 2);
  EXPECT_NE(A, B);
  EXPECT_NE(hashCombine(A, 2), hashCombine(B, 1)); // order matters
  EXPECT_EQ(hashCombine(7, 9), hashCombine(7, 9));
}

} // namespace
