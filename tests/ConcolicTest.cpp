//===--- ConcolicTest.cpp - DART-style exploration tests ------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// The third exploration style of Section 3.1: one path per concrete run,
// flipped branches solved for via model extraction. The key soundness
// property — exhaustive() still gates acceptance — is exercised both
// directly and through MixChecker.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "mix/ConcolicDriver.h"
#include "mix/MixChecker.h"

#include "solver/SmtSolver.h"

#include <gtest/gtest.h>

#include <set>

using namespace mix;

namespace {

class ConcolicTest : public ::testing::Test {
protected:
  ConcolicTest() : Syms(Ctx.types()), Solver(Terms), Translator(Syms, Terms) {
    Opts.Strat = SymExecOptions::Strategy::Concolic;
  }

  ConcolicExploreResult explore(std::string_view Source,
                                const std::vector<std::pair<std::string,
                                                            const Type *>>
                                    &Inputs = {},
                                unsigned MaxRuns = 64) {
    const Expr *E = parseExpression(Source, Ctx, Diags);
    EXPECT_NE(E, nullptr) << Diags.str();
    SymExecutor Exec(Syms, Diags, Opts);
    Exec.setSolver(&Solver, &Translator);
    SymEnv Env;
    for (const auto &[Name, Ty] : Inputs)
      Env[Name] = Syms.freshVar(Ty, false, Name);
    SymState Init;
    Init.Path = Syms.trueGuard();
    Init.Mem = Syms.freshBaseMemory();
    ConcolicOptions COpts;
    COpts.MaxRuns = MaxRuns;
    return exploreConcolic(Exec, Solver, Translator, E, Env, Init, COpts);
  }

  AstContext Ctx;
  DiagnosticEngine Diags;
  SymArena Syms;
  smt::TermArena Terms;
  smt::SmtSolver Solver;
  SymToSmt Translator;
  SymExecOptions Opts;
};

} // namespace

TEST_F(ConcolicTest, StraightLineIsOneRun) {
  ConcolicExploreResult R = explore("1 + 2");
  EXPECT_EQ(R.Runs, 1u);
  ASSERT_EQ(R.Paths.size(), 1u);
  EXPECT_EQ(R.Paths[0].Value, Syms.intConst(3));
  EXPECT_FALSE(R.BudgetExhausted);
}

TEST_F(ConcolicTest, BothBranchesAreDiscovered) {
  ConcolicExploreResult R =
      explore("if 0 < x then 1 else 2", {{"x", Ctx.types().intType()}});
  EXPECT_FALSE(R.BudgetExhausted);
  ASSERT_EQ(R.Paths.size(), 2u);
  std::set<long long> Values;
  for (const PathResult &P : R.Paths) {
    ASSERT_FALSE(P.IsError);
    Values.insert(P.Value->intValue());
  }
  EXPECT_EQ(Values, (std::set<long long>{1, 2}));
}

TEST_F(ConcolicTest, ThreeWaySignSplit) {
  ConcolicExploreResult R = explore(
      "if 0 < x then 1 else if x = 0 then 2 else 3",
      {{"x", Ctx.types().intType()}});
  EXPECT_FALSE(R.BudgetExhausted);
  EXPECT_EQ(R.Paths.size(), 3u);
}

TEST_F(ConcolicTest, NestedConditionalsEnumerateAllCombinations) {
  ConcolicExploreResult R =
      explore("(if a then 1 else 0) + (if b then 2 else 0)",
              {{"a", Ctx.types().boolType()},
               {"b", Ctx.types().boolType()}});
  EXPECT_FALSE(R.BudgetExhausted);
  EXPECT_EQ(R.Paths.size(), 4u);
  std::set<long long> Values;
  for (const PathResult &P : R.Paths)
    Values.insert(P.Value->intValue());
  EXPECT_EQ(Values, (std::set<long long>{0, 1, 2, 3}));
}

TEST_F(ConcolicTest, InfeasibleBranchesAreNeverRun) {
  // x = x + 1 is unsatisfiable: the flip attempt is refuted and only one
  // path exists.
  ConcolicExploreResult R = explore("if x = x + 1 then 1 + true else 7",
                                    {{"x", Ctx.types().intType()}});
  EXPECT_FALSE(R.BudgetExhausted);
  ASSERT_EQ(R.Paths.size(), 1u);
  EXPECT_FALSE(R.Paths[0].IsError);
  EXPECT_EQ(R.Paths[0].Value, Syms.intConst(7));
}

TEST_F(ConcolicTest, BudgetExhaustionIsReported) {
  ConcolicExploreResult R = explore(
      "(if a then 1 else 0) + (if b then 2 else 0) + (if c then 4 else 0)",
      {{"a", Ctx.types().boolType()},
       {"b", Ctx.types().boolType()},
       {"c", Ctx.types().boolType()}},
      /*MaxRuns=*/3);
  EXPECT_TRUE(R.BudgetExhausted);
  EXPECT_LE(R.Paths.size(), 3u);
}

TEST_F(ConcolicTest, DataDependentBranching) {
  // Values written through memory steer later branches; the driver's
  // seeds must cover both outcomes.
  ConcolicExploreResult R = explore(
      "let r = ref x in (r := !r + 1; if 0 < !r then 10 else 20)",
      {{"x", Ctx.types().intType()}});
  EXPECT_FALSE(R.BudgetExhausted);
  EXPECT_EQ(R.Paths.size(), 2u);
}

// --- through MixChecker -------------------------------------------------------

namespace {

class ConcolicMixTest : public ::testing::Test {
protected:
  std::string check(std::string_view Source, const TypeEnv &Gamma = {},
                    unsigned MaxRuns = 128) {
    Diags.clear();
    const Expr *E = parseExpression(Source, Ctx, Diags);
    EXPECT_NE(E, nullptr) << Diags.str();
    if (!E)
      return "<parse-error>";
    MixOptions Opts;
    Opts.Explore = MixOptions::Exploration::Concolic;
    Opts.MaxConcolicRuns = MaxRuns;
    MixChecker Mix(Ctx.types(), Diags, Opts);
    const Type *T = Mix.checkTyped(E, Gamma);
    return T ? T->str() : "<error>";
  }

  AstContext Ctx;
  DiagnosticEngine Diags;
};

} // namespace

TEST_F(ConcolicMixTest, AcceptsTheSamePrograms) {
  TypeEnv Gamma;
  Gamma["x"] = Ctx.types().intType();
  Gamma["b"] = Ctx.types().boolType();
  EXPECT_EQ(check("{s if 0 < x then 1 else 2 s}", Gamma), "int");
  EXPECT_EQ(check("{s if true then {t 5 t} else {t 1 + true t} s}", Gamma),
            "int");
  EXPECT_EQ(check("{s if x = x + 1 then 1 + true else 7 s}", Gamma), "int");
}

TEST_F(ConcolicMixTest, RejectsTheSameErrors) {
  TypeEnv Gamma;
  Gamma["b"] = Ctx.types().boolType();
  EXPECT_EQ(check("{s if b then {t 5 t} else {t 1 + true t} s}", Gamma),
            "<error>");
}

TEST_F(ConcolicMixTest, TruncatedBudgetRejectsSoundly) {
  // Only one run allowed: the enumeration is incomplete, and the mix
  // rule must refuse rather than silently accept a partial exploration.
  TypeEnv Gamma;
  Gamma["a"] = Ctx.types().boolType();
  Gamma["b"] = Ctx.types().boolType();
  EXPECT_EQ(check("{s (if a then 1 else 0) + (if b then 2 else 0) s}",
                  Gamma, /*MaxRuns=*/1),
            "<error>");
  // A sufficient budget accepts.
  EXPECT_EQ(check("{s (if a then 1 else 0) + (if b then 2 else 0) s}",
                  Gamma, /*MaxRuns=*/16),
            "int");
}
