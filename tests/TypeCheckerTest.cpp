//===--- TypeCheckerTest.cpp - Tests for the core type checker ------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "types/TypeChecker.h"

#include <gtest/gtest.h>

using namespace mix;

namespace {

class TypeCheckerTest : public ::testing::Test {
protected:
  /// Parses and checks \p Source under \p Gamma; returns the type string
  /// or "<error>".
  std::string typeOf(std::string_view Source, const TypeEnv &Gamma = {}) {
    Diags.clear();
    const Expr *E = parseExpression(Source, Ctx, Diags);
    if (!E)
      return "<parse-error>";
    TypeChecker Checker(Ctx.types(), Diags);
    const Type *T = Checker.check(E, Gamma);
    return T ? T->str() : "<error>";
  }

  AstContext Ctx;
  DiagnosticEngine Diags;
};

} // namespace

TEST_F(TypeCheckerTest, Literals) {
  EXPECT_EQ(typeOf("42"), "int");
  EXPECT_EQ(typeOf("true"), "bool");
  EXPECT_EQ(typeOf("false"), "bool");
}

TEST_F(TypeCheckerTest, VariablesFromGamma) {
  TypeEnv Gamma;
  Gamma["x"] = Ctx.types().intType();
  Gamma["b"] = Ctx.types().boolType();
  EXPECT_EQ(typeOf("x + 1", Gamma), "int");
  EXPECT_EQ(typeOf("b and true", Gamma), "bool");
  EXPECT_EQ(typeOf("y", Gamma), "<error>");
}

TEST_F(TypeCheckerTest, Arithmetic) {
  EXPECT_EQ(typeOf("1 + 2"), "int");
  EXPECT_EQ(typeOf("1 - 2 + 3"), "int");
  EXPECT_EQ(typeOf("1 + true"), "<error>");
  EXPECT_EQ(typeOf("true - 1"), "<error>");
}

TEST_F(TypeCheckerTest, Comparisons) {
  EXPECT_EQ(typeOf("1 < 2"), "bool");
  EXPECT_EQ(typeOf("1 <= 2"), "bool");
  EXPECT_EQ(typeOf("1 = 2"), "bool");
  EXPECT_EQ(typeOf("true = false"), "bool");
  EXPECT_EQ(typeOf("1 = true"), "<error>");
  EXPECT_EQ(typeOf("true < false"), "<error>");
}

TEST_F(TypeCheckerTest, BooleanOperators) {
  EXPECT_EQ(typeOf("true and false or true"), "bool");
  EXPECT_EQ(typeOf("not true"), "bool");
  EXPECT_EQ(typeOf("not 1"), "<error>");
  EXPECT_EQ(typeOf("1 and true"), "<error>");
}

TEST_F(TypeCheckerTest, Conditionals) {
  EXPECT_EQ(typeOf("if true then 1 else 2"), "int");
  EXPECT_EQ(typeOf("if 1 then 1 else 2"), "<error>");
  EXPECT_EQ(typeOf("if true then 1 else false"), "<error>");
}

TEST_F(TypeCheckerTest, LetBindings) {
  EXPECT_EQ(typeOf("let x = 1 in x + 1"), "int");
  EXPECT_EQ(typeOf("let x : int = 1 in x"), "int");
  EXPECT_EQ(typeOf("let x : bool = 1 in x"), "<error>");
  EXPECT_EQ(typeOf("let x = 1 in let x = true in x"), "bool"); // shadowing
}

TEST_F(TypeCheckerTest, References) {
  EXPECT_EQ(typeOf("ref 1"), "int ref");
  EXPECT_EQ(typeOf("ref (ref true)"), "bool ref ref");
  EXPECT_EQ(typeOf("!(ref 1)"), "int");
  EXPECT_EQ(typeOf("!1"), "<error>");
  EXPECT_EQ(typeOf("let r = ref 1 in r := 2"), "int");
  EXPECT_EQ(typeOf("let r = ref 1 in r := true"), "<error>");
  EXPECT_EQ(typeOf("1 := 2"), "<error>");
}

TEST_F(TypeCheckerTest, Sequencing) {
  EXPECT_EQ(typeOf("let r = ref 0 in (r := 1; !r)"), "int");
  EXPECT_EQ(typeOf("(1 + true); 2"), "<error>"); // first part must check
}

TEST_F(TypeCheckerTest, Functions) {
  EXPECT_EQ(typeOf("fun (x: int) : int -> x + 1"), "int -> int");
  EXPECT_EQ(typeOf("fun (x: int) : bool -> x"), "<error>");
  EXPECT_EQ(typeOf("(fun (x: int) : int -> x) 3"), "int");
  EXPECT_EQ(typeOf("(fun (x: int) : int -> x) true"), "<error>");
  EXPECT_EQ(typeOf("1 2"), "<error>");
  EXPECT_EQ(typeOf("let twice = fun (f: int -> int) : int -> f (f 0) in "
                   "twice (fun (x: int) : int -> x + 1)"),
            "int");
}

TEST_F(TypeCheckerTest, MonomorphismRejectsPolymorphicUse) {
  // The paper's Section 2 motivation: id at two types needs polymorphism,
  // which the off-the-shelf checker deliberately lacks.
  EXPECT_EQ(typeOf("let id = fun (x: int) : int -> x in "
                   "(id 3) + (if id true then 1 else 0)"),
            "<error>");
}

TEST_F(TypeCheckerTest, TypedBlocksPassThrough) {
  EXPECT_EQ(typeOf("{t 1 + 2 t}"), "int");
  EXPECT_EQ(typeOf("{t {t true t} t}"), "bool");
}

TEST_F(TypeCheckerTest, SymbolicBlockWithoutOracleIsError) {
  EXPECT_EQ(typeOf("{s 1 s}"), "<error>");
  EXPECT_TRUE(Diags.hasErrors());
}

namespace {

/// A fake oracle that assigns every symbolic block a fixed type, for
/// testing the hook plumbing in isolation from the real executor.
class FixedTypeOracle : public SymBlockOracle {
public:
  explicit FixedTypeOracle(const Type *T) : T(T) {}
  const Type *typeOfSymbolicBlock(const BlockExpr *,
                                  const TypeEnv &Gamma) override {
    LastGamma = Gamma;
    ++Calls;
    return T;
  }
  const Type *T;
  TypeEnv LastGamma;
  unsigned Calls = 0;
};

} // namespace

TEST_F(TypeCheckerTest, SymbolicBlockUsesOracle) {
  const Expr *E =
      parseExpression("let x = 1 in {s x s} + 2", Ctx, Diags);
  ASSERT_NE(E, nullptr);
  TypeChecker Checker(Ctx.types(), Diags);
  FixedTypeOracle Oracle(Ctx.types().intType());
  Checker.setSymBlockOracle(&Oracle);
  const Type *T = Checker.check(E, {});
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->str(), "int");
  EXPECT_EQ(Oracle.Calls, 1u);
  // The oracle received Gamma with the let-bound variable.
  ASSERT_TRUE(Oracle.LastGamma.count("x"));
  EXPECT_EQ(Oracle.LastGamma["x"]->str(), "int");
}
