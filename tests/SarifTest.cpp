//===--- SarifTest.cpp - Provenance rendering and SARIF export ------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// Covers the diagnostic-provenance subsystem end to end: the --explain
// text renderer against a byte-exact golden, the persistence round-trip
// of provenance payloads, and the SARIF 2.1.0 export for the two evidence
// shapes the analyses record — a symbolic witness path (MIX through a
// feasible ill-typed branch) and a qualifier flow chain (MIXY on the
// vsftpd corpus, crossing a mix boundary and an aliasing edge). A final
// test pins that SARIF results carry exactly the locations the sorted
// --format=json document reports, in the same order.
//
//===----------------------------------------------------------------------===//

#include "cfront/CParser.h"
#include "lang/Parser.h"
#include "mix/MixChecker.h"
#include "mixy/Mixy.h"
#include "mixy/VsftpdMini.h"
#include "provenance/Provenance.h"
#include "provenance/Sarif.h"
#include "support/Diagnostics.h"

#include "TestJson.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace mix;

namespace {

//===----------------------------------------------------------------------===//
// renderExplain: byte-exact golden
//===----------------------------------------------------------------------===//

prov::DiagProvenance fullProvenance() {
  prov::DiagProvenance P;
  prov::WitnessPath W;
  W.Steps.push_back({SourceLoc(1, 7), "condition true"});
  W.Steps.push_back({SourceLoc(2, 3), "condition false"});
  W.PathCondition = "a0:bool";
  W.Model.push_back({"b", "true"});
  W.Model.push_back({"x", "-3"});
  W.ModelComplete = true;
  P.Witness = std::move(W);

  prov::FlowChain F;
  prov::FlowStep S1;
  S1.Desc = "NULL literal";
  S1.Loc = SourceLoc(3, 12);
  prov::FlowStep S2;
  S2.Desc = "g_addr";
  S2.Loc = SourceLoc(5, 3);
  S2.EdgeFromPrev = prov::FlowEdgeKind::MixBoundary;
  prov::FlowStep S3;
  S3.Desc = "param p_ptr of sysutil_free"; // no location: no "at" suffix
  S3.EdgeFromPrev = prov::FlowEdgeKind::Flow;
  F.Steps = {S1, S2, S3};
  P.Flow = std::move(F);

  P.Block.Stack = {"main [typed]", "sockaddr_clear [symbolic]"};
  P.Block.Disposition = prov::BlockDisposition::Fresh;
  return P;
}

TEST(ExplainRenderTest, GoldenFullPayload) {
  const std::string Expected =
      "  witness path:\n"
      "    1:7: condition true\n"
      "    2:3: condition false\n"
      "  path condition: a0:bool\n"
      "  for example, when b = true, x = -3\n"
      "  qualifier flow:\n"
      "    $null source: NULL literal at 3:12\n"
      "    -> (mix boundary) g_addr at 5:3\n"
      "    -> (flow) param p_ptr of sysutil_free  [$nonnull sink]\n"
      "  block context: main [typed] > sockaddr_clear [symbolic] (fresh)\n";
  EXPECT_EQ(renderExplain(fullProvenance(), "  "), Expected);
}

TEST(ExplainRenderTest, StraightLineWitnessAndPartialModel) {
  prov::DiagProvenance P;
  prov::WitnessPath W;
  W.PathCondition = "";
  W.Model.push_back({"p", "null"});
  W.ModelComplete = false;
  P.Witness = std::move(W);
  EXPECT_EQ(renderExplain(P, ""),
            "witness path:\n"
            "  (no branches: the error is on the straight-line path)\n"
            "for example, when p = null (model may be partial)\n");
}

TEST(ExplainRenderTest, ExplainTextFallsBackToPlainDiagnostics) {
  // Diagnostics without provenance render exactly as str() does, so
  // --explain on an unexplained engine is the historical text output.
  DiagnosticEngine Diags;
  Diags.error(SourceLoc(1, 2), "boom", DiagID::TypeError);
  Diags.note(SourceLoc(1, 3), "context", DiagID::None);
  EXPECT_EQ(prov::renderExplainText(Diags), Diags.str());

  size_t Idx = Diags.report(DiagKind::Warning, SourceLoc(2, 1), "warn",
                            DiagID::NullWarning);
  auto P = std::make_shared<prov::DiagProvenance>();
  P->Block.Disposition = prov::BlockDisposition::WarmHit;
  Diags.attachProvenance(Idx, P);
  EXPECT_EQ(prov::renderExplainText(Diags),
            Diags.str() + "    block context: <top level> (warm hit)\n");
}

//===----------------------------------------------------------------------===//
// Persistence round-trip
//===----------------------------------------------------------------------===//

TEST(ProvenancePersistTest, EncodeDecodeRoundTrip) {
  prov::DiagProvenance P = fullProvenance();
  persist::ByteWriter W;
  prov::encodeProvenance(P, W);
  std::string Bytes = W.take();

  persist::ByteReader R(Bytes);
  std::shared_ptr<const prov::DiagProvenance> Q = prov::decodeProvenance(R);
  ASSERT_NE(Q, nullptr);
  EXPECT_TRUE(R.ok());
  EXPECT_TRUE(R.atEnd());
  // The decoded payload explains identically — the property warm cache
  // replay relies on.
  EXPECT_EQ(renderExplain(*Q, "  "), renderExplain(P, "  "));
  EXPECT_EQ(Q->Block.Disposition, prov::BlockDisposition::Fresh);
  ASSERT_TRUE(Q->Witness.has_value());
  EXPECT_TRUE(Q->Witness->ModelComplete);
}

TEST(ProvenancePersistTest, TruncatedPayloadRejected) {
  persist::ByteWriter W;
  prov::encodeProvenance(fullProvenance(), W);
  std::string Bytes = W.take();
  for (size_t Cut : {Bytes.size() / 4, Bytes.size() / 2, Bytes.size() - 1}) {
    std::string Short = Bytes.substr(0, Cut);
    persist::ByteReader R(Short);
    EXPECT_EQ(prov::decodeProvenance(R), nullptr) << "cut at " << Cut;
  }
}

TEST(ProvenancePersistTest, BadEnumValuesRejected) {
  // A corrupted edge kind or disposition must not decode into a payload
  // the renderers would misprint.
  persist::ByteWriter W;
  W.boolean(false); // no witness
  W.boolean(true);  // flow with one step
  W.u32(1);
  W.str("node");
  W.u32(1).u32(1);
  W.u8(200); // bogus FlowEdgeKind
  persist::ByteReader R(W.bytes());
  EXPECT_EQ(prov::decodeProvenance(R), nullptr);

  persist::ByteWriter W2;
  W2.boolean(false);
  W2.boolean(false);
  W2.u8(200); // bogus BlockDisposition
  W2.u32(0);
  persist::ByteReader R2(W2.bytes());
  EXPECT_EQ(prov::decodeProvenance(R2), nullptr);
}

//===----------------------------------------------------------------------===//
// SARIF export: symbolic witness (MIX)
//===----------------------------------------------------------------------===//

/// Runs the mixed checker with a provenance sink over a program whose
/// ill-typed branch is feasible only under a symbolic condition, then
/// renders SARIF. The MIX301 result must carry the witness as a codeFlow
/// and the path condition + solver model in its property bag.
std::string mixWitnessSarif(DiagnosticEngine &Diags) {
  AstContext Ctx;
  const Expr *E = parseExpression(
      "{s if b then {t 1 + true t} else {t 0 t} s}", Ctx, Diags);
  EXPECT_NE(E, nullptr) << Diags.str();
  TypeEnv Gamma;
  Gamma["b"] = Ctx.types().boolType();

  obs::MetricsRegistry Reg;
  prov::ProvenanceSink Sink;
  Sink.attachMetrics(Reg);
  MixOptions Opts;
  Opts.Prov = &Sink;
  MixChecker Mix(Ctx.types(), Diags, Opts);
  EXPECT_EQ(Mix.checkTyped(E, Gamma), nullptr); // the branch is feasible
  EXPECT_GT(Reg.counterValue("provenance.witnesses"), 0u);

  prov::SarifOptions SO;
  SO.ToolName = "mixcheck";
  SO.ArtifactUri = "witness.mix";
  return prov::renderSarif(Diags, SO);
}

const testjson::Value *findResult(const testjson::Value &Doc,
                                  const std::string &RuleId) {
  const testjson::Value &Results = Doc["runs"][0]["results"];
  for (size_t I = 0; I != Results.size(); ++I)
    if (Results[I]["ruleId"].Str == RuleId)
      return &Results[I];
  return nullptr;
}

TEST(SarifExportTest, SymbolicWitnessBecomesCodeFlow) {
  DiagnosticEngine Diags;
  std::string Sarif = mixWitnessSarif(Diags);

  testjson::Value Doc;
  std::string Error;
  ASSERT_TRUE(testjson::parseDocument(Sarif, Doc, &Error)) << Error << "\n"
                                                           << Sarif;
  std::string Why;
  ASSERT_TRUE(testjson::checkSarifShape(Doc, &Why)) << Why << "\n" << Sarif;

  const testjson::Value &Driver = Doc["runs"][0]["tool"]["driver"];
  EXPECT_EQ(Driver["name"].Str, "mixcheck");
  EXPECT_EQ(Driver["informationUri"].Str,
            "https://doi.org/10.1145/1706299.1706325");
  EXPECT_EQ(Doc["runs"][0]["artifacts"][0]["location"]["uri"].Str,
            "witness.mix");

  const testjson::Value *R = findResult(Doc, "MIX301");
  ASSERT_NE(R, nullptr) << Sarif;
  EXPECT_EQ((*R)["level"].Str, "error");

  // The witness path: branch decisions first, the report site last.
  ASSERT_TRUE((*R)["codeFlows"].isArray());
  ASSERT_EQ((*R)["codeFlows"].size(), 1u);
  const testjson::Value &Locs =
      (*R)["codeFlows"][0]["threadFlows"][0]["locations"];
  ASSERT_TRUE(Locs.isArray());
  ASSERT_GE(Locs.size(), 2u);
  EXPECT_NE(Locs[0]["location"]["message"]["text"].Str.find("condition"),
            std::string::npos);
  EXPECT_EQ(Locs[Locs.size() - 1]["location"]["message"]["text"].Str,
            "reported here");
  // Every flow step cites the shared artifact.
  for (size_t I = 0; I != Locs.size(); ++I)
    EXPECT_EQ(Locs[I]["location"]["physicalLocation"]["artifactLocation"]
                  ["uri"].Str,
              "witness.mix");

  // Path condition and satisfying model ride in the property bag; the
  // model names the source-level variable with the value that reaches
  // the ill-typed branch.
  ASSERT_TRUE((*R)["properties"].isObject()) << Sarif;
  EXPECT_FALSE((*R)["properties"]["pathCondition"].Str.empty());
  EXPECT_EQ((*R)["properties"]["model"].Str, "b = true");
}

//===----------------------------------------------------------------------===//
// SARIF export: qualifier flow chain (MIXY, vsftpd corpus)
//===----------------------------------------------------------------------===//

std::string mixyFlowSarif(DiagnosticEngine &Diags) {
  c::CAstContext Ctx;
  const c::CProgram *P =
      c::parseC(c::corpus::vsftpdFull(/*Annotated=*/true), Ctx, Diags);
  EXPECT_NE(P, nullptr);

  obs::MetricsRegistry Reg;
  prov::ProvenanceSink Sink;
  Sink.attachMetrics(Reg);
  c::MixyOptions Opts;
  Opts.Prov = &Sink;
  c::MixyAnalysis Analysis(*P, Ctx, Diags, Opts);
  EXPECT_GT(Analysis.run(c::MixyAnalysis::StartMode::Typed), 0u);
  EXPECT_GT(Reg.counterValue("provenance.flows"), 0u);

  prov::SarifOptions SO;
  SO.ToolName = "mixyc";
  SO.ArtifactUri = "@vsftpd";
  return prov::renderSarif(Diags, SO);
}

TEST(SarifExportTest, QualifierFlowChainBecomesCodeFlow) {
  DiagnosticEngine Diags;
  std::string Sarif = mixyFlowSarif(Diags);

  testjson::Value Doc;
  std::string Error;
  ASSERT_TRUE(testjson::parseDocument(Sarif, Doc, &Error)) << Error;
  std::string Why;
  ASSERT_TRUE(testjson::checkSarifShape(Doc, &Why)) << Why << "\n" << Sarif;

  const testjson::Value *R = findResult(Doc, "MIX401");
  ASSERT_NE(R, nullptr) << Sarif;
  EXPECT_EQ((*R)["level"].Str, "warning");

  // The warning's explanatory note becomes a relatedLocation.
  ASSERT_TRUE((*R)["relatedLocations"].isArray()) << Sarif;
  ASSERT_GE((*R)["relatedLocations"].size(), 1u);
  EXPECT_FALSE((*R)["relatedLocations"][0]["message"]["text"].Str.empty());

  // The flow chain: $null source first, $nonnull sink last, and on this
  // corpus the chain crosses both a mix-rule boundary and an aliasing
  // edge — the two edge kinds the paper's Section 4 machinery induces.
  ASSERT_TRUE((*R)["codeFlows"].isArray()) << Sarif;
  const testjson::Value &Locs =
      (*R)["codeFlows"][0]["threadFlows"][0]["locations"];
  ASSERT_GE(Locs.size(), 3u);
  std::string First = Locs[0]["location"]["message"]["text"].Str;
  std::string Last = Locs[Locs.size() - 1]["location"]["message"]["text"].Str;
  EXPECT_EQ(First.rfind("$null source: ", 0), 0u) << First;
  EXPECT_NE(Last.find(" [$nonnull sink]"), std::string::npos) << Last;
  bool SawBoundary = false, SawAlias = false;
  for (size_t I = 1; I != Locs.size(); ++I) {
    const std::string &Text = Locs[I]["location"]["message"]["text"].Str;
    SawBoundary |= Text.rfind("(mix boundary) ", 0) == 0;
    SawAlias |= Text.rfind("(alias) ", 0) == 0;
  }
  EXPECT_TRUE(SawBoundary) << Sarif;
  EXPECT_TRUE(SawAlias) << Sarif;
}

//===----------------------------------------------------------------------===//
// SARIF <-> sorted JSON agreement, and the empty document
//===----------------------------------------------------------------------===//

TEST(SarifExportTest, SarifResultsMatchSortedJsonLocations) {
  // The two machine formats share sortedTopLevelIndices(), so result K of
  // the SARIF log and entry K of the sorted JSON array must describe the
  // same diagnostic: same rule id, same line, same column.
  DiagnosticEngine Diags;
  std::string Sarif = mixyFlowSarif(Diags);

  testjson::Value SarifDoc, JsonDoc;
  std::string Error;
  ASSERT_TRUE(testjson::parseDocument(Sarif, SarifDoc, &Error)) << Error;
  ASSERT_TRUE(
      testjson::parseDocument(Diags.renderJSON(/*Sorted=*/true), JsonDoc,
                              &Error))
      << Error;

  const testjson::Value &Results = SarifDoc["runs"][0]["results"];
  ASSERT_TRUE(JsonDoc.isArray());
  ASSERT_EQ(Results.size(), JsonDoc.size());
  ASSERT_GT(Results.size(), 0u);
  for (size_t I = 0; I != Results.size(); ++I) {
    const testjson::Value &Region =
        Results[I]["locations"][0]["physicalLocation"]["region"];
    EXPECT_EQ(Results[I]["ruleId"].Str, JsonDoc[I]["id"].Str);
    EXPECT_EQ(Region["startLine"].Num, JsonDoc[I]["line"].Num);
    EXPECT_EQ(Region["startColumn"].Num, JsonDoc[I]["column"].Num);
  }
}

TEST(SarifExportTest, EmptyEngineRendersValidEmptyLog) {
  DiagnosticEngine Diags;
  prov::SarifOptions SO;
  std::string Sarif = prov::renderSarif(Diags, SO);
  testjson::Value Doc;
  std::string Error;
  ASSERT_TRUE(testjson::parseDocument(Sarif, Doc, &Error)) << Error;
  std::string Why;
  EXPECT_TRUE(testjson::checkSarifShape(Doc, &Why)) << Why;
  EXPECT_EQ(Doc["runs"][0]["results"].size(), 0u);
  // No diagnostics, no rules — but the artifact and driver still render.
  EXPECT_EQ(Doc["runs"][0]["tool"]["driver"]["rules"].size(), 0u);
  EXPECT_EQ(Doc["runs"][0]["artifacts"][0]["location"]["uri"].Str, "input");
}

} // namespace
