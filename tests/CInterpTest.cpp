//===--- CInterpTest.cpp - Differential testing of the C executor ---------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// A small concrete interpreter for mini-C (test-only) and a random
// program generator; on closed, deterministic programs the symbolic
// executor degenerates to an interpreter and must produce exactly one
// path whose return value matches concrete execution.
//
//===----------------------------------------------------------------------===//

#include "cfront/CParser.h"
#include "cfront/CPrinter.h"
#include "csym/CSymExecutor.h"
#include "solver/SmtSolver.h"

#include <gtest/gtest.h>

#include <optional>
#include <random>

using namespace mix::c;
using mix::DiagnosticEngine;

namespace {

// === a concrete mini-C interpreter ==========================================

/// A concrete value: an integer, or a pointer to a cell (object + field),
/// or null. Functions are out of scope for the generator.
struct CV {
  enum class Kind { Int, Ptr, Null } K = Kind::Int;
  long long I = 0;
  unsigned Obj = 0;
  std::string Field;

  static CV intv(long long V) {
    CV C;
    C.K = Kind::Int;
    C.I = V;
    return C;
  }
  static CV ptr(unsigned Obj, std::string Field) {
    CV C;
    C.K = Kind::Ptr;
    C.Obj = Obj;
    C.Field = std::move(Field);
    return C;
  }
  static CV null() {
    CV C;
    C.K = Kind::Null;
    return C;
  }
  bool truthy() const {
    switch (K) {
    case Kind::Int:
      return I != 0;
    case Kind::Ptr:
      return true;
    case Kind::Null:
      return false;
    }
    return false;
  }
};

/// Interprets a whole program from an entry function. Traps (null deref,
/// resource exhaustion) return nullopt.
class CInterp {
public:
  explicit CInterp(const CProgram &P) : P(P) {}

  std::optional<long long> run(const std::string &Entry) {
    const CFuncDecl *F = P.findFunc(Entry);
    if (!F || !F->isDefined())
      return std::nullopt;
    std::optional<CV> R = call(F, {});
    if (!R || R->K != CV::Kind::Int)
      return std::nullopt;
    return R->I;
  }

private:
  using Cell = std::pair<unsigned, std::string>;

  unsigned newObject() { return ++LastObj; }

  std::optional<CV> call(const CFuncDecl *F, const std::vector<CV> &Args) {
    if (++Calls > 100000 || Depth > 64)
      return std::nullopt;
    ++Depth;
    std::map<std::string, unsigned> Locals;
    for (size_t I = 0; I != F->params().size(); ++I) {
      unsigned Obj = newObject();
      Locals[F->params()[I].Name] = Obj;
      if (I < Args.size())
        Mem[{Obj, ""}] = Args[I];
    }
    CV Ret = CV::intv(0);
    bool Returned = false;
    bool Ok = exec(F->body(), Locals, Ret, Returned);
    --Depth;
    if (!Ok)
      return std::nullopt;
    return Ret;
  }

  bool exec(const CStmt *S, std::map<std::string, unsigned> &Locals, CV &Ret,
            bool &Returned) {
    if (Returned)
      return true;
    if (++Steps > 1000000)
      return false;
    switch (S->kind()) {
    case CStmtKind::Expr: {
      auto V = eval(cast<CExprStmt>(S)->expr(), Locals);
      return V.has_value();
    }
    case CStmtKind::Decl: {
      const auto *D = cast<CDeclStmt>(S);
      unsigned Obj = newObject();
      Locals[D->name()] = Obj;
      if (D->init()) {
        auto V = eval(D->init(), Locals);
        if (!V)
          return false;
        Mem[{Obj, ""}] = *V;
      }
      return true;
    }
    case CStmtKind::If: {
      const auto *I = cast<CIfStmt>(S);
      auto C = eval(I->cond(), Locals);
      if (!C)
        return false;
      if (C->truthy())
        return exec(I->thenStmt(), Locals, Ret, Returned);
      if (I->elseStmt())
        return exec(I->elseStmt(), Locals, Ret, Returned);
      return true;
    }
    case CStmtKind::While: {
      const auto *W = cast<CWhileStmt>(S);
      for (unsigned Iter = 0; Iter != 100000; ++Iter) {
        auto C = eval(W->cond(), Locals);
        if (!C)
          return false;
        if (!C->truthy())
          return true;
        if (!exec(W->body(), Locals, Ret, Returned) || Returned)
          return !Returned ? false : true;
      }
      return false; // ran too long
    }
    case CStmtKind::Return: {
      const auto *R = cast<CReturnStmt>(S);
      if (R->value()) {
        auto V = eval(R->value(), Locals);
        if (!V)
          return false;
        Ret = *V;
      }
      Returned = true;
      return true;
    }
    case CStmtKind::Block:
      for (const CStmt *Sub : cast<CBlockStmt>(S)->stmts()) {
        if (!exec(Sub, Locals, Ret, Returned))
          return false;
        if (Returned)
          return true;
      }
      return true;
    }
    return false;
  }

  std::optional<Cell> lvalue(const CExpr *E,
                             std::map<std::string, unsigned> &Locals) {
    switch (E->kind()) {
    case CExprKind::Ident: {
      const auto *Id = cast<CIdent>(E);
      auto It = Locals.find(Id->name());
      if (It != Locals.end())
        return Cell{It->second, ""};
      if (P.findGlobal(Id->name())) {
        auto GIt = GlobalObjs.find(Id->name());
        if (GIt == GlobalObjs.end())
          GIt = GlobalObjs.emplace(Id->name(), newObject()).first;
        return Cell{GIt->second, ""};
      }
      return std::nullopt;
    }
    case CExprKind::Unary: {
      const auto *U = cast<CUnary>(E);
      if (U->op() != CUnaryOp::Deref)
        return std::nullopt;
      auto V = eval(U->sub(), Locals);
      if (!V || V->K != CV::Kind::Ptr)
        return std::nullopt; // includes the null-deref trap
      return Cell{V->Obj, V->Field};
    }
    case CExprKind::Member: {
      const auto *M = cast<CMember>(E);
      if (M->isArrow()) {
        auto V = eval(M->base(), Locals);
        if (!V || V->K != CV::Kind::Ptr)
          return std::nullopt;
        std::string F =
            V->Field.empty() ? M->field() : V->Field + "." + M->field();
        return Cell{V->Obj, F};
      }
      auto Base = lvalue(M->base(), Locals);
      if (!Base)
        return std::nullopt;
      Base->second = Base->second.empty()
                         ? M->field()
                         : Base->second + "." + M->field();
      return Base;
    }
    default:
      return std::nullopt;
    }
  }

  std::optional<CV> eval(const CExpr *E,
                         std::map<std::string, unsigned> &Locals) {
    switch (E->kind()) {
    case CExprKind::IntLit:
      return CV::intv(cast<CIntLit>(E)->value());
    case CExprKind::SizeOf:
      return CV::intv(8);
    case CExprKind::NullLit:
      return CV::null();
    case CExprKind::StrLit:
      return CV::ptr(newObject(), "");
    case CExprKind::Ident: {
      auto L = lvalue(E, Locals);
      if (!L)
        return std::nullopt;
      auto It = Mem.find(*L);
      if (It == Mem.end())
        return std::nullopt; // read of uninitialized storage
      return It->second;
    }
    case CExprKind::Unary: {
      const auto *U = cast<CUnary>(E);
      switch (U->op()) {
      case CUnaryOp::Deref: {
        auto L = lvalue(E, Locals);
        if (!L)
          return std::nullopt;
        auto It = Mem.find(*L);
        if (It == Mem.end())
          return std::nullopt;
        return It->second;
      }
      case CUnaryOp::AddrOf: {
        auto L = lvalue(U->sub(), Locals);
        if (!L)
          return std::nullopt;
        return CV::ptr(L->first, L->second);
      }
      case CUnaryOp::Not: {
        auto V = eval(U->sub(), Locals);
        if (!V)
          return std::nullopt;
        return CV::intv(V->truthy() ? 0 : 1);
      }
      case CUnaryOp::Neg: {
        auto V = eval(U->sub(), Locals);
        if (!V || V->K != CV::Kind::Int)
          return std::nullopt;
        return CV::intv(-V->I);
      }
      }
      return std::nullopt;
    }
    case CExprKind::Binary: {
      const auto *B = cast<CBinary>(E);
      auto L = eval(B->lhs(), Locals);
      if (!L)
        return std::nullopt;
      // Note: like the symbolic executor, no short-circuiting (the
      // generator never relies on it).
      auto R = eval(B->rhs(), Locals);
      if (!R)
        return std::nullopt;
      auto AsInt = [](const CV &V) -> std::optional<long long> {
        if (V.K == CV::Kind::Int)
          return V.I;
        if (V.K == CV::Kind::Null)
          return 0;
        return std::nullopt;
      };
      switch (B->op()) {
      case CBinaryOp::Add:
      case CBinaryOp::Sub: {
        auto LI = AsInt(*L), RI = AsInt(*R);
        if (!LI || !RI)
          return std::nullopt;
        return CV::intv(B->op() == CBinaryOp::Add ? *LI + *RI : *LI - *RI);
      }
      case CBinaryOp::Eq:
      case CBinaryOp::Ne: {
        bool Equal;
        if (L->K == CV::Kind::Ptr && R->K == CV::Kind::Ptr)
          Equal = L->Obj == R->Obj && L->Field == R->Field;
        else if (L->K == CV::Kind::Ptr || R->K == CV::Kind::Ptr)
          Equal = false; // ptr vs null/zero
        else
          Equal = L->truthy() == R->truthy() && AsInt(*L) == AsInt(*R);
        return CV::intv((B->op() == CBinaryOp::Eq) == Equal ? 1 : 0);
      }
      case CBinaryOp::Lt:
      case CBinaryOp::Gt:
      case CBinaryOp::Le:
      case CBinaryOp::Ge: {
        auto LI = AsInt(*L), RI = AsInt(*R);
        if (!LI || !RI)
          return std::nullopt;
        bool V = false;
        switch (B->op()) {
        case CBinaryOp::Lt:
          V = *LI < *RI;
          break;
        case CBinaryOp::Gt:
          V = *LI > *RI;
          break;
        case CBinaryOp::Le:
          V = *LI <= *RI;
          break;
        case CBinaryOp::Ge:
          V = *LI >= *RI;
          break;
        default:
          break;
        }
        return CV::intv(V ? 1 : 0);
      }
      case CBinaryOp::LAnd:
        return CV::intv(L->truthy() && R->truthy() ? 1 : 0);
      case CBinaryOp::LOr:
        return CV::intv(L->truthy() || R->truthy() ? 1 : 0);
      }
      return std::nullopt;
    }
    case CExprKind::Assign: {
      const auto *A = cast<CAssign>(E);
      auto L = lvalue(A->target(), Locals);
      if (!L)
        return std::nullopt;
      auto V = eval(A->value(), Locals);
      if (!V)
        return std::nullopt;
      Mem[*L] = *V;
      return V;
    }
    case CExprKind::Call: {
      const auto *Call = cast<CCall>(E);
      if (const auto *Id = dyn_cast<CIdent>(Call->callee()))
        if (Id->name() == "malloc" && !P.findFunc("malloc"))
          return CV::ptr(newObject(), "");
      CSema Sema(P, const_cast<CAstContext &>(Ctx), Diags);
      const CFuncDecl *F = Sema.directCallee(Call);
      if (!F || !F->isDefined())
        return std::nullopt;
      std::vector<CV> Args;
      for (const CExpr *Arg : Call->args()) {
        auto V = eval(Arg, Locals);
        if (!V)
          return std::nullopt;
        Args.push_back(*V);
      }
      return this->call(F, Args);
    }
    case CExprKind::Member: {
      auto L = lvalue(E, Locals);
      if (!L)
        return std::nullopt;
      auto It = Mem.find(*L);
      if (It == Mem.end())
        return std::nullopt;
      return It->second;
    }
    case CExprKind::Cast:
      return eval(cast<CCast>(E)->sub(), Locals);
    }
    return std::nullopt;
  }

  const CProgram &P;
  CAstContext Ctx; // scratch for CSema
  DiagnosticEngine Diags;
  std::map<Cell, CV> Mem;
  std::map<std::string, unsigned> GlobalObjs;
  unsigned LastObj = 0;
  unsigned Steps = 0;
  unsigned Calls = 0;
  unsigned Depth = 0;
};

// === the random program generator ============================================

/// Emits closed, deterministic, always-initialized mini-C programs: int
/// locals, pointers to locals, malloc'd structs, bounded loops, direct
/// calls into small helpers.
class CProgramGenerator {
public:
  explicit CProgramGenerator(std::mt19937 &Rng) : Rng(Rng) {}

  std::string generate() {
    std::string Out = "struct box { int a; int b; };\n";
    // A couple of helpers with fixed shapes.
    Out += "int helper0(int x) { return x + 1; }\n";
    Out += "int helper1(int x, int y) {\n"
           "  if (x > y) { return x - y; }\n"
           "  return y - x;\n"
           "}\n";
    Out += "int main(void) {\n";
    unsigned NumVars = 2 + Rng() % 3;
    for (unsigned I = 0; I != NumVars; ++I) {
      Vars.push_back("v" + std::to_string(I));
      Out += "  int v" + std::to_string(I) + " = " +
             std::to_string((long long)(Rng() % 19) - 9) + ";\n";
    }
    unsigned NumStmts = 3 + Rng() % 6;
    for (unsigned I = 0; I != NumStmts; ++I)
      Out += stmt();
    Out += "  return " + expr(2) + ";\n";
    Out += "}\n";
    return Out;
  }

private:
  std::string var() { return Vars[Rng() % Vars.size()]; }

  std::string expr(unsigned Depth) {
    if (Depth == 0)
      return Rng() % 2 ? var() : std::to_string((long long)(Rng() % 9) - 4);
    switch (Rng() % 6) {
    case 0:
      return "(" + expr(Depth - 1) + " + " + expr(Depth - 1) + ")";
    case 1:
      return "(" + expr(Depth - 1) + " - " + expr(Depth - 1) + ")";
    case 2:
      return "helper0(" + expr(Depth - 1) + ")";
    case 3:
      return "helper1(" + expr(Depth - 1) + ", " + expr(Depth - 1) + ")";
    case 4:
      return "(" + expr(Depth - 1) + " " + cmp() + " " + expr(Depth - 1) +
             ")";
    default:
      return var();
    }
  }

  std::string cmp() {
    const char *Ops[] = {"<", ">", "<=", ">=", "==", "!="};
    return Ops[Rng() % 6];
  }

  std::string stmt() {
    switch (Rng() % 6) {
    case 0:
      return "  " + var() + " = " + expr(2) + ";\n";
    case 1:
      return "  if (" + expr(1) + " " + cmp() + " " + expr(1) + ") { " +
             var() + " = " + expr(1) + "; } else { " + var() + " = " +
             expr(1) + "; }\n";
    case 2: {
      // A bounded countdown loop.
      std::string I = "i" + std::to_string(Counter++);
      return "  int " + I + " = " + std::to_string(Rng() % 5) +
             ";\n  while (" + I + " > 0) { " + var() + " = " + var() +
             " + " + I + "; " + I + " = " + I + " - 1; }\n";
    }
    case 3: {
      // Pointer to a local, written through.
      std::string P = "p" + std::to_string(Counter++);
      std::string Target = var();
      return "  int *" + P + " = &" + Target + ";\n  *" + P + " = *" + P +
             " + " + std::to_string(Rng() % 5) + ";\n";
    }
    case 4: {
      // A malloc'd struct with both fields used.
      std::string B = "b" + std::to_string(Counter++);
      return "  struct box *" + B +
             " = (struct box*) malloc(sizeof(struct box));\n  " + B +
             "->a = " + expr(1) + ";\n  " + B + "->b = " + expr(1) +
             ";\n  " + var() + " = " + B + "->a + " + B + "->b;\n";
    }
    default:
      return "  " + var() + " = helper0(" + var() + ");\n";
    }
  }

  std::mt19937 &Rng;
  std::vector<std::string> Vars;
  unsigned Counter = 0;
};

} // namespace

/// The differential property: on closed deterministic programs, symbolic
/// execution is exact.
class CDifferentialTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(CDifferentialTest, SymbolicExecutionMatchesInterpretation) {
  std::mt19937 Rng(GetParam());
  unsigned Compared = 0;
  for (int Round = 0; Round != 40; ++Round) {
    CProgramGenerator Gen(Rng);
    std::string Source = Gen.generate();

    CAstContext Ctx;
    DiagnosticEngine Diags;
    const CProgram *P = parseC(Source, Ctx, Diags);
    ASSERT_NE(P, nullptr) << Source << "\n" << Diags.str();

    CInterp Interp(*P);
    std::optional<long long> Expected = Interp.run("main");
    ASSERT_TRUE(Expected.has_value()) << "interpreter trapped on:\n"
                                      << Source;

    mix::smt::TermArena Terms;
    mix::smt::SmtSolver Solver(Terms);
    CSymOptions Opts;
    Opts.LoopBound = 16;
    CSymExecutor Exec(*P, Ctx, Diags, Terms, Solver, Opts);
    CSymResult R = Exec.runFunction(P->findFunc("main"));

    ASSERT_EQ(R.WarningCount, 0u) << Source;
    ASSERT_EQ(R.Paths.size(), 1u) << "deterministic program forked:\n"
                                  << Source;
    ASSERT_TRUE(R.Paths[0].Returned) << Source;
    ASSERT_TRUE(R.Paths[0].Ret.isScalar()) << Source;
    const auto *T = R.Paths[0].Ret.scalarTerm();
    // C comparisons come back as boolean constants (truth values); both
    // constant kinds map to the interpreter's 0/1 ints.
    ASSERT_TRUE(T->kind() == mix::smt::TermKind::IntConst ||
                T->kind() == mix::smt::TermKind::BoolConst)
        << "non-constant result for closed program:\n"
        << Source << "\ngot: " << T->str();
    EXPECT_EQ(T->value(), *Expected) << Source;
    ++Compared;
  }
  EXPECT_EQ(Compared, 40u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CDifferentialTest,
                         ::testing::Values(13u, 37u, 59u, 73u, 97u));

namespace {

/// Evaluates a solver term under an assignment of the free int variables
/// (by variable id); bool vars default to false.
long long evalTermInt(const mix::smt::Term *T,
                      const std::map<unsigned, long long> &IntVals);

bool evalTermBool(const mix::smt::Term *T,
                  const std::map<unsigned, long long> &IntVals) {
  using mix::smt::TermKind;
  switch (T->kind()) {
  case TermKind::BoolConst:
    return T->value() != 0;
  case TermKind::BoolVar:
    return false;
  case TermKind::EqInt:
    return evalTermInt(T->operand(0), IntVals) ==
           evalTermInt(T->operand(1), IntVals);
  case TermKind::Lt:
    return evalTermInt(T->operand(0), IntVals) <
           evalTermInt(T->operand(1), IntVals);
  case TermKind::Le:
    return evalTermInt(T->operand(0), IntVals) <=
           evalTermInt(T->operand(1), IntVals);
  case TermKind::EqBool:
    return evalTermBool(T->operand(0), IntVals) ==
           evalTermBool(T->operand(1), IntVals);
  case TermKind::Not:
    return !evalTermBool(T->operand(0), IntVals);
  case TermKind::And:
    return evalTermBool(T->operand(0), IntVals) &&
           evalTermBool(T->operand(1), IntVals);
  case TermKind::Or:
    return evalTermBool(T->operand(0), IntVals) ||
           evalTermBool(T->operand(1), IntVals);
  case TermKind::IteBool:
    return evalTermBool(T->operand(0), IntVals)
               ? evalTermBool(T->operand(1), IntVals)
               : evalTermBool(T->operand(2), IntVals);
  default:
    ADD_FAILURE() << "unexpected bool term " << T->str();
    return false;
  }
}

long long evalTermInt(const mix::smt::Term *T,
                      const std::map<unsigned, long long> &IntVals) {
  using mix::smt::TermKind;
  switch (T->kind()) {
  case TermKind::IntConst:
    return T->value();
  case TermKind::IntVar: {
    auto It = IntVals.find(T->varId());
    return It == IntVals.end() ? 0 : It->second;
  }
  case TermKind::Add:
    return evalTermInt(T->operand(0), IntVals) +
           evalTermInt(T->operand(1), IntVals);
  case TermKind::Sub:
    return evalTermInt(T->operand(0), IntVals) -
           evalTermInt(T->operand(1), IntVals);
  case TermKind::Neg:
    return -evalTermInt(T->operand(0), IntVals);
  case TermKind::MulConst:
    return T->value() * evalTermInt(T->operand(0), IntVals);
  case TermKind::IteInt:
    return evalTermBool(T->operand(0), IntVals)
               ? evalTermInt(T->operand(1), IntVals)
               : evalTermInt(T->operand(2), IntVals);
  case TermKind::BoolConst:
    return T->value();
  default:
    return evalTermBool(T, IntVals) ? 1 : 0;
  }
}

/// A generator variant whose main takes two symbolic ints.
class CSymbolicProgramGenerator {
public:
  explicit CSymbolicProgramGenerator(std::mt19937 &Rng) : Rng(Rng) {}

  std::string generate() {
    Vars = {"a", "b"};
    std::string Out = "int helper(int x, int y) {\n"
                      "  if (x > y) { return x - y; }\n"
                      "  return y - x;\n"
                      "}\n";
    Out += "int main(int a, int b) {\n";
    unsigned NumLocals = 1 + Rng() % 2;
    for (unsigned I = 0; I != NumLocals; ++I) {
      // Build the initializer before the variable enters scope, so it
      // cannot reference itself.
      std::string Init = expr(1);
      Vars.push_back("v" + std::to_string(I));
      Out += "  int v" + std::to_string(I) + " = " + Init + ";\n";
    }
    unsigned NumStmts = 2 + Rng() % 4;
    for (unsigned I = 0; I != NumStmts; ++I)
      Out += stmt();
    Out += "  return " + expr(2) + ";\n}\n";
    return Out;
  }

private:
  std::string var() { return Vars[Rng() % Vars.size()]; }

  std::string expr(unsigned Depth) {
    if (Depth == 0)
      return Rng() % 2 ? var() : std::to_string((long long)(Rng() % 9) - 4);
    switch (Rng() % 5) {
    case 0:
      return "(" + expr(Depth - 1) + " + " + expr(Depth - 1) + ")";
    case 1:
      return "(" + expr(Depth - 1) + " - " + expr(Depth - 1) + ")";
    case 2:
      return "helper(" + expr(Depth - 1) + ", " + expr(Depth - 1) + ")";
    default:
      return var();
    }
  }

  std::string stmt() {
    switch (Rng() % 4) {
    case 0:
      return "  " + var() + " = " + expr(2) + ";\n";
    case 1: {
      const char *Ops[] = {"<", ">", "<=", ">=", "==", "!="};
      return "  if (" + expr(1) + " " + Ops[Rng() % 6] + " " + expr(1) +
             ") { " + var() + " = " + expr(1) + "; } else { " + var() +
             " = " + expr(1) + "; }\n";
    }
    case 2: {
      // A conditionally-aimed pointer: Morris-style conditional writes.
      std::string P = "p" + std::to_string(Counter++);
      std::string T1 = var(), T2 = var();
      return "  int *" + P + ";\n  if (" + expr(1) + " > 0) { " + P +
             " = &" + T1 + "; } else { " + P + " = &" + T2 + "; }\n  *" +
             P + " = *" + P + " + 1;\n";
    }
    default:
      return "  " + var() + " = helper(" + var() + ", " + expr(1) +
             ");\n";
    }
  }

  std::mt19937 &Rng;
  std::vector<std::string> Vars;
  unsigned Counter = 0;
};

/// Runs the interpreter on a variant of the program with `a`/`b` pinned
/// to concrete values by prepending a shim.
std::optional<long long> interpretWithInputs(const std::string &Source,
                                             long long A, long long B) {
  std::string Shim = Source + "\nint shim(void) { return main(" +
                     std::to_string(A) + ", " + std::to_string(B) +
                     "); }\n";
  CAstContext Ctx;
  DiagnosticEngine Diags;
  const CProgram *P = parseC(Shim, Ctx, Diags);
  if (!P)
    return std::nullopt;
  CInterp Interp(*P);
  return Interp.run("shim");
}

} // namespace

/// The full-executor property: for every concrete input, exactly one
/// feasible path's condition holds, and that path's return value
/// evaluates to the concrete result.
class CSymbolicDifferentialTest : public ::testing::TestWithParam<unsigned> {
};

TEST_P(CSymbolicDifferentialTest, PathsPartitionInputsAndAgree) {
  std::mt19937 Rng(GetParam());
  for (int Round = 0; Round != 15; ++Round) {
    CSymbolicProgramGenerator Gen(Rng);
    std::string Source = Gen.generate();

    CAstContext Ctx;
    DiagnosticEngine Diags;
    const CProgram *P = parseC(Source, Ctx, Diags);
    ASSERT_NE(P, nullptr) << Source << "\n" << Diags.str();

    mix::smt::TermArena Terms;
    mix::smt::SmtSolver Solver(Terms);
    CSymOptions Opts;
    Opts.LoopBound = 16;
    CSymExecutor Exec(*P, Ctx, Diags, Terms, Solver, Opts);
    CSymResult R = Exec.runFunction(P->findFunc("main"));
    ASSERT_FALSE(R.Incomplete) << Source;
    ASSERT_EQ(R.ParamTerms.size(), 2u);
    unsigned AVar = R.ParamTerms[0]->varId();
    unsigned BVar = R.ParamTerms[1]->varId();

    for (long long A = -3; A <= 3; A += 2)
      for (long long B = -2; B <= 4; B += 3) {
        std::optional<long long> Expected =
            interpretWithInputs(Source, A, B);
        ASSERT_TRUE(Expected.has_value()) << Source;

        std::map<unsigned, long long> Vals{{AVar, A}, {BVar, B}};
        unsigned Matching = 0;
        long long Got = 0;
        for (const auto &Path : R.Paths) {
          if (!evalTermBool(Path.Path, Vals))
            continue;
          ++Matching;
          ASSERT_TRUE(Path.Returned && Path.Ret.isScalar()) << Source;
          Got = evalTermInt(Path.Ret.scalarTerm(), Vals);
        }
        ASSERT_EQ(Matching, 1u)
            << "inputs (" << A << "," << B << ") matched " << Matching
            << " paths in:\n"
            << Source;
        EXPECT_EQ(Got, *Expected)
            << "inputs (" << A << "," << B << ") in:\n"
            << Source;
      }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CSymbolicDifferentialTest,
                         ::testing::Values(5u, 21u, 55u, 89u));
