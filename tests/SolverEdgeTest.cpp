//===--- SolverEdgeTest.cpp - Resource caps and conservativeness ----------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// The solver's failure modes matter for the analysis' soundness: resource
// exhaustion must surface as Unknown (never as a wrong Sat/Unsat), and
// the convenience predicates must map Unknown in the conservative
// direction.
//
//===----------------------------------------------------------------------===//

#include "solver/SmtSolver.h"

#include <gtest/gtest.h>

using namespace mix::smt;

TEST(SolverEdgeTest, DisequalitySplitCapYieldsUnknown) {
  // More disequalities than the split budget: Unknown, not a guess.
  LiaOptions Opts;
  Opts.MaxDisequalitySplits = 2;
  std::vector<LinConstraint> Cs;
  for (unsigned I = 0; I != 4; ++I) {
    LinConstraint C;
    C.Coeffs[0] = 1;
    C.Rel = LinRel::Ne;
    C.Rhs = (long long)I;
    Cs.push_back(C);
  }
  EXPECT_EQ(checkLinearConjunction(Cs, Opts).Verdict, LiaVerdict::Unknown);
}

TEST(SolverEdgeTest, ConstraintCapYieldsUnknown) {
  // A dense system small caps cannot finish: Unknown, not a wrong answer.
  LiaOptions Opts;
  Opts.MaxConstraints = 3;
  std::vector<LinConstraint> Cs;
  for (unsigned I = 0; I != 6; ++I) {
    LinConstraint C;
    C.Coeffs[I % 3] = 1;
    C.Coeffs[(I + 1) % 3] = (I % 2) ? 1 : -1;
    C.Rel = LinRel::Le;
    C.Rhs = 1;
    Cs.push_back(C);
  }
  LiaResult R = checkLinearConjunction(Cs, Opts);
  EXPECT_NE(R.Verdict, LiaVerdict::Unsat); // it is satisfiable or unknown
}

TEST(SolverEdgeTest, UnknownMapsConservatively) {
  // isDefinitelyUnsat/Valid must answer false on Unknown; isPossiblySat
  // must answer true.
  TermArena A;
  SmtOptions Opts;
  Opts.Lia.MaxDisequalitySplits = 0; // every disequality -> Unknown
  SmtSolver S(A, Opts);
  const Term *X = A.freshIntVar();
  const Term *F = A.notTerm(A.eqInt(X, A.intConst(0)));
  EXPECT_EQ(S.checkSat(F), SolveResult::Unknown);
  EXPECT_FALSE(S.isDefinitelyUnsat(F));
  EXPECT_TRUE(S.isPossiblySat(F));
  EXPECT_FALSE(S.isDefinitelyValid(A.notTerm(F)));
}

TEST(SolverEdgeTest, StatisticsCountBlockedModels) {
  TermArena A;
  SmtSolver S(A);
  // Force at least one theory conflict: p <-> (x < 0), q <-> (x > 0),
  // p /\ q is propositionally fine but theory-blocked.
  const Term *X = A.freshIntVar();
  const Term *F = A.andTerm(A.lt(X, A.intConst(0)),
                            A.lt(A.intConst(0), X));
  EXPECT_EQ(S.checkSat(F), SolveResult::Unsat);
  EXPECT_GE(S.stats().TheoryChecks, 1u);
}

TEST(SolverEdgeTest, TermPrinterIsStable) {
  TermArena A;
  const Term *X = A.freshIntVar("x");
  const Term *T =
      A.andTerm(A.lt(X, A.intConst(3)), A.notTerm(A.eqInt(X, A.intConst(0))));
  std::string S = T->str();
  EXPECT_NE(S.find("and"), std::string::npos);
  EXPECT_NE(S.find("<"), std::string::npos);
  EXPECT_NE(S.find("not"), std::string::npos);
  // Hash-consing: printing twice yields the same string.
  EXPECT_EQ(S, T->str());
}

TEST(SolverEdgeTest, LargeCoefficientOverflowIsUnknownNotWrong) {
  LiaOptions Opts;
  Opts.MaxCoefficient = 100;
  LinConstraint C;
  C.Coeffs[0] = 1000; // beyond the cap
  C.Rel = LinRel::Le;
  C.Rhs = 5;
  LiaResult R = checkLinearConjunction({C}, Opts);
  EXPECT_NE(R.Verdict, LiaVerdict::Unsat);
}

TEST(SolverEdgeTest, MixedSortEqualityThroughIte) {
  // Regression: lowering nested ite-int inside boolean structure.
  TermArena A;
  SmtSolver S(A);
  const Term *C1 = A.freshBoolVar();
  const Term *C2 = A.freshBoolVar();
  const Term *V = A.iteInt(C1, A.iteInt(C2, A.intConst(1), A.intConst(2)),
                           A.intConst(3));
  // V == 2 forces c1 /\ !c2; adding c2 contradicts.
  EXPECT_EQ(S.checkSat(A.andTerm(A.eqInt(V, A.intConst(2)), C2)),
            SolveResult::Unsat);
  EXPECT_EQ(S.checkSat(A.eqInt(V, A.intConst(2))), SolveResult::Sat);
  // V can never be 4.
  EXPECT_EQ(S.checkSat(A.eqInt(V, A.intConst(4))), SolveResult::Unsat);
}
