#!/usr/bin/env python3
"""Benchmarks cold CLI runs against a warm mixyd daemon.

Usage: mixyd_bench.py <mixyd-binary> <mixyc-binary> [<out.json>]

Three measurements, written as one JSON document (default BENCH_daemon.json):
  * cold_cli_ms: per-request latency of a fresh mixyc process per request
    (fork + engine cold start every time),
  * warm_daemon_ms: per-request latency of the same requests against one
    daemon that keeps the engines and response cache warm — the repeats
    answer from_cache without re-running the fixpoint,
  * dedup: how a burst of identical concurrent requests is coalesced
    (executions vs cache hits vs in-flight dedup hits).

Non-gating: numbers are archived by CI for trend inspection, never
asserted against thresholds.
"""

import json
import subprocess
import sys
import threading
import time


CORPORA = ["case1", "case2", "case3", "case4", "vsftpd"]
ROUNDS = 4  # each corpus is requested this many times


class Daemon:
    """Thread-safe JSON-RPC client: a background thread drains stdout so
    concurrent callers never serialize behind one blocked readline."""

    def __init__(self, binary, args=()):
        self.proc = subprocess.Popen(
            [binary, *args],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE, text=True)
        self.cond = threading.Condition()
        self.pending = {}
        self.closed = False
        self.next_id = 0
        self.reader = threading.Thread(target=self._drain, daemon=True)
        self.reader.start()

    def _drain(self):
        for line in self.proc.stdout:
            got = json.loads(line)
            if "method" in got:
                continue  # streamed notification; not measured here
            with self.cond:
                self.pending[got.get("id")] = got
                self.cond.notify_all()
        with self.cond:
            self.closed = True
            self.cond.notify_all()

    def call(self, method, params=None):
        with self.cond:
            self.next_id += 1
            rid = self.next_id
            msg = {"jsonrpc": "2.0", "id": rid, "method": method}
            if params is not None:
                msg["params"] = params
            self.proc.stdin.write(json.dumps(msg) + "\n")
            self.proc.stdin.flush()
            self.cond.wait_for(lambda: rid in self.pending or self.closed)
            assert rid in self.pending, "daemon closed the pipe"
            return self.pending.pop(rid)

    def close(self):
        self.call("shutdown")
        self.proc.stdin.close()
        self.reader.join(timeout=60)
        return self.proc.wait(timeout=60)


def bench_cold_cli(mixyc):
    times = []
    for _ in range(ROUNDS):
        for corpus in CORPORA:
            start = time.monotonic()
            subprocess.run([mixyc, "--format=json", f"@{corpus}"],
                           capture_output=True)
            times.append((time.monotonic() - start) * 1000.0)
    return times


def bench_warm_daemon(daemon):
    times = []
    cached = 0
    # Per-phase wall time (inclusive, microseconds) as attributed by the
    # daemon's request telemetry. Only executed requests carry a phase
    # breakdown; cache hits contribute a latency sample but no phases.
    phase_us = {}
    for _ in range(ROUNDS):
        for corpus in CORPORA:
            params = {"version": 1, "tool": "mixy", "corpus": corpus,
                      "input_name": f"@{corpus}", "format": "json"}
            start = time.monotonic()
            resp = daemon.call("analyze", params)
            times.append((time.monotonic() - start) * 1000.0)
            if resp["result"].get("from_cache"):
                cached += 1
            for phase, us in resp["result"].get("phases", {}).items():
                phase_us.setdefault(phase, []).append(us)
    return times, cached, phase_us


def bench_dedup(daemon, burst=8):
    # jobs > 1 makes the executing engine block on its pool, widening the
    # in-flight window so the burst exercises dedup even on one core.
    params = {"version": 1, "tool": "mixy", "corpus": "vsftpd",
              "input_name": "bench-dedup", "format": "json", "jobs": 2}
    threads = [threading.Thread(target=daemon.call, args=("analyze", params))
               for _ in range(burst)]
    before = daemon.call("status")["result"]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    after = daemon.call("status")["result"]
    return {
        "burst": burst,
        "executed": after["requests"] - before["requests"],
        "cache_hits": after["cache_hits"] - before["cache_hits"],
        "dedup_hits": after["dedup_hits"] - before["dedup_hits"],
    }


def percentile(ordered, q):
    """Nearest-rank percentile of a pre-sorted sample."""
    return ordered[min(len(ordered) - 1, int(len(ordered) * q))]


def stats(times):
    ordered = sorted(times)
    return {
        "samples": len(ordered),
        "mean_ms": round(sum(ordered) / len(ordered), 3),
        "p50_ms": round(percentile(ordered, 0.50), 3),
        "p90_ms": round(percentile(ordered, 0.90), 3),
        "p99_ms": round(percentile(ordered, 0.99), 3),
        "max_ms": round(ordered[-1], 3),
    }


def main():
    if len(sys.argv) < 3:
        sys.exit(__doc__)
    mixyd, mixyc = sys.argv[1], sys.argv[2]
    out_path = sys.argv[3] if len(sys.argv) > 3 else "BENCH_daemon.json"

    cold = bench_cold_cli(mixyc)
    # Several pool workers so burst requests genuinely overlap (the
    # default is one worker per hardware thread, which on a small runner
    # serializes the burst and never reaches the dedup path).
    daemon = Daemon(mixyd, ["--jobs=4"])
    warm, cached, phase_us = bench_warm_daemon(daemon)
    dedup = bench_dedup(daemon)
    code = daemon.close()
    assert code == 0, f"daemon exited {code}"

    report = {
        "benchmark": "daemon-vs-cli",
        "corpora": CORPORA,
        "rounds": ROUNDS,
        "cold_cli_ms": stats(cold),
        "warm_daemon_ms": stats(warm),
        "warm_from_cache": cached,
        # Median inclusive wall time per phase across the executed warm
        # requests (typecheck contains fixpoint contains block-exec
        # contains solver, so the medians do not sum to the total).
        "phase_median_us": {
            phase: percentile(sorted(samples), 0.50)
            for phase, samples in sorted(phase_us.items())
        },
        "dedup": dedup,
    }
    with open(out_path, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(json.dumps(report, indent=2))


if __name__ == "__main__":
    main()
