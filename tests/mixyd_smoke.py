#!/usr/bin/env python3
"""Drives a mixyd daemon over stdio and checks the protocol contract.

Usage: mixyd_smoke.py <mixyd-binary> [<mixyc-binary>]

Speaks newline-delimited JSON-RPC 2.0 to one daemon process and asserts:
  * a cold analyze carries per-request metric deltas (the fixpoint ran),
  * an identical repeat answers from_cache with no metrics (it did not),
  * the diagnostics payload is byte-identical to what the CLI prints for
    the same input and format (when a mixyc binary is given),
  * "stream": true delivers per-diagnostic notifications before the result,
  * protocol errors (bad JSON, bad version, unknown field, unknown method)
    come back as the right structured JSON-RPC error codes,
  * executed responses carry request telemetry (request_id, total_us,
    phases) and cache hits carry a fresh id but no phase work,
  * status counters account for every request and expose request-latency
    quantiles plus the slow-request log,
  * the metrics method returns OpenMetrics text, and shutdown exits 0.

Responses are matched by JSON-RPC id, never by arrival order: analyses run
on a worker pool, so the daemon may legally answer out of order.

Used by ctest (tool_mixyd_stdio_smoke) and the CI daemon smoke step.
"""

import json
import signal
import subprocess
import sys
import time


class DaemonClient:
    def __init__(self, binary, args=()):
        self.proc = subprocess.Popen(
            [binary, *args],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
        )
        self.pending = {}  # id -> response envelope
        self.notifications = []

    def send(self, obj):
        self.proc.stdin.write(json.dumps(obj) + "\n")
        self.proc.stdin.flush()

    def send_raw(self, line):
        self.proc.stdin.write(line + "\n")
        self.proc.stdin.flush()

    def recv(self, want_id):
        """Reads envelopes until the response for want_id arrives; buffers
        other responses and collects notifications on the side."""
        if want_id in self.pending:
            return self.pending.pop(want_id)
        while True:
            line = self.proc.stdout.readline()
            assert line, f"daemon closed the pipe while waiting for id {want_id}"
            msg = json.loads(line)
            assert msg.get("jsonrpc") == "2.0", msg
            if "method" in msg:  # notification (streamed diagnostic)
                self.notifications.append(msg)
                continue
            if msg.get("id") == want_id:
                return msg
            self.pending[msg["id"]] = msg

    def request(self, rid, method, params=None):
        msg = {"jsonrpc": "2.0", "id": rid, "method": method}
        if params is not None:
            msg["params"] = params
        self.send(msg)
        return self.recv(rid)

    def close(self):
        self.proc.stdin.close()
        return self.proc.wait(timeout=60)


def analyze_params(**kw):
    params = {"version": 1, "tool": "mixy"}
    params.update(kw)
    return params


def run_cli(mixyc, args):
    return subprocess.run([mixyc, *args], capture_output=True, text=True)


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    mixyd = sys.argv[1]
    mixyc = sys.argv[2] if len(sys.argv) > 2 else None
    signal.alarm(300)  # hard stop if the daemon ever hangs

    client = DaemonClient(mixyd)

    # 1. Cold analyze: json format. Exit 0 (case1 annotated is clean); the
    #    response must carry its own engine metric deltas.
    cold = client.request(
        1, "analyze", analyze_params(corpus="case1", input_name="@case1",
                                     format="json"))
    result = cold["result"]
    assert result["version"] == 1, result
    assert result["exit"] == 0, result
    assert result.get("metrics"), "cold request must carry metric deltas"
    assert not result.get("from_cache"), result
    # The daemon runs with request telemetry on: an executed request
    # carries its id, wall time, and inclusive per-phase attribution.
    assert result.get("request_id"), result
    assert result.get("total_us", 0) > 0, result
    assert result.get("phases"), "executed request must carry phases"
    assert all(us <= result["total_us"] for us in result["phases"].values())

    # 2. Identical repeat: answered from the response cache, with no
    #    metrics field — the observable proof the fixpoint did not re-run.
    warm = client.request(
        2, "analyze", analyze_params(corpus="case1", input_name="@case1",
                                     format="json"))["result"]
    assert warm.get("from_cache") is True, warm
    assert "metrics" not in warm, "a cache hit did no engine work"
    # A cache hit is still a distinct request (fresh id) but did no phase
    # work, so the phase fields are absent.
    assert warm.get("request_id") and \
        warm["request_id"] != result["request_id"], warm
    assert "phases" not in warm and "total_us" not in warm, warm
    assert warm.get("payload", "") == result.get("payload", ""), \
        "warm payload must be byte-identical"

    # 3. Same input, sarif format: a different request key, executed fresh.
    sarif = client.request(
        3, "analyze", analyze_params(corpus="case1", input_name="@case1",
                                     format="sarif"))["result"]
    assert json.loads(sarif["payload"])["version"] == "2.1.0"

    # 4. Text format (the CLI's default stderr rendering).
    text = client.request(
        4, "analyze", analyze_params(corpus="vsftpd",
                                     input_name="@vsftpd"))["result"]
    assert text["exit"] == 1 and text["warnings"] > 0, text

    # CLI byte-identity: the daemon's payload against the tool's streams.
    if mixyc:
        cli = run_cli(mixyc, ["--format=json", "@case1"])
        assert cli.returncode == result["exit"]
        assert cli.stdout == result.get("payload", ""), \
            "daemon json payload != mixyc stdout"
        cli = run_cli(mixyc, ["--format=sarif", "@case1"])
        assert cli.stdout == sarif["payload"], \
            "daemon sarif payload != mixyc stdout"
        cli = run_cli(mixyc, ["@vsftpd"])
        assert cli.returncode == text["exit"]
        assert cli.stderr == text.get("payload", ""), \
            "daemon text payload != mixyc stderr"
        assert cli.stdout == f"{text['warnings']} warning(s)\n"

    # 5. Streaming: each diagnostic arrives as a notification before the
    #    final result envelope.
    streamed = client.request(
        5, "analyze", analyze_params(corpus="case1:baseline", baseline=True,
                                     stream=True))["result"]
    assert streamed["warnings"] > 0, streamed
    notes = [n for n in client.notifications
             if n["method"] == "diagnostic" and n["params"]["request"] == 5]
    assert len(notes) == len(streamed["diagnostics"]), \
        (len(notes), len(streamed.get("diagnostics", [])))
    for note, diag in zip(notes, streamed["diagnostics"]):
        assert note["params"]["diagnostic"] == diag

    # 6. Structured protocol errors.
    err = client.request(6, "analyze", analyze_params(formt="json"))["error"]
    assert err["code"] == -32602 and "formt" in err["message"], err
    err = client.request(
        7, "analyze", {"version": 2, "tool": "mixy", "corpus": "case1"})["error"]
    assert err["code"] == -32602 and "version" in err["message"], err
    err = client.request(8, "bogusMethod")["error"]
    assert err["code"] == -32601, err
    client.send_raw("this is not json")
    err = client.recv(None)["error"]
    assert err["code"] == -32700, err

    # 7. fileChanged: accepted (invalidation machinery is exercised by the
    #    unit tests; here we only check the wire contract).
    assert client.request(9, "fileChanged",
                          {"path": "/tmp/nonexistent.c"})["result"]["ok"]

    # 8. Status: every analyze accounted for. Four distinct keys executed
    #    (ids 1, 3, 4, 5), one cache hit (id 2); errors never reach the
    #    service.
    status = client.request(10, "status")["result"]
    assert status["in_flight"] == 0, status
    assert status["requests"] == 4, status
    assert status["cache_hits"] == 1, status
    assert status["busy_rejections"] == 0, status
    assert status["timeouts"] == 0, status
    # Request-latency quantiles: one histogram sample per executed
    # request, and the estimates are ordered.
    rq = status["request_us"]
    assert rq["count"] == 4, status
    assert 0 < rq["p50"] <= rq["p90"] <= rq["p99"], status
    # Slow-request log: every executed request, slowest first, unique ids.
    slow = status["slow_requests"]
    assert len(slow) == 4, status
    totals = [s["total_us"] for s in slow]
    assert totals == sorted(totals, reverse=True), status
    assert len({s["id"] for s in slow}) == 4, status

    # 9. OpenMetrics export: counters as _total, latency histograms as
    #    cumulative _bucket/_sum/_count series, terminated by # EOF.
    om = client.request(11, "metrics")["result"]["openmetrics"]
    assert "mix_service_requests_total 4" in om, om
    assert 'mix_service_request_us_bucket{le="+Inf"} 4' in om, om
    assert "mix_service_request_us_count 4" in om, om
    assert "mix_service_request_us_sum" in om, om
    assert om.endswith("# EOF\n"), om[-100:]

    # 10. Clean shutdown.
    assert client.request(12, "shutdown")["result"]["ok"]
    code = client.close()
    assert code == 0, f"daemon exited {code}"

    # 11. Deadline mode: a request that finishes before --deadline-ms gets
    #     exactly one reply. The watcher sweeps at the deadline even when
    #     the worker already answered; it must retire the ticket silently,
    #     not append a second bogus timeout error for the same id.
    client = DaemonClient(mixyd, ["--deadline-ms=1000"])
    ok = client.request(
        1, "analyze", analyze_params(corpus="case1", input_name="@case1",
                                     format="json"))
    assert ok["result"]["exit"] == 0, ok
    time.sleep(1.5)  # let the deadline pass and the watcher sweep
    status = client.request(2, "status")["result"]
    assert status["timeouts"] == 0, status
    assert not client.pending, \
        f"extra envelopes after completion: {client.pending}"
    assert client.request(3, "shutdown")["result"]["ok"]
    code = client.close()
    assert code == 0, f"deadline-mode daemon exited {code}"

    print("mixyd stdio smoke: all checks passed")


if __name__ == "__main__":
    main()
