//===--- SymExprTest.cpp - Tests for symbolic expressions and memory ------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "sym/SymArena.h"
#include "sym/SymToSmt.h"
#include "symexec/MemCheck.h"

#include <gtest/gtest.h>

using namespace mix;

namespace {

class SymTest : public ::testing::Test {
protected:
  TypeContext Types;
  SymArena A{Types};
};

} // namespace

TEST_F(SymTest, HashConsingSharesStructure) {
  const SymExpr *X = A.freshVar(Types.intType());
  EXPECT_EQ(A.add(X, A.intConst(1)), A.add(X, A.intConst(1)));
  EXPECT_NE(A.add(X, A.intConst(1)), A.add(X, A.intConst(2)));
  EXPECT_EQ(A.intConst(5), A.intConst(5));
}

TEST_F(SymTest, FreshVariablesAreDistinct) {
  const SymExpr *X = A.freshVar(Types.intType());
  const SymExpr *Y = A.freshVar(Types.intType());
  EXPECT_NE(X, Y);
  EXPECT_NE(X->varId(), Y->varId());
  EXPECT_EQ(A.varType(X->varId()), Types.intType());
}

TEST_F(SymTest, ConstantFolding) {
  EXPECT_EQ(A.add(A.intConst(2), A.intConst(3)), A.intConst(5));
  EXPECT_EQ(A.sub(A.intConst(2), A.intConst(3)), A.intConst(-1));
  EXPECT_EQ(A.eq(A.intConst(2), A.intConst(2)), A.boolConst(true));
  EXPECT_EQ(A.lt(A.intConst(3), A.intConst(2)), A.boolConst(false));
  EXPECT_EQ(A.notG(A.boolConst(true)), A.boolConst(false));
  EXPECT_EQ(A.andG(A.boolConst(true), A.boolConst(false)),
            A.boolConst(false));
}

TEST_F(SymTest, GuardSimplifications) {
  const SymExpr *G = A.freshVar(Types.boolType());
  EXPECT_EQ(A.andG(A.trueGuard(), G), G);
  EXPECT_EQ(A.andG(G, A.falseGuard()), A.falseGuard());
  EXPECT_EQ(A.orG(G, A.trueGuard()), A.trueGuard());
  EXPECT_EQ(A.notG(A.notG(G)), G);
  EXPECT_EQ(A.eq(G, G), A.trueGuard());
}

TEST_F(SymTest, TypeAnnotationsPropagate) {
  const SymExpr *X = A.freshVar(Types.intType());
  EXPECT_TRUE(A.add(X, A.intConst(3))->type()->isInt());
  EXPECT_TRUE(A.lt(X, A.intConst(0))->type()->isBool());
  const SymExpr *R = A.freshVar(Types.refType(Types.intType()));
  EXPECT_TRUE(R->type()->isRef());
}

TEST_F(SymTest, IteRequiresMatchingBranchTypes) {
  const SymExpr *G = A.freshVar(Types.boolType());
  const SymExpr *I = A.ite(G, A.intConst(1), A.intConst(2));
  EXPECT_TRUE(I->type()->isInt());
  EXPECT_EQ(A.ite(A.trueGuard(), A.intConst(1), A.intConst(2)),
            A.intConst(1));
  EXPECT_EQ(A.ite(G, A.intConst(7), A.intConst(7)), A.intConst(7));
}

TEST_F(SymTest, SelectHitsNewestMatchingEntry) {
  const Type *IntRef = Types.refType(Types.intType());
  const MemNode *Mu = A.freshBaseMemory();
  const SymExpr *P = A.freshVar(IntRef, /*IsAllocAddr=*/true);
  const MemNode *M1 = A.alloc(Mu, P, A.intConst(1));
  const MemNode *M2 = A.update(M1, P, A.intConst(2));
  EXPECT_EQ(A.select(M2, P), A.intConst(2));
  EXPECT_EQ(A.select(M1, P), A.intConst(1));
}

TEST_F(SymTest, SelectSkipsDistinctAllocations) {
  // Two allocations never alias, so a read of P can see through a write
  // to Q — the paper's reason for distinguishing ->a entries.
  const Type *IntRef = Types.refType(Types.intType());
  const MemNode *Mu = A.freshBaseMemory();
  const SymExpr *P = A.freshVar(IntRef, true);
  const SymExpr *Q = A.freshVar(IntRef, true);
  const MemNode *M = A.update(A.alloc(A.alloc(Mu, P, A.intConst(1)), Q,
                                      A.intConst(2)),
                              Q, A.intConst(3));
  EXPECT_EQ(A.select(M, P), A.intConst(1));
  EXPECT_EQ(A.select(M, Q), A.intConst(3));
}

TEST_F(SymTest, SelectStaysDeferredOnPossibleAlias) {
  // A write through an unknown pointer may alias P, so the read must stay
  // a deferred select expression.
  const Type *IntRef = Types.refType(Types.intType());
  const MemNode *Mu = A.freshBaseMemory();
  const SymExpr *P = A.freshVar(IntRef, true);
  const SymExpr *Unknown = A.freshVar(IntRef); // not an allocation
  const MemNode *M =
      A.update(A.alloc(Mu, P, A.intConst(1)), Unknown, A.intConst(9));
  const SymExpr *Read = A.select(M, P);
  EXPECT_EQ(Read->kind(), SymKind::Select);
  EXPECT_TRUE(Read->type()->isInt());
}

TEST_F(SymTest, SelectFromBaseMemoryIsDeferred) {
  const Type *IntRef = Types.refType(Types.intType());
  const MemNode *Mu = A.freshBaseMemory();
  const SymExpr *P = A.freshVar(IntRef);
  const SymExpr *Read = A.select(Mu, P);
  EXPECT_EQ(Read->kind(), SymKind::Select);
  // Identical reads are shared (hash-consed).
  EXPECT_EQ(Read, A.select(Mu, P));
}

// --- |- m ok -------------------------------------------------------------

TEST_F(SymTest, MemOkOnBaseMemory) {
  EXPECT_TRUE(checkMemoryOk(A.freshBaseMemory()).Ok);
}

TEST_F(SymTest, MemOkWithWellTypedWrites) {
  const Type *IntRef = Types.refType(Types.intType());
  const MemNode *Mu = A.freshBaseMemory();
  const SymExpr *P = A.freshVar(IntRef, true);
  const MemNode *M = A.update(A.alloc(Mu, P, A.intConst(1)), P,
                              A.intConst(2));
  EXPECT_TRUE(checkMemoryOk(M).Ok);
}

TEST_F(SymTest, MemNotOkWithIllTypedWrite) {
  const Type *IntRef = Types.refType(Types.intType());
  const MemNode *Mu = A.freshBaseMemory();
  const SymExpr *P = A.freshVar(IntRef, true);
  const MemNode *M =
      A.update(A.alloc(Mu, P, A.intConst(1)), P, A.boolConst(true));
  MemCheckResult R = checkMemoryOk(M);
  EXPECT_FALSE(R.Ok);
  ASSERT_EQ(R.BadWrites.size(), 1u);
  EXPECT_EQ(R.BadWrites[0]->address(), P);
}

TEST_F(SymTest, OverwriteForgivesIllTypedWrite) {
  // Overwrite-Ok: an ill-typed write followed by a well-typed write to
  // the syntactically same address is forgiven — this is exactly the
  // variable-reuse idiom of Section 2.
  const Type *IntRef = Types.refType(Types.intType());
  const MemNode *Mu = A.freshBaseMemory();
  const SymExpr *P = A.freshVar(IntRef, true);
  const MemNode *M = A.update(
      A.update(A.alloc(Mu, P, A.intConst(1)), P, A.boolConst(true)), P,
      A.intConst(2));
  EXPECT_TRUE(checkMemoryOk(M).Ok);
}

TEST_F(SymTest, OverwriteToDifferentAddressDoesNotForgive) {
  const Type *IntRef = Types.refType(Types.intType());
  const MemNode *Mu = A.freshBaseMemory();
  const SymExpr *P = A.freshVar(IntRef, true);
  const SymExpr *Q = A.freshVar(IntRef, true);
  const MemNode *M = A.update(
      A.update(A.alloc(A.alloc(Mu, P, A.intConst(0)), Q, A.intConst(0)), P,
               A.boolConst(true)),
      Q, A.intConst(2));
  EXPECT_FALSE(checkMemoryOk(M).Ok);
}

TEST_F(SymTest, IteMemoryOkRequiresBothBranches) {
  const Type *IntRef = Types.refType(Types.intType());
  const SymExpr *G = A.freshVar(Types.boolType());
  const SymExpr *P = A.freshVar(IntRef, true);
  const MemNode *Good = A.alloc(A.freshBaseMemory(), P, A.intConst(1));
  const MemNode *Bad = A.update(Good, P, A.boolConst(true));
  EXPECT_TRUE(checkMemoryOk(A.iteMem(G, Good, Good)).Ok);
  EXPECT_FALSE(checkMemoryOk(A.iteMem(G, Good, Bad)).Ok);
  EXPECT_FALSE(checkMemoryOk(A.iteMem(G, Bad, Good)).Ok);
}

// --- translation to solver terms ------------------------------------------

TEST_F(SymTest, TranslationPreservesStructure) {
  smt::TermArena Terms;
  SymToSmt Tr(A, Terms);
  const SymExpr *X = A.freshVar(Types.intType());
  const smt::Term *T = Tr.translate(A.lt(A.add(X, A.intConst(1)),
                                         A.intConst(5)));
  EXPECT_TRUE(T->isBool());
  // Same expression translates to the same term (memoized).
  EXPECT_EQ(T, Tr.translate(A.lt(A.add(X, A.intConst(1)), A.intConst(5))));
}

TEST_F(SymTest, TranslationIsStableAcrossQueries) {
  smt::TermArena Terms;
  SymToSmt Tr(A, Terms);
  const SymExpr *X = A.freshVar(Types.intType());
  const smt::Term *T1 = Tr.translate(X);
  const smt::Term *T2 = Tr.translate(X);
  EXPECT_EQ(T1, T2);
}

TEST_F(SymTest, SelectsTranslateToSharedOpaqueVariables) {
  smt::TermArena Terms;
  SymToSmt Tr(A, Terms);
  const Type *IntRef = Types.refType(Types.intType());
  const MemNode *Mu = A.freshBaseMemory();
  const SymExpr *P = A.freshVar(IntRef);
  const SymExpr *Read = A.select(Mu, P);
  EXPECT_EQ(Tr.translate(Read), Tr.translate(Read));
  // A different address yields a different opaque variable.
  const SymExpr *Q = A.freshVar(IntRef);
  EXPECT_NE(Tr.translate(Read), Tr.translate(A.select(Mu, Q)));
}
