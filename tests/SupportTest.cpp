//===--- SupportTest.cpp - Tests for the support library ------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"
#include "support/StringExtras.h"

#include <gtest/gtest.h>

using namespace mix;

TEST(SourceLocTest, InvalidByDefault) {
  SourceLoc Loc;
  EXPECT_FALSE(Loc.isValid());
  EXPECT_EQ(Loc.str(), "<unknown>");
}

TEST(SourceLocTest, Formatting) {
  SourceLoc Loc(3, 14);
  EXPECT_TRUE(Loc.isValid());
  EXPECT_EQ(Loc.str(), "3:14");
}

TEST(SourceLocTest, Ordering) {
  EXPECT_LT(SourceLoc(1, 9), SourceLoc(2, 1));
  EXPECT_LT(SourceLoc(2, 1), SourceLoc(2, 2));
  EXPECT_FALSE(SourceLoc(2, 2) < SourceLoc(2, 2));
}

TEST(DiagnosticsTest, CountsBySeverity) {
  DiagnosticEngine Diags;
  EXPECT_TRUE(Diags.empty());
  Diags.error({1, 1}, "bad");
  Diags.warning({2, 1}, "iffy");
  Diags.note({2, 2}, "because");
  EXPECT_EQ(Diags.size(), 3u);
  EXPECT_EQ(Diags.errorCount(), 1u);
  EXPECT_EQ(Diags.warningCount(), 1u);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(DiagnosticsTest, Rendering) {
  DiagnosticEngine Diags;
  Diags.error({1, 2}, "something went wrong");
  EXPECT_EQ(Diags.diagnostics()[0].str(), "1:2: error: something went wrong");
}

TEST(DiagnosticsTest, ClearResetsCounts) {
  DiagnosticEngine Diags;
  Diags.error({1, 1}, "x");
  Diags.clear();
  EXPECT_TRUE(Diags.empty());
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(StringExtrasTest, Join) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringExtrasTest, StartsWith) {
  EXPECT_TRUE(startsWith("foobar", "foo"));
  EXPECT_FALSE(startsWith("fo", "foo"));
  EXPECT_TRUE(startsWith("anything", ""));
}

TEST(StringExtrasTest, Split) {
  auto Parts = split("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(Parts[3], "c");
}

TEST(StringExtrasTest, Trim) {
  EXPECT_EQ(trim("  x y \n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
}
