//===--- ObserveTest.cpp - Tests for the observability subsystem ----------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// Covers the contracts DESIGN.md section 10 promises: exact counter
// totals under concurrent increments, detached (null) handles as no-ops,
// and Chrome-trace JSON that a strict parser accepts with the expected
// event structure.
//
//===----------------------------------------------------------------------===//

#include "observe/Metrics.h"
#include "observe/Trace.h"

#include "TestJson.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace mix::obs;

namespace {

//===----------------------------------------------------------------------===//
// Counters
//===----------------------------------------------------------------------===//

TEST(MetricsTest, CounterBasics) {
  MetricsRegistry Reg;
  Counter C = Reg.counter("test.count");
  EXPECT_EQ(C.value(), 0u);
  C.inc();
  C.add(41);
  EXPECT_EQ(C.value(), 42u);
  EXPECT_EQ(Reg.counterValue("test.count"), 42u);
}

TEST(MetricsTest, CounterInterning) {
  MetricsRegistry Reg;
  Counter A = Reg.counter("shared");
  Counter B = Reg.counter("shared");
  A.add(10);
  B.add(5);
  EXPECT_EQ(Reg.counterValue("shared"), 15u);
}

TEST(MetricsTest, UnregisteredCounterReadsZero) {
  MetricsRegistry Reg;
  EXPECT_EQ(Reg.counterValue("never.registered"), 0u);
  EXPECT_EQ(Reg.histogramSnapshot("never.registered").Count, 0u);
}

TEST(MetricsTest, DetachedHandlesAreNoOps) {
  Counter C;
  EXPECT_FALSE(C);
  C.inc();
  C.add(100);
  EXPECT_EQ(C.value(), 0u);

  Histogram H;
  EXPECT_FALSE(H);
  H.record(123);
  EXPECT_EQ(H.snapshot().Count, 0u);
}

// The headline concurrency contract: N threads doing relaxed sharded
// increments must still sum to the exact total at the join barrier.
TEST(MetricsTest, CounterExactUnderEightThreads) {
  MetricsRegistry Reg;
  Counter C = Reg.counter("mt.count");
  constexpr unsigned Threads = 8;
  constexpr uint64_t PerThread = 100000;
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T != Threads; ++T)
    Workers.emplace_back([&C] {
      for (uint64_t I = 0; I != PerThread; ++I)
        C.inc();
    });
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(C.value(), Threads * PerThread);
}

TEST(MetricsTest, CountersListedSorted) {
  MetricsRegistry Reg;
  Reg.counter("zebra").inc();
  Reg.counter("alpha").add(2);
  auto All = Reg.counters();
  ASSERT_EQ(All.size(), 2u);
  EXPECT_EQ(All[0].first, "alpha");
  EXPECT_EQ(All[0].second, 2u);
  EXPECT_EQ(All[1].first, "zebra");
  EXPECT_EQ(All[1].second, 1u);
}

//===----------------------------------------------------------------------===//
// Histograms
//===----------------------------------------------------------------------===//

TEST(MetricsTest, HistogramSnapshot) {
  MetricsRegistry Reg;
  Histogram H = Reg.histogram("lat");
  H.record(1);
  H.record(10);
  H.record(100);
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 3u);
  EXPECT_EQ(S.Sum, 111u);
  EXPECT_EQ(S.Min, 1u);
  EXPECT_EQ(S.Max, 100u);
}

TEST(MetricsTest, HistogramBucketing) {
  EXPECT_EQ(Histogram::bucketOf(0), 0u);
  EXPECT_EQ(Histogram::bucketOf(1), 0u);
  EXPECT_EQ(Histogram::bucketOf(2), 1u);
  EXPECT_EQ(Histogram::bucketOf(3), 1u);
  EXPECT_EQ(Histogram::bucketOf(4), 2u);
  EXPECT_EQ(Histogram::bucketOf(1024), 10u);
  // Huge values clamp to the last bucket instead of indexing out of range.
  EXPECT_EQ(Histogram::bucketOf(UINT64_MAX), mix::obs::detail::HistogramBuckets - 1);
}

TEST(MetricsTest, HistogramExactUnderThreads) {
  MetricsRegistry Reg;
  Histogram H = Reg.histogram("mt.lat");
  constexpr unsigned Threads = 8;
  constexpr uint64_t PerThread = 20000;
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T != Threads; ++T)
    Workers.emplace_back([&H, T] {
      for (uint64_t I = 0; I != PerThread; ++I)
        H.record(T + 1);
    });
  for (std::thread &W : Workers)
    W.join();
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, Threads * PerThread);
  // Sum of (T+1) * PerThread for T in [0, 8) = 36 * PerThread.
  EXPECT_EQ(S.Sum, 36 * PerThread);
  EXPECT_EQ(S.Min, 1u);
  EXPECT_EQ(S.Max, 8u);
}

//===----------------------------------------------------------------------===//
// Registry rendering
//===----------------------------------------------------------------------===//

TEST(MetricsTest, RenderTextSortedPairs) {
  MetricsRegistry Reg;
  Reg.counter("b.count").add(2);
  Reg.counter("a.count").add(1);
  std::string Text = Reg.renderText();
  size_t A = Text.find("a.count = 1");
  size_t B = Text.find("b.count = 2");
  EXPECT_NE(A, std::string::npos);
  EXPECT_NE(B, std::string::npos);
  EXPECT_LT(A, B);
}

TEST(MetricsTest, RenderJSONWellFormed) {
  MetricsRegistry Reg;
  Reg.counter("solver.queries").add(7);
  Histogram H = Reg.histogram("solver.query_us");
  H.record(3);
  H.record(9);

  testjson::Value Doc;
  std::string Error;
  ASSERT_TRUE(testjson::parseDocument(Reg.renderJSON(), Doc, &Error)) << Error;
  ASSERT_TRUE(Doc.isObject());
  ASSERT_TRUE(Doc.has("counters"));
  EXPECT_EQ(Doc["counters"]["solver.queries"].Num, 7);
  ASSERT_TRUE(Doc.has("histograms"));
  const testjson::Value &Lat = Doc["histograms"]["solver.query_us"];
  ASSERT_TRUE(Lat.isObject());
  EXPECT_EQ(Lat["count"].Num, 2);
  EXPECT_EQ(Lat["sum"].Num, 12);
  EXPECT_EQ(Lat["min"].Num, 3);
  EXPECT_EQ(Lat["max"].Num, 9);
}

//===----------------------------------------------------------------------===//
// Trace sink
//===----------------------------------------------------------------------===//

TEST(TraceTest, NullSinkSpanIsSafe) {
  // The library-wide off switch: spans and instants on a null sink must
  // be no-ops (this is how every instrumentation site runs untraced).
  TraceSpan Span(nullptr, "noop", "test");
  Span.setArgs("{\"k\": 1}");
  // Destructor runs at scope exit; nothing to assert beyond not crashing.
}

TEST(TraceTest, EventsRecorded) {
  TraceSink Sink;
  Sink.nameCurrentThread("tester");
  Sink.instant("marker", "test");
  {
    TraceSpan Span(&Sink, "phase", "test");
  }
  EXPECT_EQ(Sink.eventCount(), 3u);
}

TEST(TraceTest, RenderJSONWellFormed) {
  TraceSink Sink;
  Sink.nameCurrentThread("main");
  {
    TraceSpan Outer(&Sink, "outer", "test");
    Sink.instant("tick", "test", "{\"n\": 1}");
    TraceSpan Inner(&Sink, "inner", "test");
  }

  testjson::Value Doc;
  std::string Error;
  ASSERT_TRUE(testjson::parseDocument(Sink.renderJSON(), Doc, &Error)) << Error;
  ASSERT_TRUE(Doc.isObject());
  ASSERT_TRUE(Doc["traceEvents"].isArray());
  const testjson::Value &Events = Doc["traceEvents"];
  ASSERT_EQ(Events.size(), 4u);

  const testjson::Value *Meta = nullptr, *Tick = nullptr, *Outer = nullptr,
                        *Inner = nullptr;
  for (size_t I = 0; I != Events.size(); ++I) {
    const testjson::Value &E = Events[I];
    ASSERT_TRUE(E.isObject());
    ASSERT_TRUE(E.has("name"));
    ASSERT_TRUE(E.has("ph"));
    if (E["name"].Str == "thread_name")
      Meta = &E;
    else if (E["name"].Str == "tick")
      Tick = &E;
    else if (E["name"].Str == "outer")
      Outer = &E;
    else if (E["name"].Str == "inner")
      Inner = &E;
  }
  ASSERT_NE(Meta, nullptr);
  ASSERT_NE(Tick, nullptr);
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(Inner, nullptr);

  EXPECT_EQ((*Meta)["ph"].Str, "M");
  EXPECT_EQ((*Meta)["args"]["name"].Str, "main");
  EXPECT_EQ((*Tick)["ph"].Str, "i");
  EXPECT_EQ((*Tick)["args"]["n"].Num, 1);
  EXPECT_EQ((*Outer)["ph"].Str, "X");
  EXPECT_EQ((*Inner)["ph"].Str, "X");

  // Span nesting: the inner span's [ts, ts+dur) interval must lie inside
  // the outer one's (both were open simultaneously on this thread).
  double OutStart = (*Outer)["ts"].Num, OutEnd = OutStart + (*Outer)["dur"].Num;
  double InStart = (*Inner)["ts"].Num, InEnd = InStart + (*Inner)["dur"].Num;
  EXPECT_GE(InStart, OutStart);
  EXPECT_LE(InEnd, OutEnd);
  EXPECT_EQ((*Outer)["tid"].Num, (*Inner)["tid"].Num);
}

TEST(TraceTest, EventsSortedByTimestamp) {
  TraceSink Sink;
  for (int I = 0; I != 20; ++I)
    Sink.instant("e", "test");
  testjson::Value Doc;
  std::string Error;
  ASSERT_TRUE(testjson::parseDocument(Sink.renderJSON(), Doc, &Error)) << Error;
  const testjson::Value &Events = Doc["traceEvents"];
  double Prev = -1;
  for (size_t I = 0; I != Events.size(); ++I) {
    EXPECT_GE(Events[I]["ts"].Num, Prev);
    Prev = Events[I]["ts"].Num;
  }
}

TEST(TraceTest, ConcurrentRecordingKeepsEveryEvent) {
  TraceSink Sink;
  constexpr unsigned Threads = 8;
  constexpr unsigned PerThread = 2000;
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T != Threads; ++T)
    Workers.emplace_back([&Sink] {
      for (unsigned I = 0; I != PerThread; ++I)
        Sink.instant("e", "mt");
    });
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(Sink.eventCount(), Threads * PerThread);
  testjson::Value Doc;
  std::string Error;
  ASSERT_TRUE(testjson::parseDocument(Sink.renderJSON(), Doc, &Error)) << Error;
  EXPECT_EQ(Doc["traceEvents"].size(), Threads * PerThread);
}

TEST(TraceTest, ArgsEscapedStringsSurvive) {
  TraceSink Sink;
  Sink.instant("quoted", "test", "{\"s\": \"a \\\"b\\\" c\"}");
  testjson::Value Doc;
  std::string Error;
  ASSERT_TRUE(testjson::parseDocument(Sink.renderJSON(), Doc, &Error)) << Error;
  EXPECT_EQ(Doc["traceEvents"][0]["args"]["s"].Str, "a \"b\" c");
}

TEST(ThreadSlotTest, StableWithinThreadDistinctAcross) {
  unsigned Main = threadSlot();
  EXPECT_EQ(threadSlot(), Main);
  unsigned Other = Main;
  std::thread([&Other] { Other = threadSlot(); }).join();
  EXPECT_NE(Other, Main);
}

} // namespace
