//===--- ObserveTest.cpp - Tests for the observability subsystem ----------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// Covers the contracts DESIGN.md section 10 promises: exact counter
// totals under concurrent increments, detached (null) handles as no-ops,
// and Chrome-trace JSON that a strict parser accepts with the expected
// event structure.
//
//===----------------------------------------------------------------------===//

#include "observe/Metrics.h"
#include "observe/Phase.h"
#include "observe/Trace.h"

#include "TestJson.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

using namespace mix::obs;

namespace {

//===----------------------------------------------------------------------===//
// Counters
//===----------------------------------------------------------------------===//

TEST(MetricsTest, CounterBasics) {
  MetricsRegistry Reg;
  Counter C = Reg.counter("test.count");
  EXPECT_EQ(C.value(), 0u);
  C.inc();
  C.add(41);
  EXPECT_EQ(C.value(), 42u);
  EXPECT_EQ(Reg.counterValue("test.count"), 42u);
}

TEST(MetricsTest, CounterInterning) {
  MetricsRegistry Reg;
  Counter A = Reg.counter("shared");
  Counter B = Reg.counter("shared");
  A.add(10);
  B.add(5);
  EXPECT_EQ(Reg.counterValue("shared"), 15u);
}

TEST(MetricsTest, UnregisteredCounterReadsZero) {
  MetricsRegistry Reg;
  EXPECT_EQ(Reg.counterValue("never.registered"), 0u);
  EXPECT_EQ(Reg.histogramSnapshot("never.registered").Count, 0u);
}

TEST(MetricsTest, DetachedHandlesAreNoOps) {
  Counter C;
  EXPECT_FALSE(C);
  C.inc();
  C.add(100);
  EXPECT_EQ(C.value(), 0u);

  Histogram H;
  EXPECT_FALSE(H);
  H.record(123);
  EXPECT_EQ(H.snapshot().Count, 0u);
}

// The headline concurrency contract: N threads doing relaxed sharded
// increments must still sum to the exact total at the join barrier.
TEST(MetricsTest, CounterExactUnderEightThreads) {
  MetricsRegistry Reg;
  Counter C = Reg.counter("mt.count");
  constexpr unsigned Threads = 8;
  constexpr uint64_t PerThread = 100000;
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T != Threads; ++T)
    Workers.emplace_back([&C] {
      for (uint64_t I = 0; I != PerThread; ++I)
        C.inc();
    });
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(C.value(), Threads * PerThread);
}

TEST(MetricsTest, CountersListedSorted) {
  MetricsRegistry Reg;
  Reg.counter("zebra").inc();
  Reg.counter("alpha").add(2);
  auto All = Reg.counters();
  ASSERT_EQ(All.size(), 2u);
  EXPECT_EQ(All[0].first, "alpha");
  EXPECT_EQ(All[0].second, 2u);
  EXPECT_EQ(All[1].first, "zebra");
  EXPECT_EQ(All[1].second, 1u);
}

//===----------------------------------------------------------------------===//
// Histograms
//===----------------------------------------------------------------------===//

TEST(MetricsTest, HistogramSnapshot) {
  MetricsRegistry Reg;
  Histogram H = Reg.histogram("lat");
  H.record(1);
  H.record(10);
  H.record(100);
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 3u);
  EXPECT_EQ(S.Sum, 111u);
  EXPECT_EQ(S.Min, 1u);
  EXPECT_EQ(S.Max, 100u);
}

TEST(MetricsTest, HistogramBucketing) {
  EXPECT_EQ(Histogram::bucketOf(0), 0u);
  EXPECT_EQ(Histogram::bucketOf(1), 0u);
  EXPECT_EQ(Histogram::bucketOf(2), 1u);
  EXPECT_EQ(Histogram::bucketOf(3), 1u);
  EXPECT_EQ(Histogram::bucketOf(4), 2u);
  EXPECT_EQ(Histogram::bucketOf(1024), 10u);
  // Huge values clamp to the last bucket instead of indexing out of range.
  EXPECT_EQ(Histogram::bucketOf(UINT64_MAX), mix::obs::detail::HistogramBuckets - 1);
}

TEST(MetricsTest, HistogramExactUnderThreads) {
  MetricsRegistry Reg;
  Histogram H = Reg.histogram("mt.lat");
  constexpr unsigned Threads = 8;
  constexpr uint64_t PerThread = 20000;
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T != Threads; ++T)
    Workers.emplace_back([&H, T] {
      for (uint64_t I = 0; I != PerThread; ++I)
        H.record(T + 1);
    });
  for (std::thread &W : Workers)
    W.join();
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, Threads * PerThread);
  // Sum of (T+1) * PerThread for T in [0, 8) = 36 * PerThread.
  EXPECT_EQ(S.Sum, 36 * PerThread);
  EXPECT_EQ(S.Min, 1u);
  EXPECT_EQ(S.Max, 8u);
}

//===----------------------------------------------------------------------===//
// Quantile estimation
//===----------------------------------------------------------------------===//

TEST(MetricsTest, QuantileEmptyIsZero) {
  HistogramSnapshot S;
  EXPECT_EQ(S.quantile(0.5), 0.0);
  EXPECT_EQ(S.quantile(0.99), 0.0);
}

TEST(MetricsTest, QuantileClampsToSingleValue) {
  // Every quantile of a one-value distribution is that value: the
  // estimate interpolates inside the log2 bucket, but the clamp to the
  // observed [Min, Max] collapses it.
  MetricsRegistry Reg;
  Histogram H = Reg.histogram("q");
  for (int I = 0; I != 5; ++I)
    H.record(7);
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.quantile(0.0), 7.0);
  EXPECT_EQ(S.quantile(0.5), 7.0);
  EXPECT_EQ(S.quantile(0.99), 7.0);
}

TEST(MetricsTest, QuantileUniformOnes) {
  // 100 samples of 1 land in bucket 0 ([0, 2)); interpolation says 1.0
  // at p50 and the Min clamp pins every other quantile to 1 as well.
  MetricsRegistry Reg;
  Histogram H = Reg.histogram("q");
  for (int I = 0; I != 100; ++I)
    H.record(1);
  HistogramSnapshot S = H.snapshot();
  EXPECT_DOUBLE_EQ(S.quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(S.quantile(0.99), 1.0);
}

TEST(MetricsTest, QuantileBimodalWithinBucketBounds) {
  // 90 x 1 and 10 x 1000: p50 must land in the low bucket (error bounded
  // by its [1, 2) width after clamping) and p99 in 1000's bucket
  // ([512, 1024), clamped above by Max = 1000).
  MetricsRegistry Reg;
  Histogram H = Reg.histogram("q");
  for (int I = 0; I != 90; ++I)
    H.record(1);
  for (int I = 0; I != 10; ++I)
    H.record(1000);
  HistogramSnapshot S = H.snapshot();
  double P50 = S.quantile(0.5);
  EXPECT_GE(P50, 1.0);
  EXPECT_LT(P50, 2.0);
  double P99 = S.quantile(0.99);
  EXPECT_GE(P99, 512.0);
  EXPECT_LE(P99, 1000.0);
}

TEST(MetricsTest, QuantilesMonotone) {
  MetricsRegistry Reg;
  Histogram H = Reg.histogram("q");
  for (uint64_t V = 1; V <= 1000; ++V)
    H.record(V);
  HistogramSnapshot S = H.snapshot();
  EXPECT_LE(S.quantile(0.5), S.quantile(0.9));
  EXPECT_LE(S.quantile(0.9), S.quantile(0.99));
  EXPECT_GE(S.quantile(0.5), (double)S.Min);
  EXPECT_LE(S.quantile(0.99), (double)S.Max);
}

//===----------------------------------------------------------------------===//
// OpenMetrics exposition
//===----------------------------------------------------------------------===//

TEST(MetricsTest, OpenMetricsGolden) {
  MetricsRegistry Reg;
  Reg.counter("service.requests").add(3);
  Histogram H = Reg.histogram("req.us");
  H.record(1);
  H.record(1);
  H.record(3);
  H.record(1000);

  std::string Text = Reg.renderOpenMetrics();
  // Counter: TYPE line plus the _total series, name sanitized to
  // underscores with the mix_ prefix.
  EXPECT_NE(Text.find("# TYPE mix_service_requests counter\n"),
            std::string::npos);
  EXPECT_NE(Text.find("mix_service_requests_total 3\n"), std::string::npos);
  // Histogram: cumulative buckets with power-of-two upper bounds
  // (1,1 -> le=2; 3 -> le=4; 1000 -> le=1024), then +Inf/_sum/_count.
  EXPECT_NE(Text.find("# TYPE mix_req_us histogram\n"), std::string::npos);
  EXPECT_NE(Text.find("mix_req_us_bucket{le=\"2\"} 2\n"), std::string::npos);
  EXPECT_NE(Text.find("mix_req_us_bucket{le=\"4\"} 3\n"), std::string::npos);
  EXPECT_NE(Text.find("mix_req_us_bucket{le=\"1024\"} 4\n"),
            std::string::npos);
  EXPECT_NE(Text.find("mix_req_us_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(Text.find("mix_req_us_sum 1005\n"), std::string::npos);
  EXPECT_NE(Text.find("mix_req_us_count 4\n"), std::string::npos);
  // Quantile gauges exist for every histogram.
  EXPECT_NE(Text.find("# TYPE mix_req_us_p50 gauge\n"), std::string::npos);
  EXPECT_NE(Text.find("mix_req_us_p90 "), std::string::npos);
  EXPECT_NE(Text.find("mix_req_us_p99 "), std::string::npos);
  // The exposition terminator is the last line.
  ASSERT_GE(Text.size(), 6u);
  EXPECT_EQ(Text.substr(Text.size() - 6), "# EOF\n");
}

TEST(MetricsTest, OpenMetricsEmptyRegistryIsJustEOF) {
  MetricsRegistry Reg;
  EXPECT_EQ(Reg.renderOpenMetrics(), "# EOF\n");
}

TEST(MetricsTest, OpenMetricsSanitizesNames) {
  MetricsRegistry Reg;
  Reg.counter("ir.lower.fastpath.hits").inc();
  std::string Text = Reg.renderOpenMetrics();
  EXPECT_NE(Text.find("mix_ir_lower_fastpath_hits_total 1\n"),
            std::string::npos);
  EXPECT_EQ(Text.find("ir.lower"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Registry rendering
//===----------------------------------------------------------------------===//

TEST(MetricsTest, RenderTextSortedPairs) {
  MetricsRegistry Reg;
  Reg.counter("b.count").add(2);
  Reg.counter("a.count").add(1);
  std::string Text = Reg.renderText();
  size_t A = Text.find("a.count = 1");
  size_t B = Text.find("b.count = 2");
  EXPECT_NE(A, std::string::npos);
  EXPECT_NE(B, std::string::npos);
  EXPECT_LT(A, B);
}

TEST(MetricsTest, RenderJSONWellFormed) {
  MetricsRegistry Reg;
  Reg.counter("solver.queries").add(7);
  Histogram H = Reg.histogram("solver.query_us");
  H.record(3);
  H.record(9);

  testjson::Value Doc;
  std::string Error;
  ASSERT_TRUE(testjson::parseDocument(Reg.renderJSON(), Doc, &Error)) << Error;
  ASSERT_TRUE(Doc.isObject());
  ASSERT_TRUE(Doc.has("counters"));
  EXPECT_EQ(Doc["counters"]["solver.queries"].Num, 7);
  ASSERT_TRUE(Doc.has("histograms"));
  const testjson::Value &Lat = Doc["histograms"]["solver.query_us"];
  ASSERT_TRUE(Lat.isObject());
  EXPECT_EQ(Lat["count"].Num, 2);
  EXPECT_EQ(Lat["sum"].Num, 12);
  EXPECT_EQ(Lat["min"].Num, 3);
  EXPECT_EQ(Lat["max"].Num, 9);
}

//===----------------------------------------------------------------------===//
// Trace sink
//===----------------------------------------------------------------------===//

TEST(TraceTest, NullSinkSpanIsSafe) {
  // The library-wide off switch: spans and instants on a null sink must
  // be no-ops (this is how every instrumentation site runs untraced).
  TraceSpan Span(nullptr, "noop", "test");
  Span.setArgs("{\"k\": 1}");
  // Destructor runs at scope exit; nothing to assert beyond not crashing.
}

TEST(TraceTest, EventsRecorded) {
  TraceSink Sink;
  Sink.nameCurrentThread("tester");
  Sink.instant("marker", "test");
  {
    TraceSpan Span(&Sink, "phase", "test");
  }
  EXPECT_EQ(Sink.eventCount(), 3u);
}

TEST(TraceTest, RenderJSONWellFormed) {
  TraceSink Sink;
  Sink.nameCurrentThread("main");
  {
    TraceSpan Outer(&Sink, "outer", "test");
    Sink.instant("tick", "test", "{\"n\": 1}");
    TraceSpan Inner(&Sink, "inner", "test");
  }

  testjson::Value Doc;
  std::string Error;
  ASSERT_TRUE(testjson::parseDocument(Sink.renderJSON(), Doc, &Error)) << Error;
  ASSERT_TRUE(Doc.isObject());
  ASSERT_TRUE(Doc["traceEvents"].isArray());
  const testjson::Value &Events = Doc["traceEvents"];
  ASSERT_EQ(Events.size(), 4u);

  const testjson::Value *Meta = nullptr, *Tick = nullptr, *Outer = nullptr,
                        *Inner = nullptr;
  for (size_t I = 0; I != Events.size(); ++I) {
    const testjson::Value &E = Events[I];
    ASSERT_TRUE(E.isObject());
    ASSERT_TRUE(E.has("name"));
    ASSERT_TRUE(E.has("ph"));
    if (E["name"].Str == "thread_name")
      Meta = &E;
    else if (E["name"].Str == "tick")
      Tick = &E;
    else if (E["name"].Str == "outer")
      Outer = &E;
    else if (E["name"].Str == "inner")
      Inner = &E;
  }
  ASSERT_NE(Meta, nullptr);
  ASSERT_NE(Tick, nullptr);
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(Inner, nullptr);

  EXPECT_EQ((*Meta)["ph"].Str, "M");
  EXPECT_EQ((*Meta)["args"]["name"].Str, "main");
  EXPECT_EQ((*Tick)["ph"].Str, "i");
  EXPECT_EQ((*Tick)["args"]["n"].Num, 1);
  EXPECT_EQ((*Outer)["ph"].Str, "X");
  EXPECT_EQ((*Inner)["ph"].Str, "X");

  // Span nesting: the inner span's [ts, ts+dur) interval must lie inside
  // the outer one's (both were open simultaneously on this thread).
  double OutStart = (*Outer)["ts"].Num, OutEnd = OutStart + (*Outer)["dur"].Num;
  double InStart = (*Inner)["ts"].Num, InEnd = InStart + (*Inner)["dur"].Num;
  EXPECT_GE(InStart, OutStart);
  EXPECT_LE(InEnd, OutEnd);
  EXPECT_EQ((*Outer)["tid"].Num, (*Inner)["tid"].Num);
}

TEST(TraceTest, EventsSortedByTimestamp) {
  TraceSink Sink;
  for (int I = 0; I != 20; ++I)
    Sink.instant("e", "test");
  testjson::Value Doc;
  std::string Error;
  ASSERT_TRUE(testjson::parseDocument(Sink.renderJSON(), Doc, &Error)) << Error;
  const testjson::Value &Events = Doc["traceEvents"];
  double Prev = -1;
  for (size_t I = 0; I != Events.size(); ++I) {
    EXPECT_GE(Events[I]["ts"].Num, Prev);
    Prev = Events[I]["ts"].Num;
  }
}

TEST(TraceTest, ConcurrentRecordingKeepsEveryEvent) {
  TraceSink Sink;
  constexpr unsigned Threads = 8;
  constexpr unsigned PerThread = 2000;
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T != Threads; ++T)
    Workers.emplace_back([&Sink] {
      for (unsigned I = 0; I != PerThread; ++I)
        Sink.instant("e", "mt");
    });
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(Sink.eventCount(), Threads * PerThread);
  testjson::Value Doc;
  std::string Error;
  ASSERT_TRUE(testjson::parseDocument(Sink.renderJSON(), Doc, &Error)) << Error;
  EXPECT_EQ(Doc["traceEvents"].size(), Threads * PerThread);
}

TEST(TraceTest, ArgsEscapedStringsSurvive) {
  TraceSink Sink;
  Sink.instant("quoted", "test", "{\"s\": \"a \\\"b\\\" c\"}");
  testjson::Value Doc;
  std::string Error;
  ASSERT_TRUE(testjson::parseDocument(Sink.renderJSON(), Doc, &Error)) << Error;
  EXPECT_EQ(Doc["traceEvents"][0]["args"]["s"].Str, "a \"b\" c");
}

//===----------------------------------------------------------------------===//
// Request telemetry: phase timers and per-request span sinks
//===----------------------------------------------------------------------===//

TEST(PhaseTest, NullTelemetryTimerIsSafe) {
  // The off switch matches counters and trace sinks: a null context makes
  // the timer's constructor and destructor each one branch, no clocks.
  PhaseTimer Timer(nullptr, Phase::Solver);
}

TEST(PhaseTest, TimerAccumulatesIntoPhase) {
  RequestTelemetry T;
  EXPECT_EQ(T.phaseUs(Phase::BlockExec), 0u);
  {
    PhaseTimer Timer(&T, Phase::BlockExec);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(T.phaseUs(Phase::BlockExec), 1000u);
  EXPECT_EQ(T.phaseUs(Phase::Solver), 0u);
}

TEST(PhaseTest, AddPhaseIsExactAcrossThreads) {
  RequestTelemetry T;
  constexpr unsigned Threads = 8;
  constexpr uint64_t PerThread = 10000;
  std::vector<std::thread> Workers;
  for (unsigned W = 0; W != Threads; ++W)
    Workers.emplace_back([&T] {
      for (uint64_t I = 0; I != PerThread; ++I)
        T.addPhase(Phase::Fixpoint, 1);
    });
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(T.phaseUs(Phase::Fixpoint), Threads * PerThread);
}

TEST(PhaseTest, PhaseNamesStable) {
  EXPECT_STREQ(phaseName(Phase::Parse), "parse");
  EXPECT_STREQ(phaseName(Phase::Typecheck), "typecheck");
  EXPECT_STREQ(phaseName(Phase::Fixpoint), "fixpoint");
  EXPECT_STREQ(phaseName(Phase::BlockExec), "block-exec");
  EXPECT_STREQ(phaseName(Phase::IrLower), "ir-lower");
  EXPECT_STREQ(phaseName(Phase::Solver), "solver");
  EXPECT_STREQ(phaseName(Phase::Render), "render");
  EXPECT_STREQ(phaseSpanName(Phase::Solver), "phase.solver");
}

TEST(PhaseTest, TimerEmitsSpanWhenEnabled) {
  TraceSink Global;
  RequestTelemetry T;
  EXPECT_EQ(T.sink(), nullptr);
  T.enableSpans(Global.epoch());
  ASSERT_NE(T.sink(), nullptr);
  {
    PhaseTimer Timer(&T, Phase::Parse);
  }
  std::vector<TraceEvent> Events = T.sink()->snapshotEvents();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].Name, "phase.parse");
  EXPECT_EQ(Events[0].Cat, "phase");
  EXPECT_EQ(Events[0].Ph, TracePhase::Complete);
}

TEST(TraceTest, ImportPreservesEventsAndTimebase) {
  // The daemon pattern: a request-scoped sink shares the global sink's
  // epoch, so folding its events back keeps the timestamps comparable.
  TraceSink Global;
  {
    TraceSpan Span(&Global, "global.before", "test");
  }
  TraceSink Request(Global.epoch());
  {
    TraceSpan Span(&Request, "request.span", "test");
  }
  std::vector<TraceEvent> Snapshot = Request.snapshotEvents();
  ASSERT_EQ(Snapshot.size(), 1u);
  Global.import(Snapshot);
  EXPECT_EQ(Global.eventCount(), 2u);
  bool Found = false;
  for (const TraceEvent &E : Global.snapshotEvents())
    if (E.Name == "request.span") {
      Found = true;
      EXPECT_EQ(E.Ts, Snapshot[0].Ts);
      EXPECT_EQ(E.Tid, Snapshot[0].Tid);
    }
  EXPECT_TRUE(Found);
}

//===----------------------------------------------------------------------===//
// Speedscope rendering
//===----------------------------------------------------------------------===//

TEST(TraceTest, SpeedscopeWellFormed) {
  TraceSink Sink;
  {
    TraceSpan Outer(&Sink, "outer", "phase");
    Sink.instant("marker", "test"); // instants must not become frames
    { TraceSpan Inner(&Sink, "inner", "phase"); }
  }

  testjson::Value Doc;
  std::string Error;
  ASSERT_TRUE(
      testjson::parseDocument(Sink.renderSpeedscope("unit"), Doc, &Error))
      << Error;
  ASSERT_TRUE(Doc.isObject());
  EXPECT_EQ(Doc["$schema"].Str,
            "https://www.speedscope.app/file-format-schema.json");
  EXPECT_EQ(Doc["name"].Str, "unit");

  // Frames: deduplicated span names, sorted — "inner" before "outer".
  const testjson::Value &Frames = Doc["shared"]["frames"];
  ASSERT_EQ(Frames.size(), 2u);
  EXPECT_EQ(Frames[0]["name"].Str, "inner");
  EXPECT_EQ(Frames[1]["name"].Str, "outer");

  // One evented profile (single thread), microsecond unit, O/C events
  // balanced and the stack never negative.
  const testjson::Value &Profiles = Doc["profiles"];
  ASSERT_EQ(Profiles.size(), 1u);
  const testjson::Value &P = Profiles[0];
  EXPECT_EQ(P["type"].Str, "evented");
  EXPECT_EQ(P["unit"].Str, "microseconds");
  const testjson::Value &Events = P["events"];
  ASSERT_EQ(Events.size(), 4u);
  int Depth = 0;
  double LastAt = 0;
  for (size_t I = 0; I != Events.size(); ++I) {
    const testjson::Value &E = Events[I];
    EXPECT_GE(E["at"].Num, LastAt);
    LastAt = E["at"].Num;
    Depth += E["type"].Str == "O" ? 1 : -1;
    EXPECT_GE(Depth, 0);
  }
  EXPECT_EQ(Depth, 0);
  EXPECT_GE(P["endValue"].Num, LastAt);
}

TEST(TraceTest, SpeedscopeEmptySinkParses) {
  TraceSink Sink;
  testjson::Value Doc;
  std::string Error;
  ASSERT_TRUE(testjson::parseDocument(Sink.renderSpeedscope(), Doc, &Error))
      << Error;
  EXPECT_EQ(Doc["shared"]["frames"].size(), 0u);
  EXPECT_EQ(Doc["profiles"].size(), 0u);
}

TEST(ThreadSlotTest, StableWithinThreadDistinctAcross) {
  unsigned Main = threadSlot();
  EXPECT_EQ(threadSlot(), Main);
  unsigned Other = Main;
  std::thread([&Other] { Other = threadSlot(); }).join();
  EXPECT_NE(Other, Main);
}

} // namespace
