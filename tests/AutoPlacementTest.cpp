//===--- AutoPlacementTest.cpp - Automatic block insertion ----------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "lang/AstPrinter.h"
#include "lang/Parser.h"
#include "mix/AutoPlacement.h"

#include <gtest/gtest.h>

using namespace mix;

namespace {

class AutoPlacementTest : public ::testing::Test {
protected:
  AutoPlacementResult refine(std::string_view Source,
                             const TypeEnv &Gamma = {}) {
    Diags.clear();
    const Expr *E = parseExpression(Source, Ctx, Diags);
    EXPECT_NE(E, nullptr) << Diags.str();
    return autoPlaceSymbolicBlocks(Ctx, E, Gamma, Diags);
  }

  AstContext Ctx;
  DiagnosticEngine Diags;
};

} // namespace

TEST_F(AutoPlacementTest, WellTypedProgramsNeedNoBlocks) {
  AutoPlacementResult R = refine("1 + 2");
  ASSERT_NE(R.ResultType, nullptr);
  EXPECT_EQ(R.BlocksInserted, 0u);
  EXPECT_EQ(R.ResultType->str(), "int");
}

TEST_F(AutoPlacementTest, DeadBranchGetsASymbolicBlock) {
  // The Section 2 unreachable-code idiom, with no annotations: the
  // refinement loop must discover where to put the symbolic block.
  AutoPlacementResult R = refine("if true then 5 else (1 + true)");
  ASSERT_NE(R.ResultType, nullptr) << Diags.str();
  EXPECT_EQ(R.ResultType->str(), "int");
  EXPECT_GE(R.BlocksInserted, 1u);
  // The annotation landed somewhere that contains the conditional.
  EXPECT_NE(printExpr(R.Program).find("{s"), std::string::npos);
}

TEST_F(AutoPlacementTest, DivIdiomIsDiscovered) {
  AutoPlacementResult R = refine(
      "(fun (y: int) : int -> if y = 0 then 1 + true else 100 - y) 4");
  ASSERT_NE(R.ResultType, nullptr) << Diags.str();
  EXPECT_EQ(R.ResultType->str(), "int");
  EXPECT_GE(R.BlocksInserted, 1u);
}

TEST_F(AutoPlacementTest, WriteThenCorrectIdiomIsDiscovered) {
  AutoPlacementResult R =
      refine("let x = ref 1 in (x := true; x := 2; !x + 1)");
  ASSERT_NE(R.ResultType, nullptr) << Diags.str();
  EXPECT_EQ(R.ResultType->str(), "int");
  EXPECT_GE(R.BlocksInserted, 1u);
}

TEST_F(AutoPlacementTest, TwoIndependentErrorsGetTwoBlocks) {
  AutoPlacementResult R = refine(
      "(if true then 1 else (1 + true)) + "
      "(if false then (true + 1) else 2)");
  ASSERT_NE(R.ResultType, nullptr) << Diags.str();
  EXPECT_EQ(R.ResultType->str(), "int");
  EXPECT_GE(R.BlocksInserted, 2u);
}

TEST_F(AutoPlacementTest, GenuineErrorsStillFail) {
  // A feasible type error: no placement can save it, and the final
  // diagnostics must be reported.
  TypeEnv Gamma;
  Gamma["b"] = Ctx.types().boolType();
  AutoPlacementResult R = refine("if b then 1 else (1 + true)", Gamma);
  EXPECT_EQ(R.ResultType, nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST_F(AutoPlacementTest, PrefersSmallBlocks) {
  // The innermost sufficient wrap should win: the symbolic region should
  // not swallow the outer arithmetic.
  AutoPlacementResult R =
      refine("1000 + (if true then 5 else (1 + true))");
  ASSERT_NE(R.ResultType, nullptr) << Diags.str();
  std::string Printed = printExpr(R.Program);
  // The + 1000 stays outside the symbolic block.
  EXPECT_TRUE(Printed.find("1000 + ({s") != std::string::npos ||
              Printed.find("(1000 + {s") != std::string::npos)
      << Printed;
}

TEST_F(AutoPlacementTest, RespectsRefinementBudget) {
  AutoPlacementOptions Opts;
  Opts.MaxRefinements = 0;
  const Expr *E =
      parseExpression("if true then 5 else (1 + true)", Ctx, Diags);
  ASSERT_NE(E, nullptr);
  AutoPlacementResult R =
      autoPlaceSymbolicBlocks(Ctx, E, {}, Diags, Opts);
  EXPECT_EQ(R.ResultType, nullptr);
  EXPECT_EQ(R.BlocksInserted, 0u);
}
