//===--- ParserTest.cpp - Tests for the core-language parser --------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "lang/AstPrinter.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace mix;

namespace {

/// Parses and returns the printed form, or "<error>" on failure.
std::string parsePrint(std::string_view Source) {
  AstContext Ctx;
  DiagnosticEngine Diags;
  const Expr *E = parseExpression(Source, Ctx, Diags);
  if (!E)
    return "<error>";
  return printExpr(E);
}

} // namespace

TEST(ParserTest, Literals) {
  EXPECT_EQ(parsePrint("42"), "42");
  EXPECT_EQ(parsePrint("true"), "true");
  EXPECT_EQ(parsePrint("false"), "false");
  EXPECT_EQ(parsePrint("x"), "x");
}

TEST(ParserTest, ArithmeticAssociatesLeft) {
  EXPECT_EQ(parsePrint("1 + 2 + 3"), "((1 + 2) + 3)");
  EXPECT_EQ(parsePrint("1 - 2 - 3"), "((1 - 2) - 3)");
  EXPECT_EQ(parsePrint("1 + 2 - 3"), "((1 + 2) - 3)");
}

TEST(ParserTest, ComparisonsBindLooserThanArithmetic) {
  EXPECT_EQ(parsePrint("1 + 2 = 3"), "((1 + 2) = 3)");
  EXPECT_EQ(parsePrint("x < y + 1"), "(x < (y + 1))");
  EXPECT_EQ(parsePrint("x <= 0"), "(x <= 0)");
}

TEST(ParserTest, BooleanPrecedence) {
  EXPECT_EQ(parsePrint("a and b or c"), "((a and b) or c)");
  EXPECT_EQ(parsePrint("not a and b"), "((not a) and b)");
  EXPECT_EQ(parsePrint("x = 1 and y = 2"), "((x = 1) and (y = 2))");
}

TEST(ParserTest, Conditional) {
  EXPECT_EQ(parsePrint("if c then 1 else 2"), "(if c then 1 else 2)");
  // if extends to the right: `else b + 1` binds the sum into the branch.
  EXPECT_EQ(parsePrint("if c then a else b + 1"),
            "(if c then a else (b + 1))");
}

TEST(ParserTest, LetBinding) {
  EXPECT_EQ(parsePrint("let x = 1 in x + 2"), "(let x = 1 in (x + 2))");
  EXPECT_EQ(parsePrint("let x : int = 1 in x"), "(let x : int = 1 in x)");
  EXPECT_EQ(parsePrint("let r : int ref = ref 0 in !r"),
            "(let r : int ref = (ref 0) in (!r))");
}

TEST(ParserTest, References) {
  EXPECT_EQ(parsePrint("ref 1"), "(ref 1)");
  EXPECT_EQ(parsePrint("!x"), "(!x)");
  EXPECT_EQ(parsePrint("x := 1"), "(x := 1)");
  // := binds looser than +: the whole sum is assigned.
  EXPECT_EQ(parsePrint("x := !x + 1"), "(x := ((!x) + 1))");
}

TEST(ParserTest, SequencingIsRightAssociativeAndLoosest) {
  EXPECT_EQ(parsePrint("a; b; c"), "(a; (b; c))");
  EXPECT_EQ(parsePrint("x := 1; y := 2"), "((x := 1); (y := 2))");
}

TEST(ParserTest, Blocks) {
  EXPECT_EQ(parsePrint("{t 1 + 2 t}"), "{t (1 + 2) t}");
  EXPECT_EQ(parsePrint("{s x s}"), "{s x s}");
  EXPECT_EQ(parsePrint("{t {s 1 s} t}"), "{t {s 1 s} t}");
  // The paper's running example shape: a symbolic block around typed code.
  EXPECT_EQ(parsePrint("{s if c then {t 1 t} else {t 2 t} s}"),
            "{s (if c then {t 1 t} else {t 2 t}) s}");
}

TEST(ParserTest, FunctionsAndApplication) {
  EXPECT_EQ(parsePrint("fun (x: int) : int -> x + 1"),
            "(fun (x: int) : int -> (x + 1))");
  EXPECT_EQ(parsePrint("f x y"), "((f x) y)");
  EXPECT_EQ(parsePrint("f (x + 1)"), "(f (x + 1))");
  EXPECT_EQ(parsePrint("let id = fun (x: int) : int -> x in id 3"),
            "(let id = (fun (x: int) : int -> x) in (id 3))");
}

TEST(ParserTest, FunctionTypesParse) {
  EXPECT_EQ(parsePrint("fun (f: int -> bool) : bool -> f 0"),
            "(fun (f: int -> bool) : bool -> (f 0))");
  EXPECT_EQ(parsePrint("fun (f: (int -> int) -> bool) : bool -> f 1"),
            "(fun (f: (int -> int) -> bool) : bool -> (f 1))");
  EXPECT_EQ(parsePrint("fun (r: int ref ref) : int -> !(!r)"),
            "(fun (r: int ref ref) : int -> (!(!r)))");
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  EXPECT_EQ(parsePrint("(1 + 2) - 3"), "((1 + 2) - 3)");
  EXPECT_EQ(parsePrint("1 + (2 - 3)"), "(1 + (2 - 3))");
}

TEST(ParserTest, RoundTripThroughPrinter) {
  const char *Programs[] = {
      "let x = ref 0 in (x := 1; !x)",
      "{s if b then {t 1 t} else {t 0 t} s}",
      "let f = fun (x: int) : int -> if x < 0 then 0 - x else x in "
      "f (0 - 5)",
      "{t let y = {s 1 + 2 s} in y t}",
  };
  for (const char *P : Programs) {
    std::string Once = parsePrint(P);
    ASSERT_NE(Once, "<error>") << P;
    std::string Twice = parsePrint(Once);
    EXPECT_EQ(Once, Twice) << P;
  }
}

TEST(ParserTest, Errors) {
  EXPECT_EQ(parsePrint(""), "<error>");
  EXPECT_EQ(parsePrint("1 +"), "<error>");
  EXPECT_EQ(parsePrint("let = 3 in x"), "<error>");
  EXPECT_EQ(parsePrint("if c then 1"), "<error>");
  EXPECT_EQ(parsePrint("{t 1 s}"), "<error>");
  EXPECT_EQ(parsePrint("(1"), "<error>");
  // Note: "1 2" parses as the application (1 2); the type checker rejects
  // it later, so it is not a parse error.
  EXPECT_EQ(parsePrint("1 2"), "(1 2)");
}

TEST(ParserTest, ErrorProducesDiagnostic) {
  AstContext Ctx;
  DiagnosticEngine Diags;
  const Expr *E = parseExpression("let x 1 in x", Ctx, Diags);
  EXPECT_EQ(E, nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}
