//===--- IrDiffTest.cpp - AST-vs-IR engine differential harness -----------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// The --exec=ir contract is observational equivalence: for any program,
// the compiled concolic engine must reproduce the AST walker's behavior
// exactly — same path outcomes in the same order, same error messages at
// the same locations, same fresh-variable numbering (visible in rendered
// expressions), same budget trips, and byte-identical diagnostics through
// the full MixChecker / AnalysisService stack. This harness property-tests
// that contract on >=1000 generated programs per strategy plus the full
// service path, so any divergence names the program that exposed it.
//
//===----------------------------------------------------------------------===//

#include "ProgramGen.h"

#include "concolic/IrExecutor.h"
#include "lang/AstPrinter.h"
#include "lang/Parser.h"
#include "mix/MixChecker.h"
#include "service/AnalysisService.h"
#include "service/Protocol.h"
#include "symexec/SymExecutor.h"

#include <gtest/gtest.h>

#include <random>

using namespace mix;

namespace {

/// Renders every path outcome of a run to a comparable string: verdict,
/// location, message, value, path condition, memory log, and decision
/// list. Fresh-variable ids appear in the rendered expressions, so any
/// drift in allocation order shows up here.
std::vector<std::string> renderPaths(const SymExecResult &R) {
  std::vector<std::string> Out;
  for (const PathResult &P : R.Paths) {
    std::string S;
    if (P.IsError)
      S = "error " + P.ErrorLoc.str() + " " + P.ErrorMessage;
    else
      S = "value " + P.Value->str();
    S += " | path " + P.State.Path->str();
    S += " | mem " + P.State.Mem->str();
    S += " | decisions";
    for (const SymExpr *D : P.State.Decisions)
      S += " " + D->str();
    Out.push_back(std::move(S));
  }
  Out.push_back(R.ResourceLimitHit ? "limit hit" : "limit ok");
  return Out;
}

/// Runs \p E under both engines with identical fresh arenas and options;
/// returns the two renderings.
std::pair<std::vector<std::string>, std::vector<std::string>>
runBoth(AstContext &Ctx, const Expr *E, SymExecOptions Opts) {
  auto RunWith = [&](SymExecOptions::Engine Mode) {
    SymExecOptions O = Opts;
    O.ExecMode = Mode;
    SymArena A(Ctx.types());
    DiagnosticEngine D;
    std::unique_ptr<ExecEngine> Exec = concolic::makeExecEngine(A, D, O);
    SymEnv Env;
    Env["x"] = Exec->arena().freshVar(Ctx.types().intType(), false, "x");
    Env["y"] = Exec->arena().freshVar(Ctx.types().intType(), false, "y");
    Env["b"] = Exec->arena().freshVar(Ctx.types().boolType(), false, "b");
    Env["p"] = Exec->arena().freshVar(
        Ctx.types().refType(Ctx.types().intType()), false, "p");
    return renderPaths(Exec->run(E, Env));
  };
  return {RunWith(SymExecOptions::Engine::Ast),
          RunWith(SymExecOptions::Engine::Ir)};
}

class IrDiffTest : public ::testing::TestWithParam<unsigned> {};

//===----------------------------------------------------------------------===//
// Executor level: >=1000 generated programs, both strategies
//===----------------------------------------------------------------------===//

TEST_P(IrDiffTest, GeneratedProgramsAgreeUnderForkAndDefer) {
  std::mt19937 Rng(GetParam());
  testgen::ProgramGenerator::Scope Scope;
  Scope.IntVars = {"x", "y"};
  Scope.BoolVars = {"b"};
  Scope.RefVars = {"p"};

  for (int Round = 0; Round != 500; ++Round) {
    AstContext Ctx;
    testgen::ProgramGenerator Gen(Ctx, Rng, /*AllowBlocks=*/false);
    const Expr *E =
        Rng() % 2 ? Gen.genInt(Scope, 4) : Gen.genBool(Scope, 4);
    std::string Printed = printExpr(E);

    for (auto Strat :
         {SymExecOptions::Strategy::Fork, SymExecOptions::Strategy::Defer}) {
      SymExecOptions Opts;
      Opts.Strat = Strat;
      auto [Ast, Ir] = runBoth(Ctx, E, Opts);
      ASSERT_EQ(Ast, Ir) << "strategy "
                         << (Strat == SymExecOptions::Strategy::Fork
                                 ? "fork"
                                 : "defer")
                         << " diverged on:\n"
                         << Printed;
    }
  }
}

TEST_P(IrDiffTest, BudgetTripsAtTheSameStep) {
  // A starved step budget must trip at the same node in both engines:
  // same error location, same partial path list, same ResourceLimitHit.
  std::mt19937 Rng(GetParam() + 77);
  testgen::ProgramGenerator::Scope Scope;
  Scope.IntVars = {"x", "y"};
  Scope.BoolVars = {"b"};
  Scope.RefVars = {"p"};

  for (int Round = 0; Round != 120; ++Round) {
    AstContext Ctx;
    testgen::ProgramGenerator Gen(Ctx, Rng, /*AllowBlocks=*/false);
    const Expr *E = Gen.genInt(Scope, 4);
    SymExecOptions Opts;
    Opts.MaxSteps = 1 + Rng() % 40;
    auto [Ast, Ir] = runBoth(Ctx, E, Opts);
    ASSERT_EQ(Ast, Ir) << "MaxSteps=" << Opts.MaxSteps << " diverged on:\n"
                       << printExpr(E);
  }
}

TEST_P(IrDiffTest, ExpressionGcDoesNotChangeOutcomes) {
  // The IR engine's epoch sweep must be invisible: same renderings with
  // the collector on and off, across back-to-back runs in one arena.
  std::mt19937 Rng(GetParam() + 101);
  testgen::ProgramGenerator::Scope Scope;
  Scope.IntVars = {"x", "y"};
  Scope.BoolVars = {"b"};
  Scope.RefVars = {"p"};

  AstContext Ctx;
  auto RunSeq = [&](bool Gc, const std::vector<const Expr *> &Programs) {
    SymExecOptions Opts;
    Opts.ExecMode = SymExecOptions::Engine::Ir;
    Opts.ExprGC = Gc;
    SymArena A(Ctx.types());
    DiagnosticEngine D;
    std::unique_ptr<ExecEngine> Exec = concolic::makeExecEngine(A, D, Opts);
    std::vector<std::string> Out;
    for (const Expr *E : Programs) {
      SymEnv Env;
      Env["x"] = Exec->arena().freshVar(Ctx.types().intType(), false, "x");
      Env["b"] = Exec->arena().freshVar(Ctx.types().boolType(), false, "b");
      for (std::string &S : renderPaths(Exec->run(E, Env)))
        Out.push_back(std::move(S));
    }
    return Out;
  };

  std::vector<const Expr *> Programs;
  testgen::ProgramGenerator Gen(Ctx, Rng, /*AllowBlocks=*/false);
  testgen::ProgramGenerator::Scope Small;
  Small.IntVars = {"x"};
  Small.BoolVars = {"b"};
  for (int I = 0; I != 40; ++I)
    Programs.push_back(Gen.genInt(Small, 4));

  EXPECT_EQ(RunSeq(false, Programs), RunSeq(true, Programs));
}

//===----------------------------------------------------------------------===//
// MixChecker level: blocks, oracle re-entry, diagnostics
//===----------------------------------------------------------------------===//

TEST_P(IrDiffTest, MixCheckerDiagnosticsAgree) {
  std::mt19937 Rng(GetParam() + 7);
  testgen::ProgramGenerator::Scope Scope;
  Scope.IntVars = {"x", "y"};
  Scope.BoolVars = {"b"};
  Scope.RefVars = {"p"};

  unsigned Accepted = 0;
  for (int Round = 0; Round != 150; ++Round) {
    AstContext Ctx;
    testgen::ProgramGenerator Gen(Ctx, Rng, /*AllowBlocks=*/true);
    const Expr *E =
        Rng() % 2 ? Gen.genInt(Scope, 4) : Gen.genBool(Scope, 4);

    TypeEnv Gamma;
    Gamma["x"] = Ctx.types().intType();
    Gamma["y"] = Ctx.types().intType();
    Gamma["b"] = Ctx.types().boolType();
    Gamma["p"] = Ctx.types().refType(Ctx.types().intType());

    auto CheckWith = [&](SymExecOptions::Engine Mode) {
      MixOptions Opts;
      Opts.Exec.ExecMode = Mode;
      DiagnosticEngine D;
      MixChecker Mix(Ctx.types(), D, Opts);
      const Type *T = Mix.checkTyped(E, Gamma);
      return std::make_pair(T ? T->str() : "<rejected>", D.str());
    };

    auto Ast = CheckWith(SymExecOptions::Engine::Ast);
    auto Ir = CheckWith(SymExecOptions::Engine::Ir);
    ASSERT_EQ(Ast, Ir) << "diverged on:\n" << printExpr(E);
    if (Ast.first != "<rejected>")
      ++Accepted;
  }
  // The property is vacuous if generation only produces rejects.
  EXPECT_GT(Accepted, 10u);
}

//===----------------------------------------------------------------------===//
// Full stack: AnalysisService payload bytes
//===----------------------------------------------------------------------===//

TEST(IrServiceDiffTest, ServicePayloadsAreByteIdentical) {
  const struct {
    const char *Source;
    service::Format Fmt;
    bool Explain;
  } Cases[] = {
      {"{s if b then {t 1 + true t} else {t 0 t} s}", service::Format::Text,
       true},
      {"{s if b then {t 1 + true t} else {t 0 t} s}", service::Format::Json,
       false},
      {"{s if b then {t 1 + true t} else {t 0 t} s}", service::Format::Sarif,
       false},
      {"{s if 0 < x then x else 0 - x s}", service::Format::Text, false},
      {"1 + true", service::Format::Text, false},
  };
  for (const auto &C : Cases) {
    auto RunWith = [&](SymExecOptions::Engine Mode) {
      service::AnalysisService Svc;
      service::AnalysisRequest Req;
      Req.ToolKind = service::Tool::MixCheck;
      Req.Source = C.Source;
      Req.HasSource = true;
      Req.OutputFormat = C.Fmt;
      Req.Explain = C.Explain;
      Req.ExecMode = Mode;
      Req.Vars = {{"b", "bool"}, {"x", "int"}};
      service::AnalysisResponse Resp = Svc.run(Req);
      return std::make_tuple(Resp.Exit, Resp.Payload, Resp.ErrorText,
                             Resp.Accepted, Resp.ResultType);
    };
    EXPECT_EQ(RunWith(SymExecOptions::Engine::Ast),
              RunWith(SymExecOptions::Engine::Ir))
        << C.Source;
  }
}

TEST(IrServiceDiffTest, RequestKeySeparatesEngines) {
  // The daemon's response cache must not serve an --exec=ast result to an
  // --exec=ir request (identical though they are, the cache key is the
  // contract): the wire encodings differ, and decoding round-trips.
  service::AnalysisRequest Req;
  Req.ToolKind = service::Tool::MixCheck;
  Req.Source = "1";
  Req.HasSource = true;
  std::string AstWire = service::encodeRequest(Req);
  Req.ExecMode = SymExecOptions::Engine::Ir;
  std::string IrWire = service::encodeRequest(Req);
  EXPECT_NE(AstWire, IrWire);
  EXPECT_NE(IrWire.find("\"exec\": \"ir\""), std::string::npos) << IrWire;

  service::AnalysisRequest Out;
  std::string Error;
  ASSERT_TRUE(service::decodeRequest(IrWire, Out, Error)) << Error;
  EXPECT_EQ(Out.ExecMode, SymExecOptions::Engine::Ir);
  EXPECT_EQ(service::encodeRequest(Out), IrWire);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IrDiffTest, ::testing::Values(1u, 2u));

} // namespace
