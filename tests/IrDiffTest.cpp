//===--- IrDiffTest.cpp - AST-vs-IR engine differential harness -----------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// The --exec=ir contract is observational equivalence: for any program,
// the compiled concolic engine must reproduce the AST walker's behavior
// exactly — same path outcomes in the same order, same error messages at
// the same locations, same fresh-variable numbering (visible in rendered
// expressions), same budget trips, and byte-identical diagnostics through
// the full MixChecker / AnalysisService stack. This harness property-tests
// that contract on >=1000 generated programs per strategy plus the full
// service path, so any divergence names the program that exposed it.
//
//===----------------------------------------------------------------------===//

#include "ProgramGen.h"

#include "cfront/CParser.h"
#include "concolic/CIrExecutor.h"
#include "concolic/IrExecutor.h"
#include "csym/CSymExecutor.h"
#include "lang/AstPrinter.h"
#include "lang/Parser.h"
#include "mix/MixChecker.h"
#include "observe/Metrics.h"
#include "service/AnalysisService.h"
#include "service/Protocol.h"
#include "solver/SolverFactory.h"
#include "symexec/SymExecutor.h"

#include <gtest/gtest.h>

#include <random>

using namespace mix;

namespace {

/// Renders every path outcome of a run to a comparable string: verdict,
/// location, message, value, path condition, memory log, and decision
/// list. Fresh-variable ids appear in the rendered expressions, so any
/// drift in allocation order shows up here.
std::vector<std::string> renderPaths(const SymExecResult &R) {
  std::vector<std::string> Out;
  for (const PathResult &P : R.Paths) {
    std::string S;
    if (P.IsError)
      S = "error " + P.ErrorLoc.str() + " " + P.ErrorMessage;
    else
      S = "value " + P.Value->str();
    S += " | path " + P.State.Path->str();
    S += " | mem " + P.State.Mem->str();
    S += " | decisions";
    for (const SymExpr *D : P.State.Decisions)
      S += " " + D->str();
    Out.push_back(std::move(S));
  }
  Out.push_back(R.ResourceLimitHit ? "limit hit" : "limit ok");
  return Out;
}

/// Runs \p E under both engines with identical fresh arenas and options;
/// returns the two renderings.
std::pair<std::vector<std::string>, std::vector<std::string>>
runBoth(AstContext &Ctx, const Expr *E, SymExecOptions Opts) {
  auto RunWith = [&](SymExecOptions::Engine Mode) {
    SymExecOptions O = Opts;
    O.ExecMode = Mode;
    SymArena A(Ctx.types());
    DiagnosticEngine D;
    std::unique_ptr<ExecEngine> Exec = concolic::makeExecEngine(A, D, O);
    SymEnv Env;
    Env["x"] = Exec->arena().freshVar(Ctx.types().intType(), false, "x");
    Env["y"] = Exec->arena().freshVar(Ctx.types().intType(), false, "y");
    Env["b"] = Exec->arena().freshVar(Ctx.types().boolType(), false, "b");
    Env["p"] = Exec->arena().freshVar(
        Ctx.types().refType(Ctx.types().intType()), false, "p");
    return renderPaths(Exec->run(E, Env));
  };
  return {RunWith(SymExecOptions::Engine::Ast),
          RunWith(SymExecOptions::Engine::Ir)};
}

class IrDiffTest : public ::testing::TestWithParam<unsigned> {};

//===----------------------------------------------------------------------===//
// Executor level: >=1000 generated programs, both strategies
//===----------------------------------------------------------------------===//

TEST_P(IrDiffTest, GeneratedProgramsAgreeUnderForkAndDefer) {
  std::mt19937 Rng(GetParam());
  testgen::ProgramGenerator::Scope Scope;
  Scope.IntVars = {"x", "y"};
  Scope.BoolVars = {"b"};
  Scope.RefVars = {"p"};

  for (int Round = 0; Round != 500; ++Round) {
    AstContext Ctx;
    testgen::ProgramGenerator Gen(Ctx, Rng, /*AllowBlocks=*/false);
    const Expr *E =
        Rng() % 2 ? Gen.genInt(Scope, 4) : Gen.genBool(Scope, 4);
    std::string Printed = printExpr(E);

    for (auto Strat :
         {SymExecOptions::Strategy::Fork, SymExecOptions::Strategy::Defer}) {
      SymExecOptions Opts;
      Opts.Strat = Strat;
      auto [Ast, Ir] = runBoth(Ctx, E, Opts);
      ASSERT_EQ(Ast, Ir) << "strategy "
                         << (Strat == SymExecOptions::Strategy::Fork
                                 ? "fork"
                                 : "defer")
                         << " diverged on:\n"
                         << Printed;
    }
  }
}

TEST_P(IrDiffTest, BudgetTripsAtTheSameStep) {
  // A starved step budget must trip at the same node in both engines:
  // same error location, same partial path list, same ResourceLimitHit.
  std::mt19937 Rng(GetParam() + 77);
  testgen::ProgramGenerator::Scope Scope;
  Scope.IntVars = {"x", "y"};
  Scope.BoolVars = {"b"};
  Scope.RefVars = {"p"};

  for (int Round = 0; Round != 120; ++Round) {
    AstContext Ctx;
    testgen::ProgramGenerator Gen(Ctx, Rng, /*AllowBlocks=*/false);
    const Expr *E = Gen.genInt(Scope, 4);
    SymExecOptions Opts;
    Opts.MaxSteps = 1 + Rng() % 40;
    auto [Ast, Ir] = runBoth(Ctx, E, Opts);
    ASSERT_EQ(Ast, Ir) << "MaxSteps=" << Opts.MaxSteps << " diverged on:\n"
                       << printExpr(E);
  }
}

TEST_P(IrDiffTest, ExpressionGcDoesNotChangeOutcomes) {
  // The IR engine's epoch sweep must be invisible: same renderings with
  // the collector on and off, across back-to-back runs in one arena.
  std::mt19937 Rng(GetParam() + 101);
  testgen::ProgramGenerator::Scope Scope;
  Scope.IntVars = {"x", "y"};
  Scope.BoolVars = {"b"};
  Scope.RefVars = {"p"};

  AstContext Ctx;
  auto RunSeq = [&](bool Gc, const std::vector<const Expr *> &Programs) {
    SymExecOptions Opts;
    Opts.ExecMode = SymExecOptions::Engine::Ir;
    Opts.ExprGC = Gc;
    SymArena A(Ctx.types());
    DiagnosticEngine D;
    std::unique_ptr<ExecEngine> Exec = concolic::makeExecEngine(A, D, Opts);
    std::vector<std::string> Out;
    for (const Expr *E : Programs) {
      SymEnv Env;
      Env["x"] = Exec->arena().freshVar(Ctx.types().intType(), false, "x");
      Env["b"] = Exec->arena().freshVar(Ctx.types().boolType(), false, "b");
      for (std::string &S : renderPaths(Exec->run(E, Env)))
        Out.push_back(std::move(S));
    }
    return Out;
  };

  std::vector<const Expr *> Programs;
  testgen::ProgramGenerator Gen(Ctx, Rng, /*AllowBlocks=*/false);
  testgen::ProgramGenerator::Scope Small;
  Small.IntVars = {"x"};
  Small.BoolVars = {"b"};
  for (int I = 0; I != 40; ++I)
    Programs.push_back(Gen.genInt(Small, 4));

  EXPECT_EQ(RunSeq(false, Programs), RunSeq(true, Programs));
}

//===----------------------------------------------------------------------===//
// MixChecker level: blocks, oracle re-entry, diagnostics
//===----------------------------------------------------------------------===//

TEST_P(IrDiffTest, MixCheckerDiagnosticsAgree) {
  std::mt19937 Rng(GetParam() + 7);
  testgen::ProgramGenerator::Scope Scope;
  Scope.IntVars = {"x", "y"};
  Scope.BoolVars = {"b"};
  Scope.RefVars = {"p"};

  unsigned Accepted = 0;
  for (int Round = 0; Round != 150; ++Round) {
    AstContext Ctx;
    testgen::ProgramGenerator Gen(Ctx, Rng, /*AllowBlocks=*/true);
    const Expr *E =
        Rng() % 2 ? Gen.genInt(Scope, 4) : Gen.genBool(Scope, 4);

    TypeEnv Gamma;
    Gamma["x"] = Ctx.types().intType();
    Gamma["y"] = Ctx.types().intType();
    Gamma["b"] = Ctx.types().boolType();
    Gamma["p"] = Ctx.types().refType(Ctx.types().intType());

    auto CheckWith = [&](SymExecOptions::Engine Mode) {
      MixOptions Opts;
      Opts.Exec.ExecMode = Mode;
      DiagnosticEngine D;
      MixChecker Mix(Ctx.types(), D, Opts);
      const Type *T = Mix.checkTyped(E, Gamma);
      return std::make_pair(T ? T->str() : "<rejected>", D.str());
    };

    auto Ast = CheckWith(SymExecOptions::Engine::Ast);
    auto Ir = CheckWith(SymExecOptions::Engine::Ir);
    ASSERT_EQ(Ast, Ir) << "diverged on:\n" << printExpr(E);
    if (Ast.first != "<rejected>")
      ++Accepted;
  }
  // The property is vacuous if generation only produces rejects.
  EXPECT_GT(Accepted, 10u);
}

//===----------------------------------------------------------------------===//
// Full stack: AnalysisService payload bytes
//===----------------------------------------------------------------------===//

TEST(IrServiceDiffTest, ServicePayloadsAreByteIdentical) {
  const struct {
    const char *Source;
    service::Format Fmt;
    bool Explain;
  } Cases[] = {
      {"{s if b then {t 1 + true t} else {t 0 t} s}", service::Format::Text,
       true},
      {"{s if b then {t 1 + true t} else {t 0 t} s}", service::Format::Json,
       false},
      {"{s if b then {t 1 + true t} else {t 0 t} s}", service::Format::Sarif,
       false},
      {"{s if 0 < x then x else 0 - x s}", service::Format::Text, false},
      {"1 + true", service::Format::Text, false},
  };
  for (const auto &C : Cases) {
    auto RunWith = [&](SymExecOptions::Engine Mode) {
      service::AnalysisService Svc;
      service::AnalysisRequest Req;
      Req.ToolKind = service::Tool::MixCheck;
      Req.Source = C.Source;
      Req.HasSource = true;
      Req.OutputFormat = C.Fmt;
      Req.Explain = C.Explain;
      Req.ExecMode = Mode;
      Req.Vars = {{"b", "bool"}, {"x", "int"}};
      service::AnalysisResponse Resp = Svc.run(Req);
      return std::make_tuple(Resp.Exit, Resp.Payload, Resp.ErrorText,
                             Resp.Accepted, Resp.ResultType);
    };
    EXPECT_EQ(RunWith(SymExecOptions::Engine::Ast),
              RunWith(SymExecOptions::Engine::Ir))
        << C.Source;
  }
}

TEST(IrServiceDiffTest, RequestKeySeparatesEngines) {
  // The daemon's response cache must not serve an --exec=ast result to an
  // --exec=ir request (identical though they are, the cache key is the
  // contract): the wire encodings differ, and decoding round-trips.
  service::AnalysisRequest Req;
  Req.ToolKind = service::Tool::MixCheck;
  Req.Source = "1";
  Req.HasSource = true;
  std::string AstWire = service::encodeRequest(Req);
  Req.ExecMode = SymExecOptions::Engine::Ir;
  std::string IrWire = service::encodeRequest(Req);
  EXPECT_NE(AstWire, IrWire);
  EXPECT_NE(IrWire.find("\"exec\": \"ir\""), std::string::npos) << IrWire;

  service::AnalysisRequest Out;
  std::string Error;
  ASSERT_TRUE(service::decodeRequest(IrWire, Out, Error)) << Error;
  EXPECT_EQ(Out.ExecMode, SymExecOptions::Engine::Ir);
  EXPECT_EQ(service::encodeRequest(Out), IrWire);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IrDiffTest, ::testing::Values(1u, 2u));

//===----------------------------------------------------------------------===//
// Mini-C executor level: the shared concolic core under CSymExecutor
//===----------------------------------------------------------------------===//

/// One mini-C run, fully rendered for comparison. The render captures
/// everything the walker's behavior is observable through — per-path
/// conditions, return values, final stores, diagnostics, stats — and
/// SolverQueries pins the *term traffic*: byte-identical output with a
/// different query sequence would still be a port bug.
struct CDiffRun {
  std::vector<std::string> Render;
  uint64_t SolverQueries = 0;
  uint64_t LowerMisses = 0;
  uint64_t LowerHits = 0;
  uint64_t Fallbacks = 0;
  uint64_t ExecPaths = 0;
};

CDiffRun runMiniC(const std::string &Source, const std::string &Entry,
                  SymExecOptions::Engine Mode, const std::string &Backend) {
  CDiffRun R;
  c::CAstContext Ctx;
  DiagnosticEngine Diags;
  const c::CProgram *P = c::parseC(Source, Ctx, Diags);
  EXPECT_NE(P, nullptr) << Diags.str() << "\n" << Source;
  if (!P)
    return R;
  smt::TermArena Terms;
  obs::MetricsRegistry Reg;
  smt::SmtOptions SO;
  SO.Metrics = &Reg;
  std::unique_ptr<smt::ISolver> Solver = smt::createBackend(Backend, Terms, SO);
  EXPECT_NE(Solver, nullptr) << Backend;
  if (!Solver)
    return R;
  c::CSymExecutor Exec(*P, Ctx, Diags, Terms, *Solver);
  std::unique_ptr<c::CBodyEngine> Engine =
      concolic::makeCBodyEngine(Exec, Mode, &Reg, nullptr);
  if (Engine)
    Exec.setBodyEngine(Engine.get());

  c::CSymResult Res = Exec.runFunction(P->findFunc(Entry));
  for (const c::CSymResult::PathOut &PO : Res.Paths) {
    std::string S = "path " + PO.Path->str();
    S += PO.Returned ? " | ret " + PO.Ret.str() : " | fellthrough";
    S += " | store";
    for (const auto &KV : PO.Store.Cells)
      S += " [" + std::to_string(KV.first.first) + "." + KV.first.second +
           "]=" + KV.second.str();
    R.Render.push_back(std::move(S));
  }
  R.Render.push_back(Res.Incomplete ? "incomplete" : "exhaustive");
  R.Render.push_back("warnings " + std::to_string(Res.WarningCount));
  R.Render.push_back("diags " + Diags.str());
  const c::CSymExecutor::Stats &St = Exec.stats();
  R.Render.push_back(
      "stats " + std::to_string(St.PathsExplored) + " " +
      std::to_string(St.ForksPruned) + " " + std::to_string(St.NullChecks) +
      " " + std::to_string(St.CallsInlined));
  R.SolverQueries = Reg.counterValue("solver.queries");
  R.LowerMisses = Reg.counterValue("ir.lower.misses");
  R.LowerHits = Reg.counterValue("ir.lower.hits");
  R.Fallbacks = Reg.counterValue("exec.fallback.ast");
  R.ExecPaths = Reg.counterValue("exec.paths");
  return R;
}

/// Alias- and call-heavy generated mini-C bodies: every statement is a
/// construct both the walker and the lowering model, sampled over shared
/// locals, pointers into them, a struct, heap cells, and direct plus
/// function-pointer calls.
std::string genMiniCProgram(std::mt19937 &Rng) {
  static const char *Pool[] = {
      "  x = x + y;\n",
      "  y = y - 1;\n",
      "  x = helper(x, p);\n",
      "  y = fp(y, q);\n",
      "  p = &x;\n",
      "  q = (int*) malloc(sizeof(int));\n",
      "  *p = x + 1;\n",
      "  x = *q;\n",
      "  p = NULL;\n",
      "  n.val = x;\n",
      "  y = n.val;\n",
      "  h->val = y;\n",
      "  x = h->val;\n",
      "  h->next = NULL;\n",
      "  p = q;\n",
      "  if (x < y) { x = x + 1; } else { y = *p; }\n",
      "  while (x > 0) { x = x - 1; }\n",
      "  if (!y) { q = &x; x = helper(y, q); }\n",
  };
  std::string Src = R"(struct node { int val; struct node *next; };
int helper(int a, int *w) { if (a > 0) { return a; } return 0; }
int main(int argc) {
  int x = argc;
  int y = 2;
  int *p;
  int *q;
  p = &x;
  q = &y;
  struct node n;
  struct node *h;
  n.val = 0;
  h = &n;
  int (*fp)(int, int*);
  fp = helper;
)";
  unsigned N = 3 + Rng() % 5;
  for (unsigned I = 0; I != N; ++I)
    Src += Pool[Rng() % (sizeof(Pool) / sizeof(Pool[0]))];
  Src += "  return x + y;\n}\n";
  return Src;
}

class CIrDiffTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(CIrDiffTest, GeneratedMiniCBodiesAgreeAcrossBackends) {
  std::mt19937 Rng(GetParam() * 131);
  for (int Round = 0; Round != 40; ++Round) {
    std::string Src = genMiniCProgram(Rng);
    for (const char *Backend : {"smtlite", "dnf"}) {
      CDiffRun Ast =
          runMiniC(Src, "main", SymExecOptions::Engine::Ast, Backend);
      CDiffRun Ir = runMiniC(Src, "main", SymExecOptions::Engine::Ir, Backend);
      ASSERT_EQ(Ast.Render, Ir.Render)
          << "backend " << Backend << " diverged on:\n" << Src;
      // Same bytes via the same solver conversation: the IR engine must
      // not add, drop, or reorder queries.
      ASSERT_EQ(Ast.SolverQueries, Ir.SolverQueries)
          << "backend " << Backend << " query drift on:\n" << Src;
      // And it must actually have lowered the bodies, not fallen back.
      // (ExecPaths may legitimately be 0: a definite-null deref prunes
      // every path, so the body yields no outcomes in either engine.)
      EXPECT_EQ(Ir.Fallbacks, 0u) << Src;
      EXPECT_GT(Ir.LowerMisses, 0u) << Src;
    }
  }
}

TEST(CIrDiffFallbackTest, UnloweredBodyFallsBackLoudly) {
  // `a + 1` in lvalue position is outside the lowering's model: the
  // engine must decline (one loud exec.fallback.ast bump), and the
  // AST-walker fallback must behave byte-identically to a bare run —
  // including the "expression is not an lvalue" warning.
  const std::string Src = R"(int bad(int a) {
  a + 1 = 2;
  return a;
}
)";
  CDiffRun Ast = runMiniC(Src, "bad", SymExecOptions::Engine::Ast, "smtlite");
  CDiffRun Ir = runMiniC(Src, "bad", SymExecOptions::Engine::Ir, "smtlite");
  EXPECT_EQ(Ast.Render, Ir.Render);
  EXPECT_EQ(Ast.SolverQueries, Ir.SolverQueries);
  EXPECT_EQ(Ast.Fallbacks, 0u);
  EXPECT_EQ(Ir.Fallbacks, 1u);
  EXPECT_EQ(Ir.ExecPaths, 0u);
  // The walker really warned, so the fallback path was exercised.
  bool Warned = false;
  for (const std::string &S : Ast.Render)
    if (S.find("not an lvalue") != std::string::npos)
      Warned = true;
  EXPECT_TRUE(Warned);
}

TEST(CIrDiffFallbackTest, LoweredBodiesAreCachedPerFunction) {
  // Recursion re-enters the same body: the second entry must be served
  // from the per-function bytecode cache (hits), not re-lowered
  // (misses).
  const std::string Src = R"(int down(int k) {
  if (k > 0) { return down(k - 1); }
  return 0;
}
)";
  CDiffRun Ir = runMiniC(Src, "down", SymExecOptions::Engine::Ir, "smtlite");
  EXPECT_EQ(Ir.Fallbacks, 0u);
  EXPECT_EQ(Ir.LowerMisses, 1u);
  EXPECT_GT(Ir.LowerHits, 0u);
  CDiffRun Ast = runMiniC(Src, "down", SymExecOptions::Engine::Ast, "smtlite");
  EXPECT_EQ(Ast.Render, Ir.Render);
  EXPECT_EQ(Ast.SolverQueries, Ir.SolverQueries);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CIrDiffTest, ::testing::Values(1u, 2u));

//===----------------------------------------------------------------------===//
// Full stack: MIXY corpus payload bytes across engines
//===----------------------------------------------------------------------===//

TEST(CIrServiceDiffTest, MixyCorpusPayloadsAreByteIdentical) {
  // Every built-in corpus program through the full MIXY analysis, in
  // every output format the daemon serves: --exec=ir must produce the
  // same bytes as --exec=ast end to end.
  const struct {
    const char *Spec;
    service::Format Fmt;
    bool Explain;
  } Cases[] = {
      {"case1", service::Format::Text, true},
      {"case1", service::Format::Json, false},
      {"case2", service::Format::Text, false},
      {"case2", service::Format::Sarif, false},
      {"case3", service::Format::Text, true},
      {"case4", service::Format::Sarif, false},
      {"vsftpd", service::Format::Text, true},
      {"vsftpd", service::Format::Json, false},
      {"vsftpd", service::Format::Sarif, false},
  };
  for (const auto &C : Cases) {
    service::AnalysisRequest Resolve;
    Resolve.Corpus = C.Spec;
    std::string Source, Error;
    ASSERT_TRUE(service::AnalysisService::resolveInput(Resolve, Source, Error))
        << C.Spec << ": " << Error;

    auto RunWith = [&](SymExecOptions::Engine Mode) {
      service::AnalysisService Svc;
      service::AnalysisRequest Req;
      Req.ToolKind = service::Tool::Mixy;
      Req.Source = Source;
      Req.HasSource = true;
      Req.OutputFormat = C.Fmt;
      Req.Explain = C.Explain;
      Req.ExecMode = Mode;
      service::AnalysisResponse Resp = Svc.run(Req);
      return std::make_tuple(Resp.Exit, Resp.Payload, Resp.ErrorText,
                             Resp.Warnings, Resp.Accepted);
    };
    EXPECT_EQ(RunWith(SymExecOptions::Engine::Ast),
              RunWith(SymExecOptions::Engine::Ir))
        << C.Spec;
  }
}

} // namespace
