//===--- InterpTest.cpp - Tests for the concrete interpreter --------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "concrete/Interp.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace mix;

namespace {

class InterpTest : public ::testing::Test {
protected:
  EvalResult evalSource(std::string_view Source, const ConcEnv &Env = {}) {
    const Expr *E = parseExpression(Source, Ctx, Diags);
    EXPECT_NE(E, nullptr) << Diags.str();
    if (!E)
      return EvalResult::error("parse failure");
    ConcMemory Mem;
    return evaluate(E, Env, Mem);
  }

  AstContext Ctx;
  DiagnosticEngine Diags;
};

} // namespace

TEST_F(InterpTest, Arithmetic) {
  EvalResult R = evalSource("1 + 2 - 4");
  ASSERT_FALSE(R.IsError);
  EXPECT_EQ(R.Value.asInt(), -1);
}

TEST_F(InterpTest, BooleansAndComparisons) {
  EXPECT_TRUE(evalSource("1 < 2").Value.asBool());
  EXPECT_FALSE(evalSource("2 <= 1").Value.asBool());
  EXPECT_TRUE(evalSource("1 = 1").Value.asBool());
  EXPECT_TRUE(evalSource("true and not false").Value.asBool());
  EXPECT_TRUE(evalSource("false or true").Value.asBool());
}

TEST_F(InterpTest, Conditionals) {
  EXPECT_EQ(evalSource("if 1 < 2 then 10 else 20").Value.asInt(), 10);
  EXPECT_EQ(evalSource("if 2 < 1 then 10 else 20").Value.asInt(), 20);
}

TEST_F(InterpTest, LetAndShadowing) {
  EXPECT_EQ(evalSource("let x = 1 in let x = x + 1 in x").Value.asInt(), 2);
}

TEST_F(InterpTest, References) {
  EXPECT_EQ(evalSource("let r = ref 5 in !r").Value.asInt(), 5);
  EXPECT_EQ(evalSource("let r = ref 0 in (r := 7; !r)").Value.asInt(), 7);
  EXPECT_EQ(
      evalSource("let r = ref 0 in (r := 1; r := !r + 1; !r)").Value.asInt(),
      2);
  // Aliasing through a second name.
  EXPECT_EQ(evalSource("let r = ref 0 in let s = r in (s := 9; !r)")
                .Value.asInt(),
            9);
}

TEST_F(InterpTest, Functions) {
  EXPECT_EQ(
      evalSource("(fun (x: int) : int -> x + x) 21").Value.asInt(), 42);
  EXPECT_EQ(evalSource("let add = fun (a: int) : int -> a + 1 in "
                       "add (add 40)")
                .Value.asInt(),
            42);
  // Closures capture their environment.
  EXPECT_EQ(evalSource("let y = 10 in "
                       "let addy = fun (x: int) : int -> x + y in "
                       "let y = 999 in addy 5")
                .Value.asInt(),
            15);
}

TEST_F(InterpTest, BlocksAreTransparent) {
  EXPECT_EQ(evalSource("{t 1 + 2 t}").Value.asInt(), 3);
  EXPECT_EQ(evalSource("{s 1 + 2 s}").Value.asInt(), 3);
  EXPECT_EQ(evalSource("{t {s {t 7 t} s} t}").Value.asInt(), 7);
}

TEST_F(InterpTest, RuntimeTypeErrors) {
  EXPECT_TRUE(evalSource("1 + true").IsError);
  EXPECT_TRUE(evalSource("if 3 then 1 else 2").IsError);
  EXPECT_TRUE(evalSource("!5").IsError);
  EXPECT_TRUE(evalSource("true 3").IsError);
  EXPECT_TRUE(evalSource("x").IsError);
  EXPECT_TRUE(evalSource("not 0").IsError);
  EXPECT_TRUE(evalSource("1 = true").IsError);
}

TEST_F(InterpTest, ErrorsShortCircuit) {
  // Evaluation is left-to-right; the error in the first operand stops
  // the sequence before the write happens.
  EXPECT_TRUE(evalSource("(1 + true); 2").IsError);
  EXPECT_TRUE(evalSource("let r = ref 0 in ((!1); r := 5)").IsError);
}

TEST_F(InterpTest, EnvironmentInputs) {
  ConcEnv Env;
  Env["x"] = ConcValue::intValue(5);
  Env["b"] = ConcValue::boolValue(true);
  EXPECT_EQ(evalSource("x + 1", Env).Value.asInt(), 6);
  EXPECT_EQ(evalSource("if b then x else 0", Env).Value.asInt(), 5);
}

TEST_F(InterpTest, MemoryThreading) {
  // Dead-branch writes must not happen.
  EXPECT_EQ(evalSource("let r = ref 0 in "
                       "((if false then r := 1 else 0); !r)")
                .Value.asInt(),
            0);
}
