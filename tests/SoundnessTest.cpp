//===--- SoundnessTest.cpp - Property tests for MIX soundness -------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// Theorem 1 (MIX Soundness), property-tested: programs accepted by the
// mixed analysis never evaluate to the error token under the concrete
// big-step semantics, from any environment conforming to Gamma. A second
// property cross-checks the symbolic executor against the interpreter on
// closed programs (soundness part 2, specialized to concrete inputs).
//
//===----------------------------------------------------------------------===//

#include "ProgramGen.h"

#include "concrete/Interp.h"
#include "lang/AstPrinter.h"
#include "mix/MixChecker.h"
#include "symexec/SymExecutor.h"

#include <gtest/gtest.h>

#include <random>

using namespace mix;



/// Theorem 1 as a property: MIX-accepted implies no concrete error.
class MixSoundnessTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(MixSoundnessTest, AcceptedProgramsNeverGoWrong) {
  std::mt19937 Rng(GetParam());
  unsigned Accepted = 0;
  for (int Round = 0; Round != 60; ++Round) {
    AstContext Ctx;
    DiagnosticEngine Diags;
    testgen::ProgramGenerator Gen(Ctx, Rng, /*AllowBlocks=*/true);
    testgen::ProgramGenerator::Scope Scope;
    Scope.IntVars = {"x", "y"};
    Scope.BoolVars = {"b"};
    Scope.RefVars = {"p"};
    const Expr *Program = Rng() % 2 ? Gen.genInt(Scope, 4)
                                    : Gen.genBool(Scope, 4);

    TypeEnv Gamma;
    Gamma["x"] = Ctx.types().intType();
    Gamma["y"] = Ctx.types().intType();
    Gamma["b"] = Ctx.types().boolType();
    Gamma["p"] = Ctx.types().refType(Ctx.types().intType());

    MixChecker Mix(Ctx.types(), Diags);
    const Type *T = Mix.checkTyped(Program, Gamma);
    if (!T)
      continue; // rejected: soundness says nothing
    ++Accepted;

    for (int Trial = 0; Trial != 10; ++Trial) {
      ConcMemory Mem;
      ConcEnv Env = testgen::makeConcreteEnv(Rng, Mem);
      EvalResult R = evaluate(Program, Env, Mem);
      ASSERT_FALSE(R.IsError)
          << "MIX accepted a program that crashed: " << R.ErrorMessage
          << "\nprogram: " << printExpr(Program);
      // The value's runtime shape matches the static type.
      if (T->isInt()) {
        EXPECT_TRUE(R.Value.isInt()) << printExpr(Program);
      } else if (T->isBool()) {
        EXPECT_TRUE(R.Value.isBool()) << printExpr(Program);
      }
    }
  }
  // The property must not be vacuous.
  EXPECT_GT(Accepted, 10u) << "generator produced too few accepted programs";
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixSoundnessTest,
                         ::testing::Values(101u, 202u, 303u, 404u));

/// Theorem 1 across the executor's option space: the defer strategy, the
/// effect-limited havoc refinement, and the precise dereference rule must
/// all preserve soundness (each weakens a premise the proof used, so the
/// refinements are prime suspects for latent unsoundness).
class MixOptionSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(MixOptionSoundnessTest, RefinementsPreserveSoundness) {
  int Combo = GetParam();
  MixOptions Opts;
  Opts.Exec.Strat = (Combo & 1) ? SymExecOptions::Strategy::Defer
                                : SymExecOptions::Strategy::Fork;
  Opts.Exec.Havoc = (Combo & 2)
                        ? SymExecOptions::HavocPolicy::WriteEffects
                        : SymExecOptions::HavocPolicy::FullMemory;
  Opts.Exec.PreciseDeref = (Combo & 4) != 0;
  if (Combo & 8)
    Opts.Explore = MixOptions::Exploration::Concolic;

  std::mt19937 Rng(9000u + (unsigned)Combo);
  unsigned Accepted = 0;
  for (int Round = 0; Round != 60; ++Round) {
    AstContext Ctx;
    DiagnosticEngine Diags;
    testgen::ProgramGenerator Gen(Ctx, Rng, /*AllowBlocks=*/true);
    testgen::ProgramGenerator::Scope Scope;
    Scope.IntVars = {"x", "y"};
    Scope.BoolVars = {"b"};
    Scope.RefVars = {"p"};
    const Expr *Program =
        Rng() % 2 ? Gen.genInt(Scope, 4) : Gen.genBool(Scope, 4);

    TypeEnv Gamma;
    Gamma["x"] = Ctx.types().intType();
    Gamma["y"] = Ctx.types().intType();
    Gamma["b"] = Ctx.types().boolType();
    Gamma["p"] = Ctx.types().refType(Ctx.types().intType());

    MixChecker Mix(Ctx.types(), Diags, Opts);
    const Type *T = Mix.checkTyped(Program, Gamma);
    if (!T)
      continue;
    ++Accepted;

    for (int Trial = 0; Trial != 8; ++Trial) {
      ConcMemory Mem;
      ConcEnv Env = testgen::makeConcreteEnv(Rng, Mem);
      EvalResult R = evaluate(Program, Env, Mem);
      ASSERT_FALSE(R.IsError)
          << "combo " << Combo << " accepted a crashing program: "
          << R.ErrorMessage << "\nprogram: " << printExpr(Program);
      if (T->isInt()) {
        EXPECT_TRUE(R.Value.isInt()) << printExpr(Program);
      } else if (T->isBool()) {
        EXPECT_TRUE(R.Value.isBool()) << printExpr(Program);
      }
    }
  }
  EXPECT_GT(Accepted, 10u) << "combo " << Combo << " accepted too little";
}

INSTANTIATE_TEST_SUITE_P(Combos, MixOptionSoundnessTest,
                         ::testing::Range(0, 16));

/// Symbolic execution soundness, specialized to concrete inputs: on
/// closed, typed-block-free programs the executor is a (precise)
/// interpreter and must agree with the big-step semantics.
class ExecutorAgreementTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ExecutorAgreementTest, ExecutorMatchesInterpreterOnClosedPrograms) {
  std::mt19937 Rng(GetParam());
  unsigned Compared = 0;
  for (int Round = 0; Round != 80; ++Round) {
    AstContext Ctx;
    DiagnosticEngine Diags;
    testgen::ProgramGenerator Gen(Ctx, Rng, /*AllowBlocks=*/false);
    testgen::ProgramGenerator::Scope Scope; // closed: no free variables
    const Expr *Program =
        Rng() % 2 ? Gen.genInt(Scope, 4) : Gen.genBool(Scope, 4);

    ConcMemory Mem;
    EvalResult Conc = evaluate(Program, {}, Mem);

    SymArena Arena(Ctx.types());
    SymExecutor Exec(Arena, Diags);
    SymExecResult Sym = Exec.run(Program, {});

    if (Conc.IsError) {
      // Closed generated programs are well-typed by construction, so this
      // should not happen; if it does, the executor must agree.
      ASSERT_EQ(Sym.Paths.size(), 1u);
      EXPECT_TRUE(Sym.Paths[0].IsError);
      continue;
    }
    ASSERT_EQ(Sym.Paths.size(), 1u)
        << "closed program forked: " << printExpr(Program);
    const PathResult &P = Sym.Paths[0];
    ASSERT_FALSE(P.IsError)
        << P.ErrorMessage << "\nprogram: " << printExpr(Program);
    ++Compared;
    if (Conc.Value.isInt()) {
      ASSERT_EQ(P.Value->kind(), SymKind::IntConst) << printExpr(Program);
      EXPECT_EQ(P.Value->intValue(), Conc.Value.asInt())
          << printExpr(Program);
    } else if (Conc.Value.isBool()) {
      ASSERT_EQ(P.Value->kind(), SymKind::BoolConst) << printExpr(Program);
      EXPECT_EQ(P.Value->boolValue(), Conc.Value.asBool())
          << printExpr(Program);
    }
  }
  EXPECT_GT(Compared, 40u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorAgreementTest,
                         ::testing::Values(11u, 22u, 33u, 44u));

/// Classic type soundness on block-free programs: checker-accepted
/// implies no runtime error (statement 1 of Theorem 1).
class TypeSoundnessTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(TypeSoundnessTest, WellTypedProgramsDoNotGoWrong) {
  std::mt19937 Rng(GetParam());
  unsigned Accepted = 0;
  for (int Round = 0; Round != 80; ++Round) {
    AstContext Ctx;
    DiagnosticEngine Diags;
    testgen::ProgramGenerator Gen(Ctx, Rng, /*AllowBlocks=*/false);
    testgen::ProgramGenerator::Scope Scope;
    Scope.IntVars = {"x"};
    Scope.BoolVars = {"b"};
    Scope.RefVars = {"p"};
    const Expr *Program =
        Rng() % 2 ? Gen.genInt(Scope, 4) : Gen.genBool(Scope, 4);

    TypeEnv Gamma;
    Gamma["x"] = Ctx.types().intType();
    Gamma["b"] = Ctx.types().boolType();
    Gamma["p"] = Ctx.types().refType(Ctx.types().intType());

    TypeChecker Checker(Ctx.types(), Diags);
    if (!Checker.check(Program, Gamma))
      continue;
    ++Accepted;

    ConcMemory Mem;
    ConcEnv Env;
    Env["x"] = ConcValue::intValue((long long)(Rng() % 15) - 7);
    Env["b"] = ConcValue::boolValue(Rng() % 2 == 0);
    Env["p"] = ConcValue::locValue(Mem.allocate(ConcValue::intValue(1)));
    EvalResult R = evaluate(Program, Env, Mem);
    EXPECT_FALSE(R.IsError)
        << R.ErrorMessage << "\nprogram: " << printExpr(Program);
  }
  EXPECT_GT(Accepted, 30u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TypeSoundnessTest,
                         ::testing::Values(5u, 6u, 7u, 8u));
