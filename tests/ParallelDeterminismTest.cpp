//===--- ParallelDeterminismTest.cpp - jobs=1 vs jobs=8 agreement ---------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// Parallelism must not change what the analyses say. These properties pin
// that down three ways: (1) on random MIX programs, the Jobs=8 checker
// produces the same verdict and the same diagnostic multiset as the
// serial checker; (2) Theorem 1 survives — programs the parallel checker
// accepts never error under the concrete semantics; (3) the MIXY
// whole-program analysis emits the same warning set at jobs=1 and
// jobs=8 on the vsftpd-mini corpus, and repeated parallel runs are
// byte-identical to each other (run-to-run determinism, not just
// serial-parallel agreement).
//
//===----------------------------------------------------------------------===//

#include "ProgramGen.h"

#include "cfront/CParser.h"
#include "concrete/Interp.h"
#include "lang/AstPrinter.h"
#include "mix/MixChecker.h"
#include "mixy/Mixy.h"
#include "mixy/VsftpdMini.h"
#include "provenance/Provenance.h"
#include "provenance/Sarif.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

using namespace mix;

namespace {

/// All diagnostics of \p Diags rendered and sorted — the multiset two
/// runs must agree on (order across sibling paths is an implementation
/// detail; the *set* of complaints is the contract).
std::vector<std::string> sortedDiagnostics(const DiagnosticEngine &Diags) {
  std::vector<std::string> Out;
  for (const Diagnostic &D : Diags.diagnostics())
    Out.push_back(D.str());
  std::sort(Out.begin(), Out.end());
  return Out;
}

/// Diagnostics in emission order — what run-to-run determinism pins.
std::vector<std::string> orderedDiagnostics(const DiagnosticEngine &Diags) {
  std::vector<std::string> Out;
  for (const Diagnostic &D : Diags.diagnostics())
    Out.push_back(D.str());
  return Out;
}

std::string verdictOf(const Type *T) { return T ? T->str() : "<rejected>"; }

} // namespace

/// Property: for random programs, MixChecker with Jobs=8 agrees with the
/// serial checker on the verdict and on the diagnostic multiset.
class MixParallelAgreementTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(MixParallelAgreementTest, ParallelMatchesSerialOnRandomPrograms) {
  std::mt19937 Rng(GetParam());
  unsigned Accepted = 0, Rejected = 0;
  for (int Round = 0; Round != 50; ++Round) {
    AstContext Ctx;
    testgen::ProgramGenerator Gen(Ctx, Rng, /*AllowBlocks=*/true);
    testgen::ProgramGenerator::Scope Scope;
    Scope.IntVars = {"x", "y"};
    Scope.BoolVars = {"b"};
    Scope.RefVars = {"p"};
    const Expr *Program =
        Rng() % 2 ? Gen.genInt(Scope, 4) : Gen.genBool(Scope, 4);

    TypeEnv Gamma;
    Gamma["x"] = Ctx.types().intType();
    Gamma["y"] = Ctx.types().intType();
    Gamma["b"] = Ctx.types().boolType();
    Gamma["p"] = Ctx.types().refType(Ctx.types().intType());

    DiagnosticEngine SerialDiags;
    MixOptions SerialOpts;
    SerialOpts.Jobs = 1;
    MixChecker Serial(Ctx.types(), SerialDiags, SerialOpts);
    const Type *SerialT = Serial.checkTyped(Program, Gamma);

    DiagnosticEngine ParDiags;
    MixOptions ParOpts;
    ParOpts.Jobs = 8;
    MixChecker Parallel(Ctx.types(), ParDiags, ParOpts);
    const Type *ParT = Parallel.checkTyped(Program, Gamma);

    ASSERT_EQ(verdictOf(SerialT), verdictOf(ParT))
        << "verdict diverged on: " << printExpr(Program);
    ASSERT_EQ(sortedDiagnostics(SerialDiags), sortedDiagnostics(ParDiags))
        << "diagnostics diverged on: " << printExpr(Program);
    SerialT ? ++Accepted : ++Rejected;
  }
  // The generator skews well-typed, so only the acceptance side must be
  // non-vacuous here; RejectedProgramsAgree covers the rejection side
  // deterministically.
  EXPECT_GT(Accepted, 5u);
  (void)Rejected;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixParallelAgreementTest,
                         ::testing::Values(1301u, 1402u, 1503u, 1604u));

/// The rejection side, deterministically: ill-typed and feasibly-crashing
/// programs draw identical verdicts and identical diagnostics (including
/// the concrete witness, which the parallel path re-derives on the shared
/// solver) at Jobs=1 and Jobs=8.
TEST(MixParallelAgreementTest, RejectedProgramsAgree) {
  AstContext Ctx;
  TypeEnv Gamma;
  Gamma["x"] = Ctx.types().intType();

  // {s if x < 0 then 1 + true else 2 s} — the error path is feasible
  // exactly when x < 0, so rejection needs the solver and the diagnostic
  // carries a witness model.
  const Expr *Guard = Ctx.make<BinaryExpr>(
      SourceLoc(), BinaryOp::Lt, Ctx.make<VarExpr>(SourceLoc(), "x"),
      Ctx.make<IntLitExpr>(SourceLoc(), 0));
  const Expr *Bad = Ctx.make<BinaryExpr>(
      SourceLoc(), BinaryOp::Add, Ctx.make<IntLitExpr>(SourceLoc(), 1),
      Ctx.make<BoolLitExpr>(SourceLoc(), true));
  const Expr *Programs[] = {
      Ctx.make<BlockExpr>(
          SourceLoc(), BlockKind::Symbolic,
          Ctx.make<IfExpr>(SourceLoc(), Guard, Bad,
                           Ctx.make<IntLitExpr>(SourceLoc(), 2))),
      Ctx.make<BlockExpr>(SourceLoc(), BlockKind::Symbolic, Bad),
      Bad,
  };

  for (const Expr *Program : Programs) {
    DiagnosticEngine SerialDiags;
    MixOptions SerialOpts;
    SerialOpts.Jobs = 1;
    MixChecker Serial(Ctx.types(), SerialDiags, SerialOpts);
    const Type *SerialT = Serial.checkTyped(Program, Gamma);

    DiagnosticEngine ParDiags;
    MixOptions ParOpts;
    ParOpts.Jobs = 8;
    MixChecker Parallel(Ctx.types(), ParDiags, ParOpts);
    const Type *ParT = Parallel.checkTyped(Program, Gamma);

    EXPECT_EQ(SerialT, nullptr) << printExpr(Program);
    EXPECT_EQ(ParT, nullptr) << printExpr(Program);
    EXPECT_FALSE(SerialDiags.empty());
    // Byte-identical including order: rejection reports happen at the
    // join in path order regardless of which worker classified the path.
    EXPECT_EQ(orderedDiagnostics(SerialDiags), orderedDiagnostics(ParDiags))
        << printExpr(Program);
  }
}

/// Theorem 1 through the parallel path: programs the Jobs=8 checker
/// accepts never evaluate to the error token.
TEST(MixParallelSoundnessTest, ParallelAcceptedProgramsNeverGoWrong) {
  std::mt19937 Rng(77001u);
  unsigned Accepted = 0;
  for (int Round = 0; Round != 120; ++Round) {
    AstContext Ctx;
    DiagnosticEngine Diags;
    testgen::ProgramGenerator Gen(Ctx, Rng, /*AllowBlocks=*/true);
    testgen::ProgramGenerator::Scope Scope;
    Scope.IntVars = {"x", "y"};
    Scope.BoolVars = {"b"};
    Scope.RefVars = {"p"};
    const Expr *Program =
        Rng() % 2 ? Gen.genInt(Scope, 4) : Gen.genBool(Scope, 4);

    TypeEnv Gamma;
    Gamma["x"] = Ctx.types().intType();
    Gamma["y"] = Ctx.types().intType();
    Gamma["b"] = Ctx.types().boolType();
    Gamma["p"] = Ctx.types().refType(Ctx.types().intType());

    MixOptions Opts;
    Opts.Jobs = 8;
    MixChecker Mix(Ctx.types(), Diags, Opts);
    const Type *T = Mix.checkTyped(Program, Gamma);
    if (!T)
      continue;
    ++Accepted;

    for (int Trial = 0; Trial != 6; ++Trial) {
      ConcMemory Mem;
      ConcEnv Env = testgen::makeConcreteEnv(Rng, Mem);
      EvalResult R = evaluate(Program, Env, Mem);
      ASSERT_FALSE(R.IsError)
          << "parallel MIX accepted a crashing program: " << R.ErrorMessage
          << "\nprogram: " << printExpr(Program);
      if (T->isInt()) {
        EXPECT_TRUE(R.Value.isInt()) << printExpr(Program);
      } else if (T->isBool()) {
        EXPECT_TRUE(R.Value.isBool()) << printExpr(Program);
      }
    }
  }
  EXPECT_GT(Accepted, 20u) << "generator produced too few accepted programs";
}

/// MIXY whole-program analysis: jobs=1 and jobs=8 must report the same
/// warnings on the annotated vsftpd-mini corpus with symbolic filler
/// blocks, and the parallel run must be reproducible verbatim.
TEST(MixyParallelDeterminismTest, CorpusWarningsMatchAcrossJobCounts) {
  using namespace mix::c;
  std::string Source =
      corpus::vsftpdScaled(/*Annotated=*/true, /*Modules=*/6, /*Symbolic=*/4);

  auto Analyze = [&](unsigned Jobs, std::vector<std::string> &Ordered,
                     std::vector<std::string> &Sorted) -> unsigned {
    CAstContext Ctx;
    DiagnosticEngine Diags;
    const CProgram *P = parseC(Source, Ctx, Diags);
    EXPECT_NE(P, nullptr);
    MixyOptions Opts;
    Opts.Jobs = Jobs;
    MixyAnalysis Analysis(*P, Ctx, Diags, Opts);
    unsigned Warnings =
        Analysis.run(MixyAnalysis::StartMode::Typed, "filler_main");
    Ordered = orderedDiagnostics(Diags);
    Sorted = sortedDiagnostics(Diags);
    return Warnings;
  };

  std::vector<std::string> SerialOrd, SerialSorted;
  unsigned SerialWarnings = Analyze(1, SerialOrd, SerialSorted);

  std::vector<std::string> Par1Ord, Par1Sorted;
  unsigned Par1Warnings = Analyze(8, Par1Ord, Par1Sorted);

  std::vector<std::string> Par2Ord, Par2Sorted;
  unsigned Par2Warnings = Analyze(8, Par2Ord, Par2Sorted);

  // Serial-parallel agreement: same warning count, same diagnostic set.
  EXPECT_EQ(SerialWarnings, Par1Warnings);
  EXPECT_EQ(SerialSorted, Par1Sorted);

  // Run-to-run determinism of the parallel engine: byte-identical,
  // including order (round diagnostics merge in key order, not worker
  // order).
  EXPECT_EQ(Par1Warnings, Par2Warnings);
  EXPECT_EQ(Par1Ord, Par2Ord);
}

/// The machine-output contract: the sorted JSON and SARIF documents the
/// drivers emit must be byte-identical across job counts, even though
/// the engine's emission order may differ (the renderers sort top-level
/// diagnostics by location and id). Provenance recording is on, so the
/// SARIF comparison also pins codeFlows and property bags.
TEST(MixyParallelDeterminismTest, SortedMachineOutputIsByteIdenticalAcrossJobs) {
  using namespace mix::c;
  std::string Source = corpus::vsftpdFull(/*Annotated=*/false);

  auto Render = [&](unsigned Jobs, std::string &Json, std::string &Sarif) {
    CAstContext Ctx;
    DiagnosticEngine Diags;
    const CProgram *P = parseC(Source, Ctx, Diags);
    ASSERT_NE(P, nullptr);
    prov::ProvenanceSink Sink;
    MixyOptions Opts;
    Opts.Jobs = Jobs;
    Opts.Prov = &Sink;
    MixyAnalysis Analysis(*P, Ctx, Diags, Opts);
    ASSERT_GT(Analysis.run(MixyAnalysis::StartMode::Typed), 0u);
    Json = Diags.renderJSON(/*Sorted=*/true);
    prov::SarifOptions SO;
    SO.ToolName = "mixyc";
    SO.ArtifactUri = "corpus.c";
    Sarif = prov::renderSarif(Diags, SO);
  };

  std::string SerialJson, SerialSarif;
  Render(1, SerialJson, SerialSarif);
  std::string ParJson, ParSarif;
  Render(8, ParJson, ParSarif);
  std::string Par2Json, Par2Sarif;
  Render(8, Par2Json, Par2Sarif);

  // Serial vs parallel: the sorted renderers erase scheduling order.
  EXPECT_EQ(SerialJson, ParJson);
  EXPECT_EQ(SerialSarif, ParSarif);
  // Run-to-run at jobs=8: trivially stable given the above, asserted
  // separately so a failure distinguishes nondeterminism from skew.
  EXPECT_EQ(ParJson, Par2Json);
  EXPECT_EQ(ParSarif, Par2Sarif);
}

/// Same contract on the plain (unscaled) case studies: every entry in
/// the bundled corpus agrees between jobs=1 and jobs=8.
TEST(MixyParallelDeterminismTest, CaseStudiesAgreeAcrossJobCounts) {
  using namespace mix::c;
  const std::string Sources[] = {
      corpus::vsftpdScaled(/*Annotated=*/true, 2, 2),
      corpus::vsftpdScaled(/*Annotated=*/true, 4, 0),
      corpus::vsftpdScaled(/*Annotated=*/false, 3, 3),
  };
  for (const std::string &Source : Sources) {
    std::vector<std::string> Runs[2];
    unsigned Warnings[2] = {0, 0};
    unsigned JobCounts[2] = {1, 8};
    for (int I = 0; I != 2; ++I) {
      CAstContext Ctx;
      DiagnosticEngine Diags;
      const CProgram *P = parseC(Source, Ctx, Diags);
      ASSERT_NE(P, nullptr);
      MixyOptions Opts;
      Opts.Jobs = JobCounts[I];
      MixyAnalysis Analysis(*P, Ctx, Diags, Opts);
      Warnings[I] = Analysis.run(MixyAnalysis::StartMode::Typed, "filler_main");
      Runs[I] = sortedDiagnostics(Diags);
    }
    EXPECT_EQ(Warnings[0], Warnings[1]);
    EXPECT_EQ(Runs[0], Runs[1]);
  }
}
