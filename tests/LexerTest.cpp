//===--- LexerTest.cpp - Tests for the core-language lexer ----------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <gtest/gtest.h>

using namespace mix;

namespace {

std::vector<TokenKind> lexAll(std::string_view Source) {
  DiagnosticEngine Diags;
  Lexer Lex(Source, Diags);
  std::vector<TokenKind> Kinds;
  for (;;) {
    Token T = Lex.next();
    Kinds.push_back(T.Kind);
    if (T.is(TokenKind::Eof) || T.is(TokenKind::Error))
      break;
  }
  return Kinds;
}

} // namespace

TEST(LexerTest, EmptyInput) {
  auto Kinds = lexAll("");
  ASSERT_EQ(Kinds.size(), 1u);
  EXPECT_EQ(Kinds[0], TokenKind::Eof);
}

TEST(LexerTest, Keywords) {
  auto Kinds = lexAll("let in if then else ref fun not and or true false");
  std::vector<TokenKind> Expected = {
      TokenKind::KwLet,  TokenKind::KwIn,   TokenKind::KwIf,
      TokenKind::KwThen, TokenKind::KwElse, TokenKind::KwRef,
      TokenKind::KwFun,  TokenKind::KwNot,  TokenKind::KwAnd,
      TokenKind::KwOr,   TokenKind::KwTrue, TokenKind::KwFalse,
      TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(LexerTest, IdentifiersVersusKeywords) {
  DiagnosticEngine Diags;
  Lexer Lex("letx reff x' _y", Diags);
  Token T = Lex.next();
  EXPECT_EQ(T.Kind, TokenKind::Ident);
  EXPECT_EQ(T.Text, "letx");
  T = Lex.next();
  EXPECT_EQ(T.Text, "reff");
  T = Lex.next();
  EXPECT_EQ(T.Text, "x'");
  T = Lex.next();
  EXPECT_EQ(T.Text, "_y");
}

TEST(LexerTest, IntegerLiteral) {
  DiagnosticEngine Diags;
  Lexer Lex("12345", Diags);
  Token T = Lex.next();
  EXPECT_EQ(T.Kind, TokenKind::IntLit);
  EXPECT_EQ(T.IntValue, 12345);
}

TEST(LexerTest, OperatorsAndPunctuation) {
  auto Kinds = lexAll("+ - = < <= ( ) ! := : ; ->");
  std::vector<TokenKind> Expected = {
      TokenKind::Plus,       TokenKind::Minus, TokenKind::Equal,
      TokenKind::Less,       TokenKind::LessEqual, TokenKind::LParen,
      TokenKind::RParen,     TokenKind::Bang,  TokenKind::ColonEqual,
      TokenKind::Colon,      TokenKind::Semi,  TokenKind::Arrow,
      TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(LexerTest, BlockDelimiters) {
  auto Kinds = lexAll("{t 1 t} {s 2 s}");
  std::vector<TokenKind> Expected = {
      TokenKind::LBraceTyped,    TokenKind::IntLit, TokenKind::RBraceTyped,
      TokenKind::LBraceSymbolic, TokenKind::IntLit, TokenKind::RBraceSymbolic,
      TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(LexerTest, BlockMarkerNotConfusedWithIdentifier) {
  // `{token` must lex as '{'-error (no bare '{' in the language) rather
  // than '{t' followed by "oken" — the marker letter must be standalone.
  DiagnosticEngine Diags;
  Lexer Lex("{token", Diags);
  Token T = Lex.next();
  EXPECT_EQ(T.Kind, TokenKind::Error);
}

TEST(LexerTest, NestedComments) {
  auto Kinds = lexAll("1 (* outer (* inner *) still out *) 2");
  std::vector<TokenKind> Expected = {TokenKind::IntLit, TokenKind::IntLit,
                                     TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(LexerTest, UnterminatedCommentReported) {
  DiagnosticEngine Diags;
  Lexer Lex("(* never closed", Diags);
  Token T = Lex.next();
  EXPECT_EQ(T.Kind, TokenKind::Eof);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, SourceLocations) {
  DiagnosticEngine Diags;
  Lexer Lex("a\n  b", Diags);
  Token A = Lex.next();
  EXPECT_EQ(A.Loc, SourceLoc(1, 1));
  Token B = Lex.next();
  EXPECT_EQ(B.Loc, SourceLoc(2, 3));
}

TEST(LexerTest, UnexpectedCharacterReported) {
  DiagnosticEngine Diags;
  Lexer Lex("#", Diags);
  Token T = Lex.next();
  EXPECT_EQ(T.Kind, TokenKind::Error);
  EXPECT_TRUE(Diags.hasErrors());
}
