//===--- CSymTest.cpp - Tests for the mini-C symbolic executor ------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "cfront/CParser.h"
#include "csym/CSymExecutor.h"
#include "solver/SmtSolver.h"

#include <gtest/gtest.h>

using namespace mix::c;
using mix::DiagnosticEngine;

namespace {

class CSymTest : public ::testing::Test {
protected:
  /// Parses the program and symbolically executes \p Entry; returns the
  /// number of warnings raised by that run.
  unsigned runAndCountWarnings(std::string_view Source,
                               const std::string &Entry,
                               CSymOptions Opts = CSymOptions()) {
    Diags.clear();
    const CProgram *P = parseC(Source, Ctx, Diags);
    EXPECT_NE(P, nullptr) << Diags.str();
    if (!P)
      return ~0u;
    Exec = std::make_unique<CSymExecutor>(*P, Ctx, Diags, Terms, Solver,
                                          Opts);
    Last = Exec->runFunction(P->findFunc(Entry));
    return Last.WarningCount;
  }

  CAstContext Ctx;
  DiagnosticEngine Diags;
  mix::smt::TermArena Terms;
  mix::smt::SmtSolver Solver{Terms};
  std::unique_ptr<CSymExecutor> Exec;
  CSymResult Last;
};

} // namespace

TEST_F(CSymTest, StraightLineNoWarnings) {
  EXPECT_EQ(runAndCountWarnings("int f(int a, int b) { return a + b; }",
                                "f"),
            0u);
  EXPECT_EQ(Last.Paths.size(), 1u);
  EXPECT_TRUE(Last.Paths[0].Returned);
}

TEST_F(CSymTest, DereferenceOfMaybeNullParamWarns) {
  EXPECT_EQ(runAndCountWarnings("int f(int *p) { return *p; }", "f"), 1u);
}

TEST_F(CSymTest, NonnullParamDereferenceIsClean) {
  EXPECT_EQ(runAndCountWarnings("int f(int * nonnull p) { return *p; }",
                                "f"),
            0u);
}

TEST_F(CSymTest, NullCheckEliminatesWarning) {
  // Path sensitivity: the check refines the pointer's null guard.
  EXPECT_EQ(runAndCountWarnings(
                "int f(int *p) { if (p != NULL) return *p; return 0; }",
                "f"),
            0u);
}

TEST_F(CSymTest, InvertedNullCheckStillWarns) {
  EXPECT_EQ(runAndCountWarnings(
                "int f(int *p) { if (p == NULL) return *p; return 0; }",
                "f"),
            1u);
}

TEST_F(CSymTest, DefiniteNullDereference) {
  EXPECT_EQ(runAndCountWarnings("int f(void) { int *p = NULL; return *p; }",
                                "f"),
            1u);
  // The path dies at the definite null dereference.
  EXPECT_TRUE(Last.Paths.empty());
}

TEST_F(CSymTest, MallocResultIsNonnull) {
  EXPECT_EQ(runAndCountWarnings(
                "int f(void) { int *p = (int*) malloc(sizeof(int)); "
                "*p = 3; return *p; }",
                "f"),
            0u);
  ASSERT_EQ(Last.Paths.size(), 1u);
}

TEST_F(CSymTest, StoresAndLoadsRoundTrip) {
  EXPECT_EQ(runAndCountWarnings(
                "int f(void) { int x; x = 41; x = x + 1; return x; }", "f"),
            0u);
  ASSERT_EQ(Last.Paths.size(), 1u);
  ASSERT_TRUE(Last.Paths[0].Ret.isScalar());
  const auto *T = Last.Paths[0].Ret.scalarTerm();
  ASSERT_EQ(T->kind(), mix::smt::TermKind::IntConst);
  EXPECT_EQ(T->value(), 42);
}

TEST_F(CSymTest, BranchesFork) {
  EXPECT_EQ(runAndCountWarnings(
                "int f(int c) { if (c > 0) return 1; else return 2; }",
                "f"),
            0u);
  EXPECT_EQ(Last.Paths.size(), 2u);
}

TEST_F(CSymTest, InfeasibleBranchPruned) {
  EXPECT_EQ(runAndCountWarnings("int f(void) { int x; x = 1;\n"
                                "  if (x == 1) return 10; return 20; }",
                                "f"),
            0u);
  EXPECT_EQ(Last.Paths.size(), 1u);
  ASSERT_TRUE(Last.Paths[0].Ret.isScalar());
  EXPECT_EQ(Last.Paths[0].Ret.scalarTerm()->value(), 10);
}

TEST_F(CSymTest, CorrelatedBranchesStayConsistent) {
  // The dead combination (c && !c) must not produce a third path.
  EXPECT_EQ(runAndCountWarnings(
                "int f(int c) {\n"
                "  int r; r = 0;\n"
                "  if (c > 0) r = 1;\n"
                "  if (c > 0) { if (r == 0) return 99; }\n"
                "  return r;\n"
                "}",
                "f"),
            0u);
  for (const auto &P : Last.Paths) {
    if (!P.Ret.isScalar())
      continue;
    if (P.Ret.scalarTerm()->kind() == mix::smt::TermKind::IntConst) {
      EXPECT_NE(P.Ret.scalarTerm()->value(), 99);
    }
  }
}

TEST_F(CSymTest, WhileLoopsUnrollConcretely) {
  EXPECT_EQ(runAndCountWarnings("int f(void) {\n"
                                "  int n; int acc; n = 3; acc = 0;\n"
                                "  while (n > 0) { acc = acc + n; "
                                "n = n - 1; }\n"
                                "  return acc;\n"
                                "}",
                                "f"),
            0u);
  ASSERT_EQ(Last.Paths.size(), 1u);
  ASSERT_TRUE(Last.Paths[0].Ret.isScalar());
  EXPECT_EQ(Last.Paths[0].Ret.scalarTerm()->value(), 6);
  EXPECT_FALSE(Last.Incomplete);
}

TEST_F(CSymTest, SymbolicLoopHitsBoundAndFlagsIncomplete) {
  CSymOptions Opts;
  Opts.LoopBound = 4;
  EXPECT_EQ(runAndCountWarnings("int f(int n) {\n"
                                "  while (n > 0) { n = n - 1; }\n"
                                "  return n;\n"
                                "}",
                                "f", Opts),
            0u);
  EXPECT_TRUE(Last.Incomplete);
  EXPECT_GE(Last.Paths.size(), 4u);
}

TEST_F(CSymTest, CallsInlineAndReturnValues) {
  EXPECT_EQ(runAndCountWarnings("int inc(int x) { return x + 1; }\n"
                                "int f(void) { return inc(inc(40)); }",
                                "f"),
            0u);
  ASSERT_EQ(Last.Paths.size(), 1u);
  EXPECT_EQ(Last.Paths[0].Ret.scalarTerm()->value(), 42);
}

TEST_F(CSymTest, NonnullAnnotatedExternArgumentChecked) {
  // The sysutil_free pattern: an extern with a nonnull parameter.
  EXPECT_EQ(runAndCountWarnings(
                "void free_ptr(void * nonnull p);\n"
                "void f(int *q) { free_ptr((void*)q); }",
                "f"),
            1u);
  EXPECT_EQ(runAndCountWarnings(
                "void free_ptr(void * nonnull p);\n"
                "void g(int *q) { if (q != NULL) free_ptr((void*)q); }",
                "g"),
            0u);
}

TEST_F(CSymTest, PaperCase1SockaddrClear) {
  // Section 4.5, Case 1: symbolic execution sees that *p_sock is non-null
  // at the sysutil_free call and null only afterwards.
  EXPECT_EQ(runAndCountWarnings(
                "struct sockaddr { int family; };\n"
                "void sysutil_free(void * nonnull p_ptr);\n"
                "void sockaddr_clear(struct sockaddr ** nonnull p_sock) {\n"
                "  if (*p_sock != NULL) {\n"
                "    sysutil_free((void*)*p_sock);\n"
                "    *p_sock = NULL;\n"
                "  }\n"
                "}",
                "sockaddr_clear"),
            0u);
}

TEST_F(CSymTest, StructFieldsThroughPointers) {
  EXPECT_EQ(runAndCountWarnings(
                "struct foo { int bar; int baz; };\n"
                "int f(void) {\n"
                "  struct foo *x = (struct foo*) malloc(sizeof(struct foo));\n"
                "  x->bar = 1;\n"
                "  x->baz = 2;\n"
                "  return x->bar + x->baz;\n"
                "}",
                "f"),
            0u);
  ASSERT_EQ(Last.Paths.size(), 1u);
  EXPECT_EQ(Last.Paths[0].Ret.scalarTerm()->value(), 3);
}

TEST_F(CSymTest, WritesThroughPointerParameters) {
  // Writing through a double pointer updates the lazily-created pointee.
  EXPECT_EQ(runAndCountWarnings(
                "void clear(int **pp) {\n"
                "  if (pp != NULL) { *pp = NULL; }\n"
                "}",
                "clear"),
            0u);
  // Two paths (pp null / non-null); on the non-null path the pointee cell
  // must now hold a definite null.
  ASSERT_EQ(Last.Paths.size(), 2u);
  bool FoundNullWrite = false;
  for (const auto &P : Last.Paths) {
    auto Cell = CSymExecutor::finalCell(P, Last.ParamPointeeLocs[0], "");
    if (!Cell || !Cell->isPtr())
      continue;
    if (!Exec->mayBeNull(P.Path, *Cell))
      continue;
    FoundNullWrite = true;
  }
  EXPECT_TRUE(FoundNullWrite);
}

TEST_F(CSymTest, UnknownFunctionPointerWarns) {
  // Section 4.5, Case 4: calls through symbolic function pointers.
  EXPECT_EQ(runAndCountWarnings("void (*s_exit_func)(void);\n"
                                "void f(void) {\n"
                                "  if (s_exit_func) { (*s_exit_func)(); }\n"
                                "}",
                                "f"),
            1u);
}

TEST_F(CSymTest, KnownFunctionPointerCallExecutes) {
  EXPECT_EQ(runAndCountWarnings("int v;\n"
                                "void set(void) { v = 7; }\n"
                                "void (*fp)(void);\n"
                                "void f(void) { fp = set; (*fp)(); }",
                                "f"),
            0u);
  ASSERT_EQ(Last.Paths.size(), 1u);
  auto Cell = CSymExecutor::finalCell(Last.Paths[0], Exec->globalLoc("v"),
                                      "");
  ASSERT_TRUE(Cell.has_value());
  ASSERT_TRUE(Cell->isScalar());
  EXPECT_EQ(Cell->scalarTerm()->value(), 7);
}

TEST_F(CSymTest, MorrisConditionalWrite) {
  // A write through a two-case pointer conditionally updates both
  // possible targets (Morris's general axiom of assignment).
  EXPECT_EQ(runAndCountWarnings(
                "int a; int b;\n"
                "int f(int c) {\n"
                "  int *p;\n"
                "  if (c > 0) p = &a; else p = &b;\n"
                "  *p = 5;\n"
                "  return a;\n"
                "}",
                "f"),
            0u);
  // Forked at the if: each path does a strong update to one global.
  ASSERT_EQ(Last.Paths.size(), 2u);
}

namespace {

/// A hook that models every MIX(typed) call as "returns fresh nonnull".
class CountingHook : public TypedCallHook {
public:
  bool callTypedFunction(CSymExecutor &Exec, CSymState &State,
                         const CCall *, const CFuncDecl *Callee,
                         const std::vector<CSymValue> &,
                         CSymValue &RetOut) override {
    ++Calls;
    LastCallee = Callee;
    Exec.havocStore(State);
    if (Callee->returnType()->isPointer())
      RetOut = Exec.seededPointer(Callee->returnType(), NullSeed::Nonnull,
                                  "typed-result");
    else
      RetOut = CSymValue::scalar(Exec.terms().freshIntVar("typed-result"));
    return true;
  }
  unsigned Calls = 0;
  const CFuncDecl *LastCallee = nullptr;
};

} // namespace

TEST_F(CSymTest, TypedCallHookIntercepts) {
  Diags.clear();
  const CProgram *P = parseC("int helper(void) MIX(typed) { return 3; }\n"
                             "int f(void) { int g; g = 5; helper(); "
                             "return g; }",
                             Ctx, Diags);
  ASSERT_NE(P, nullptr) << Diags.str();
  CSymExecutor Exec2(*P, Ctx, Diags, Terms, Solver);
  CountingHook Hook;
  Exec2.setTypedCallHook(&Hook);
  CSymResult R = Exec2.runFunction(P->findFunc("f"));
  EXPECT_EQ(Hook.Calls, 1u);
  EXPECT_EQ(Hook.LastCallee, P->findFunc("helper"));
  ASSERT_EQ(R.Paths.size(), 1u);
  // The hook havocked memory: g is no longer the constant 5 but a lazily
  // reinitialized symbolic value.
  ASSERT_TRUE(R.Paths[0].Ret.isScalar());
  EXPECT_NE(R.Paths[0].Ret.scalarTerm()->kind(),
            mix::smt::TermKind::IntConst);
}

TEST_F(CSymTest, WithoutHookTypedFunctionsAreInlined) {
  EXPECT_EQ(runAndCountWarnings("int helper(void) MIX(typed) { return 3; }\n"
                                "int f(void) { return helper(); }",
                                "f"),
            0u);
  ASSERT_EQ(Last.Paths.size(), 1u);
  EXPECT_EQ(Last.Paths[0].Ret.scalarTerm()->value(), 3);
}

TEST_F(CSymTest, StatisticsAccumulate) {
  runAndCountWarnings("int f(int c) { if (c) return 1; return 0; }", "f");
  EXPECT_GT(Exec->stats().PathsExplored, 0u);
}

// === deeper memory-model coverage ============================================

TEST_F(CSymTest, NestedStructFieldPaths) {
  // Value structs inside structs use dotted field paths.
  EXPECT_EQ(runAndCountWarnings(
                "struct inner { int v; };\n"
                "struct outer { struct inner in; int w; };\n"
                "int f(void) {\n"
                "  struct outer o;\n"
                "  o.in.v = 5;\n"
                "  o.w = 2;\n"
                "  return o.in.v + o.w;\n"
                "}",
                "f"),
            0u);
  ASSERT_EQ(Last.Paths.size(), 1u);
  ASSERT_TRUE(Last.Paths[0].Ret.isScalar());
  EXPECT_EQ(Last.Paths[0].Ret.scalarTerm()->value(), 7);
}

TEST_F(CSymTest, PointerFieldsInitializeLazilyByAnnotation) {
  // A nonnull-annotated struct field dereferences cleanly; an
  // unannotated one warns.
  EXPECT_EQ(runAndCountWarnings(
                "struct node { int * nonnull ok; int *risky; };\n"
                "int f(struct node * nonnull n) { return *(n->ok); }",
                "f"),
            0u);
  EXPECT_EQ(runAndCountWarnings(
                "struct node { int * nonnull ok; int *risky; };\n"
                "int g(struct node * nonnull n) { return *(n->risky); }",
                "g"),
            1u);
}

TEST_F(CSymTest, RecursionIsBoundedByCallDepth) {
  CSymOptions Opts;
  Opts.MaxCallDepth = 5;
  EXPECT_EQ(runAndCountWarnings(
                "int count(int n) {\n"
                "  if (n <= 0) return 0;\n"
                "  return 1 + count(n - 1);\n"
                "}",
                "count", Opts),
            0u);
  // Symbolic n exceeds the depth budget on the recursive spine.
  EXPECT_TRUE(Last.Incomplete);
}

TEST_F(CSymTest, GlobalSeedsOverrideDeclarations) {
  Diags.clear();
  const CProgram *P = parseC("int *g;\n"
                             "int f(void) { return *g; }",
                             Ctx, Diags);
  ASSERT_NE(P, nullptr) << Diags.str();
  CSymExecutor Exec2(*P, Ctx, Diags, Terms, Solver);
  // Seeded nonnull: the dereference is clean.
  std::map<std::string, NullSeed> Seeds;
  Seeds["g"] = NullSeed::Nonnull;
  CSymResult R = Exec2.runFunction(P->findFunc("f"), {}, Seeds);
  EXPECT_EQ(R.WarningCount, 0u);
  // Seeded maybe-null: it warns.
  CSymExecutor Exec3(*P, Ctx, Diags, Terms, Solver);
  Seeds["g"] = NullSeed::MayBeNull;
  CSymResult R2 = Exec3.runFunction(P->findFunc("f"), {}, Seeds);
  EXPECT_EQ(R2.WarningCount, 1u);
}

TEST_F(CSymTest, StringLiteralsAreNonNull) {
  EXPECT_EQ(runAndCountWarnings(
                "void free_ptr(void * nonnull p);\n"
                "void f(void) { free_ptr((void*)\"text\"); }",
                "f"),
            0u);
}

TEST_F(CSymTest, WhileOverPointerChainTerminatesAtBound) {
  CSymOptions Opts;
  Opts.LoopBound = 3;
  EXPECT_EQ(runAndCountWarnings(
                "struct node { struct node *next; int v; };\n"
                "int sum(struct node *n) {\n"
                "  int acc;\n  acc = 0;\n"
                "  while (n != NULL) { acc = acc + n->v; n = n->next; }\n"
                "  return acc;\n"
                "}",
                "sum", Opts),
            0u);
  EXPECT_GE(Last.Paths.size(), 3u); // exit after 0, 1, 2 hops...
}

TEST_F(CSymTest, LogicalOperatorsBuildConjunctions) {
  EXPECT_EQ(runAndCountWarnings(
                "int f(int a, int b) {\n"
                "  if (a > 0 && b > 0) return 1;\n"
                "  if (a > 0 || b > 0) return 2;\n"
                "  return 3;\n"
                "}",
                "f"),
            0u);
  // Feasible combinations: (a>0 && b>0), (exactly one positive), (none).
  EXPECT_EQ(Last.Paths.size(), 3u);
}

TEST_F(CSymTest, AddressOfLocalGivesDefinitePointer) {
  EXPECT_EQ(runAndCountWarnings(
                "int f(void) {\n"
                "  int x;\n  x = 5;\n"
                "  int *p = &x;\n"
                "  *p = *p + 1;\n"
                "  return x;\n"
                "}",
                "f"),
            0u);
  ASSERT_EQ(Last.Paths.size(), 1u);
  EXPECT_EQ(Last.Paths[0].Ret.scalarTerm()->value(), 6);
}

TEST_F(CSymTest, NegationAndNotOperators) {
  EXPECT_EQ(runAndCountWarnings(
                "int f(int a) {\n"
                "  if (!(a > 0)) return -1;\n"
                "  return 1;\n"
                "}",
                "f"),
            0u);
  EXPECT_EQ(Last.Paths.size(), 2u);
}

namespace {

/// A deep branch ladder ending in a maybe-null dereference: the shape
/// the incremental assertion stack is built for. Every `if` forks, and
/// each fork's feasibility probes share a long path prefix with its
/// siblings.
constexpr const char *DeepBranchProgram =
    "int f(int *p, int a, int b, int c, int d, int e) {\n"
    "  int s = 0;\n"
    "  if (a > 0) { s = s + 1; } else { s = s - 1; }\n"
    "  if (b > 0) { s = s + 2; } else { s = s - 2; }\n"
    "  if (c > 0) { s = s + 4; } else { s = s - 4; }\n"
    "  if (d > 0) { s = s + 8; } else { s = s - 8; }\n"
    "  if (e > 0) { s = s + 16; } else { s = s - 16; }\n"
    "  if (s > 30) { return *p; }\n"
    "  return s;\n"
    "}";

/// Runs DeepBranchProgram with the given incremental-solver setting on a
/// fresh arena/solver and reports the backend query count plus the
/// rendered diagnostics.
void runDeepBranch(bool Incremental, uint64_t &Queries, std::string &Diag,
                   unsigned &Warnings) {
  CAstContext Ctx;
  DiagnosticEngine Diags;
  mix::smt::TermArena Terms;
  mix::smt::SmtSolver Solver{Terms};
  const CProgram *P = parseC(DeepBranchProgram, Ctx, Diags);
  ASSERT_NE(P, nullptr) << Diags.str();
  CSymOptions Opts;
  Opts.IncrementalSolver = Incremental;
  CSymExecutor Exec(*P, Ctx, Diags, Terms, Solver, Opts);
  CSymResult R = Exec.runFunction(P->findFunc("f"));
  Queries = Solver.queries();
  Diag = Diags.str();
  Warnings = R.WarningCount;
}

} // namespace

TEST(CSymIncrementalTest, FewerQueriesAndIdenticalDiagnostics) {
  uint64_t ScratchQueries = 0, IncQueries = 0;
  std::string ScratchDiag, IncDiag;
  unsigned ScratchWarnings = 0, IncWarnings = 0;
  runDeepBranch(false, ScratchQueries, ScratchDiag, ScratchWarnings);
  runDeepBranch(true, IncQueries, IncDiag, IncWarnings);

  // The warning (the *p on the all-positive path) and its rendering must
  // be byte-identical: incremental solving is a query-batching strategy,
  // never a verdict change.
  EXPECT_EQ(ScratchWarnings, 1u);
  EXPECT_EQ(IncWarnings, ScratchWarnings);
  EXPECT_EQ(IncDiag, ScratchDiag);

  // The point of the assertion stack: prefix sharing, model reuse, and
  // the unsat-prefix cut must cut the number of queries that actually
  // reach the backend on a deep branch ladder.
  EXPECT_GT(ScratchQueries, 0u);
  EXPECT_LT(IncQueries, ScratchQueries)
      << "incremental mode issued as many backend queries as from-scratch";
}
