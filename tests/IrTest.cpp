//===--- IrTest.cpp - Tests for the register-based bytecode ---------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// Covers src/ir/: printer goldens (the printed form is the stable,
// documented IR format), the structural verifier (well-formed lowerings
// pass; hand-broken functions are named precisely), lowering determinism
// (equal programs lower to equal bytes and equal CodeHash), and a
// lowering round-trip: every ProgramGen program's lowering verifies, and
// running it on the IR engine reproduces the AST engine's outcomes.
//
//===----------------------------------------------------------------------===//

#include "ProgramGen.h"

#include "concolic/IrExecutor.h"
#include "ir/Ir.h"
#include "lang/Parser.h"
#include "symexec/SymExecutor.h"

#include <gtest/gtest.h>

#include <random>

using namespace mix;

namespace {

class IrLowerTest : public ::testing::Test {
protected:
  const Expr *parse(std::string_view Source) {
    const Expr *E = parseExpression(Source, Ctx, Diags);
    EXPECT_NE(E, nullptr) << Diags.str();
    return E;
  }

  ir::IrFunction lowerSrc(std::string_view Source,
                          std::vector<std::string> Env = {}) {
    return ir::lower(parse(Source), std::move(Env));
  }

  AstContext Ctx;
  DiagnosticEngine Diags;
};

//===----------------------------------------------------------------------===//
// Printer goldens
//===----------------------------------------------------------------------===//

TEST_F(IrLowerTest, GoldenStraightLine) {
  ir::IrFunction F = lowerSrc("1 + 2");
  EXPECT_EQ(ir::verify(F), "");
  EXPECT_EQ(ir::print(F),
            "func () regs=3 regions=1\n"
            "region 0:\n"
            "  step @1:3\n"
            "  step @1:1\n"
            "  %0 = const_int 1\n"
            "  step @1:5\n"
            "  %1 = const_int 2\n"
            "  %2 = binop '+' %0 %1 @1:3\n"
            "  result %2\n");
}

TEST_F(IrLowerTest, GoldenBranchRegions) {
  // The branch's arms are sub-regions; the condition variable resolves
  // statically to the environment register.
  ir::IrFunction F = lowerSrc("if b then 1 else 2", {"b"});
  EXPECT_EQ(ir::verify(F), "");
  EXPECT_EQ(ir::print(F),
            "func (b=%0) regs=4 regions=3\n"
            "region 0:\n"
            "  step @1:1\n"
            "  step @1:4\n"
            "  %3 = branch %0 ? r1 : r2 @1:1 @1:4\n"
            "  result %3\n"
            "region 1:\n"
            "  step @1:11\n"
            "  %1 = const_int 1\n"
            "  result %1\n"
            "region 2:\n"
            "  step @1:18\n"
            "  %2 = const_int 2\n"
            "  result %2\n");
}

TEST_F(IrLowerTest, GoldenLetAndChecks) {
  // let binds statically (no instruction for the variable reference);
  // assignment lowers to the check-then-log pair in AST error order.
  ir::IrFunction F = lowerSrc("let r = ref 7 in r := 8");
  EXPECT_EQ(ir::verify(F), "");
  std::string P = ir::print(F);
  EXPECT_NE(P.find("= ref %"), std::string::npos) << P;
  EXPECT_NE(P.find("assign_check %"), std::string::npos) << P;
  EXPECT_NE(P.find("assign %1 := %2"), std::string::npos) << P;
}

TEST_F(IrLowerTest, FreeVariableLowersToUnbound) {
  ir::IrFunction F = lowerSrc("zzz");
  EXPECT_EQ(ir::verify(F), "");
  EXPECT_NE(ir::print(F).find("unbound 'zzz'"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Verifier
//===----------------------------------------------------------------------===//

TEST_F(IrLowerTest, VerifierRejectsUndefinedRegisterUse) {
  ir::IrFunction F = lowerSrc("1 + 2");
  // Point the binop at a register nothing defines.
  for (ir::Instr &In : F.Regions[0].Code)
    if (In.Op == ir::Opcode::BinOp)
      In.B = 17;
  F.NumRegs = 18;
  EXPECT_NE(ir::verify(F).find("use of undefined register"),
            std::string::npos)
      << ir::verify(F);
}

TEST_F(IrLowerTest, VerifierRejectsDoubleWrite) {
  ir::IrFunction F = lowerSrc("1 + 2");
  // Make both constants target the same register.
  bool First = true;
  for (ir::Instr &In : F.Regions[0].Code)
    if (In.Op == ir::Opcode::ConstInt) {
      if (!First)
        In.Dst = F.Regions[0].Code[1].Dst;
      First = false;
    }
  EXPECT_NE(ir::verify(F), "");
}

TEST_F(IrLowerTest, VerifierRejectsUnreferencedRegion) {
  ir::IrFunction F = lowerSrc("if b then 1 else 2", {"b"});
  // Re-point the else arm at the then region: region 2 goes unreferenced
  // and region 1 is referenced twice; either defect must be reported.
  for (ir::Instr &In : F.Regions[0].Code)
    if (In.Op == ir::Opcode::Branch)
      In.R2 = In.R1;
  EXPECT_NE(ir::verify(F), "");
}

//===----------------------------------------------------------------------===//
// Determinism
//===----------------------------------------------------------------------===//

TEST_F(IrLowerTest, LoweringIsDeterministic) {
  std::mt19937 Rng(11);
  for (int Round = 0; Round != 50; ++Round) {
    AstContext C;
    testgen::ProgramGenerator Gen(C, Rng, /*AllowBlocks=*/true);
    testgen::ProgramGenerator::Scope Scope;
    Scope.IntVars = {"x", "y"};
    Scope.BoolVars = {"b"};
    Scope.RefVars = {"p"};
    const Expr *E =
        Rng() % 2 ? Gen.genInt(Scope, 4) : Gen.genBool(Scope, 4);
    ir::IrFunction F1 = ir::lower(E, {"b", "p", "x", "y"});
    ir::IrFunction F2 = ir::lower(E, {"b", "p", "x", "y"});
    ASSERT_EQ(ir::verify(F1), "") << ir::print(F1);
    EXPECT_EQ(ir::print(F1), ir::print(F2));
    EXPECT_EQ(F1.CodeHash, F2.CodeHash);
    EXPECT_NE(F1.CodeHash, 0u);
  }
}

//===----------------------------------------------------------------------===//
// Lowering round-trip: the IR engine reproduces the AST engine
//===----------------------------------------------------------------------===//

TEST_F(IrLowerTest, RoundTripMatchesAstEngine) {
  const char *Programs[] = {
      "1 + 2 - 4",
      "x + 1",
      "if b then x else 0 - x",
      "if 0 < x then (if b then 1 else 2) else 3",
      "let r = ref x in r := !r + 1",
      "(fun (f: int) : int -> f + x) 4",
      "true + 1",
      "if x then 1 else 2", // guard type error
      "!x",                 // deref of a non-ref
  };
  for (const char *Src : Programs) {
    AstContext C;
    DiagnosticEngine D1, D2;
    const Expr *E = parseExpression(Src, C, D1);
    ASSERT_NE(E, nullptr) << Src;

    auto RunWith = [&](SymExecOptions::Engine Mode, DiagnosticEngine &D) {
      SymExecOptions Opts;
      Opts.ExecMode = Mode;
      SymArena A(C.types());
      std::unique_ptr<ExecEngine> Exec =
          concolic::makeExecEngine(A, D, Opts);
      SymEnv Env;
      Env["x"] = Exec->arena().freshVar(C.types().intType(), false, "x");
      Env["b"] = Exec->arena().freshVar(C.types().boolType(), false, "b");
      SymExecResult R = Exec->run(E, Env);
      std::vector<std::string> Render;
      for (const PathResult &P : R.Paths) {
        std::string S = P.IsError
                            ? "error " + P.ErrorLoc.str() + " " +
                                  P.ErrorMessage
                            : "value " + P.Value->str();
        S += " | path " + P.State.Path->str();
        S += " | mem " + P.State.Mem->str();
        Render.push_back(std::move(S));
      }
      return Render;
    };

    EXPECT_EQ(RunWith(SymExecOptions::Engine::Ast, D1),
              RunWith(SymExecOptions::Engine::Ir, D2))
        << Src;
  }
}

} // namespace
