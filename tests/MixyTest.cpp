//===--- MixyTest.cpp - End-to-end tests for the MIXY driver --------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// These tests reproduce Section 4.5: for each vsftpd case study, pure
// type qualifier inference reports a false positive that the annotated
// MIXY run eliminates.
//
//===----------------------------------------------------------------------===//

#include "cfront/CParser.h"
#include "mixy/Mixy.h"
#include "mixy/VsftpdMini.h"

#include <gtest/gtest.h>

using namespace mix::c;
using mix::DiagnosticEngine;

namespace {

class MixyTest : public ::testing::Test {
protected:
  /// Pure type qualifier inference (the baseline): warnings reported.
  unsigned baselineWarnings(const std::string &Source) {
    CAstContext Ctx;
    DiagnosticEngine Diags;
    const CProgram *P = parseC(Source, Ctx, Diags);
    EXPECT_NE(P, nullptr) << Diags.str();
    if (!P)
      return ~0u;
    QualInference Inf(*P, Ctx, Diags);
    Inf.analyzeAll();
    Inf.solve();
    return Inf.reportWarnings();
  }

  /// The full MIXY analysis from main.
  unsigned mixyWarnings(const std::string &Source,
                        MixyOptions Opts = MixyOptions(),
                        MixyStats *StatsOut = nullptr) {
    CAstContext Ctx;
    DiagnosticEngine Diags;
    const CProgram *P = parseC(Source, Ctx, Diags);
    EXPECT_NE(P, nullptr) << Diags.str();
    if (!P)
      return ~0u;
    MixyAnalysis Mixy(*P, Ctx, Diags, Opts);
    unsigned W = Mixy.run(MixyAnalysis::StartMode::Typed);
    if (StatsOut)
      *StatsOut = Mixy.stats();
    LastDiags = Diags.str();
    return W;
  }

  std::string LastDiags;
};

} // namespace

// --- Case 1: flow and path insensitivity in sockaddr_clear ------------------

TEST_F(MixyTest, Case1BaselineHasFalsePositive) {
  EXPECT_GE(baselineWarnings(corpus::vsftpdCase(1, false)), 1u);
}

TEST_F(MixyTest, Case1SymbolicBlockEliminatesWarning) {
  EXPECT_EQ(mixyWarnings(corpus::vsftpdCase(1, true)), 0u) << LastDiags;
}

TEST_F(MixyTest, Case1UnannotatedMixyStillWarns) {
  // Without the MIX(symbolic) annotation, MIXY's typed mode is just
  // qualifier inference and keeps the false positive.
  EXPECT_GE(mixyWarnings(corpus::vsftpdCase(1, false)), 1u);
}

// --- Case 2: path and context insensitivity in str_next_dirent --------------

TEST_F(MixyTest, Case2BaselineHasFalsePositive) {
  EXPECT_GE(baselineWarnings(corpus::vsftpdCase(2, false)), 1u);
}

TEST_F(MixyTest, Case2SymbolicBlockEliminatesWarning) {
  EXPECT_EQ(mixyWarnings(corpus::vsftpdCase(2, true)), 0u) << LastDiags;
}

// --- Case 3: flow and path insensitivity in dns_resolve and main ------------

TEST_F(MixyTest, Case3BaselineHasFalsePositive) {
  EXPECT_GE(baselineWarnings(corpus::vsftpdCase(3, false)), 1u);
}

TEST_F(MixyTest, Case3SymbolicBlockEliminatesWarnings) {
  EXPECT_EQ(mixyWarnings(corpus::vsftpdCase(3, true)), 0u) << LastDiags;
}

// --- Case 4: helping symbolic execution with typed blocks --------------------

TEST_F(MixyTest, Case4WithoutTypedBlockWarns) {
  // sysutil_exit is symbolic; without the typed annotation on
  // sysutil_exit_BLOCK the executor hits the unknown function pointer.
  EXPECT_GE(mixyWarnings(corpus::vsftpdCase(4, false)), 1u);
}

TEST_F(MixyTest, Case4TypedBlockEnablesSymbolicExecution) {
  EXPECT_EQ(mixyWarnings(corpus::vsftpdCase(4, true)), 0u) << LastDiags;
}

// --- full corpus --------------------------------------------------------------

TEST_F(MixyTest, FullCorpusBaselineWarnsAnnotatedDoesNot) {
  // The baseline reports the (single) violated nonnull bound; our
  // counting is per violated annotation, with the witness paths carrying
  // the individual flows.
  EXPECT_GE(baselineWarnings(corpus::vsftpdFull(false)), 1u);
  // With default options the merged corpus keeps one residual warning:
  // context-insensitive alias restoration (Section 4.2) links Case 1's
  // g_addr with Case 3's p_addr through sockaddr_clear's parameter —
  // exactly the pollution Section 4.6 reports ("nested typed blocks are
  // polluted by aliasing relationships from the entire program").
  EXPECT_LE(mixyWarnings(corpus::vsftpdFull(true)), 1u);
  // Disabling alias restoration isolates the cases and removes every
  // false positive.
  MixyOptions NoAlias;
  NoAlias.RestoreAliasing = false;
  EXPECT_EQ(mixyWarnings(corpus::vsftpdFull(true), NoAlias), 0u)
      << LastDiags;
}

TEST_F(MixyTest, StatsReflectBlockSwitching) {
  MixyStats Stats;
  MixyOptions NoAlias;
  NoAlias.RestoreAliasing = false;
  ASSERT_EQ(mixyWarnings(corpus::vsftpdFull(true), NoAlias, &Stats), 0u)
      << LastDiags;
  EXPECT_GE(Stats.SymbolicCallsFromTyped, 3u); // the annotated frontiers
  EXPECT_GE(Stats.SymbolicBlockRuns, 3u);
  EXPECT_GE(Stats.TypedCallsFromSymbolic, 1u); // sysutil_free etc.
}

// --- caching (Section 4.3) ----------------------------------------------------

TEST_F(MixyTest, CacheHitsOnRepeatedCompatibleContexts) {
  // Two calls to the same symbolic function with the same context: the
  // second is served from the cache.
  const char *Source = R"(
void sysutil_free(void * nonnull p_ptr) MIX(typed);
int g;
void helper(int *p) MIX(symbolic) {
  if (p != NULL) { sysutil_free((void*)p); }
}
int main(void) {
  helper(&g);
  helper(&g);
  return 0;
}
)";
  MixyStats Stats;
  EXPECT_EQ(mixyWarnings(Source, MixyOptions(), &Stats), 0u) << LastDiags;
  EXPECT_GE(Stats.SymbolicCacheHits, 1u);

  MixyOptions NoCache;
  NoCache.EnableCache = false;
  MixyStats Stats2;
  EXPECT_EQ(mixyWarnings(Source, NoCache, &Stats2), 0u);
  EXPECT_EQ(Stats2.SymbolicCacheHits, 0u);
  EXPECT_GT(Stats2.SymbolicBlockRuns, Stats.SymbolicBlockRuns);
}

// --- recursion (Section 4.4) ---------------------------------------------------

TEST_F(MixyTest, RecursionBetweenTypedAndSymbolicBlocks) {
  // A typed function and a symbolic function that call each other; the
  // block stack must detect the cycle and converge instead of looping.
  const char *Source = R"(
void sysutil_free(void * nonnull p_ptr) MIX(typed);
void typed_step(int *p, int n) MIX(typed);
void symbolic_step(int *p, int n) MIX(symbolic) {
  if (n > 0) { typed_step(p, n - 1); }
}
void typed_step(int *p, int n) MIX(typed) {
  if (n > 0) { symbolic_step(p, n - 1); }
}
int g;
int main(void) {
  symbolic_step(&g, 3);
  return 0;
}
)";
  MixyStats Stats;
  EXPECT_EQ(mixyWarnings(Source, MixyOptions(), &Stats), 0u) << LastDiags;
  EXPECT_GE(Stats.RecursionsDetected, 1u);
}

// --- fixpoint (Section 4.1) -----------------------------------------------------

TEST_F(MixyTest, FixpointPropagatesLateNullConstraints) {
  // The paper's two-symbolic-block example: analyzed in source order, the
  // free-side block sees x as optimistically nonnull until the null-side
  // block's constraint arrives; the fixpoint re-runs it and finds the
  // error.
  const char *Source = R"(
void sysutil_free(void * nonnull p_ptr) MIX(typed);
int *x;
void use_block(void) MIX(symbolic) {
  sysutil_free((void*)x);
}
void null_block(void) MIX(symbolic) {
  x = NULL;
}
int main(void) {
  use_block();
  null_block();
  return 0;
}
)";
  MixyStats Stats;
  EXPECT_GE(mixyWarnings(Source, MixyOptions(), &Stats), 1u);
  EXPECT_GE(Stats.FixpointIterations, 1u);
}

TEST_F(MixyTest, TrueErrorsAreStillReported) {
  // Soundness direction: MIXY removes false positives, not true ones.
  const char *Source = R"(
void sysutil_free(void * nonnull p_ptr) MIX(typed);
void helper(int *p) MIX(symbolic) {
  sysutil_free((void*)p);
}
int main(void) {
  helper(NULL);
  return 0;
}
)";
  EXPECT_GE(mixyWarnings(Source), 1u);
}

TEST_F(MixyTest, SymbolicStartMode) {
  CAstContext Ctx;
  DiagnosticEngine Diags;
  const CProgram *P = parseC(corpus::vsftpdCase(1, true), Ctx, Diags);
  ASSERT_NE(P, nullptr) << Diags.str();
  MixyAnalysis Mixy(*P, Ctx, Diags);
  // Start symbolically at sockaddr_clear itself.
  unsigned W = Mixy.run(MixyAnalysis::StartMode::Symbolic, "sockaddr_clear");
  EXPECT_EQ(W, 0u) << Diags.str();
}

// === additional end-to-end coverage ==========================================

TEST_F(MixyTest, WarnAllDereferencesMode) {
  // The "annotate all dereferences" mode the paper mentions as the
  // heavyweight alternative to the single sysutil_free annotation.
  const char *Source = R"(
int deref(int *p) { return *p; }
int main(void) {
  int *x = NULL;
  return deref(x);
}
)";
  MixyOptions Opts;
  Opts.Qual.WarnAllDereferences = true;
  EXPECT_GE(mixyWarnings(Source, Opts), 1u);
  // Default mode: no nonnull annotations anywhere, so no warnings.
  EXPECT_EQ(mixyWarnings(Source), 0u);
}

TEST_F(MixyTest, ScaledCorpusParsesAndAnalyzes) {
  // The E5 workload end to end: parse + full MIXY run on the corpus with
  // filler modules and annotated symbolic blocks.
  std::string Source = corpus::vsftpdScaled(true, 6, 3);
  CAstContext Ctx;
  DiagnosticEngine Diags;
  const CProgram *P = parseC(Source, Ctx, Diags);
  ASSERT_NE(P, nullptr) << Diags.str();
  MixyOptions NoAlias;
  NoAlias.RestoreAliasing = false;
  MixyAnalysis Analysis(*P, Ctx, Diags, NoAlias);
  EXPECT_EQ(Analysis.run(MixyAnalysis::StartMode::Typed, "filler_main"),
            0u)
      << Diags.str();
  EXPECT_GE(Analysis.stats().SymbolicCallsFromTyped, 3u);
}

TEST_F(MixyTest, SymbolicStartOnCase3Block) {
  // Begin execution inside main_BLOCK itself: the whole case-3 machinery
  // (inlined dns_resolve, the gethostbyname model, the typed frontier at
  // sysutil_free) runs from symbolic mode.
  CAstContext Ctx;
  DiagnosticEngine Diags;
  const CProgram *P = parseC(corpus::vsftpdCase(3, true), Ctx, Diags);
  ASSERT_NE(P, nullptr) << Diags.str();
  MixyAnalysis Mixy(*P, Ctx, Diags);
  EXPECT_EQ(Mixy.run(MixyAnalysis::StartMode::Symbolic, "main_BLOCK"), 0u)
      << Diags.str();
  // Note: sysutil_free (the only MIX(typed) frontier) is never reached on
  // a feasible path here — sockaddr_clear's then-branch is infeasible
  // because *p_sock is definitely NULL at that point. That the executor
  // proves this is the point of the case study.
  EXPECT_GE(Mixy.stats().SymbolicBlockRuns, 1u);
}

TEST_F(MixyTest, MissingEntryIsAnError) {
  CAstContext Ctx;
  DiagnosticEngine Diags;
  const CProgram *P = parseC("int f(void) { return 0; }", Ctx, Diags);
  ASSERT_NE(P, nullptr);
  MixyAnalysis Mixy(*P, Ctx, Diags);
  Mixy.run(MixyAnalysis::StartMode::Typed, "main");
  EXPECT_TRUE(Diags.hasErrors());
}

TEST_F(MixyTest, IncompatibleContextsAreAnalyzedSeparately) {
  // Two call sites with *different* nullness contexts must not share a
  // cache entry: the maybe-null caller warns, the nonnull caller's path
  // stays clean, and both behaviours coexist.
  const char *Source = R"(
void sysutil_free(void * nonnull p_ptr) MIX(typed);
int g;
void helper(int *p) MIX(symbolic) {
  sysutil_free((void*)p);
}
int *maybe(void) { return NULL; }
void caller_ok(void) { helper(&g); }
void caller_bad(void) { helper(maybe()); }
int main(void) { caller_ok(); caller_bad(); return 0; }
)";
  MixyStats Stats;
  EXPECT_GE(mixyWarnings(Source, MixyOptions(), &Stats), 1u);
  // Two distinct contexts: two symbolic runs, no (cross-context) hit.
  EXPECT_GE(Stats.SymbolicBlockRuns, 2u);
}
