//===--- MixyPersistTest.cpp - Warm/incremental MIXY runs -----------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// End-to-end coverage of the persistent cache through MixyAnalysis: a
// warm run must produce byte-identical diagnostics while answering block
// lookups from disk; a corrupted cache must degrade to a cold run with
// the same findings; and an incremental re-run after editing one function
// must re-analyze only that function's dependency cone.
//
//===----------------------------------------------------------------------===//

#include "cfront/CParser.h"
#include "mixy/Mixy.h"
#include "mixy/VsftpdMini.h"
#include "persist/PersistSession.h"
#include "provenance/Provenance.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>

using namespace mix;
using namespace mix::c;

namespace {

class TempDir {
public:
  explicit TempDir(const std::string &Name)
      : Path(::testing::TempDir() + "mixy_persist_" + Name) {
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~TempDir() { std::filesystem::remove_all(Path); }
  std::string file(const std::string &Name) const { return Path + "/" + Name; }
  const std::string Path;
};

void flipLastByte(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::string Bytes((std::istreambuf_iterator<char>(In)),
                    std::istreambuf_iterator<char>());
  In.close();
  ASSERT_FALSE(Bytes.empty());
  Bytes.back() ^= 0x01;
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out << Bytes;
}

/// One MIXY run against a cache directory (or none, when Dir is empty).
struct RunResult {
  unsigned Warnings = 0;
  std::string Diags;
  std::vector<std::string> SortedDiags;
  std::string Degraded;
  uint64_t BlockHits = 0, BlockMisses = 0, BlockStores = 0;
  uint64_t SolverHits = 0;
  uint64_t FuncsTotal = 0, FuncsChanged = 0, FuncsDirty = 0;
  uint64_t SymBlockRuns = 0;
  std::string Explain; ///< renderExplainText output (Explain runs only)
  uint64_t ProvWitnesses = 0, ProvFlows = 0, ProvBlocks = 0, ProvReplayed = 0;
};

RunResult runMixy(const std::string &Source, const std::string &Dir,
                  unsigned Jobs = 1, bool Explain = false,
                  bool WarnDerefs = false) {
  RunResult R;
  CAstContext Ctx;
  DiagnosticEngine Diags;
  const CProgram *P = parseC(Source, Ctx, Diags);
  EXPECT_NE(P, nullptr) << Diags.str();
  if (!P)
    return R;

  obs::MetricsRegistry Reg;
  MixyOptions Opts;
  Opts.Jobs = Jobs;
  Opts.Metrics = &Reg;
  if (WarnDerefs) {
    Opts.Qual.WarnAllDereferences = true;
    Opts.Sym.CheckDereferences = true;
  }
  prov::ProvenanceSink ProvSink;
  if (Explain) {
    ProvSink.attachMetrics(Reg);
    Opts.Prov = &ProvSink;
  }

  std::unique_ptr<persist::PersistSession> Session;
  if (!Dir.empty()) {
    persist::PersistOptions PO;
    PO.Dir = Dir;
    PO.Incremental = true;
    PO.BlockFingerprint = mixyPersistFingerprint(Opts);
    PO.Metrics = &Reg;
    Session = std::make_unique<persist::PersistSession>(std::move(PO));
    Opts.Persist = Session.get();
    R.Degraded = Session->degradedReason();
  }

  MixyAnalysis Mixy(*P, Ctx, Diags, Opts);
  R.Warnings = Mixy.run(MixyAnalysis::StartMode::Typed);
  R.Diags = Diags.str();
  if (Explain)
    R.Explain = prov::renderExplainText(Diags);
  // Warnings only: across job counts (and warm replay orders) the
  // warning *set* is the contract; a note's qualifier-flow witness path
  // may legitimately differ with seeding order.
  for (const Diagnostic &D : Diags.diagnostics())
    if (D.Kind == DiagKind::Warning)
      R.SortedDiags.push_back(D.str());
  std::sort(R.SortedDiags.begin(), R.SortedDiags.end());
  if (Session) {
    std::string Error;
    EXPECT_TRUE(Session->save(&Error)) << Error;
  }
  R.BlockHits = Reg.counterValue("persist.block.hits");
  R.BlockMisses = Reg.counterValue("persist.block.misses");
  R.BlockStores = Reg.counterValue("persist.block.stores");
  R.SolverHits = Reg.counterValue("persist.solver.hits");
  R.FuncsTotal = Reg.counterValue("persist.funcs.total");
  R.FuncsChanged = Reg.counterValue("persist.funcs.changed");
  R.FuncsDirty = Reg.counterValue("persist.funcs.dirty");
  R.SymBlockRuns = Reg.counterValue("mixy.sym_block_runs");
  R.ProvWitnesses = Reg.counterValue("provenance.witnesses");
  R.ProvFlows = Reg.counterValue("provenance.flows");
  R.ProvBlocks = Reg.counterValue("provenance.blocks");
  R.ProvReplayed = Reg.counterValue("provenance.replayed");
  return R;
}

//===----------------------------------------------------------------------===//
// Warm runs on the vsftpd corpus
//===----------------------------------------------------------------------===//

TEST(MixyPersistTest, WarmRunIsByteIdenticalAndHitsTheBlockStore) {
  TempDir D("warm");
  const std::string Source = corpus::vsftpdFull(true);

  RunResult Reference = runMixy(Source, ""); // no cache at all
  RunResult Cold = runMixy(Source, D.Path);
  RunResult Warm = runMixy(Source, D.Path);

  // The cache must never change answers: cold == uncached == warm.
  EXPECT_EQ(Cold.Diags, Reference.Diags);
  EXPECT_EQ(Warm.Diags, Reference.Diags);
  EXPECT_EQ(Warm.Warnings, Reference.Warnings);

  EXPECT_GT(Cold.BlockStores, 0u);
  EXPECT_GT(Warm.BlockHits, 0u);
  // Unchanged input: the warm run answers every block lookup from disk
  // and re-executes no symbolic block — which also means it never needs
  // the solver at all.
  EXPECT_EQ(Warm.BlockMisses, 0u);
  EXPECT_EQ(Warm.SymBlockRuns, 0u);
  // Nothing changed, so nothing is dirty.
  EXPECT_GT(Warm.FuncsTotal, 0u);
  EXPECT_EQ(Warm.FuncsChanged, 0u);
  EXPECT_EQ(Warm.FuncsDirty, 0u);
}

TEST(MixyPersistTest, WarmRunMatchesUnderParallelJobs) {
  // Stable keys are independent of --jobs: a cache written serially must
  // hit from a parallel run. The parallel engine's contract is set
  // equality of diagnostics (order across sibling blocks is an
  // implementation detail), so compare the sorted multiset.
  TempDir D("jobs");
  const std::string Source = corpus::vsftpdFull(true);
  RunResult Cold = runMixy(Source, D.Path, /*Jobs=*/1);
  RunResult Warm = runMixy(Source, D.Path, /*Jobs=*/4);
  EXPECT_EQ(Warm.Warnings, Cold.Warnings);
  EXPECT_EQ(Warm.SortedDiags, Cold.SortedDiags);
  EXPECT_GT(Warm.BlockHits, 0u);
}

//===----------------------------------------------------------------------===//
// Provenance through the cache: explanations survive warm replay
//===----------------------------------------------------------------------===//

// A null dereference reported from *inside* a symbolic block run: the
// warning carries a symbolic witness and a block context, and — unlike
// the vsftpd corpus warning, which the final top-level qualifier solve
// emits after all blocks finish — it is recorded into the block's
// persisted summary, so it exercises warm replay.
const char *InBlockDerefSource = R"(
int *g_p;
void use(void) MIX(symbolic) {
  int x;
  if (g_p != NULL) {
    x = *g_p;
  }
  x = *g_p;
}
int main(void) {
  g_p = NULL;
  use();
  return 0;
}
)";

TEST(MixyPersistTest, ExplainIsIdenticalColdAndWarm) {
  // Provenance payloads ride inside the persisted block summaries, so a
  // warm --explain run replays the recorded explanations verbatim: the
  // full rendered text (diagnostics + evidence) is byte-identical, and
  // only the provenance.replayed counter tells the runs apart.
  TempDir D("explain");
  RunResult Cold = runMixy(InBlockDerefSource, D.Path, /*Jobs=*/1,
                           /*Explain=*/true, /*WarnDerefs=*/true);
  RunResult Warm = runMixy(InBlockDerefSource, D.Path, /*Jobs=*/1,
                           /*Explain=*/true, /*WarnDerefs=*/true);

  // The cold run recorded real evidence: the symbolic witness of the
  // unguarded dereference and the block context of the run that found it.
  EXPECT_GT(Cold.Warnings, 0u);
  EXPECT_GT(Cold.ProvWitnesses, 0u);
  EXPECT_GT(Cold.ProvBlocks, 0u);
  EXPECT_EQ(Cold.ProvReplayed, 0u);
  EXPECT_NE(Cold.Explain.find("witness path:"), std::string::npos)
      << Cold.Explain;
  EXPECT_NE(Cold.Explain.find("block context:"), std::string::npos)
      << Cold.Explain;

  // Warm: same findings, same explanations — replayed, not rebuilt.
  EXPECT_EQ(Warm.Diags, Cold.Diags);
  EXPECT_EQ(Warm.Explain, Cold.Explain);
  EXPECT_GT(Warm.BlockHits, 0u);
  EXPECT_EQ(Warm.SymBlockRuns, 0u);
  EXPECT_GT(Warm.ProvReplayed, 0u);
}

TEST(MixyPersistTest, FlowChainExplanationIsIdenticalColdAndWarm) {
  // The vsftpd warning's evidence is a qualifier flow chain built by the
  // final top-level solve, not by a block run — it is recomputed each
  // run rather than replayed, and must still come out byte-identical.
  TempDir D("explain_flow");
  const std::string Source = corpus::vsftpdFull(true);
  RunResult Cold = runMixy(Source, D.Path, /*Jobs=*/1, /*Explain=*/true);
  RunResult Warm = runMixy(Source, D.Path, /*Jobs=*/1, /*Explain=*/true);
  EXPECT_GT(Cold.Warnings, 0u);
  EXPECT_GT(Cold.ProvFlows, 0u);
  EXPECT_NE(Cold.Explain.find("qualifier flow:"), std::string::npos)
      << Cold.Explain;
  EXPECT_EQ(Warm.Diags, Cold.Diags);
  EXPECT_EQ(Warm.Explain, Cold.Explain);
  EXPECT_GT(Warm.BlockHits, 0u);
}

TEST(MixyPersistTest, ExplainOnAndOffRunsDoNotShareAStore) {
  // The store fingerprint includes whether provenance is recorded: a
  // cache written without evidence must not answer an --explain run (its
  // summaries carry no payloads to replay). The mismatch loads as a
  // silent cold start — the explain run re-executes the block and
  // rebuilds full evidence — never as corruption or a replay of
  // evidence-free summaries.
  TempDir D("explain_fp");
  RunResult Plain = runMixy(InBlockDerefSource, D.Path, /*Jobs=*/1,
                            /*Explain=*/false, /*WarnDerefs=*/true);
  RunResult Explained = runMixy(InBlockDerefSource, D.Path, /*Jobs=*/1,
                                /*Explain=*/true, /*WarnDerefs=*/true);
  EXPECT_EQ(Explained.Warnings, Plain.Warnings);
  EXPECT_TRUE(Explained.Degraded.empty());
  // Different fingerprint: nothing answered from the plain store, the
  // symbolic block really re-ran, and the evidence is fresh.
  EXPECT_GT(Explained.BlockMisses, 0u);
  EXPECT_GT(Explained.SymBlockRuns, 0u);
  EXPECT_EQ(Explained.ProvReplayed, 0u);
  EXPECT_GT(Explained.ProvWitnesses, 0u);
  EXPECT_NE(Explained.Explain.find("witness path:"), std::string::npos)
      << Explained.Explain;
}

//===----------------------------------------------------------------------===//
// Corruption: every anomaly degrades to a cold run with identical findings
//===----------------------------------------------------------------------===//

TEST(MixyPersistTest, CorruptBlockStoreFallsBackCold) {
  TempDir D("corrupt");
  const std::string Source = corpus::vsftpdFull(true);
  RunResult Cold = runMixy(Source, D.Path);
  flipLastByte(D.file("blocks.mixcache"));

  RunResult Warm = runMixy(Source, D.Path);
  EXPECT_FALSE(Warm.Degraded.empty());
  EXPECT_EQ(Warm.Diags, Cold.Diags);
  // The block store came up empty, so the symbolic blocks re-execute —
  // against the intact solver store, which answers their queries warm.
  EXPECT_GT(Warm.SymBlockRuns, 0u);
  EXPECT_GT(Warm.SolverHits, 0u);
}

TEST(MixyPersistTest, TruncatedSolverStoreFallsBackCold) {
  TempDir D("truncated");
  const std::string Source = corpus::vsftpdFull(true);
  RunResult Cold = runMixy(Source, D.Path);

  std::ifstream In(D.file("solver.mixcache"), std::ios::binary);
  std::string Bytes((std::istreambuf_iterator<char>(In)),
                    std::istreambuf_iterator<char>());
  In.close();
  ASSERT_GT(Bytes.size(), 6u);
  std::ofstream Out(D.file("solver.mixcache"),
                    std::ios::binary | std::ios::trunc);
  Out << Bytes.substr(0, Bytes.size() - 5);
  Out.close();

  RunResult Warm = runMixy(Source, D.Path);
  EXPECT_FALSE(Warm.Degraded.empty());
  EXPECT_EQ(Warm.Diags, Cold.Diags);
  EXPECT_EQ(Warm.SolverHits, 0u);
  // The degraded run rewrites the directory; the next run is warm again.
  RunResult Healed = runMixy(Source, D.Path);
  EXPECT_TRUE(Healed.Degraded.empty());
  EXPECT_EQ(Healed.Diags, Cold.Diags);
}

//===----------------------------------------------------------------------===//
// Incremental re-analysis
//===----------------------------------------------------------------------===//

// A three-function dependency structure: middle calls helper; island is
// independent. Editing island must leave middle's (and helper's) closure
// hashes — and therefore middle's persisted blocks — intact.
std::string incrementalCorpus(const std::string &IslandBody) {
  return R"(
int helper(int x) {
  return x + 1;
}
int middle(int x) MIX(symbolic) {
  if (x != 0) {
    return helper(x);
  }
  return 0;
}
int island(int x) MIX(symbolic) {
)" + IslandBody + R"(
}
int main(void) {
  middle(1);
  island(2);
  return 0;
}
)";
}

TEST(MixyPersistTest, EditReanalyzesOnlyTheDependentCone) {
  TempDir D("incremental");
  const std::string V1 = incrementalCorpus("  return x + 2;");
  const std::string V2 = incrementalCorpus("  return x + 3;");

  RunResult Cold = runMixy(V1, D.Path);
  EXPECT_EQ(Cold.FuncsTotal, 4u); // helper, middle, island, main
  EXPECT_EQ(Cold.FuncsChanged, 4u); // everything is new on a cold start
  EXPECT_GT(Cold.BlockStores, 0u);

  RunResult Warm = runMixy(V2, D.Path);
  // Only island's content changed; the dirty cone is island plus its
  // caller main. helper and middle are untouched.
  EXPECT_EQ(Warm.FuncsTotal, 4u);
  EXPECT_EQ(Warm.FuncsChanged, 1u);
  EXPECT_EQ(Warm.FuncsDirty, 2u);
  // middle's block summary replays from disk; island's re-runs.
  EXPECT_GT(Warm.BlockHits, 0u);
  EXPECT_GT(Warm.BlockMisses, 0u);

  // The incremental run's diagnostics match a full cold run of V2.
  RunResult Reference = runMixy(V2, "");
  EXPECT_EQ(Warm.Diags, Reference.Diags);
  EXPECT_EQ(Warm.Warnings, Reference.Warnings);
}

TEST(MixyPersistTest, EditingACalleeInvalidatesItsCallers) {
  TempDir D("callee");
  const std::string V1 = R"(
int helper(int x) {
  return x + 1;
}
int middle(int x) MIX(symbolic) {
  if (x != 0) {
    return helper(x);
  }
  return 0;
}
int main(void) {
  middle(1);
  return 0;
}
)";
  // Same program with helper's body edited: middle's closure hash (and
  // so its block key) must change even though middle's text did not.
  const std::string V2 = R"(
int helper(int x) {
  return x + 7;
}
int middle(int x) MIX(symbolic) {
  if (x != 0) {
    return helper(x);
  }
  return 0;
}
int main(void) {
  middle(1);
  return 0;
}
)";
  RunResult Cold = runMixy(V1, D.Path);
  EXPECT_GT(Cold.BlockStores, 0u);
  RunResult Warm = runMixy(V2, D.Path);
  EXPECT_EQ(Warm.FuncsChanged, 1u); // helper's content
  EXPECT_EQ(Warm.FuncsDirty, 3u);   // helper, middle, main
  EXPECT_EQ(Warm.BlockHits, 0u);    // middle's old summary must not match
}

//===----------------------------------------------------------------------===//
// The baseline-vs-annotated contract survives the cache
//===----------------------------------------------------------------------===//

TEST(MixyPersistTest, CachedCaseStudiesKeepTheirVerdicts) {
  // Each annotated case eliminates its false positive on both cold and
  // warm runs — the cache must never resurrect (or invent) a warning.
  for (int Case = 1; Case <= 4; ++Case) {
    SCOPED_TRACE("case" + std::to_string(Case));
    TempDir D("case" + std::to_string(Case));
    const std::string Source = corpus::vsftpdCase(Case, true);
    RunResult Cold = runMixy(Source, D.Path);
    RunResult Warm = runMixy(Source, D.Path);
    EXPECT_EQ(Cold.Warnings, 0u) << Cold.Diags;
    EXPECT_EQ(Warm.Warnings, 0u) << Warm.Diags;
    EXPECT_EQ(Warm.Diags, Cold.Diags);
  }
}

} // namespace
