//===--- ServiceTest.cpp - Tests for the AnalysisService layer ------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// Covers src/service/: the protocol v1 wire codec (golden strings, strict
// decoding, the JSON-RPC error/timeout envelopes), the CLI-vs-service
// byte-identity contract (service payloads against a DiagnosticEngine run
// through the engines directly), the daemon-side serve() machinery
// (response cache, in-flight dedup, fileChanged, warm in-memory
// sessions), plus the satellite pieces: MetricsRegistry snapshot deltas
// and OptionParser option groups.
//
//===----------------------------------------------------------------------===//

#include "service/AnalysisService.h"
#include "service/Protocol.h"

#include "cfront/CParser.h"
#include "driver/OptionParser.h"
#include "lang/Parser.h"
#include "mixy/Mixy.h"
#include "provenance/Sarif.h"
#include "qual/QualInference.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

using namespace mix;
namespace service = mix::service;

namespace {

//===----------------------------------------------------------------------===//
// Protocol v1: golden encodings and strict decoding
//===----------------------------------------------------------------------===//

TEST(ProtocolTest, MinimalRequestGolden) {
  service::AnalysisRequest Req;
  // Every field at its default: only the two mandatory members appear.
  EXPECT_EQ(service::encodeRequest(Req), "{\"version\": 1, \"tool\": \"mixy\"}");

  service::AnalysisRequest Out;
  std::string Error;
  ASSERT_TRUE(service::decodeRequest(service::encodeRequest(Req), Out, Error))
      << Error;
  EXPECT_EQ(service::encodeRequest(Out), service::encodeRequest(Req));
}

TEST(ProtocolTest, FullMixCheckRequestGoldenRoundTrip) {
  service::AnalysisRequest Req;
  Req.ToolKind = service::Tool::MixCheck;
  Req.Source = "1 + x";
  Req.HasSource = true;
  Req.InputName = "demo.mix";
  Req.OutputFormat = service::Format::Sarif;
  Req.Explain = true;
  Req.Jobs = 4;
  Req.Solver.Backend = "dnf";
  Req.Solver.Portfolio = true;
  Req.Trace = true;
  Req.CacheDir = "/tmp/mixcache";
  Req.Incremental = true;
  Req.Symbolic = true;
  Req.AutoPlace = true;
  Req.PrintProgram = true;
  Req.Strategy = SymExecOptions::Strategy::Defer;
  Req.Havoc = SymExecOptions::HavocPolicy::WriteEffects;
  Req.PreciseDeref = true;
  Req.AssumeComplete = true;
  Req.Explore = MixOptions::Exploration::Concolic;
  Req.Vars.emplace_back("x", "int ref");

  const std::string Golden =
      "{\"version\": 1, \"tool\": \"mixcheck\", \"source\": \"1 + x\", "
      "\"input_name\": \"demo.mix\", \"format\": \"sarif\", "
      "\"explain\": true, \"jobs\": 4, \"solver\": \"dnf\", "
      "\"solver_portfolio\": true, \"trace\": true, "
      "\"cache_dir\": \"/tmp/mixcache\", \"incremental\": true, "
      "\"mode\": \"symbolic\", \"auto_place\": true, "
      "\"print_program\": true, \"strategy\": \"defer\", "
      "\"havoc\": \"effects\", \"precise_deref\": true, "
      "\"assume_complete\": true, \"explore\": \"concolic\", "
      "\"vars\": [{\"name\": \"x\", \"type\": \"int ref\"}]}";
  EXPECT_EQ(service::encodeRequest(Req), Golden);

  service::AnalysisRequest Out;
  std::string Error;
  ASSERT_TRUE(service::decodeRequest(Golden, Out, Error)) << Error;
  EXPECT_EQ(Out.ToolKind, service::Tool::MixCheck);
  EXPECT_TRUE(Out.HasSource);
  EXPECT_EQ(Out.Source, "1 + x");
  EXPECT_EQ(Out.OutputFormat, service::Format::Sarif);
  EXPECT_EQ(Out.Jobs, 4u);
  EXPECT_EQ(Out.Solver.Backend, "dnf");
  EXPECT_TRUE(Out.Solver.Portfolio);
  EXPECT_EQ(Out.Strategy, SymExecOptions::Strategy::Defer);
  EXPECT_EQ(Out.Havoc, SymExecOptions::HavocPolicy::WriteEffects);
  EXPECT_EQ(Out.Explore, MixOptions::Exploration::Concolic);
  ASSERT_EQ(Out.Vars.size(), 1u);
  EXPECT_EQ(Out.Vars[0].first, "x");
  EXPECT_EQ(Out.Vars[0].second, "int ref");
  // Canonical: decode then re-encode reproduces the wire bytes.
  EXPECT_EQ(service::encodeRequest(Out), Golden);
}

TEST(ProtocolTest, MixyKnobsGoldenRoundTrip) {
  service::AnalysisRequest Req;
  Req.Corpus = "case1";
  Req.Baseline = true;
  Req.Entry = "loop";
  Req.StartSymbolic = true;
  Req.NoCache = true;
  Req.NoAliasRestore = true;
  Req.WarnDerefs = true;

  const std::string Golden =
      "{\"version\": 1, \"tool\": \"mixy\", \"corpus\": \"case1\", "
      "\"baseline\": true, \"entry\": \"loop\", \"start\": \"symbolic\", "
      "\"no_cache\": true, \"no_alias_restore\": true, "
      "\"warn_derefs\": true}";
  EXPECT_EQ(service::encodeRequest(Req), Golden);

  service::AnalysisRequest Out;
  std::string Error;
  ASSERT_TRUE(service::decodeRequest(Golden, Out, Error)) << Error;
  EXPECT_EQ(Out.Entry, "loop");
  EXPECT_TRUE(Out.StartSymbolic);
  EXPECT_EQ(service::encodeRequest(Out), Golden);
}

TEST(ProtocolTest, RequestDecodeIsStrict) {
  service::AnalysisRequest Out;
  std::string Error;

  // A typo'd field is an error, not a silently ignored default.
  EXPECT_FALSE(service::decodeRequest(
      "{\"version\": 1, \"tool\": \"mixy\", \"formt\": \"json\"}", Out, Error));
  EXPECT_EQ(Error, "unknown request field 'formt'");

  EXPECT_FALSE(
      service::decodeRequest("{\"version\": 2, \"tool\": \"mixy\"}", Out, Error));
  EXPECT_EQ(Error, "unsupported protocol version (this build speaks version 1)");

  EXPECT_FALSE(service::decodeRequest("{\"tool\": \"mixy\"}", Out, Error));
  EXPECT_EQ(Error, "missing 'version'");

  EXPECT_FALSE(service::decodeRequest("{\"version\": 1}", Out, Error));
  EXPECT_EQ(Error, "missing 'tool'");

  EXPECT_FALSE(service::decodeRequest(
      "{\"version\": 1, \"tool\": \"mixy\", \"format\": \"yaml\"}", Out, Error));
  EXPECT_EQ(Error, "field 'format' must be one of text|json|sarif");

  EXPECT_FALSE(service::decodeRequest(
      "{\"version\": 1, \"tool\": \"mixy\", \"jobs\": -1}", Out, Error));
  EXPECT_EQ(Error, "field 'jobs' must be a non-negative integer");

  // An integral double beyond the target type's range must be rejected,
  // not cast (the out-of-range conversion is undefined behavior).
  EXPECT_FALSE(service::decodeRequest(
      "{\"version\": 1, \"tool\": \"mixy\", \"jobs\": 1e30}", Out, Error));
  EXPECT_EQ(Error, "field 'jobs' must be a non-negative integer");

  EXPECT_FALSE(service::decodeRequest(
      "{\"version\": 1, \"tool\": \"mixy\", \"entry\": \"\"}", Out, Error));
  EXPECT_EQ(Error, "field 'entry' must be a non-empty string");

  // Not JSON at all: the parse error surfaces.
  EXPECT_FALSE(service::decodeRequest("{not json", Out, Error));
  EXPECT_FALSE(Error.empty());
}

TEST(ProtocolTest, UnicodeEscapesDecodeToUtf8) {
  json::Value V;
  std::string Error;
  // ensure_ascii clients (Python json.dumps and friends) escape every
  // non-ASCII character; the decoded bytes must be the UTF-8 the client
  // meant, not a one-byte truncation of the code point.
  ASSERT_TRUE(json::parseDocument(
      "{\"path\": \"caf\\u00e9\", \"text\": \"\\u0041\\u20ac\\ud83d\\ude00\"}",
      V, &Error))
      << Error;
  EXPECT_EQ(V["path"].str(), "caf\xc3\xa9");
  EXPECT_EQ(V["text"].str(), "A\xe2\x82\xac\xf0\x9f\x98\x80");

  // Lone or out-of-order surrogates are malformed input, not data.
  EXPECT_FALSE(json::parseDocument("\"\\ud83d\"", V, &Error));
  EXPECT_FALSE(json::parseDocument("\"\\ude00\\ud83d\"", V, &Error));
  EXPECT_FALSE(json::parseDocument("\"\\ud83dxx\"", V, &Error));
}

TEST(ProtocolTest, ResponseGoldenRoundTrip) {
  service::AnalysisResponse Resp;
  Resp.Exit = 1;
  Resp.Payload = "w1\nw2\n"; // newlines must escape: one line per message
  Resp.Warnings = 2;
  service::DiagnosticSummary D;
  D.Id = "MIX401";
  D.Severity = "warning";
  D.Line = 3;
  D.Column = 7;
  D.Message = "possible null deref";
  Resp.Diagnostics.push_back(D);
  Resp.Metrics.emplace_back("engine.mixy.blocks", 4);
  Resp.FromCache = true;

  const std::string Golden =
      "{\"version\": 1, \"exit\": 1, \"payload\": \"w1\\nw2\\n\", "
      "\"warnings\": 2, \"diagnostics\": [{\"id\": \"MIX401\", "
      "\"severity\": \"warning\", \"line\": 3, \"column\": 7, "
      "\"message\": \"possible null deref\"}], "
      "\"metrics\": {\"engine.mixy.blocks\": 4}, \"from_cache\": true}";
  EXPECT_EQ(service::encodeResponse(Resp), Golden);
  EXPECT_EQ(Golden.find('\n'), std::string::npos);

  service::AnalysisResponse Out;
  std::string Error;
  ASSERT_TRUE(service::decodeResponse(Golden, Out, Error)) << Error;
  EXPECT_EQ(Out.Exit, 1);
  EXPECT_EQ(Out.Payload, "w1\nw2\n");
  EXPECT_EQ(Out.Warnings, 2u);
  ASSERT_EQ(Out.Diagnostics.size(), 1u);
  EXPECT_EQ(Out.Diagnostics[0].Id, "MIX401");
  EXPECT_EQ(Out.Diagnostics[0].Line, 3u);
  ASSERT_EQ(Out.Metrics.size(), 1u);
  EXPECT_EQ(Out.Metrics[0].first, "engine.mixy.blocks");
  EXPECT_EQ(Out.Metrics[0].second, 4u);
  EXPECT_TRUE(Out.FromCache);
  EXPECT_EQ(service::encodeResponse(Out), Golden);

  EXPECT_FALSE(service::decodeResponse(
      "{\"version\": 1, \"exit\": 0, \"bogus\": 1}", Out, Error));
  EXPECT_EQ(Error, "unknown response field 'bogus'");
}

TEST(ProtocolTest, ResponseTelemetryFieldsGoldenRoundTrip) {
  service::AnalysisResponse Resp;
  Resp.Exit = 0;
  Resp.RequestId = "r-42";
  Resp.TotalUs = 1234;
  Resp.PhaseUs[(unsigned)obs::Phase::Parse] = 10;
  Resp.PhaseUs[(unsigned)obs::Phase::Typecheck] = 1200;
  obs::TraceEvent Span;
  Span.Name = "phase.parse";
  Span.Cat = "phase";
  Span.Ts = 5;
  Span.Dur = 10;
  Span.Tid = 1;
  Resp.Spans.push_back(Span);

  const std::string Golden =
      "{\"version\": 1, \"exit\": 0, \"request_id\": \"r-42\", "
      "\"total_us\": 1234, \"phases\": {\"parse\": 10, \"typecheck\": 1200}, "
      "\"spans\": [{\"name\": \"phase.parse\", \"cat\": \"phase\", "
      "\"ts\": 5, \"dur\": 10, \"tid\": 1}]}";
  EXPECT_EQ(service::encodeResponse(Resp), Golden);

  service::AnalysisResponse Out;
  std::string Error;
  ASSERT_TRUE(service::decodeResponse(Golden, Out, Error)) << Error;
  EXPECT_EQ(Out.RequestId, "r-42");
  EXPECT_EQ(Out.TotalUs, 1234u);
  EXPECT_EQ(Out.PhaseUs[(unsigned)obs::Phase::Parse], 10u);
  EXPECT_EQ(Out.PhaseUs[(unsigned)obs::Phase::Typecheck], 1200u);
  EXPECT_EQ(Out.PhaseUs[(unsigned)obs::Phase::Solver], 0u);
  ASSERT_EQ(Out.Spans.size(), 1u);
  EXPECT_EQ(Out.Spans[0].Name, "phase.parse");
  EXPECT_EQ(Out.Spans[0].Cat, "phase");
  EXPECT_EQ(Out.Spans[0].Ts, 5u);
  EXPECT_EQ(Out.Spans[0].Dur, 10u);
  EXPECT_EQ(Out.Spans[0].Tid, 1u);
  EXPECT_EQ(Out.Spans[0].Ph, obs::TracePhase::Complete);
  EXPECT_EQ(service::encodeResponse(Out), Golden);

  // A response with no telemetry encodes none of the new fields.
  service::AnalysisResponse Plain;
  EXPECT_EQ(service::encodeResponse(Plain), "{\"version\": 1, \"exit\": 0}");

  // Strictness: unknown phase names and malformed spans are rejected.
  EXPECT_FALSE(service::decodeResponse(
      "{\"version\": 1, \"exit\": 0, \"phases\": {\"warp\": 3}}", Out, Error));
  EXPECT_EQ(Error, "field 'phases' has unknown phase 'warp'");
  EXPECT_FALSE(service::decodeResponse(
      "{\"version\": 1, \"exit\": 0, \"spans\": [{\"name\": \"x\"}]}", Out,
      Error));
  EXPECT_EQ(Error, "field 'spans' entries are malformed");
}

TEST(ProtocolTest, RpcIdEncoding) {
  json::Value Id;
  Id.K = json::Value::Kind::Number;
  Id.Num = 7;
  EXPECT_EQ(service::encodeRpcId(Id), "7");

  Id.K = json::Value::Kind::String;
  Id.Str = "req-\"1\"";
  EXPECT_EQ(service::encodeRpcId(Id), "\"req-\\\"1\\\"\"");

  Id.K = json::Value::Kind::Null;
  EXPECT_EQ(service::encodeRpcId(Id), "null");

  // Anything else (a boolean id is not legal JSON-RPC) encodes as null.
  Id.K = json::Value::Kind::Bool;
  Id.B = true;
  EXPECT_EQ(service::encodeRpcId(Id), "null");
}

TEST(ProtocolTest, ErrorAndTimeoutEnvelopeGoldens) {
  // The timeout envelope a client sees when --deadline-ms expires.
  EXPECT_EQ(service::rpcError("7", service::RpcDeadlineExceeded,
                              "request exceeded deadline (150 ms)"),
            "{\"jsonrpc\": \"2.0\", \"id\": 7, \"error\": "
            "{\"code\": -32000, \"message\": "
            "\"request exceeded deadline (150 ms)\"}}");

  // Admission control: max in-flight reached.
  EXPECT_EQ(service::rpcError("\"c1\"", service::RpcServerBusy,
                              "server busy: 8 requests in flight"),
            "{\"jsonrpc\": \"2.0\", \"id\": \"c1\", \"error\": "
            "{\"code\": -32001, \"message\": "
            "\"server busy: 8 requests in flight\"}}");

  EXPECT_EQ(service::rpcResult("1", "{\"version\": 1, \"exit\": 0}"),
            "{\"jsonrpc\": \"2.0\", \"id\": 1, \"result\": "
            "{\"version\": 1, \"exit\": 0}}");

  EXPECT_EQ(service::rpcNotification("diagnostic", "{\"request\": 3}"),
            "{\"jsonrpc\": \"2.0\", \"method\": \"diagnostic\", "
            "\"params\": {\"request\": 3}}");

  // Every envelope must itself parse as one JSON document.
  for (const std::string &Line :
       {service::rpcError("null", service::RpcParseError, "line is not JSON"),
        service::rpcResult("42", "{\"version\": 1, \"exit\": 2}"),
        service::rpcNotification("diagnostic", "{}")}) {
    json::Value V;
    std::string Error;
    EXPECT_TRUE(json::parseDocument(Line, V, &Error)) << Line << ": " << Error;
    EXPECT_EQ(V["jsonrpc"].str(), "2.0");
  }
}

//===----------------------------------------------------------------------===//
// Byte identity: service payloads vs a direct engine run
//===----------------------------------------------------------------------===//

/// Runs mixy exactly as the pre-service CLI did — parse, analyze, render
/// straight off the DiagnosticEngine — so the comparison against
/// AnalysisService is not circular through renderPayload's switch.
struct MixyReference {
  std::string Payload;
  unsigned Warnings = 0;
};

MixyReference referenceMixy(const std::string &Spec, bool Baseline,
                            service::Format F, bool Explain,
                            const std::string &InputName) {
  std::string Source, Error;
  service::AnalysisRequest Probe;
  Probe.Corpus = Spec;
  EXPECT_TRUE(service::AnalysisService::resolveInput(Probe, Source, Error))
      << Error;

  c::CAstContext Ctx;
  DiagnosticEngine Diags;
  obs::MetricsRegistry Reg;
  prov::ProvenanceSink Prov;
  c::MixyOptions Opts;
  Opts.Metrics = &Reg;
  Opts.Prov = (Explain || F == service::Format::Sarif) ? &Prov : nullptr;

  MixyReference Ref;
  const c::CProgram *Program = c::parseC(Source, Ctx, Diags);
  if (Program) {
    if (Baseline) {
      Opts.Qual.Prov = Opts.Prov;
      c::QualInference Inference(*Program, Ctx, Diags, Opts.Qual);
      Inference.analyzeAll();
      Inference.solve();
      Ref.Warnings = Inference.reportWarnings();
    } else {
      c::MixyAnalysis Analysis(*Program, Ctx, Diags, Opts);
      Ref.Warnings = Analysis.run(c::MixyAnalysis::StartMode::Typed, "main");
    }
  }

  switch (F) {
  case service::Format::Sarif: {
    prov::SarifOptions SO;
    SO.ToolName = "mixyc";
    SO.ArtifactUri = InputName;
    Ref.Payload = prov::renderSarif(Diags, SO) + "\n";
    break;
  }
  case service::Format::Json:
    Ref.Payload = Diags.renderJSON(/*Sorted=*/true) + "\n";
    break;
  case service::Format::Text:
    Ref.Payload = Explain ? prov::renderExplainText(Diags) : Diags.str();
    break;
  }
  return Ref;
}

TEST(ServiceByteIdentityTest, MixyMatchesDirectEngineRun) {
  for (service::Format F : {service::Format::Text, service::Format::Json,
                            service::Format::Sarif}) {
    service::AnalysisService Svc; // CLI configuration
    service::AnalysisRequest Req;
    Req.ToolKind = service::Tool::Mixy;
    Req.Corpus = "vsftpd";
    Req.InputName = "@vsftpd";
    Req.OutputFormat = F;
    service::AnalysisResponse Resp = Svc.run(Req);

    MixyReference Ref =
        referenceMixy("vsftpd", /*Baseline=*/false, F, /*Explain=*/false,
                      "@vsftpd");
    EXPECT_EQ(Resp.Payload, Ref.Payload) << "format " << (int)F;
    EXPECT_EQ(Resp.Warnings, Ref.Warnings);
    EXPECT_EQ(Resp.Exit, Ref.Warnings == 0 ? 0 : 1);
  }
}

TEST(ServiceByteIdentityTest, MixyExplainMatchesDirectEngineRun) {
  service::AnalysisService Svc;
  service::AnalysisRequest Req;
  Req.ToolKind = service::Tool::Mixy;
  Req.Corpus = "vsftpd";
  Req.InputName = "@vsftpd";
  Req.Explain = true;
  service::AnalysisResponse Resp = Svc.run(Req);

  MixyReference Ref = referenceMixy("vsftpd", /*Baseline=*/false,
                                    service::Format::Text, /*Explain=*/true,
                                    "@vsftpd");
  EXPECT_EQ(Resp.Payload, Ref.Payload);
  EXPECT_NE(Resp.Payload.find("qualifier flow:"), std::string::npos);
}

TEST(ServiceByteIdentityTest, BaselineMatchesDirectEngineRun) {
  service::AnalysisService Svc;
  service::AnalysisRequest Req;
  Req.ToolKind = service::Tool::Mixy;
  Req.Corpus = "case1:baseline";
  Req.InputName = "@case1:baseline";
  Req.Baseline = true;
  service::AnalysisResponse Resp = Svc.run(Req);

  MixyReference Ref = referenceMixy("case1:baseline", /*Baseline=*/true,
                                    service::Format::Text, /*Explain=*/false,
                                    "@case1:baseline");
  EXPECT_EQ(Resp.Payload, Ref.Payload);
  EXPECT_EQ(Resp.Warnings, Ref.Warnings);
  EXPECT_GT(Resp.Warnings, 0u) << "baseline case1 should warn";
}

TEST(ServiceByteIdentityTest, MixCheckMatchesDirectEngineRun) {
  const std::string Source = "{s if b then {t 1 + true t} else {t 0 t} s}";
  for (service::Format F : {service::Format::Text, service::Format::Json,
                            service::Format::Sarif}) {
    service::AnalysisService Svc;
    service::AnalysisRequest Req;
    Req.ToolKind = service::Tool::MixCheck;
    Req.Source = Source;
    Req.HasSource = true;
    Req.OutputFormat = F;
    Req.Vars.emplace_back("b", "bool");
    service::AnalysisResponse Resp = Svc.run(Req);

    // The reference run, straight through the engines.
    AstContext Ctx;
    DiagnosticEngine Diags;
    obs::MetricsRegistry Reg;
    prov::ProvenanceSink Prov;
    MixOptions Opts;
    Opts.Metrics = &Reg;
    Opts.Prov = F == service::Format::Sarif ? &Prov : nullptr;
    const Expr *Program = parseExpression(Source, Ctx, Diags);
    ASSERT_NE(Program, nullptr);
    TypeEnv Gamma;
    Gamma["b"] = Ctx.types().boolType();
    MixChecker Mix(Ctx.types(), Diags, Opts);
    const Type *Result = Mix.checkTyped(Program, Gamma);

    EXPECT_EQ(Resp.Payload,
              service::AnalysisService::renderPayload(
                  Diags, F, /*Explain=*/false, "mixcheck", ""));
    EXPECT_EQ(Result == nullptr, !Resp.Accepted);
    EXPECT_FALSE(Resp.Accepted);
    EXPECT_EQ(Resp.Exit, 1);
  }
}

TEST(ServiceByteIdentityTest, MixCheckAcceptance) {
  service::AnalysisService Svc;
  service::AnalysisRequest Req;
  Req.ToolKind = service::Tool::MixCheck;
  Req.Source = "{s if true then {t 5 t} else {t 1 + true t} s}";
  Req.HasSource = true;
  service::AnalysisResponse Resp = Svc.run(Req);
  EXPECT_EQ(Resp.Exit, 0);
  EXPECT_TRUE(Resp.Accepted);
  EXPECT_EQ(Resp.ResultType, "int");
  EXPECT_TRUE(Resp.Payload.empty()); // no diagnostics in text mode
}

TEST(ServiceByteIdentityTest, MixCheckBadVarType) {
  service::AnalysisService Svc;
  service::AnalysisRequest Req;
  Req.ToolKind = service::Tool::MixCheck;
  Req.Source = "1 + 2";
  Req.HasSource = true;
  Req.Vars.emplace_back("x", "bogus");
  service::AnalysisResponse Resp = Svc.run(Req);
  EXPECT_EQ(Resp.Exit, 2);
  EXPECT_EQ(Resp.ErrorText, "bad type 'bogus' for variable x");
}

//===----------------------------------------------------------------------===//
// Input resolution and request identity
//===----------------------------------------------------------------------===//

TEST(ServiceTest, ResolveInputShapes) {
  std::string Source, Error;

  service::AnalysisRequest Inline;
  Inline.Source = "int main(void) { return 0; }";
  Inline.HasSource = true;
  Inline.Corpus = "case1"; // inline wins over corpus
  EXPECT_TRUE(service::AnalysisService::resolveInput(Inline, Source, Error));
  EXPECT_EQ(Source, Inline.Source);

  service::AnalysisRequest Corpus;
  Corpus.Corpus = "case1";
  EXPECT_TRUE(service::AnalysisService::resolveInput(Corpus, Source, Error));
  EXPECT_FALSE(Source.empty());

  service::AnalysisRequest Unknown;
  Unknown.Corpus = "case9";
  EXPECT_FALSE(service::AnalysisService::resolveInput(Unknown, Source, Error));
  EXPECT_EQ(Error, "unknown corpus 'case9'");

  service::AnalysisRequest Missing;
  Missing.Path = "/nonexistent/mix-service-test.c";
  EXPECT_FALSE(service::AnalysisService::resolveInput(Missing, Source, Error));
  EXPECT_EQ(Error, "cannot read '/nonexistent/mix-service-test.c'");

  service::AnalysisRequest Empty;
  EXPECT_FALSE(service::AnalysisService::resolveInput(Empty, Source, Error));
  EXPECT_EQ(Error, "no input");

  // Through run(): a resolution failure is the usage-error response shape.
  service::AnalysisService Svc;
  service::AnalysisResponse Resp = Svc.run(Unknown);
  EXPECT_EQ(Resp.Exit, 2);
  EXPECT_EQ(Resp.ErrorText, "unknown corpus 'case9'");
  EXPECT_TRUE(Resp.Payload.empty());
}

TEST(ServiceTest, RequestKeyExcludesJobsOnly) {
  service::AnalysisService Svc;
  service::AnalysisRequest Req;
  Req.Corpus = "case1";

  service::AnalysisRequest MoreJobs = Req;
  MoreJobs.Jobs = 8;
  // Results are jobs-invariant, so the identity must coalesce them...
  EXPECT_EQ(Svc.requestKey(Req, "src"), Svc.requestKey(MoreJobs, "src"));

  // ...but any output-affecting knob separates the keys.
  service::AnalysisRequest Json = Req;
  Json.OutputFormat = service::Format::Json;
  EXPECT_NE(Svc.requestKey(Req, "src"), Svc.requestKey(Json, "src"));
  EXPECT_NE(Svc.requestKey(Req, "src"), Svc.requestKey(Req, "other src"));
}

//===----------------------------------------------------------------------===//
// serve(): response cache, dedup, invalidation, warm sessions
//===----------------------------------------------------------------------===//

service::ServiceConfig daemonConfig() {
  service::ServiceConfig SC;
  SC.KeepWarm = true;
  SC.PerRequestMetrics = true;
  return SC;
}

uint64_t metricValue(const service::AnalysisResponse &Resp,
                     const std::string &Name) {
  for (const auto &[N, V] : Resp.Metrics)
    if (N == Name)
      return V;
  return 0;
}

TEST(ServiceServeTest, SecondIdenticalRequestAnswersFromCache) {
  service::AnalysisService Svc(daemonConfig());
  service::AnalysisRequest Req;
  Req.ToolKind = service::Tool::Mixy;
  Req.Corpus = "case1";

  service::AnalysisResponse Cold = Svc.serve(Req);
  EXPECT_FALSE(Cold.FromCache);
  // A cold request carries its engine deltas — proof the fixpoint ran.
  EXPECT_FALSE(Cold.Metrics.empty());

  service::AnalysisResponse Warm = Svc.serve(Req);
  EXPECT_TRUE(Warm.FromCache);
  // ...and a warm one carries none — proof it did not run again.
  EXPECT_TRUE(Warm.Metrics.empty());
  EXPECT_EQ(Warm.Payload, Cold.Payload);
  EXPECT_EQ(Warm.Exit, Cold.Exit);
  EXPECT_EQ(Warm.Warnings, Cold.Warnings);

  EXPECT_EQ(Svc.metrics().counterValue("service.requests"), 1u);
  EXPECT_EQ(Svc.metrics().counterValue("service.cache.hits"), 1u);
}

TEST(ServiceServeTest, UsageErrorsAreNotCached) {
  service::AnalysisService Svc(daemonConfig());
  service::AnalysisRequest Req;
  Req.Corpus = "case9";
  service::AnalysisResponse A = Svc.serve(Req);
  service::AnalysisResponse B = Svc.serve(Req);
  EXPECT_EQ(A.Exit, 2);
  EXPECT_FALSE(A.FromCache);
  EXPECT_FALSE(B.FromCache); // cheap to reproduce; no cache slot spent
}

TEST(ServiceServeTest, FileChangedDropsCachedPathResponses) {
  std::string Path = ::testing::TempDir() + "mix_service_filechanged.c";
  {
    std::ofstream Out(Path, std::ios::trunc);
    Out << "int main(void) { return 0; }\n";
  }

  service::AnalysisService Svc(daemonConfig());
  service::AnalysisRequest Req;
  Req.ToolKind = service::Tool::Mixy;
  Req.Path = Path;

  service::AnalysisResponse Cold = Svc.serve(Req);
  EXPECT_FALSE(Cold.FromCache);
  EXPECT_TRUE(Svc.serve(Req).FromCache);

  Svc.fileChanged(Path);
  EXPECT_EQ(Svc.metrics().counterValue("service.file_changed"), 1u);
  service::AnalysisResponse After = Svc.serve(Req);
  EXPECT_FALSE(After.FromCache);
  EXPECT_EQ(After.Payload, Cold.Payload); // same bytes -> same findings

  std::filesystem::remove(Path);
}

TEST(ServiceServeTest, FileChangedForgetsEvictionOrder) {
  // fileChanged must drop invalidated keys from the eviction queue too:
  // with a stale front entry left behind, a re-cached key is queued
  // twice and the duplicate later evicts the fresh response early.
  std::string Path = ::testing::TempDir() + "mix_service_fc_order.c";
  {
    std::ofstream Out(Path, std::ios::trunc);
    Out << "int main(void) { return 0; }\n";
  }

  service::ServiceConfig SC = daemonConfig();
  SC.ResponseCacheCap = 2;
  service::AnalysisService Svc(SC);

  service::AnalysisRequest A;
  A.ToolKind = service::Tool::Mixy;
  A.Path = Path;
  service::AnalysisRequest B;
  B.ToolKind = service::Tool::Mixy;
  B.Corpus = "case1";

  EXPECT_FALSE(Svc.serve(A).FromCache); // cache: [A]
  Svc.fileChanged(Path);                // cache: [] (queue too)
  EXPECT_FALSE(Svc.serve(A).FromCache); // cache: [A] again
  EXPECT_FALSE(Svc.serve(B).FromCache); // cache: [A, B] — within cap

  // Both must still be resident; a stale queue entry for A would have
  // evicted the fresh A when B was cached.
  EXPECT_TRUE(Svc.serve(A).FromCache);
  EXPECT_TRUE(Svc.serve(B).FromCache);

  std::filesystem::remove(Path);
}

TEST(ServiceServeTest, WarmInMemorySessionServesBlockSummaries) {
  // The daemon's warm in-memory persist session: a repeat run() (no
  // response cache involved) must answer every block lookup from the
  // session instead of re-running the block, with identical output.
  const std::string Source =
      "int *g_p;\n"
      "void use(void) MIX(symbolic) {\n"
      "  int x;\n"
      "  if (g_p != NULL) {\n"
      "    x = *g_p;\n"
      "  }\n"
      "  x = *g_p;\n"
      "}\n"
      "int main(void) {\n"
      "  g_p = NULL;\n"
      "  use();\n"
      "  return 0;\n"
      "}\n";
  service::AnalysisService Svc(daemonConfig());
  service::AnalysisRequest Req;
  Req.ToolKind = service::Tool::Mixy;
  Req.Source = Source;
  Req.HasSource = true;
  Req.WarnDerefs = true;

  service::AnalysisResponse Cold = Svc.run(Req);
  EXPECT_GT(Cold.Warnings, 0u);
  EXPECT_GT(metricValue(Cold, "persist.block.stores"), 0u);

  service::AnalysisResponse WarmRun = Svc.run(Req);
  EXPECT_EQ(WarmRun.Payload, Cold.Payload);
  EXPECT_EQ(WarmRun.Warnings, Cold.Warnings);
  EXPECT_GT(metricValue(WarmRun, "persist.block.hits"), 0u);
  EXPECT_EQ(metricValue(WarmRun, "persist.block.misses"), 0u);
}

TEST(ServiceServeTest, MultiClientStressKeepsAccountingAndBytesExact) {
  // N threads x M requests over a handful of keys. Whatever mix of
  // executions, cache hits, and dedup coalescing the timing produces,
  // two invariants hold: every request is accounted to exactly one of
  // the three counters, and every response for a key carries the same
  // bytes.
  service::AnalysisService Svc(daemonConfig());
  const std::vector<std::string> Corpora = {"case1", "case2", "case3",
                                            "case4"};
  const unsigned Threads = 6, PerThread = 8;

  std::vector<std::vector<std::pair<size_t, service::AnalysisResponse>>>
      Results(Threads);
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T != Threads; ++T)
    Pool.emplace_back([&, T] {
      for (unsigned I = 0; I != PerThread; ++I) {
        size_t Pick = (T + I) % Corpora.size();
        service::AnalysisRequest Req;
        Req.ToolKind = service::Tool::Mixy;
        Req.Corpus = Corpora[Pick];
        Results[T].emplace_back(Pick, Svc.serve(Req));
      }
    });
  for (std::thread &Th : Pool)
    Th.join();

  const obs::MetricsRegistry &Reg = Svc.metrics();
  EXPECT_EQ(Threads * PerThread, Reg.counterValue("service.requests") +
                                     Reg.counterValue("service.cache.hits") +
                                     Reg.counterValue("service.dedup.hits"));
  // Each distinct key executed at least once and at most... well, once:
  // with 4 keys and 48 sends, all 4 must be in the cache by the end.
  EXPECT_GE(Reg.counterValue("service.requests"), Corpora.size());

  std::map<size_t, service::AnalysisResponse> Canonical;
  for (const auto &PerThreadResults : Results)
    for (const auto &[Pick, Resp] : PerThreadResults) {
      auto [It, New] = Canonical.emplace(Pick, Resp);
      if (!New) {
        EXPECT_EQ(Resp.Payload, It->second.Payload) << Corpora[Pick];
        EXPECT_EQ(Resp.Exit, It->second.Exit) << Corpora[Pick];
        EXPECT_EQ(Resp.Warnings, It->second.Warnings) << Corpora[Pick];
      }
      if (Resp.FromCache || Resp.Deduped) {
        EXPECT_TRUE(Resp.Metrics.empty());
      }
    }
}

TEST(ServiceServeTest, ConcurrentIdenticalRequestsCoalesce) {
  // Volleys of simultaneous identical requests with a fresh key each
  // round; the race window is wide enough that a bounded number of
  // rounds reliably produces at least one dedup coalescing. (A single
  // unretried volley would be flaky; the accounting identity above is
  // the deterministic backstop.)
  service::AnalysisService Svc(daemonConfig());
  const unsigned Threads = 6;
  bool Coalesced = false;
  for (int Attempt = 0; Attempt != 25 && !Coalesced; ++Attempt) {
    service::AnalysisRequest Req;
    Req.ToolKind = service::Tool::Mixy;
    Req.Corpus = "case1";
    Req.InputName = "volley-" + std::to_string(Attempt); // fresh key
    // Jobs > 1 makes the executing thread block on the pool's condition
    // variable mid-request; on a single-core host that yields the CPU to
    // the other volley threads while the request is still in flight,
    // which is the window the dedup path needs. (Jobs is excluded from
    // the request key, so this does not perturb the key.)
    Req.Jobs = 2;
    uint64_t Before = Svc.metrics().counterValue("service.dedup.hits");

    std::atomic<unsigned> Ready{0};
    std::vector<service::AnalysisResponse> Resps(Threads);
    std::vector<std::thread> Pool;
    for (unsigned T = 0; T != Threads; ++T)
      Pool.emplace_back([&, T] {
        Ready.fetch_add(1);
        // Start line. Sleeping (not spinning) matters on a single-core
        // host: sleepers keep a low vruntime, so when they wake they
        // preempt whichever thread is mid-execute and land in the
        // in-flight window instead of finding a finished, cached
        // response.
        while (Ready.load() != Threads)
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        Resps[T] = Svc.serve(Req);
      });
    for (std::thread &Th : Pool)
      Th.join();

    for (unsigned T = 1; T != Threads; ++T) {
      EXPECT_EQ(Resps[T].Payload, Resps[0].Payload);
      if (Resps[T].Deduped) {
        EXPECT_TRUE(Resps[T].Metrics.empty());
      }
    }
    Coalesced = Svc.metrics().counterValue("service.dedup.hits") > Before;
  }
  EXPECT_TRUE(Coalesced) << "no volley coalesced in 25 attempts";
}

//===----------------------------------------------------------------------===//
// serve(): per-request telemetry (request ids, phase attribution, spans)
//===----------------------------------------------------------------------===//

TEST(ServiceServeTest, TelemetryOffLeavesResponseClean) {
  // The default daemon config has RequestTelemetry off: responses carry
  // no ids, no phase attribution, no spans, and the request-latency
  // histogram never materializes — the null-handle off switch.
  service::AnalysisService Svc(daemonConfig());
  service::AnalysisRequest Req;
  Req.ToolKind = service::Tool::Mixy;
  Req.Corpus = "case1";

  service::AnalysisResponse Resp = Svc.serve(Req);
  EXPECT_TRUE(Resp.RequestId.empty());
  EXPECT_EQ(Resp.TotalUs, 0u);
  for (uint64_t V : Resp.PhaseUs)
    EXPECT_EQ(V, 0u);
  EXPECT_TRUE(Resp.Spans.empty());
  EXPECT_EQ(Svc.metrics().histogramSnapshot("service.request.us").Count, 0u);
  EXPECT_TRUE(Svc.slowRequests().empty());
}

TEST(ServiceServeTest, TelemetryPhaseBreakdownAndFreshIds) {
  service::ServiceConfig SC = daemonConfig();
  SC.RequestTelemetry = true;
  service::AnalysisService Svc(SC);
  service::AnalysisRequest Req;
  Req.ToolKind = service::Tool::Mixy;
  Req.Corpus = "case1";

  // Cold: the request executed, so it carries a wall time, per-phase
  // attribution, and a slot in the slow-request log.
  service::AnalysisResponse Cold = Svc.serve(Req);
  EXPECT_FALSE(Cold.FromCache);
  EXPECT_EQ(Cold.RequestId, "r-1");
  EXPECT_GT(Cold.TotalUs, 0u);
  bool AnyPhase = false;
  for (uint64_t V : Cold.PhaseUs)
    AnyPhase |= V != 0;
  EXPECT_TRUE(AnyPhase);
  // Inclusive attribution: no phase can outlast the whole request.
  for (uint64_t V : Cold.PhaseUs)
    EXPECT_LE(V, Cold.TotalUs);
  // Spans stay off unless the request traces.
  EXPECT_TRUE(Cold.Spans.empty());
  EXPECT_EQ(Svc.metrics().histogramSnapshot("service.request.us").Count, 1u);
  ASSERT_EQ(Svc.slowRequests().size(), 1u);
  EXPECT_EQ(Svc.slowRequests()[0].Id, "r-1");
  EXPECT_EQ(Svc.slowRequests()[0].TotalUs, Cold.TotalUs);

  // Warm: a cache hit gets a fresh id (it is a distinct request) but no
  // phase work, no histogram sample, and no slow-log entry — nothing
  // executed.
  service::AnalysisResponse Warm = Svc.serve(Req);
  EXPECT_TRUE(Warm.FromCache);
  EXPECT_EQ(Warm.RequestId, "r-2");
  EXPECT_EQ(Warm.TotalUs, 0u);
  for (uint64_t V : Warm.PhaseUs)
    EXPECT_EQ(V, 0u);
  EXPECT_TRUE(Warm.Spans.empty());
  EXPECT_EQ(Svc.metrics().histogramSnapshot("service.request.us").Count, 1u);
  EXPECT_EQ(Svc.slowRequests().size(), 1u);
}

TEST(ServiceServeTest, ConcurrentRequestsGetDisjointSpanTrees) {
  // Two requests in flight at once, each tracing: every span a response
  // carries must come from its own request's sink — distinct ids,
  // exactly one "phase.parse" span each, no cross-request leakage.
  service::ServiceConfig SC = daemonConfig();
  SC.RequestTelemetry = true;
  service::AnalysisService Svc(SC);

  service::AnalysisRequest A;
  A.ToolKind = service::Tool::Mixy;
  A.Corpus = "case1";
  A.Trace = true;
  service::AnalysisRequest B = A;
  B.Corpus = "case2";

  service::AnalysisResponse RespA, RespB;
  std::thread TA([&] { RespA = Svc.serve(A); });
  std::thread TB([&] { RespB = Svc.serve(B); });
  TA.join();
  TB.join();

  EXPECT_FALSE(RespA.RequestId.empty());
  EXPECT_FALSE(RespB.RequestId.empty());
  EXPECT_NE(RespA.RequestId, RespB.RequestId);

  auto CountParse = [](const std::vector<obs::TraceEvent> &Spans) {
    size_t N = 0;
    for (const obs::TraceEvent &E : Spans)
      N += E.Name == "phase.parse";
    return N;
  };
  EXPECT_FALSE(RespA.Spans.empty());
  EXPECT_FALSE(RespB.Spans.empty());
  EXPECT_EQ(CountParse(RespA.Spans), 1u);
  EXPECT_EQ(CountParse(RespB.Spans), 1u);

  // Both request trees were also imported into the service-global sink.
  size_t GlobalParse = 0;
  for (const obs::TraceEvent &E : Svc.traceSink().snapshotEvents())
    GlobalParse += E.Name == "phase.parse";
  EXPECT_EQ(GlobalParse, 2u);
}

//===----------------------------------------------------------------------===//
// MetricsRegistry snapshot/delta (satellite 3)
//===----------------------------------------------------------------------===//

TEST(MetricsSnapshotTest, DeltaSinceReportsOnlyGrowth) {
  obs::MetricsRegistry Reg;
  Reg.counter("a").add(2);
  Reg.counter("steady").add(5);

  obs::MetricsSnapshot Before = Reg.snapshot();
  Reg.counter("a").add(3);
  Reg.counter("b").inc(); // born after the snapshot: counts from zero

  std::vector<std::pair<std::string, uint64_t>> Delta =
      Reg.deltaSince(Before);
  ASSERT_EQ(Delta.size(), 2u); // "steady" did not grow -> absent
  EXPECT_EQ(Delta[0].first, "a");
  EXPECT_EQ(Delta[0].second, 3u);
  EXPECT_EQ(Delta[1].first, "b");
  EXPECT_EQ(Delta[1].second, 1u);

  EXPECT_TRUE(Reg.deltaSince(Reg.snapshot()).empty());
}

//===----------------------------------------------------------------------===//
// OptionParser groups (satellite 1)
//===----------------------------------------------------------------------===//

bool parseArgs(driver::OptionParser &P, std::vector<std::string> Args) {
  std::vector<char *> Argv;
  static std::string Tool = "tool";
  Argv.push_back(Tool.data());
  for (std::string &A : Args)
    Argv.push_back(A.data());
  return P.parse((int)Argv.size(), Argv.data());
}

void registerGrouped(driver::OptionParser &P, bool *Grouped, bool *Plain) {
  P.beginGroup("cli-output");
  P.flag("--grouped", Grouped, "a grouped flag");
  P.endGroup();
  P.flag("--plain", Plain, "an ungrouped flag");
}

TEST(OptionGroupTest, GroupsParseNormallyWhenNotExcluded) {
  driver::OptionParser P("tool");
  bool Grouped = false, Plain = false;
  registerGrouped(P, &Grouped, &Plain);
  EXPECT_TRUE(parseArgs(P, {"--grouped", "--plain"}));
  EXPECT_TRUE(Grouped);
  EXPECT_TRUE(Plain);
  EXPECT_EQ(P.optionNames(),
            (std::vector<std::string>{"--grouped", "--plain"}));
}

TEST(OptionGroupTest, ExcludedGroupDropsRegistrationsEntirely) {
  driver::OptionParser P("tool");
  P.excludeGroup("cli-output"); // before the registrar runs, like mixyd
  bool Grouped = false, Plain = false;
  registerGrouped(P, &Grouped, &Plain);

  // Not parsed: the excluded flag gets the unknown-option contract.
  EXPECT_FALSE(parseArgs(P, {"--grouped"}));
  EXPECT_FALSE(Grouped);
  EXPECT_TRUE(parseArgs(P, {"--plain"}));
  EXPECT_TRUE(Plain);

  // Absent from names, help, and did-you-mean.
  EXPECT_EQ(P.optionNames(), (std::vector<std::string>{"--plain"}));
  EXPECT_EQ(P.renderHelp().find("--grouped"), std::string::npos);
  EXPECT_EQ(P.suggestionFor("--groupedx"), "");
}

TEST(OptionGroupTest, UnexcludedParserStillSuggestsGroupedFlags) {
  driver::OptionParser P("tool");
  bool Grouped = false, Plain = false;
  registerGrouped(P, &Grouped, &Plain);
  EXPECT_EQ(P.suggestionFor("--groupedx"), "--grouped");
}

} // namespace
