//===--- TestJson.h - Minimal JSON parser for test assertions ---*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// Just enough of a recursive-descent JSON parser to let tests assert that
// the observability / diagnostics renderers produce well-formed documents
// and to pull individual values back out. Numbers are kept as doubles
// (every number the renderers emit fits exactly).
//
//===----------------------------------------------------------------------===//

#ifndef MIX_TESTS_TESTJSON_H
#define MIX_TESTS_TESTJSON_H

#include <cctype>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace testjson {

struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object } K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<Value> Elems;
  std::map<std::string, Value> Fields;

  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool has(const std::string &Key) const { return Fields.count(Key) != 0; }
  const Value &operator[](const std::string &Key) const {
    static const Value Missing;
    auto It = Fields.find(Key);
    return It == Fields.end() ? Missing : It->second;
  }
  const Value &operator[](size_t I) const { return Elems[I]; }
  size_t size() const { return K == Kind::Array ? Elems.size() : Fields.size(); }
};

class Parser {
public:
  explicit Parser(const std::string &Text) : Text(Text) {}

  /// Parses one JSON document; returns false (with Error set) on any
  /// syntax error or trailing garbage.
  bool parse(Value &Out) {
    Pos = 0;
    if (!parseValue(Out))
      return false;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing characters");
    return true;
  }

  std::string Error;

private:
  bool fail(const std::string &Why) {
    if (Error.empty())
      Error = Why + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() && std::isspace((unsigned char)Text[Pos]))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return fail(std::string("expected '") + C + "'");
  }

  bool parseValue(Value &Out) {
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end");
    char C = Text[Pos];
    if (C == '{')
      return parseObject(Out);
    if (C == '[')
      return parseArray(Out);
    if (C == '"') {
      Out.K = Value::Kind::String;
      return parseString(Out.Str);
    }
    if (C == 't' || C == 'f')
      return parseKeyword(Out);
    if (C == 'n')
      return parseNull(Out);
    return parseNumber(Out);
  }

  bool parseObject(Value &Out) {
    Out.K = Value::Kind::Object;
    if (!consume('{'))
      return false;
    skipWs();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      std::string Key;
      skipWs();
      if (!parseString(Key))
        return false;
      if (!consume(':'))
        return false;
      Value V;
      if (!parseValue(V))
        return false;
      Out.Fields.emplace(std::move(Key), std::move(V));
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      return consume('}');
    }
  }

  bool parseArray(Value &Out) {
    Out.K = Value::Kind::Array;
    if (!consume('['))
      return false;
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      Value V;
      if (!parseValue(V))
        return false;
      Out.Elems.push_back(std::move(V));
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      return consume(']');
    }
  }

  bool parseString(std::string &Out) {
    if (Pos >= Text.size() || Text[Pos] != '"')
      return fail("expected string");
    ++Pos;
    Out.clear();
    while (Pos < Text.size() && Text[Pos] != '"') {
      char C = Text[Pos++];
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("bad escape");
      char E = Text[Pos++];
      switch (E) {
      case '"': Out += '"'; break;
      case '\\': Out += '\\'; break;
      case '/': Out += '/'; break;
      case 'n': Out += '\n'; break;
      case 't': Out += '\t'; break;
      case 'r': Out += '\r'; break;
      case 'b': Out += '\b'; break;
      case 'f': Out += '\f'; break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("bad \\u escape");
        unsigned Code = 0;
        for (int I = 0; I != 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= H - '0';
          else if (H >= 'a' && H <= 'f')
            Code |= H - 'a' + 10;
          else if (H >= 'A' && H <= 'F')
            Code |= H - 'A' + 10;
          else
            return fail("bad \\u digit");
        }
        // The renderers only escape control characters, so ASCII is enough.
        Out += (char)Code;
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    if (Pos >= Text.size())
      return fail("unterminated string");
    ++Pos; // closing quote
    return true;
  }

  bool parseKeyword(Value &Out) {
    if (Text.compare(Pos, 4, "true") == 0) {
      Out.K = Value::Kind::Bool;
      Out.B = true;
      Pos += 4;
      return true;
    }
    if (Text.compare(Pos, 5, "false") == 0) {
      Out.K = Value::Kind::Bool;
      Out.B = false;
      Pos += 5;
      return true;
    }
    return fail("bad keyword");
  }

  bool parseNull(Value &Out) {
    if (Text.compare(Pos, 4, "null") == 0) {
      Out.K = Value::Kind::Null;
      Pos += 4;
      return true;
    }
    return fail("bad keyword");
  }

  bool parseNumber(Value &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit((unsigned char)Text[Pos]) || Text[Pos] == '.' ||
            Text[Pos] == 'e' || Text[Pos] == 'E' || Text[Pos] == '+' ||
            Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return fail("expected value");
    try {
      Out.Num = std::stod(Text.substr(Start, Pos - Start));
    } catch (...) {
      return fail("bad number");
    }
    Out.K = Value::Kind::Number;
    return true;
  }

  const std::string &Text;
  size_t Pos = 0;
};

/// Parses \p Text, aborting the test (via returned bool) on failure.
inline bool parseDocument(const std::string &Text, Value &Out,
                          std::string *ErrorOut = nullptr) {
  Parser P(Text);
  bool Ok = P.parse(Out);
  if (!Ok && ErrorOut)
    *ErrorOut = P.Error;
  return Ok;
}

/// Structural sanity check of a SARIF 2.1.0 log as the provenance
/// renderer emits it: the fixed envelope ($schema, version, one run with
/// a named tool.driver and its rules) plus, per result, the fields every
/// SARIF consumer requires (ruleId resolving into the rules table, level,
/// message.text, at least one location). On failure \p Why says which
/// requirement broke.
inline bool checkSarifShape(const Value &Doc, std::string *Why) {
  auto fail = [&](const std::string &W) {
    if (Why)
      *Why = W;
    return false;
  };
  if (!Doc.isObject())
    return fail("document is not an object");
  if (Doc["$schema"].Str != "https://json.schemastore.org/sarif-2.1.0.json")
    return fail("bad $schema: " + Doc["$schema"].Str);
  if (Doc["version"].Str != "2.1.0")
    return fail("bad version: " + Doc["version"].Str);
  if (!Doc["runs"].isArray() || Doc["runs"].size() != 1)
    return fail("expected exactly one run");
  const Value &Run = Doc["runs"][0];
  const Value &Driver = Run["tool"]["driver"];
  if (!Driver.isObject() || Driver["name"].Str.empty())
    return fail("tool.driver.name missing");
  if (!Driver["rules"].isArray())
    return fail("tool.driver.rules missing");
  for (size_t I = 0; I != Driver["rules"].size(); ++I)
    if (Driver["rules"][I]["id"].Str.empty())
      return fail("rule without id");
  if (!Run["results"].isArray())
    return fail("results missing");
  for (size_t I = 0; I != Run["results"].size(); ++I) {
    const Value &R = Run["results"][I];
    std::string Where = "result " + std::to_string(I) + ": ";
    if (R["ruleId"].Str.empty())
      return fail(Where + "ruleId missing");
    if (R["ruleIndex"].K != Value::Kind::Number ||
        (size_t)R["ruleIndex"].Num >= Driver["rules"].size())
      return fail(Where + "ruleIndex out of range");
    if (Driver["rules"][(size_t)R["ruleIndex"].Num]["id"].Str !=
        R["ruleId"].Str)
      return fail(Where + "ruleIndex does not resolve to ruleId");
    if (R["level"].Str != "error" && R["level"].Str != "warning" &&
        R["level"].Str != "note")
      return fail(Where + "bad level: " + R["level"].Str);
    if (R["message"]["text"].Str.empty())
      return fail(Where + "message.text missing");
    if (!R["locations"].isArray() || R["locations"].size() == 0)
      return fail(Where + "locations missing");
    for (size_t L = 0; L != R["locations"].size(); ++L)
      if (R["locations"][L]["physicalLocation"]["artifactLocation"]["uri"]
              .Str.empty())
        return fail(Where + "location without artifact uri");
  }
  return true;
}

} // namespace testjson

#endif // MIX_TESTS_TESTJSON_H
