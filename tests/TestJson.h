//===--- TestJson.h - JSON assertions for tests -----------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// The recursive-descent parser that used to live here was promoted to
// src/support/Json.h (mix::json) so the service protocol and mixyd can
// reuse it; tests keep their historical `testjson::` spelling via the
// aliases below. checkSarifShape stays test-only — it encodes what the
// tests demand of the SARIF renderer, not a library contract.
//
//===----------------------------------------------------------------------===//

#ifndef MIX_TESTS_TESTJSON_H
#define MIX_TESTS_TESTJSON_H

#include "support/Json.h"

#include <string>

namespace testjson {

using Value = mix::json::Value;
using Parser = mix::json::Parser;
using mix::json::parseDocument;

/// Structural sanity check of a SARIF 2.1.0 log as the provenance
/// renderer emits it: the fixed envelope ($schema, version, one run with
/// a named tool.driver and its rules) plus, per result, the fields every
/// SARIF consumer requires (ruleId resolving into the rules table, level,
/// message.text, at least one location). On failure \p Why says which
/// requirement broke.
inline bool checkSarifShape(const Value &Doc, std::string *Why) {
  auto fail = [&](const std::string &W) {
    if (Why)
      *Why = W;
    return false;
  };
  if (!Doc.isObject())
    return fail("document is not an object");
  if (Doc["$schema"].Str != "https://json.schemastore.org/sarif-2.1.0.json")
    return fail("bad $schema: " + Doc["$schema"].Str);
  if (Doc["version"].Str != "2.1.0")
    return fail("bad version: " + Doc["version"].Str);
  if (!Doc["runs"].isArray() || Doc["runs"].size() != 1)
    return fail("expected exactly one run");
  const Value &Run = Doc["runs"][0];
  const Value &Driver = Run["tool"]["driver"];
  if (!Driver.isObject() || Driver["name"].Str.empty())
    return fail("tool.driver.name missing");
  if (!Driver["rules"].isArray())
    return fail("tool.driver.rules missing");
  for (size_t I = 0; I != Driver["rules"].size(); ++I)
    if (Driver["rules"][I]["id"].Str.empty())
      return fail("rule without id");
  if (!Run["results"].isArray())
    return fail("results missing");
  for (size_t I = 0; I != Run["results"].size(); ++I) {
    const Value &R = Run["results"][I];
    std::string Where = "result " + std::to_string(I) + ": ";
    if (R["ruleId"].Str.empty())
      return fail(Where + "ruleId missing");
    if (R["ruleIndex"].K != Value::Kind::Number ||
        (size_t)R["ruleIndex"].Num >= Driver["rules"].size())
      return fail(Where + "ruleIndex out of range");
    if (Driver["rules"][(size_t)R["ruleIndex"].Num]["id"].Str !=
        R["ruleId"].Str)
      return fail(Where + "ruleIndex does not resolve to ruleId");
    if (R["level"].Str != "error" && R["level"].Str != "warning" &&
        R["level"].Str != "note")
      return fail(Where + "bad level: " + R["level"].Str);
    if (R["message"]["text"].Str.empty())
      return fail(Where + "message.text missing");
    if (!R["locations"].isArray() || R["locations"].size() == 0)
      return fail(Where + "locations missing");
    for (size_t L = 0; L != R["locations"].size(); ++L)
      if (R["locations"][L]["physicalLocation"]["artifactLocation"]["uri"]
              .Str.empty())
        return fail(Where + "location without artifact uri");
  }
  return true;
}

} // namespace testjson

#endif // MIX_TESTS_TESTJSON_H
