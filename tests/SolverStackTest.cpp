//===--- SolverStackTest.cpp - AssertionStack push/pop coverage -----------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// The incremental assertion stack is the load-bearing abstraction behind
// path exploration (PathSolver pushes branch deltas instead of
// re-solving whole path conditions), so it gets direct coverage here:
// frame semantics (nested push/pop, pop-to-empty, re-assert after pop),
// verdict correctness against from-scratch solving, and the query-saving
// shortcut caches. Every test runs against every registered backend —
// smtlite exercises the native activation-literal stack, dnf the generic
// emulation — so the two implementations cannot drift apart.
//
//===----------------------------------------------------------------------===//

#include "solver/AssertionStack.h"
#include "solver/SolverFactory.h"
#include "solver/TermEval.h"

#include <gtest/gtest.h>

#include <random>

using namespace mix::smt;

namespace {

/// Runs \p Body once per registered backend, with a fresh arena, solver,
/// and stack each time. SCOPED_TRACE names the backend on failure.
template <typename Fn> void forEachBackend(Fn Body) {
  for (const std::string &Name : registeredBackends()) {
    SCOPED_TRACE("backend: " + Name);
    TermArena A;
    std::unique_ptr<ISolver> S = createBackend(Name, A, SmtOptions());
    ASSERT_NE(S, nullptr);
    std::unique_ptr<AssertionStack> Stack = S->openStack();
    ASSERT_NE(Stack, nullptr);
    Body(A, *S, *Stack);
  }
}

} // namespace

TEST(SolverStackTest, EmptyStackIsSat) {
  forEachBackend([](TermArena &A, ISolver &, AssertionStack &St) {
    EXPECT_EQ(St.depth(), 0u);
    EXPECT_EQ(St.numAssertions(), 0u);
    EXPECT_EQ(St.conjunction(), A.trueTerm());
    EXPECT_EQ(St.checkSat(), SolveResult::Sat);
  });
}

TEST(SolverStackTest, NestedFramesRetractInnermost) {
  forEachBackend([](TermArena &A, ISolver &, AssertionStack &St) {
    const Term *X = A.freshIntVar("x");
    St.push();
    St.assertTerm(A.lt(A.intConst(0), X)); // x > 0
    EXPECT_EQ(St.checkSat(), SolveResult::Sat);

    St.push();
    St.assertTerm(A.lt(X, A.intConst(0))); // x < 0: contradiction
    EXPECT_EQ(St.checkSat(), SolveResult::Unsat);

    St.pop(); // retract x < 0
    EXPECT_EQ(St.depth(), 1u);
    SmtModel M;
    ASSERT_EQ(St.checkSat(&M), SolveResult::Sat);
    if (M.Complete) {
      EXPECT_TRUE(evalBool(A.lt(A.intConst(0), X), M));
    }
  });
}

TEST(SolverStackTest, PopToEmptyRestoresTrue) {
  forEachBackend([](TermArena &A, ISolver &, AssertionStack &St) {
    St.push();
    St.assertTerm(A.falseTerm());
    EXPECT_EQ(St.checkSat(), SolveResult::Unsat);
    St.pop();
    EXPECT_EQ(St.depth(), 0u);
    EXPECT_EQ(St.conjunction(), A.trueTerm());
    EXPECT_EQ(St.checkSat(), SolveResult::Sat);
  });
}

TEST(SolverStackTest, ReAssertAfterPopIsSound) {
  // A formula asserted, popped, and re-asserted must get the same
  // verdict both times — the verdict/unsat caches key on the hash-consed
  // fold, so a stale entry would surface exactly here.
  forEachBackend([](TermArena &A, ISolver &, AssertionStack &St) {
    const Term *X = A.freshIntVar("x");
    const Term *Contradiction =
        A.andTerm(A.lt(X, A.intConst(0)), A.lt(A.intConst(0), X));
    for (int Round = 0; Round != 3; ++Round) {
      St.push();
      St.assertTerm(Contradiction);
      EXPECT_EQ(St.checkSat(), SolveResult::Unsat) << "round " << Round;
      St.pop();
      EXPECT_EQ(St.checkSat(), SolveResult::Sat) << "round " << Round;
    }
  });
}

TEST(SolverStackTest, BaseLevelAssertionsSurvivePops) {
  forEachBackend([](TermArena &A, ISolver &, AssertionStack &St) {
    const Term *X = A.freshIntVar("x");
    // Base-level (no open frame): not retractable.
    St.assertTerm(A.le(A.intConst(5), X)); // x >= 5
    St.push();
    St.assertTerm(A.lt(X, A.intConst(3))); // x < 3: contradiction
    EXPECT_EQ(St.checkSat(), SolveResult::Unsat);
    St.pop();
    EXPECT_EQ(St.numAssertions(), 1u);
    EXPECT_EQ(St.checkSat(), SolveResult::Sat);
    St.push();
    St.assertTerm(A.lt(X, A.intConst(10))); // x < 10: compatible
    EXPECT_EQ(St.checkSat(), SolveResult::Sat);
  });
}

TEST(SolverStackTest, InterleavedSatUnsatFlips) {
  // Alternate between compatible and contradicting deltas across frame
  // boundaries; the Unsat-prefix cut must be invalidated by each pop.
  forEachBackend([](TermArena &A, ISolver &, AssertionStack &St) {
    const Term *P = A.freshBoolVar("p");
    const Term *Q = A.freshBoolVar("q");
    St.push();
    St.assertTerm(P);
    EXPECT_EQ(St.checkSat(), SolveResult::Sat);
    St.push();
    St.assertTerm(A.notTerm(P));
    EXPECT_EQ(St.checkSat(), SolveResult::Unsat);
    St.push();
    St.assertTerm(Q); // extension of an unsat prefix stays unsat
    EXPECT_EQ(St.checkSat(), SolveResult::Unsat);
    St.pop();
    EXPECT_EQ(St.checkSat(), SolveResult::Unsat);
    St.pop(); // back to just p
    EXPECT_EQ(St.checkSat(), SolveResult::Sat);
    St.push();
    St.assertTerm(Q);
    EXPECT_EQ(St.checkSat(), SolveResult::Sat);
  });
}

TEST(SolverStackTest, UnsatPrefixCutAnswersWithoutQueries) {
  forEachBackend([](TermArena &A, ISolver &, AssertionStack &St) {
    const Term *P = A.freshBoolVar("p");
    St.push();
    St.assertTerm(A.andTerm(P, A.notTerm(P)));
    EXPECT_EQ(St.checkSat(), SolveResult::Unsat);
    uint64_t QueriesAfterPrefix = St.stats().Queries;
    for (int I = 0; I != 5; ++I) {
      St.push();
      St.assertTerm(A.freshBoolVar());
      EXPECT_EQ(St.checkSat(), SolveResult::Unsat);
    }
    EXPECT_EQ(St.stats().Queries, QueriesAfterPrefix)
        << "extensions of an unsat prefix must not reach the backend";
    EXPECT_GE(St.stats().UnsatPrefixCuts, 5u);
  });
}

TEST(SolverStackTest, ModelReuseAnswersCompatibleExtension) {
  forEachBackend([](TermArena &A, ISolver &, AssertionStack &St) {
    const Term *X = A.freshIntVar("x");
    St.push();
    St.assertTerm(A.le(A.intConst(0), X)); // x >= 0
    SmtModel M;
    ASSERT_EQ(St.checkSat(&M), SolveResult::Sat);
    if (!M.Complete)
      return; // no model to reuse; nothing to measure
    uint64_t QueriesBefore = St.stats().Queries;
    // A delta the cached model already satisfies (x >= 0 implies x > -1).
    St.push();
    St.assertTerm(A.lt(A.intConst(-1), X));
    EXPECT_EQ(St.checkSat(), SolveResult::Sat);
    EXPECT_EQ(St.stats().Queries, QueriesBefore)
        << "a delta the cached model satisfies must not reach the backend";
    EXPECT_GE(St.stats().ModelReuses, 1u);
  });
}

TEST(SolverStackTest, RepeatCheckSatIsCached) {
  forEachBackend([](TermArena &A, ISolver &, AssertionStack &St) {
    const Term *X = A.freshIntVar("x");
    St.push();
    St.assertTerm(A.lt(X, A.intConst(7)));
    EXPECT_EQ(St.checkSat(), SolveResult::Sat);
    uint64_t QueriesBefore = St.stats().Queries;
    for (int I = 0; I != 4; ++I)
      EXPECT_EQ(St.checkSat(), SolveResult::Sat);
    EXPECT_EQ(St.stats().Queries, QueriesBefore);
  });
}

namespace {

/// Small pool of variables random branch conditions draw from.
struct VarPool {
  std::vector<const Term *> Ints;
  std::vector<const Term *> Bools;
  explicit VarPool(TermArena &A) {
    for (int I = 0; I != 3; ++I)
      Ints.push_back(A.freshIntVar("x" + std::to_string(I)));
    for (int I = 0; I != 2; ++I)
      Bools.push_back(A.freshBoolVar("p" + std::to_string(I)));
  }
};

/// A random branch condition of the shapes path exploration produces:
/// comparisons over small linear terms, boolean literals, and their
/// negations.
const Term *randomBranch(TermArena &A, const VarPool &V, std::mt19937 &Rng) {
  auto IntOf = [&]() -> const Term * {
    switch (Rng() % 3) {
    case 0:
      return V.Ints[Rng() % V.Ints.size()];
    case 1:
      return A.intConst((long long)(Rng() % 9) - 4);
    default:
      return A.add(V.Ints[Rng() % V.Ints.size()],
                   A.intConst((long long)(Rng() % 5) - 2));
    }
  };
  const Term *C;
  switch (Rng() % 6) {
  case 0:
    C = A.lt(IntOf(), IntOf());
    break;
  case 1:
    C = A.le(IntOf(), IntOf());
    break;
  case 2:
    C = A.eqInt(IntOf(), IntOf());
    break;
  case 3:
    C = V.Bools[Rng() % V.Bools.size()];
    break;
  default:
    C = A.orTerm(V.Bools[Rng() % V.Bools.size()], A.lt(IntOf(), IntOf()));
    break;
  }
  return Rng() % 2 ? C : A.notTerm(C);
}

} // namespace

TEST(SolverStackTest, RandomBranchSequencesMatchFromScratch) {
  // 1000 random push/assert/pop/check sequences per backend: every
  // incremental verdict must equal a from-scratch solve of the same live
  // conjunction on an independent solver instance. The seed is fixed and
  // each sequence is derived from it, so a failure names everything
  // needed to replay it.
  const unsigned BaseSeed = 0x5eed5001;
  for (const std::string &Name : registeredBackends()) {
    SCOPED_TRACE("backend: " + Name);
    TermArena A;
    VarPool V(A);
    std::unique_ptr<ISolver> Inc = createBackend(Name, A, SmtOptions());
    std::unique_ptr<ISolver> Scratch = createBackend(Name, A, SmtOptions());
    ASSERT_TRUE(Inc && Scratch);
    for (unsigned Seq = 0; Seq != 1000; ++Seq) {
      std::mt19937 Rng(BaseSeed + Seq);
      std::unique_ptr<AssertionStack> St = Inc->openStack();
      // Independent mirror of the live assertions, one vector per frame
      // (index 0 is the base level) — deliberately not derived from the
      // stack's own bookkeeping, so a lost or leaked assertion shows up
      // as a verdict (or fold) mismatch.
      std::vector<std::vector<const Term *>> Frames(1);
      unsigned Ops = 4 + Rng() % 10;
      for (unsigned Op = 0; Op != Ops; ++Op) {
        const Term *Delta;
        switch (Rng() % 4) {
        case 0: // push a branch delta (the common exploration step)
          St->push();
          Frames.emplace_back();
          Delta = randomBranch(A, V, Rng);
          St->assertTerm(Delta);
          Frames.back().push_back(Delta);
          break;
        case 1: // pop, if a frame is open
          if (St->depth() > 0) {
            St->pop();
            Frames.pop_back();
          }
          break;
        case 2: // assert into the current frame
          Delta = randomBranch(A, V, Rng);
          St->assertTerm(Delta);
          Frames.back().push_back(Delta);
          break;
        default:
          break; // checkSat below
        }
        const Term *Whole = A.trueTerm();
        for (const auto &Frame : Frames)
          for (const Term *T : Frame)
            Whole = A.andTerm(Whole, T);
        ASSERT_EQ(St->conjunction(), Whole)
            << "seq " << Seq << " op " << Op
            << ": stack fold diverged from the asserted sequence";
        SolveResult Fast = St->checkSat();
        SolveResult Slow = Scratch->checkSat(Whole);
        ASSERT_EQ(Fast, Slow)
            << "seq " << Seq << " op " << Op << " (seed base 0x" << std::hex
            << BaseSeed << "): incremental " << solveResultName(Fast)
            << " vs from-scratch " << solveResultName(Slow);
      }
    }
  }
}
