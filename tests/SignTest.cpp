//===--- SignTest.cpp - Tests for the sign-qualifier MIX instantiation ----===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// The sign-qualifier system of Section 2's "Local Refinements of Data",
// checked standalone and mixed with the symbolic executor.
//
//===----------------------------------------------------------------------===//

#include "lang/AstPrinter.h"
#include "lang/Parser.h"
#include "sign/SignMix.h"

#include <gtest/gtest.h>

#include <random>

using namespace mix;

// --- the lattice ---------------------------------------------------------------

TEST(SignLatticeTest, Join) {
  EXPECT_EQ(joinSign(SignQual::Pos, SignQual::Pos), SignQual::Pos);
  EXPECT_EQ(joinSign(SignQual::Pos, SignQual::Zero), SignQual::Unknown);
  EXPECT_EQ(joinSign(SignQual::Neg, SignQual::Unknown), SignQual::Unknown);
}

TEST(SignLatticeTest, Subtyping) {
  EXPECT_TRUE(signSubtype(SignQual::Pos, SignQual::Unknown));
  EXPECT_TRUE(signSubtype(SignQual::Zero, SignQual::Zero));
  EXPECT_FALSE(signSubtype(SignQual::Unknown, SignQual::Pos));
  EXPECT_FALSE(signSubtype(SignQual::Pos, SignQual::Neg));
}

TEST(SignLatticeTest, ArithmeticTables) {
  EXPECT_EQ(addSigns(SignQual::Pos, SignQual::Pos), SignQual::Pos);
  EXPECT_EQ(addSigns(SignQual::Pos, SignQual::Zero), SignQual::Pos);
  EXPECT_EQ(addSigns(SignQual::Pos, SignQual::Neg), SignQual::Unknown);
  EXPECT_EQ(addSigns(SignQual::Zero, SignQual::Zero), SignQual::Zero);
  EXPECT_EQ(subSigns(SignQual::Pos, SignQual::Neg), SignQual::Pos);
  EXPECT_EQ(subSigns(SignQual::Zero, SignQual::Pos), SignQual::Neg);
  EXPECT_EQ(subSigns(SignQual::Pos, SignQual::Pos), SignQual::Unknown);
}

/// Exhaustive lattice soundness: the abstract tables over-approximate the
/// concrete operations on every pair of representative values.
TEST(SignLatticeTest, TablesAreSoundOnRepresentatives) {
  long long Reps[] = {-7, -1, 0, 1, 7};
  for (long long A : Reps)
    for (long long B : Reps) {
      SignQual QA = signOfValue(A), QB = signOfValue(B);
      EXPECT_TRUE(signSubtype(signOfValue(A + B), addSigns(QA, QB)))
          << A << " + " << B;
      EXPECT_TRUE(signSubtype(signOfValue(A - B), subSigns(QA, QB)))
          << A << " - " << B;
    }
}

// --- the checker alone ----------------------------------------------------------

namespace {

class SignCheckTest : public ::testing::Test {
protected:
  std::string stypeOf(std::string_view Source,
                      const SignEnv &Gamma = SignEnv()) {
    Diags.clear();
    const Expr *E = parseExpression(Source, Ctx, Diags);
    EXPECT_NE(E, nullptr) << Diags.str();
    if (!E)
      return "<parse-error>";
    SignMixChecker Mix(Ctx.types(), Diags);
    const SType *S = Mix.checkTyped(E, Gamma);
    return S ? S->str() : "<error>";
  }

  AstContext Ctx;
  DiagnosticEngine Diags;
};

} // namespace

TEST_F(SignCheckTest, LiteralsHaveExactSigns) {
  EXPECT_EQ(stypeOf("3"), "pos int");
  EXPECT_EQ(stypeOf("0"), "zero int");
  EXPECT_EQ(stypeOf("0 - 4"), "neg int");
}

TEST_F(SignCheckTest, ArithmeticPropagatesSigns) {
  EXPECT_EQ(stypeOf("1 + 2"), "pos int");
  EXPECT_EQ(stypeOf("let z = 0 in z + 5"), "pos int");
  EXPECT_EQ(stypeOf("(0 - 1) + (0 - 2)"), "neg int");
  EXPECT_EQ(stypeOf("1 - 2"), "int"); // pos - pos: unknown
}

TEST_F(SignCheckTest, JoinsAtConditionals) {
  EXPECT_EQ(stypeOf("if true then 1 else 2"), "pos int");
  EXPECT_EQ(stypeOf("if true then 1 else 0"), "int"); // pos |_| zero
}

TEST_F(SignCheckTest, ReferencesAreInvariant) {
  EXPECT_EQ(stypeOf("let r = ref 1 in !r"), "pos int");
  // Writing a different sign into a pos cell is the flow-insensitive
  // false positive the symbolic block will later remove.
  EXPECT_EQ(stypeOf("let r = ref 1 in r := 0"), "<error>");
  // Unknown-qualified cells accept any sign.
  EXPECT_EQ(stypeOf("let r = ref (1 - 2) in (r := 0; r := 5; !r)"), "int");
}

TEST_F(SignCheckTest, FunctionsUseLiftedAnnotations) {
  EXPECT_EQ(stypeOf("(fun (x: int) : int -> x + 1) 5"), "int");
  EXPECT_EQ(stypeOf("fun (x: int) : int -> x"), "int -> int");
}

TEST_F(SignCheckTest, GammaCarriesQualifiers) {
  AstContext LocalCtx;
  DiagnosticEngine LocalDiags;
  SignMixChecker Mix(LocalCtx.types(), LocalDiags);
  SignEnv Gamma;
  Gamma["p"] = Mix.signTypes().intType(SignQual::Pos);
  const Expr *E = parseExpression("p + 1", LocalCtx, LocalDiags);
  ASSERT_NE(E, nullptr);
  const SType *S = Mix.checkTyped(E, Gamma);
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->str(), "pos int");
}

// --- the mixed analysis -----------------------------------------------------------

namespace {

class SignMixTest : public ::testing::Test {
protected:
  std::string mixTyped(std::string_view Source,
                       const SignEnv &Gamma = SignEnv()) {
    Diags.clear();
    const Expr *E = parseExpression(Source, Ctx, Diags);
    EXPECT_NE(E, nullptr) << Diags.str();
    if (!E)
      return "<parse-error>";
    Mix = std::make_unique<SignMixChecker>(Ctx.types(), Diags);
    const SType *S = Mix->checkTyped(E, Gamma);
    LastDiags = Diags.str();
    return S ? S->str() : "<error>";
  }

  SignEnv gammaWith(const char *Name, SignQual Q) {
    // Builds Gamma against a throwaway checker sharing Ctx's types.
    Scratch = std::make_unique<SignMixChecker>(Ctx.types(), ScratchDiags);
    SignEnv Gamma;
    Gamma[Name] = Scratch->signTypes().intType(Q);
    return Gamma;
  }

  AstContext Ctx;
  DiagnosticEngine Diags;
  DiagnosticEngine ScratchDiags;
  std::unique_ptr<SignMixChecker> Mix;
  std::unique_ptr<SignMixChecker> Scratch;
  std::string LastDiags;
};

} // namespace

TEST_F(SignMixTest, SymbolicBlocksRecoverResultSigns) {
  // The executor + solver derive a sharper sign than the checker could.
  EXPECT_EQ(mixTyped("{s if true then 1 else 0 s}"), "pos int");
  // Pure checking joins to unknown:
  EXPECT_EQ(mixTyped("if true then 1 else 0"), "int");
}

TEST_F(SignMixTest, PaperSignRefinementExample) {
  // Section 2's example, with the three typed blocks returning the
  // refined variable itself; each branch's sign is recovered exactly and
  // the join is unknown — but, crucially, each typed block checked with
  // x at its refined sign.
  AstContext LocalCtx;
  DiagnosticEngine LocalDiags;
  SignMixChecker LocalMix(LocalCtx.types(), LocalDiags);
  SignEnv Gamma;
  Gamma["x"] = LocalMix.signTypes().intType(SignQual::Unknown);

  // Inside each branch the typed block computes x + x; for pos x the
  // result is pos, so dividing the branches by sign matters: the whole
  // block's type is the join of pos/zero/neg = unknown int, but a
  // variant returning 1 / x+1 / 0-x is provably pos.
  const Expr *E = parseExpression(
      "{s if 0 < x then {t x + x t} "
      "else if x = 0 then {t x t} else {t x + x t} s}",
      LocalCtx, LocalDiags);
  ASSERT_NE(E, nullptr) << LocalDiags.str();
  const SType *S = LocalMix.checkTyped(E, Gamma);
  ASSERT_NE(S, nullptr) << LocalDiags.str();
  EXPECT_EQ(S->str(), "int"); // pos |_| zero |_| neg

  // The positive-everywhere variant: pos branch yields pos (via the
  // typed block seeing x : pos int!), zero branch yields pos literal,
  // neg branch yields 0 - x which is pos for neg x.
  const Expr *E2 = parseExpression(
      "{s if 0 < x then {t x + x t} "
      "else if x = 0 then {t 7 t} else {t 0 - x t} s}",
      LocalCtx, LocalDiags);
  ASSERT_NE(E2, nullptr) << LocalDiags.str();
  const SType *S2 = LocalMix.checkTyped(E2, Gamma);
  ASSERT_NE(S2, nullptr) << LocalDiags.str();
  EXPECT_EQ(S2->str(), "pos int");
}

TEST_F(SignMixTest, TypedBlocksSeeRefinedInputSigns) {
  // x is unknown in Gamma; the guard makes it pos inside the branch, and
  // the typed block's checker must see `x : pos int` (so x + 1 is pos,
  // which the enclosing assignment to a pos cell requires).
  SignEnv Gamma = gammaWith("x", SignQual::Unknown);
  EXPECT_EQ(mixTyped("{s let r = ref 1 in "
                     "(if 0 < x then r := {t x + 1 t} else r := 2; !r) s}",
                     Gamma),
            "pos int")
      << LastDiags;
}

TEST_F(SignMixTest, GammaSignsConstrainTheExecutor) {
  // TSymBlock-sign seeds the path condition from Gamma: for pos x the
  // x = 0 branch is infeasible and its would-be error is discarded.
  SignEnv Gamma = gammaWith("x", SignQual::Pos);
  EXPECT_EQ(mixTyped("{s if x = 0 then true + 1 else x s}", Gamma),
            "pos int")
      << LastDiags;
  // With unknown x the error branch is feasible and reported.
  SignEnv Unknown = gammaWith("x", SignQual::Unknown);
  EXPECT_EQ(mixTyped("{s if x = 0 then true + 1 else x s}", Unknown),
            "<error>");
}

TEST_F(SignMixTest, ResultRefinementFlowsBackIntoExecution) {
  // The typed block's pos result refines the continuing path, so the
  // following symbolic test against 0 is decided.
  SignEnv Gamma = gammaWith("x", SignQual::Pos);
  EXPECT_EQ(mixTyped("{s if {t x + 1 t} = 0 then true + 1 else 5 s}",
                     Gamma),
            "pos int")
      << LastDiags;
}

TEST_F(SignMixTest, BlockResultsAreCachedThroughTheEngine) {
  // Both symbolic paths (b true / b false) reach the same typed block
  // with the same derived SignEnv, so the engine sign-checks it once and
  // replays the cached summary on the second path — and the replay must
  // still refine the continuing execution: the `= 0` test is decided by
  // the replayed pos result, discarding the ill-typed branch.
  AstContext LocalCtx;
  DiagnosticEngine LocalDiags;
  SignMixChecker LocalMix(LocalCtx.types(), LocalDiags);
  SignEnv Gamma;
  Gamma["b"] = LocalMix.signTypes().lift(LocalCtx.types().boolType());
  Gamma["x"] = LocalMix.signTypes().intType(SignQual::Pos);
  const Expr *E = parseExpression(
      "{s (if b then 0 else 1); "
      "(if {t x + 1 t} = 0 then true + 1 else 5) s}",
      LocalCtx, LocalDiags);
  ASSERT_NE(E, nullptr) << LocalDiags.str();
  const SType *S = LocalMix.checkTyped(E, Gamma);
  ASSERT_NE(S, nullptr) << LocalDiags.str();
  EXPECT_EQ(S->str(), "pos int");
  EXPECT_EQ(LocalMix.typedCacheStats().Inserts, 1u);
  EXPECT_EQ(LocalMix.typedCacheStats().Hits, 1u);

  // Re-checking the same program replays the whole symbolic block's
  // summary from the Section 4.3 cache without re-running the executor.
  unsigned PathsBefore = LocalMix.stats().PathsExplored;
  ASSERT_NE(LocalMix.checkTyped(E, Gamma), nullptr);
  EXPECT_EQ(LocalMix.symCacheStats().Hits, 1u);
  EXPECT_EQ(LocalMix.stats().PathsExplored, PathsBefore);
}

TEST_F(SignMixTest, FeasibleSignErrorsAreCaught) {
  // A Gamma-provided pos cell written with an unknown-sign value inside
  // a symbolic block: the sign analogue of |- m ok flags it at exit.
  AstContext LocalCtx;
  DiagnosticEngine LocalDiags;
  SignMixChecker LocalMix(LocalCtx.types(), LocalDiags);
  SignEnv Gamma;
  Gamma["x"] = LocalMix.signTypes().intType(SignQual::Unknown);
  Gamma["r"] = LocalMix.signTypes().refType(
      LocalMix.signTypes().intType(SignQual::Pos));

  const Expr *Bad = parseExpression("{s r := x s}", LocalCtx, LocalDiags);
  ASSERT_NE(Bad, nullptr);
  EXPECT_EQ(LocalMix.checkTyped(Bad, Gamma), nullptr);

  // Writing a provably positive value is fine.
  DiagnosticEngine OkDiags;
  SignMixChecker OkMix(LocalCtx.types(), OkDiags);
  SignEnv Gamma2;
  Gamma2["x"] = OkMix.signTypes().intType(SignQual::Pos);
  Gamma2["r"] = OkMix.signTypes().refType(
      OkMix.signTypes().intType(SignQual::Pos));
  const Expr *Good =
      parseExpression("{s r := x + 1 s}", LocalCtx, OkDiags);
  ASSERT_NE(Good, nullptr);
  EXPECT_NE(OkMix.checkTyped(Good, Gamma2), nullptr) << OkDiags.str();
}

TEST_F(SignMixTest, BlockLocalCellsAreUnconstrained) {
  // A block-local cell has no sign annotation; symbolic execution may
  // write any signs into it (the analogue of SEAssign's arbitrary
  // writes), and the read's sign is whatever the solver can prove.
  EXPECT_EQ(mixTyped("{s let r = ref 1 in (r := 0 - 5; !r) s}"),
            "neg int");
}

TEST_F(SignMixTest, InitialCellContentsCarryGammaSigns) {
  // Reading a pos-qualified cell inside the block yields a provably
  // positive value.
  AstContext LocalCtx;
  DiagnosticEngine LocalDiags;
  SignMixChecker LocalMix(LocalCtx.types(), LocalDiags);
  SignEnv Gamma;
  Gamma["r"] = LocalMix.signTypes().refType(
      LocalMix.signTypes().intType(SignQual::Pos));
  const Expr *E =
      parseExpression("{s if 0 < !r then 1 else true + 1 s}", LocalCtx,
                      LocalDiags);
  ASSERT_NE(E, nullptr);
  const SType *S = LocalMix.checkTyped(E, Gamma);
  ASSERT_NE(S, nullptr) << LocalDiags.str();
  EXPECT_EQ(S->str(), "pos int");
}

TEST_F(SignMixTest, EscapingClosuresMustSignCheck) {
  // The closure's body promises (lifted) int -> int and sign-checks.
  EXPECT_EQ(mixTyped("({s fun (y: int) : int -> y + 1 s}) 3"), "int");
}

// === sign soundness property ====================================================

namespace {

/// Type-directed generator of int-only programs (literals, arithmetic,
/// conditionals, lets, blocks) for the sign property.
class SignProgramGen {
public:
  SignProgramGen(mix::AstContext &Ctx, std::mt19937 &Rng)
      : Ctx(Ctx), Rng(Rng) {}

  const Expr *gen(unsigned Depth, std::vector<std::string> Vars) {
    if (Depth == 0) {
      if (!Vars.empty() && Rng() % 2)
        return Ctx.make<VarExpr>(mix::SourceLoc(),
                                 Vars[Rng() % Vars.size()]);
      return Ctx.make<IntLitExpr>(mix::SourceLoc(),
                                  (long long)(Rng() % 13) - 6);
    }
    switch (Rng() % 6) {
    case 0:
      return Ctx.make<BinaryExpr>(mix::SourceLoc(), BinaryOp::Add,
                                  gen(Depth - 1, Vars), gen(Depth - 1, Vars));
    case 1:
      return Ctx.make<BinaryExpr>(mix::SourceLoc(), BinaryOp::Sub,
                                  gen(Depth - 1, Vars), gen(Depth - 1, Vars));
    case 2: {
      const Expr *C = Ctx.make<BinaryExpr>(
          mix::SourceLoc(), Rng() % 2 ? BinaryOp::Lt : BinaryOp::Le,
          gen(Depth - 1, Vars), gen(Depth - 1, Vars));
      return Ctx.make<IfExpr>(mix::SourceLoc(), C, gen(Depth - 1, Vars),
                              gen(Depth - 1, Vars));
    }
    case 3: {
      std::string Name = "t" + std::to_string(Counter++);
      const Expr *Init = gen(Depth - 1, Vars);
      Vars.push_back(Name);
      return Ctx.make<LetExpr>(mix::SourceLoc(), Name, nullptr, Init,
                               gen(Depth - 1, Vars));
    }
    case 4: {
      // A block around a subterm: symbolic or typed.
      const Expr *Sub = gen(Depth - 1, Vars);
      return Ctx.make<BlockExpr>(mix::SourceLoc(),
                                 Rng() % 2 ? BlockKind::Symbolic
                                           : BlockKind::Typed,
                                 Sub);
    }
    default:
      return gen(0, Vars);
    }
  }

private:
  mix::AstContext &Ctx;
  std::mt19937 &Rng;
  unsigned Counter = 0;
};

bool signAdmits(SignQual Q, long long V) {
  switch (Q) {
  case SignQual::Pos:
    return V > 0;
  case SignQual::Zero:
    return V == 0;
  case SignQual::Neg:
    return V < 0;
  case SignQual::Unknown:
    return true;
  }
  return true;
}

} // namespace

#include "concrete/Interp.h"

/// Soundness of the sign-mixed analysis: if the analysis derives sign Q
/// for a program over inputs x, y (unknown ints), then every concrete
/// evaluation's result has sign Q.
class SignSoundnessTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SignSoundnessTest, DerivedSignsAdmitAllConcreteResults) {
  std::mt19937 Rng(GetParam());
  unsigned Accepted = 0;
  for (int Round = 0; Round != 50; ++Round) {
    AstContext Ctx;
    DiagnosticEngine Diags;
    SignProgramGen Gen(Ctx, Rng);
    const Expr *Program = Gen.gen(4, {"x", "y"});

    SignMixChecker Mix(Ctx.types(), Diags);
    SignEnv Gamma;
    Gamma["x"] = Mix.signTypes().intType(SignQual::Unknown);
    Gamma["y"] = Mix.signTypes().intType(SignQual::Unknown);
    const SType *S = Mix.checkTyped(Program, Gamma);
    if (!S || !S->isInt())
      continue;
    ++Accepted;

    for (int Trial = 0; Trial != 12; ++Trial) {
      ConcEnv Env;
      Env["x"] = ConcValue::intValue((long long)(Rng() % 21) - 10);
      Env["y"] = ConcValue::intValue((long long)(Rng() % 21) - 10);
      ConcMemory Mem;
      EvalResult R = evaluate(Program, Env, Mem);
      ASSERT_FALSE(R.IsError);
      ASSERT_TRUE(R.Value.isInt());
      EXPECT_TRUE(signAdmits(S->sign(), R.Value.asInt()))
          << "derived " << S->str() << " but got " << R.Value.asInt()
          << " for x=" << Env["x"].asInt() << " y=" << Env["y"].asInt()
          << "\nprogram: " << mix::printExpr(Program);
    }
  }
  EXPECT_GT(Accepted, 25u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SignSoundnessTest,
                         ::testing::Values(31u, 62u, 93u, 124u));
