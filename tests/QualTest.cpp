//===--- QualTest.cpp - Tests for null/nonnull qualifier inference --------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "cfront/CParser.h"
#include "qual/QualInference.h"

#include <gtest/gtest.h>

using namespace mix::c;
using mix::DiagnosticEngine;

namespace {

class QualTest : public ::testing::Test {
protected:
  /// Parses, runs whole-program inference, returns the warning count.
  unsigned warningsFor(std::string_view Source,
                       QualOptions Opts = QualOptions()) {
    Diags.clear();
    const CProgram *P = parseC(Source, Ctx, Diags);
    EXPECT_NE(P, nullptr) << Diags.str();
    if (!P)
      return ~0u;
    Inference = std::make_unique<QualInference>(*P, Ctx, Diags, Opts);
    Inference->analyzeAll();
    Inference->solve();
    return Inference->reportWarnings();
  }

  CAstContext Ctx;
  DiagnosticEngine Diags;
  std::unique_ptr<QualInference> Inference;
};

} // namespace

TEST_F(QualTest, CleanProgramHasNoWarnings) {
  EXPECT_EQ(warningsFor("void free_ptr(int * nonnull p);\n"
                        "int x;\n"
                        "void f(void) { free_ptr(&x); }"),
            0u);
}

TEST_F(QualTest, PaperIntroExample) {
  // Section 4's running example: NULL flows through id into free.
  unsigned W = warningsFor(
      "void free_ptr(int * nonnull x);\n"
      "int *id(int *p) { return p; }\n"
      "void f(void) {\n"
      "  int *x = NULL;\n"
      "  int *y = id(x);\n"
      "  free_ptr(y);\n"
      "}");
  EXPECT_EQ(W, 1u);
  // The witness path goes through id's parameter and return.
  std::string Rendered = Diags.str();
  EXPECT_NE(Rendered.find("NULL"), std::string::npos) << Rendered;
  EXPECT_NE(Rendered.find("free_ptr"), std::string::npos) << Rendered;
}

TEST_F(QualTest, DirectNullToNonnull) {
  EXPECT_EQ(warningsFor("void free_ptr(int * nonnull p);\n"
                        "void f(void) { free_ptr(NULL); }"),
            1u);
}

TEST_F(QualTest, NullAnnotationIsASource) {
  EXPECT_EQ(warningsFor("void free_ptr(int * nonnull p);\n"
                        "int * null risky;\n"
                        "void f(void) { free_ptr(risky); }"),
            1u);
}

TEST_F(QualTest, MallocIsNonnull) {
  EXPECT_EQ(warningsFor("void free_ptr(int * nonnull p);\n"
                        "void f(void) {\n"
                        "  int *p = (int*) malloc(sizeof(int));\n"
                        "  free_ptr(p);\n"
                        "}"),
            0u);
}

TEST_F(QualTest, FlowInsensitivityFalsePositive) {
  // Assignment order is ignored: the NULL write after the call still
  // taints the argument. This is the Case 1 shape and is *expected* to
  // warn — MIXY exists to remove it.
  EXPECT_EQ(warningsFor("void free_ptr(int * nonnull p);\n"
                        "int g;\n"
                        "void f(void) {\n"
                        "  int *p = &g;\n"
                        "  free_ptr(p);\n"
                        "  p = NULL;\n"
                        "}"),
            1u);
}

TEST_F(QualTest, PathInsensitivityFalsePositive) {
  // The null check does not matter to the flow-insensitive system.
  EXPECT_EQ(warningsFor("void free_ptr(int * nonnull p);\n"
                        "int *get(void);\n"
                        "void f(void) {\n"
                        "  int *p = NULL;\n"
                        "  if (p != NULL) free_ptr(p);\n"
                        "}"),
            1u);
}

TEST_F(QualTest, ContextInsensitivityConflatesCallers) {
  // Case 2's shape: the inference generates equality constraints (the
  // paper's "beta = gamma" style), so one caller's NULL argument taints
  // every other caller's argument to the same monomorphic parameter.
  unsigned W = warningsFor(
      "void free_ptr(int * nonnull p);\n"
      "void helper(int *q) { }\n"
      "int g;\n"
      "void caller1(void) { helper(NULL); }\n"
      "void caller2(void) {\n"
      "  int *ok = &g;\n"
      "  helper(ok);\n"
      "  free_ptr(ok);\n"
      "}");
  EXPECT_EQ(W, 1u);
  // The same conflation through a returned parameter, as in the paper's
  // str_next_dirent case:
  unsigned W2 = warningsFor(
      "void free_ptr(int * nonnull p);\n"
      "int *id(int *q) { return q; }\n"
      "int g;\n"
      "void caller1(void) { int *a = id(NULL); }\n"
      "void caller2(void) {\n"
      "  int *ok = id(&g);\n"
      "  free_ptr(ok);\n"
      "}");
  EXPECT_EQ(W2, 1u);
}

TEST_F(QualTest, StructFieldsCarryQualifiers) {
  EXPECT_EQ(warningsFor("struct box { int *ptr; };\n"
                        "void free_ptr(int * nonnull p);\n"
                        "struct box g;\n"
                        "void f(void) {\n"
                        "  g.ptr = NULL;\n"
                        "  free_ptr(g.ptr);\n"
                        "}"),
            1u);
}

TEST_F(QualTest, FieldQualifiersAreSharedAcrossInstances) {
  // Field-based (monomorphic) analysis: tainting b1.ptr taints b2.ptr.
  EXPECT_EQ(warningsFor("struct box { int *ptr; };\n"
                        "void free_ptr(int * nonnull p);\n"
                        "struct box b1; struct box b2;\n"
                        "void f(void) {\n"
                        "  b1.ptr = NULL;\n"
                        "  free_ptr(b2.ptr);\n"
                        "}"),
            1u);
}

TEST_F(QualTest, DoublePointerAssignmentTaintsPointee) {
  EXPECT_EQ(warningsFor("void free_ptr(int * nonnull p);\n"
                        "void f(int **pp) {\n"
                        "  *pp = NULL;\n"
                        "  free_ptr(*pp);\n"
                        "}"),
            1u);
}

TEST_F(QualTest, ReturnFlows) {
  EXPECT_EQ(warningsFor("void free_ptr(int * nonnull p);\n"
                        "int *maybe(void) { return NULL; }\n"
                        "void f(void) { free_ptr(maybe()); }"),
            1u);
}

TEST_F(QualTest, WarnAllDereferencesOption) {
  QualOptions Opts;
  Opts.WarnAllDereferences = true;
  EXPECT_EQ(warningsFor("int f(void) {\n"
                        "  int *p = NULL;\n"
                        "  return *p;\n"
                        "}",
                        Opts),
            1u);
  // Default mode does not flag bare dereferences.
  EXPECT_EQ(warningsFor("int f(void) {\n"
                        "  int *p = NULL;\n"
                        "  return *p;\n"
                        "}"),
            0u);
}

TEST_F(QualTest, MayBeNullQuery) {
  Diags.clear();
  const CProgram *P = parseC("int *a; int *b; int g;\n"
                             "void f(void) { a = NULL; b = &g; }",
                             Ctx, Diags);
  ASSERT_NE(P, nullptr);
  QualInference Inf(*P, Ctx, Diags);
  Inf.analyzeAll();
  Inf.solve();
  ASSERT_FALSE(Inf.qualsOfVar(nullptr, "a").empty());
  EXPECT_TRUE(Inf.mayBeNull(Inf.qualsOfVar(nullptr, "a")[0]));
  EXPECT_FALSE(Inf.mayBeNull(Inf.qualsOfVar(nullptr, "b")[0]));
}

TEST_F(QualTest, SeedNullInjectsTaint) {
  // MIXY's symbolic-to-typed translation path (Section 4.1).
  Diags.clear();
  const CProgram *P = parseC("void free_ptr(int * nonnull p);\n"
                             "int *x;\n"
                             "void f(void) { free_ptr(x); }",
                             Ctx, Diags);
  ASSERT_NE(P, nullptr);
  QualInference Inf(*P, Ctx, Diags);
  Inf.analyzeAll();
  Inf.solve();
  EXPECT_EQ(Inf.violationCount(), 0u);
  Inf.seedNull(Inf.qualsOfVar(nullptr, "x")[0], "symbolic result",
               mix::SourceLoc());
  Inf.solve();
  EXPECT_EQ(Inf.violationCount(), 1u);
}

TEST_F(QualTest, AliasClassUnification) {
  // MIXY's alias restoration (Section 4.2): unifying p and q lets taint
  // flow between them.
  Diags.clear();
  const CProgram *P = parseC("void free_ptr(int * nonnull p);\n"
                             "int *p; int *q;\n"
                             "void f(void) { p = NULL; free_ptr(q); }",
                             Ctx, Diags);
  ASSERT_NE(P, nullptr);
  QualInference Inf(*P, Ctx, Diags);
  Inf.analyzeAll();
  Inf.solve();
  EXPECT_EQ(Inf.violationCount(), 0u);
  Inf.unifyAliasClass({{nullptr, "p"}, {nullptr, "q"}});
  Inf.solve();
  EXPECT_EQ(Inf.violationCount(), 1u);
}
