//===--- SmtSolverTest.cpp - Tests for the DPLL(T) facade -----------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "solver/SmtSolver.h"

#include <gtest/gtest.h>

#include <random>

using namespace mix::smt;

namespace {

class SmtTest : public ::testing::Test {
protected:
  TermArena A;
  SmtSolver S{A};
};

} // namespace

TEST_F(SmtTest, Constants) {
  EXPECT_EQ(S.checkSat(A.trueTerm()), SolveResult::Sat);
  EXPECT_EQ(S.checkSat(A.falseTerm()), SolveResult::Unsat);
}

TEST_F(SmtTest, PureBoolean) {
  const Term *P = A.freshBoolVar("p");
  const Term *Q = A.freshBoolVar("q");
  EXPECT_EQ(S.checkSat(A.andTerm(P, Q)), SolveResult::Sat);
  EXPECT_EQ(S.checkSat(A.andTerm(P, A.notTerm(P))), SolveResult::Unsat);
  EXPECT_EQ(S.checkSat(A.orTerm(P, A.notTerm(P))), SolveResult::Sat);
  EXPECT_TRUE(S.isDefinitelyValid(A.orTerm(P, A.notTerm(P))));
  EXPECT_FALSE(S.isDefinitelyValid(P));
}

TEST_F(SmtTest, IntegerComparisons) {
  const Term *X = A.freshIntVar("x");
  // x < 0 and x > 0: unsat.
  const Term *F =
      A.andTerm(A.lt(X, A.intConst(0)), A.lt(A.intConst(0), X));
  EXPECT_EQ(S.checkSat(F), SolveResult::Unsat);
  // x < 1 and x > -1 forces x = 0: sat, and x != 0 on top is unsat.
  const Term *G =
      A.andTerm(A.lt(X, A.intConst(1)), A.lt(A.intConst(-1), X));
  EXPECT_EQ(S.checkSat(G), SolveResult::Sat);
  const Term *H = A.andTerm(G, A.notTerm(A.eqInt(X, A.intConst(0))));
  EXPECT_EQ(S.checkSat(H), SolveResult::Unsat);
}

TEST_F(SmtTest, ArithmeticStructure) {
  const Term *X = A.freshIntVar("x");
  const Term *Y = A.freshIntVar("y");
  // x + y = 4 and x - y = 2 has the solution x = 3, y = 1.
  const Term *F = A.andTerm(A.eqInt(A.add(X, Y), A.intConst(4)),
                            A.eqInt(A.sub(X, Y), A.intConst(2)));
  EXPECT_EQ(S.checkSat(F), SolveResult::Sat);
  // ... and adding x = 0 contradicts.
  EXPECT_EQ(S.checkSat(A.andTerm(F, A.eqInt(X, A.intConst(0)))),
            SolveResult::Unsat);
  // x + y = 3 and x - y = 0 has no integer solution (x = y = 1.5).
  const Term *G = A.andTerm(A.eqInt(A.add(X, Y), A.intConst(3)),
                            A.eqInt(A.sub(X, Y), A.intConst(0)));
  EXPECT_EQ(S.checkSat(G), SolveResult::Unsat);
}

TEST_F(SmtTest, MixedBooleanTheoryInterplay) {
  const Term *X = A.freshIntVar("x");
  const Term *P = A.freshBoolVar("p");
  // (p -> x > 5) and (!p -> x < -5) and -5 <= x <= 5 forces a conflict in
  // both boolean polarities... except the bounds allow x = 5 and x = -5?
  // Using strict bounds -5 < x < 5 makes it genuinely unsat.
  const Term *F = A.andList({
      A.implies(P, A.lt(A.intConst(5), X)),
      A.implies(A.notTerm(P), A.lt(X, A.intConst(-5))),
      A.lt(A.intConst(-5), X),
      A.lt(X, A.intConst(5)),
  });
  EXPECT_EQ(S.checkSat(F), SolveResult::Unsat);
  // Relaxing one bound opens a model via p = true.
  const Term *G = A.andList({
      A.implies(P, A.lt(A.intConst(5), X)),
      A.implies(A.notTerm(P), A.lt(X, A.intConst(-5))),
      A.lt(A.intConst(-5), X),
  });
  EXPECT_EQ(S.checkSat(G), SolveResult::Sat);
}

TEST_F(SmtTest, IteIntLowering) {
  const Term *C = A.freshBoolVar("c");
  const Term *X = A.freshIntVar("x");
  // y = ite(c, 1, 2); y = 3 is unsat; y = 2 forces !c.
  const Term *Ite = A.iteInt(C, A.intConst(1), A.intConst(2));
  EXPECT_EQ(S.checkSat(A.eqInt(Ite, A.intConst(3))), SolveResult::Unsat);
  EXPECT_EQ(S.checkSat(A.eqInt(Ite, A.intConst(2))), SolveResult::Sat);
  EXPECT_EQ(
      S.checkSat(A.andTerm(A.eqInt(Ite, A.intConst(2)), C)),
      SolveResult::Unsat);
  // Nested ite with a variable branch.
  const Term *Nested = A.iteInt(C, X, A.iteInt(C, A.intConst(0), X));
  EXPECT_EQ(S.checkSat(A.eqInt(Nested, X)), SolveResult::Sat);
}

TEST_F(SmtTest, ExhaustivenessPattern) {
  // This is the shape of the mix rule's exhaustive() check:
  // guards g, !g from SEIf-True/False must cover all valuations.
  const Term *X = A.freshIntVar("x");
  const Term *G1 = A.lt(A.intConst(0), X);
  const Term *G2 = A.notTerm(A.lt(A.intConst(0), X));
  EXPECT_TRUE(S.isDefinitelyValid(A.orTerm(G1, G2)));

  // Three-way split on sign: also exhaustive.
  const Term *Pos = A.lt(A.intConst(0), X);
  const Term *Zero = A.eqInt(X, A.intConst(0));
  const Term *Neg = A.lt(X, A.intConst(0));
  EXPECT_TRUE(S.isDefinitelyValid(A.orList({Pos, Zero, Neg})));

  // Dropping a case is detected as non-exhaustive.
  EXPECT_FALSE(S.isDefinitelyValid(A.orList({Pos, Neg})));
}

TEST_F(SmtTest, PathConditionFeasibility) {
  // Typical symbolic-executor query: is the path condition satisfiable?
  const Term *X = A.freshIntVar("x");
  const Term *Path =
      A.andList({A.lt(A.intConst(0), X), A.lt(X, A.intConst(10)),
                 A.eqInt(A.add(X, X), A.intConst(8))});
  EXPECT_TRUE(S.isPossiblySat(Path));
  const Term *Infeasible =
      A.andList({A.lt(A.intConst(0), X), A.lt(X, A.intConst(4)),
                 A.eqInt(A.add(X, X), A.intConst(9))});
  EXPECT_TRUE(S.isDefinitelyUnsat(Infeasible));
}

TEST_F(SmtTest, BoolEquality) {
  const Term *P = A.freshBoolVar("p");
  const Term *Q = A.freshBoolVar("q");
  const Term *F = A.andList({A.eqBool(P, Q), P, A.notTerm(Q)});
  EXPECT_EQ(S.checkSat(F), SolveResult::Unsat);
  EXPECT_TRUE(S.isDefinitelyValid(A.eqBool(P, P)));
}

TEST_F(SmtTest, StatisticsAdvance) {
  const Term *X = A.freshIntVar("x");
  uint64_t Before = S.stats().Queries;
  S.checkSat(A.lt(X, A.intConst(0)));
  EXPECT_EQ(S.stats().Queries, Before + 1);
  EXPECT_GT(S.stats().SatCalls, 0u);
}

namespace {

/// Brute-force evaluation of a term under small-domain assignments.
long long evalInt(const Term *T, const std::vector<long long> &IntVals,
                  const std::vector<bool> &BoolVals);

bool evalBool(const Term *T, const std::vector<long long> &IntVals,
              const std::vector<bool> &BoolVals) {
  switch (T->kind()) {
  case TermKind::BoolConst:
    return T->value() != 0;
  case TermKind::BoolVar:
    return BoolVals[T->varId()];
  case TermKind::EqInt:
    return evalInt(T->operand(0), IntVals, BoolVals) ==
           evalInt(T->operand(1), IntVals, BoolVals);
  case TermKind::Lt:
    return evalInt(T->operand(0), IntVals, BoolVals) <
           evalInt(T->operand(1), IntVals, BoolVals);
  case TermKind::Le:
    return evalInt(T->operand(0), IntVals, BoolVals) <=
           evalInt(T->operand(1), IntVals, BoolVals);
  case TermKind::EqBool:
    return evalBool(T->operand(0), IntVals, BoolVals) ==
           evalBool(T->operand(1), IntVals, BoolVals);
  case TermKind::Not:
    return !evalBool(T->operand(0), IntVals, BoolVals);
  case TermKind::And:
    return evalBool(T->operand(0), IntVals, BoolVals) &&
           evalBool(T->operand(1), IntVals, BoolVals);
  case TermKind::Or:
    return evalBool(T->operand(0), IntVals, BoolVals) ||
           evalBool(T->operand(1), IntVals, BoolVals);
  case TermKind::IteBool:
    return evalBool(T->operand(0), IntVals, BoolVals)
               ? evalBool(T->operand(1), IntVals, BoolVals)
               : evalBool(T->operand(2), IntVals, BoolVals);
  default:
    ADD_FAILURE() << "unexpected bool term kind";
    return false;
  }
}

long long evalInt(const Term *T, const std::vector<long long> &IntVals,
                  const std::vector<bool> &BoolVals) {
  switch (T->kind()) {
  case TermKind::IntConst:
    return T->value();
  case TermKind::IntVar:
    return IntVals[T->varId()];
  case TermKind::Add:
    return evalInt(T->operand(0), IntVals, BoolVals) +
           evalInt(T->operand(1), IntVals, BoolVals);
  case TermKind::Sub:
    return evalInt(T->operand(0), IntVals, BoolVals) -
           evalInt(T->operand(1), IntVals, BoolVals);
  case TermKind::Neg:
    return -evalInt(T->operand(0), IntVals, BoolVals);
  case TermKind::MulConst:
    return T->value() * evalInt(T->operand(0), IntVals, BoolVals);
  case TermKind::IteInt:
    return evalBool(T->operand(0), IntVals, BoolVals)
               ? evalInt(T->operand(1), IntVals, BoolVals)
               : evalInt(T->operand(2), IntVals, BoolVals);
  default:
    ADD_FAILURE() << "unexpected int term kind";
    return 0;
  }
}

/// Generates a random term of the given sort over the declared variables.
const Term *randomTerm(TermArena &A, std::mt19937 &Rng, bool WantBool,
                       const std::vector<const Term *> &IntVars,
                       const std::vector<const Term *> &BoolVars,
                       unsigned Depth) {
  if (WantBool) {
    if (Depth == 0) {
      if (Rng() % 2)
        return BoolVars[Rng() % BoolVars.size()];
      return A.boolConst(Rng() % 2 == 0);
    }
    switch (Rng() % 7) {
    case 0:
      return A.notTerm(
          randomTerm(A, Rng, true, IntVars, BoolVars, Depth - 1));
    case 1:
      return A.andTerm(randomTerm(A, Rng, true, IntVars, BoolVars, Depth - 1),
                       randomTerm(A, Rng, true, IntVars, BoolVars, Depth - 1));
    case 2:
      return A.orTerm(randomTerm(A, Rng, true, IntVars, BoolVars, Depth - 1),
                      randomTerm(A, Rng, true, IntVars, BoolVars, Depth - 1));
    case 3:
      return A.eqInt(randomTerm(A, Rng, false, IntVars, BoolVars, Depth - 1),
                     randomTerm(A, Rng, false, IntVars, BoolVars, Depth - 1));
    case 4:
      return A.lt(randomTerm(A, Rng, false, IntVars, BoolVars, Depth - 1),
                  randomTerm(A, Rng, false, IntVars, BoolVars, Depth - 1));
    case 5:
      return A.le(randomTerm(A, Rng, false, IntVars, BoolVars, Depth - 1),
                  randomTerm(A, Rng, false, IntVars, BoolVars, Depth - 1));
    default:
      return BoolVars[Rng() % BoolVars.size()];
    }
  }
  if (Depth == 0) {
    if (Rng() % 2)
      return IntVars[Rng() % IntVars.size()];
    return A.intConst((long long)(Rng() % 7) - 3);
  }
  switch (Rng() % 4) {
  case 0:
    return A.add(randomTerm(A, Rng, false, IntVars, BoolVars, Depth - 1),
                 randomTerm(A, Rng, false, IntVars, BoolVars, Depth - 1));
  case 1:
    return A.sub(randomTerm(A, Rng, false, IntVars, BoolVars, Depth - 1),
                 randomTerm(A, Rng, false, IntVars, BoolVars, Depth - 1));
  case 2:
    return A.iteInt(randomTerm(A, Rng, true, IntVars, BoolVars, Depth - 1),
                    randomTerm(A, Rng, false, IntVars, BoolVars, Depth - 1),
                    randomTerm(A, Rng, false, IntVars, BoolVars, Depth - 1));
  default:
    return IntVars[Rng() % IntVars.size()];
  }
}

} // namespace

/// Property: checkSat never contradicts brute-force evaluation over a small
/// variable box. (Because FM is conservative, a brute-force witness implies
/// the solver must not answer Unsat; and a solver Unsat implies no witness.)
class SmtRandomTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SmtRandomTest, AgreesWithSmallModelSearch) {
  std::mt19937 Rng(GetParam());
  TermArena A;
  SmtSolver S(A);
  for (int Round = 0; Round != 25; ++Round) {
    std::vector<const Term *> IntVars = {A.freshIntVar(), A.freshIntVar()};
    std::vector<const Term *> BoolVars = {A.freshBoolVar()};
    const Term *F = randomTerm(A, Rng, true, IntVars, BoolVars, 3);

    // Brute force: int vars over [-4, 4], bool var over {0,1}.
    bool Witness = false;
    for (long long X = -4; X <= 4 && !Witness; ++X)
      for (long long Y = -4; Y <= 4 && !Witness; ++Y)
        for (int B = 0; B != 2 && !Witness; ++B) {
          // Variable ids are allocated per round; only the two most recent
          // int vars and one bool var occur in F.
          std::vector<long long> IntVals(A.numIntVars(), 0);
          std::vector<bool> BoolVals(A.numBoolVars(), false);
          IntVals[IntVars[0]->varId()] = X;
          IntVals[IntVars[1]->varId()] = Y;
          BoolVals[BoolVars[0]->varId()] = B != 0;
          if (evalBool(F, IntVals, BoolVals))
            Witness = true;
        }

    SolveResult R = S.checkSat(F);
    if (Witness) {
      EXPECT_NE(R, SolveResult::Unsat)
          << "refuted a satisfiable formula: " << F->str() << " (seed "
          << GetParam() << " round " << Round << ")";
    }
    if (R == SolveResult::Unsat) {
      EXPECT_FALSE(Witness);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmtRandomTest,
                         ::testing::Values(3u, 9u, 27u, 81u, 243u));

// === model extraction =========================================================

TEST_F(SmtTest, ModelForPureBoolean) {
  const Term *P = A.freshBoolVar("p");
  const Term *Q = A.freshBoolVar("q");
  SmtModel M;
  ASSERT_EQ(S.checkSat(A.andTerm(P, A.notTerm(Q)), &M), SolveResult::Sat);
  EXPECT_TRUE(M.boolValue(P->varId()));
  EXPECT_FALSE(M.boolValue(Q->varId()));
  EXPECT_TRUE(M.Complete);
}

TEST_F(SmtTest, ModelForLinearArithmetic) {
  const Term *X = A.freshIntVar("x");
  const Term *Y = A.freshIntVar("y");
  const Term *F = A.andList({
      A.eqInt(A.add(X, Y), A.intConst(10)),
      A.lt(A.intConst(6), X),
      A.lt(X, A.intConst(9)),
  });
  SmtModel M;
  ASSERT_EQ(S.checkSat(F, &M), SolveResult::Sat);
  ASSERT_TRUE(M.Complete);
  long long XV = M.intValue(X->varId());
  long long YV = M.intValue(Y->varId());
  EXPECT_EQ(XV + YV, 10);
  EXPECT_GT(XV, 6);
  EXPECT_LT(XV, 9);
}

TEST_F(SmtTest, ModelThroughIteLowering) {
  const Term *C = A.freshBoolVar("c");
  const Term *V = A.iteInt(C, A.intConst(1), A.intConst(2));
  SmtModel M;
  ASSERT_EQ(S.checkSat(A.eqInt(V, A.intConst(2)), &M), SolveResult::Sat);
  EXPECT_FALSE(M.boolValue(C->varId()));
}

TEST_F(SmtTest, ModelSatisfiesMixedConstraints) {
  const Term *X = A.freshIntVar("x");
  const Term *P = A.freshBoolVar("p");
  const Term *F = A.andTerm(A.implies(P, A.lt(A.intConst(3), X)),
                            A.implies(A.notTerm(P), A.lt(X, A.intConst(-3))));
  SmtModel M;
  ASSERT_EQ(S.checkSat(F, &M), SolveResult::Sat);
  ASSERT_TRUE(M.Complete);
  long long XV = M.intValue(X->varId());
  if (M.boolValue(P->varId()))
    EXPECT_GT(XV, 3);
  else
    EXPECT_LT(XV, -3);
}

/// Randomized: every extracted model must actually satisfy the formula
/// (cross-checked with the brute-force evaluator above).
class SmtModelTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SmtModelTest, ExtractedModelsSatisfyTheFormula) {
  std::mt19937 Rng(GetParam());
  TermArena A;
  SmtSolver S(A);
  unsigned Checked = 0;
  for (int Round = 0; Round != 30; ++Round) {
    std::vector<const Term *> IntVars = {A.freshIntVar(), A.freshIntVar()};
    std::vector<const Term *> BoolVars = {A.freshBoolVar()};
    const Term *F = randomTerm(A, Rng, true, IntVars, BoolVars, 3);
    SmtModel M;
    if (S.checkSat(F, &M) != SolveResult::Sat || !M.Complete)
      continue;
    std::vector<long long> IntVals(A.numIntVars(), 0);
    std::vector<bool> BoolVals(A.numBoolVars(), false);
    for (const auto &[V, Val] : M.Ints)
      if (V < IntVals.size())
        IntVals[V] = Val;
    for (const auto &[V, Val] : M.Bools)
      if (V < BoolVals.size())
        BoolVals[V] = Val;
    EXPECT_TRUE(evalBool(F, IntVals, BoolVals))
        << "model does not satisfy " << F->str();
    ++Checked;
  }
  EXPECT_GT(Checked, 10u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmtModelTest,
                         ::testing::Values(2u, 4u, 8u, 16u));
