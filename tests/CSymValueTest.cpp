//===--- CSymValueTest.cpp - Tests for the mini-C value algebra ------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "csym/CSymValue.h"

#include <gtest/gtest.h>

using namespace mix::c;
using mix::smt::Term;
using mix::smt::TermArena;
using mix::smt::TermKind;

namespace {

class CSymValueTest : public ::testing::Test {
protected:
  TermArena A;
};

} // namespace

TEST_F(CSymValueTest, ScalarBasics) {
  CSymValue V = CSymValue::scalar(A.intConst(42));
  EXPECT_TRUE(V.isScalar());
  EXPECT_EQ(V.scalarTerm()->value(), 42);
}

TEST_F(CSymValueTest, NullPointerGuards) {
  CSymValue Null = CSymValue::nullPointer(A);
  EXPECT_EQ(Null.nullGuard(A), A.trueTerm());
  EXPECT_EQ(Null.nonNullGuard(A), A.falseTerm());

  CSymValue Obj = CSymValue::pointerTo(A, PtrTarget::object(7));
  EXPECT_EQ(Obj.nullGuard(A), A.falseTerm());
  EXPECT_EQ(Obj.nonNullGuard(A), A.trueTerm());
}

TEST_F(CSymValueTest, MaybeNullGuardsPartition) {
  const Term *Alpha = A.freshBoolVar("a");
  CSymValue V = CSymValue::pointer({{Alpha, PtrTarget::object(3)},
                                    {A.notTerm(Alpha), PtrTarget::null()}});
  EXPECT_EQ(V.nullGuard(A), A.notTerm(Alpha));
  EXPECT_EQ(V.nonNullGuard(A), Alpha);
}

TEST_F(CSymValueTest, IteOnScalars) {
  const Term *C = A.freshBoolVar("c");
  CSymValue V = CSymValue::ite(A, C, CSymValue::scalar(A.intConst(1)),
                               CSymValue::scalar(A.intConst(2)));
  ASSERT_TRUE(V.isScalar());
  EXPECT_EQ(V.scalarTerm()->kind(), TermKind::IteInt);
}

TEST_F(CSymValueTest, IteWithConstantConditionPicksBranch) {
  CSymValue Then = CSymValue::scalar(A.intConst(1));
  CSymValue Else = CSymValue::scalar(A.intConst(2));
  CSymValue V = CSymValue::ite(A, A.trueTerm(), Then, Else);
  EXPECT_EQ(V.scalarTerm()->value(), 1);
  V = CSymValue::ite(A, A.falseTerm(), Then, Else);
  EXPECT_EQ(V.scalarTerm()->value(), 2);
}

TEST_F(CSymValueTest, IteOnPointersMergesGuardedCases) {
  const Term *C = A.freshBoolVar("c");
  CSymValue P = CSymValue::pointerTo(A, PtrTarget::object(1));
  CSymValue Q = CSymValue::pointerTo(A, PtrTarget::object(2));
  CSymValue V = CSymValue::ite(A, C, P, Q);
  ASSERT_TRUE(V.isPtr());
  ASSERT_EQ(V.cases().size(), 2u);
  EXPECT_EQ(V.cases()[0].Guard, C);
  EXPECT_EQ(V.cases()[0].Target.Loc, 1u);
  EXPECT_EQ(V.cases()[1].Guard, A.notTerm(C));
  EXPECT_EQ(V.cases()[1].Target.Loc, 2u);
}

TEST_F(CSymValueTest, IteCoalescesIdenticalTargets) {
  // ite(c, p, p) where both sides may be null: the cases fuse by target
  // with disjoined guards rather than duplicating.
  const Term *C = A.freshBoolVar("c");
  const Term *G = A.freshBoolVar("g");
  CSymValue P = CSymValue::pointer(
      {{G, PtrTarget::object(5)}, {A.notTerm(G), PtrTarget::null()}});
  CSymValue V = CSymValue::ite(A, C, P, P);
  ASSERT_TRUE(V.isPtr());
  EXPECT_EQ(V.cases().size(), 2u);
}

TEST_F(CSymValueTest, FieldsDistinguishTargets) {
  PtrTarget A1 = PtrTarget::object(3, "bar");
  PtrTarget A2 = PtrTarget::object(3, "baz");
  PtrTarget A3 = PtrTarget::object(3, "bar");
  EXPECT_FALSE(A1 == A2);
  EXPECT_TRUE(A1 == A3);
}

TEST_F(CSymValueTest, StoreRoundTrips) {
  CStore S;
  CellKey K{4, "field"};
  EXPECT_FALSE(S.has(K));
  EXPECT_EQ(S.get(K), nullptr);
  S.set(K, CSymValue::scalar(A.intConst(9)));
  ASSERT_TRUE(S.has(K));
  EXPECT_EQ(S.get(K)->scalarTerm()->value(), 9);
  S.clear();
  EXPECT_FALSE(S.has(K));
}

TEST_F(CSymValueTest, Rendering) {
  CSymValue Null = CSymValue::nullPointer(A);
  EXPECT_NE(Null.str().find("null"), std::string::npos);
  CSymValue Obj = CSymValue::pointerTo(A, PtrTarget::object(3, "f"));
  EXPECT_NE(Obj.str().find("obj3.f"), std::string::npos);
}
