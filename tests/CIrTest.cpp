//===--- CIrTest.cpp - Mini-C bytecode lowering/verifier/printer tests ----===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
//
// Goldens for ir::printC over every mini-C opcode, structural-verifier
// negative tests (mutating well-formed bytecode one invariant at a
// time), and the lowerC decline paths that drive the AST-walker
// fallback. The differential tests that prove the *interpreter* matches
// the walker live in IrDiffTest.cpp; this file pins the bytecode
// itself.
//
//===----------------------------------------------------------------------===//

#include "cfront/CParser.h"
#include "ir/CIr.h"
#include "support/Diagnostics.h"

#include "gtest/gtest.h"

#include <memory>
#include <string>

using namespace mix;
using namespace mix::ir;

namespace {

class CIrTest : public ::testing::Test {
protected:
  c::CAstContext Ctx;
  DiagnosticEngine Diags;

  /// Parses \p Source and lowers \p Fn, asserting both succeed and the
  /// result verifies.
  std::unique_ptr<CIrFunction> lower(const std::string &Source,
                                     const std::string &Fn) {
    const c::CProgram *P = c::parseC(Source, Ctx, Diags);
    EXPECT_NE(P, nullptr) << Diags.str();
    if (!P)
      return nullptr;
    std::string Why;
    auto F = lowerC(P->findFunc(Fn), *P, &Why);
    EXPECT_NE(F, nullptr) << "lowerC declined: " << Why;
    if (F) {
      EXPECT_EQ(verifyC(*F), "");
    }
    return F;
  }

  /// Parses \p Source and returns lowerC's decline reason for \p Fn
  /// (empty when it unexpectedly succeeded).
  std::string whyNot(const std::string &Source, const std::string &Fn) {
    const c::CProgram *P = c::parseC(Source, Ctx, Diags);
    EXPECT_NE(P, nullptr) << Diags.str();
    if (!P)
      return "";
    std::string Why;
    auto F = lowerC(P->findFunc(Fn), *P, &Why);
    EXPECT_EQ(F, nullptr);
    return Why;
  }

  /// Returns a mutable pointer to the first instruction with opcode
  /// \p Op, scanning regions in order.
  static CInstr *findOp(CIrFunction &F, COpcode Op) {
    for (auto &R : F.Regions)
      for (auto &In : R.Code)
        if (In.Op == Op)
          return &In;
    return nullptr;
  }
};

// ---------------------------------------------------------------------------
// printC goldens. One per opcode family; together they exercise every
// mini-C opcode (stmt_entry, const_int, str, null, load_ident,
// lval_ident, lval_deref, lval_arrow, lval_field, read_merged,
// deref_read, addr_of, not, neg, binop, store_cells, malloc,
// decl_local, init_local, call, branch, loop, ret).
// ---------------------------------------------------------------------------

TEST_F(CIrTest, GoldenScalarsAndBranch) {
  auto F = lower(R"(int f(int a) {
  int x = 2;
  if (a < x) { return a; } else { x = a + 1; }
  return x;
}
)",
                 "f");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(printC(*F),
            R"(cfunc f regs=11 regions=3
region 0:
  stmt_entry skip=13 @1:14
  stmt_entry skip=5 @2:3
  %0 = decl_local 'x' obj='f::x' : int @2:3
  %1 = const_int 2
  init_local %0 := %1
  stmt_entry skip=10 @3:3
  %2 = load_ident 'a' @3:7
  %3 = load_ident 'x' @3:11
  %4 = binop '<' %2 %3 @3:9
  branch %4 ? r1 : r2 @3:3 @3:9
  stmt_entry skip=13 @4:3
  %10 = load_ident 'x' @4:10
  ret %10 @4:3
region 1:
  stmt_entry skip=4 @3:14
  stmt_entry skip=4 @3:16
  %5 = load_ident 'a' @3:23
  ret %5 @3:16
region 2:
  stmt_entry skip=7 @3:33
  stmt_entry skip=7 @3:35
  %6 = lval_ident 'x' @3:35
  %7 = load_ident 'a' @3:39
  %8 = const_int 1
  %9 = binop '+' %7 %8 @3:41
  store_cells %6 := %9 @3:37
)");
}

TEST_F(CIrTest, GoldenPointers) {
  auto F = lower(R"(int g(int *p) {
  int *q;
  q = (int*) malloc(sizeof(int));
  *q = *p;
  char *s;
  s = "lit";
  p = NULL;
  return !*q;
}
)",
                 "g");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(printC(*F),
            R"(cfunc g regs=15 regions=1
region 0:
  stmt_entry skip=28 @1:15
  stmt_entry skip=3 @2:3
  %0 = decl_local 'q' obj='g::q' : int * @2:3
  stmt_entry skip=7 @3:3
  %1 = lval_ident 'q' @3:3
  %2 = malloc 'malloc@3:7' : int @3:7
  store_cells %1 := %2 @3:5
  stmt_entry skip=13 @4:3
  %3 = load_ident 'q' @4:4
  %4 = lval_deref %3 @4:3
  %5 = load_ident 'p' @4:9
  %6 = deref_read %5 @4:8
  store_cells %4 := %6 @4:6
  stmt_entry skip=15 @5:3
  %7 = decl_local 's' obj='g::s' : char * @5:3
  stmt_entry skip=19 @6:3
  %8 = lval_ident 's' @6:3
  %9 = str @6:7
  store_cells %8 := %9 @6:5
  stmt_entry skip=23 @7:3
  %10 = lval_ident 'p' @7:3
  %11 = null
  store_cells %10 := %11 @7:5
  stmt_entry skip=28 @8:3
  %12 = load_ident 'q' @8:12
  %13 = deref_read %12 @8:11
  %14 = not %13
  ret %14 @8:3
)");
}

TEST_F(CIrTest, GoldenStructs) {
  auto F = lower(R"(struct pt { int x; struct pt *n; };
int h(struct pt *p) {
  struct pt v;
  v.x = p->x;
  struct pt *w;
  w = &v;
  return w->n->x + v.x;
}
)",
                 "h");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(printC(*F),
            R"(cfunc h regs=19 regions=1
region 0:
  stmt_entry skip=28 @2:21
  stmt_entry skip=3 @3:3
  %0 = decl_local 'v' obj='h::v' : struct pt @3:3
  stmt_entry skip=10 @4:3
  %1 = lval_ident 'v' @4:3
  %2 = lval_field %1 'x' @4:4
  %3 = load_ident 'p' @4:9
  %4 = lval_arrow %3 'x' @4:10
  %5 = read_merged %4 @4:10
  store_cells %2 := %5 @4:7
  stmt_entry skip=12 @5:3
  %6 = decl_local 'w' obj='h::w' : struct pt * @5:3
  stmt_entry skip=17 @6:3
  %7 = lval_ident 'w' @6:3
  %8 = lval_ident 'v' @6:8
  %9 = addr_of %8 @6:7
  store_cells %7 := %9 @6:5
  stmt_entry skip=28 @7:3
  %10 = load_ident 'w' @7:10
  %11 = lval_arrow %10 'n' @7:11
  %12 = read_merged %11 @7:11
  %13 = lval_arrow %12 'x' @7:14
  %14 = read_merged %13 @7:14
  %15 = lval_ident 'v' @7:20
  %16 = lval_field %15 'x' @7:21
  %17 = read_merged %16 @7:21
  %18 = binop '+' %14 %17 @7:18
  ret %18 @7:3
)");
}

TEST_F(CIrTest, GoldenCallsAndLoop) {
  auto F = lower(R"(int add(int a, int b) { return a + b; }
int m(int k) {
  int (*fp)(int, int);
  fp = add;
  while (k < 3) { k = add(k, fp(1, 2)); }
  return -k;
}
)",
                 "m");
  ASSERT_NE(F, nullptr);
  // The indirect callee (%11) is evaluated *after* its arguments, and
  // the direct call's first argument (%7) before the nested call —
  // exactly CSymExecutor's evaluation order.
  EXPECT_EQ(printC(*F),
            R"(cfunc m regs=15 regions=3
region 0:
  stmt_entry skip=13 @2:14
  stmt_entry skip=3 @3:3
  %0 = decl_local 'fp' obj='m::fp' : int (int, int) * @3:3
  stmt_entry skip=7 @4:3
  %1 = lval_ident 'fp' @4:3
  %2 = load_ident 'add' @4:8
  store_cells %1 := %2 @4:6
  stmt_entry skip=9 @5:3
  loop cond=r1 body=r2 @5:3 @5:12
  stmt_entry skip=13 @6:3
  %13 = load_ident 'k' @6:11
  %14 = neg %13
  ret %14 @6:3
region 1:
  %3 = load_ident 'k' @5:10
  %4 = const_int 3
  %5 = binop '<' %3 %4 @5:12
  result %5
region 2:
  stmt_entry skip=10 @5:17
  stmt_entry skip=10 @5:19
  %6 = lval_ident 'k' @5:19
  %7 = load_ident 'k' @5:27
  %8 = const_int 1
  %9 = const_int 2
  %11 = load_ident 'fp' @5:30
  %10 = call %11 (%8, %9) @5:32
  %12 = call 'add' (%7, %10) @5:26
  store_cells %6 := %12 @5:21
)");
}

// ---------------------------------------------------------------------------
// Lowering is deterministic: the same body lowers to the same bytes and
// the same content hash every time.
// ---------------------------------------------------------------------------

TEST_F(CIrTest, LoweringIsDeterministic) {
  const std::string Src = R"(int f(int a) {
  int x = 2;
  if (a < x) { return a; } else { x = a + 1; }
  return x;
}
)";
  auto F1 = lower(Src, "f");
  auto F2 = lower(Src, "f");
  ASSERT_NE(F1, nullptr);
  ASSERT_NE(F2, nullptr);
  EXPECT_EQ(printC(*F1), printC(*F2));
  EXPECT_EQ(F1->CodeHash, F2->CodeHash);
  EXPECT_NE(F1->CodeHash, 0u);
}

// ---------------------------------------------------------------------------
// verifyC negative tests: take well-formed bytecode and break one
// invariant at a time.
// ---------------------------------------------------------------------------

class CVerifyTest : public CIrTest {
protected:
  /// A small body whose bytecode carries every operand class the
  /// verifier distinguishes: values, cell lists, a call, a stmt_entry.
  std::unique_ptr<CIrFunction> wellFormed() {
    return lower(R"(int id(int a) { return a; }
int f(int a) {
  int x = 0;
  x = id(a);
  return x;
}
)",
                 "f");
  }
};

TEST_F(CVerifyTest, ValueOperandWhereCellsExpected) {
  auto F = wellFormed();
  ASSERT_NE(F, nullptr);
  CInstr *Store = findOp(*F, COpcode::CStoreCells);
  ASSERT_NE(Store, nullptr);
  // store_cells' A names the lvalue's cell list; point it at the value
  // operand instead.
  Store->A = Store->B;
  EXPECT_NE(verifyC(*F).find("is not a cell list"), std::string::npos)
      << verifyC(*F);
}

TEST_F(CVerifyTest, CellsOperandWhereValueExpected) {
  auto F = wellFormed();
  ASSERT_NE(F, nullptr);
  CInstr *Store = findOp(*F, COpcode::CStoreCells);
  CInstr *Ret = findOp(*F, COpcode::CReturn);
  ASSERT_NE(Store, nullptr);
  ASSERT_NE(Ret, nullptr);
  // ret's operand must be a value; hand it the store's cell list.
  Ret->A = Store->A;
  EXPECT_NE(verifyC(*F).find("is not a value"), std::string::npos)
      << verifyC(*F);
}

TEST_F(CVerifyTest, CallArityMustMatchAstNode) {
  auto F = wellFormed();
  ASSERT_NE(F, nullptr);
  CInstr *Call = findOp(*F, COpcode::CCall);
  ASSERT_NE(Call, nullptr);
  Call->ArgsCount = 0;
  EXPECT_NE(verifyC(*F).find("call arity 0 does not match the AST "
                             "node's 1"),
            std::string::npos)
      << verifyC(*F);
}

TEST_F(CVerifyTest, UseOfUndefinedRegister) {
  auto F = wellFormed();
  ASSERT_NE(F, nullptr);
  CInstr *Ret = findOp(*F, COpcode::CReturn);
  ASSERT_NE(Ret, nullptr);
  // Grow the register file and read the never-written register.
  Ret->A = F->NumRegs++;
  EXPECT_NE(verifyC(*F).find("use of undefined register"),
            std::string::npos)
      << verifyC(*F);
}

TEST_F(CVerifyTest, OperandRegisterOutOfRange) {
  auto F = wellFormed();
  ASSERT_NE(F, nullptr);
  CInstr *Ret = findOp(*F, COpcode::CReturn);
  ASSERT_NE(Ret, nullptr);
  Ret->A = F->NumRegs;
  EXPECT_NE(verifyC(*F).find("out of range"), std::string::npos)
      << verifyC(*F);
}

TEST_F(CVerifyTest, RegistersAreWriteOnce) {
  auto F = wellFormed();
  ASSERT_NE(F, nullptr);
  CInstr *Load = findOp(*F, COpcode::CLoadIdent);
  CInstr *Call = findOp(*F, COpcode::CCall);
  ASSERT_NE(Load, nullptr);
  ASSERT_NE(Call, nullptr);
  Call->Dst = Load->Dst;
  EXPECT_NE(verifyC(*F).find("written twice"), std::string::npos)
      << verifyC(*F);
}

TEST_F(CVerifyTest, StmtEntrySkipTargetMustMoveForward) {
  auto F = wellFormed();
  ASSERT_NE(F, nullptr);
  CInstr *Entry = findOp(*F, COpcode::CStmtEntry);
  ASSERT_NE(Entry, nullptr);
  Entry->Imm = 0;
  EXPECT_NE(verifyC(*F).find("stmt_entry skip target 0 out of range"),
            std::string::npos)
      << verifyC(*F);
}

// ---------------------------------------------------------------------------
// lowerC decline paths — the cases where the engine must fall back to
// the AST walker (loudly, via exec.fallback.ast).
// ---------------------------------------------------------------------------

TEST_F(CIrTest, DeclinesFunctionWithoutBody) {
  EXPECT_EQ(whyNot(R"(int ext(int a);
int main(int argc) { return ext(argc); }
)",
                   "ext"),
            "function has no body");
}

TEST_F(CIrTest, DeclinesNonLValueAssignmentTarget) {
  std::string Why = whyNot(R"(int bad(int a) {
  a + 1 = 2;
  return a;
}
)",
                           "bad");
  EXPECT_NE(Why.find("lvalue position holds a non-lvalue expression"),
            std::string::npos)
      << Why;
}

} // namespace
