//===--- BlockCacheStressTest.cpp - Concurrency tests for BlockCache ------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// The Section-4.3 block cache is sharded and mutex-striped so concurrent
// block analyses can share it. These tests hammer it from 8 threads and
// check the contract: no lost inserts, first-insert-wins under races with
// every loser counted, exact hit/miss accounting, and bounded shards
// evicting FIFO without corrupting the map. Run them under
// ThreadSanitizer in CI.
//
//===----------------------------------------------------------------------===//

#include "engine/BlockCache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <string>
#include <thread>
#include <vector>

using namespace mix::engine;

namespace {

constexpr unsigned Threads = 8;

void runOnThreads(unsigned N, const std::function<void(unsigned)> &Body) {
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T != N; ++T)
    Ts.emplace_back([&, T] { Body(T); });
  for (std::thread &T : Ts)
    T.join();
}

} // namespace

TEST(BlockCacheStressTest, DisjointInsertsAreNeverLost) {
  BlockCache<int, int> Cache(32);
  constexpr int PerThread = 2000;
  runOnThreads(Threads, [&](unsigned T) {
    for (int I = 0; I != PerThread; ++I) {
      int Key = (int)T * PerThread + I;
      EXPECT_TRUE(Cache.insert(Key, Key * 3));
    }
  });
  EXPECT_EQ(Cache.size(), (size_t)Threads * PerThread);
  BlockCacheStats S = Cache.stats();
  EXPECT_EQ(S.Inserts, (uint64_t)Threads * PerThread);
  EXPECT_EQ(S.DroppedInserts, 0u);
  EXPECT_EQ(S.Evictions, 0u);
  // Every entry is present with the value its inserter wrote.
  for (int Key = 0; Key != (int)Threads * PerThread; ++Key) {
    auto V = Cache.lookup(Key);
    ASSERT_TRUE(V.has_value()) << "lost insert for key " << Key;
    EXPECT_EQ(*V, Key * 3);
  }
}

TEST(BlockCacheStressTest, RacingInsertsFirstWinsAndLosersAreCounted) {
  BlockCache<int, int> Cache(16);
  constexpr int Keys = 500;
  std::atomic<uint64_t> Wins{0};
  runOnThreads(Threads, [&](unsigned T) {
    for (int Key = 0; Key != Keys; ++Key)
      if (Cache.insert(Key, (int)T))
        ++Wins;
  });
  // Exactly one thread won each key; everyone else was dropped.
  EXPECT_EQ(Wins.load(), (uint64_t)Keys);
  EXPECT_EQ(Cache.size(), (size_t)Keys);
  BlockCacheStats S = Cache.stats();
  EXPECT_EQ(S.Inserts, (uint64_t)Keys);
  EXPECT_EQ(S.DroppedInserts, (uint64_t)(Threads - 1) * Keys);
  // The stored value is one of the racers' (a thread id), and stable.
  for (int Key = 0; Key != Keys; ++Key) {
    auto First = Cache.lookup(Key);
    ASSERT_TRUE(First.has_value());
    EXPECT_GE(*First, 0);
    EXPECT_LT(*First, (int)Threads);
    auto Second = Cache.lookup(Key);
    ASSERT_TRUE(Second.has_value());
    EXPECT_EQ(*First, *Second);
  }
}

TEST(BlockCacheStressTest, HitAndMissCountsAreExact) {
  BlockCache<int, std::string> Cache(8);
  constexpr int Keys = 256;
  for (int Key = 0; Key != Keys; ++Key)
    Cache.insert(Key, "v" + std::to_string(Key));
  BlockCacheStats Before = Cache.stats();
  EXPECT_EQ(Before.Hits, 0u);
  EXPECT_EQ(Before.Misses, 0u);

  constexpr int Rounds = 50;
  runOnThreads(Threads, [&](unsigned) {
    for (int R = 0; R != Rounds; ++R)
      for (int Key = 0; Key != 2 * Keys; ++Key) {
        auto V = Cache.lookup(Key);
        if (Key < Keys) {
          ASSERT_TRUE(V.has_value());
          ASSERT_EQ(*V, "v" + std::to_string(Key));
        } else {
          ASSERT_FALSE(V.has_value());
        }
      }
  });
  BlockCacheStats S = Cache.stats();
  EXPECT_EQ(S.Hits, (uint64_t)Threads * Rounds * Keys);
  EXPECT_EQ(S.Misses, (uint64_t)Threads * Rounds * Keys);
}

TEST(BlockCacheStressTest, MixedReadersAndWritersStayConsistent) {
  BlockCache<int, int> Cache(64);
  constexpr int Keys = 4096;
  runOnThreads(Threads, [&](unsigned T) {
    // Writers insert even keys, readers poll the whole range; whatever a
    // reader observes must be the canonical value (first insert wins and
    // every writer writes Key+1).
    if (T % 2 == 0) {
      for (int Key = 0; Key < Keys; Key += 2)
        Cache.insert(Key, Key + 1);
    } else {
      for (int Pass = 0; Pass != 4; ++Pass)
        for (int Key = 0; Key != Keys; ++Key) {
          auto V = Cache.lookup(Key);
          if (V.has_value()) {
            ASSERT_EQ(*V, Key + 1);
          }
        }
    }
  });
  EXPECT_EQ(Cache.size(), (size_t)Keys / 2);
}

TEST(BlockCacheStressTest, BoundedShardsEvictWithoutCorruption) {
  constexpr size_t MaxPerShard = 8;
  BlockCache<int, int> Cache(4, MaxPerShard);
  constexpr int Keys = 10000;
  runOnThreads(Threads, [&](unsigned T) {
    for (int I = 0; I != Keys; ++I) {
      int Key = (int)T * Keys + I;
      Cache.insert(Key, Key);
      auto V = Cache.lookup(Key % (Keys / 2)); // mix in reads
      if (V.has_value()) {
        ASSERT_EQ(*V, Key % (Keys / 2));
      }
    }
  });
  EXPECT_LE(Cache.size(), (size_t)Cache.shardCount() * MaxPerShard);
  BlockCacheStats S = Cache.stats();
  EXPECT_EQ(S.Inserts, (uint64_t)Threads * Keys);
  EXPECT_EQ(S.Evictions, S.Inserts - Cache.size());
}

TEST(BlockCacheStressTest, ClearUnderContentionIsSafe) {
  BlockCache<int, int> Cache(16);
  runOnThreads(Threads, [&](unsigned T) {
    for (int I = 0; I != 3000; ++I) {
      Cache.insert(I, I);
      if (T == 0 && I % 500 == 0)
        Cache.clear();
      auto V = Cache.lookup(I);
      if (V.has_value()) {
        ASSERT_EQ(*V, I);
      }
    }
  });
  // No assertion on size (clear races the inserts); the run itself — and
  // TSan on it — is the test.
  (void)Cache.stats();
}

TEST(BlockCacheStressTest, ShardCountRoundsUpToPowerOfTwo) {
  using IntCache = BlockCache<int, int>;
  EXPECT_EQ(IntCache(1).shardCount(), 1u);
  EXPECT_EQ(IntCache(3).shardCount(), 4u);
  EXPECT_EQ(IntCache(16).shardCount(), 16u);
  EXPECT_EQ(IntCache(17).shardCount(), 32u);
  EXPECT_EQ(blockCacheShardsFor(0), 1u);
  EXPECT_EQ(blockCacheShardsFor(1), 1u);
  EXPECT_GE(blockCacheShardsFor(4), 16u);
  EXPECT_LE(blockCacheShardsFor(1000), 256u);
}
