//===--- QualGraphTest.cpp - Unit tests for the qualifier graph -----------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "qual/QualGraph.h"

#include <gtest/gtest.h>

using namespace mix::c;

TEST(QualGraphTest, EmptyGraphSolves) {
  QualGraph G;
  G.solve();
  EXPECT_TRUE(G.violations().empty());
}

TEST(QualGraphTest, ReachabilityAlongFlows) {
  QualGraph G;
  auto A = G.newNode("a");
  auto B = G.newNode("b");
  auto C = G.newNode("c");
  G.addFlow(A, B);
  G.addFlow(B, C);
  G.markNullSource(A);
  G.solve();
  EXPECT_TRUE(G.mayBeNull(A));
  EXPECT_TRUE(G.mayBeNull(B));
  EXPECT_TRUE(G.mayBeNull(C));
}

TEST(QualGraphTest, FlowsAreDirected) {
  QualGraph G;
  auto A = G.newNode("a");
  auto B = G.newNode("b");
  G.addFlow(A, B);
  G.markNullSource(B);
  G.solve();
  EXPECT_FALSE(G.mayBeNull(A));
  EXPECT_TRUE(G.mayBeNull(B));
}

TEST(QualGraphTest, ViolationsAreBoundNodesReached) {
  QualGraph G;
  auto Src = G.newNode("NULL");
  auto Mid = G.newNode("x");
  auto Sink = G.newNode("free::p");
  auto Unrelated = G.newNode("y");
  G.markNullSource(Src);
  G.markNonnullBound(Sink);
  G.markNonnullBound(Unrelated);
  G.addFlow(Src, Mid);
  G.addFlow(Mid, Sink);
  G.solve();
  auto V = G.violations();
  ASSERT_EQ(V.size(), 1u);
  EXPECT_EQ(V[0], Sink);
}

TEST(QualGraphTest, WitnessPathIsAValidFlowChain) {
  QualGraph G;
  auto Src = G.newNode("NULL");
  auto M1 = G.newNode("m1");
  auto M2 = G.newNode("m2");
  auto Sink = G.newNode("sink");
  G.markNullSource(Src);
  G.markNonnullBound(Sink);
  G.addFlow(Src, M1);
  G.addFlow(M1, M2);
  G.addFlow(M2, Sink);
  G.solve();
  auto Path = G.witnessPath(Sink);
  ASSERT_EQ(Path.size(), 4u);
  EXPECT_EQ(Path.front(), Src);
  EXPECT_EQ(Path.back(), Sink);
  EXPECT_EQ(G.describePath(Path), "NULL -> m1 -> m2 -> sink");
}

TEST(QualGraphTest, WitnessPrefersShortestViaBfs) {
  QualGraph G;
  auto Src = G.newNode("src");
  auto Long1 = G.newNode("l1");
  auto Long2 = G.newNode("l2");
  auto Sink = G.newNode("sink");
  G.markNullSource(Src);
  G.markNonnullBound(Sink);
  G.addFlow(Src, Long1);
  G.addFlow(Long1, Long2);
  G.addFlow(Long2, Sink);
  G.addFlow(Src, Sink); // the short route
  G.solve();
  EXPECT_EQ(G.witnessPath(Sink).size(), 2u);
}

TEST(QualGraphTest, UnreachableNodeHasEmptyWitness) {
  QualGraph G;
  auto A = G.newNode("a");
  G.solve();
  EXPECT_TRUE(G.witnessPath(A).empty());
}

TEST(QualGraphTest, DuplicateEdgesAreDeduplicated) {
  QualGraph G;
  auto A = G.newNode("a");
  auto B = G.newNode("b");
  G.addFlow(A, B);
  G.addFlow(A, B);
  G.addFlow(A, A); // self loops are dropped too
  EXPECT_EQ(G.numEdges(), 1u);
}

TEST(QualGraphTest, ResolvesAfterIncrementalGrowth) {
  // MIXY's fixpoint re-solves after adding constraints; reachability
  // must refresh, not accumulate stale state.
  QualGraph G;
  auto A = G.newNode("a");
  auto B = G.newNode("b");
  G.markNonnullBound(B);
  G.solve();
  EXPECT_TRUE(G.violations().empty());
  G.markNullSource(A);
  G.addFlow(A, B);
  G.solve();
  EXPECT_EQ(G.violations().size(), 1u);
}
