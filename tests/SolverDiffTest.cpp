//===--- SolverDiffTest.cpp - Differential testing of solver backends -----===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// Property-based differential harness over the solver registry: random
// Term formulas are decided by every registered backend (plus the racing
// portfolio) and cross-checked against a brute-force small-domain
// enumerator oracle. The oracle is one-directional — a satisfying
// assignment it finds proves Sat over the unbounded integers, but an
// exhausted small domain proves nothing — so the failure rules are:
//
//   - backend Unsat + oracle found a model       -> hard fail
//   - backend Sat with a Complete model that does
//     not evaluate the formula to true           -> hard fail
//   - two backends answering Sat vs Unsat        -> hard fail
//   - backend Sat + oracle exhausted             -> fine (witness may
//     need values outside the enumerated domain)
//   - Unknown (a resource-cap artifact) vs
//     anything                                   -> fine
//
// The generator is seeded deterministically and every failure message
// carries the base seed and formula index, so any disagreement replays.
//
//===----------------------------------------------------------------------===//

#include "solver/AssertionStack.h"
#include "solver/SolverFactory.h"
#include "solver/TermEval.h"

#include <gtest/gtest.h>

#include <random>

using namespace mix::smt;

namespace {

/// The variables every generated formula draws from: 2 integers and 2
/// booleans — few enough that the oracle's full enumeration over
/// Domain^2 x Bool^2 stays cheap, plenty for operator coverage.
struct DiffVars {
  std::vector<const Term *> Ints;
  std::vector<const Term *> Bools;
  explicit DiffVars(TermArena &A) {
    for (int I = 0; I != 2; ++I)
      Ints.push_back(A.freshIntVar("x" + std::to_string(I)));
    for (int I = 0; I != 2; ++I)
      Bools.push_back(A.freshBoolVar("p" + std::to_string(I)));
  }
};

/// Random integer-sorted term, depth-bounded.
const Term *genInt(TermArena &A, const DiffVars &V, std::mt19937 &Rng,
                   unsigned Depth) {
  if (Depth == 0 || Rng() % 3 == 0) {
    if (Rng() % 2)
      return V.Ints[Rng() % V.Ints.size()];
    return A.intConst((long long)(Rng() % 7) - 3);
  }
  switch (Rng() % 5) {
  case 0:
    return A.add(genInt(A, V, Rng, Depth - 1), genInt(A, V, Rng, Depth - 1));
  case 1:
    return A.sub(genInt(A, V, Rng, Depth - 1), genInt(A, V, Rng, Depth - 1));
  case 2:
    return A.neg(genInt(A, V, Rng, Depth - 1));
  case 3:
    return A.mulConst((long long)(Rng() % 5) - 2,
                      genInt(A, V, Rng, Depth - 1));
  default:
    return A.iteInt(Rng() % 2 ? V.Bools[Rng() % V.Bools.size()]
                              : A.lt(V.Ints[0], V.Ints[1]),
                    genInt(A, V, Rng, Depth - 1),
                    genInt(A, V, Rng, Depth - 1));
  }
}

/// Random boolean-sorted term, depth-bounded: the full Term surface the
/// analyses generate (comparisons over linear arithmetic, connectives,
/// ite in both sorts).
const Term *genBool(TermArena &A, const DiffVars &V, std::mt19937 &Rng,
                    unsigned Depth) {
  if (Depth == 0 || Rng() % 4 == 0) {
    switch (Rng() % 3) {
    case 0:
      return V.Bools[Rng() % V.Bools.size()];
    case 1:
      return A.boolConst(Rng() % 2 != 0);
    default:
      return A.lt(genInt(A, V, Rng, 1), genInt(A, V, Rng, 1));
    }
  }
  switch (Rng() % 8) {
  case 0:
    return A.andTerm(genBool(A, V, Rng, Depth - 1),
                     genBool(A, V, Rng, Depth - 1));
  case 1:
    return A.orTerm(genBool(A, V, Rng, Depth - 1),
                    genBool(A, V, Rng, Depth - 1));
  case 2:
    return A.notTerm(genBool(A, V, Rng, Depth - 1));
  case 3:
    return A.implies(genBool(A, V, Rng, Depth - 1),
                     genBool(A, V, Rng, Depth - 1));
  case 4:
    return A.eqBool(genBool(A, V, Rng, Depth - 1),
                    genBool(A, V, Rng, Depth - 1));
  case 5:
    return A.iteBool(genBool(A, V, Rng, Depth - 1),
                     genBool(A, V, Rng, Depth - 1),
                     genBool(A, V, Rng, Depth - 1));
  case 6:
    return A.eqInt(genInt(A, V, Rng, 2), genInt(A, V, Rng, 2));
  default:
    return A.le(genInt(A, V, Rng, 2), genInt(A, V, Rng, 2));
  }
}

/// Brute-force oracle: enumerates every assignment of the DiffVars over
/// a small integer domain. Returns true (with \p Witness filled) when
/// some assignment satisfies \p F.
bool oracleFindsModel(const Term *F, const DiffVars &V, SmtModel &Witness) {
  static const long long Domain[] = {-2, -1, 0, 1, 2};
  for (long long X0 : Domain)
    for (long long X1 : Domain)
      for (int B0 = 0; B0 != 2; ++B0)
        for (int B1 = 0; B1 != 2; ++B1) {
          SmtModel M;
          M.Ints[V.Ints[0]->varId()] = X0;
          M.Ints[V.Ints[1]->varId()] = X1;
          M.Bools[V.Bools[0]->varId()] = B0 != 0;
          M.Bools[V.Bools[1]->varId()] = B1 != 0;
          if (evalBool(F, M)) {
            Witness = M;
            return true;
          }
        }
  return false;
}

} // namespace

TEST(SolverDiffTest, BackendsAgreeWithOracleOn5kFormulas) {
  const unsigned BaseSeed = 0xd1ff5eed;
  const unsigned NumFormulas = 5000;

  TermArena A;
  DiffVars V(A);

  // Every registered backend, plus the portfolio wrapper over the
  // default primary — it must be indistinguishable verdict-wise.
  struct Lane {
    std::string Label;
    std::unique_ptr<ISolver> S;
  };
  std::vector<Lane> Lanes;
  for (const std::string &Name : registeredBackends()) {
    Lanes.push_back({Name, createBackend(Name, A, SmtOptions())});
    ASSERT_NE(Lanes.back().S, nullptr) << Name;
  }
  SolverSpec PortfolioSpec;
  PortfolioSpec.Portfolio = true;
  Lanes.push_back({"portfolio", createSolver(PortfolioSpec, A, SmtOptions())});
  ASSERT_NE(Lanes.back().S, nullptr);

  unsigned OracleSat = 0, OracleExhausted = 0;
  for (unsigned I = 0; I != NumFormulas; ++I) {
    std::mt19937 Rng(BaseSeed + I);
    const Term *F = genBool(A, V, Rng, 3);
    std::string Ctx = "formula " + std::to_string(I) + " (base seed " +
                      std::to_string(BaseSeed) + ")";

    SmtModel OracleModel;
    bool OracleSatisfiable = oracleFindsModel(F, V, OracleModel);
    (OracleSatisfiable ? OracleSat : OracleExhausted)++;

    SolveResult FirstDefinitive = SolveResult::Unknown;
    std::string FirstLane;
    for (Lane &L : Lanes) {
      SmtModel M;
      SolveResult R = L.S->checkSat(F, &M);
      if (R == SolveResult::Unknown)
        continue; // resource-cap artifact; nothing to compare
      if (R == SolveResult::Unsat) {
        ASSERT_FALSE(OracleSatisfiable)
            << Ctx << ": " << L.Label
            << " says Unsat but the oracle holds a concrete model";
      } else if (M.Complete) {
        ASSERT_TRUE(evalBool(F, M))
            << Ctx << ": " << L.Label
            << " returned a model that does not satisfy the formula";
      }
      if (FirstDefinitive == SolveResult::Unknown) {
        FirstDefinitive = R;
        FirstLane = L.Label;
      } else {
        ASSERT_EQ(R, FirstDefinitive)
            << Ctx << ": " << L.Label << " says " << solveResultName(R)
            << " but " << FirstLane << " says "
            << solveResultName(FirstDefinitive);
      }
    }
  }
  // The generator should exercise both outcomes heavily; a collapse to
  // one side means the formula distribution regressed, not the solvers.
  EXPECT_GT(OracleSat, NumFormulas / 10);
  EXPECT_GT(OracleExhausted, NumFormulas / 100);
}

TEST(SolverDiffTest, ModelsFromStacksSatisfyTheirConjunction) {
  // The same differential property through the AssertionStack surface:
  // assert the formula in a frame, checkSat, validate the model.
  const unsigned BaseSeed = 0x57acd1ff;
  TermArena A;
  DiffVars V(A);
  for (const std::string &Name : registeredBackends()) {
    SCOPED_TRACE("backend: " + Name);
    std::unique_ptr<ISolver> S = createBackend(Name, A, SmtOptions());
    ASSERT_NE(S, nullptr);
    std::unique_ptr<AssertionStack> St = S->openStack();
    for (unsigned I = 0; I != 500; ++I) {
      std::mt19937 Rng(BaseSeed + I);
      const Term *F = genBool(A, V, Rng, 2);
      St->push();
      St->assertTerm(F);
      SmtModel M;
      SolveResult R = St->checkSat(&M);
      SmtModel OracleModel;
      if (R == SolveResult::Unsat) {
        ASSERT_FALSE(oracleFindsModel(F, V, OracleModel))
            << "formula " << I << " (base seed " << BaseSeed << ")";
      } else if (R == SolveResult::Sat && M.Complete) {
        ASSERT_TRUE(evalBool(F, M))
            << "formula " << I << " (base seed " << BaseSeed << ")";
      }
      St->pop();
    }
  }
}
