//===--- PointsToTest.cpp - Tests for the points-to analysis --------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "cfront/CParser.h"
#include "ptranal/PointsTo.h"

#include <gtest/gtest.h>

using namespace mix::c;
using mix::DiagnosticEngine;

namespace {

class PointsToTest : public ::testing::Test {
protected:
  const CProgram *analyze(std::string_view Source) {
    const CProgram *P = parseC(Source, Ctx, Diags);
    EXPECT_NE(P, nullptr) << Diags.str();
    if (!P)
      return nullptr;
    Analysis = std::make_unique<PointsToAnalysis>(*P, Ctx, Diags);
    Analysis->run();
    return P;
  }

  CAstContext Ctx;
  DiagnosticEngine Diags;
  std::unique_ptr<PointsToAnalysis> Analysis;
};

} // namespace

TEST_F(PointsToTest, AddressOfUnifiesTarget) {
  const CProgram *P = analyze("int x; int *p;\n"
                              "void f(void) { p = &x; }");
  ASSERT_NE(P, nullptr);
  auto PCell = Analysis->cellOfVar(nullptr, "p");
  auto XCell = Analysis->cellOfVar(nullptr, "x");
  EXPECT_EQ(Analysis->pointsTo(PCell), Analysis->find(XCell));
}

TEST_F(PointsToTest, AssignmentUnifiesPointers) {
  const CProgram *P = analyze("int x; int *p; int *q;\n"
                              "void f(void) { p = &x; q = p; }");
  ASSERT_NE(P, nullptr);
  auto PCell = Analysis->cellOfVar(nullptr, "p");
  auto QCell = Analysis->cellOfVar(nullptr, "q");
  // Steensgaard unifies the two pointers' targets.
  EXPECT_EQ(Analysis->pointsTo(PCell), Analysis->pointsTo(QCell));
  EXPECT_TRUE(Analysis->mayAlias(Analysis->pointsTo(PCell),
                                 Analysis->cellOfVar(nullptr, "x")));
}

TEST_F(PointsToTest, UnrelatedPointersStaySeparate) {
  const CProgram *P = analyze("int x; int y; int *p; int *q;\n"
                              "void f(void) { p = &x; q = &y; }");
  ASSERT_NE(P, nullptr);
  auto PT = Analysis->pointsTo(Analysis->cellOfVar(nullptr, "p"));
  auto QT = Analysis->pointsTo(Analysis->cellOfVar(nullptr, "q"));
  EXPECT_NE(PT, QT);
  EXPECT_FALSE(Analysis->mayAlias(PT, QT));
}

TEST_F(PointsToTest, SteensgaardConflatesAfterJoin) {
  // The classic imprecision: p = &x; p = &y unifies x and y.
  const CProgram *P = analyze("int x; int y; int *p;\n"
                              "void f(void) { p = &x; p = &y; }");
  ASSERT_NE(P, nullptr);
  EXPECT_TRUE(Analysis->mayAlias(Analysis->cellOfVar(nullptr, "x"),
                                 Analysis->cellOfVar(nullptr, "y")));
}

TEST_F(PointsToTest, MallocSitesAreDistinct) {
  const CProgram *P = analyze(
      "struct foo { int a; };\n"
      "void f(void) {\n"
      "  struct foo *p = (struct foo*) malloc(sizeof(struct foo));\n"
      "  struct foo *q = (struct foo*) malloc(sizeof(struct foo));\n"
      "}");
  ASSERT_NE(P, nullptr);
  const CFuncDecl *F = P->findFunc("f");
  auto PT = Analysis->pointsTo(Analysis->cellOfVar(F, "p"));
  auto QT = Analysis->pointsTo(Analysis->cellOfVar(F, "q"));
  ASSERT_NE(PT, PointsToAnalysis::NoCell);
  ASSERT_NE(QT, PointsToAnalysis::NoCell);
  EXPECT_NE(PT, QT);
}

TEST_F(PointsToTest, CallBindsArgumentsToParameters) {
  const CProgram *P = analyze("int x;\n"
                              "int *id(int *a) { return a; }\n"
                              "void f(void) { int *r = id(&x); }");
  ASSERT_NE(P, nullptr);
  const CFuncDecl *F = P->findFunc("f");
  auto RT = Analysis->pointsTo(Analysis->cellOfVar(F, "r"));
  EXPECT_EQ(RT, Analysis->find(Analysis->cellOfVar(nullptr, "x")));
}

TEST_F(PointsToTest, ContextInsensitivityConflatesCallSites) {
  // The imprecision the paper highlights in Section 4.6: a
  // context-insensitive analysis conflates distinct calls through the
  // same function.
  const CProgram *P = analyze("int x; int y;\n"
                              "int *id(int *a) { return a; }\n"
                              "void f(void) { int *r = id(&x); "
                              "int *s = id(&y); }");
  ASSERT_NE(P, nullptr);
  EXPECT_TRUE(Analysis->mayAlias(Analysis->cellOfVar(nullptr, "x"),
                                 Analysis->cellOfVar(nullptr, "y")));
}

TEST_F(PointsToTest, DerefAssignment) {
  const CProgram *P = analyze("int x; int *p; int **pp;\n"
                              "void f(void) { pp = &p; *pp = &x; }");
  ASSERT_NE(P, nullptr);
  // *pp and p share a cell, so p now points to x.
  EXPECT_EQ(Analysis->pointsTo(Analysis->cellOfVar(nullptr, "p")),
            Analysis->find(Analysis->cellOfVar(nullptr, "x")));
}

TEST_F(PointsToTest, StructFieldsAreFieldInsensitive) {
  const CProgram *P = analyze(
      "struct s { int *a; int *b; };\n"
      "int x; struct s g;\n"
      "void f(void) { g.a = &x; }");
  ASSERT_NE(P, nullptr);
  // Field-insensitive: the struct is one cell; both fields alias.
  auto GCell = Analysis->cellOfVar(nullptr, "g");
  EXPECT_EQ(Analysis->pointsTo(GCell),
            Analysis->find(Analysis->cellOfVar(nullptr, "x")));
}

TEST_F(PointsToTest, FunctionPointerCall) {
  const CProgram *P = analyze(
      "int x;\n"
      "void target(int *p) { }\n"
      "void (*fp)(int *);\n"
      "void f(void) { fp = target; (*fp)(&x); }");
  ASSERT_NE(P, nullptr);
  // The indirect call binds &x to target's parameter.
  const CFuncDecl *Target = P->findFunc("target");
  auto ParamTarget = Analysis->pointsTo(Analysis->cellOfVar(Target, "p"));
  EXPECT_EQ(ParamTarget, Analysis->find(Analysis->cellOfVar(nullptr, "x")));
}

TEST_F(PointsToTest, VariablesInClassReporting) {
  const CProgram *P = analyze("int x; int y; int *p; int *q;\n"
                              "void f(void) { p = &x; p = &y; q = p; }");
  ASSERT_NE(P, nullptr);
  // p and q remain distinct storage, but their shared target class holds
  // both possible pointees.
  EXPECT_NE(Analysis->find(Analysis->cellOfVar(nullptr, "p")),
            Analysis->find(Analysis->cellOfVar(nullptr, "q")));
  auto Members = Analysis->variablesInClass(
      Analysis->pointsTo(Analysis->cellOfVar(nullptr, "q")));
  bool SawX = false, SawY = false;
  for (const auto &[Func, Name] : Members) {
    if (Name == "x")
      SawX = true;
    if (Name == "y")
      SawY = true;
  }
  EXPECT_TRUE(SawX);
  EXPECT_TRUE(SawY);
}

TEST_F(PointsToTest, DescribeIsReadable) {
  const CProgram *P = analyze("int x; int *p;\n"
                              "void f(void) { p = &x; }");
  ASSERT_NE(P, nullptr);
  std::string D = Analysis->describe(Analysis->cellOfVar(nullptr, "x"));
  EXPECT_NE(D.find("x"), std::string::npos);
}
