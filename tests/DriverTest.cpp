//===--- DriverTest.cpp - Tests for the shared driver layer ---------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// Covers the redesigned tool driver: option parsing with "did you mean"
// suggestions, the shared --jobs parser, input loading (file / stdin /
// @corpus), the exit-code contract, the DriverContext observability
// flags, and a golden round-trip of --format=json diagnostics for the
// built-in case studies.
//
//===----------------------------------------------------------------------===//

#include "cfront/CParser.h"
#include "driver/Driver.h"
#include "driver/InputLoader.h"
#include "driver/OptionParser.h"
#include "mixy/Mixy.h"
#include "mixy/VsftpdMini.h"
#include "runtime/ThreadPool.h"
#include "support/Diagnostics.h"

#include "TestJson.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace mix;
namespace driver = mix::driver;

namespace {

/// Runs \p P.parse over \p Args (argv[0] is supplied).
bool parseArgs(driver::OptionParser &P, std::vector<std::string> Args) {
  std::vector<char *> Argv;
  static std::string Tool = "tool";
  Argv.push_back(Tool.data());
  for (std::string &A : Args)
    Argv.push_back(A.data());
  return P.parse((int)Argv.size(), Argv.data());
}

//===----------------------------------------------------------------------===//
// OptionParser
//===----------------------------------------------------------------------===//

TEST(OptionParserTest, FlagsAndPositionals) {
  driver::OptionParser P("tool");
  bool Flag = false;
  P.flag("--flag", &Flag);
  ASSERT_TRUE(parseArgs(P, {"--flag", "input.c", "-"}));
  EXPECT_TRUE(Flag);
  ASSERT_EQ(P.positionals().size(), 2u);
  EXPECT_EQ(P.positionals()[0], "input.c");
  EXPECT_EQ(P.positionals()[1], "-"); // "-" is a positional, not a flag
}

TEST(OptionParserTest, CallbackFlag) {
  driver::OptionParser P("tool");
  int Hits = 0;
  P.flag("--bump", [&Hits] { ++Hits; });
  ASSERT_TRUE(parseArgs(P, {"--bump", "--bump"}));
  EXPECT_EQ(Hits, 2);
}

TEST(OptionParserTest, ValueOptions) {
  driver::OptionParser P("tool");
  std::string Mode;
  P.value("--mode", [&Mode](const std::string &V) {
    if (V != "typed" && V != "symbolic")
      return false;
    Mode = V;
    return true;
  });
  ASSERT_TRUE(parseArgs(P, {"--mode=symbolic"}));
  EXPECT_EQ(Mode, "symbolic");
  // A rejected value is a usage error.
  driver::OptionParser P2("tool");
  P2.value("--mode", [](const std::string &) { return false; });
  EXPECT_FALSE(parseArgs(P2, {"--mode=bogus"}));
}

TEST(OptionParserTest, SeparateValue) {
  driver::OptionParser P("tool");
  std::vector<std::string> Vars;
  P.separateValue("--var", [&Vars](const std::string &V) {
    Vars.push_back(V);
    return true;
  });
  ASSERT_TRUE(parseArgs(P, {"--var", "x:int", "--var", "y:bool"}));
  ASSERT_EQ(Vars.size(), 2u);
  EXPECT_EQ(Vars[0], "x:int");
  EXPECT_EQ(Vars[1], "y:bool");
  // Missing trailing value is a usage error.
  driver::OptionParser P2("tool");
  P2.separateValue("--var", [](const std::string &) { return true; });
  EXPECT_FALSE(parseArgs(P2, {"--var"}));
}

TEST(OptionParserTest, UnknownOptionFails) {
  driver::OptionParser P("tool");
  bool Flag = false;
  P.flag("--strategy", &Flag);
  EXPECT_FALSE(parseArgs(P, {"--bogus"}));
}

TEST(OptionParserTest, Suggestions) {
  driver::OptionParser P("tool");
  bool B = false;
  P.flag("--strategy", &B);
  P.flag("--stats", &B);
  P.flag("--jobs", &B);
  // A one-transposition typo suggests the real flag (value part ignored).
  EXPECT_EQ(P.suggestionFor("--strateyg=fork"), "--strategy");
  EXPECT_EQ(P.suggestionFor("--stast"), "--stats");
  // Nothing close enough: no suggestion rather than a misleading one.
  EXPECT_EQ(P.suggestionFor("--completely-unrelated"), "");
}

TEST(OptionParserTest, JobsParsing) {
  driver::OptionParser P("tool");
  unsigned Jobs = 1;
  P.jobs(&Jobs);
  ASSERT_TRUE(parseArgs(P, {"--jobs=4"}));
  EXPECT_EQ(Jobs, 4u);

  // 0 resolves to one worker per hardware thread.
  driver::OptionParser P0("tool");
  unsigned Jobs0 = 1;
  P0.jobs(&Jobs0);
  ASSERT_TRUE(parseArgs(P0, {"--jobs=0"}));
  EXPECT_EQ(Jobs0, rt::ThreadPool::hardwareWorkers());
  EXPECT_GE(Jobs0, 1u);

  // Non-numeric values are usage errors.
  driver::OptionParser PBad("tool");
  unsigned JobsBad = 1;
  PBad.jobs(&JobsBad);
  EXPECT_FALSE(parseArgs(PBad, {"--jobs=many"}));
}

TEST(OptionParserTest, ExitCodeContract) {
  // The contract both CLIs document in --help; these values are part of
  // the tool interface and must never drift.
  EXPECT_EQ(driver::ExitClean, 0);
  EXPECT_EQ(driver::ExitFindings, 1);
  EXPECT_EQ(driver::ExitUsage, 2);
}

TEST(OptionParserTest, RenderHelpCoversEveryRegisteredOption) {
  // --help is generated from the registration table, so it cannot drift:
  // every registered spelling must appear in the rendered text, in
  // registration order, with its help string.
  driver::OptionParser P("tool");
  bool B = false;
  P.flag("--baseline", &B, "run the baseline analysis");
  P.value(
      "--entry", [](const std::string &) { return true; }, "NAME",
      "analyze starting from NAME");
  P.separateValue(
      "--var", [](const std::string &) { return true; }, "name:type",
      "add a typed variable");
  unsigned Jobs = 1;
  P.jobs(&Jobs);

  std::string Help = P.renderHelp();
  size_t Last = 0;
  for (const std::string &Name : P.optionNames()) {
    size_t At = Help.find(Name);
    ASSERT_NE(At, std::string::npos) << "missing from --help: " << Name;
    EXPECT_GE(At, Last) << "out of registration order: " << Name;
    Last = At;
  }
  EXPECT_NE(Help.find("run the baseline analysis"), std::string::npos);
  EXPECT_NE(Help.find("--entry=NAME"), std::string::npos);
  // separateValue options take their value as the next argv element.
  EXPECT_NE(Help.find("--var name:type"), std::string::npos);
}

TEST(DriverContextTest, RegisteredFlagsAllDocumented) {
  // The shared DriverContext flags ride along in every tool's --help.
  driver::DriverContext Driver;
  driver::OptionParser P("tool");
  Driver.registerOptions(P);
  std::string Help = P.renderHelp();
  for (const char *Name : {"--trace", "--metrics", "--format", "--explain",
                           "--stats", "--cache-dir"}) {
    EXPECT_NE(Help.find(Name), std::string::npos)
        << "missing from --help: " << Name;
  }
  // Each option renders with a non-empty help string: the line must be
  // longer than the spelling itself.
  EXPECT_NE(Help.find("--cache-dir=DIR"), std::string::npos);
  EXPECT_NE(Help.find("--format=text|json|sarif"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// InputLoader
//===----------------------------------------------------------------------===//

class TempFile {
public:
  TempFile(const std::string &Name, const std::string &Content)
      : Path(::testing::TempDir() + Name) {
    std::ofstream Out(Path);
    Out << Content;
  }
  ~TempFile() { std::remove(Path.c_str()); }
  const std::string Path;
};

TEST(InputLoaderTest, ReadsFiles) {
  TempFile F("driver_test_input.txt", "1 + 2\n");
  std::string Source;
  ASSERT_TRUE(driver::loadInput("tool", F.Path, Source));
  EXPECT_EQ(Source, "1 + 2\n");
}

TEST(InputLoaderTest, MissingFileFails) {
  std::string Source;
  EXPECT_FALSE(
      driver::loadInput("tool", "/nonexistent/driver_test_input", Source));
}

TEST(InputLoaderTest, CorpusSpecs) {
  auto Resolver = [](const std::string &Spec, std::string &Out) {
    if (Spec != "case1" && Spec != "case1:baseline")
      return false;
    Out = "corpus:" + Spec;
    return true;
  };
  std::string Source;
  ASSERT_TRUE(driver::loadInput("tool", "@case1", Source, Resolver));
  EXPECT_EQ(Source, "corpus:case1");
  ASSERT_TRUE(driver::loadInput("tool", "@case1:baseline", Source, Resolver));
  EXPECT_EQ(Source, "corpus:case1:baseline");
  EXPECT_FALSE(driver::loadInput("tool", "@case9", Source, Resolver));
}

TEST(InputLoaderTest, AtWithoutResolverIsAFile) {
  // mixcheck has no corpus; "@name" must fall back to a file path.
  TempFile F("@driver_test_at_file", "content");
  std::string Source;
  ASSERT_TRUE(driver::loadInput("tool", F.Path, Source));
  EXPECT_EQ(Source, "content");
}

//===----------------------------------------------------------------------===//
// DriverContext
//===----------------------------------------------------------------------===//

TEST(DriverContextTest, Defaults) {
  driver::DriverContext Driver;
  driver::OptionParser P("tool");
  Driver.registerOptions(P);
  ASSERT_TRUE(parseArgs(P, {}));
  EXPECT_EQ(Driver.traceSink(), nullptr); // no --trace: instrumentation off
  EXPECT_FALSE(Driver.statsRequested());
  EXPECT_FALSE(Driver.jsonOutput());
}

TEST(DriverContextTest, ObservabilityFlags) {
  driver::DriverContext Driver;
  driver::OptionParser P("tool");
  Driver.registerOptions(P);
  ASSERT_TRUE(
      parseArgs(P, {"--trace=/tmp/t.json", "--format=json", "--stats"}));
  EXPECT_NE(Driver.traceSink(), nullptr);
  EXPECT_TRUE(Driver.statsRequested());
  EXPECT_TRUE(Driver.jsonOutput());
}

TEST(DriverContextTest, ProvenanceSinkFollowsTheOutputSurface) {
  // Null by default and under --format=json (nothing renders evidence):
  // the null-handle off switch the analyses branch on.
  {
    driver::DriverContext Driver;
    driver::OptionParser P("tool");
    Driver.registerOptions(P);
    ASSERT_TRUE(parseArgs(P, {"--format=json"}));
    EXPECT_EQ(Driver.provenanceSink(), nullptr);
    EXPECT_FALSE(Driver.explainRequested());
  }
  // --explain keeps text output but turns recording on.
  {
    driver::DriverContext Driver;
    driver::OptionParser P("tool");
    Driver.registerOptions(P);
    ASSERT_TRUE(parseArgs(P, {"--explain"}));
    EXPECT_TRUE(Driver.explainRequested());
    EXPECT_NE(Driver.provenanceSink(), nullptr);
    EXPECT_FALSE(Driver.jsonOutput());
  }
  // --format=sarif needs the evidence for codeFlows, so the sink is live
  // and counts into the shared registry.
  {
    driver::DriverContext Driver;
    driver::OptionParser P("tool");
    Driver.registerOptions(P);
    ASSERT_TRUE(parseArgs(P, {"--format=sarif"}));
    EXPECT_EQ(Driver.format(), driver::DriverContext::OutputFormat::Sarif);
    EXPECT_TRUE(Driver.jsonOutput()); // machine format: one doc on stdout
    prov::ProvenanceSink *Sink = Driver.provenanceSink();
    ASSERT_NE(Sink, nullptr);
    Sink->countWitness();
    EXPECT_EQ(Driver.metrics().counterValue("provenance.witnesses"), 1u);
  }
}

TEST(DriverContextTest, BadFormatRejected) {
  driver::DriverContext Driver;
  driver::OptionParser P("tool");
  Driver.registerOptions(P);
  EXPECT_FALSE(parseArgs(P, {"--format=xml"}));
}

TEST(DriverContextTest, EmptyArtifactPathsRejected) {
  driver::DriverContext Driver;
  driver::OptionParser P("tool");
  Driver.registerOptions(P);
  EXPECT_FALSE(parseArgs(P, {"--trace="}));
  driver::DriverContext Driver2;
  driver::OptionParser P2("tool");
  Driver2.registerOptions(P2);
  EXPECT_FALSE(parseArgs(P2, {"--metrics="}));
}

TEST(DriverContextTest, MetricsRegistryIsLive) {
  driver::DriverContext Driver;
  Driver.metrics().counter("x").add(3);
  EXPECT_EQ(Driver.metrics().counterValue("x"), 3u);
}

//===----------------------------------------------------------------------===//
// Golden --format=json round-trip for the case studies
//===----------------------------------------------------------------------===//

const char *severityName(DiagKind K) {
  switch (K) {
  case DiagKind::Error:
    return "error";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Note:
    return "note";
  }
  return "?";
}

/// Runs MIXY over one corpus case and checks that renderJSON() is a
/// faithful, machine-parseable image of the engine's diagnostic list:
/// every non-attached diagnostic appears once, in order, with matching
/// id/severity/location/message, and every attached note appears inside
/// its parent's "notes" array.
void roundTripCase(int CaseNo, bool Annotated) {
  SCOPED_TRACE("case" + std::to_string(CaseNo) +
               (Annotated ? "" : ":baseline"));
  c::CAstContext Ctx;
  DiagnosticEngine Diags;
  const c::CProgram *P =
      c::parseC(c::corpus::vsftpdCase(CaseNo, Annotated), Ctx, Diags);
  ASSERT_NE(P, nullptr);
  c::MixyAnalysis Analysis(*P, Ctx, Diags);
  Analysis.run(c::MixyAnalysis::StartMode::Typed);

  testjson::Value Doc;
  std::string Error;
  ASSERT_TRUE(testjson::parseDocument(Diags.renderJSON(), Doc, &Error))
      << Error;
  ASSERT_TRUE(Doc.isArray());

  const std::vector<Diagnostic> &All = Diags.diagnostics();
  size_t Rendered = 0;
  for (size_t I = 0; I != All.size(); ++I) {
    const Diagnostic &D = All[I];
    if (D.Kind == DiagKind::Note && D.Parent != Diagnostic::NoParent)
      continue; // appears inside its parent, checked below
    ASSERT_LT(Rendered, Doc.size());
    const testjson::Value &Obj = Doc[Rendered++];
    ASSERT_TRUE(Obj.isObject());
    EXPECT_EQ(Obj["id"].Str, diagIdString(D.ID));
    EXPECT_EQ(Obj["category"].Str, diagCategory(D.ID));
    EXPECT_EQ(Obj["severity"].Str, severityName(D.Kind));
    EXPECT_EQ(Obj["line"].Num, D.Loc.Line);
    EXPECT_EQ(Obj["column"].Num, D.Loc.Column);
    EXPECT_EQ(Obj["message"].Str, D.Message);
    std::vector<size_t> Notes = Diags.notesFor(I);
    ASSERT_TRUE(Obj["notes"].isArray());
    ASSERT_EQ(Obj["notes"].size(), Notes.size());
    for (size_t N = 0; N != Notes.size(); ++N) {
      const Diagnostic &Note = All[Notes[N]];
      const testjson::Value &NObj = Obj["notes"][N];
      EXPECT_EQ(NObj["id"].Str, diagIdString(Note.ID));
      EXPECT_EQ(NObj["severity"].Str, "note");
      EXPECT_EQ(NObj["message"].Str, Note.Message);
      EXPECT_EQ(NObj["line"].Num, Note.Loc.Line);
      EXPECT_EQ(NObj["column"].Num, Note.Loc.Column);
    }
  }
  EXPECT_EQ(Rendered, Doc.size());
}

TEST(JsonRoundTripTest, Case1) { roundTripCase(1, true); }
TEST(JsonRoundTripTest, Case2) { roundTripCase(2, true); }
TEST(JsonRoundTripTest, Case3) { roundTripCase(3, true); }
TEST(JsonRoundTripTest, Case4) { roundTripCase(4, true); }

// The baseline variants actually produce warnings (with qualifier-flow
// notes), so the notes path is exercised for real.
TEST(JsonRoundTripTest, Case1Baseline) { roundTripCase(1, false); }
TEST(JsonRoundTripTest, Case4Baseline) { roundTripCase(4, false); }

} // namespace
