//===--- CFrontTest.cpp - Tests for the mini-C front end ------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "cfront/CParser.h"
#include "cfront/CPrinter.h"
#include "cfront/CSema.h"

#include <gtest/gtest.h>

using namespace mix::c;
using mix::DiagnosticEngine;

namespace {

class CFrontTest : public ::testing::Test {
protected:
  const CProgram *parse(std::string_view Source) {
    Diags.clear();
    return parseC(Source, Ctx, Diags);
  }

  CAstContext Ctx;
  DiagnosticEngine Diags;
};

} // namespace

TEST_F(CFrontTest, EmptyProgram) {
  const CProgram *P = parse("");
  ASSERT_NE(P, nullptr);
  EXPECT_TRUE(P->Funcs.empty());
}

TEST_F(CFrontTest, GlobalVariables) {
  const CProgram *P = parse("int x; int *p; int y = 42; char *s;");
  ASSERT_NE(P, nullptr) << Diags.str();
  ASSERT_EQ(P->Globals.size(), 4u);
  EXPECT_EQ(P->Globals[0]->type()->str(), "int");
  EXPECT_TRUE(P->Globals[1]->type()->isPointer());
  ASSERT_NE(P->Globals[2]->init(), nullptr);
  EXPECT_EQ(cast<CIntLit>(P->Globals[2]->init())->value(), 42);
}

TEST_F(CFrontTest, QualifierAnnotations) {
  const CProgram *P = parse("int * nonnull p; int * null q; int *r;");
  ASSERT_NE(P, nullptr) << Diags.str();
  EXPECT_EQ(P->Globals[0]->type()->qualifier(), QualAnnot::Nonnull);
  EXPECT_EQ(P->Globals[1]->type()->qualifier(), QualAnnot::Null);
  EXPECT_EQ(P->Globals[2]->type()->qualifier(), QualAnnot::None);
}

TEST_F(CFrontTest, StructDefinitionAndUse) {
  const CProgram *P = parse("struct foo { int bar; struct foo *next; };\n"
                            "struct foo *head;");
  ASSERT_NE(P, nullptr) << Diags.str();
  ASSERT_EQ(P->Structs.size(), 1u);
  const CStructDecl *S = P->Structs[0];
  EXPECT_EQ(S->name(), "foo");
  ASSERT_EQ(S->fields().size(), 2u);
  EXPECT_TRUE(S->fields()[1].Ty->isPointer());
  // The recursive field points back to the same declaration.
  EXPECT_EQ(S->fields()[1].Ty->pointee()->structDecl(), S);
}

TEST_F(CFrontTest, FunctionDefinition) {
  const CProgram *P = parse("int add(int a, int b) { return a + b; }");
  ASSERT_NE(P, nullptr) << Diags.str();
  ASSERT_EQ(P->Funcs.size(), 1u);
  const CFuncDecl *F = P->Funcs[0];
  EXPECT_EQ(F->name(), "add");
  EXPECT_TRUE(F->isDefined());
  ASSERT_EQ(F->params().size(), 2u);
  EXPECT_EQ(F->params()[0].Name, "a");
  EXPECT_EQ(F->mixAnnot(), MixAnnot::None);
}

TEST_F(CFrontTest, MixAnnotations) {
  const CProgram *P =
      parse("void f(void) MIX(typed) { }\n"
            "void g(void) MIX(symbolic) { }\n"
            "void h(void *nonnull p) MIX(typed);");
  ASSERT_NE(P, nullptr) << Diags.str();
  EXPECT_EQ(P->Funcs[0]->mixAnnot(), MixAnnot::Typed);
  EXPECT_EQ(P->Funcs[1]->mixAnnot(), MixAnnot::Symbolic);
  EXPECT_EQ(P->Funcs[2]->mixAnnot(), MixAnnot::Typed);
  EXPECT_FALSE(P->Funcs[2]->isDefined());
  EXPECT_EQ(P->Funcs[2]->params()[0].Ty->qualifier(), QualAnnot::Nonnull);
}

TEST_F(CFrontTest, FunctionPointerDeclarator) {
  const CProgram *P = parse("void (*s_exit_func)(void);");
  ASSERT_NE(P, nullptr) << Diags.str();
  ASSERT_EQ(P->Globals.size(), 1u);
  const CType *T = P->Globals[0]->type();
  ASSERT_TRUE(T->isPointer());
  EXPECT_TRUE(T->pointee()->isFunc());
}

TEST_F(CFrontTest, StatementsParse) {
  const CProgram *P = parse(
      "int f(int n) {\n"
      "  int acc = 0;\n"
      "  while (n > 0) { acc = acc + n; n = n - 1; }\n"
      "  if (acc > 10) return acc; else return 0;\n"
      "}");
  ASSERT_NE(P, nullptr) << Diags.str();
}

TEST_F(CFrontTest, PaperCase1Parses) {
  // The sockaddr_clear function from Section 4.5, Case 1 (abbreviated).
  const CProgram *P = parse(
      "struct sockaddr { int family; };\n"
      "void sysutil_free(void * nonnull p_ptr) MIX(typed);\n"
      "void sockaddr_clear(struct sockaddr **p_sock) MIX(symbolic) {\n"
      "  if (*p_sock != NULL) {\n"
      "    sysutil_free((void*)*p_sock);\n"
      "    *p_sock = NULL;\n"
      "  }\n"
      "}");
  ASSERT_NE(P, nullptr) << Diags.str();
  const CFuncDecl *F = P->findFunc("sockaddr_clear");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->mixAnnot(), MixAnnot::Symbolic);
}

TEST_F(CFrontTest, CallsAndMemberAccess) {
  const CProgram *P = parse(
      "struct hostent { int h_addrtype; };\n"
      "struct hostent *gethostbyname(char *name);\n"
      "int check(char *n) {\n"
      "  struct hostent *hent = gethostbyname(n);\n"
      "  if (hent->h_addrtype == 2) return 1;\n"
      "  return 0;\n"
      "}");
  ASSERT_NE(P, nullptr) << Diags.str();
}

TEST_F(CFrontTest, MallocAndCast) {
  const CProgram *P = parse(
      "struct foo { int bar; };\n"
      "struct foo *make(void) {\n"
      "  struct foo *x = (struct foo *) malloc(sizeof(struct foo));\n"
      "  x->bar = 1;\n"
      "  return x;\n"
      "}");
  ASSERT_NE(P, nullptr) << Diags.str();
}

TEST_F(CFrontTest, ParseErrors) {
  EXPECT_EQ(parse("int"), nullptr);
  EXPECT_EQ(parse("int f( {"), nullptr);
  EXPECT_EQ(parse("int x = ;"), nullptr);
  EXPECT_EQ(parse("struct S { int; };"), nullptr);
  EXPECT_EQ(parse("void f(void) MIX(wrong) { }"), nullptr);
}

// --- sema -------------------------------------------------------------------

TEST_F(CFrontTest, SemaTypesExpressions) {
  const CProgram *P = parse(
      "struct foo { int bar; struct foo *next; };\n"
      "struct foo *g;\n"
      "int f(struct foo *x, int n) { return 0; }");
  ASSERT_NE(P, nullptr) << Diags.str();
  CSema Sema(*P, Ctx, Diags);
  CScope Scope = CScope::forFunction(P->findFunc("f"));

  auto TypeOfSrc = [&](const CExpr *E) {
    const CType *T = Sema.typeOf(E, Scope);
    return T ? T->str() : "<error>";
  };

  const CExpr *XBar = Ctx.make<CMember>(mix::SourceLoc(),
                                        Ctx.make<CIdent>(mix::SourceLoc(),
                                                         "x"),
                                        "bar", /*IsArrow=*/true);
  EXPECT_EQ(TypeOfSrc(XBar), "int");

  const CExpr *GNext = Ctx.make<CMember>(
      mix::SourceLoc(), Ctx.make<CIdent>(mix::SourceLoc(), "g"), "next",
      true);
  EXPECT_EQ(TypeOfSrc(GNext), "struct foo *");

  const CExpr *DerefX = Ctx.make<CUnary>(
      mix::SourceLoc(), CUnaryOp::Deref,
      Ctx.make<CIdent>(mix::SourceLoc(), "x"));
  EXPECT_EQ(TypeOfSrc(DerefX), "struct foo");

  const CExpr *AddrN = Ctx.make<CUnary>(
      mix::SourceLoc(), CUnaryOp::AddrOf,
      Ctx.make<CIdent>(mix::SourceLoc(), "n"));
  EXPECT_EQ(TypeOfSrc(AddrN), "int *");

  const CExpr *Bad = Ctx.make<CIdent>(mix::SourceLoc(), "nope");
  EXPECT_EQ(TypeOfSrc(Bad), "<error>");
}

// --- pretty printer -----------------------------------------------------------

TEST_F(CFrontTest, PrinterRoundTripsFixesPoint) {
  // print(parse(print(parse(S)))) == print(parse(S)) for representative
  // programs covering every construct.
  const char *Programs[] = {
      "int x; int *p; int y = 42;",
      "int * nonnull p; int * null q;",
      "struct foo { int bar; struct foo *next; };\n"
      "struct foo *head;",
      "void (*s_exit_func)(void);",
      "int f(int a, int b) { return a + b; }",
      "void g(void) MIX(typed) { }",
      "void h(int *p) MIX(symbolic) { if (p != NULL) { *p = 1; } }",
      "int loop(int n) {\n"
      "  int acc = 0;\n"
      "  while (n > 0) { acc = acc + n; n = n - 1; }\n"
      "  return acc;\n"
      "}",
      "struct foo { int bar; };\n"
      "struct foo *mk(void) {\n"
      "  struct foo *x = (struct foo *) malloc(sizeof(struct foo));\n"
      "  x->bar = sizeof(int) - 1;\n"
      "  return x;\n"
      "}",
      "char *s(void) { return \"hi\"; }",
      "int neg(int a) { return -a + !a; }",
  };
  for (const char *Source : Programs) {
    Diags.clear();
    const CProgram *P1 = parseC(Source, Ctx, Diags);
    ASSERT_NE(P1, nullptr) << Source << "\n" << Diags.str();
    std::string Once = printProgram(*P1);
    const CProgram *P2 = parseC(Once, Ctx, Diags);
    ASSERT_NE(P2, nullptr) << "reparse failed for:\n"
                           << Once << "\n"
                           << Diags.str();
    EXPECT_EQ(printProgram(*P2), Once) << Source;
  }
}

TEST_F(CFrontTest, PrinterRoundTripsTheCorpusConstructs) {
  const CProgram *P = parse(
      "struct sockaddr { int sa_family; };\n"
      "void sysutil_free(void * nonnull p_ptr) MIX(typed);\n"
      "void sockaddr_clear(struct sockaddr ** nonnull p_sock) "
      "MIX(symbolic) {\n"
      "  if (*p_sock != NULL) {\n"
      "    sysutil_free((void *)*p_sock);\n"
      "    *p_sock = NULL;\n"
      "  }\n"
      "}");
  ASSERT_NE(P, nullptr) << Diags.str();
  std::string Printed = printProgram(*P);
  const CProgram *P2 = parseC(Printed, Ctx, Diags);
  ASSERT_NE(P2, nullptr) << Printed << "\n" << Diags.str();
  EXPECT_EQ(printProgram(*P2), Printed);
  // Annotations survive.
  EXPECT_NE(Printed.find("MIX(symbolic)"), std::string::npos);
  EXPECT_NE(Printed.find("nonnull"), std::string::npos);
}

TEST_F(CFrontTest, SemaDirectCallee) {
  const CProgram *P = parse(
      "void target(void) { }\n"
      "void (*fp)(void);\n"
      "void caller(void) { target(); (*fp)(); }\n");
  ASSERT_NE(P, nullptr) << Diags.str();
  CSema Sema(*P, Ctx, Diags);
  const CFuncDecl *Caller = P->findFunc("caller");
  const auto *Body = cast<CBlockStmt>(Caller->body());
  const auto *Call1 =
      cast<CCall>(cast<CExprStmt>(Body->stmts()[0])->expr());
  const auto *Call2 =
      cast<CCall>(cast<CExprStmt>(Body->stmts()[1])->expr());
  EXPECT_EQ(Sema.directCallee(Call1), P->findFunc("target"));
  EXPECT_EQ(Sema.directCallee(Call2), nullptr); // through a pointer
}
