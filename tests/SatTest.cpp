//===--- SatTest.cpp - Tests for the CDCL SAT core ------------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "solver/Sat.h"

#include <gtest/gtest.h>

#include <random>

using namespace mix::smt;

namespace {

Lit pos(unsigned V) { return Lit(V, false); }
Lit neg(unsigned V) { return Lit(V, true); }

/// Exhaustive truth-table satisfiability check for cross-validation.
bool bruteForceSat(unsigned NumVars,
                   const std::vector<std::vector<Lit>> &Clauses) {
  for (uint64_t Mask = 0; Mask < (1ULL << NumVars); ++Mask) {
    bool AllSat = true;
    for (const auto &C : Clauses) {
      bool ClauseSat = false;
      for (Lit L : C) {
        bool Val = (Mask >> L.var()) & 1;
        if (Val != L.negated()) {
          ClauseSat = true;
          break;
        }
      }
      if (!ClauseSat) {
        AllSat = false;
        break;
      }
    }
    if (AllSat)
      return true;
  }
  return false;
}

/// Checks that a reported model satisfies all clauses.
void expectModelSatisfies(const SatSolver &S,
                          const std::vector<std::vector<Lit>> &Clauses) {
  for (const auto &C : Clauses) {
    bool ClauseSat = false;
    for (Lit L : C)
      if (S.modelValue(L.var()) != L.negated())
        ClauseSat = true;
    EXPECT_TRUE(ClauseSat) << "model does not satisfy a clause";
  }
}

} // namespace

TEST(SatTest, EmptyInstanceIsSat) {
  SatSolver S;
  EXPECT_EQ(S.solve(), SatResult::Sat);
}

TEST(SatTest, SingleUnit) {
  SatSolver S;
  unsigned X = S.newVar();
  S.addClause({pos(X)});
  ASSERT_EQ(S.solve(), SatResult::Sat);
  EXPECT_TRUE(S.modelValue(X));
}

TEST(SatTest, ContradictoryUnits) {
  SatSolver S;
  unsigned X = S.newVar();
  S.addClause({pos(X)});
  S.addClause({neg(X)});
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

TEST(SatTest, EmptyClauseIsUnsat) {
  SatSolver S;
  S.newVar();
  S.addClause({});
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

TEST(SatTest, TautologicalClauseIgnored) {
  SatSolver S;
  unsigned X = S.newVar();
  S.addClause({pos(X), neg(X)});
  EXPECT_EQ(S.solve(), SatResult::Sat);
}

TEST(SatTest, UnitPropagationChain) {
  // x1, x1->x2, x2->x3, ..., forces all true.
  SatSolver S;
  const unsigned N = 20;
  std::vector<unsigned> Vars;
  for (unsigned I = 0; I != N; ++I)
    Vars.push_back(S.newVar());
  S.addClause({pos(Vars[0])});
  for (unsigned I = 0; I + 1 != N; ++I)
    S.addClause({neg(Vars[I]), pos(Vars[I + 1])});
  ASSERT_EQ(S.solve(), SatResult::Sat);
  for (unsigned I = 0; I != N; ++I)
    EXPECT_TRUE(S.modelValue(Vars[I]));
}

TEST(SatTest, RequiresConflictAnalysis) {
  // (a | b) & (a | ~b) & (~a | c) & (~a | ~c) is unsat.
  SatSolver S;
  unsigned A = S.newVar(), B = S.newVar(), C = S.newVar();
  S.addClause({pos(A), pos(B)});
  S.addClause({pos(A), neg(B)});
  S.addClause({neg(A), pos(C)});
  S.addClause({neg(A), neg(C)});
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

TEST(SatTest, PigeonholeThreeIntoTwo) {
  // 3 pigeons, 2 holes: classic small unsat instance.
  SatSolver S;
  unsigned P[3][2];
  for (auto &Row : P)
    for (unsigned &V : Row)
      V = S.newVar();
  for (auto &Row : P)
    S.addClause({pos(Row[0]), pos(Row[1])});
  for (unsigned H = 0; H != 2; ++H)
    for (unsigned I = 0; I != 3; ++I)
      for (unsigned J = I + 1; J != 3; ++J)
        S.addClause({neg(P[I][H]), neg(P[J][H])});
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

TEST(SatTest, IncrementalAddAfterSolve) {
  SatSolver S;
  unsigned X = S.newVar(), Y = S.newVar();
  S.addClause({pos(X), pos(Y)});
  ASSERT_EQ(S.solve(), SatResult::Sat);
  // Block both-possible models one at a time.
  S.addClause({neg(X)});
  ASSERT_EQ(S.solve(), SatResult::Sat);
  EXPECT_TRUE(S.modelValue(Y));
  S.addClause({neg(Y)});
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

/// Random 3-SAT instances cross-checked against a truth table, over a range
/// of clause densities (the interesting band is around ratio 4.3).
class SatRandomTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SatRandomTest, MatchesBruteForce) {
  std::mt19937 Rng(GetParam());
  for (int Round = 0; Round != 40; ++Round) {
    unsigned NumVars = 3 + Rng() % 8; // 3..10
    unsigned NumClauses = 1 + Rng() % (NumVars * 5);
    std::vector<std::vector<Lit>> Clauses;
    SatSolver S;
    for (unsigned I = 0; I != NumVars; ++I)
      S.newVar();
    for (unsigned I = 0; I != NumClauses; ++I) {
      std::vector<Lit> C;
      unsigned Width = 1 + Rng() % 3;
      for (unsigned K = 0; K != Width; ++K)
        C.push_back(Lit(Rng() % NumVars, Rng() % 2 == 0));
      Clauses.push_back(C);
      S.addClause(C);
    }
    bool Expected = bruteForceSat(NumVars, Clauses);
    SatResult Got = S.solve();
    ASSERT_EQ(Got == SatResult::Sat, Expected)
        << "mismatch with brute force (seed " << GetParam() << " round "
        << Round << ")";
    if (Got == SatResult::Sat)
      expectModelSatisfies(S, Clauses);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatRandomTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

TEST(SatTest, StatisticsAccumulate) {
  SatSolver S;
  unsigned A = S.newVar(), B = S.newVar();
  S.addClause({pos(A), pos(B)});
  S.addClause({neg(A), pos(B)});
  S.addClause({pos(A), neg(B)});
  ASSERT_EQ(S.solve(), SatResult::Sat);
  EXPECT_GT(S.stats().Propagations + S.stats().Decisions, 0u);
}
