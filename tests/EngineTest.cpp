//===--- EngineTest.cpp - Shared mix-engine tests -------------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// The engine layer (src/engine/) is the generic recipe every mix
// instantiation runs through: the Section-4.3 block cache, the
// Section-4.4 block stack with recursion cut-off and assumption
// iteration, and the fixpoint scheduler. These tests drive it with a
// formal-MIX-shaped domain — keys are (AST node, typing-context
// signature) pairs, outcomes are type-like values — so the cut-off and
// iteration behavior the paper specifies is pinned down independently of
// any one instantiation.
//
//===----------------------------------------------------------------------===//

#include "engine/Fixpoint.h"
#include "engine/MixEngine.h"

#include "runtime/ThreadPool.h"
#include "support/Hash.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

using namespace mix::engine;
namespace obs = mix::obs;

namespace {

/// The shape of the formal MIX domain: a block analysis is identified by
/// the block (an AST node address) plus the typing context it was entered
/// under, and produces a type-like outcome (0 = "no type yet", the
/// optimistic assumption).
struct TestDomain {
  struct Key {
    const void *Node = nullptr;
    std::string Sig;

    bool operator==(const Key &O) const {
      return Node == O.Node && Sig == O.Sig;
    }
    bool operator<(const Key &O) const {
      return std::tie(Node, Sig) < std::tie(O.Node, O.Sig);
    }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const {
      return mix::hashCombine(std::hash<const void *>()(K.Node),
                              std::hash<std::string>()(K.Sig));
    }
  };
  using SymOutcome = int;
  using TypedOutcome = int;
  static constexpr const char *Name = "test";
};

using Engine = MixEngine<TestDomain>;
using Key = TestDomain::Key;

int NodeA;

Engine::Config config(obs::MetricsRegistry *Metrics = nullptr) {
  Engine::Config C;
  C.Metrics = Metrics;
  return C;
}

} // namespace

TEST(MixEngineTest, CacheHitSkipsEvaluation) {
  obs::MetricsRegistry Metrics;
  Engine E(config(&Metrics));
  Engine::BlockStack Stack;
  Key K{&NodeA, "x:int"};

  int Evals = 0;
  int Hits = 0;
  RunHooks<int> H;
  H.Eval = [&] {
    ++Evals;
    return 42;
  };
  H.OnCacheHit = [&](const int &V) {
    EXPECT_EQ(V, 42);
    ++Hits;
  };

  EXPECT_EQ(E.runSymbolic(K, Stack, H), 42);
  EXPECT_EQ(E.runSymbolic(K, Stack, H), 42);
  EXPECT_EQ(Evals, 1);
  EXPECT_EQ(Hits, 1);
  EXPECT_EQ(Metrics.counterValue("engine.test.blocks"), 1u);
  EXPECT_EQ(Metrics.counterValue("engine.cache.test.hits"), 1u);
  EXPECT_EQ(E.symCacheStats().Inserts, 1u);

  // A different typing context is a different block analysis.
  EXPECT_EQ(E.runSymbolic(Key{&NodeA, "x:bool"}, Stack, H), 42);
  EXPECT_EQ(Evals, 2);
}

TEST(MixEngineTest, SymAndTypedCachesAreIndependent) {
  Engine E(config());
  Engine::BlockStack Stack;
  Key K{&NodeA, "x:int"};

  RunHooks<int> Sym;
  Sym.Eval = [] { return 1; };
  RunHooks<int> Typed;
  Typed.Eval = [] { return 2; };

  EXPECT_EQ(E.runSymbolic(K, Stack, Sym), 1);
  // Same key on the typed side must not hit the symbolic entry.
  EXPECT_EQ(E.runTyped(K, Stack, Typed), 2);
  EXPECT_EQ(E.symCacheStats().Hits, 0u);
  EXPECT_EQ(E.typedCacheStats().Hits, 0u);
  EXPECT_EQ(E.runTyped(K, Stack, Typed), 2);
  EXPECT_EQ(E.typedCacheStats().Hits, 1u);
}

// The Section 4.4 contract: a block that re-enters itself gets the
// current assumption back instead of diverging, and the enclosing
// evaluation re-runs with the actual result as the updated assumption
// until assumption and result agree.
TEST(MixEngineTest, RecursionCutoffIteratesToAgreement) {
  obs::MetricsRegistry Metrics;
  Engine E(config(&Metrics));
  Engine::BlockStack Stack;
  Key K{&NodeA, "f:int->int"};

  int Evals = 0;
  int Cutoffs = 0;
  std::vector<unsigned> Iterations;
  RunHooks<int> H;
  H.Init = [] { return 0; }; // optimistic "no type yet"
  H.OnRecursion = [&] { ++Cutoffs; };
  H.OnIteration = [&](unsigned I) { Iterations.push_back(I); };
  H.Eval = [&] {
    ++Evals;
    // The block calls itself: the nested run must be answered by the
    // stack, with the in-flight assumption.
    RunHooks<int> Nested = H;
    int Assumed = E.runSymbolic(K, Stack, Nested);
    // Monotone body: converges when the assumption reaches 3.
    return std::min(Assumed + 1, 3);
  };

  EXPECT_EQ(E.runSymbolic(K, Stack, H), 3);
  // Assumptions 0 -> 1 -> 2 -> 3, then 3 agrees with the result.
  EXPECT_EQ(Evals, 4);
  EXPECT_EQ(Cutoffs, 4);
  EXPECT_EQ(Iterations, (std::vector<unsigned>{0, 1, 2, 3}));
  EXPECT_TRUE(Stack.empty());
  EXPECT_EQ(Metrics.counterValue("engine.test.recursions"), 4u);
  // One push for the whole iteration, and the converged result cached.
  EXPECT_EQ(Metrics.counterValue("engine.test.blocks"), 1u);
  EXPECT_EQ(E.runSymbolic(K, Stack, H), 3);
  EXPECT_EQ(Evals, 4);
}

TEST(MixEngineTest, RecursionIterationIsBounded) {
  Engine::Config C = config();
  C.MaxRecursionIterations = 5;
  Engine E(C);
  Engine::BlockStack Stack;
  Key K{&NodeA, ""};

  int Evals = 0;
  RunHooks<int> H;
  H.Init = [] { return 0; };
  H.Eval = [&] {
    ++Evals;
    RunHooks<int> Nested = H;
    return E.runSymbolic(K, Stack, Nested) + 1; // never agrees
  };
  EXPECT_EQ(E.runSymbolic(K, Stack, H), 5);
  EXPECT_EQ(Evals, 5);
  EXPECT_TRUE(Stack.empty());
}

TEST(MixEngineTest, KeepIteratingFalseStopsEarly) {
  Engine E(config());
  Engine::BlockStack Stack;
  Key K{&NodeA, ""};

  int Evals = 0;
  RunHooks<int> H;
  H.Init = [] { return 0; };
  H.KeepIterating = [](const int &V) { return V >= 0; };
  H.Eval = [&] {
    ++Evals;
    RunHooks<int> Nested = H;
    (void)E.runSymbolic(K, Stack, Nested);
    return -1; // a failure outcome iteration cannot improve
  };
  EXPECT_EQ(E.runSymbolic(K, Stack, H), -1);
  EXPECT_EQ(Evals, 1);
}

TEST(MixEngineTest, ShouldCacheFalseReRunsNextCall) {
  Engine E(config());
  Engine::BlockStack Stack;
  Key K{&NodeA, ""};

  int Evals = 0;
  RunHooks<int> H;
  H.ShouldCache = [](const int &V) { return V >= 0; };
  H.Eval = [&] {
    ++Evals;
    return -1; // failure: later calls must re-diagnose
  };
  EXPECT_EQ(E.runSymbolic(K, Stack, H), -1);
  EXPECT_EQ(E.runSymbolic(K, Stack, H), -1);
  EXPECT_EQ(Evals, 2);
  EXPECT_EQ(E.symCacheStats().Inserts, 0u);
}

TEST(MixEngineTest, DisabledCacheNeverStoresOrCounts) {
  Engine::Config C = config();
  C.EnableCache = false;
  Engine E(C);
  Engine::BlockStack Stack;
  Key K{&NodeA, ""};

  int Evals = 0;
  RunHooks<int> H;
  H.Eval = [&] {
    ++Evals;
    return 7;
  };
  EXPECT_EQ(E.runSymbolic(K, Stack, H), 7);
  EXPECT_EQ(E.runSymbolic(K, Stack, H), 7);
  EXPECT_EQ(Evals, 2);
  BlockCacheStats S = E.symCacheStats();
  EXPECT_EQ(S.Hits + S.Misses + S.Inserts, 0u);
}

TEST(MixEngineTest, ReplayAnswersWithoutEvaluationAndWarmsTheCache) {
  Engine E(config());
  Engine::BlockStack Stack;
  Key K{&NodeA, ""};

  int Evals = 0;
  int Replays = 0;
  RunHooks<int> H;
  H.Replay = [&]() -> std::optional<int> {
    ++Replays;
    return 9;
  };
  H.Eval = [&] {
    ++Evals;
    return 0;
  };
  EXPECT_EQ(E.runSymbolic(K, Stack, H), 9);
  EXPECT_EQ(E.runSymbolic(K, Stack, H), 9); // in-memory hit, not replay
  EXPECT_EQ(Evals, 0);
  EXPECT_EQ(Replays, 1);
  EXPECT_EQ(E.symCacheStats().Hits, 1u);
}

TEST(MixEngineTest, EvalBeginEndBracketTheRunOutsideTheStack) {
  Engine E(config());
  Engine::BlockStack Stack;
  Key K{&NodeA, ""};

  bool SawBegin = false;
  RunHooks<int> H;
  H.OnEvalBegin = [&] {
    SawBegin = true;
    ASSERT_EQ(Stack.size(), 1u);
    EXPECT_TRUE(Stack.back().Symbolic);
  };
  H.OnEvalEnd = [&](const int &V) {
    EXPECT_EQ(V, 4);
    // The entry is popped before OnEvalEnd so provenance hooks see the
    // caller's stack.
    EXPECT_TRUE(Stack.empty());
  };
  H.Eval = [] { return 4; };
  EXPECT_EQ(E.runSymbolic(K, Stack, H), 4);
  EXPECT_TRUE(SawBegin);
}

// --- FixpointDriver ----------------------------------------------------------

namespace {

/// A synthetic monotone constraint system: site i's context is the value
/// of its input site (site 0 reads an external target), and evaluating a
/// site copies its context into its value. The least fixpoint sets every
/// value on a chain to the target.
struct ChainSystem {
  explicit ChainSystem(size_t N, int Target) : Target(Target), Ctx(N, -1),
                                               Val(N, 0) {}

  FixpointCallbacks callbacks() {
    FixpointCallbacks CB;
    CB.NumSites = [this] { return Ctx.size(); };
    CB.Refresh = [this](size_t I) {
      int New = I == 0 ? Target : Val[I - 1];
      if (New == Ctx[I])
        return false;
      Ctx[I] = New;
      return true;
    };
    CB.EvaluateWave = [this](const std::vector<size_t> &Sites, uint64_t Tag) {
      std::lock_guard<std::mutex> Lock(WavesM);
      Waves.emplace_back(Tag, Sites);
      for (size_t I : Sites)
        Val[I] = Ctx[I];
    };
    CB.Edges = [this] {
      std::vector<std::pair<size_t, size_t>> E;
      for (size_t I = 1; I != Ctx.size(); ++I)
        E.emplace_back(I - 1, I);
      return E;
    };
    return CB;
  }

  int Target;
  std::vector<int> Ctx, Val;
  std::mutex WavesM;
  std::vector<std::pair<uint64_t, std::vector<size_t>>> Waves;
};

} // namespace

TEST(FixpointDriverTest, AllSchedulesReachTheSameFixpoint) {
  auto Expect = [](ChainSystem &S) {
    for (int V : S.Val)
      EXPECT_EQ(V, 7);
  };
  {
    ChainSystem S(6, 7);
    FixpointDriver D((FixpointConfig()));
    EXPECT_GT(D.runSerial(S.callbacks()), 0u);
    Expect(S);
  }
  {
    ChainSystem S(6, 7);
    FixpointDriver D((FixpointConfig()));
    EXPECT_GT(D.runRoundBarrier(S.callbacks()), 0u);
    Expect(S);
  }
  {
    ChainSystem S(6, 7);
    FixpointDriver D((FixpointConfig()));
    mix::rt::ThreadPool Pool(4);
    EXPECT_GT(D.runWorklist(S.callbacks(), Pool), 0u);
    Expect(S);
  }
}

TEST(FixpointDriverTest, WorklistPipelinesAChainInOnePassPerSite) {
  // On a chain whose edges are exact, the worklist evaluates each site
  // exactly once (SCCs release in dependency order), where the round
  // barrier needs a full round per chain link.
  ChainSystem S(8, 3);
  FixpointConfig C;
  obs::MetricsRegistry Metrics;
  C.Metrics = &Metrics;
  FixpointDriver D(C);
  mix::rt::ThreadPool Pool(4);
  D.runWorklist(S.callbacks(), Pool);
  for (int V : S.Val)
    EXPECT_EQ(V, 3);
  size_t Evaluations = 0;
  for (auto &[Tag, Sites] : S.Waves)
    Evaluations += Sites.size();
  EXPECT_EQ(Evaluations, 8u);
  EXPECT_EQ(Metrics.counterValue("engine.worklist.reruns"), 0u);
}

TEST(FixpointDriverTest, WorklistWaveTagsAreRunToRunDeterministic) {
  auto Run = [] {
    ChainSystem S(8, 3);
    FixpointDriver D((FixpointConfig()));
    mix::rt::ThreadPool Pool(4);
    D.runWorklist(S.callbacks(), Pool);
    std::sort(S.Waves.begin(), S.Waves.end());
    return S.Waves;
  };
  auto A = Run();
  for (int I = 0; I != 5; ++I)
    EXPECT_EQ(Run(), A);
}

TEST(FixpointDriverTest, WorklistIteratesCyclesToTheirFixpoint) {
  // Two mutually dependent sites (one SCC): site 0 raises its value
  // toward 5 from site 1's, site 1 copies site 0's. The SCC must iterate
  // internally until both stabilize at 5.
  struct {
    std::vector<int> Ctx{-1, -1}, Val{0, 0};
  } S;
  FixpointCallbacks CB;
  CB.NumSites = [] { return (size_t)2; };
  CB.Refresh = [&](size_t I) {
    int New = I == 0 ? std::min(S.Val[1] + 1, 5) : S.Val[0];
    if (New == S.Ctx[I])
      return false;
    S.Ctx[I] = New;
    return true;
  };
  CB.EvaluateWave = [&](const std::vector<size_t> &Sites, uint64_t) {
    for (size_t I : Sites)
      S.Val[I] = S.Ctx[I];
  };
  CB.Edges = [] {
    return std::vector<std::pair<size_t, size_t>>{{0, 1}, {1, 0}};
  };
  obs::MetricsRegistry Metrics;
  FixpointConfig C;
  C.Metrics = &Metrics;
  FixpointDriver D(C);
  mix::rt::ThreadPool Pool(2);
  D.runWorklist(CB, Pool);
  EXPECT_EQ(S.Val[0], 5);
  EXPECT_EQ(S.Val[1], 5);
  EXPECT_GT(Metrics.counterValue("engine.worklist.reruns"), 0u);
  EXPECT_GT(Metrics.counterValue("engine.fixpoint.rounds"), 0u);
}

TEST(FixpointDriverTest, WorklistValidationSweepCoversMissingEdges) {
  // Deliberately under-approximated edges (none at all): the SCC phase
  // runs every site independently, and the validation sweep must still
  // drive the chain to its least fixpoint.
  ChainSystem S(5, 9);
  FixpointCallbacks CB = S.callbacks();
  CB.Edges = nullptr;
  FixpointDriver D((FixpointConfig()));
  mix::rt::ThreadPool Pool(4);
  D.runWorklist(CB, Pool);
  for (int V : S.Val)
    EXPECT_EQ(V, 9);
}

TEST(FixpointDriverTest, WorklistPropagatesTaskExceptions) {
  FixpointCallbacks CB;
  CB.NumSites = [] { return (size_t)2; };
  CB.Refresh = [](size_t) { return true; };
  CB.EvaluateWave = [](const std::vector<size_t> &, uint64_t) {
    throw std::runtime_error("boom");
  };
  FixpointDriver D((FixpointConfig()));
  mix::rt::ThreadPool Pool(2);
  EXPECT_THROW(D.runWorklist(CB, Pool), std::runtime_error);
}

TEST(FixpointDriverTest, SerialPicksUpSitesAppendedMidRound) {
  // A site evaluation that discovers a new site (MIXY: a nested block
  // hitting a new frontier call) must see it analyzed before the driver
  // declares a fixpoint.
  std::vector<int> Ctx(1, -1), Val(1, 0);
  bool Appended = false;
  FixpointCallbacks CB;
  CB.NumSites = [&] { return Ctx.size(); };
  CB.Refresh = [&](size_t I) {
    int New = I == 0 ? 1 : Val[0];
    if (New == Ctx[I])
      return false;
    Ctx[I] = New;
    return true;
  };
  CB.EvaluateWave = [&](const std::vector<size_t> &Sites, uint64_t) {
    for (size_t I : Sites) {
      Val[I] = Ctx[I];
      if (I == 0 && !Appended) {
        Appended = true;
        Ctx.push_back(-1);
        Val.push_back(0);
      }
    }
  };
  FixpointDriver D((FixpointConfig()));
  D.runSerial(CB);
  ASSERT_EQ(Val.size(), 2u);
  EXPECT_EQ(Val[1], 1);
}
