//===--- PersistTest.cpp - Tests for the persistent cache layer -----------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// Covers src/persist/: the checksummed record-file container (round-trip
// plus every corruption mode in the failure contract), the three stores,
// and PersistSession's cold/warm/degraded lifecycle including concurrent
// writers sharing a cache directory.
//
//===----------------------------------------------------------------------===//

#include "persist/PersistSession.h"
#include "persist/RecordFile.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace mix;
using namespace mix::persist;

namespace {

/// A fresh, empty directory per test; removed on destruction so ctest -j
/// runs never share state.
class TempDir {
public:
  explicit TempDir(const std::string &Name)
      : Path(::testing::TempDir() + "mix_persist_" + Name) {
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~TempDir() { std::filesystem::remove_all(Path); }
  std::string file(const std::string &Name) const { return Path + "/" + Name; }
  const std::string Path;
};

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(In)),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out << Bytes;
}

//===----------------------------------------------------------------------===//
// ByteWriter / ByteReader
//===----------------------------------------------------------------------===//

TEST(ByteCodecTest, RoundTrip) {
  ByteWriter W;
  W.u8(7).u16(300).u32(70000).u64(1ull << 40).boolean(true).str("hello");
  ByteReader R(W.bytes());
  EXPECT_EQ(R.u8(), 7u);
  EXPECT_EQ(R.u16(), 300u);
  EXPECT_EQ(R.u32(), 70000u);
  EXPECT_EQ(R.u64(), 1ull << 40);
  EXPECT_TRUE(R.boolean());
  EXPECT_EQ(R.str(), "hello");
  EXPECT_TRUE(R.ok());
  EXPECT_TRUE(R.atEnd());
}

TEST(ByteCodecTest, ReadPastEndFailsSoftly) {
  std::string Short("\x01", 1);
  ByteReader R(Short);
  (void)R.u32();        // value is unspecified on a truncated read...
  EXPECT_FALSE(R.ok()); // ...but the sticky error flag must trip
  EXPECT_EQ(R.u64(), 0u); // past the end entirely: all zero bytes
}

TEST(ByteCodecTest, OversizedStringLengthFails) {
  ByteWriter W;
  W.u32(1000); // claims 1000 bytes, provides none
  ByteReader R(W.bytes());
  EXPECT_EQ(R.str(), "");
  EXPECT_FALSE(R.ok());
}

//===----------------------------------------------------------------------===//
// RecordFile: round-trip and the failure contract
//===----------------------------------------------------------------------===//

const uint64_t FP = 0x1234;

TEST(RecordFileTest, RoundTrip) {
  TempDir D("roundtrip");
  std::vector<std::string> In = {"alpha", std::string("\0\xff", 2), ""};
  std::string Error;
  ASSERT_TRUE(saveRecordFile(D.file("s.mixcache"), FP, In, Error)) << Error;

  std::vector<std::string> Out;
  EXPECT_EQ(loadRecordFile(D.file("s.mixcache"), FP, Out, Error),
            LoadStatus::Ok);
  EXPECT_EQ(Out, In);
}

TEST(RecordFileTest, MissingFileIsACleanColdStart) {
  TempDir D("missing");
  std::vector<std::string> Out;
  std::string Error;
  EXPECT_EQ(loadRecordFile(D.file("absent.mixcache"), FP, Out, Error),
            LoadStatus::Missing);
  EXPECT_TRUE(Out.empty());
}

TEST(RecordFileTest, FingerprintMismatchLoadsEmptyNotCorrupt) {
  // Changed analysis options are a normal event, not file damage.
  TempDir D("fingerprint");
  std::string Error;
  ASSERT_TRUE(saveRecordFile(D.file("s.mixcache"), FP, {"payload"}, Error));
  std::vector<std::string> Out;
  EXPECT_EQ(loadRecordFile(D.file("s.mixcache"), FP + 1, Out, Error),
            LoadStatus::Missing);
  EXPECT_TRUE(Out.empty());
}

TEST(RecordFileTest, TruncatedFileIsCorrupt) {
  TempDir D("truncated");
  std::string Error;
  ASSERT_TRUE(
      saveRecordFile(D.file("s.mixcache"), FP, {"some payload data"}, Error));
  std::string Bytes = slurp(D.file("s.mixcache"));
  ASSERT_GT(Bytes.size(), 4u);
  spit(D.file("s.mixcache"), Bytes.substr(0, Bytes.size() - 4));

  std::vector<std::string> Out;
  EXPECT_EQ(loadRecordFile(D.file("s.mixcache"), FP, Out, Error),
            LoadStatus::Corrupt);
  EXPECT_TRUE(Out.empty());
  EXPECT_FALSE(Error.empty());
}

TEST(RecordFileTest, FlippedChecksumByteIsCorrupt) {
  TempDir D("checksum");
  std::string Error;
  ASSERT_TRUE(saveRecordFile(D.file("s.mixcache"), FP, {"payload"}, Error));
  std::string Bytes = slurp(D.file("s.mixcache"));
  Bytes.back() ^= 0x40; // last byte lies inside the record checksum
  spit(D.file("s.mixcache"), Bytes);

  std::vector<std::string> Out;
  EXPECT_EQ(loadRecordFile(D.file("s.mixcache"), FP, Out, Error),
            LoadStatus::Corrupt);
  EXPECT_NE(Error.find("checksum"), std::string::npos) << Error;
}

TEST(RecordFileTest, FlippedPayloadByteIsCorrupt) {
  TempDir D("payload");
  std::string Error;
  ASSERT_TRUE(
      saveRecordFile(D.file("s.mixcache"), FP, {"payload bytes"}, Error));
  std::string Bytes = slurp(D.file("s.mixcache"));
  // 8 magic + 4 version + 8 fingerprint + 4 length: first payload byte.
  Bytes[24] ^= 0x01;
  spit(D.file("s.mixcache"), Bytes);

  std::vector<std::string> Out;
  EXPECT_EQ(loadRecordFile(D.file("s.mixcache"), FP, Out, Error),
            LoadStatus::Corrupt);
}

TEST(RecordFileTest, BadMagicIsCorrupt) {
  TempDir D("magic");
  spit(D.file("s.mixcache"), "NOTMYFMT with trailing bytes beyond header");
  std::vector<std::string> Out;
  std::string Error;
  EXPECT_EQ(loadRecordFile(D.file("s.mixcache"), FP, Out, Error),
            LoadStatus::Corrupt);
  EXPECT_NE(Error.find("magic"), std::string::npos) << Error;
}

TEST(RecordFileTest, VersionSkewIsCorrupt) {
  TempDir D("version");
  ByteWriter Rest;
  Rest.u32(FormatVersion + 1).u64(FP);
  spit(D.file("s.mixcache"), "MIXPERST" + Rest.take());

  std::vector<std::string> Out;
  std::string Error;
  EXPECT_EQ(loadRecordFile(D.file("s.mixcache"), FP, Out, Error),
            LoadStatus::Corrupt);
  EXPECT_NE(Error.find("version"), std::string::npos) << Error;
}

TEST(RecordFileTest, ConcurrentWritersNeverTearTheFile) {
  // Two writers race on the same path; rename() publication means any
  // subsequent load sees one writer's complete file, never a mix.
  TempDir D("race");
  const std::string Path = D.file("s.mixcache");
  auto Writer = [&](const std::string &Payload) {
    for (int I = 0; I != 50; ++I) {
      std::string Error;
      ASSERT_TRUE(saveRecordFile(Path, FP, {Payload}, Error)) << Error;
    }
  };
  std::thread A(Writer, std::string(100, 'a'));
  std::thread B(Writer, std::string(2000, 'b'));
  A.join();
  B.join();

  std::vector<std::string> Out;
  std::string Error;
  ASSERT_EQ(loadRecordFile(Path, FP, Out, Error), LoadStatus::Ok) << Error;
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_TRUE(Out[0] == std::string(100, 'a') ||
              Out[0] == std::string(2000, 'b'));
}

//===----------------------------------------------------------------------===//
// Stores
//===----------------------------------------------------------------------===//

TEST(SolverQueryStoreTest, StoreLookupEncodeDecode) {
  SolverQueryStore S(nullptr);
  S.store(1, smt::SolveResult::Sat);
  S.store(2, smt::SolveResult::Unsat);
  S.store(3, smt::SolveResult::Unknown); // never persisted: not a verdict
  EXPECT_EQ(S.size(), 2u);

  smt::SolveResult R;
  ASSERT_TRUE(S.lookup(1, R));
  EXPECT_EQ(R, smt::SolveResult::Sat);
  ASSERT_TRUE(S.lookup(2, R));
  EXPECT_EQ(R, smt::SolveResult::Unsat);
  EXPECT_FALSE(S.lookup(3, R));

  SolverQueryStore S2(nullptr);
  ASSERT_TRUE(S2.decode(S.encode()));
  EXPECT_EQ(S2.size(), 2u);
  ASSERT_TRUE(S2.lookup(1, R));
  EXPECT_EQ(R, smt::SolveResult::Sat);
}

TEST(SolverQueryStoreTest, MalformedRecordRejected) {
  SolverQueryStore S(nullptr);
  EXPECT_FALSE(S.decode({std::string("zz")}));
  EXPECT_EQ(S.size(), 0u);
}

TEST(BlockSummaryStoreTest, OpaquePayloadRoundTrip) {
  BlockSummaryStore B(nullptr);
  EXPECT_FALSE(B.lookup(9).has_value());
  B.store(9, std::string("\x01payload\x00", 9));
  auto Hit = B.lookup(9);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(*Hit, std::string("\x01payload\x00", 9));

  BlockSummaryStore B2(nullptr);
  ASSERT_TRUE(B2.decode(B.encode()));
  EXPECT_EQ(B2.size(), 1u);
  EXPECT_TRUE(B2.lookup(9).has_value());
}

TEST(ManifestTest, RoundTrip) {
  Manifest M;
  M.Funcs["f"] = {11, 21};
  M.Funcs["g"] = {12, 22};
  Manifest M2;
  ASSERT_TRUE(M2.decode(M.encode()));
  ASSERT_EQ(M2.Funcs.size(), 2u);
  EXPECT_EQ(M2.Funcs["f"].ContentHash, 11u);
  EXPECT_EQ(M2.Funcs["g"].ClosureHash, 22u);
}

//===----------------------------------------------------------------------===//
// PersistSession lifecycle
//===----------------------------------------------------------------------===//

PersistOptions sessionOpts(const std::string &Dir, bool Incremental = true) {
  PersistOptions PO;
  PO.Dir = Dir;
  PO.Incremental = Incremental;
  PO.BlockFingerprint = 42;
  return PO;
}

TEST(PersistSessionTest, ColdThenWarm) {
  TempDir D("session");
  {
    PersistSession S(sessionOpts(D.Path));
    EXPECT_TRUE(S.degradedReason().empty());
    EXPECT_TRUE(S.previousManifest().Funcs.empty());
    S.solverCache().store(5, smt::SolveResult::Unsat);
    S.blocks().store(7, "summary");
    Manifest M;
    M.Funcs["main"] = {1, 2};
    S.setCurrentManifest(std::move(M));
    std::string Error;
    ASSERT_TRUE(S.save(&Error)) << Error;
  }
  PersistSession Warm(sessionOpts(D.Path));
  EXPECT_TRUE(Warm.degradedReason().empty());
  smt::SolveResult R;
  ASSERT_TRUE(Warm.solverCache().lookup(5, R));
  EXPECT_EQ(R, smt::SolveResult::Unsat);
  EXPECT_TRUE(Warm.blocks().lookup(7).has_value());
  EXPECT_EQ(Warm.previousManifest().Funcs.at("main").ClosureHash, 2u);
}

TEST(PersistSessionTest, BlockFingerprintChangeLoadsColdSilently) {
  TempDir D("refp");
  {
    PersistSession S(sessionOpts(D.Path));
    S.blocks().store(7, "summary");
    ASSERT_TRUE(S.save());
  }
  PersistOptions PO = sessionOpts(D.Path);
  PO.BlockFingerprint = 43; // analysis options changed
  PersistSession S(PO);
  EXPECT_TRUE(S.degradedReason().empty()); // not an anomaly
  EXPECT_FALSE(S.blocks().lookup(7).has_value());
}

TEST(PersistSessionTest, CorruptStoreDegradesButSessionWorks) {
  TempDir D("degraded");
  {
    PersistSession S(sessionOpts(D.Path));
    S.solverCache().store(5, smt::SolveResult::Sat);
    ASSERT_TRUE(S.save());
  }
  std::string Bytes = slurp(D.file("solver.mixcache"));
  Bytes.back() ^= 0x01;
  spit(D.file("solver.mixcache"), Bytes);

  obs::MetricsRegistry Reg;
  PersistOptions PO = sessionOpts(D.Path);
  PO.Metrics = &Reg;
  PersistSession S(PO);
  EXPECT_FALSE(S.degradedReason().empty());
  EXPECT_EQ(Reg.counterValue("persist.degraded"), 1u);
  // Cold but functional: stores work and a save repairs the directory.
  smt::SolveResult R;
  EXPECT_FALSE(S.solverCache().lookup(5, R));
  S.solverCache().store(6, smt::SolveResult::Sat);
  ASSERT_TRUE(S.save());
  PersistSession S2(sessionOpts(D.Path));
  EXPECT_TRUE(S2.degradedReason().empty());
  EXPECT_TRUE(S2.solverCache().lookup(6, R));
}

TEST(PersistSessionTest, UnusableDirectoryDegrades) {
  TempDir D("blocked");
  spit(D.file("not_a_dir"), "file"); // a file where the dir should be
  PersistSession S(sessionOpts(D.file("not_a_dir") + "/cache"));
  EXPECT_FALSE(S.degradedReason().empty());
  EXPECT_FALSE(S.save()); // nothing to write into
}

TEST(PersistSessionTest, SolverStoreSharedAcrossFingerprints) {
  // Sat/Unsat verdicts are option-independent, so the solver store loads
  // under any block fingerprint.
  TempDir D("solvershared");
  {
    PersistSession S(sessionOpts(D.Path));
    S.solverCache().store(5, smt::SolveResult::Sat);
    ASSERT_TRUE(S.save());
  }
  PersistOptions PO = sessionOpts(D.Path);
  PO.BlockFingerprint = 99;
  PersistSession S(PO);
  smt::SolveResult R;
  EXPECT_TRUE(S.solverCache().lookup(5, R));
}

TEST(PersistSessionTest, GenerationStampLifecycle) {
  TempDir D("generation");
  PersistSession A(sessionOpts(D.Path));
  EXPECT_EQ(A.generation(), 0u); // cold start: no stamp on disk
  EXPECT_FALSE(A.externallyModified());

  ASSERT_TRUE(A.save());
  EXPECT_EQ(A.generation(), 1u);
  // Our own save is not an external modification.
  EXPECT_FALSE(A.externallyModified());

  PersistSession B(sessionOpts(D.Path));
  EXPECT_EQ(B.generation(), 1u); // loads what A published
  ASSERT_TRUE(B.save());
  EXPECT_EQ(B.generation(), 2u);
}

TEST(PersistSessionTest, ReopenInProcessAfterExternalWriter) {
  // The daemon scenario: a long-lived session must notice that another
  // writer published into its cache directory, and a reopened session
  // (what AnalysisService does on externallyModified) sees the new data
  // instead of replaying the stale manifest.
  TempDir D("reopen");
  PersistSession A(sessionOpts(D.Path));
  A.blocks().store(7, "from A");
  Manifest MA;
  MA.Funcs["f"] = {1, 1};
  A.setCurrentManifest(std::move(MA));
  ASSERT_TRUE(A.save());
  EXPECT_FALSE(A.externallyModified());

  {
    // A second writer (another process, modeled in-process) publishes.
    PersistSession B(sessionOpts(D.Path));
    B.blocks().store(8, "from B");
    Manifest MB;
    MB.Funcs["g"] = {2, 2};
    B.setCurrentManifest(std::move(MB));
    ASSERT_TRUE(B.save());
  }

  // A's loaded state is now stale and it must say so.
  EXPECT_TRUE(A.externallyModified());

  // Reopening the directory observes the latest generation and data.
  PersistSession C(sessionOpts(D.Path));
  EXPECT_EQ(C.generation(), 2u);
  EXPECT_FALSE(C.externallyModified());
  EXPECT_TRUE(C.blocks().lookup(8).has_value());
  EXPECT_EQ(C.previousManifest().Funcs.count("g"), 1u);
}

TEST(PersistSessionTest, StampIsWrittenLast) {
  // The generation stamp publishes after the data files, so a reader
  // that observes the new generation also observes the new data: after
  // any successful save, the stamp on disk equals the session's
  // generation and every data file is in place.
  TempDir D("stamplast");
  PersistSession S(sessionOpts(D.Path));
  S.blocks().store(1, "payload");
  ASSERT_TRUE(S.save());
  EXPECT_TRUE(std::filesystem::exists(D.file("generation.mixcache")));
  EXPECT_TRUE(std::filesystem::exists(D.file("blocks.mixcache")));
  // A fresh reader agrees on the generation and finds the data.
  PersistSession R(sessionOpts(D.Path));
  EXPECT_EQ(R.generation(), S.generation());
  EXPECT_TRUE(R.blocks().lookup(1).has_value());
}

TEST(PersistSessionTest, InvalidateSummariesClearsButKeepsSolver) {
  obs::MetricsRegistry Reg;
  TempDir D("invalidate");
  PersistOptions PO = sessionOpts(D.Path);
  PO.Metrics = &Reg;
  PersistSession S(PO);
  S.solverCache().store(5, smt::SolveResult::Unsat);
  S.blocks().store(7, "summary");
  Manifest M;
  M.Funcs["main"] = {1, 2};
  S.setCurrentManifest(std::move(M));

  S.invalidateSummaries();
  EXPECT_EQ(Reg.counterValue("persist.invalidations"), 1u);
  EXPECT_FALSE(S.blocks().lookup(7).has_value());
  EXPECT_TRUE(S.previousManifest().Funcs.empty());
  // Solver verdicts are formula-keyed: they can never go stale when a
  // source file changes, so they survive the invalidation.
  smt::SolveResult R;
  EXPECT_TRUE(S.solverCache().lookup(5, R));
  EXPECT_EQ(R, smt::SolveResult::Unsat);
}

TEST(PersistSessionTest, InMemorySessionNeverTouchesDisk) {
  TempDir D("inmemory");
  PersistOptions PO = sessionOpts(D.Path);
  PO.InMemory = true;
  PersistSession S(PO);
  EXPECT_TRUE(S.degradedReason().empty());
  S.blocks().store(7, "summary");
  S.solverCache().store(5, smt::SolveResult::Sat);
  ASSERT_TRUE(S.save()); // a successful no-op
  EXPECT_FALSE(S.externallyModified());
  // The warm state *is* the store; nothing was published to disk.
  EXPECT_TRUE(std::filesystem::is_empty(D.Path));
  EXPECT_TRUE(S.blocks().lookup(7).has_value());
}

TEST(PersistSessionTest, MetricsCounters) {
  obs::MetricsRegistry Reg;
  TempDir D("metrics");
  PersistOptions PO = sessionOpts(D.Path);
  PO.Metrics = &Reg;
  PersistSession S(PO);
  smt::SolveResult R;
  S.solverCache().lookup(1, R);
  S.solverCache().store(1, smt::SolveResult::Sat);
  S.solverCache().lookup(1, R);
  S.blocks().lookup(2);
  S.blocks().store(2, "p");
  S.blocks().lookup(2);
  EXPECT_EQ(Reg.counterValue("persist.solver.misses"), 1u);
  EXPECT_EQ(Reg.counterValue("persist.solver.hits"), 1u);
  EXPECT_EQ(Reg.counterValue("persist.solver.stores"), 1u);
  EXPECT_EQ(Reg.counterValue("persist.block.misses"), 1u);
  EXPECT_EQ(Reg.counterValue("persist.block.hits"), 1u);
  EXPECT_EQ(Reg.counterValue("persist.block.stores"), 1u);
}

} // namespace
