//===--- LinearArithTest.cpp - Tests for the LIA theory solver ------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "solver/LinearArith.h"

#include <gtest/gtest.h>

#include <random>

using namespace mix::smt;

namespace {

LinConstraint con(std::map<unsigned, long long> Coeffs, LinRel Rel,
                  long long Rhs) {
  LinConstraint C;
  C.Coeffs = std::move(Coeffs);
  C.Rel = Rel;
  C.Rhs = Rhs;
  return C;
}

/// Brute-force satisfiability over a small integer box, for cross-checking.
/// Variables range over [-Radius, Radius].
bool bruteForceSat(unsigned NumVars, const std::vector<LinConstraint> &Cs,
                   long long Radius) {
  std::vector<long long> Vals(NumVars, -Radius);
  for (;;) {
    bool AllHold = true;
    for (const LinConstraint &C : Cs) {
      long long Lhs = 0;
      for (const auto &[V, Coeff] : C.Coeffs)
        Lhs += Coeff * Vals[V];
      bool Holds = false;
      switch (C.Rel) {
      case LinRel::Eq:
        Holds = Lhs == C.Rhs;
        break;
      case LinRel::Le:
        Holds = Lhs <= C.Rhs;
        break;
      case LinRel::Ne:
        Holds = Lhs != C.Rhs;
        break;
      }
      if (!Holds) {
        AllHold = false;
        break;
      }
    }
    if (AllHold)
      return true;
    // Advance odometer.
    unsigned I = 0;
    for (; I != NumVars; ++I) {
      if (Vals[I] < Radius) {
        ++Vals[I];
        break;
      }
      Vals[I] = -Radius;
    }
    if (I == NumVars)
      return false;
  }
}

} // namespace

TEST(LiaTest, EmptyConjunctionIsSat) {
  EXPECT_EQ(checkLinearConjunction({}).Verdict, LiaVerdict::Sat);
}

TEST(LiaTest, ConstantConstraints) {
  EXPECT_EQ(checkLinearConjunction({con({}, LinRel::Le, 0)}).Verdict,
            LiaVerdict::Sat);
  EXPECT_EQ(checkLinearConjunction({con({}, LinRel::Le, -1)}).Verdict,
            LiaVerdict::Unsat);
  EXPECT_EQ(checkLinearConjunction({con({}, LinRel::Eq, 0)}).Verdict,
            LiaVerdict::Sat);
  EXPECT_EQ(checkLinearConjunction({con({}, LinRel::Ne, 0)}).Verdict,
            LiaVerdict::Unsat);
  EXPECT_EQ(checkLinearConjunction({con({}, LinRel::Ne, 7)}).Verdict,
            LiaVerdict::Sat);
}

TEST(LiaTest, SimpleBounds) {
  // x <= 3 and -x <= -5 (i.e. x >= 5): unsat.
  auto R = checkLinearConjunction(
      {con({{0, 1}}, LinRel::Le, 3), con({{0, -1}}, LinRel::Le, -5)});
  EXPECT_EQ(R.Verdict, LiaVerdict::Unsat);
  ASSERT_EQ(R.Core.size(), 2u);
}

TEST(LiaTest, TouchingBoundsAreSat) {
  // x <= 3 and x >= 3: sat (x = 3).
  auto R = checkLinearConjunction(
      {con({{0, 1}}, LinRel::Le, 3), con({{0, -1}}, LinRel::Le, -3)});
  EXPECT_EQ(R.Verdict, LiaVerdict::Sat);
}

TEST(LiaTest, EqualitySubstitution) {
  // x = y + 1, y = 4, x <= 4: unsat (x = 5).
  auto R = checkLinearConjunction({con({{0, 1}, {1, -1}}, LinRel::Eq, 1),
                                   con({{1, 1}}, LinRel::Eq, 4),
                                   con({{0, 1}}, LinRel::Le, 4)});
  EXPECT_EQ(R.Verdict, LiaVerdict::Unsat);
}

TEST(LiaTest, GcdDivisibility) {
  // 2x = 1 has no integer solution (rationally sat!).
  auto R = checkLinearConjunction({con({{0, 2}}, LinRel::Eq, 1)});
  EXPECT_EQ(R.Verdict, LiaVerdict::Unsat);
}

TEST(LiaTest, IntegerTightening) {
  // 2x <= 5 and 2x >= 5 is rationally sat (x = 2.5) but integer-unsat;
  // tightening gives x <= 2 and x >= 3.
  auto R = checkLinearConjunction(
      {con({{0, 2}}, LinRel::Le, 5), con({{0, -2}}, LinRel::Le, -5)});
  EXPECT_EQ(R.Verdict, LiaVerdict::Unsat);
}

TEST(LiaTest, DisequalitySplitting) {
  // 0 <= x <= 1, x != 0, x != 1: unsat over integers.
  auto R = checkLinearConjunction(
      {con({{0, -1}}, LinRel::Le, 0), con({{0, 1}}, LinRel::Le, 1),
       con({{0, 1}}, LinRel::Ne, 0), con({{0, 1}}, LinRel::Ne, 1)});
  EXPECT_EQ(R.Verdict, LiaVerdict::Unsat);
}

TEST(LiaTest, DisequalitySatWhenRoomRemains) {
  // 0 <= x <= 2, x != 1: sat (x = 0 or 2).
  auto R = checkLinearConjunction({con({{0, -1}}, LinRel::Le, 0),
                                   con({{0, 1}}, LinRel::Le, 2),
                                   con({{0, 1}}, LinRel::Ne, 1)});
  EXPECT_EQ(R.Verdict, LiaVerdict::Sat);
}

TEST(LiaTest, TransitiveChainUnsat) {
  // x0 < x1 < x2 < x0 is unsat.
  auto R = checkLinearConjunction({con({{0, 1}, {1, -1}}, LinRel::Le, -1),
                                   con({{1, 1}, {2, -1}}, LinRel::Le, -1),
                                   con({{2, 1}, {0, -1}}, LinRel::Le, -1)});
  EXPECT_EQ(R.Verdict, LiaVerdict::Unsat);
}

TEST(LiaTest, CoreIsSubsetOfInputs) {
  // Irrelevant constraint (index 0) should not appear in the core.
  auto R = checkLinearConjunction({con({{5, 1}}, LinRel::Le, 100),
                                   con({{0, 1}}, LinRel::Le, 0),
                                   con({{0, -1}}, LinRel::Le, -1)});
  ASSERT_EQ(R.Verdict, LiaVerdict::Unsat);
  for (unsigned Idx : R.Core)
    EXPECT_NE(Idx, 0u) << "unrelated constraint in unsat core";
}

TEST(LiaTest, TwoVariableSystem) {
  // x + y <= 2, x >= 1, y >= 1: sat exactly at x = y = 1.
  auto R = checkLinearConjunction({con({{0, 1}, {1, 1}}, LinRel::Le, 2),
                                   con({{0, -1}}, LinRel::Le, -1),
                                   con({{1, -1}}, LinRel::Le, -1)});
  EXPECT_EQ(R.Verdict, LiaVerdict::Sat);
  // Tightening the sum by one makes it unsat.
  auto R2 = checkLinearConjunction({con({{0, 1}, {1, 1}}, LinRel::Le, 1),
                                    con({{0, -1}}, LinRel::Le, -1),
                                    con({{1, -1}}, LinRel::Le, -1)});
  EXPECT_EQ(R2.Verdict, LiaVerdict::Unsat);
}

/// Randomized cross-check against brute force. Coefficients and bounds are
/// kept small so the brute-force box argument below is conclusive for
/// unsatisfiability claims; for Sat claims brute force within the box is a
/// witness. (Our solver may answer Sat for instances whose integer
/// solutions lie outside the box; those rounds are skipped.)
class LiaRandomTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(LiaRandomTest, NeverContradictsBruteForceWitness) {
  std::mt19937 Rng(GetParam());
  for (int Round = 0; Round != 60; ++Round) {
    unsigned NumVars = 1 + Rng() % 3;
    unsigned NumCons = 1 + Rng() % 5;
    std::vector<LinConstraint> Cs;
    for (unsigned I = 0; I != NumCons; ++I) {
      LinConstraint C;
      for (unsigned V = 0; V != NumVars; ++V) {
        long long Coeff = (long long)(Rng() % 5) - 2; // -2..2
        if (Coeff != 0)
          C.Coeffs[V] = Coeff;
      }
      unsigned RelPick = Rng() % 4;
      C.Rel = RelPick == 0   ? LinRel::Eq
              : RelPick == 1 ? LinRel::Ne
                             : LinRel::Le;
      C.Rhs = (long long)(Rng() % 9) - 4; // -4..4
      Cs.push_back(std::move(C));
    }
    bool WitnessInBox = bruteForceSat(NumVars, Cs, /*Radius=*/8);
    LiaResult R = checkLinearConjunction(Cs);
    if (WitnessInBox) {
      // A concrete solution exists; the solver must not claim Unsat.
      EXPECT_NE(R.Verdict, LiaVerdict::Unsat)
          << "solver refuted a satisfiable system (seed " << GetParam()
          << " round " << Round << ")";
    }
    // With coefficients in [-2,2] and bounds in [-4,4], satisfiable
    // systems in this parameter range have small solutions; a Sat answer
    // should come with a witness in a slightly larger box.
    if (R.Verdict == LiaVerdict::Sat && !WitnessInBox) {
      EXPECT_TRUE(bruteForceSat(NumVars, Cs, /*Radius=*/40))
          << "solver claimed Sat but no small witness exists (seed "
          << GetParam() << " round " << Round << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LiaRandomTest,
                         ::testing::Values(7u, 11u, 19u, 23u, 42u, 77u));
