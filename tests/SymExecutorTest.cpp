//===--- SymExecutorTest.cpp - Tests for the symbolic executor ------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "symexec/SymExecutor.h"

#include <gtest/gtest.h>

using namespace mix;

namespace {

class SymExecTest : public ::testing::Test {
protected:
  SymExecTest() : A(Ctx.types()) {}

  const Expr *parse(std::string_view Source) {
    const Expr *E = parseExpression(Source, Ctx, Diags);
    EXPECT_NE(E, nullptr) << Diags.str();
    return E;
  }

  /// Runs with the given free variables as fresh symbolic inputs.
  SymExecResult run(std::string_view Source,
                    const std::vector<std::pair<std::string, const Type *>>
                        &Inputs = {},
                    SymExecOptions Opts = SymExecOptions()) {
    SymExecutor Exec(A, Diags, Opts);
    SymEnv Env;
    for (const auto &[Name, Ty] : Inputs)
      Env[Name] = A.freshVar(Ty, false, Name);
    const Expr *E = parse(Source);
    if (!E)
      return SymExecResult();
    return Exec.run(E, Env);
  }

  AstContext Ctx;
  DiagnosticEngine Diags;
  SymArena A;
};

} // namespace

TEST_F(SymExecTest, LiteralsEvaluateToConstants) {
  SymExecResult R = run("42");
  ASSERT_EQ(R.Paths.size(), 1u);
  EXPECT_FALSE(R.Paths[0].IsError);
  EXPECT_EQ(R.Paths[0].Value, A.intConst(42));
  EXPECT_EQ(R.Paths[0].State.Path, A.trueGuard());
}

TEST_F(SymExecTest, ArithmeticOnConstantsFolds) {
  SymExecResult R = run("1 + 2 - 4");
  ASSERT_EQ(R.Paths.size(), 1u);
  EXPECT_EQ(R.Paths[0].Value, A.intConst(-1));
}

TEST_F(SymExecTest, SymbolicInputsStaySymbolic) {
  SymExecResult R = run("x + 1", {{"x", Ctx.types().intType()}});
  ASSERT_EQ(R.Paths.size(), 1u);
  EXPECT_EQ(R.Paths[0].Value->kind(), SymKind::Add);
  EXPECT_TRUE(R.Paths[0].Value->type()->isInt());
}

TEST_F(SymExecTest, UnboundVariableIsAnError) {
  SymExecResult R = run("y");
  ASSERT_EQ(R.Paths.size(), 1u);
  EXPECT_TRUE(R.Paths[0].IsError);
}

TEST_F(SymExecTest, DynamicTypeErrorOnPath) {
  // SEPlus requires int operands; `true + 1` fails the path.
  SymExecResult R = run("true + 1");
  ASSERT_EQ(R.Paths.size(), 1u);
  EXPECT_TRUE(R.Paths[0].IsError);
}

TEST_F(SymExecTest, ForkingExploresBothBranches) {
  SymExecResult R = run("if b then 1 else 2", {{"b", Ctx.types().boolType()}});
  ASSERT_EQ(R.Paths.size(), 2u);
  EXPECT_FALSE(R.Paths[0].IsError);
  EXPECT_FALSE(R.Paths[1].IsError);
  EXPECT_EQ(R.Paths[0].Value, A.intConst(1));
  EXPECT_EQ(R.Paths[1].Value, A.intConst(2));
  // Path conditions are the guard and its negation.
  EXPECT_NE(R.Paths[0].State.Path, R.Paths[1].State.Path);
}

TEST_F(SymExecTest, ConstantConditionTakesOneBranch) {
  // The unreachable-code idiom of Section 2: the false branch, which
  // would be a type error, is never executed.
  SymExecResult R = run("if true then 5 else (1 + true)");
  ASSERT_EQ(R.Paths.size(), 1u);
  EXPECT_FALSE(R.Paths[0].IsError);
  EXPECT_EQ(R.Paths[0].Value, A.intConst(5));
}

TEST_F(SymExecTest, NestedConditionalsGrowPathsMultiplicatively) {
  SymExecResult R = run("if a then (if b then 1 else 2) else "
                        "(if b then 3 else 4)",
                        {{"a", Ctx.types().boolType()},
                         {"b", Ctx.types().boolType()}});
  EXPECT_EQ(R.Paths.size(), 4u);
}

TEST_F(SymExecTest, TypeErrorOnOneBranchOnly) {
  SymExecResult R =
      run("if b then 1 + true else 2", {{"b", Ctx.types().boolType()}});
  ASSERT_EQ(R.Paths.size(), 2u);
  EXPECT_TRUE(R.Paths[0].IsError);
  EXPECT_FALSE(R.Paths[1].IsError);
}

TEST_F(SymExecTest, FlowSensitiveVariableReuseThroughMemory) {
  // Section 2's flow-sensitivity example: a cell written with a
  // wrong-typed value and then re-written correctly; the read sees the
  // newest write. (The ill-typed intermediate is policed by |- m ok only
  // at reads/blocks, and the final state is consistent again.)
  SymExecResult R = run("let x = ref 1 in (x := 2; !x)");
  ASSERT_EQ(R.Paths.size(), 1u);
  ASSERT_FALSE(R.Paths[0].IsError);
  EXPECT_EQ(R.Paths[0].Value, A.intConst(2));
}

TEST_F(SymExecTest, DerefAfterIllTypedWriteFails) {
  // Reading while memory is inconsistent violates SEDeref's |- m ok.
  SymExecResult R = run("let x = ref 1 in (x := true; !x)");
  ASSERT_EQ(R.Paths.size(), 1u);
  EXPECT_TRUE(R.Paths[0].IsError);
}

TEST_F(SymExecTest, DerefAfterCorrectingWriteSucceeds) {
  SymExecResult R = run("let x = ref 1 in (x := true; x := 2; !x)");
  ASSERT_EQ(R.Paths.size(), 1u);
  ASSERT_FALSE(R.Paths[0].IsError);
  EXPECT_EQ(R.Paths[0].Value, A.intConst(2));
}

TEST_F(SymExecTest, AllocationsAreLogged) {
  SymExecResult R = run("ref 7");
  ASSERT_EQ(R.Paths.size(), 1u);
  const PathResult &P = R.Paths[0];
  ASSERT_FALSE(P.IsError);
  EXPECT_TRUE(P.Value->type()->isRef());
  EXPECT_TRUE(A.isAllocAddress(P.Value));
  ASSERT_EQ(P.State.Mem->kind(), MemKind::Alloc);
  EXPECT_EQ(P.State.Mem->value(), A.intConst(7));
}

TEST_F(SymExecTest, SymbolicPointerReadsAreDeferred) {
  SymExecResult R = run("!p", {{"p", Ctx.types().refType(
                                         Ctx.types().intType())}});
  ASSERT_EQ(R.Paths.size(), 1u);
  ASSERT_FALSE(R.Paths[0].IsError);
  EXPECT_EQ(R.Paths[0].Value->kind(), SymKind::Select);
  EXPECT_TRUE(R.Paths[0].Value->type()->isInt());
}

TEST_F(SymExecTest, WriteThroughSymbolicPointerThenReadOtherCell) {
  // A write through an unknown pointer may alias anything from the base
  // memory; a subsequent read stays deferred but is not an error (the
  // write was well-typed).
  SymExecResult R = run("(p := 3; !q)",
                        {{"p", Ctx.types().refType(Ctx.types().intType())},
                         {"q", Ctx.types().refType(Ctx.types().intType())}});
  ASSERT_EQ(R.Paths.size(), 1u);
  ASSERT_FALSE(R.Paths[0].IsError);
  EXPECT_EQ(R.Paths[0].Value->kind(), SymKind::Select);
}

TEST_F(SymExecTest, FunctionsApplyByExecution) {
  SymExecResult R = run("let inc = fun (x: int) : int -> x + 1 in inc 41");
  ASSERT_EQ(R.Paths.size(), 1u);
  ASSERT_FALSE(R.Paths[0].IsError);
  EXPECT_EQ(R.Paths[0].Value, A.intConst(42));
}

TEST_F(SymExecTest, ContextSensitivityThroughExecution) {
  // The paper's div example shape: the error branch is infeasible for
  // this call, which only execution (not monomorphic typing) can see.
  SymExecResult R = run("let div = fun (y: int) : int -> "
                        "if y = 0 then true + 1 else 7 in div 4");
  ASSERT_EQ(R.Paths.size(), 1u);
  EXPECT_FALSE(R.Paths[0].IsError);
  EXPECT_EQ(R.Paths[0].Value, A.intConst(7));
}

TEST_F(SymExecTest, SymbolicFunctionValueCannotBeApplied) {
  // The Otter function-pointer limitation (Section 4.5, Case 4).
  SymExecResult R =
      run("f 1", {{"f", Ctx.types().funType(Ctx.types().intType(),
                                            Ctx.types().intType())}});
  ASSERT_EQ(R.Paths.size(), 1u);
  EXPECT_TRUE(R.Paths[0].IsError);
}

TEST_F(SymExecTest, SymbolicBlockInsideSymbolicPassesThrough) {
  SymExecResult R = run("{s 1 + 2 s}");
  ASSERT_EQ(R.Paths.size(), 1u);
  EXPECT_EQ(R.Paths[0].Value, A.intConst(3));
}

TEST_F(SymExecTest, TypedBlockWithoutOracleIsError) {
  SymExecResult R = run("{t 1 t}");
  ASSERT_EQ(R.Paths.size(), 1u);
  EXPECT_TRUE(R.Paths[0].IsError);
}

namespace {

/// An oracle that types every block as int, for testing SETypBlock's
/// state handling without the full mix driver.
class IntOracle : public TypedBlockOracle {
public:
  explicit IntOracle(const Type *IntTy) : IntTy(IntTy) {}
  const Type *typeOfTypedBlock(const BlockExpr *, const SymEnv &,
                               const SymState &) override {
    ++Calls;
    return IntTy;
  }
  const Type *IntTy;
  unsigned Calls = 0;
};

} // namespace

TEST_F(SymExecTest, TypedBlockHavocsMemoryAndYieldsFreshVariable) {
  IntOracle Oracle(Ctx.types().intType());
  SymExecutor Exec(A, Diags);
  Exec.setTypedBlockOracle(&Oracle);
  const Expr *E = parse("let x = ref 1 in ({t 0 t}; !x)");
  ASSERT_NE(E, nullptr);
  SymExecResult R = Exec.run(E, {});
  ASSERT_EQ(R.Paths.size(), 1u);
  ASSERT_FALSE(R.Paths[0].IsError);
  EXPECT_EQ(Oracle.Calls, 1u);
  // The read after the block must be deferred: the typed block havocked
  // memory, so !x is a select from the fresh mu', not intConst(1).
  EXPECT_EQ(R.Paths[0].Value->kind(), SymKind::Select);
}

TEST_F(SymExecTest, TypedBlockEntryRequiresConsistentMemory) {
  IntOracle Oracle(Ctx.types().intType());
  SymExecutor Exec(A, Diags);
  Exec.setTypedBlockOracle(&Oracle);
  const Expr *E = parse("let x = ref 1 in (x := true; {t 0 t})");
  ASSERT_NE(E, nullptr);
  SymExecResult R = Exec.run(E, {});
  ASSERT_EQ(R.Paths.size(), 1u);
  EXPECT_TRUE(R.Paths[0].IsError);
  EXPECT_EQ(Oracle.Calls, 0u);
}

// --- SEIf-Defer ------------------------------------------------------------

TEST_F(SymExecTest, DeferMergesBranchesIntoConditionalValue) {
  SymExecOptions Opts;
  Opts.Strat = SymExecOptions::Strategy::Defer;
  SymExecResult R =
      run("if b then 1 else 2", {{"b", Ctx.types().boolType()}}, Opts);
  ASSERT_EQ(R.Paths.size(), 1u);
  ASSERT_FALSE(R.Paths[0].IsError);
  EXPECT_EQ(R.Paths[0].Value->kind(), SymKind::Ite);
  EXPECT_TRUE(R.Paths[0].Value->type()->isInt());
}

TEST_F(SymExecTest, DeferKeepsPathCountConstant) {
  SymExecOptions Opts;
  Opts.Strat = SymExecOptions::Strategy::Defer;
  SymExecResult R = run("if a then (if b then 1 else 2) else "
                        "(if b then 3 else 4)",
                        {{"a", Ctx.types().boolType()},
                         {"b", Ctx.types().boolType()}},
                        Opts);
  EXPECT_EQ(R.Paths.size(), 1u);
}

TEST_F(SymExecTest, DeferRequiresMatchingBranchTypes) {
  // SEIf-Defer is more conservative than forking: branches of different
  // types are an error even though each alone is fine.
  SymExecOptions Opts;
  Opts.Strat = SymExecOptions::Strategy::Defer;
  SymExecResult R =
      run("if b then 1 else true", {{"b", Ctx.types().boolType()}}, Opts);
  ASSERT_EQ(R.Paths.size(), 1u);
  EXPECT_TRUE(R.Paths[0].IsError);

  // Forking accepts it: each path returns its own type (the mix rule
  // will reject later if types must agree, but pure execution is fine).
  SymExecResult F = run("if b then 1 else true",
                        {{"b", Ctx.types().boolType()}});
  EXPECT_EQ(F.Paths.size(), 2u);
  EXPECT_FALSE(F.Paths[0].IsError);
  EXPECT_FALSE(F.Paths[1].IsError);
}

TEST_F(SymExecTest, DeferMergesMemory) {
  SymExecOptions Opts;
  Opts.Strat = SymExecOptions::Strategy::Defer;
  SymExecResult R = run("let x = ref 0 in "
                        "((if b then x := 1 else x := 2); !x)",
                        {{"b", Ctx.types().boolType()}}, Opts);
  ASSERT_EQ(R.Paths.size(), 1u);
  ASSERT_FALSE(R.Paths[0].IsError);
  // The read merges into a conditional over the two writes.
  EXPECT_EQ(R.Paths[0].Value->kind(), SymKind::Ite);
}

// --- resource limits --------------------------------------------------------

TEST_F(SymExecTest, PathBudgetTripsResourceFlag) {
  SymExecOptions Opts;
  Opts.MaxPaths = 3;
  SymExecResult R = run("if a then (if b then (if c then 1 else 2) else 3) "
                        "else (if b then 4 else (if c then 5 else 6))",
                        {{"a", Ctx.types().boolType()},
                         {"b", Ctx.types().boolType()},
                         {"c", Ctx.types().boolType()}},
                        Opts);
  EXPECT_TRUE(R.ResourceLimitHit);
}

TEST_F(SymExecTest, SequencingThreadsStateLeftToRight) {
  SymExecResult R = run("let x = ref 0 in (x := 1; x := !x + 1; !x)");
  ASSERT_EQ(R.Paths.size(), 1u);
  ASSERT_FALSE(R.Paths[0].IsError);
  EXPECT_EQ(R.Paths[0].Value, A.intConst(2));
}
