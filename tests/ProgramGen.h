//===--- ProgramGen.h - Random program generator for property tests --------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
// Shared by SoundnessTest (Theorem 1 property testing) and
// ParallelDeterminismTest (serial-vs-parallel agreement): a type-directed
// random generator of core-language expressions over a fixed Gamma, with
// typed/symbolic analysis blocks sprinkled in, plus a conforming concrete
// environment builder for the standard scope.
//
//===----------------------------------------------------------------------===//

#ifndef MIX_TESTS_PROGRAMGEN_H
#define MIX_TESTS_PROGRAMGEN_H

#include "concrete/Interp.h"
#include "lang/Ast.h"

#include <random>
#include <string>
#include <vector>

namespace mix::testgen {

/// Type-directed random program generator. Produces mostly well-typed
/// expressions over a fixed Gamma, with analysis blocks sprinkled in.
class ProgramGenerator {
public:
  ProgramGenerator(AstContext &Ctx, std::mt19937 &Rng, bool AllowBlocks,
                   bool AllowRefs = true, bool AllowCalls = true)
      : Ctx(Ctx), Rng(Rng), AllowBlocks(AllowBlocks), AllowRefs(AllowRefs),
        AllowCalls(AllowCalls) {}

  /// Variables available to the generated program.
  struct Scope {
    std::vector<std::string> IntVars;
    std::vector<std::string> BoolVars;
    std::vector<std::string> RefVars; // int ref
  };

  const Expr *genInt(const Scope &S, unsigned Depth) {
    return maybeBlock(genIntRaw(S, Depth));
  }

  const Expr *genBool(const Scope &S, unsigned Depth) {
    return maybeBlock(genBoolRaw(S, Depth));
  }

  bool usedTypedBlock() const { return UsedTypedBlock; }

private:
  const Expr *maybeBlock(const Expr *E) {
    if (!AllowBlocks || Rng() % 5 != 0)
      return E;
    if (Rng() % 2) {
      return Ctx.make<BlockExpr>(SourceLoc(), BlockKind::Symbolic, E);
    }
    UsedTypedBlock = true;
    return Ctx.make<BlockExpr>(SourceLoc(), BlockKind::Typed, E);
  }

  const Expr *genIntRaw(const Scope &S, unsigned Depth) {
    if (Depth == 0) {
      if (!S.IntVars.empty() && Rng() % 2)
        return Ctx.make<VarExpr>(SourceLoc(),
                                 S.IntVars[Rng() % S.IntVars.size()]);
      return Ctx.make<IntLitExpr>(SourceLoc(), (long long)(Rng() % 9) - 4);
    }
    // Occasionally build and immediately apply a function literal; the
    // literal itself may get wrapped in an analysis block by maybeBlock,
    // exercising closure escape across boundaries.
    if (AllowCalls && Rng() % 8 == 0) {
      std::string Param = freshName();
      Scope Inner = S;
      Inner.IntVars.push_back(Param);
      const Expr *Fn = maybeBlock(Ctx.make<FunExpr>(
          SourceLoc(), Param, Ctx.types().intType(), Ctx.types().intType(),
          genInt(Inner, Depth - 1)));
      return Ctx.make<AppExpr>(SourceLoc(), Fn, genInt(S, Depth - 1));
    }
    switch (Rng() % 8) {
    case 0:
    case 1:
      return Ctx.make<BinaryExpr>(SourceLoc(),
                                  Rng() % 2 ? BinaryOp::Add : BinaryOp::Sub,
                                  genInt(S, Depth - 1), genInt(S, Depth - 1));
    case 2:
      return Ctx.make<IfExpr>(SourceLoc(), genBool(S, Depth - 1),
                              genInt(S, Depth - 1), genInt(S, Depth - 1));
    case 3: {
      // let x = <int> in <int with x in scope>
      std::string Name = freshName();
      Scope Inner = S;
      Inner.IntVars.push_back(Name);
      return Ctx.make<LetExpr>(SourceLoc(), Name, nullptr,
                               genInt(S, Depth - 1), genInt(Inner, Depth - 1));
    }
    case 4: {
      if (!AllowRefs)
        return genIntRaw(S, Depth - 1);
      // let r = ref <int> in <int with r in scope>
      std::string Name = freshName();
      Scope Inner = S;
      Inner.RefVars.push_back(Name);
      const Expr *Init =
          Ctx.make<RefExpr>(SourceLoc(), genInt(S, Depth - 1));
      return Ctx.make<LetExpr>(SourceLoc(), Name, nullptr, Init,
                               genInt(Inner, Depth - 1));
    }
    case 5:
      if (!S.RefVars.empty())
        return Ctx.make<DerefExpr>(
            SourceLoc(), Ctx.make<VarExpr>(SourceLoc(),
                                           S.RefVars[Rng() % S.RefVars.size()]));
      return genIntRaw(S, Depth - 1);
    case 6:
      if (!S.RefVars.empty()) {
        const Expr *Target = Ctx.make<VarExpr>(
            SourceLoc(), S.RefVars[Rng() % S.RefVars.size()]);
        return Ctx.make<AssignExpr>(SourceLoc(), Target,
                                    genInt(S, Depth - 1));
      }
      return genIntRaw(S, Depth - 1);
    default:
      return Ctx.make<SeqExpr>(SourceLoc(), genBool(S, Depth - 1),
                               genInt(S, Depth - 1));
    }
  }

  const Expr *genBoolRaw(const Scope &S, unsigned Depth) {
    if (Depth == 0) {
      if (!S.BoolVars.empty() && Rng() % 2)
        return Ctx.make<VarExpr>(SourceLoc(),
                                 S.BoolVars[Rng() % S.BoolVars.size()]);
      return Ctx.make<BoolLitExpr>(SourceLoc(), Rng() % 2 == 0);
    }
    switch (Rng() % 6) {
    case 0:
      return Ctx.make<BinaryExpr>(
          SourceLoc(),
          Rng() % 3 == 0   ? BinaryOp::Eq
          : Rng() % 2 == 0 ? BinaryOp::Lt
                           : BinaryOp::Le,
          genInt(S, Depth - 1), genInt(S, Depth - 1));
    case 1:
      return Ctx.make<BinaryExpr>(SourceLoc(),
                                  Rng() % 2 ? BinaryOp::And : BinaryOp::Or,
                                  genBool(S, Depth - 1),
                                  genBool(S, Depth - 1));
    case 2:
      return Ctx.make<NotExpr>(SourceLoc(), genBool(S, Depth - 1));
    case 3:
      return Ctx.make<IfExpr>(SourceLoc(), genBool(S, Depth - 1),
                              genBool(S, Depth - 1), genBool(S, Depth - 1));
    default:
      return genBoolRaw(S, 0);
    }
  }

  std::string freshName() { return "v" + std::to_string(Counter++); }

  AstContext &Ctx;
  std::mt19937 &Rng;
  bool AllowBlocks;
  bool AllowRefs = true;
  bool AllowCalls = true;
  bool UsedTypedBlock = false;
  unsigned Counter = 0;
};

/// Builds a conforming concrete environment for the standard Gamma used
/// by the generator ({x, y : int; b : bool; p : int ref}).
inline ConcEnv makeConcreteEnv(std::mt19937 &Rng, ConcMemory &Mem) {
  ConcEnv Env;
  Env["x"] = ConcValue::intValue((long long)(Rng() % 21) - 10);
  Env["y"] = ConcValue::intValue((long long)(Rng() % 21) - 10);
  Env["b"] = ConcValue::boolValue(Rng() % 2 == 0);
  size_t Loc = Mem.allocate(ConcValue::intValue((long long)(Rng() % 7) - 3));
  Env["p"] = ConcValue::locValue(Loc);
  return Env;
}

} // namespace mix::testgen

#endif // MIX_TESTS_PROGRAMGEN_H
