//===--- Phase.cpp - Request telemetry and RAII phase timers ----------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "observe/Phase.h"

using namespace mix::obs;

const char *mix::obs::phaseName(Phase P) {
  switch (P) {
  case Phase::Parse:
    return "parse";
  case Phase::Typecheck:
    return "typecheck";
  case Phase::Fixpoint:
    return "fixpoint";
  case Phase::BlockExec:
    return "block-exec";
  case Phase::IrLower:
    return "ir-lower";
  case Phase::Solver:
    return "solver";
  case Phase::Render:
    return "render";
  }
  return "unknown";
}

const char *mix::obs::phaseSpanName(Phase P) {
  switch (P) {
  case Phase::Parse:
    return "phase.parse";
  case Phase::Typecheck:
    return "phase.typecheck";
  case Phase::Fixpoint:
    return "phase.fixpoint";
  case Phase::BlockExec:
    return "phase.block-exec";
  case Phase::IrLower:
    return "phase.ir-lower";
  case Phase::Solver:
    return "phase.solver";
  case Phase::Render:
    return "phase.render";
  }
  return "phase.unknown";
}
