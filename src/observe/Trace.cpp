//===--- Trace.cpp - Chrome-trace-format span/event sink --------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "observe/Trace.h"

#include "observe/Metrics.h"
#include "support/StringExtras.h"

#include <algorithm>
#include <map>

using namespace mix::obs;

TraceSink::TraceSink()
    : Epoch(std::chrono::steady_clock::now()), Shards(NumShards) {}

TraceSink::TraceSink(EpochTime SharedEpoch)
    : Epoch(SharedEpoch), Shards(NumShards) {}

uint64_t TraceSink::nowUs() const {
  return (uint64_t)std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - Epoch)
      .count();
}

void TraceSink::record(TraceEvent E) {
  unsigned Slot = threadSlot() % NumShards;
  E.Tid = threadSlot();
  std::lock_guard<std::mutex> Lock(Shards[Slot].M);
  Shards[Slot].Events.push_back(std::move(E));
}

void TraceSink::instant(const char *Name, const char *Cat,
                        const std::string &ArgsJson) {
  TraceEvent E;
  E.Ph = TracePhase::Instant;
  E.Name = Name;
  E.Cat = Cat;
  E.Ts = nowUs();
  E.Args = ArgsJson;
  record(std::move(E));
}

void TraceSink::complete(const char *Name, const char *Cat, uint64_t StartUs,
                         uint64_t DurUs, const std::string &ArgsJson) {
  TraceEvent E;
  E.Ph = TracePhase::Complete;
  E.Name = Name;
  E.Cat = Cat;
  E.Ts = StartUs;
  E.Dur = DurUs;
  E.Args = ArgsJson;
  record(std::move(E));
}

void TraceSink::nameCurrentThread(const std::string &Name) {
  TraceEvent E;
  E.Ph = TracePhase::Metadata;
  E.Name = "thread_name";
  E.Cat = "__metadata";
  E.Args = "{\"name\": \"" + mix::jsonEscape(Name) + "\"}";
  record(std::move(E));
}

size_t TraceSink::eventCount() const {
  size_t N = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(const_cast<std::mutex &>(S.M));
    N += S.Events.size();
  }
  return N;
}

std::vector<TraceEvent> TraceSink::snapshotEvents() const {
  // Snapshot every shard, then order by (ts, tid, name) so the result
  // is deterministic for a given multiset of events.
  std::vector<TraceEvent> All;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(const_cast<std::mutex &>(S.M));
    All.insert(All.end(), S.Events.begin(), S.Events.end());
  }
  std::stable_sort(All.begin(), All.end(),
                   [](const TraceEvent &A, const TraceEvent &B) {
                     if (A.Ts != B.Ts)
                       return A.Ts < B.Ts;
                     if (A.Tid != B.Tid)
                       return A.Tid < B.Tid;
                     return A.Name < B.Name;
                   });
  return All;
}

void TraceSink::import(const std::vector<TraceEvent> &Events) {
  unsigned Slot = threadSlot() % NumShards;
  std::lock_guard<std::mutex> Lock(Shards[Slot].M);
  Shards[Slot].Events.insert(Shards[Slot].Events.end(), Events.begin(),
                             Events.end());
}

std::string TraceSink::renderJSON() const {
  std::vector<TraceEvent> All = snapshotEvents();

  std::string Out = "{\"traceEvents\": [";
  bool First = true;
  for (const TraceEvent &E : All) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "  {\"name\": \"" + mix::jsonEscape(E.Name) + "\", \"cat\": \"";
    Out += E.Cat;
    Out += "\", \"ph\": \"";
    Out += (char)E.Ph;
    Out += "\", \"pid\": 1, \"tid\": " + std::to_string(E.Tid);
    if (E.Ph != TracePhase::Metadata)
      Out += ", \"ts\": " + std::to_string(E.Ts);
    if (E.Ph == TracePhase::Complete)
      Out += ", \"dur\": " + std::to_string(E.Dur);
    if (E.Ph == TracePhase::Instant)
      Out += ", \"s\": \"t\"";
    if (!E.Args.empty())
      Out += ", \"args\": " + E.Args;
    Out += "}";
  }
  Out += First ? "],\n" : "\n],\n";
  Out += "\"displayTimeUnit\": \"ms\"}\n";
  return Out;
}

std::string TraceSink::renderSpeedscope(const std::string &Name) const {
  // Only complete spans become stack frames; instants and metadata have
  // no extent. Spans are grouped per tid into one evented profile each.
  std::vector<TraceEvent> All = snapshotEvents();
  All.erase(std::remove_if(All.begin(), All.end(),
                           [](const TraceEvent &E) {
                             return E.Ph != TracePhase::Complete;
                           }),
            All.end());

  // Frame table: span names deduplicated, sorted for determinism.
  std::map<std::string, size_t> FrameIdx;
  for (const TraceEvent &E : All)
    FrameIdx.emplace(E.Name, 0);
  {
    size_t I = 0;
    for (auto &[FrameName, Idx] : FrameIdx)
      Idx = I++;
  }

  std::map<unsigned, std::vector<const TraceEvent *>> ByTid;
  for (const TraceEvent &E : All)
    ByTid[E.Tid].push_back(&E);

  std::string Out = "{\n  \"$schema\": "
                    "\"https://www.speedscope.app/file-format-schema.json\",\n";
  Out += "  \"name\": \"" + mix::jsonEscape(Name) + "\",\n";
  Out += "  \"exporter\": \"mix\",\n";
  Out += "  \"activeProfileIndex\": 0,\n";
  Out += "  \"shared\": {\"frames\": [";
  bool First = true;
  for (const auto &[FrameName, Idx] : FrameIdx) {
    (void)Idx;
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    {\"name\": \"" + mix::jsonEscape(FrameName) + "\"}";
  }
  Out += First ? "]},\n" : "\n  ]},\n";
  Out += "  \"profiles\": [";

  First = true;
  for (auto &[Tid, Spans] : ByTid) {
    // Longest span first at equal start, so parents open before children;
    // children are clamped into the enclosing span (overlap from clock
    // skew between nested nowUs() reads never produces a negative stack).
    std::stable_sort(Spans.begin(), Spans.end(),
                     [](const TraceEvent *A, const TraceEvent *B) {
                       if (A->Ts != B->Ts)
                         return A->Ts < B->Ts;
                       if (A->Dur != B->Dur)
                         return A->Dur > B->Dur;
                       return A->Name < B->Name;
                     });

    std::string Events;
    bool FirstEv = true;
    auto emit = [&](char Type, size_t Frame, uint64_t At) {
      Events += FirstEv ? "\n" : ",\n";
      FirstEv = false;
      Events += "        {\"type\": \"";
      Events += Type;
      Events += "\", \"frame\": " + std::to_string(Frame) +
                ", \"at\": " + std::to_string(At) + "}";
    };

    std::vector<std::pair<size_t, uint64_t>> Stack; // (frame, end)
    uint64_t EndValue = 0;
    for (const TraceEvent *E : Spans) {
      while (!Stack.empty() && Stack.back().second <= E->Ts) {
        emit('C', Stack.back().first, Stack.back().second);
        EndValue = std::max(EndValue, Stack.back().second);
        Stack.pop_back();
      }
      uint64_t End = E->Ts + E->Dur;
      if (!Stack.empty())
        End = std::min(End, Stack.back().second);
      size_t Frame = FrameIdx[E->Name];
      emit('O', Frame, E->Ts);
      Stack.emplace_back(Frame, End);
    }
    while (!Stack.empty()) {
      emit('C', Stack.back().first, Stack.back().second);
      EndValue = std::max(EndValue, Stack.back().second);
      Stack.pop_back();
    }

    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    {\"type\": \"evented\", \"name\": \"thread " +
           std::to_string(Tid) + "\", \"unit\": \"microseconds\",\n";
    Out += "      \"startValue\": 0, \"endValue\": " +
           std::to_string(EndValue) + ",\n";
    Out += "      \"events\": [" + Events + (FirstEv ? "]}" : "\n      ]}");
  }
  Out += First ? "]\n" : "\n  ]\n";
  Out += "}\n";
  return Out;
}
