//===--- Trace.cpp - Chrome-trace-format span/event sink --------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "observe/Trace.h"

#include "observe/Metrics.h"
#include "support/StringExtras.h"

#include <algorithm>

using namespace mix::obs;

TraceSink::TraceSink()
    : Epoch(std::chrono::steady_clock::now()), Shards(NumShards) {}

uint64_t TraceSink::nowUs() const {
  return (uint64_t)std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - Epoch)
      .count();
}

void TraceSink::record(Event E) {
  unsigned Slot = threadSlot() % NumShards;
  E.Tid = threadSlot();
  std::lock_guard<std::mutex> Lock(Shards[Slot].M);
  Shards[Slot].Events.push_back(std::move(E));
}

void TraceSink::instant(const char *Name, const char *Cat,
                        const std::string &ArgsJson) {
  Event E;
  E.Ph = Phase::Instant;
  E.Name = Name;
  E.Cat = Cat;
  E.Ts = nowUs();
  E.Args = ArgsJson;
  record(std::move(E));
}

void TraceSink::complete(const char *Name, const char *Cat, uint64_t StartUs,
                         uint64_t DurUs, const std::string &ArgsJson) {
  Event E;
  E.Ph = Phase::Complete;
  E.Name = Name;
  E.Cat = Cat;
  E.Ts = StartUs;
  E.Dur = DurUs;
  E.Args = ArgsJson;
  record(std::move(E));
}

void TraceSink::nameCurrentThread(const std::string &Name) {
  Event E;
  E.Ph = Phase::Metadata;
  E.Name = "thread_name";
  E.Cat = "__metadata";
  E.Args = "{\"name\": \"" + mix::jsonEscape(Name) + "\"}";
  record(std::move(E));
}

size_t TraceSink::eventCount() const {
  size_t N = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(const_cast<std::mutex &>(S.M));
    N += S.Events.size();
  }
  return N;
}

std::string TraceSink::renderJSON() const {
  // Snapshot every shard, then order by (ts, tid, name) so the rendering
  // is deterministic for a given multiset of events.
  std::vector<Event> All;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(const_cast<std::mutex &>(S.M));
    All.insert(All.end(), S.Events.begin(), S.Events.end());
  }
  std::stable_sort(All.begin(), All.end(), [](const Event &A, const Event &B) {
    if (A.Ts != B.Ts)
      return A.Ts < B.Ts;
    if (A.Tid != B.Tid)
      return A.Tid < B.Tid;
    return A.Name < B.Name;
  });

  std::string Out = "{\"traceEvents\": [";
  bool First = true;
  for (const Event &E : All) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "  {\"name\": \"" + mix::jsonEscape(E.Name) + "\", \"cat\": \"";
    Out += E.Cat;
    Out += "\", \"ph\": \"";
    Out += (char)E.Ph;
    Out += "\", \"pid\": 1, \"tid\": " + std::to_string(E.Tid);
    if (E.Ph != Phase::Metadata)
      Out += ", \"ts\": " + std::to_string(E.Ts);
    if (E.Ph == Phase::Complete)
      Out += ", \"dur\": " + std::to_string(E.Dur);
    if (E.Ph == Phase::Instant)
      Out += ", \"s\": \"t\"";
    if (!E.Args.empty())
      Out += ", \"args\": " + E.Args;
    Out += "}";
  }
  Out += First ? "],\n" : "\n],\n";
  Out += "\"displayTimeUnit\": \"ms\"}\n";
  return Out;
}
