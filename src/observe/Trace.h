//===--- Trace.h - Chrome-trace-format span/event sink ----------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tracing half of the observability subsystem. A TraceSink records
/// phase spans (complete events), instant events, and thread-name
/// metadata, and renders them as Chrome trace format JSON — loadable in
/// chrome://tracing or https://ui.perfetto.dev.
///
/// Recording is sharded by thread: each event goes to a slot picked by
/// threadSlot(), guarded by a per-slot mutex that only same-slot threads
/// ever contend on. Events carry a tid (the recording thread's slot), so
/// a ThreadPool run renders one timeline lane per worker.
///
/// Like metrics handles, a null sink pointer is the off switch: TraceSpan
/// and every record helper branch on the pointer and do nothing else, so
/// untraced runs pay one predictable branch per instrumentation site.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_OBSERVE_TRACE_H
#define MIX_OBSERVE_TRACE_H

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace mix::obs {

/// Chrome trace event phases. 'X' = complete (span), 'i' = instant,
/// 'M' = metadata (thread names).
enum class TracePhase : char { Complete = 'X', Instant = 'i', Metadata = 'M' };

/// One recorded event. Public so a request-scoped sink's events can be
/// snapshotted into an AnalysisResponse and imported into the global
/// sink (timestamps stay comparable when the sinks share an epoch).
struct TraceEvent {
  TracePhase Ph = TracePhase::Complete;
  std::string Name;
  std::string Cat;
  uint64_t Ts = 0;
  uint64_t Dur = 0;
  unsigned Tid = 0;
  std::string Args; ///< pre-rendered JSON object, may be empty
};

/// Collects trace events; thread-safe.
class TraceSink {
public:
  using EpochTime = std::chrono::steady_clock::time_point;

  TraceSink();

  /// Epoch-sharing constructor: nowUs() counts from \p SharedEpoch, so
  /// events recorded here and in the sink the epoch came from use one
  /// time base (the service gives each request sink the global epoch).
  explicit TraceSink(EpochTime SharedEpoch);

  /// The time zero of nowUs().
  EpochTime epoch() const { return Epoch; }

  /// Microseconds since the sink was created (steady clock).
  uint64_t nowUs() const;

  /// A zero-duration marker, e.g. one path fork. \p ArgsJson, when
  /// non-empty, must be a JSON object ("{\"k\": 1}") rendered verbatim
  /// into the event's "args".
  void instant(const char *Name, const char *Cat,
               const std::string &ArgsJson = std::string());

  /// A span [StartUs, StartUs + DurUs) — usually recorded via TraceSpan.
  void complete(const char *Name, const char *Cat, uint64_t StartUs,
                uint64_t DurUs, const std::string &ArgsJson = std::string());

  /// Names the calling thread's timeline lane ("mixy worker 3").
  void nameCurrentThread(const std::string &Name);

  /// Number of events recorded so far (spans + instants + metadata).
  size_t eventCount() const;

  /// The whole trace as Chrome trace format JSON, events sorted by
  /// timestamp (deterministic rendering for a given event multiset).
  std::string renderJSON() const;

  /// Every event recorded so far, sorted by (ts, tid, name) like
  /// renderJSON — the building block for per-request span trees.
  std::vector<TraceEvent> snapshotEvents() const;

  /// Appends \p Events verbatim, preserving their tids and timestamps
  /// (meaningful only when both sinks share an epoch). Used to fold a
  /// request-scoped sink back into the process-global trace.
  void import(const std::vector<TraceEvent> &Events);

  /// The complete spans as a speedscope-compatible JSON profile
  /// (https://www.speedscope.app/file-format-schema.json): one "evented"
  /// profile per thread lane, frames deduplicated by span name, child
  /// spans clamped into their parents. \p Name labels the document.
  std::string renderSpeedscope(const std::string &Name = "mix") const;

private:
  /// One thread-slot's buffer. The mutex is uncontended unless two
  /// threads share a slot (more threads than shards).
  struct alignas(64) Shard {
    std::mutex M;
    std::vector<TraceEvent> Events;
  };

  void record(TraceEvent E);

  std::chrono::steady_clock::time_point Epoch;
  static constexpr unsigned NumShards = 64;
  std::vector<Shard> Shards;
};

/// RAII span: records a complete event covering its lifetime. Null sink
/// means both constructor and destructor reduce to a branch.
class TraceSpan {
public:
  TraceSpan(TraceSink *Sink, const char *Name, const char *Cat)
      : Sink(Sink), Name(Name), Cat(Cat),
        Start(Sink ? Sink->nowUs() : 0) {}

  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

  /// Attaches args to the event emitted at scope exit; \p Json must be a
  /// JSON object.
  void setArgs(std::string Json) {
    if (Sink)
      Args = std::move(Json);
  }

  ~TraceSpan() {
    if (Sink)
      Sink->complete(Name, Cat, Start, Sink->nowUs() - Start, Args);
  }

private:
  TraceSink *Sink;
  const char *Name;
  const char *Cat;
  uint64_t Start;
  std::string Args;
};

} // namespace mix::obs

#endif // MIX_OBSERVE_TRACE_H
