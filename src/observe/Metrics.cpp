//===--- Metrics.cpp - Sharded counters and histograms ----------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "observe/Metrics.h"

#include "support/StringExtras.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

using namespace mix::obs;

unsigned mix::obs::threadSlot() {
  static std::atomic<unsigned> Next{0};
  thread_local unsigned Slot = Next.fetch_add(1, std::memory_order_relaxed);
  return Slot;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot Out;
  if (!Data)
    return Out;
  uint64_t Min = UINT64_MAX;
  for (const detail::HistogramSlot &S : Data->Slots) {
    Out.Count += S.Count.load(std::memory_order_relaxed);
    Out.Sum += S.Sum.load(std::memory_order_relaxed);
    Min = std::min(Min, S.Min.load(std::memory_order_relaxed));
    Out.Max = std::max(Out.Max, S.Max.load(std::memory_order_relaxed));
    for (unsigned B = 0; B != detail::HistogramBuckets; ++B)
      Out.Buckets[B] += S.Buckets[B].load(std::memory_order_relaxed);
  }
  Out.Min = Out.Count == 0 ? 0 : Min;
  return Out;
}

double HistogramSnapshot::quantile(double Q) const {
  if (Count == 0)
    return 0.0;
  Q = std::min(1.0, std::max(0.0, Q));
  // Rank in [0, Count]; the bucket whose cumulative count reaches it
  // holds the quantile.
  double Rank = Q * (double)Count;
  uint64_t Cum = 0;
  for (unsigned B = 0; B != detail::HistogramBuckets; ++B) {
    uint64_t N = Buckets[B];
    if (N == 0)
      continue;
    if ((double)(Cum + N) >= Rank) {
      // Bucket 0 covers [0, 2); bucket B covers [2^B, 2^(B+1)).
      double Lo = B == 0 ? 0.0 : std::ldexp(1.0, (int)B);
      double Hi = std::ldexp(1.0, (int)B + 1);
      double Frac = (Rank - (double)Cum) / (double)N;
      double V = Lo + Frac * (Hi - Lo);
      // The true range within the bucket is narrower than the bucket
      // bounds whenever Min/Max landed inside it.
      return std::min(std::max(V, (double)Min), (double)Max);
    }
    Cum += N;
  }
  return (double)Max;
}

static unsigned roundPow2(unsigned N) {
  unsigned P = 1;
  while (P < N && P < 1024)
    P <<= 1;
  return P;
}

MetricsRegistry::MetricsRegistry(unsigned ShardsHint)
    : Shards(roundPow2(ShardsHint == 0 ? 32 : ShardsHint)) {}

Counter MetricsRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  std::unique_ptr<detail::CounterData> &Slot = Counters[Name];
  if (!Slot)
    Slot = std::make_unique<detail::CounterData>(Shards);
  return Counter(Slot.get());
}

Histogram MetricsRegistry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  std::unique_ptr<detail::HistogramData> &Slot = Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<detail::HistogramData>(Shards);
  return Histogram(Slot.get());
}

uint64_t MetricsRegistry::counterValue(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second->total();
}

HistogramSnapshot
MetricsRegistry::histogramSnapshot(const std::string &Name) const {
  detail::HistogramData *Data = nullptr;
  {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Histograms.find(Name);
    if (It != Histograms.end())
      Data = It->second.get();
  }
  Histogram H;
  H.Data = Data;
  return H.snapshot();
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::counters() const {
  std::lock_guard<std::mutex> Lock(M);
  std::vector<std::pair<std::string, uint64_t>> Out;
  Out.reserve(Counters.size());
  for (const auto &[Name, Data] : Counters)
    Out.emplace_back(Name, Data->total());
  return Out;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot Out;
  for (const auto &[Name, Value] : counters())
    Out.Counters.emplace(Name, Value);
  return Out;
}

std::vector<std::pair<std::string, uint64_t>>
MetricsRegistry::deltaSince(const MetricsSnapshot &Since) const {
  std::vector<std::pair<std::string, uint64_t>> Out;
  for (const auto &[Name, Now] : counters()) {
    auto It = Since.Counters.find(Name);
    uint64_t Then = It == Since.Counters.end() ? 0 : It->second;
    if (Now > Then)
      Out.emplace_back(Name, Now - Then);
  }
  return Out;
}

std::vector<std::string> MetricsRegistry::histogramNames() const {
  std::lock_guard<std::mutex> Lock(M);
  std::vector<std::string> Out;
  Out.reserve(Histograms.size());
  for (const auto &[Name, Data] : Histograms) {
    (void)Data;
    Out.push_back(Name);
  }
  return Out;
}

std::string MetricsRegistry::renderText() const {
  std::string Out;
  for (const auto &[Name, Value] : counters())
    Out += Name + " = " + std::to_string(Value) + "\n";
  for (const std::string &Name : histogramNames()) {
    HistogramSnapshot S = histogramSnapshot(Name);
    Out += Name + " = count " + std::to_string(S.Count) + ", sum " +
           std::to_string(S.Sum) + ", min " + std::to_string(S.Min) +
           ", max " + std::to_string(S.Max) + "\n";
  }
  return Out;
}

std::string MetricsRegistry::renderJSON() const {
  std::string Out = "{\n  \"counters\": {";
  bool First = true;
  for (const auto &[Name, Value] : counters()) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    \"" + jsonEscape(Name) + "\": " + std::to_string(Value);
  }
  Out += First ? "},\n" : "\n  },\n";
  Out += "  \"histograms\": {";
  First = true;
  for (const std::string &Name : histogramNames()) {
    HistogramSnapshot S = histogramSnapshot(Name);
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    \"" + jsonEscape(Name) + "\": {\"count\": " +
           std::to_string(S.Count) + ", \"sum\": " + std::to_string(S.Sum) +
           ", \"min\": " + std::to_string(S.Min) +
           ", \"max\": " + std::to_string(S.Max) + ", \"buckets\": [";
    // Trailing zero buckets are elided so files stay small; bucket i
    // counts values in [2^i, 2^(i+1)).
    unsigned Last = detail::HistogramBuckets;
    while (Last > 0 && S.Buckets[Last - 1] == 0)
      --Last;
    for (unsigned B = 0; B != Last; ++B)
      Out += (B ? ", " : "") + std::to_string(S.Buckets[B]);
    Out += "]}";
  }
  Out += First ? "}\n" : "\n  }\n";
  Out += "}\n";
  return Out;
}

/// Metric names in OpenMetrics are [a-zA-Z_:][a-zA-Z0-9_:]*; dots (the
/// registry's separator) and anything else exotic become underscores.
static std::string openMetricsName(const std::string &Name) {
  std::string Out = "mix_";
  for (char C : Name) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '_' || C == ':';
    Out += Ok ? C : '_';
  }
  return Out;
}

/// Shortest round-trip-ish rendering of a quantile estimate ("12", or
/// "12.5"): fixed precision, trailing zeros trimmed, deterministic.
static std::string openMetricsDouble(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6f", V);
  std::string S(Buf);
  while (!S.empty() && S.back() == '0')
    S.pop_back();
  if (!S.empty() && S.back() == '.')
    S.pop_back();
  return S.empty() ? "0" : S;
}

std::string MetricsRegistry::renderOpenMetrics() const {
  std::string Out;
  for (const auto &[Name, Value] : counters()) {
    std::string N = openMetricsName(Name);
    Out += "# TYPE " + N + " counter\n";
    Out += N + "_total " + std::to_string(Value) + "\n";
  }
  for (const std::string &Name : histogramNames()) {
    HistogramSnapshot S = histogramSnapshot(Name);
    std::string N = openMetricsName(Name);
    Out += "# TYPE " + N + " histogram\n";
    // Cumulative buckets; bucket B's upper bound is 2^(B+1) (bucket 0 is
    // [0, 2)). Trailing empty buckets collapse into the +Inf series.
    unsigned Last = detail::HistogramBuckets;
    while (Last > 0 && S.Buckets[Last - 1] == 0)
      --Last;
    uint64_t Cum = 0;
    for (unsigned B = 0; B != Last; ++B) {
      Cum += S.Buckets[B];
      Out += N + "_bucket{le=\"" + std::to_string((uint64_t)1 << (B + 1)) +
             "\"} " + std::to_string(Cum) + "\n";
    }
    Out += N + "_bucket{le=\"+Inf\"} " + std::to_string(S.Count) + "\n";
    Out += N + "_sum " + std::to_string(S.Sum) + "\n";
    Out += N + "_count " + std::to_string(S.Count) + "\n";
    for (double Q : {0.5, 0.9, 0.99}) {
      std::string QN = N + (Q == 0.5 ? "_p50" : Q == 0.9 ? "_p90" : "_p99");
      Out += "# TYPE " + QN + " gauge\n";
      Out += QN + " " + openMetricsDouble(S.quantile(Q)) + "\n";
    }
  }
  Out += "# EOF\n";
  return Out;
}
