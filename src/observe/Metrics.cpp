//===--- Metrics.cpp - Sharded counters and histograms ----------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "observe/Metrics.h"

#include "support/StringExtras.h"

using namespace mix::obs;

unsigned mix::obs::threadSlot() {
  static std::atomic<unsigned> Next{0};
  thread_local unsigned Slot = Next.fetch_add(1, std::memory_order_relaxed);
  return Slot;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot Out;
  if (!Data)
    return Out;
  uint64_t Min = UINT64_MAX;
  for (const detail::HistogramSlot &S : Data->Slots) {
    Out.Count += S.Count.load(std::memory_order_relaxed);
    Out.Sum += S.Sum.load(std::memory_order_relaxed);
    Min = std::min(Min, S.Min.load(std::memory_order_relaxed));
    Out.Max = std::max(Out.Max, S.Max.load(std::memory_order_relaxed));
    for (unsigned B = 0; B != detail::HistogramBuckets; ++B)
      Out.Buckets[B] += S.Buckets[B].load(std::memory_order_relaxed);
  }
  Out.Min = Out.Count == 0 ? 0 : Min;
  return Out;
}

static unsigned roundPow2(unsigned N) {
  unsigned P = 1;
  while (P < N && P < 1024)
    P <<= 1;
  return P;
}

MetricsRegistry::MetricsRegistry(unsigned ShardsHint)
    : Shards(roundPow2(ShardsHint == 0 ? 32 : ShardsHint)) {}

Counter MetricsRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  std::unique_ptr<detail::CounterData> &Slot = Counters[Name];
  if (!Slot)
    Slot = std::make_unique<detail::CounterData>(Shards);
  return Counter(Slot.get());
}

Histogram MetricsRegistry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  std::unique_ptr<detail::HistogramData> &Slot = Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<detail::HistogramData>(Shards);
  return Histogram(Slot.get());
}

uint64_t MetricsRegistry::counterValue(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second->total();
}

HistogramSnapshot
MetricsRegistry::histogramSnapshot(const std::string &Name) const {
  detail::HistogramData *Data = nullptr;
  {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Histograms.find(Name);
    if (It != Histograms.end())
      Data = It->second.get();
  }
  Histogram H;
  H.Data = Data;
  return H.snapshot();
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::counters() const {
  std::lock_guard<std::mutex> Lock(M);
  std::vector<std::pair<std::string, uint64_t>> Out;
  Out.reserve(Counters.size());
  for (const auto &[Name, Data] : Counters)
    Out.emplace_back(Name, Data->total());
  return Out;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot Out;
  for (const auto &[Name, Value] : counters())
    Out.Counters.emplace(Name, Value);
  return Out;
}

std::vector<std::pair<std::string, uint64_t>>
MetricsRegistry::deltaSince(const MetricsSnapshot &Since) const {
  std::vector<std::pair<std::string, uint64_t>> Out;
  for (const auto &[Name, Now] : counters()) {
    auto It = Since.Counters.find(Name);
    uint64_t Then = It == Since.Counters.end() ? 0 : It->second;
    if (Now > Then)
      Out.emplace_back(Name, Now - Then);
  }
  return Out;
}

std::vector<std::string> MetricsRegistry::histogramNames() const {
  std::lock_guard<std::mutex> Lock(M);
  std::vector<std::string> Out;
  Out.reserve(Histograms.size());
  for (const auto &[Name, Data] : Histograms) {
    (void)Data;
    Out.push_back(Name);
  }
  return Out;
}

std::string MetricsRegistry::renderText() const {
  std::string Out;
  for (const auto &[Name, Value] : counters())
    Out += Name + " = " + std::to_string(Value) + "\n";
  for (const std::string &Name : histogramNames()) {
    HistogramSnapshot S = histogramSnapshot(Name);
    Out += Name + " = count " + std::to_string(S.Count) + ", sum " +
           std::to_string(S.Sum) + ", min " + std::to_string(S.Min) +
           ", max " + std::to_string(S.Max) + "\n";
  }
  return Out;
}

std::string MetricsRegistry::renderJSON() const {
  std::string Out = "{\n  \"counters\": {";
  bool First = true;
  for (const auto &[Name, Value] : counters()) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    \"" + jsonEscape(Name) + "\": " + std::to_string(Value);
  }
  Out += First ? "},\n" : "\n  },\n";
  Out += "  \"histograms\": {";
  First = true;
  for (const std::string &Name : histogramNames()) {
    HistogramSnapshot S = histogramSnapshot(Name);
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    \"" + jsonEscape(Name) + "\": {\"count\": " +
           std::to_string(S.Count) + ", \"sum\": " + std::to_string(S.Sum) +
           ", \"min\": " + std::to_string(S.Min) +
           ", \"max\": " + std::to_string(S.Max) + ", \"buckets\": [";
    // Trailing zero buckets are elided so files stay small; bucket i
    // counts values in [2^i, 2^(i+1)).
    unsigned Last = detail::HistogramBuckets;
    while (Last > 0 && S.Buckets[Last - 1] == 0)
      --Last;
    for (unsigned B = 0; B != Last; ++B)
      Out += (B ? ", " : "") + std::to_string(S.Buckets[B]);
    Out += "]}";
  }
  Out += First ? "}\n" : "\n  }\n";
  Out += "}\n";
  return Out;
}
