//===--- Metrics.h - Sharded counters and histograms ------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics half of the observability subsystem: a registry of named
/// counters and latency histograms that analysis code can bump from any
/// thread without taking a lock.
///
/// Design contract (see DESIGN.md section 10):
///  - Handles, not names, on the hot path. Code resolves a Counter or
///    Histogram handle once at setup time (registry lookups intern the
///    name under a mutex) and then increments through the handle.
///  - Per-worker sharding. Each metric owns a power-of-two array of
///    cache-line-sized slots; a thread increments the slot selected by
///    its stable threadSlot() with a relaxed atomic add, so concurrent
///    workers touch disjoint cache lines and never contend.
///  - Null handles are free. A default-constructed handle carries a null
///    slot pointer and every record operation is a single branch on it —
///    instrumented code paths cost nothing when no registry is attached
///    (bench_observe guards this).
///  - Reads (renderText / renderJSON / counterValue) sum the slots; call
///    them at a barrier for exact totals, which is when the CLIs render
///    --stats / --metrics.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_OBSERVE_METRICS_H
#define MIX_OBSERVE_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mix::obs {

/// A small, stable per-thread index used to pick a metric shard (and to
/// tag trace events with a thread id). Assigned on first use, process
/// wide, and never reused; the main thread typically gets 0.
unsigned threadSlot();

namespace detail {

/// One cache line holding one shard of a counter.
struct alignas(64) CounterSlot {
  std::atomic<uint64_t> Value{0};
};

struct CounterData {
  std::vector<CounterSlot> Slots;
  unsigned Mask = 0;
  explicit CounterData(unsigned NumSlots) : Slots(NumSlots), Mask(NumSlots - 1) {}
  uint64_t total() const {
    uint64_t N = 0;
    for (const CounterSlot &S : Slots)
      N += S.Value.load(std::memory_order_relaxed);
    return N;
  }
};

/// Histograms bucket by floor(log2(value)) — enough resolution to tell
/// microsecond solver queries from millisecond block analyses.
constexpr unsigned HistogramBuckets = 40;

struct alignas(64) HistogramSlot {
  std::array<std::atomic<uint64_t>, HistogramBuckets> Buckets{};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Min{UINT64_MAX};
  std::atomic<uint64_t> Max{0};
};

struct HistogramData {
  std::vector<HistogramSlot> Slots;
  unsigned Mask = 0;
  explicit HistogramData(unsigned NumSlots)
      : Slots(NumSlots), Mask(NumSlots - 1) {}
};

} // namespace detail

/// Hot-path handle to a registry counter. Default-constructed handles are
/// detached: add() is a branch on a null pointer and nothing else.
class Counter {
public:
  Counter() = default;

  explicit operator bool() const { return Data != nullptr; }

  void add(uint64_t N) {
    if (Data)
      Data->Slots[threadSlot() & Data->Mask].Value.fetch_add(
          N, std::memory_order_relaxed);
  }
  void inc() { add(1); }

  /// Sum over shards (exact at a barrier).
  uint64_t value() const { return Data ? Data->total() : 0; }

private:
  friend class MetricsRegistry;
  explicit Counter(detail::CounterData *Data) : Data(Data) {}
  detail::CounterData *Data = nullptr;
};

/// Point-in-time view of one histogram, summed over shards.
struct HistogramSnapshot {
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Min = 0; ///< 0 when Count == 0
  uint64_t Max = 0;
  std::array<uint64_t, detail::HistogramBuckets> Buckets{};

  /// Quantile estimate for \p Q in [0, 1]: finds the log2 bucket holding
  /// the rank and interpolates linearly within it, so the error is
  /// bounded by that bucket's width. Clamped to the observed [Min, Max];
  /// 0 when the histogram is empty.
  double quantile(double Q) const;
};

/// Hot-path handle to a registry histogram (values are unit-free; the
/// solver records microseconds). Detached handles record nothing.
class Histogram {
public:
  Histogram() = default;

  explicit operator bool() const { return Data != nullptr; }

  void record(uint64_t Value) {
    if (!Data)
      return;
    detail::HistogramSlot &S = Data->Slots[threadSlot() & Data->Mask];
    S.Buckets[bucketOf(Value)].fetch_add(1, std::memory_order_relaxed);
    S.Count.fetch_add(1, std::memory_order_relaxed);
    S.Sum.fetch_add(Value, std::memory_order_relaxed);
    // Min/max races only lose against a strictly better value.
    uint64_t Cur = S.Min.load(std::memory_order_relaxed);
    while (Value < Cur &&
           !S.Min.compare_exchange_weak(Cur, Value, std::memory_order_relaxed))
      ;
    Cur = S.Max.load(std::memory_order_relaxed);
    while (Value > Cur &&
           !S.Max.compare_exchange_weak(Cur, Value, std::memory_order_relaxed))
      ;
  }

  HistogramSnapshot snapshot() const;

  /// Bucket index: floor(log2(Value)) clamped to the bucket range; 0 maps
  /// to bucket 0.
  static unsigned bucketOf(uint64_t Value) {
    unsigned B = 0;
    while (Value > 1 && B + 1 < detail::HistogramBuckets) {
      Value >>= 1;
      ++B;
    }
    return B;
  }

private:
  friend class MetricsRegistry;
  explicit Histogram(detail::HistogramData *Data) : Data(Data) {}
  detail::HistogramData *Data = nullptr;
};

/// Point-in-time view of every counter in a registry, used to compute
/// per-request deltas in long-lived processes (the mixyd daemon serves
/// many requests from one registry; each response carries only what that
/// request added). Histograms are deliberately excluded: their min/max
/// are not subtractable, and no per-request consumer needs them.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> Counters;
};

/// The registry: interns metric names to sharded storage and renders the
/// whole set as text or JSON. Registration is mutex-guarded (cold path);
/// recording goes through the handles above (lock-free).
class MetricsRegistry {
public:
  /// \p ShardsHint is rounded up to a power of two; it should comfortably
  /// exceed the worker count. The default suits any --jobs value this
  /// project uses.
  explicit MetricsRegistry(unsigned ShardsHint = 32);

  /// Returns the (interned) counter named \p Name; repeated calls with
  /// the same name share storage.
  Counter counter(const std::string &Name);

  /// Returns the (interned) histogram named \p Name.
  Histogram histogram(const std::string &Name);

  /// Sum of the named counter, or 0 when it was never registered.
  uint64_t counterValue(const std::string &Name) const;

  /// Snapshot of the named histogram (all-zero when never registered).
  HistogramSnapshot histogramSnapshot(const std::string &Name) const;

  /// All counters, name-sorted, with their current sums.
  std::vector<std::pair<std::string, uint64_t>> counters() const;

  /// Current counter sums, for later use with deltaSince(). Exact when
  /// taken at a barrier (no concurrent recording), like every other read.
  MetricsSnapshot snapshot() const;

  /// Name-sorted (name, now - then) pairs for every counter that grew
  /// since \p Since was taken; counters absent from the snapshot count
  /// from zero, zero deltas are dropped.
  std::vector<std::pair<std::string, uint64_t>>
  deltaSince(const MetricsSnapshot &Since) const;

  /// All histogram names, sorted.
  std::vector<std::string> histogramNames() const;

  /// "name = value" per line, name-sorted — the --stats building block.
  std::string renderText() const;

  /// {"counters": {...}, "histograms": {...}} — the --metrics=FILE body.
  std::string renderJSON() const;

  /// OpenMetrics text exposition (the mixyd `metrics` RPC body and the
  /// --metrics-file flush format): every counter as a `_total` series,
  /// every histogram as cumulative `_bucket{le="..."}` series derived
  /// from the log2 buckets plus `_sum`/`_count`, and interpolated
  /// p50/p90/p99 gauges. Names are prefixed "mix_" and sanitized to
  /// [a-zA-Z0-9_:]. Ends with "# EOF".
  std::string renderOpenMetrics() const;

private:
  unsigned Shards;
  mutable std::mutex M;
  std::map<std::string, std::unique_ptr<detail::CounterData>> Counters;
  std::map<std::string, std::unique_ptr<detail::HistogramData>> Histograms;
};

} // namespace mix::obs

#endif // MIX_OBSERVE_METRICS_H
