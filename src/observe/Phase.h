//===--- Phase.h - Request telemetry and RAII phase timers ------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-request telemetry: a fixed phase taxonomy (parse, typecheck,
/// fixpoint, block-exec, ir-lower, solver, render), a RequestTelemetry
/// context that accumulates per-phase wall time and optionally records a
/// request-scoped span tree, and a PhaseTimer RAII guard that feeds it.
///
/// The context follows the null-handle discipline from DESIGN.md section
/// 10: every instrumentation site takes a RequestTelemetry pointer, and a
/// null pointer reduces the timer to one predictable branch — no clock
/// reads, no atomics (bench_observe guards this).
///
/// Phase attribution is inclusive (see DESIGN.md section 17): the
/// typecheck phase contains fixpoint, which contains block-exec, which
/// contains solver time. Consumers that want exclusive ("self") time
/// subtract along that chain.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_OBSERVE_PHASE_H
#define MIX_OBSERVE_PHASE_H

#include "observe/Trace.h"

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

namespace mix::obs {

/// The analysis phase taxonomy. Order is the canonical rendering order
/// (pipeline order, container before contained).
enum class Phase : unsigned {
  Parse = 0,
  Typecheck,
  Fixpoint,
  BlockExec,
  IrLower,
  Solver,
  Render,
};

constexpr unsigned NumPhases = 7;

/// Stable lowercase name ("parse", "block-exec", ...) used in response
/// JSON, --stats tables, and metric names (dots instead of dashes there).
const char *phaseName(Phase P);

/// The span name a PhaseTimer emits ("phase.parse", ...).
const char *phaseSpanName(Phase P);

/// Per-request telemetry context. One is created per AnalysisService
/// request when request telemetry is enabled; engine code only sees it as
/// an optional pointer. Accumulation is relaxed-atomic so parallel
/// fixpoint workers can add phase time concurrently; reads are exact at a
/// barrier (request end), like the metrics registry.
class RequestTelemetry {
public:
  RequestTelemetry() = default;
  RequestTelemetry(const RequestTelemetry &) = delete;
  RequestTelemetry &operator=(const RequestTelemetry &) = delete;

  /// Stable request id ("r-17"), assigned by the service.
  std::string Id;

  void addPhase(Phase P, uint64_t Us) {
    PhaseUs[(unsigned)P].fetch_add(Us, std::memory_order_relaxed);
  }

  uint64_t phaseUs(Phase P) const {
    return PhaseUs[(unsigned)P].load(std::memory_order_relaxed);
  }

  /// Turns on the request-scoped span tree. \p SharedEpoch should be the
  /// process-global sink's epoch() so imported events keep their
  /// timestamps (TraceSink::import).
  void enableSpans(TraceSink::EpochTime SharedEpoch) {
    Spans.emplace(SharedEpoch);
  }

  /// The request-scoped sink, or null when spans were not enabled —
  /// instrumentation passes this straight to TraceSpan.
  TraceSink *sink() { return Spans ? &*Spans : nullptr; }

private:
  std::array<std::atomic<uint64_t>, NumPhases> PhaseUs{};
  std::optional<TraceSink> Spans;
};

/// RAII phase timer. Null telemetry costs one branch in the constructor
/// and one in the destructor; attached, it accumulates wall microseconds
/// into the phase and, when the request records spans, emits a
/// "phase.<name>" complete event.
class PhaseTimer {
public:
  PhaseTimer(RequestTelemetry *T, Phase P) : T(T), P(P) {
    if (T) {
      Sink = T->sink();
      SpanStart = Sink ? Sink->nowUs() : 0;
      Start = std::chrono::steady_clock::now();
    }
  }

  PhaseTimer(const PhaseTimer &) = delete;
  PhaseTimer &operator=(const PhaseTimer &) = delete;

  ~PhaseTimer() {
    if (!T)
      return;
    uint64_t Us =
        (uint64_t)std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - Start)
            .count();
    T->addPhase(P, Us);
    if (Sink)
      Sink->complete(phaseSpanName(P), "phase", SpanStart,
                     Sink->nowUs() - SpanStart);
  }

private:
  RequestTelemetry *T;
  Phase P;
  TraceSink *Sink = nullptr;
  uint64_t SpanStart = 0;
  std::chrono::steady_clock::time_point Start;
};

} // namespace mix::obs

#endif // MIX_OBSERVE_PHASE_H
