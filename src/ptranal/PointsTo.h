//===--- PointsTo.h - Steensgaard may-points-to analysis --------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A unification-based (Steensgaard-style) flow- and context-insensitive
/// may-points-to analysis over mini-C — the stand-in for "CIL's built-in
/// pointer analysis" that MIXY uses as a pre-pass (Section 4.2).
///
/// Abstraction: one cell per variable, per malloc site, and per function;
/// struct objects are a single cell (field-insensitive); each cell has at
/// most one points-to target, with unification merging targets. This
/// deliberately reproduces the imprecision the paper complains about in
/// Section 4.6 (large points-to sets conflate call sites), which the
/// scaling benchmarks exercise.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_PTRANAL_POINTSTO_H
#define MIX_PTRANAL_POINTSTO_H

#include "cfront/CSema.h"

#include <map>
#include <string>
#include <vector>

namespace mix::c {

/// Whole-program may-points-to facts.
class PointsToAnalysis {
public:
  /// Cell handles; 0 is the invalid cell.
  using CellId = unsigned;
  static constexpr CellId NoCell = 0;

  PointsToAnalysis(const CProgram &Program, CAstContext &Ctx,
                   DiagnosticEngine &Diags)
      : Program(Program), Sema(Program, Ctx, Diags) {}

  /// Generates and solves constraints for the whole program.
  void run();

  /// The storage cell of variable \p Name (pass the enclosing function for
  /// locals/params, null for globals).
  CellId cellOfVar(const CFuncDecl *Func, const std::string &Name);

  /// The storage cell an lvalue expression denotes.
  CellId cellOfLValue(const CExpr *E, const CScope &Scope);

  /// The abstract cell describing the *value* of a pointer expression:
  /// its points-to target is what the pointer may reference.
  CellId valueCell(const CExpr *E, const CScope &Scope);

  /// The (representative of the) points-to target of \p Cell, or NoCell.
  CellId pointsTo(CellId Cell);

  /// Representative lookup; two cells may alias iff their representatives
  /// are equal.
  CellId find(CellId Cell);
  bool mayAlias(CellId A, CellId B) { return find(A) == find(B); }

  /// Human-readable description of a cell's equivalence class, e.g.
  /// "{main::p, heap@3:10}". For diagnostics and tests.
  std::string describe(CellId Cell);

  /// All named variables whose storage landed in \p Cell's class. MIXY
  /// uses this to restore aliasing relationships when transitioning from
  /// symbolic to typed blocks (Section 4.2).
  std::vector<std::pair<const CFuncDecl *, std::string>>
  variablesInClass(CellId Cell);

  /// Number of cells allocated (an imprecision metric for benches).
  unsigned numCells() const { return (unsigned)Parents.size() - 1; }

private:
  CellId freshCell(std::string Description);
  void unify(CellId A, CellId B);
  /// The assignment rule: merges the points-to targets of two value
  /// cells (creating them if absent), leaving the cells distinct.
  void unifyValues(CellId A, CellId B);
  /// Ensures \p Cell has a points-to target, creating a fresh one if
  /// needed.
  CellId targetOf(CellId Cell);

  void analyzeFunction(const CFuncDecl *F);
  void analyzeStmt(const CStmt *S, CScope &Scope);
  /// Constraint-generating evaluation; returns the value cell of \p E.
  CellId eval(const CExpr *E, const CScope &Scope);
  void handleCall(const CCall *Call, const CScope &Scope, CellId &RetOut);

  /// Per-function signature cells, used for both direct and
  /// function-pointer calls.
  struct FuncSig {
    std::vector<CellId> Params;
    CellId Ret = NoCell;
  };
  FuncSig &signatureOf(const CFuncDecl *F);

  const CProgram &Program;
  CSema Sema;

  // Union-find state. Index 0 is unused (NoCell).
  std::vector<CellId> Parents;
  std::vector<CellId> Targets; // pts: representative -> target cell
  std::vector<std::string> Descriptions;

  std::map<std::pair<const CFuncDecl *, std::string>, CellId> VarCells;
  std::map<const CExpr *, CellId> MallocCells;
  std::map<const CFuncDecl *, CellId> FuncCells;
  std::map<const CFuncDecl *, FuncSig> FuncSigs;
  CellId StringCell = NoCell;
};

} // namespace mix::c

#endif // MIX_PTRANAL_POINTSTO_H
