//===--- PointsTo.cpp - Steensgaard may-points-to analysis -----------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "ptranal/PointsTo.h"

using namespace mix::c;

PointsToAnalysis::CellId PointsToAnalysis::freshCell(std::string Description) {
  if (Parents.empty()) {
    // Slot 0 is NoCell.
    Parents.push_back(0);
    Targets.push_back(NoCell);
    Descriptions.push_back("<none>");
  }
  CellId Id = (CellId)Parents.size();
  Parents.push_back(Id);
  Targets.push_back(NoCell);
  Descriptions.push_back(std::move(Description));
  return Id;
}

PointsToAnalysis::CellId PointsToAnalysis::find(CellId Cell) {
  if (Cell == NoCell)
    return NoCell;
  while (Parents[Cell] != Cell) {
    Parents[Cell] = Parents[Parents[Cell]];
    Cell = Parents[Cell];
  }
  return Cell;
}

void PointsToAnalysis::unify(CellId A, CellId B) {
  A = find(A);
  B = find(B);
  if (A == B || A == NoCell || B == NoCell)
    return;
  // Union by making A the representative; then merge targets, which may
  // cascade (the hallmark of Steensgaard's algorithm).
  Parents[B] = A;
  CellId TA = find(Targets[A]);
  CellId TB = find(Targets[B]);
  if (TA == NoCell)
    Targets[A] = TB;
  else if (TB != NoCell)
    unify(TA, TB);
}

PointsToAnalysis::CellId PointsToAnalysis::pointsTo(CellId Cell) {
  Cell = find(Cell);
  if (Cell == NoCell)
    return NoCell;
  return find(Targets[Cell]);
}

PointsToAnalysis::CellId PointsToAnalysis::targetOf(CellId Cell) {
  Cell = find(Cell);
  assert(Cell != NoCell && "targetOf(NoCell)");
  if (find(Targets[Cell]) == NoCell)
    Targets[Cell] = freshCell("*" + Descriptions[Cell]);
  return find(Targets[Cell]);
}

void PointsToAnalysis::unifyValues(CellId A, CellId B) {
  // Steensgaard assignment rule x = y: the *targets* of the two value
  // cells merge; the cells themselves stay distinct storage.
  if (A == NoCell || B == NoCell)
    return;
  unify(targetOf(A), targetOf(B));
}

PointsToAnalysis::CellId
PointsToAnalysis::cellOfVar(const CFuncDecl *Func, const std::string &Name) {
  auto Key = std::make_pair(Func, Name);
  auto It = VarCells.find(Key);
  if (It != VarCells.end())
    return find(It->second);
  std::string Description =
      Func ? Func->name() + "::" + Name : "global::" + Name;
  CellId Id = freshCell(std::move(Description));
  VarCells[Key] = Id;
  return Id;
}

PointsToAnalysis::FuncSig &PointsToAnalysis::signatureOf(const CFuncDecl *F) {
  auto It = FuncSigs.find(F);
  if (It != FuncSigs.end())
    return It->second;
  FuncSig Sig;
  for (const auto &P : F->params())
    Sig.Params.push_back(cellOfVar(F, P.Name));
  Sig.Ret = freshCell(F->name() + "::<return>");
  return FuncSigs.emplace(F, std::move(Sig)).first->second;
}

void PointsToAnalysis::run() {
  // Two passes: unification is idempotent, and the second pass lets
  // indirect-call constraints see address-taken functions discovered
  // later in program order.
  for (int Pass = 0; Pass != 2; ++Pass) {
    for (const CGlobalDecl *G : Program.Globals) {
      if (!G->init())
        continue;
      CScope Empty;
      CellId V = eval(G->init(), Empty);
      if (V != NoCell)
        unifyValues(cellOfVar(nullptr, G->name()), V);
    }
    for (const CFuncDecl *F : Program.Funcs)
      if (F->isDefined())
        analyzeFunction(F);
  }
}

void PointsToAnalysis::analyzeFunction(const CFuncDecl *F) {
  signatureOf(F);
  CScope Scope = CScope::forFunction(F);
  analyzeStmt(F->body(), Scope);
}

void PointsToAnalysis::analyzeStmt(const CStmt *S, CScope &Scope) {
  switch (S->kind()) {
  case CStmtKind::Expr:
    eval(cast<CExprStmt>(S)->expr(), Scope);
    return;
  case CStmtKind::Decl: {
    const auto *D = cast<CDeclStmt>(S);
    Scope.Locals[D->name()] = D->type();
    CellId Var = cellOfVar(Scope.Func, D->name());
    if (D->init()) {
      CellId V = eval(D->init(), Scope);
      unifyValues(Var, V);
    }
    return;
  }
  case CStmtKind::If: {
    const auto *I = cast<CIfStmt>(S);
    eval(I->cond(), Scope);
    CScope ThenScope = Scope;
    analyzeStmt(I->thenStmt(), ThenScope);
    if (I->elseStmt()) {
      CScope ElseScope = Scope;
      analyzeStmt(I->elseStmt(), ElseScope);
    }
    return;
  }
  case CStmtKind::While: {
    const auto *W = cast<CWhileStmt>(S);
    eval(W->cond(), Scope);
    CScope BodyScope = Scope;
    analyzeStmt(W->body(), BodyScope);
    return;
  }
  case CStmtKind::Return: {
    const auto *R = cast<CReturnStmt>(S);
    if (R->value()) {
      CellId V = eval(R->value(), Scope);
      unifyValues(signatureOf(Scope.Func).Ret, V);
    }
    return;
  }
  case CStmtKind::Block:
    for (const CStmt *Sub : cast<CBlockStmt>(S)->stmts())
      analyzeStmt(Sub, Scope);
    return;
  }
}

PointsToAnalysis::CellId
PointsToAnalysis::cellOfLValue(const CExpr *E, const CScope &Scope) {
  switch (E->kind()) {
  case CExprKind::Ident:
    return cellOfVar(Scope.Func && Scope.Locals.count(cast<CIdent>(E)->name())
                         ? Scope.Func
                         : nullptr,
                     cast<CIdent>(E)->name());
  case CExprKind::Unary: {
    const auto *U = cast<CUnary>(E);
    if (U->op() == CUnaryOp::Deref)
      return targetOf(eval(U->sub(), Scope));
    return NoCell;
  }
  case CExprKind::Member: {
    const auto *M = cast<CMember>(E);
    // Field-insensitive: a member shares its aggregate's cell; an arrow
    // dereferences the base pointer first.
    if (M->isArrow())
      return targetOf(eval(M->base(), Scope));
    return cellOfLValue(M->base(), Scope);
  }
  default:
    return NoCell;
  }
}

void PointsToAnalysis::handleCall(const CCall *Call, const CScope &Scope,
                                  CellId &RetOut) {
  // malloc: one heap cell per syntactic site.
  if (const auto *Id = dyn_cast<CIdent>(Call->callee()))
    if (Id->name() == "malloc" && !Program.findFunc("malloc")) {
      auto It = MallocCells.find(Call);
      if (It == MallocCells.end()) {
        CellId Heap = freshCell("heap@" + Call->loc().str());
        CellId Value = freshCell("&heap@" + Call->loc().str());
        unify(targetOf(Value), Heap);
        It = MallocCells.emplace(Call, Value).first;
      }
      for (const CExpr *Arg : Call->args())
        eval(Arg, Scope);
      RetOut = It->second;
      return;
    }

  std::vector<CellId> ArgCells;
  for (const CExpr *Arg : Call->args())
    ArgCells.push_back(eval(Arg, Scope));

  if (const CFuncDecl *F = Sema.directCallee(Call)) {
    FuncSig &Sig = signatureOf(F);
    for (size_t I = 0; I != ArgCells.size() && I != Sig.Params.size(); ++I)
      unifyValues(Sig.Params[I], ArgCells[I]);
    RetOut = find(Sig.Ret);
    return;
  }

  // Indirect call: bind arguments to the parameters of every function
  // whose cell the callee expression may denote. Depending on syntax the
  // callee evaluates either to the function cell itself ((*fp)(...)) or
  // to a pointer holding it (fp(...)), so match at both levels.
  CellId CalleeValue = eval(Call->callee(), Scope);
  if (CalleeValue == NoCell)
    return;
  CellId Direct = find(CalleeValue);
  CellId Indirect = pointsTo(CalleeValue);
  for (auto &[F, Cell] : FuncCells) {
    CellId FnCell = find(Cell);
    if (FnCell != Direct && FnCell != Indirect)
      continue;
    FuncSig &Sig = signatureOf(F);
    for (size_t I = 0; I != ArgCells.size() && I != Sig.Params.size(); ++I)
      unifyValues(Sig.Params[I], ArgCells[I]);
    RetOut = find(Sig.Ret);
  }
}

PointsToAnalysis::CellId PointsToAnalysis::eval(const CExpr *E,
                                                const CScope &Scope) {
  switch (E->kind()) {
  case CExprKind::IntLit:
  case CExprKind::SizeOf:
  case CExprKind::NullLit:
    return NoCell; // no pointer content
  case CExprKind::StrLit: {
    if (StringCell == NoCell) {
      StringCell = freshCell("&<strings>");
      unify(targetOf(StringCell), freshCell("<strings>"));
    }
    return StringCell;
  }
  case CExprKind::Ident: {
    const auto *Id = cast<CIdent>(E);
    // A function name used as a value denotes its address.
    if (!Scope.Locals.count(Id->name()) &&
        !Program.findGlobal(Id->name())) {
      if (const CFuncDecl *F = Program.findFunc(Id->name())) {
        auto It = FuncCells.find(F);
        if (It == FuncCells.end()) {
          CellId FnCell = freshCell("<fn " + F->name() + ">");
          It = FuncCells.emplace(F, FnCell).first;
        }
        CellId Value = freshCell("&" + F->name());
        unify(targetOf(Value), It->second);
        return Value;
      }
    }
    return cellOfVar(Scope.Locals.count(Id->name()) ? Scope.Func : nullptr,
                     Id->name());
  }
  case CExprKind::Unary: {
    const auto *U = cast<CUnary>(E);
    switch (U->op()) {
    case CUnaryOp::Deref:
      return targetOf(eval(U->sub(), Scope));
    case CUnaryOp::AddrOf: {
      CellId Storage = cellOfLValue(U->sub(), Scope);
      if (Storage == NoCell)
        return NoCell;
      CellId Value = freshCell("&" + Descriptions[find(Storage)]);
      unify(targetOf(Value), Storage);
      return Value;
    }
    case CUnaryOp::Not:
    case CUnaryOp::Neg:
      eval(U->sub(), Scope);
      return NoCell;
    }
    return NoCell;
  }
  case CExprKind::Binary: {
    const auto *B = cast<CBinary>(E);
    CellId L = eval(B->lhs(), Scope);
    CellId R = eval(B->rhs(), Scope);
    // Pointer arithmetic keeps pointing into the same object.
    if (B->op() == CBinaryOp::Add || B->op() == CBinaryOp::Sub) {
      if (L != NoCell)
        return L;
      return R;
    }
    return NoCell;
  }
  case CExprKind::Assign: {
    const auto *A = cast<CAssign>(E);
    CellId Target = cellOfLValue(A->target(), Scope);
    CellId Value = eval(A->value(), Scope);
    unifyValues(Target, Value);
    return Target;
  }
  case CExprKind::Call: {
    CellId Ret = NoCell;
    handleCall(cast<CCall>(E), Scope, Ret);
    return Ret;
  }
  case CExprKind::Member:
    return cellOfLValue(E, Scope);
  case CExprKind::Cast:
    return eval(cast<CCast>(E)->sub(), Scope);
  }
  return NoCell;
}

PointsToAnalysis::CellId PointsToAnalysis::valueCell(const CExpr *E,
                                                     const CScope &Scope) {
  return find(eval(E, Scope));
}

std::string PointsToAnalysis::describe(CellId Cell) {
  Cell = find(Cell);
  if (Cell == NoCell)
    return "{}";
  std::string Out = "{";
  bool First = true;
  for (const auto &[Key, Id] : VarCells) {
    if (find(Id) != Cell)
      continue;
    if (!First)
      Out += ", ";
    Out += Key.first ? Key.first->name() + "::" + Key.second
                     : "global::" + Key.second;
    First = false;
  }
  if (First)
    Out += Descriptions[Cell];
  Out += "}";
  return Out;
}

std::vector<std::pair<const CFuncDecl *, std::string>>
PointsToAnalysis::variablesInClass(CellId Cell) {
  Cell = find(Cell);
  std::vector<std::pair<const CFuncDecl *, std::string>> Out;
  for (const auto &[Key, Id] : VarCells)
    if (find(Id) == Cell)
      Out.push_back(Key);
  return Out;
}
