//===--- TypeChecker.h - Type checker for the core language -----*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "entirely standard" type checker of Section 3.1, proving judgments
/// Gamma |- e : tau. It is deliberately an off-the-shelf checker: the only
/// MIX-specific element is a single hook, SymBlockOracle, through which
/// the TSymBlock mix rule delegates symbolic blocks `{s e s}` to the
/// symbolic executor. Run without an oracle, the checker rejects symbolic
/// blocks — that is "type checking alone".
///
//===----------------------------------------------------------------------===//

#ifndef MIX_TYPES_TYPECHECKER_H
#define MIX_TYPES_TYPECHECKER_H

#include "lang/Ast.h"
#include "support/Diagnostics.h"

#include <map>
#include <string>

namespace mix {

/// A typing environment Gamma: program variables to types.
using TypeEnv = std::map<std::string, const Type *>;

/// The hook by which the type checker "type checks" a symbolic block —
/// the TSymBlock rule of Figure 4. The MIX driver implements this by
/// running the symbolic executor; see mix/MixChecker.h.
class SymBlockOracle {
public:
  virtual ~SymBlockOracle() = default;

  /// Returns the type of `{s e s}` under \p Gamma, or null after reporting
  /// diagnostics when the block fails to check.
  virtual const Type *typeOfSymbolicBlock(const BlockExpr *Block,
                                          const TypeEnv &Gamma) = 0;
};

/// Checks expressions of the core language against Figure 1's type system.
class TypeChecker {
public:
  TypeChecker(TypeContext &Types, DiagnosticEngine &Diags)
      : Types(Types), Diags(Diags) {}

  /// Installs the mix hook for symbolic blocks (may be null).
  void setSymBlockOracle(SymBlockOracle *Oracle) { SymOracle = Oracle; }

  /// Derives Gamma |- e : tau; returns tau, or null after reporting a
  /// diagnostic when no derivation exists.
  const Type *check(const Expr *E, const TypeEnv &Gamma);

  TypeContext &types() { return Types; }
  DiagnosticEngine &diags() { return Diags; }

private:
  const Type *error(SourceLoc Loc, const std::string &Message);

  TypeContext &Types;
  DiagnosticEngine &Diags;
  SymBlockOracle *SymOracle = nullptr;
};

} // namespace mix

#endif // MIX_TYPES_TYPECHECKER_H
