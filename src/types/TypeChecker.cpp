//===--- TypeChecker.cpp - Type checker for the core language -------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "types/TypeChecker.h"

using namespace mix;

const Type *TypeChecker::error(SourceLoc Loc, const std::string &Message) {
  Diags.error(Loc, Message, DiagID::TypeError);
  return nullptr;
}

const Type *TypeChecker::check(const Expr *E, const TypeEnv &Gamma) {
  switch (E->kind()) {
  case ExprKind::Var: {
    const auto *V = cast<VarExpr>(E);
    auto It = Gamma.find(V->name());
    if (It == Gamma.end())
      return error(E->loc(), "unbound variable '" + V->name() + "'");
    return It->second;
  }
  case ExprKind::IntLit:
    return Types.intType();
  case ExprKind::BoolLit:
    return Types.boolType();
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    const Type *L = check(B->lhs(), Gamma);
    const Type *R = check(B->rhs(), Gamma);
    if (!L || !R)
      return nullptr;
    switch (B->op()) {
    case BinaryOp::Add:
    case BinaryOp::Sub:
      if (!L->isInt() || !R->isInt())
        return error(E->loc(), std::string("operator '") +
                                   binaryOpSpelling(B->op()) +
                                   "' requires int operands, got " +
                                   L->str() + " and " + R->str());
      return Types.intType();
    case BinaryOp::Lt:
    case BinaryOp::Le:
      if (!L->isInt() || !R->isInt())
        return error(E->loc(), std::string("operator '") +
                                   binaryOpSpelling(B->op()) +
                                   "' requires int operands, got " +
                                   L->str() + " and " + R->str());
      return Types.boolType();
    case BinaryOp::Eq:
      if (L != R || !(L->isInt() || L->isBool()))
        return error(E->loc(), "operator '=' requires two ints or two "
                               "bools, got " +
                                   L->str() + " and " + R->str());
      return Types.boolType();
    case BinaryOp::And:
    case BinaryOp::Or:
      if (!L->isBool() || !R->isBool())
        return error(E->loc(), std::string("operator '") +
                                   binaryOpSpelling(B->op()) +
                                   "' requires bool operands, got " +
                                   L->str() + " and " + R->str());
      return Types.boolType();
    }
    return nullptr;
  }
  case ExprKind::Not: {
    const Type *T = check(cast<NotExpr>(E)->sub(), Gamma);
    if (!T)
      return nullptr;
    if (!T->isBool())
      return error(E->loc(), "'not' requires a bool operand, got " +
                                 T->str());
    return Types.boolType();
  }
  case ExprKind::If: {
    const auto *I = cast<IfExpr>(E);
    const Type *C = check(I->cond(), Gamma);
    if (!C)
      return nullptr;
    if (!C->isBool())
      return error(I->cond()->loc(),
                   "condition must be bool, got " + C->str());
    const Type *T = check(I->thenExpr(), Gamma);
    const Type *F = check(I->elseExpr(), Gamma);
    if (!T || !F)
      return nullptr;
    if (T != F)
      return error(E->loc(), "branches of 'if' have different types: " +
                                 T->str() + " vs " + F->str());
    return T;
  }
  case ExprKind::Let: {
    const auto *L = cast<LetExpr>(E);
    const Type *Init = check(L->init(), Gamma);
    if (!Init)
      return nullptr;
    if (L->declaredType() && L->declaredType() != Init)
      return error(E->loc(), "let binding declares " +
                                 L->declaredType()->str() +
                                 " but initializer has type " + Init->str());
    TypeEnv Extended = Gamma;
    Extended[L->name()] = Init;
    return check(L->body(), Extended);
  }
  case ExprKind::Ref: {
    const Type *T = check(cast<RefExpr>(E)->sub(), Gamma);
    if (!T)
      return nullptr;
    return Types.refType(T);
  }
  case ExprKind::Deref: {
    const Type *T = check(cast<DerefExpr>(E)->sub(), Gamma);
    if (!T)
      return nullptr;
    if (!T->isRef())
      return error(E->loc(), "'!' requires a reference, got " + T->str());
    return T->pointee();
  }
  case ExprKind::Assign: {
    const auto *A = cast<AssignExpr>(E);
    const Type *Target = check(A->target(), Gamma);
    const Type *Value = check(A->value(), Gamma);
    if (!Target || !Value)
      return nullptr;
    if (!Target->isRef())
      return error(E->loc(),
                   "':=' requires a reference target, got " + Target->str());
    if (Target->pointee() != Value)
      return error(E->loc(), "assignment of " + Value->str() +
                                 " to reference of " +
                                 Target->pointee()->str());
    return Value;
  }
  case ExprKind::Seq: {
    const auto *S = cast<SeqExpr>(E);
    if (!check(S->first(), Gamma))
      return nullptr;
    return check(S->second(), Gamma);
  }
  case ExprKind::Block: {
    const auto *B = cast<BlockExpr>(E);
    if (B->blockKind() == BlockKind::Typed)
      return check(B->body(), Gamma); // typed-in-typed passes through
    if (!SymOracle)
      return error(E->loc(), "symbolic block is not allowed here (no "
                             "symbolic executor attached)");
    return SymOracle->typeOfSymbolicBlock(B, Gamma);
  }
  case ExprKind::Fun: {
    const auto *F = cast<FunExpr>(E);
    TypeEnv Extended = Gamma;
    Extended[F->param()] = F->paramType();
    const Type *Body = check(F->body(), Extended);
    if (!Body)
      return nullptr;
    if (Body != F->resultType())
      return error(E->loc(), "function body has type " + Body->str() +
                                 " but declares result type " +
                                 F->resultType()->str());
    return Types.funType(F->paramType(), F->resultType());
  }
  case ExprKind::App: {
    const auto *A = cast<AppExpr>(E);
    const Type *Fn = check(A->fn(), Gamma);
    const Type *Arg = check(A->arg(), Gamma);
    if (!Fn || !Arg)
      return nullptr;
    if (!Fn->isFun())
      return error(E->loc(),
                   "application of a non-function of type " + Fn->str());
    if (Fn->param() != Arg)
      return error(E->loc(), "argument has type " + Arg->str() +
                                 " but function expects " +
                                 Fn->param()->str());
    return Fn->result();
  }
  }
  return error(E->loc(), "unhandled expression form");
}
