//===--- ConcolicCore.h - Shared machinery of the concolic core -*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine-independent heart of the compiled concolic interpreters.
/// Both bytecode dialects (ir::IrFunction for the core expression
/// language, ir::CIrFunction for mini-C) pair a flat instruction stream
/// with Region::Spans, and both interpreters replay their AST engine's
/// nested continuation order the same way: when an instruction yields
/// several outcomes, every span enclosing it contributes a barrier at
/// its end — the innermost enclosing node's remaining instructions run
/// for all outcomes (in order) before the next level out. What differs
/// per engine is only the memory model behind `Run` (register shadows +
/// SymState vs. CSymState cells), which is exactly the adapter seam.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_CONCOLIC_CONCOLICCORE_H
#define MIX_CONCOLIC_CONCOLICCORE_H

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace mix::concolic {

/// Resumes execution after the multi-outcome instruction at index \p I,
/// running the outcomes \p Outs barrier-by-barrier to \p End. \p Spans
/// are the enclosing region's node spans (plus any synthetic prefix
/// spans); \p Run executes one outcome over a half-open instruction
/// range: `Run(Outcome, From, To) -> std::vector<Outcome>`. Outcomes
/// with IsError set skip the work but keep their list position, exactly
/// as the AST engines propagate errors through `andThen`.
///
/// The caller handles the single-outcome fast path (resume directly, no
/// barrier is observable) before calling this.
template <class Outcome, class RunSeg>
std::vector<Outcome>
continueWithBarriers(const std::vector<std::pair<uint32_t, uint32_t>> &Spans,
                     size_t I, size_t End, std::vector<Outcome> Outs,
                     RunSeg Run) {
  std::vector<size_t> Barriers;
  for (const auto &[Start, SpanEnd] : Spans)
    if (Start <= I && I < SpanEnd && SpanEnd > I + 1 && SpanEnd < End)
      Barriers.push_back(SpanEnd);
  std::sort(Barriers.begin(), Barriers.end());
  Barriers.erase(std::unique(Barriers.begin(), Barriers.end()),
                 Barriers.end());
  Barriers.push_back(End);

  std::vector<Outcome> Cur = std::move(Outs);
  size_t Pos = I + 1;
  for (size_t Barrier : Barriers) {
    std::vector<Outcome> Next;
    for (Outcome &O : Cur) {
      if (O.IsError) {
        Next.push_back(std::move(O));
        continue;
      }
      std::vector<Outcome> Rest = Run(std::move(O), Pos, Barrier);
      for (Outcome &Nx : Rest)
        Next.push_back(std::move(Nx));
    }
    Cur = std::move(Next);
    Pos = Barrier;
  }
  return Cur;
}

} // namespace mix::concolic

#endif // MIX_CONCOLIC_CONCOLICCORE_H
