//===--- CIrExecutor.cpp - Concolic interpreter for mini-C bodies ---------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
//
// Every opcode here is a transcription of the matching CSymExecutor AST
// case (resolveLValue / evalExpr / evalCall / execStmt / execWhile). The
// porting rule is byte-identity: the same warnings in the same order,
// the same fresh terms and objects in the same order, the same trail
// entries and budget trips. Where the walker's helper returns a
// completed flow vector before its caller continues, the bytecode's
// span barriers reproduce the synchronization (see ConcolicCore.h);
// where the walker drops a flow (dead path), the interpreter returns
// zero outcomes.
//
//===----------------------------------------------------------------------===//

#include "concolic/CIrExecutor.h"

#include "concolic/ConcolicCore.h"

#include <cassert>

using namespace mix;
using namespace mix::concolic;
using mix::c::CSymState;
using mix::c::CSymValue;
using mix::c::LocId;
using mix::c::PtrCase;
using mix::c::PtrTarget;
using mix::smt::Term;

CIrExecutor::CIrExecutor(c::CSymExecutor &Exec, obs::MetricsRegistry *Metrics,
                         obs::RequestTelemetry *Telemetry)
    : Exec(Exec), Telemetry(Telemetry) {
  if (Metrics) {
    CExecPaths = Metrics->counter("exec.paths");
    CLowerHits = Metrics->counter("ir.lower.hits");
    CLowerMisses = Metrics->counter("ir.lower.misses");
    CFallbackAst = Metrics->counter("exec.fallback.ast");
  }
}

const ir::CIrFunction *CIrExecutor::lowered(const c::CFuncDecl *Fn) {
  auto It = LoweredCache.find(Fn);
  if (It != LoweredCache.end()) {
    if (It->second)
      CLowerHits.inc();
    return It->second.get();
  }
  obs::PhaseTimer Timer(Telemetry, obs::Phase::IrLower);
  CLowerMisses.inc();
  std::unique_ptr<ir::CIrFunction> F = ir::lowerC(Fn, Exec.program());
  if (F)
    assert(ir::verifyC(*F).empty() &&
           "lowering produced ill-formed bytecode");
  const ir::CIrFunction *Ptr = F.get();
  LoweredCache.emplace(Fn, std::move(F));
  return Ptr;
}

bool CIrExecutor::runBody(const c::CFuncDecl *Fn, CSymState &State,
                          unsigned Depth, std::vector<CSymState> &Out) {
  const ir::CIrFunction *F = lowered(Fn);
  if (!F) {
    // Residual construct: fall back to the AST walker, loudly.
    CFallbackAst.inc();
    return false;
  }

  unsigned SavedDepth = CurDepth;
  const c::CFuncDecl *SavedFunc = CurFunc;
  CurDepth = Depth;
  CurFunc = Fn;

  std::vector<Outcome> Res =
      runSegment(*F, 0, std::vector<RegVal>(F->NumRegs), std::move(State),
                 0, F->Regions[0].Code.size());

  CurDepth = SavedDepth;
  CurFunc = SavedFunc;

  CExecPaths.add(Res.size());
  for (Outcome &O : Res)
    Out.push_back(std::move(O.S));
  return true;
}

std::vector<CIrExecutor::Outcome>
CIrExecutor::runRegion(const ir::CIrFunction &F, uint32_t R,
                       const std::vector<RegVal> &Regs, CSymState S) {
  return runSegment(F, R, Regs, std::move(S), 0, F.Regions[R].Code.size());
}

std::vector<CIrExecutor::Outcome>
CIrExecutor::continueSegment(const ir::CIrFunction &F, uint32_t R, size_t I,
                             uint32_t Dst, std::vector<Outcome> Outs,
                             size_t End) {
  if (Dst != ir::CNoReg)
    for (Outcome &O : Outs)
      O.Regs[Dst] = O.Value;

  // One outcome resumes directly — no barrier is observable.
  if (Outs.size() == 1)
    return runSegment(F, R, std::move(Outs[0].Regs), std::move(Outs[0].S),
                      I + 1, End);

  return continueWithBarriers(
      F.Regions[R].Spans, I, End, std::move(Outs),
      [&](Outcome O, size_t From, size_t To) {
        return runSegment(F, R, std::move(O.Regs), std::move(O.S), From, To);
      });
}

std::vector<CIrExecutor::Outcome>
CIrExecutor::runSegment(const ir::CIrFunction &F, uint32_t R,
                        std::vector<RegVal> Regs, CSymState S, size_t From,
                        size_t End) {
  smt::TermArena &T = Exec.terms();
  const c::CProgram &Program = Exec.program();

  for (size_t I = From; I < End; ++I) {
    const ir::CInstr &In = F.Regions[R].Code[I];
    switch (In.Op) {
    case ir::COpcode::CStmtEntry: {
      // execStmt's entry checks: returned states pass through, path
      // budget trips mark the run incomplete; both skip the statement.
      if (S.Returned) {
        assert((size_t)In.Imm <= End && "skip target crosses a barrier");
        I = (size_t)In.Imm - 1;
        break;
      }
      if (Exec.pathBudgetExceeded()) {
        Exec.noteIncomplete();
        assert((size_t)In.Imm <= End && "skip target crosses a barrier");
        I = (size_t)In.Imm - 1;
        break;
      }
      break;
    }
    case ir::COpcode::CConstInt:
      Regs[In.Dst] = val(CSymValue::scalar(T.intConst(In.Imm)));
      break;
    case ir::COpcode::CStr: {
      LocId Obj = Exec.newObject(Exec.context().charType(), "<string>");
      Regs[In.Dst] =
          val(CSymValue::pointerTo(T, PtrTarget::object(Obj)));
      break;
    }
    case ir::COpcode::CNull:
      Regs[In.Dst] = val(CSymValue::nullPointer(T));
      break;
    case ir::COpcode::CLoadIdent: {
      const std::string &Name = F.Names[In.Aux];
      // Function names decay to function pointers unless shadowed.
      if (!S.Locals.count(Name) && !Program.findGlobal(Name))
        if (const c::CFuncDecl *Fn = Program.findFunc(Name)) {
          Regs[In.Dst] =
              val(CSymValue::pointerTo(T, PtrTarget::function(Fn)));
          break;
        }
      LocId Loc = c::NoLoc;
      auto It = S.Locals.find(Name);
      if (It != S.Locals.end())
        Loc = It->second;
      else if (Program.findGlobal(Name))
        Loc = Exec.globalLoc(Name);
      if (Loc == c::NoLoc) {
        Exec.warn(In.Loc, "unknown variable '" + Name + "'");
        return {}; // the walker drops this flow: the path dies
      }
      Regs[In.Dst] = val(Exec.readCell(S, Loc, ""));
      break;
    }
    case ir::COpcode::CLValIdent: {
      const std::string &Name = F.Names[In.Aux];
      LocId Loc = c::NoLoc;
      auto It = S.Locals.find(Name);
      if (It != S.Locals.end())
        Loc = It->second;
      else if (Program.findGlobal(Name))
        Loc = Exec.globalLoc(Name);
      if (Loc == c::NoLoc) {
        Exec.warn(In.Loc, "unknown variable '" + Name + "'");
        return {};
      }
      Regs[In.Dst] = cells({{T.trueTerm(), Loc, ""}});
      break;
    }
    case ir::COpcode::CLValDeref:
    case ir::COpcode::CLValArrow: {
      const CSymValue &V = Regs[In.A].V;
      bool Arrow = In.Op == ir::COpcode::CLValArrow;
      if (!V.isPtr()) {
        Exec.warn(In.Loc, Arrow ? "'->' on a non-pointer value"
                                : "dereference of a non-pointer value");
        return {};
      }
      if (Exec.options().CheckDereferences) {
        Exec.noteNullCheck();
        const Term *NullG = V.nullGuard(T);
        if (Exec.feasibleWith(S, NullG))
          Exec.warn(In.Loc, "possible null dereference", &S,
                    T.andTerm(S.Path, NullG));
      }
      // Continue under the assumption the dereference survived.
      Exec.extendPath(S, V.nonNullGuard(T));
      if (!Exec.feasible(S))
        return {}; // definitely null: this path dies here
      std::vector<c::CSymExecutor::LVal> Cs;
      for (const PtrCase &C : V.cases()) {
        if (C.Target.K != PtrTarget::Kind::Object)
          continue;
        if (!Arrow) {
          Cs.push_back({C.Guard, C.Target.Loc, C.Target.Field});
          continue;
        }
        const std::string &Fld = F.Names[In.Aux];
        std::string Field =
            C.Target.Field.empty() ? Fld : C.Target.Field + "." + Fld;
        Cs.push_back({C.Guard, C.Target.Loc, std::move(Field)});
      }
      Regs[In.Dst] = cells(std::move(Cs));
      break;
    }
    case ir::COpcode::CLValField: {
      // base.field: extend the base cells' field paths.
      std::vector<c::CSymExecutor::LVal> Cs = Regs[In.A].Cells;
      const std::string &Fld = F.Names[In.Aux];
      for (c::CSymExecutor::LVal &Cell : Cs)
        Cell.Field =
            Cell.Field.empty() ? Fld : Cell.Field + "." + Fld;
      Regs[In.Dst] = cells(std::move(Cs));
      break;
    }
    case ir::COpcode::CReadMerged: {
      const std::vector<c::CSymExecutor::LVal> &Cs = Regs[In.A].Cells;
      if (Cs.empty())
        return {}; // the walker skips empty-cell resolutions
      CSymValue Acc = Exec.readCell(S, Cs[0].Loc, Cs[0].Field);
      for (size_t K = 1; K != Cs.size(); ++K) {
        CSymValue Next = Exec.readCell(S, Cs[K].Loc, Cs[K].Field);
        if (Next.kind() == Acc.kind())
          Acc = CSymValue::ite(T, Cs[K].Guard, Next, Acc);
      }
      Regs[In.Dst] = val(std::move(Acc));
      break;
    }
    case ir::COpcode::CDerefRead: {
      const CSymValue &V = Regs[In.A].V;
      // Functions decay: *f is f for function-pointer values.
      if (V.isPtr()) {
        bool IsFnPtr = false;
        for (const PtrCase &C : V.cases())
          if (C.Target.K == PtrTarget::Kind::Function ||
              C.Target.K == PtrTarget::Kind::UnknownFn)
            IsFnPtr = true;
        if (IsFnPtr) {
          Regs[In.Dst] = val(V);
          break;
        }
      }
      if (!V.isPtr()) {
        Exec.warn(In.Loc, "dereference of a non-pointer value");
        return {};
      }
      // Reading through a data pointer: null check, then merge the
      // possible cells' contents.
      if (Exec.options().CheckDereferences) {
        Exec.noteNullCheck();
        const Term *NullG = V.nullGuard(T);
        if (Exec.feasibleWith(S, NullG))
          Exec.warn(In.Loc, "possible null dereference", &S,
                    T.andTerm(S.Path, NullG));
      }
      Exec.extendPath(S, V.nonNullGuard(T));
      if (!Exec.feasible(S))
        return {};
      CSymValue Acc;
      bool First = true;
      for (const PtrCase &C : V.cases()) {
        if (C.Target.K != PtrTarget::Kind::Object)
          continue;
        CSymValue Next = Exec.readCell(S, C.Target.Loc, C.Target.Field);
        if (First) {
          Acc = std::move(Next);
          First = false;
        } else if (Next.kind() == Acc.kind()) {
          Acc = CSymValue::ite(T, C.Guard, Next, Acc);
        }
      }
      if (First)
        return {}; // no object target: nothing to read
      Regs[In.Dst] = val(std::move(Acc));
      break;
    }
    case ir::COpcode::CAddrOf: {
      std::vector<PtrCase> Cases;
      for (const c::CSymExecutor::LVal &Cell : Regs[In.A].Cells)
        Cases.push_back(
            {Cell.Guard, PtrTarget::object(Cell.Loc, Cell.Field)});
      if (Cases.empty())
        return {};
      Regs[In.Dst] = val(CSymValue::pointer(std::move(Cases)));
      break;
    }
    case ir::COpcode::CNot:
      Regs[In.Dst] =
          val(CSymValue::scalar(T.notTerm(Exec.truthTerm(Regs[In.A].V))));
      break;
    case ir::COpcode::CNeg:
      Regs[In.Dst] =
          val(CSymValue::scalar(T.neg(Exec.intTerm(Regs[In.A].V))));
      break;
    case ir::COpcode::CBinOp:
      Regs[In.Dst] =
          val(Exec.evalBinaryValues(In.BOp, Regs[In.A].V, Regs[In.B].V));
      break;
    case ir::COpcode::CStoreCells:
      Exec.writeCells(S, Regs[In.A].Cells, Regs[In.B].V);
      break;
    case ir::COpcode::CMalloc: {
      const c::CType *Pointee = In.Ty;
      if (!Pointee || Pointee->isVoid())
        Pointee = Exec.context().intType();
      LocId Obj = Exec.newObject(Pointee, F.Names[In.Aux]);
      Regs[In.Dst] =
          val(CSymValue::pointerTo(T, PtrTarget::object(Obj)));
      break;
    }
    case ir::COpcode::CDeclLocal: {
      LocId Loc = Exec.newObject(In.Ty, F.Names[In.Aux2]);
      S.Locals[F.Names[In.Aux]] = Loc;
      S.LocalTypes[F.Names[In.Aux]] = In.Ty;
      Regs[In.Dst] = cells({{T.trueTerm(), Loc, ""}});
      break;
    }
    case ir::COpcode::CInitLocal: {
      // Strong update of the freshly declared cell.
      const c::CSymExecutor::LVal &Cell = Regs[In.A].Cells[0];
      S.Store.set({Cell.Loc, Cell.Field}, Regs[In.B].V);
      break;
    }
    case ir::COpcode::CCall:
      return continueSegment(F, R, I, In.Dst,
                             execCall(F, R, I, Regs, std::move(S), End),
                             End);
    case ir::COpcode::CBranch:
      return execBranch(F, R, I, std::move(Regs), std::move(S), End);
    case ir::COpcode::CLoop:
      return execLoop(F, R, I, std::move(Regs), std::move(S), End);
    case ir::COpcode::CReturn: {
      S.Returned = true;
      S.RetValue = In.A == ir::CNoReg
                       ? CSymValue::scalar(T.intConst(0))
                       : Regs[In.A].V;
      break;
    }
    }
  }

  // Fall-through at End.
  Outcome O;
  O.S = std::move(S);
  O.Regs = std::move(Regs);
  std::vector<Outcome> Res;
  Res.push_back(std::move(O));
  return Res;
}

std::vector<CIrExecutor::Outcome>
CIrExecutor::execCall(const ir::CIrFunction &F, uint32_t R, size_t I,
                      const std::vector<RegVal> &Regs, CSymState S,
                      size_t End) {
  (void)End;
  const ir::CInstr &In = F.Regions[R].Code[I];

  std::vector<CSymValue> Args;
  Args.reserve(In.ArgsCount);
  for (uint32_t K = 0; K < In.ArgsCount; ++K)
    Args.push_back(Regs[F.ArgRegs[In.ArgsBegin + K]].V);

  c::CSymExecutor::Frame Frame;
  Frame.Func = CurFunc;
  Frame.Depth = CurDepth;

  std::vector<c::CSymExecutor::Flow> Flows;
  if (In.Callee) {
    Exec.dispatchCall(In.CallNode, In.Callee, Args, std::move(S), Frame,
                      Flows);
  } else {
    // Indirect call: fork per feasible callee-pointer target.
    const CSymValue &CV = Regs[In.A].V;
    if (!CV.isPtr()) {
      Exec.warn(In.Loc, "call through a non-pointer value");
      return {};
    }
    bool AnyTarget = false;
    for (const PtrCase &C : CV.cases()) {
      if (!Exec.feasibleWith(S, C.Guard))
        continue;
      CSymState Branch = S;
      Exec.extendPath(Branch, C.Guard);
      switch (C.Target.K) {
      case PtrTarget::Kind::Function:
        AnyTarget = true;
        Exec.dispatchCall(In.CallNode, C.Target.Fn, Args, std::move(Branch),
                          Frame, Flows);
        break;
      case PtrTarget::Kind::UnknownFn: {
        AnyTarget = true;
        Exec.warn(In.Loc,
                  "call through unknown function pointer cannot be "
                  "executed symbolically; consider MIX(typed)",
                  &Branch);
        Flows.push_back(
            Exec.externCall(In.CallNode, nullptr, Args, std::move(Branch)));
        break;
      }
      case PtrTarget::Kind::Null:
        Exec.warn(In.Loc, "possible call through null function pointer",
                  &Branch);
        break;
      case PtrTarget::Kind::Object:
        break;
      }
    }
    if (!AnyTarget)
      Exec.warn(In.Loc, "indirect call has no callable target");
  }

  std::vector<Outcome> Outs;
  Outs.reserve(Flows.size());
  for (c::CSymExecutor::Flow &Fl : Flows) {
    Outcome O;
    O.S = std::move(Fl.State);
    O.Regs = Regs;
    O.Value = val(std::move(Fl.Value));
    Outs.push_back(std::move(O));
  }
  return Outs;
}

std::vector<CIrExecutor::Outcome>
CIrExecutor::execBranch(const ir::CIrFunction &F, uint32_t R, size_t I,
                        std::vector<RegVal> Regs, CSymState S, size_t End) {
  smt::TermArena &T = Exec.terms();
  const ir::CInstr &In = F.Regions[R].Code[I];
  const Term *Cond = Exec.truthTerm(Regs[In.A].V);

  std::vector<Outcome> Outs;
  if (Exec.feasibleWith(S, Cond)) {
    Exec.notePathExplored();
    CSymState Then = S;
    Exec.extendPath(Then, Cond);
    if (Exec.options().Prov)
      Then.Trail.push_back({In.Loc2, "condition true"});
    for (Outcome &O : runRegion(F, In.R1, Regs, std::move(Then)))
      Outs.push_back(std::move(O));
  } else {
    Exec.noteForkPruned();
  }

  const Term *NotCond = T.notTerm(Cond);
  if (Exec.feasibleWith(S, NotCond)) {
    Exec.notePathExplored();
    CSymState Else = std::move(S);
    Exec.extendPath(Else, NotCond);
    if (Exec.options().Prov)
      Else.Trail.push_back({In.Loc2, "condition false"});
    if (In.R2 != ir::CNoRegion) {
      for (Outcome &O : runRegion(F, In.R2, Regs, std::move(Else)))
        Outs.push_back(std::move(O));
    } else {
      Outcome O;
      O.S = std::move(Else);
      O.Regs = std::move(Regs);
      Outs.push_back(std::move(O));
    }
  } else {
    Exec.noteForkPruned();
  }

  return continueSegment(F, R, I, ir::CNoReg, std::move(Outs), End);
}

std::vector<CIrExecutor::Outcome>
CIrExecutor::execLoop(const ir::CIrFunction &F, uint32_t R, size_t I,
                      std::vector<RegVal> Regs, CSymState S, size_t End) {
  smt::TermArena &T = Exec.terms();
  const ir::CInstr &In = F.Regions[R].Code[I];
  const ir::CRegion &CondR = F.Regions[In.R1];

  // Bounded unrolling, exactly as execWhile: each round forks on the
  // condition; paths still looping after the bound are kept (without the
  // exit constraint) and the run is flagged incomplete.
  std::vector<Outcome> Active;
  {
    Outcome A;
    A.S = std::move(S);
    A.Regs = std::move(Regs);
    Active.push_back(std::move(A));
  }
  std::vector<Outcome> Exited;

  for (unsigned Round = 0;
       Round != Exec.options().LoopBound && !Active.empty(); ++Round) {
    std::vector<Outcome> NextActive;
    for (Outcome &A : Active) {
      if (A.S.Returned) {
        Exited.push_back(std::move(A));
        continue;
      }
      for (Outcome &C : runRegion(F, In.R1, A.Regs, std::move(A.S))) {
        const Term *Cond = Exec.truthTerm(C.Regs[CondR.Result].V);
        const Term *NotCond = T.notTerm(Cond);
        if (Exec.feasibleWith(C.S, NotCond)) {
          Outcome Exit;
          Exit.S = C.S;
          Exit.Regs = C.Regs;
          Exec.extendPath(Exit.S, NotCond);
          if (Exec.options().Prov)
            Exit.S.Trail.push_back({In.Loc2, "loop exit"});
          Exited.push_back(std::move(Exit));
        }
        if (Exec.feasibleWith(C.S, Cond)) {
          CSymState Loop = std::move(C.S);
          Exec.extendPath(Loop, Cond);
          if (Exec.options().Prov)
            Loop.Trail.push_back({In.Loc2, "loop iteration"});
          for (Outcome &O : runRegion(F, In.R2, C.Regs, std::move(Loop)))
            NextActive.push_back(std::move(O));
        }
      }
    }
    Active = std::move(NextActive);
  }

  if (!Active.empty()) {
    Exec.noteIncomplete();
    for (Outcome &A : Active)
      Exited.push_back(std::move(A));
  }

  return continueSegment(F, R, I, ir::CNoReg, std::move(Exited), End);
}

std::unique_ptr<c::CBodyEngine>
concolic::makeCBodyEngine(c::CSymExecutor &Exec, SymExecOptions::Engine Mode,
                          obs::MetricsRegistry *Metrics,
                          obs::RequestTelemetry *Telemetry) {
  if (Mode == SymExecOptions::Engine::Ast)
    return nullptr;
  return std::make_unique<CIrExecutor>(Exec, Metrics, Telemetry);
}
