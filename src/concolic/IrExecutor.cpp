//===--- IrExecutor.cpp - Concolic interpreter over the bytecode ----------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "concolic/IrExecutor.h"

#include "concolic/ConcolicCore.h"
#include "symexec/Effects.h"
#include "symexec/MemCheck.h"

#include <algorithm>
#include <cassert>

using namespace mix;
using namespace mix::concolic;

IrExecutor::IrExecutor(SymArena &Arena, DiagnosticEngine &Diags,
                       SymExecOptions Opts)
    : Arena(Arena), Diags(Diags), Opts(Opts) {
  (void)this->Diags;
  if (Opts.Metrics) {
    CForks = Opts.Metrics->counter("sym.forks");
    CDefers = Opts.Metrics->counter("sym.defers");
    CHavocs = Opts.Metrics->counter("sym.havocs");
    CExecPaths = Opts.Metrics->counter("exec.paths");
    CBranchesConc = Opts.Metrics->counter("exec.branches.concrete");
    CTermsBuilt = Opts.Metrics->counter("exec.terms.built");
    CTermsGcd = Opts.Metrics->counter("exec.terms.gcd");
    CLowerHits = Opts.Metrics->counter("ir.lower.hits");
    CLowerMisses = Opts.Metrics->counter("ir.lower.misses");
    CFastpathHits = Opts.Metrics->counter("ir.lower.fastpath.hits");
    CFastpathMisses = Opts.Metrics->counter("ir.lower.fastpath.misses");
  }
}

void IrExecutor::setSolver(smt::ISolver *Solver, SymToSmt *Translator) {
  this->Solver = Solver;
  this->Translator = Translator;
  PathChecker.reset();
  if (Solver)
    PathChecker = std::make_unique<smt::PathSolver>(
        *Solver, Opts.IncrementalSolver, Opts.Metrics);
}

// --- Shadow/expression conversions ----------------------------------------

const SymExpr *IrExecutor::toSym(const RegValue &V) {
  switch (V.Kind) {
  case RegValue::K::CInt:
    return Arena.intConst(V.I);
  case RegValue::K::CBool:
    return Arena.boolConst(V.B);
  case RegValue::K::Sym:
    return V.S;
  case RegValue::K::Invalid:
    break;
  }
  assert(false && "use of an unwritten register");
  return nullptr;
}

IrExecutor::RegValue IrExecutor::fromSym(const SymExpr *E) {
  if (E->kind() == SymKind::IntConst)
    return cint(E->intValue());
  if (E->kind() == SymKind::BoolConst)
    return cbool(E->boolValue());
  return symv(E);
}

const Type *IrExecutor::typeOf(const RegValue &V) {
  switch (V.Kind) {
  case RegValue::K::CInt:
    return Arena.types().intType();
  case RegValue::K::CBool:
    return Arena.types().boolType();
  case RegValue::K::Sym:
    return V.S->type();
  case RegValue::K::Invalid:
    break;
  }
  assert(false && "use of an unwritten register");
  return Arena.types().intType();
}

IrExecutor::Outcome IrExecutor::errorOutcome(SymState S, SourceLoc Loc,
                                             std::string Msg) {
  Outcome O;
  O.S = std::move(S);
  O.IsError = true;
  O.ErrLoc = Loc;
  O.ErrMsg = std::move(Msg);
  return O;
}

// --- Semantics fragments shared verbatim with the AST engine --------------

bool IrExecutor::pruned(const SymState &S) {
  if (!Opts.PruneInfeasible || !Solver || !Translator)
    return false;
  if (S.Path->isConst())
    return !S.Path->boolValue();
  return PathChecker->checkPath(S.PC, Translator->translate(S.Path)) ==
         smt::SolveResult::Unsat;
}

bool IrExecutor::derefMemoryOk(const SymState &S, const SymExpr *Addr) {
  MemCheckResult Check = checkMemoryOk(S.Mem);
  if (Check.Ok)
    return true;
  if (!Opts.PreciseDeref)
    return false;

  // The refinement from Section 3.1: the read is still sound if the
  // address is disequal to every inconsistent write's address.
  for (const MemNode *Bad : Check.BadWrites) {
    const SymExpr *BadAddr = Bad->address();
    if (BadAddr == Addr)
      return false; // syntactically the same cell: definitely unsafe
    bool BothVars = BadAddr->kind() == SymKind::Var &&
                    Addr->kind() == SymKind::Var;
    if (BothVars &&
        (Arena.isAllocAddress(BadAddr) || Arena.isAllocAddress(Addr)))
      continue;
    if (!Solver || !Translator)
      return false;
    const smt::Term *Eq = Translator->terms().eqInt(
        Translator->translate(Addr), Translator->translate(BadAddr));
    if (PathChecker->checkPathWith(S.PC, Translator->translate(S.Path), Eq) !=
        smt::SolveResult::Unsat)
      return false;
  }
  return true;
}

void IrExecutor::extendPath(SymState &S, const SymExpr *Guard) {
  S.Path = Arena.andG(S.Path, Guard);
  if (Translator)
    S.PC = S.PC.extend(Translator->terms(), Translator->translate(Guard));
}

bool IrExecutor::concreteTruth(const SymExpr *Guard) const {
  switch (Guard->kind()) {
  case SymKind::BoolConst:
    return Guard->boolValue();
  case SymKind::Var: {
    if (!Seed)
      return false;
    auto It = Seed->BoolVars.find(Guard->varId());
    return It != Seed->BoolVars.end() && It->second;
  }
  case SymKind::Eq: {
    const SymExpr *L = Guard->operand(0);
    if (L->type()->isBool())
      return concreteTruth(L) == concreteTruth(Guard->operand(1));
    return concreteInt(L) == concreteInt(Guard->operand(1));
  }
  case SymKind::Lt:
    return concreteInt(Guard->operand(0)) < concreteInt(Guard->operand(1));
  case SymKind::Le:
    return concreteInt(Guard->operand(0)) <= concreteInt(Guard->operand(1));
  case SymKind::Not:
    return !concreteTruth(Guard->operand(0));
  case SymKind::And:
    return concreteTruth(Guard->operand(0)) &&
           concreteTruth(Guard->operand(1));
  case SymKind::Or:
    return concreteTruth(Guard->operand(0)) ||
           concreteTruth(Guard->operand(1));
  case SymKind::Ite:
    return concreteTruth(Guard->operand(0))
               ? concreteTruth(Guard->operand(1))
               : concreteTruth(Guard->operand(2));
  case SymKind::Select: {
    if (!Seed)
      return false;
    auto It = Seed->BoolSelects.find(Guard);
    return It != Seed->BoolSelects.end() && It->second;
  }
  default:
    return false;
  }
}

long long IrExecutor::concreteInt(const SymExpr *E) const {
  switch (E->kind()) {
  case SymKind::IntConst:
    return E->intValue();
  case SymKind::Var: {
    if (!Seed)
      return 0;
    auto It = Seed->IntVars.find(E->varId());
    return It == Seed->IntVars.end() ? 0 : It->second;
  }
  case SymKind::Add:
    return concreteInt(E->operand(0)) + concreteInt(E->operand(1));
  case SymKind::Sub:
    return concreteInt(E->operand(0)) - concreteInt(E->operand(1));
  case SymKind::Ite:
    return concreteTruth(E->operand(0)) ? concreteInt(E->operand(1))
                                        : concreteInt(E->operand(2));
  case SymKind::Select: {
    if (!Seed)
      return 0;
    auto It = Seed->IntSelects.find(E);
    return It == Seed->IntSelects.end() ? 0 : It->second;
  }
  default:
    return 0;
  }
}

const MemNode *IrExecutor::havocForTypedBlock(const BlockExpr *B,
                                              const SymEnv &Env,
                                              const MemNode *Mem) {
  CHavocs.inc();
  if (Opts.Trace)
    Opts.Trace->instant("sym.havoc", "sym");
  if (Opts.Havoc == SymExecOptions::HavocPolicy::FullMemory)
    return Arena.freshBaseMemory();

  WriteEffects Effects = computeWriteEffects(B->body());
  if (Effects.MayWriteUnknown)
    return Arena.freshBaseMemory();

  const MemNode *Result = Mem;
  for (const std::string &Name : Effects.Vars) {
    auto It = Env.find(Name);
    if (It == Env.end())
      continue;
    const SymExpr *Target = It->second;
    if (!Target->type()->isRef())
      continue;
    Result = Arena.update(Result, Target,
                          Arena.freshVar(Target->type()->pointee()));
  }
  return Result;
}

// --- Lowering cache --------------------------------------------------------

namespace {

std::string envSig(const std::vector<std::string> &Names) {
  std::string Sig;
  for (const std::string &N : Names) {
    Sig += N;
    Sig += '\x1f'; // unit separator: names cannot contain it
  }
  return Sig;
}

} // namespace

const ir::IrFunction &IrExecutor::lowered(const Expr *Root,
                                          std::vector<std::string> EnvNames) {
  std::pair<const void *, std::string> Key(Root, envSig(EnvNames));
  auto It = LoweredCache.find(Key);
  if (It != LoweredCache.end()) {
    CLowerHits.inc();
    return *It->second;
  }
  CLowerMisses.inc();
  obs::PhaseTimer Timer(Opts.Telemetry, obs::Phase::IrLower);
  auto F = std::make_unique<ir::IrFunction>(
      ir::lower(Root, std::move(EnvNames)));
  assert(ir::verify(*F).empty() && "lowering produced ill-formed bytecode");
  const ir::IrFunction &Ref = *F;
  LoweredCache.emplace(std::move(Key), std::move(F));
  return Ref;
}

const ir::IrFunction &IrExecutor::loweredCallee(const FunExpr *FE,
                                                const SymEnv &CloEnv) {
  // Fast path: a closure is almost always re-entered with the same
  // environment shape, so one pointer lookup plus an allocation-free
  // name comparison replaces the env-signature string build. SymEnv is
  // an ordered map, so its iteration order matches the stored Names.
  auto It = CalleeCache.find(FE);
  if (It != CalleeCache.end() && It->second.Names.size() == CloEnv.size()) {
    size_t I = 0;
    bool Match = true;
    for (const auto &[Name, Val] : CloEnv) {
      (void)Val;
      if (It->second.Names[I++] != Name) {
        Match = false;
        break;
      }
    }
    if (Match) {
      CFastpathHits.inc();
      return *It->second.F;
    }
  }
  CFastpathMisses.inc();
  std::vector<std::string> Names;
  Names.reserve(CloEnv.size());
  for (const auto &[Name, Val] : CloEnv) {
    (void)Val;
    Names.push_back(Name);
  }
  const ir::IrFunction &F = lowered(FE->body(), Names);
  CalleeCache[FE] = CalleeCacheEntry{std::move(Names), &F};
  return F;
}

// --- The interpreter -------------------------------------------------------

std::vector<IrExecutor::Outcome>
IrExecutor::continueSegment(const ir::IrFunction &F, uint32_t R, size_t I,
                            uint32_t Dst, std::vector<Outcome> Outs,
                            size_t End) {
  for (Outcome &O : Outs)
    if (!O.IsError)
      O.Regs[Dst] = O.Value;

  // One live outcome resumes directly — no barrier is observable.
  if (Outs.size() == 1) {
    if (Outs[0].IsError)
      return Outs;
    return runSegment(F, R, std::move(Outs[0].Regs), std::move(Outs[0].S),
                      I + 1, End);
  }

  // Several outcomes: replay the AST engine's nested `andThen` through
  // the shared barrier machinery (ConcolicCore.h).
  return continueWithBarriers(
      F.Regions[R].Spans, I, End, std::move(Outs),
      [&](Outcome O, size_t From, size_t To) {
        return runSegment(F, R, std::move(O.Regs), std::move(O.S), From, To);
      });
}

std::vector<IrExecutor::Outcome>
IrExecutor::runSegment(const ir::IrFunction &F, uint32_t R,
                       std::vector<RegValue> Regs, SymState S, size_t From,
                       size_t End) {
  // Concrete branches — the common case the engine exists for — are
  // executed iteratively: entering a taken sub-region pushes a resume
  // frame instead of recursing, so a fully concrete program runs as one
  // allocation-free loop over the register file. Only multi-outcome
  // instructions (symbolic branches, calls) fall back to the recursive
  // outcome machinery, threading pending frames through continueSegment.
  struct Frame {
    uint32_t R;
    size_t I, End;
    uint32_t Dst;
  };
  std::vector<Frame> Stack;
  auto Unwind = [&](std::vector<Outcome> Outs) {
    while (!Stack.empty()) {
      Frame Fr = Stack.back();
      Stack.pop_back();
      Outs = continueSegment(F, Fr.R, Fr.I - 1, Fr.Dst, std::move(Outs),
                             Fr.End);
    }
    return Outs;
  };

  const ir::Region *Reg = &F.Regions[R];
  size_t I = From;
  for (;;) {
    if (I >= End) {
      if (Stack.empty())
        break;
      // Sub-region fall-through: its result register feeds the Branch
      // destination, execution resumes after the Branch instruction.
      Frame Fr = Stack.back();
      Stack.pop_back();
      Regs[Fr.Dst] = Regs[Reg->Result];
      R = Fr.R;
      I = Fr.I;
      End = Fr.End;
      Reg = &F.Regions[R];
      continue;
    }
    const ir::Instr &In = Reg->Code[I];
    switch (In.Op) {
    case ir::Opcode::Step:
      if (++Steps > Opts.MaxSteps) {
        HitLimit = true;
        return {errorOutcome(std::move(S), In.Loc,
                             "symbolic execution step budget exceeded")};
      }
      break;

    case ir::Opcode::Unbound:
      return {errorOutcome(std::move(S), In.Loc,
                           "unbound variable '" + F.Names[In.Aux] + "'")};

    case ir::Opcode::ConstInt:
      Regs[In.Dst] = cint(In.Imm);
      break;

    case ir::Opcode::ConstBool:
      Regs[In.Dst] = cbool(In.BImm);
      break;

    case ir::Opcode::BinOp: {
      const RegValue &L = Regs[In.A];
      const RegValue &Rv = Regs[In.B];
      // Operand classes come from the shadow kind when concrete — no
      // type object is touched on the hot path; typeOf() runs only for
      // symbolic operands and for error messages.
      bool LI = L.Kind == RegValue::K::CInt ||
                (L.Kind == RegValue::K::Sym && L.S->type()->isInt());
      bool LB = L.Kind == RegValue::K::CBool ||
                (L.Kind == RegValue::K::Sym && L.S->type()->isBool());
      bool RI = Rv.Kind == RegValue::K::CInt ||
                (Rv.Kind == RegValue::K::Sym && Rv.S->type()->isInt());
      bool RB = Rv.Kind == RegValue::K::CBool ||
                (Rv.Kind == RegValue::K::Sym && Rv.S->type()->isBool());
      const char *Need = "supported operator";
      bool Ok = false;
      switch (In.BOp) {
      case BinaryOp::Add:
      case BinaryOp::Sub:
      case BinaryOp::Lt:
      case BinaryOp::Le:
        Need = "int operands";
        Ok = LI && RI;
        break;
      case BinaryOp::Eq:
        Need = "two ints or two bools";
        Ok = (LI && RI) || (LB && RB);
        break;
      case BinaryOp::And:
      case BinaryOp::Or:
        Need = "bool operands";
        Ok = LB && RB;
        break;
      }
      if (!Ok)
        return {errorOutcome(std::move(S), In.Loc,
                             std::string("operator '") +
                                 binaryOpSpelling(In.BOp) + "' applied to " +
                                 typeOf(L)->str() + " and " +
                                 typeOf(Rv)->str() + " (needs " + Need +
                                 ")")};
      RegValue Out;
      if (L.Kind != RegValue::K::Sym && Rv.Kind != RegValue::K::Sym) {
        // Both operands concrete: compute natively, no arena traffic.
        // The arena's constant folding computes the same values, so a
        // later materialization is pointer-identical to what the AST
        // engine built.
        switch (In.BOp) {
        case BinaryOp::Add:
          Out = cint(L.I + Rv.I);
          break;
        case BinaryOp::Sub:
          Out = cint(L.I - Rv.I);
          break;
        case BinaryOp::Lt:
          Out = cbool(L.I < Rv.I);
          break;
        case BinaryOp::Le:
          Out = cbool(L.I <= Rv.I);
          break;
        case BinaryOp::Eq:
          Out = cbool(L.Kind == RegValue::K::CInt ? L.I == Rv.I
                                                  : L.B == Rv.B);
          break;
        case BinaryOp::And:
          Out = cbool(L.B && Rv.B);
          break;
        case BinaryOp::Or:
          Out = cbool(L.B || Rv.B);
          break;
        }
      } else {
        const SymExpr *LS = toSym(L);
        const SymExpr *RS = toSym(Rv);
        const SymExpr *ES = nullptr;
        switch (In.BOp) {
        case BinaryOp::Add:
          ES = Arena.add(LS, RS);
          break;
        case BinaryOp::Sub:
          ES = Arena.sub(LS, RS);
          break;
        case BinaryOp::Lt:
          ES = Arena.lt(LS, RS);
          break;
        case BinaryOp::Le:
          ES = Arena.le(LS, RS);
          break;
        case BinaryOp::Eq:
          ES = Arena.eq(LS, RS);
          break;
        case BinaryOp::And:
          ES = Arena.andG(LS, RS);
          break;
        case BinaryOp::Or:
          ES = Arena.orG(LS, RS);
          break;
        }
        // Demote arena-folded constants (x and false, e == e, ...) back
        // to shadows so later branches on them stay concrete — exactly
        // the guards the AST engine's execIf treats as constant.
        Out = fromSym(ES);
      }
      Regs[In.Dst] = Out;
      break;
    }

    case ir::Opcode::Not: {
      const RegValue &V = Regs[In.A];
      if (!typeOf(V)->isBool())
        return {errorOutcome(
            std::move(S), In.Loc,
            "'not' applied to non-bool symbolic value of type " +
                typeOf(V)->str())};
      Regs[In.Dst] = V.Kind == RegValue::K::CBool
                         ? cbool(!V.B)
                         : fromSym(Arena.notG(V.S));
      break;
    }

    case ir::Opcode::Branch: {
      const RegValue &GV = Regs[In.A];
      bool Concrete;
      if (GV.Kind == RegValue::K::CBool) {
        Concrete = true;
      } else if (GV.Kind == RegValue::K::Sym && GV.S->type()->isBool()) {
        // Demoted constants never reach here as expressions, but a
        // folded constant is still taken concretely if one does.
        Concrete = GV.S->isConst();
      } else {
        return {errorOutcome(std::move(S), In.Loc2,
                             "condition has non-bool type " +
                                 typeOf(GV)->str())};
      }
      if (Concrete) {
        CBranchesConc.inc();
        bool Taken =
            GV.Kind == RegValue::K::CBool ? GV.B : GV.S->boolValue();
        Stack.push_back({R, I + 1, End, In.Dst});
        R = Taken ? In.R1 : In.R2;
        Reg = &F.Regions[R];
        I = 0;
        End = Reg->Code.size();
        continue;
      }
      return Unwind(execBranch(F, R, I, std::move(Regs), std::move(S), End));
    }

    case ir::Opcode::LetCheck: {
      const Type *VT = typeOf(Regs[In.A]);
      if (In.Ty && VT != In.Ty)
        return {errorOutcome(std::move(S), In.Loc,
                             "let binding declares " + In.Ty->str() +
                                 " but value has type " + VT->str())};
      break;
    }

    case ir::Opcode::Ref: {
      const SymExpr *V = toSym(Regs[In.A]);
      const Type *RefTy = Arena.types().refType(V->type());
      const SymExpr *Addr = Arena.freshVar(RefTy, /*IsAllocAddr=*/true);
      S.Mem = Arena.alloc(S.Mem, Addr, V);
      Regs[In.Dst] = symv(Addr);
      break;
    }

    case ir::Opcode::Deref: {
      const RegValue &V = Regs[In.A];
      if (!typeOf(V)->isRef())
        return {errorOutcome(
            std::move(S), In.Loc,
            "'!' applied to non-reference symbolic value of type " +
                typeOf(V)->str())};
      // Reference-typed values are always expressions (shadows cover
      // only int and bool).
      if (!derefMemoryOk(S, V.S))
        return {errorOutcome(std::move(S), In.Loc,
                             "memory is not consistently typed at "
                             "dereference (|- m ok fails)")};
      Regs[In.Dst] = fromSym(Arena.select(S.Mem, V.S));
      break;
    }

    case ir::Opcode::AssignCheck: {
      const Type *VT = typeOf(Regs[In.A]);
      if (!VT->isRef())
        return {errorOutcome(
            std::move(S), In.Loc,
            "':=' target is a non-reference symbolic value of type " +
                VT->str())};
      break;
    }

    case ir::Opcode::Assign:
      S.Mem = Arena.update(S.Mem, Regs[In.A].S, toSym(Regs[In.B]));
      break;

    case ir::Opcode::MakeClosure: {
      const auto *FE = cast<FunExpr>(In.Node);
      const Type *FnTy =
          Arena.types().funType(FE->paramType(), FE->resultType());
      SymEnv Env;
      for (const auto &[Name, SReg] : *F.Scopes[In.Aux])
        Env[Name] = toSym(Regs[SReg]);
      Regs[In.Dst] = symv(Arena.closure(FnTy, FE, std::move(Env)));
      break;
    }

    case ir::Opcode::CheckCallee: {
      const RegValue &Fn = Regs[In.A];
      if (!typeOf(Fn)->isFun())
        return {errorOutcome(
            std::move(S), In.Loc,
            "application of non-function symbolic value of type " +
                typeOf(Fn)->str())};
      if (Fn.S->kind() != SymKind::Closure)
        return {errorOutcome(
            std::move(S), In.Loc,
            "cannot symbolically execute a call through a symbolic "
            "function value; wrap the call in a typed block")};
      break;
    }

    case ir::Opcode::Call:
      return Unwind(execCall(F, R, I, Regs, std::move(S), End));

    case ir::Opcode::TypedBlock: {
      const auto *B = cast<BlockExpr>(In.Node);
      if (!TypedOracle)
        return {errorOutcome(std::move(S), In.Loc,
                             "typed block is not allowed here (no type "
                             "checker attached)")};
      if (!checkMemoryOk(S.Mem).Ok)
        return {errorOutcome(std::move(S), In.Loc,
                             "memory is not consistently typed at typed "
                             "block entry (|- m ok fails)")};
      SymEnv Env;
      for (const auto &[Name, SReg] : *F.Scopes[In.Aux])
        Env[Name] = toSym(Regs[SReg]);
      // The oracle sees the pre-havoc state (it may re-enter run()).
      const Type *Tau = TypedOracle->typeOfTypedBlock(B, Env, S);
      if (!Tau)
        return {errorOutcome(std::move(S), In.Loc,
                             "typed block failed to type check")};
      S.Mem = havocForTypedBlock(B, Env, S.Mem);
      const SymExpr *Result = Arena.freshVar(Tau);
      if (const SymExpr *Guard =
              TypedOracle->refineTypedBlockResult(B, Result, Arena)) {
        assert(Guard->type()->isBool() &&
               "refinement guard must be boolean");
        extendPath(S, Guard);
        // The oracle may retain the guard past this run (SignMix
        // translates its refinement axioms afterwards): root it for the
        // end-of-run sweep.
        RefineRoots.push_back(Guard);
      }
      Regs[In.Dst] = symv(Result);
      break;
    }
    }
    ++I;
  }

  // Built by hand rather than with an initializer list: list elements
  // are const, which would force a deep copy of the register file.
  std::vector<Outcome> Outs;
  Outs.reserve(1);
  Outs.emplace_back();
  Outs.back().Value = Regs[Reg->Result];
  Outs.back().S = std::move(S);
  Outs.back().Regs = std::move(Regs);
  return Outs;
}

std::vector<IrExecutor::Outcome>
IrExecutor::execBranch(const ir::IrFunction &F, uint32_t R, size_t I,
                       std::vector<RegValue> Regs, SymState S, size_t End) {
  // runSegment already validated the guard type and routed concrete
  // guards through its iterative fast path: the guard here is a
  // genuinely symbolic boolean.
  const ir::Instr &In = F.Regions[R].Code[I];
  const SymExpr *G = Regs[In.A].S;

  if (Opts.Strat == SymExecOptions::Strategy::Defer) {
    // SEIf-Defer: run both arms under extended guards, then merge values,
    // path conditions, and memories with conditional expressions.
    CDefers.inc();
    if (Opts.Trace)
      Opts.Trace->instant("sym.defer", "sym");

    SymState ThenState = S;
    extendPath(ThenState, G);
    SymState ElseState = S;
    extendPath(ElseState, Arena.notG(G));
    if (Opts.Prov) {
      ThenState.Trail.push_back({In.Loc2, "condition true (deferred)"});
      ElseState.Trail.push_back({In.Loc2, "condition false (deferred)"});
    }

    std::vector<Outcome> ThenOuts =
        runSegment(F, In.R1, Regs, std::move(ThenState), 0,
                   F.Regions[In.R1].Code.size());
    std::vector<Outcome> ElseOuts =
        runSegment(F, In.R2, Regs, std::move(ElseState), 0,
                   F.Regions[In.R2].Code.size());

    // Errors on either side surface as errors under their own guard;
    // success pairs merge into a single deferred outcome.
    std::vector<Outcome> Merged;
    for (Outcome &T : ThenOuts)
      if (T.IsError)
        Merged.push_back(std::move(T));
    for (Outcome &E : ElseOuts)
      if (E.IsError)
        Merged.push_back(std::move(E));

    for (const Outcome &T : ThenOuts) {
      if (T.IsError)
        continue;
      for (const Outcome &E : ElseOuts) {
        if (E.IsError)
          continue;
        if (typeOf(T.Value) != typeOf(E.Value)) {
          Merged.push_back(errorOutcome(
              S, In.Loc,
              "SEIf-Defer requires both branches to have the same "
              "type, got " +
                  typeOf(T.Value)->str() + " vs " + typeOf(E.Value)->str()));
          continue;
        }
        Outcome O;
        O.S.Path = Arena.ite(G, T.S.Path, E.S.Path);
        O.S.Mem = Arena.iteMem(G, T.S.Mem, E.S.Mem);
        // The merged condition is rebuilt as an ite, not a conjunction
        // extension; restart the delta chain from it so later branch
        // deltas still diff incrementally.
        if (Translator)
          O.S.PC = smt::PathCondition().extend(
              Translator->terms(), Translator->translate(O.S.Path));
        if (Opts.Prov) {
          O.S.Trail = S.Trail;
          O.S.Trail.push_back({In.Loc2, "branches merged (defer)"});
        }
        // Registers defined inside the arms are arm-local (the verifier
        // guarantees the continuation never reads them), so the merged
        // path resumes with the pre-branch register file.
        O.Regs = Regs;
        O.Value = fromSym(Arena.ite(G, toSym(T.Value), toSym(E.Value)));
        Merged.push_back(std::move(O));
      }
    }
    return continueSegment(F, R, I, In.Dst, std::move(Merged), End);
  }

  if (Opts.Strat == SymExecOptions::Strategy::Concolic) {
    // The DART/CUTE style: continue down the path the concrete seed
    // takes, recording the signed guard for the driver to negate.
    bool TakeThen = concreteTruth(G);
    const SymExpr *Signed = TakeThen ? G : Arena.notG(G);
    extendPath(S, Signed);
    S.Decisions.push_back(Signed);
    if (Opts.Prov)
      S.Trail.push_back(
          {In.Loc2, TakeThen ? "condition true" : "condition false"});
    uint32_t Sub = TakeThen ? In.R1 : In.R2;
    std::vector<Outcome> Outs =
        runSegment(F, Sub, std::move(Regs), std::move(S), 0,
                   F.Regions[Sub].Code.size());
    return continueSegment(F, R, I, In.Dst, std::move(Outs), End);
  }

  // SEIf-True / SEIf-False: fork, extending the path condition with the
  // guard or its negation.
  std::vector<Outcome> Results;
  ++LivePaths;
  CForks.inc();
  if (Opts.Trace)
    Opts.Trace->instant("sym.fork", "sym");
  if (LivePaths > Opts.MaxPaths) {
    HitLimit = true;
    return {errorOutcome(std::move(S), In.Loc,
                         "path budget exceeded at conditional")};
  }

  SymState ThenState = S;
  extendPath(ThenState, G);
  if (Opts.Prov)
    ThenState.Trail.push_back({In.Loc2, "condition true"});
  if (!pruned(ThenState)) {
    std::vector<Outcome> Then =
        runSegment(F, In.R1, Regs, std::move(ThenState), 0,
                   F.Regions[In.R1].Code.size());
    for (Outcome &O : Then)
      Results.push_back(std::move(O));
  }

  // Note: the negated guard is built only now, after the then-arm ran —
  // the AST engine's arena-operation order, kept for determinism.
  SymState ElseState = std::move(S);
  extendPath(ElseState, Arena.notG(G));
  if (Opts.Prov)
    ElseState.Trail.push_back({In.Loc2, "condition false"});
  if (!pruned(ElseState)) {
    std::vector<Outcome> Else =
        runSegment(F, In.R2, std::move(Regs), std::move(ElseState), 0,
                   F.Regions[In.R2].Code.size());
    for (Outcome &O : Else)
      Results.push_back(std::move(O));
  }
  return continueSegment(F, R, I, In.Dst, std::move(Results), End);
}

std::vector<IrExecutor::Outcome>
IrExecutor::execCall(const ir::IrFunction &F, uint32_t R, size_t I,
                     std::vector<RegValue> &Regs, SymState S, size_t End) {
  const ir::Instr &In = F.Regions[R].Code[I];
  const SymExpr *Fn = Regs[In.A].S; // CheckCallee validated: a closure
  const RegValue &Arg = Regs[In.B];
  const FunExpr *FE = Arena.closureFun(Fn);
  if (typeOf(Arg) != FE->paramType())
    return {errorOutcome(std::move(S), In.Loc,
                         "argument has type " + typeOf(Arg)->str() +
                             " but function expects " +
                             FE->paramType()->str())};

  SymEnv CalleeEnv = Arena.closureEnv(Fn);
  CalleeEnv[FE->param()] = toSym(Arg);
  const ir::IrFunction &Callee = loweredCallee(FE, CalleeEnv);

  std::vector<RegValue> CRegs(Callee.NumRegs);
  size_t Idx = 0;
  for (const auto &[Name, Val] : CalleeEnv) {
    (void)Name;
    CRegs[Idx++] = fromSym(Val);
  }

  std::vector<Outcome> BodyOuts =
      runSegment(Callee, 0, std::move(CRegs), std::move(S), 0,
                 Callee.Regions[0].Code.size());

  std::vector<Outcome> Outs;
  Outs.reserve(BodyOuts.size());
  for (Outcome &O : BodyOuts) {
    if (O.IsError) {
      Outs.push_back(std::move(O));
      continue;
    }
    if (typeOf(O.Value) != FE->resultType()) {
      Outs.push_back(errorOutcome(
          std::move(O.S), In.Loc,
          "function body produced " + typeOf(O.Value)->str() +
              " but declares result type " + FE->resultType()->str()));
      continue;
    }
    O.Regs = Regs; // resume with the caller's register file
    Outs.push_back(std::move(O));
  }
  return continueSegment(F, R, I, In.Dst, std::move(Outs), End);
}

// --- Top-level runs --------------------------------------------------------

SymExecResult IrExecutor::run(const Expr *E, const SymEnv &Env,
                              SymState Init) {
  // run() re-enters through the block oracles (a typed block's checker
  // may contain symbolic blocks); each run gets its own budget, and the
  // enclosing run's counters are restored afterwards.
  unsigned SavedSteps = Steps;
  unsigned SavedLivePaths = LivePaths;
  bool SavedHitLimit = HitLimit;
  Steps = 0;
  LivePaths = 1;
  HitLimit = false;
  if (Depth == 0) {
    RunMark = Arena.mark();
    RefineRoots.clear();
  }
  ++Depth;

  std::vector<std::string> EnvNames;
  EnvNames.reserve(Env.size());
  for (const auto &[Name, Val] : Env) {
    (void)Val;
    EnvNames.push_back(Name);
  }
  const ir::IrFunction &F = lowered(E, std::move(EnvNames));

  std::vector<RegValue> Regs(F.NumRegs);
  size_t Idx = 0;
  for (const auto &[Name, Val] : Env) {
    (void)Name;
    Regs[Idx++] = fromSym(Val);
  }

  std::vector<Outcome> Outs =
      runSegment(F, 0, std::move(Regs), std::move(Init), 0,
                 F.Regions[0].Code.size());

  SymExecResult Result;
  Result.Paths.reserve(Outs.size());
  for (Outcome &O : Outs) {
    if (O.IsError)
      Result.Paths.push_back(
          PathResult::failure(std::move(O.S), O.ErrLoc, std::move(O.ErrMsg)));
    else
      Result.Paths.push_back(PathResult::success(O.S, toSym(O.Value)));
  }
  Result.ResourceLimitHit = HitLimit;

  Steps = SavedSteps;
  LivePaths = SavedLivePaths;
  HitLimit = SavedHitLimit;
  --Depth;
  CExecPaths.add(Result.Paths.size());

  if (Depth == 0) {
    CTermsBuilt.add(Arena.numExprs() - RunMark.Exprs);
    if (Opts.ExprGC &&
        Opts.Strat != SymExecOptions::Strategy::Concolic) {
      // Sweep expressions this run created that none of its results can
      // reach. Everything a caller can see flows through the path
      // results (or the refinement guards the oracle kept), so those
      // are the roots; the translator cache is evicted per freed node
      // to keep pointer-identity caching sound across address reuse.
      std::vector<const SymExpr *> ExprRoots;
      std::vector<const MemNode *> MemRoots;
      for (const PathResult &P : Result.Paths) {
        if (P.State.Path)
          ExprRoots.push_back(P.State.Path);
        if (P.State.Mem)
          MemRoots.push_back(P.State.Mem);
        if (P.Value)
          ExprRoots.push_back(P.Value);
        for (const SymExpr *D : P.State.Decisions)
          ExprRoots.push_back(D);
      }
      ExprRoots.insert(ExprRoots.end(), RefineRoots.begin(),
                       RefineRoots.end());
      size_t Freed = Arena.sweepSince(
          RunMark, ExprRoots, MemRoots, [this](const SymExpr *Dead) {
            if (Translator)
              Translator->evict(Dead);
          });
      CTermsGcd.add(Freed);
    }
  }
  return Result;
}

SymExecResult IrExecutor::run(const Expr *E, const SymEnv &Env) {
  SymState Init;
  Init.Path = Arena.trueGuard();
  Init.Mem = Arena.freshBaseMemory();
  return run(E, Env, Init);
}
