//===--- ExecFactory.cpp - Execution-engine selection ---------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "concolic/IrExecutor.h"

using namespace mix;

std::unique_ptr<ExecEngine>
concolic::makeExecEngine(SymArena &Arena, DiagnosticEngine &Diags,
                         const SymExecOptions &Opts) {
  if (Opts.ExecMode == SymExecOptions::Engine::Ir)
    return std::make_unique<IrExecutor>(Arena, Diags, Opts);
  return std::make_unique<SymExecutor>(Arena, Diags, Opts);
}
