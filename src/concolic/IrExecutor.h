//===--- IrExecutor.h - Concolic interpreter over the bytecode --*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiled execution engine (--exec=ir): a concolic interpreter over
/// the flat register bytecode of src/ir/, in the SymCC style. Every
/// register carries a *concrete shadow* when its value is fully concrete;
/// SymExpr terms are built only for taint-reachable values (anything
/// derived from a symbolic input), fully concrete branches never fork and
/// never consult the solver, and symbolic expressions that died during a
/// top-level run are swept from the SymArena when it ends.
///
/// The engine is observationally identical to the AST-walking
/// SymExecutor: materializing a concrete shadow goes through the arena's
/// hash-consing constructors (so the AST engine's constant-folded
/// expressions are pointer-identical), regions are interpreted in the
/// same continuation order as `andThen` (so fresh-variable numbering,
/// path order, trails, and budget trips match exactly), and every error
/// message and location is replicated verbatim. The differential harness
/// (tests/IrDiffTest.cpp) enforces this.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_CONCOLIC_IREXECUTOR_H
#define MIX_CONCOLIC_IREXECUTOR_H

#include "ir/Ir.h"
#include "symexec/SymExecutor.h"

#include <map>
#include <memory>

namespace mix {
namespace concolic {

/// The IR-interpreting execution engine.
class IrExecutor final : public ExecEngine {
public:
  IrExecutor(SymArena &Arena, DiagnosticEngine &Diags,
             SymExecOptions Opts = SymExecOptions());

  void setTypedBlockOracle(TypedBlockOracle *Oracle) override {
    TypedOracle = Oracle;
  }
  void setSolver(smt::ISolver *Solver, SymToSmt *Translator) override;
  void setConcolicSeed(const ConcolicSeed *Seed) override {
    this->Seed = Seed;
  }
  const ConcolicSeed *concolicSeed() const override { return Seed; }

  SymExecResult run(const Expr *E, const SymEnv &Env,
                    SymState Init) override;
  SymExecResult run(const Expr *E, const SymEnv &Env) override;

  SymArena &arena() override { return Arena; }

private:
  /// A register value: a concrete shadow (no arena traffic) or a
  /// symbolic expression. The demotion invariant — every arena result
  /// that folded to a constant is demoted back to a shadow — guarantees
  /// a bool register is symbolic only when the AST engine's guard would
  /// be non-constant, which is what keeps branch behavior identical.
  struct RegValue {
    enum class K : uint8_t { Invalid, CInt, CBool, Sym };
    K Kind = K::Invalid;
    long long I = 0;
    bool B = false;
    const SymExpr *S = nullptr;
  };

  /// One path outcome of running (part of) a region: a final state plus
  /// the register file the enclosing region resumes with.
  struct Outcome {
    SymState S;
    std::vector<RegValue> Regs;
    RegValue Value;
    bool IsError = false;
    SourceLoc ErrLoc;
    std::string ErrMsg;
  };

  static RegValue cint(long long V) {
    RegValue R;
    R.Kind = RegValue::K::CInt;
    R.I = V;
    return R;
  }
  static RegValue cbool(bool V) {
    RegValue R;
    R.Kind = RegValue::K::CBool;
    R.B = V;
    return R;
  }
  static RegValue symv(const SymExpr *E) {
    RegValue R;
    R.Kind = RegValue::K::Sym;
    R.S = E;
    return R;
  }

  /// Materializes a shadow as the (hash-consed) constant expression the
  /// AST engine would hold — pointer-identical by interning.
  const SymExpr *toSym(const RegValue &V);
  /// Demotes a constant expression back to a shadow; non-constant
  /// expressions stay symbolic.
  static RegValue fromSym(const SymExpr *E);
  const Type *typeOf(const RegValue &V);

  /// Runs one state through instructions [From, End) of region \p R;
  /// a successful outcome is a fall-through at End. The whole region is
  /// runSegment(F, R, Regs, S, 0, Code.size()).
  std::vector<Outcome> runSegment(const ir::IrFunction &F, uint32_t R,
                                  std::vector<RegValue> Regs, SymState S,
                                  size_t From, size_t End);
  /// Resumes region \p R after multi-outcome instruction \p I (register
  /// Dst receives each outcome value), propagating errors in order and
  /// honoring the continuation barriers of Region::Spans: each enclosing
  /// node's remaining instructions run for all outcomes before the next
  /// enclosing level — the nested `andThen` of the AST engine.
  std::vector<Outcome> continueSegment(const ir::IrFunction &F, uint32_t R,
                                       size_t I, uint32_t Dst,
                                       std::vector<Outcome> Outs,
                                       size_t End);

  std::vector<Outcome> execBranch(const ir::IrFunction &F, uint32_t R,
                                  size_t I, std::vector<RegValue> Regs,
                                  SymState S, size_t End);
  std::vector<Outcome> execCall(const ir::IrFunction &F, uint32_t R,
                                size_t I, std::vector<RegValue> &Regs,
                                SymState S, size_t End);

  static Outcome errorOutcome(SymState S, SourceLoc Loc, std::string Msg);

  /// The fragments shared verbatim with SymExecutor's semantics.
  bool pruned(const SymState &S);
  bool derefMemoryOk(const SymState &S, const SymExpr *Addr);
  void extendPath(SymState &S, const SymExpr *Guard);
  bool concreteTruth(const SymExpr *Guard) const;
  long long concreteInt(const SymExpr *E) const;
  const MemNode *havocForTypedBlock(const BlockExpr *B, const SymEnv &Env,
                                    const MemNode *Mem);

  /// Lowering cache: one-time lowering per (root, environment-name
  /// signature); callee bodies are lowered lazily on first call. Warm
  /// runs (daemon KeepWarm sessions, repeated paths through one call
  /// site) skip lowering entirely — ir.lower.hits counts them.
  const ir::IrFunction &lowered(const Expr *Root,
                                std::vector<std::string> EnvNames);
  const ir::IrFunction &loweredCallee(const FunExpr *FE,
                                      const SymEnv &CloEnv);

  SymArena &Arena;
  DiagnosticEngine &Diags;
  SymExecOptions Opts;
  TypedBlockOracle *TypedOracle = nullptr;
  smt::ISolver *Solver = nullptr;
  SymToSmt *Translator = nullptr;
  std::unique_ptr<smt::PathSolver> PathChecker;
  const ConcolicSeed *Seed = nullptr;

  unsigned Steps = 0;
  unsigned LivePaths = 1;
  bool HitLimit = false;
  unsigned Depth = 0;

  /// Arena epoch at the start of the current top-level run: the baseline
  /// for exec.terms.built and the boundary for the end-of-run sweep.
  SymArena::Mark RunMark;

  /// Refinement guards handed back by the oracle during the current
  /// top-level run. They may be retained by the oracle past path
  /// reachability (SignMix translates its axioms after the run), so they
  /// are GC roots.
  std::vector<const SymExpr *> RefineRoots;

  std::map<std::pair<const void *, std::string>,
           std::unique_ptr<ir::IrFunction>>
      LoweredCache;

  /// Pointer-keyed fast path over LoweredCache for callee lowering: the
  /// per-call env-signature string build + map lookup is a measured cost
  /// on call-heavy code, and in practice a closure is re-entered with the
  /// same environment shape every time. The entry is validated against
  /// the call's environment names (SymEnv iterates them sorted, matching
  /// the stored order) with no allocation; a shape change falls back to
  /// the string-keyed cache and refreshes the entry.
  struct CalleeCacheEntry {
    std::vector<std::string> Names;
    const ir::IrFunction *F = nullptr; ///< owned by LoweredCache
  };
  std::map<const FunExpr *, CalleeCacheEntry> CalleeCache;

  obs::Counter CForks, CDefers, CHavocs;
  obs::Counter CExecPaths, CBranchesConc, CTermsBuilt, CTermsGcd;
  obs::Counter CLowerHits, CLowerMisses;
  obs::Counter CFastpathHits, CFastpathMisses;
};

/// Builds the engine selected by \p Opts.ExecMode (the `--exec=` knob):
/// the AST walker or the IR concolic interpreter, behind the common
/// ExecEngine interface.
std::unique_ptr<ExecEngine> makeExecEngine(SymArena &Arena,
                                           DiagnosticEngine &Diags,
                                           const SymExecOptions &Opts);

} // namespace concolic
} // namespace mix

#endif // MIX_CONCOLIC_IREXECUTOR_H
