//===--- CIrExecutor.h - Concolic interpreter for mini-C bodies -*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mini-C side of the unified concolic core (--exec=ir for mixyc):
/// an interpreter over the ir::CIrFunction bytecode that plugs into
/// CSymExecutor through the CBodyEngine seam. The split of labor is the
/// memory-model adapter pattern: this engine owns instruction dispatch
/// and continuation order (via the shared barrier machinery of
/// ConcolicCore.h), while CSymExecutor remains the state layer — lazy
/// memory, pointer case analysis, feasibility checks, warning dedup and
/// witness provenance — driven exclusively through its public adapter
/// API. Every opcode is a verbatim transcription of the matching AST
/// case, so diagnostics, fresh-term numbering, object allocation order,
/// trails, and budget trips are byte-identical to the walker; the
/// differential harness (tests/IrDiffTest.cpp) enforces this.
///
/// Bodies the lowering cannot model fall back to the AST walker loudly:
/// runBody declines (before any side effect) and counts
/// exec.fallback.ast. The fallback is per body — a lowerable caller
/// still executes an unlowerable callee through the walker and vice
/// versa, because both runFunction and inlineCall route through the
/// same CBodyEngine seam.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_CONCOLIC_CIREXECUTOR_H
#define MIX_CONCOLIC_CIREXECUTOR_H

#include "csym/CSymExecutor.h"
#include "ir/CIr.h"
#include "observe/Metrics.h"
#include "observe/Phase.h"
#include "symexec/SymExecutor.h"

#include <map>
#include <memory>

namespace mix {
namespace concolic {

/// The IR-interpreting body engine for mini-C.
class CIrExecutor final : public c::CBodyEngine {
public:
  CIrExecutor(c::CSymExecutor &Exec, obs::MetricsRegistry *Metrics,
              obs::RequestTelemetry *Telemetry);

  bool runBody(const c::CFuncDecl *F, c::CSymState &State, unsigned Depth,
               std::vector<c::CSymState> &Out) override;

private:
  /// A register value: the CSymValue an expression produced, or the
  /// guarded cell list an lvalue resolved to. (No concrete shadows here:
  /// mini-C execution cost is dominated by solver terms and store
  /// copies, and byte-identity requires the walker's exact term
  /// traffic.)
  struct RegVal {
    enum class K : uint8_t { Invalid, Val, Cells };
    K Kind = K::Invalid;
    c::CSymValue V;
    std::vector<c::CSymExecutor::LVal> Cells;
  };

  /// One path outcome of running (part of) a region: a final state plus
  /// the register file the enclosing region resumes with. IsError is
  /// never set for mini-C (the walker has no error outcomes — dead
  /// paths simply produce no flows); it exists for the shared barrier
  /// machinery.
  struct Outcome {
    c::CSymState S;
    std::vector<RegVal> Regs;
    RegVal Value;
    bool IsError = false;
  };

  static RegVal val(c::CSymValue V) {
    RegVal R;
    R.Kind = RegVal::K::Val;
    R.V = std::move(V);
    return R;
  }
  static RegVal cells(std::vector<c::CSymExecutor::LVal> C) {
    RegVal R;
    R.Kind = RegVal::K::Cells;
    R.Cells = std::move(C);
    return R;
  }

  /// Runs one state through instructions [From, End) of region \p R; a
  /// successful outcome is a fall-through at End.
  std::vector<Outcome> runSegment(const ir::CIrFunction &F, uint32_t R,
                                  std::vector<RegVal> Regs, c::CSymState S,
                                  size_t From, size_t End);
  /// Resumes region \p R after multi-outcome instruction \p I, honoring
  /// the continuation barriers of CRegion::Spans (ConcolicCore.h).
  std::vector<Outcome> continueSegment(const ir::CIrFunction &F, uint32_t R,
                                       size_t I, uint32_t Dst,
                                       std::vector<Outcome> Outs, size_t End);
  /// Runs a whole sub-region with a copy of the register file.
  std::vector<Outcome> runRegion(const ir::CIrFunction &F, uint32_t R,
                                 const std::vector<RegVal> &Regs,
                                 c::CSymState S);

  std::vector<Outcome> execCall(const ir::CIrFunction &F, uint32_t R,
                                size_t I, const std::vector<RegVal> &Regs,
                                c::CSymState S, size_t End);
  std::vector<Outcome> execBranch(const ir::CIrFunction &F, uint32_t R,
                                  size_t I, std::vector<RegVal> Regs,
                                  c::CSymState S, size_t End);
  std::vector<Outcome> execLoop(const ir::CIrFunction &F, uint32_t R,
                                size_t I, std::vector<RegVal> Regs,
                                c::CSymState S, size_t End);

  /// One-time lowering per function; null entries cache unlowerable
  /// bodies so the fallback decision is a map lookup on re-entry.
  const ir::CIrFunction *lowered(const c::CFuncDecl *Fn);

  c::CSymExecutor &Exec;
  obs::RequestTelemetry *Telemetry = nullptr;

  /// Inline depth of the body currently being interpreted. Saved and
  /// restored around nested runBody entries (an inlined call re-enters
  /// the engine through CSymExecutor::inlineCall).
  unsigned CurDepth = 0;
  const c::CFuncDecl *CurFunc = nullptr;

  std::map<const c::CFuncDecl *, std::unique_ptr<ir::CIrFunction>>
      LoweredCache;

  obs::Counter CExecPaths;
  obs::Counter CLowerHits, CLowerMisses;
  obs::Counter CFallbackAst;
};

/// Builds the mini-C body engine selected by \p Mode (the `--exec=`
/// knob shared with the core-language engines): null for the AST
/// walker — CSymExecutor runs standalone — or a CIrExecutor wired to
/// \p Exec for the IR interpreter.
std::unique_ptr<c::CBodyEngine>
makeCBodyEngine(c::CSymExecutor &Exec, SymExecOptions::Engine Mode,
                obs::MetricsRegistry *Metrics,
                obs::RequestTelemetry *Telemetry);

} // namespace concolic
} // namespace mix

#endif // MIX_CONCOLIC_CIREXECUTOR_H
