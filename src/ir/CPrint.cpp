//===--- CPrint.cpp - Stable printer for the mini-C bytecode --------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "ir/CIr.h"

#include <sstream>

using namespace mix;
using namespace mix::ir;

const char *ir::copcodeName(COpcode Op) {
  switch (Op) {
  case COpcode::CStmtEntry:
    return "stmt_entry";
  case COpcode::CConstInt:
    return "const_int";
  case COpcode::CStr:
    return "str";
  case COpcode::CNull:
    return "null";
  case COpcode::CLoadIdent:
    return "load_ident";
  case COpcode::CLValIdent:
    return "lval_ident";
  case COpcode::CLValDeref:
    return "lval_deref";
  case COpcode::CLValArrow:
    return "lval_arrow";
  case COpcode::CLValField:
    return "lval_field";
  case COpcode::CReadMerged:
    return "read_merged";
  case COpcode::CDerefRead:
    return "deref_read";
  case COpcode::CAddrOf:
    return "addr_of";
  case COpcode::CNot:
    return "not";
  case COpcode::CNeg:
    return "neg";
  case COpcode::CBinOp:
    return "binop";
  case COpcode::CStoreCells:
    return "store_cells";
  case COpcode::CMalloc:
    return "malloc";
  case COpcode::CDeclLocal:
    return "decl_local";
  case COpcode::CInitLocal:
    return "init_local";
  case COpcode::CCall:
    return "call";
  case COpcode::CBranch:
    return "branch";
  case COpcode::CLoop:
    return "loop";
  case COpcode::CReturn:
    return "ret";
  }
  return "<bad opcode>";
}

namespace {

void printLoc(std::ostringstream &OS, SourceLoc Loc) {
  if (Loc.isValid())
    OS << " @" << Loc.str();
}

void printName(std::ostringstream &OS, const CIrFunction &F, uint32_t Idx) {
  OS << "'" << (Idx < F.Names.size() ? F.Names[Idx] : "<bad name index>")
     << "'";
}

void printRegion(std::ostringstream &OS, uint32_t R) {
  if (R == CNoRegion)
    OS << "r<none>";
  else
    OS << "r" << R;
}

void printInstr(std::ostringstream &OS, const CIrFunction &F,
                const CInstr &In) {
  OS << "  ";
  switch (In.Op) {
  case COpcode::CStmtEntry:
    OS << "stmt_entry skip=" << In.Imm;
    printLoc(OS, In.Loc);
    break;
  case COpcode::CConstInt:
    OS << "%" << In.Dst << " = const_int " << In.Imm;
    break;
  case COpcode::CStr:
    OS << "%" << In.Dst << " = str";
    printLoc(OS, In.Loc);
    break;
  case COpcode::CNull:
    OS << "%" << In.Dst << " = null";
    break;
  case COpcode::CLoadIdent:
    OS << "%" << In.Dst << " = load_ident ";
    printName(OS, F, In.Aux);
    printLoc(OS, In.Loc);
    break;
  case COpcode::CLValIdent:
    OS << "%" << In.Dst << " = lval_ident ";
    printName(OS, F, In.Aux);
    printLoc(OS, In.Loc);
    break;
  case COpcode::CLValDeref:
    OS << "%" << In.Dst << " = lval_deref %" << In.A;
    printLoc(OS, In.Loc);
    break;
  case COpcode::CLValArrow:
    OS << "%" << In.Dst << " = lval_arrow %" << In.A << " ";
    printName(OS, F, In.Aux);
    printLoc(OS, In.Loc);
    break;
  case COpcode::CLValField:
    OS << "%" << In.Dst << " = lval_field %" << In.A << " ";
    printName(OS, F, In.Aux);
    printLoc(OS, In.Loc);
    break;
  case COpcode::CReadMerged:
    OS << "%" << In.Dst << " = read_merged %" << In.A;
    printLoc(OS, In.Loc);
    break;
  case COpcode::CDerefRead:
    OS << "%" << In.Dst << " = deref_read %" << In.A;
    printLoc(OS, In.Loc);
    break;
  case COpcode::CAddrOf:
    OS << "%" << In.Dst << " = addr_of %" << In.A;
    printLoc(OS, In.Loc);
    break;
  case COpcode::CNot:
    OS << "%" << In.Dst << " = not %" << In.A;
    break;
  case COpcode::CNeg:
    OS << "%" << In.Dst << " = neg %" << In.A;
    break;
  case COpcode::CBinOp:
    OS << "%" << In.Dst << " = binop '" << c::cBinaryOpSpelling(In.BOp)
       << "' %" << In.A << " %" << In.B;
    printLoc(OS, In.Loc);
    break;
  case COpcode::CStoreCells:
    OS << "store_cells %" << In.A << " := %" << In.B;
    printLoc(OS, In.Loc);
    break;
  case COpcode::CMalloc:
    OS << "%" << In.Dst << " = malloc ";
    printName(OS, F, In.Aux);
    OS << " : " << (In.Ty ? In.Ty->str() : "int");
    printLoc(OS, In.Loc);
    break;
  case COpcode::CDeclLocal:
    OS << "%" << In.Dst << " = decl_local ";
    printName(OS, F, In.Aux);
    OS << " obj=";
    printName(OS, F, In.Aux2);
    OS << " : " << (In.Ty ? In.Ty->str() : "<none>");
    printLoc(OS, In.Loc);
    break;
  case COpcode::CInitLocal:
    OS << "init_local %" << In.A << " := %" << In.B;
    break;
  case COpcode::CCall:
    OS << "%" << In.Dst << " = call ";
    if (In.Callee)
      OS << "'" << In.Callee->name() << "'";
    else
      OS << "%" << In.A;
    OS << " (";
    for (uint32_t I = 0; I < In.ArgsCount; ++I) {
      if (I)
        OS << ", ";
      OS << "%" << F.ArgRegs[In.ArgsBegin + I];
    }
    OS << ")";
    printLoc(OS, In.Loc);
    break;
  case COpcode::CBranch:
    OS << "branch %" << In.A << " ? ";
    printRegion(OS, In.R1);
    OS << " : ";
    printRegion(OS, In.R2);
    printLoc(OS, In.Loc);
    printLoc(OS, In.Loc2);
    break;
  case COpcode::CLoop:
    OS << "loop cond=";
    printRegion(OS, In.R1);
    OS << " body=";
    printRegion(OS, In.R2);
    printLoc(OS, In.Loc);
    printLoc(OS, In.Loc2);
    break;
  case COpcode::CReturn:
    OS << "ret";
    if (In.A != CNoReg)
      OS << " %" << In.A;
    printLoc(OS, In.Loc);
    break;
  }
  OS << "\n";
}

} // namespace

std::string ir::printC(const CIrFunction &F) {
  std::ostringstream OS;
  OS << "cfunc " << (F.Func ? F.Func->name() : "<none>")
     << " regs=" << F.NumRegs << " regions=" << F.Regions.size() << "\n";
  for (size_t R = 0; R < F.Regions.size(); ++R) {
    OS << "region " << R << ":\n";
    for (const CInstr &In : F.Regions[R].Code)
      printInstr(OS, F, In);
    if (F.Regions[R].Result != CNoReg)
      OS << "  result %" << F.Regions[R].Result << "\n";
  }
  return OS.str();
}
