//===--- CIr.h - Flat register-based bytecode for mini-C --------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mini-C dialect of the bytecode: `CExpr`/`CStmt` function bodies
/// lowered once per function and interpreted by the unified concolic core
/// (src/concolic/CIrExecutor) against a `CSymState`-backed memory model.
/// The design goal is the same as Ir.h's: *observational equivalence*
/// with the AST-walking CSymExecutor — byte-identical warnings, fresh
/// term numbering, object allocation order, trails, and budget trips —
/// while replacing recursive Flow-vector dispatch with a flat
/// instruction stream.
///
/// Shape (mirrors Ir.h, adapted to C's statement/expression split):
///  - Every lowered expression leaves its value in a write-once register.
///    Registers hold either a `CSymValue` or the guarded cell list an
///    lvalue resolved to; locals themselves live in the store (LocId
///    cells), never in registers, so mutation does not break SSA.
///  - Control flow is *region-structured*: `branch` names then/else
///    statement sub-regions, `loop` names a condition region (whose
///    Result register is the condition value) and a body region. The
///    interpreter replays CSymExecutor's exact continuation order using
///    Region::Spans barriers — including the per-argument and
///    per-statement prefix spans the lowerer emits for call argument
///    threading (ArgStates) and block statement sequencing.
///  - Every statement begins with a `stmt_entry` guard replicating
///    execStmt's entry checks (returned states skip, path-budget trips
///    mark the run incomplete and skip) with a backpatched skip target.
///  - Constructs the lowering does not model (lvalue positions that are
///    not an identifier, `*p`, or a member access) make `lowerC` fail;
///    the engine then falls back to the AST walker *loudly*
///    (exec.fallback.ast).
///
//===----------------------------------------------------------------------===//

#ifndef MIX_IR_CIR_H
#define MIX_IR_CIR_H

#include "cfront/CAst.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace mix {
namespace ir {

enum class COpcode : uint8_t {
  CStmtEntry,  ///< execStmt entry guard; Imm = skip-target instr index
  CConstInt,   ///< Dst = scalar(intConst(Imm)) (int literals, sizeof)
  CStr,        ///< Dst = pointer to a fresh "<string>" char object
  CNull,       ///< Dst = the definite null pointer
  CLoadIdent,  ///< Dst = rvalue of name Names[Aux] (function decay, local
               ///< /global cell read); 0 outcomes on unknown names
  CLValIdent,  ///< Dst = cells of name Names[Aux]; 0 outcomes on unknown
  CLValDeref,  ///< Dst = cells of *A (null check + path refinement)
  CLValArrow,  ///< Dst = cells of A->Names[Aux] (null check + refinement)
  CLValField,  ///< Dst = cells A with field Names[Aux] appended
  CReadMerged, ///< Dst = ite-merged read of cells A (member rvalue);
               ///< 0 outcomes when A resolved to no cells
  CDerefRead,  ///< Dst = rvalue *A (function decay, null check, merge)
  CAddrOf,     ///< Dst = pointer over cells A; 0 outcomes when A is empty
  CNot,        ///< Dst = scalar(!truth(A))
  CNeg,        ///< Dst = scalar(-int(A))
  CBinOp,      ///< Dst = A <CBOp> B (evalBinaryValues)
  CStoreCells, ///< writeCells(cells A, value B); the assign's value is B
  CMalloc,     ///< Dst = pointer to a fresh object named Names[Aux] of
               ///< type Ty (null Ty / void pointee = int)
  CDeclLocal,  ///< declare local Names[Aux] (object name Names[Aux2]) of
               ///< type Ty; Dst = its single definite cell
  CInitLocal,  ///< strong-initialize the cell in A with value B
  CCall,       ///< Dst = call CallNode; Callee set = direct dispatch,
               ///< else A holds the evaluated callee pointer; arguments
               ///< are ArgRegs[ArgsBegin, ArgsBegin+ArgsCount)
  CBranch,     ///< if-statement on condition A; R1 = then region,
               ///< R2 = else region or CNoRegion; Loc2 = condition loc
  CLoop,       ///< while-statement; R1 = condition region (its Result is
               ///< the condition value), R2 = body; Loc2 = condition loc
  CReturn,     ///< return; A = value register or CNoReg
};

const char *copcodeName(COpcode Op);

constexpr uint32_t CNoReg = 0xffffffffu;
constexpr uint32_t CNoRegion = 0xffffffffu;

/// One mini-C instruction. Payloads that the core IR packs into a union
/// stay separate fields here: the mini-C interpreter's cost is dominated
/// by solver terms and store copies, not instruction streaming.
struct CInstr {
  COpcode Op = COpcode::CStmtEntry;
  c::CBinaryOp BOp = c::CBinaryOp::Add; ///< CBinOp payload
  uint32_t Dst = CNoReg;                ///< result register
  uint32_t A = CNoReg, B = CNoReg;      ///< operand registers
  uint32_t R1 = CNoRegion, R2 = CNoRegion; ///< sub-regions
  uint32_t Aux = 0;  ///< CIrFunction::Names index (names, fields)
  uint32_t Aux2 = 0; ///< CDeclLocal: Names index of the object name
  uint32_t ArgsBegin = 0, ArgsCount = 0; ///< CCall: ArgRegs slice
  long long Imm = 0; ///< CConstInt value; CStmtEntry skip target
  SourceLoc Loc;     ///< diagnostic location
  SourceLoc Loc2;    ///< CBranch/CLoop: condition location (trails)
  const c::CType *Ty = nullptr;        ///< CMalloc/CDeclLocal payload
  const c::CCall *CallNode = nullptr;  ///< CCall payload
  const c::CFuncDecl *Callee = nullptr; ///< CCall: direct callee
};

/// A straight-line instruction sequence. Statement regions fall through
/// with no value (Result = CNoReg); the loop condition region's Result
/// names the register holding the condition value.
struct CRegion {
  std::vector<CInstr> Code;
  uint32_t Result = CNoReg;

  /// Continuation barriers, exactly as Region::Spans (see Ir.h): the
  /// [start, end) range of every lowered node, plus synthetic *prefix
  /// spans* — [call start, arg K end) per call argument and
  /// [block start, stmt K end) per block statement — that replay
  /// CSymExecutor's ArgStates threading and per-statement Active-set
  /// sequencing when an instruction yields several outcomes.
  std::vector<std::pair<uint32_t, uint32_t>> Spans;
};

/// One lowered mini-C function body. Region 0 is the body statement;
/// identifier resolution stays dynamic (Names), because mini-C locals
/// are declared at run time and scope per execution path.
struct CIrFunction {
  const c::CFuncDecl *Func = nullptr;
  uint32_t NumRegs = 0;
  std::vector<CRegion> Regions;
  std::vector<std::string> Names;   ///< interned names/fields/labels
  std::vector<uint32_t> ArgRegs;    ///< pooled CCall argument registers
  /// Stable content hash of the printed bytecode (goldens, metrics).
  uint64_t CodeHash = 0;
};

/// Lowers \p F's body to bytecode, or returns null when the body
/// contains a construct the lowering does not model (the caller must
/// fall back to the AST walker); \p WhyNot, when given, receives the
/// reason. \p Program resolves direct callees and the malloc intrinsic
/// exactly as CSymExecutor does.
std::unique_ptr<CIrFunction> lowerC(const c::CFuncDecl *F,
                                    const c::CProgram &Program,
                                    std::string *WhyNot = nullptr);

/// Structural verifier (see ir::verify): write-once registers, operands
/// defined before use and of the right class (value vs. cell list),
/// call arity against the AST node, skip targets in range, region tree
/// well-formed. Empty string = well-formed.
std::string verifyC(const CIrFunction &F);

/// Stable printer for golden tests and debugging.
std::string printC(const CIrFunction &F);

} // namespace ir
} // namespace mix

#endif // MIX_IR_CIR_H
