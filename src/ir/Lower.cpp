//===--- Lower.cpp - One-time lowering from lang::Ast to bytecode ---------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "ir/Ir.h"

#include "support/Hash.h"

#include <map>
#include <optional>

using namespace mix;
using namespace mix::ir;

namespace {

/// Lowers one root expression. Scoping is resolved statically: the core
/// language binds only lexically (let bodies, function parameters), so a
/// variable reference is the binder's register and shadowing is a scope
/// map update that is undone when the binder's body ends.
class Lowerer {
public:
  explicit Lowerer(IrFunction &F) : F(F) {}

  void run() {
    NextReg = (uint32_t)F.EnvNames.size();
    for (uint32_t I = 0; I != NextReg; ++I)
      Scope[F.EnvNames[I]] = I;
    newRegion(); // region 0: the body
    F.Regions[0].Result = lowerInto(0, F.Root);
    F.NumRegs = NextReg;
  }

private:
  IrFunction &F;
  std::map<std::string, uint32_t> Scope;
  std::shared_ptr<const ScopeTable> CachedScope;
  uint32_t CachedScopeIdx = 0;
  uint32_t NextReg = 0;

  uint32_t fresh() { return NextReg++; }

  uint32_t newRegion() {
    F.Regions.emplace_back();
    return (uint32_t)(F.Regions.size() - 1);
  }

  void push(uint32_t R, Instr I) {
    F.Regions[R].Code.push_back(std::move(I));
  }

  /// The current visible bindings as a shared, name-sorted table
  /// (std::map iterates sorted), interned into F.Scopes. Rebuilt lazily
  /// after scope changes; consecutive instructions lowered under one
  /// scope share the same pool slot.
  uint32_t scopeIndex() {
    if (!CachedScope) {
      auto T = std::make_shared<ScopeTable>();
      T->reserve(Scope.size());
      for (const auto &[Name, Reg] : Scope)
        T->emplace_back(Name, Reg);
      CachedScope = std::move(T);
      F.Scopes.push_back(CachedScope);
      CachedScopeIdx = (uint32_t)(F.Scopes.size() - 1);
    }
    return CachedScopeIdx;
  }

  uint32_t internName(std::string Name) {
    F.Names.push_back(std::move(Name));
    return (uint32_t)(F.Names.size() - 1);
  }

  /// Lowers a sub-region (a branch arm): bindings made inside it are
  /// local, so the scope is restored afterwards.
  uint32_t lowerRegion(const Expr *E) {
    uint32_t R = newRegion();
    auto SavedScope = Scope;
    auto SavedCache = CachedScope;
    uint32_t SavedCacheIdx = CachedScopeIdx;
    uint32_t Result = lowerInto(R, E);
    F.Regions[R].Result = Result;
    Scope = std::move(SavedScope);
    CachedScope = std::move(SavedCache);
    CachedScopeIdx = SavedCacheIdx;
    return R;
  }

  uint32_t lowerInto(uint32_t R, const Expr *E);
  uint32_t lowerNode(uint32_t R, const Expr *E);
};

uint32_t Lowerer::lowerInto(uint32_t R, const Expr *E) {
  // Record the node's instruction span for the interpreter's
  // continuation barriers (see Region::Spans).
  uint32_t Start = (uint32_t)F.Regions[R].Code.size();
  uint32_t Result = lowerNode(R, E);
  F.Regions[R].Spans.emplace_back(Start,
                                  (uint32_t)F.Regions[R].Code.size());
  return Result;
}

uint32_t Lowerer::lowerNode(uint32_t R, const Expr *E) {
  // The AST executor charges one step per exec() entry; replicate that
  // exactly, including the budget-trip location.
  {
    Instr S;
    S.Op = Opcode::Step;
    S.Loc = E->loc();
    push(R, std::move(S));
  }

  switch (E->kind()) {
  case ExprKind::Var: {
    const auto *V = cast<VarExpr>(E);
    auto It = Scope.find(V->name());
    if (It != Scope.end())
      return It->second;
    Instr I;
    I.Op = Opcode::Unbound;
    I.Dst = fresh();
    I.Aux = internName(V->name());
    I.Loc = E->loc();
    uint32_t Dst = I.Dst;
    push(R, std::move(I));
    return Dst; // never written: the path fails at the instruction
  }
  case ExprKind::IntLit: {
    Instr I;
    I.Op = Opcode::ConstInt;
    I.Dst = fresh();
    I.Imm = cast<IntLitExpr>(E)->value();
    uint32_t Dst = I.Dst;
    push(R, std::move(I));
    return Dst;
  }
  case ExprKind::BoolLit: {
    Instr I;
    I.Op = Opcode::ConstBool;
    I.Dst = fresh();
    I.BImm = cast<BoolLitExpr>(E)->value();
    uint32_t Dst = I.Dst;
    push(R, std::move(I));
    return Dst;
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    uint32_t L = lowerInto(R, B->lhs());
    uint32_t Rhs = lowerInto(R, B->rhs());
    Instr I;
    I.Op = Opcode::BinOp;
    I.BOp = B->op();
    I.Dst = fresh();
    I.A = L;
    I.B = Rhs;
    I.Loc = B->loc();
    uint32_t Dst = I.Dst;
    push(R, std::move(I));
    return Dst;
  }
  case ExprKind::Not: {
    uint32_t A = lowerInto(R, cast<NotExpr>(E)->sub());
    Instr I;
    I.Op = Opcode::Not;
    I.Dst = fresh();
    I.A = A;
    I.Loc = E->loc();
    uint32_t Dst = I.Dst;
    push(R, std::move(I));
    return Dst;
  }
  case ExprKind::If: {
    const auto *I = cast<IfExpr>(E);
    uint32_t G = lowerInto(R, I->cond());
    uint32_t Then = lowerRegion(I->thenExpr());
    uint32_t Else = lowerRegion(I->elseExpr());
    Instr B;
    B.Op = Opcode::Branch;
    B.Dst = fresh();
    B.A = G;
    B.R1 = Then;
    B.R2 = Else;
    B.Loc = E->loc();
    B.Loc2 = I->cond()->loc();
    uint32_t Dst = B.Dst;
    push(R, std::move(B));
    return Dst;
  }
  case ExprKind::Let: {
    const auto *L = cast<LetExpr>(E);
    uint32_t V = lowerInto(R, L->init());
    if (L->declaredType()) {
      Instr C;
      C.Op = Opcode::LetCheck;
      C.A = V;
      C.Ty = L->declaredType();
      C.Loc = E->loc();
      push(R, std::move(C));
    }
    std::optional<uint32_t> Shadowed;
    auto It = Scope.find(L->name());
    if (It != Scope.end())
      Shadowed = It->second;
    Scope[L->name()] = V;
    CachedScope.reset();
    uint32_t Body = lowerInto(R, L->body());
    if (Shadowed)
      Scope[L->name()] = *Shadowed;
    else
      Scope.erase(L->name());
    CachedScope.reset();
    return Body;
  }
  case ExprKind::Ref: {
    uint32_t V = lowerInto(R, cast<RefExpr>(E)->sub());
    Instr I;
    I.Op = Opcode::Ref;
    I.Dst = fresh();
    I.A = V;
    uint32_t Dst = I.Dst;
    push(R, std::move(I));
    return Dst;
  }
  case ExprKind::Deref: {
    uint32_t V = lowerInto(R, cast<DerefExpr>(E)->sub());
    Instr I;
    I.Op = Opcode::Deref;
    I.Dst = fresh();
    I.A = V;
    I.Loc = E->loc();
    uint32_t Dst = I.Dst;
    push(R, std::move(I));
    return Dst;
  }
  case ExprKind::Assign: {
    const auto *A = cast<AssignExpr>(E);
    uint32_t Target = lowerInto(R, A->target());
    {
      // The AST executor validates the target before evaluating the
      // value; keep that error order.
      Instr C;
      C.Op = Opcode::AssignCheck;
      C.A = Target;
      C.Loc = E->loc();
      push(R, std::move(C));
    }
    uint32_t V = lowerInto(R, A->value());
    Instr I;
    I.Op = Opcode::Assign;
    I.A = Target;
    I.B = V;
    push(R, std::move(I));
    return V; // the assignment's value is the stored value
  }
  case ExprKind::Seq: {
    const auto *Q = cast<SeqExpr>(E);
    (void)lowerInto(R, Q->first());
    return lowerInto(R, Q->second());
  }
  case ExprKind::Block: {
    const auto *B = cast<BlockExpr>(E);
    if (B->blockKind() == BlockKind::Symbolic)
      return lowerInto(R, B->body()); // symbolic-in-symbolic passes through
    Instr I;
    I.Op = Opcode::TypedBlock;
    I.Dst = fresh();
    I.Node = B;
    I.Loc = B->loc();
    I.Aux = scopeIndex();
    uint32_t Dst = I.Dst;
    push(R, std::move(I));
    return Dst;
  }
  case ExprKind::Fun: {
    Instr I;
    I.Op = Opcode::MakeClosure;
    I.Dst = fresh();
    I.Node = E;
    I.Aux = scopeIndex();
    uint32_t Dst = I.Dst;
    push(R, std::move(I));
    return Dst;
  }
  case ExprKind::App: {
    const auto *A = cast<AppExpr>(E);
    uint32_t Fn = lowerInto(R, A->fn());
    {
      // Callee checks happen before argument evaluation in the AST
      // executor.
      Instr C;
      C.Op = Opcode::CheckCallee;
      C.A = Fn;
      C.Loc = A->loc();
      push(R, std::move(C));
    }
    uint32_t Arg = lowerInto(R, A->arg());
    Instr I;
    I.Op = Opcode::Call;
    I.Dst = fresh();
    I.A = Fn;
    I.B = Arg;
    I.Loc = A->loc();
    uint32_t Dst = I.Dst;
    push(R, std::move(I));
    return Dst;
  }
  }
  // Unreachable for well-formed ASTs; keep the register flow total.
  Instr I;
  I.Op = Opcode::Unbound;
  I.Dst = fresh();
  I.Aux = internName("<unhandled expression form>");
  I.Loc = E->loc();
  uint32_t Dst = I.Dst;
  push(R, std::move(I));
  return Dst;
}

} // namespace

IrFunction ir::lower(const Expr *Root, std::vector<std::string> EnvNames) {
  IrFunction F;
  F.Root = Root;
  F.EnvNames = std::move(EnvNames);
  Lowerer L(F);
  L.run();
  F.CodeHash = stableHash64(print(F));
  return F;
}
