//===--- Verify.cpp - Structural verifier for the bytecode ----------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "ir/Ir.h"

using namespace mix;
using namespace mix::ir;

namespace {

struct Verifier {
  const IrFunction &F;
  std::vector<unsigned> RegionRefs; // times each region was entered
  std::string Err;

  bool fail(uint32_t R, size_t I, std::string Msg) {
    Err = "region " + std::to_string(R) + ", instr " + std::to_string(I) +
          ": " + std::move(Msg);
    return false;
  }

  bool use(uint32_t R, size_t I, uint32_t Reg,
           const std::vector<char> &Def) {
    if (Reg >= F.NumRegs)
      return fail(R, I, "register %" + std::to_string(Reg) +
                            " out of range");
    if (!Def[Reg])
      return fail(R, I, "use of undefined register %" +
                            std::to_string(Reg));
    return true;
  }

  bool def(uint32_t R, size_t I, uint32_t Reg, std::vector<char> &Def) {
    if (Reg >= F.NumRegs)
      return fail(R, I, "register %" + std::to_string(Reg) +
                            " out of range");
    if (Def[Reg])
      return fail(R, I, "register %" + std::to_string(Reg) +
                            " written twice");
    Def[Reg] = 1;
    return true;
  }

  /// Walks one region with the defined-register set at its entry.
  /// Branch sub-regions see a copy (their definitions are path-local).
  bool verifyRegion(uint32_t R, std::vector<char> Def) {
    if (R >= F.Regions.size()) {
      Err = "region r" + std::to_string(R) + " out of range";
      return false;
    }
    if (++RegionRefs[R] > 1) {
      Err = "region r" + std::to_string(R) + " referenced more than once";
      return false;
    }
    const Region &Reg = F.Regions[R];
    for (size_t I = 0; I < Reg.Code.size(); ++I) {
      const Instr &In = Reg.Code[I];
      switch (In.Op) {
      case Opcode::Step:
        break;
      case Opcode::Unbound:
        if (In.Aux >= F.Names.size() || F.Names[In.Aux].empty())
          return fail(R, I, "unbound without a variable name");
        if (!def(R, I, In.Dst, Def))
          return false;
        break;
      case Opcode::ConstInt:
      case Opcode::ConstBool:
        if (!def(R, I, In.Dst, Def))
          return false;
        break;
      case Opcode::BinOp:
        if (!use(R, I, In.A, Def) || !use(R, I, In.B, Def) ||
            !def(R, I, In.Dst, Def))
          return false;
        break;
      case Opcode::Not:
      case Opcode::Deref:
      case Opcode::Ref:
        if (!use(R, I, In.A, Def) || !def(R, I, In.Dst, Def))
          return false;
        break;
      case Opcode::Branch:
        if (!use(R, I, In.A, Def))
          return false;
        if (!verifyRegion(In.R1, Def) || !verifyRegion(In.R2, Def))
          return false;
        if (!def(R, I, In.Dst, Def))
          return false;
        break;
      case Opcode::LetCheck:
        if (!In.Ty)
          return fail(R, I, "let_check without a declared type");
        if (!use(R, I, In.A, Def))
          return false;
        break;
      case Opcode::AssignCheck:
        if (!use(R, I, In.A, Def))
          return false;
        break;
      case Opcode::Assign:
        if (!use(R, I, In.A, Def) || !use(R, I, In.B, Def))
          return false;
        break;
      case Opcode::MakeClosure:
        if (!In.Node || !isa<FunExpr>(In.Node))
          return fail(R, I, "closure without a function node");
        if (In.Aux >= F.Scopes.size() || !F.Scopes[In.Aux])
          return fail(R, I, "closure without a scope table");
        for (const auto &[Name, SReg] : *F.Scopes[In.Aux]) {
          (void)Name;
          if (!use(R, I, SReg, Def))
            return false;
        }
        if (!def(R, I, In.Dst, Def))
          return false;
        break;
      case Opcode::CheckCallee:
        if (!use(R, I, In.A, Def))
          return false;
        break;
      case Opcode::Call:
        if (!use(R, I, In.A, Def) || !use(R, I, In.B, Def) ||
            !def(R, I, In.Dst, Def))
          return false;
        break;
      case Opcode::TypedBlock:
        if (!In.Node || !isa<BlockExpr>(In.Node))
          return fail(R, I, "typed_block without a block node");
        if (In.Aux >= F.Scopes.size() || !F.Scopes[In.Aux])
          return fail(R, I, "typed_block without a scope table");
        for (const auto &[Name, SReg] : *F.Scopes[In.Aux]) {
          (void)Name;
          if (!use(R, I, SReg, Def))
            return false;
        }
        if (!def(R, I, In.Dst, Def))
          return false;
        break;
      }
    }
    if (Reg.Result >= F.NumRegs || !Def[Reg.Result])
      return fail(R, Reg.Code.size(),
                  "region result %" + std::to_string(Reg.Result) +
                      " is not defined at region end");
    return true;
  }
};

} // namespace

std::string ir::verify(const IrFunction &F) {
  if (F.Regions.empty())
    return "function has no regions";
  if (F.NumRegs < F.EnvNames.size())
    return "fewer registers than environment bindings";
  Verifier V{F, std::vector<unsigned>(F.Regions.size(), 0), ""};
  std::vector<char> Def(F.NumRegs, 0);
  for (size_t I = 0; I < F.EnvNames.size(); ++I)
    Def[I] = 1;
  if (!V.verifyRegion(0, std::move(Def)))
    return V.Err;
  for (size_t R = 0; R < F.Regions.size(); ++R)
    if (!V.RegionRefs[R])
      return "region r" + std::to_string(R) + " is unreachable";
  return "";
}
