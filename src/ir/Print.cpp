//===--- Print.cpp - Stable printer for the bytecode ----------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "ir/Ir.h"

#include <sstream>

using namespace mix;
using namespace mix::ir;

const char *ir::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Step:
    return "step";
  case Opcode::Unbound:
    return "unbound";
  case Opcode::ConstInt:
    return "const_int";
  case Opcode::ConstBool:
    return "const_bool";
  case Opcode::BinOp:
    return "binop";
  case Opcode::Not:
    return "not";
  case Opcode::Branch:
    return "branch";
  case Opcode::LetCheck:
    return "let_check";
  case Opcode::Ref:
    return "ref";
  case Opcode::Deref:
    return "deref";
  case Opcode::AssignCheck:
    return "assign_check";
  case Opcode::Assign:
    return "assign";
  case Opcode::MakeClosure:
    return "closure";
  case Opcode::CheckCallee:
    return "check_callee";
  case Opcode::Call:
    return "call";
  case Opcode::TypedBlock:
    return "typed_block";
  }
  return "<bad opcode>";
}

namespace {

void printLoc(std::ostringstream &OS, SourceLoc Loc) {
  if (Loc.isValid())
    OS << " @" << Loc.str();
}

void printScope(std::ostringstream &OS, const IrFunction &F,
                const Instr &In) {
  OS << " scope{";
  bool First = true;
  if (In.Aux < F.Scopes.size() && F.Scopes[In.Aux])
    for (const auto &[Name, Reg] : *F.Scopes[In.Aux]) {
      if (!First)
        OS << ", ";
      First = false;
      OS << Name << "=%" << Reg;
    }
  OS << "}";
}

void printInstr(std::ostringstream &OS, const IrFunction &F,
                const Instr &In) {
  OS << "  ";
  switch (In.Op) {
  case Opcode::Step:
    OS << "step";
    printLoc(OS, In.Loc);
    break;
  case Opcode::Unbound:
    OS << "%" << In.Dst << " = unbound '"
       << (In.Aux < F.Names.size() ? F.Names[In.Aux] : "<bad name index>")
       << "'";
    printLoc(OS, In.Loc);
    break;
  case Opcode::ConstInt:
    OS << "%" << In.Dst << " = const_int " << In.Imm;
    break;
  case Opcode::ConstBool:
    OS << "%" << In.Dst << " = const_bool "
       << (In.BImm ? "true" : "false");
    break;
  case Opcode::BinOp:
    OS << "%" << In.Dst << " = binop '" << binaryOpSpelling(In.BOp)
       << "' %" << In.A << " %" << In.B;
    printLoc(OS, In.Loc);
    break;
  case Opcode::Not:
    OS << "%" << In.Dst << " = not %" << In.A;
    printLoc(OS, In.Loc);
    break;
  case Opcode::Branch:
    OS << "%" << In.Dst << " = branch %" << In.A << " ? r" << In.R1
       << " : r" << In.R2;
    printLoc(OS, In.Loc);
    printLoc(OS, In.Loc2);
    break;
  case Opcode::LetCheck:
    OS << "let_check %" << In.A << " : "
       << (In.Ty ? In.Ty->str() : "<none>");
    printLoc(OS, In.Loc);
    break;
  case Opcode::Ref:
    OS << "%" << In.Dst << " = ref %" << In.A;
    break;
  case Opcode::Deref:
    OS << "%" << In.Dst << " = deref %" << In.A;
    printLoc(OS, In.Loc);
    break;
  case Opcode::AssignCheck:
    OS << "assign_check %" << In.A;
    printLoc(OS, In.Loc);
    break;
  case Opcode::Assign:
    OS << "assign %" << In.A << " := %" << In.B;
    break;
  case Opcode::MakeClosure: {
    const auto *Fn = cast<FunExpr>(In.Node);
    OS << "%" << In.Dst << " = closure fun " << Fn->param() << " : "
       << Fn->paramType()->str() << " -> " << Fn->resultType()->str();
    printScope(OS, F, In);
    break;
  }
  case Opcode::CheckCallee:
    OS << "check_callee %" << In.A;
    printLoc(OS, In.Loc);
    break;
  case Opcode::Call:
    OS << "%" << In.Dst << " = call %" << In.A << " (%" << In.B << ")";
    printLoc(OS, In.Loc);
    break;
  case Opcode::TypedBlock:
    OS << "%" << In.Dst << " = typed_block";
    printScope(OS, F, In);
    printLoc(OS, In.Loc);
    break;
  }
  OS << "\n";
}

} // namespace

std::string ir::print(const IrFunction &F) {
  std::ostringstream OS;
  OS << "func (";
  for (size_t I = 0; I < F.EnvNames.size(); ++I) {
    if (I)
      OS << ", ";
    OS << F.EnvNames[I] << "=%" << I;
  }
  OS << ") regs=" << F.NumRegs << " regions=" << F.Regions.size() << "\n";
  for (size_t R = 0; R < F.Regions.size(); ++R) {
    OS << "region " << R << ":\n";
    for (const Instr &In : F.Regions[R].Code)
      printInstr(OS, F, In);
    OS << "  result %" << F.Regions[R].Result << "\n";
  }
  return OS.str();
}
