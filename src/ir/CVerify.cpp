//===--- CVerify.cpp - Structural verifier for the mini-C bytecode --------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
//
// Same contract as ir::verify, plus the mini-C-specific invariants:
// registers are classed as *value* (a CSymValue) or *cells* (an lvalue's
// guarded cell list) and every operand must be of the right class; call
// arity must match the AST node; stmt_entry skip targets must stay
// inside the region and move forward.
//
//===----------------------------------------------------------------------===//

#include "ir/CIr.h"

using namespace mix;
using namespace mix::ir;

namespace {

enum class RegClass : uint8_t { Undef, Value, Cells };

struct CVerifier {
  const CIrFunction &F;
  std::vector<unsigned> RegionRefs; // times each region was entered
  std::vector<RegClass> Class;      // write-once, so global per register
  std::string Err;

  bool fail(uint32_t R, size_t I, std::string Msg) {
    Err = "region " + std::to_string(R) + ", instr " + std::to_string(I) +
          ": " + std::move(Msg);
    return false;
  }

  bool use(uint32_t R, size_t I, uint32_t Reg, RegClass Want,
           const std::vector<char> &Def) {
    if (Reg >= F.NumRegs)
      return fail(R, I, "register %" + std::to_string(Reg) +
                            " out of range");
    if (!Def[Reg])
      return fail(R, I, "use of undefined register %" +
                            std::to_string(Reg));
    if (Class[Reg] != Want)
      return fail(R, I, "operand %" + std::to_string(Reg) +
                            (Want == RegClass::Cells
                                 ? " is not a cell list"
                                 : " is not a value"));
    return true;
  }

  bool def(uint32_t R, size_t I, uint32_t Reg, RegClass C,
           std::vector<char> &Def) {
    if (Reg >= F.NumRegs)
      return fail(R, I, "register %" + std::to_string(Reg) +
                            " out of range");
    if (Def[Reg])
      return fail(R, I, "register %" + std::to_string(Reg) +
                            " written twice");
    Def[Reg] = 1;
    Class[Reg] = C;
    return true;
  }

  bool name(uint32_t R, size_t I, uint32_t Idx) {
    if (Idx >= F.Names.size())
      return fail(R, I, "name index " + std::to_string(Idx) +
                            " out of range");
    return true;
  }

  /// Walks one region with the defined-register set at its entry.
  /// Sub-regions see a copy (their definitions are path-local);
  /// \p DefOut, when given, receives the set at region end.
  bool verifyRegion(uint32_t R, std::vector<char> Def,
                    std::vector<char> *DefOut = nullptr) {
    if (R >= F.Regions.size()) {
      Err = "region r" + std::to_string(R) + " out of range";
      return false;
    }
    if (++RegionRefs[R] > 1) {
      Err = "region r" + std::to_string(R) + " referenced more than once";
      return false;
    }
    const CRegion &Reg = F.Regions[R];
    for (size_t I = 0; I < Reg.Code.size(); ++I) {
      const CInstr &In = Reg.Code[I];
      switch (In.Op) {
      case COpcode::CStmtEntry:
        if (In.Imm < (long long)I + 1 ||
            In.Imm > (long long)Reg.Code.size())
          return fail(R, I, "stmt_entry skip target " +
                                std::to_string(In.Imm) + " out of range");
        break;
      case COpcode::CConstInt:
      case COpcode::CStr:
      case COpcode::CNull:
        if (!def(R, I, In.Dst, RegClass::Value, Def))
          return false;
        break;
      case COpcode::CLoadIdent:
        if (!name(R, I, In.Aux) ||
            !def(R, I, In.Dst, RegClass::Value, Def))
          return false;
        break;
      case COpcode::CLValIdent:
        if (!name(R, I, In.Aux) ||
            !def(R, I, In.Dst, RegClass::Cells, Def))
          return false;
        break;
      case COpcode::CLValDeref:
        if (!use(R, I, In.A, RegClass::Value, Def) ||
            !def(R, I, In.Dst, RegClass::Cells, Def))
          return false;
        break;
      case COpcode::CLValArrow:
        if (!name(R, I, In.Aux) ||
            !use(R, I, In.A, RegClass::Value, Def) ||
            !def(R, I, In.Dst, RegClass::Cells, Def))
          return false;
        break;
      case COpcode::CLValField:
        if (!name(R, I, In.Aux) ||
            !use(R, I, In.A, RegClass::Cells, Def) ||
            !def(R, I, In.Dst, RegClass::Cells, Def))
          return false;
        break;
      case COpcode::CReadMerged:
        if (!use(R, I, In.A, RegClass::Cells, Def) ||
            !def(R, I, In.Dst, RegClass::Value, Def))
          return false;
        break;
      case COpcode::CDerefRead:
        if (!use(R, I, In.A, RegClass::Value, Def) ||
            !def(R, I, In.Dst, RegClass::Value, Def))
          return false;
        break;
      case COpcode::CAddrOf:
        if (!use(R, I, In.A, RegClass::Cells, Def) ||
            !def(R, I, In.Dst, RegClass::Value, Def))
          return false;
        break;
      case COpcode::CNot:
      case COpcode::CNeg:
        if (!use(R, I, In.A, RegClass::Value, Def) ||
            !def(R, I, In.Dst, RegClass::Value, Def))
          return false;
        break;
      case COpcode::CBinOp:
        if (!use(R, I, In.A, RegClass::Value, Def) ||
            !use(R, I, In.B, RegClass::Value, Def) ||
            !def(R, I, In.Dst, RegClass::Value, Def))
          return false;
        break;
      case COpcode::CStoreCells:
        if (!use(R, I, In.A, RegClass::Cells, Def) ||
            !use(R, I, In.B, RegClass::Value, Def))
          return false;
        break;
      case COpcode::CMalloc:
        if (!name(R, I, In.Aux) ||
            !def(R, I, In.Dst, RegClass::Value, Def))
          return false;
        break;
      case COpcode::CDeclLocal:
        if (!In.Ty)
          return fail(R, I, "decl_local without a declared type");
        if (!name(R, I, In.Aux) || !name(R, I, In.Aux2) ||
            !def(R, I, In.Dst, RegClass::Cells, Def))
          return false;
        break;
      case COpcode::CInitLocal:
        if (!use(R, I, In.A, RegClass::Cells, Def) ||
            !use(R, I, In.B, RegClass::Value, Def))
          return false;
        break;
      case COpcode::CCall: {
        if (!In.CallNode)
          return fail(R, I, "call without an AST node");
        if (In.ArgsCount != In.CallNode->args().size())
          return fail(R, I,
                      "call arity " + std::to_string(In.ArgsCount) +
                          " does not match the AST node's " +
                          std::to_string(In.CallNode->args().size()));
        if ((size_t)In.ArgsBegin + In.ArgsCount > F.ArgRegs.size())
          return fail(R, I, "call argument slice out of range");
        for (uint32_t A = 0; A < In.ArgsCount; ++A)
          if (!use(R, I, F.ArgRegs[In.ArgsBegin + A], RegClass::Value,
                   Def))
            return false;
        if (!In.Callee && !use(R, I, In.A, RegClass::Value, Def))
          return false;
        if (!def(R, I, In.Dst, RegClass::Value, Def))
          return false;
        break;
      }
      case COpcode::CBranch:
        if (!use(R, I, In.A, RegClass::Value, Def))
          return false;
        if (!verifyRegion(In.R1, Def))
          return false;
        if (In.R2 != CNoRegion && !verifyRegion(In.R2, Def))
          return false;
        break;
      case COpcode::CLoop: {
        std::vector<char> AfterCond;
        if (!verifyRegion(In.R1, Def, &AfterCond))
          return false;
        const CRegion &Cond = F.Regions[In.R1];
        if (Cond.Result >= F.NumRegs || !AfterCond[Cond.Result] ||
            Class[Cond.Result] != RegClass::Value)
          return fail(R, I, "loop condition region r" +
                                std::to_string(In.R1) +
                                " does not produce a value result");
        // The body runs after a condition evaluation each round.
        if (!verifyRegion(In.R2, std::move(AfterCond)))
          return false;
        break;
      }
      case COpcode::CReturn:
        if (In.A != CNoReg && !use(R, I, In.A, RegClass::Value, Def))
          return false;
        break;
      }
    }
    if (Reg.Result != CNoReg &&
        (Reg.Result >= F.NumRegs || !Def[Reg.Result]))
      return fail(R, Reg.Code.size(),
                  "region result %" + std::to_string(Reg.Result) +
                      " is not defined at region end");
    for (auto [S, E] : Reg.Spans)
      if (S > E || E > Reg.Code.size())
        return fail(R, Reg.Code.size(),
                    "span [" + std::to_string(S) + ", " +
                        std::to_string(E) + ") out of range");
    if (DefOut)
      *DefOut = std::move(Def);
    return true;
  }
};

} // namespace

std::string ir::verifyC(const CIrFunction &F) {
  if (F.Regions.empty())
    return "function has no regions";
  if (!F.Func)
    return "function has no AST node";
  CVerifier V{F, std::vector<unsigned>(F.Regions.size(), 0),
              std::vector<RegClass>(F.NumRegs, RegClass::Undef), ""};
  if (!V.verifyRegion(0, std::vector<char>(F.NumRegs, 0)))
    return V.Err;
  for (size_t R = 0; R < F.Regions.size(); ++R)
    if (!V.RegionRefs[R])
      return "region r" + std::to_string(R) + " is unreachable";
  return "";
}
