//===--- CLower.cpp - Lowering mini-C bodies to the bytecode --------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
//
// Lowers one CFuncDecl body into a CIrFunction. The translation is a
// 1:1 transcription of CSymExecutor's evalExpr/resolveLValue/execStmt
// recursion into flat instructions: every case that the AST walker
// handles dynamically per path (identifier scoping, pointer case
// analysis, lazy initialization) stays dynamic in the matching opcode;
// everything the walker decides from the AST alone (malloc intrinsics,
// direct callees, statement structure) is decided here, once.
//
// Continuation barriers: each node records its [start, end) span, and
// two constructs add synthetic *prefix spans* so the interpreter's
// barrier replay matches the walker's nested loops exactly —
//  - calls: evalCall threads ArgStates through each argument, i.e.
//    after a fork inside argument J, arguments J+1..N each run for all
//    outcomes before the callee dispatch; the spans
//    [call start, arg K end) reproduce those barriers;
//  - blocks: execStmt(Block) runs each statement for the whole Active
//    set before the next; the spans [block start, stmt K end) ditto.
//
// Unsupported constructs (assignment targets / address-of / member
// bases that are not lvalues — the walker's "expression is not an
// lvalue" path) make lowering fail; the engine falls back to the AST
// walker for the whole body, loudly (exec.fallback.ast).
//
//===----------------------------------------------------------------------===//

#include "ir/CIr.h"

#include "cfront/CSema.h"
#include "support/Hash.h"

#include <map>

using namespace mix;
using namespace mix::ir;
using namespace mix::c;

namespace {

class CLowerer {
public:
  CLowerer(const CFuncDecl *Func, const CProgram &Program)
      : Program(Program) {
    F = std::make_unique<CIrFunction>();
    F->Func = Func;
  }

  std::unique_ptr<CIrFunction> run(std::string *WhyNot) {
    uint32_t Body = newRegion();
    (void)Body;
    lowerStmt(0, F->Func->body());
    if (!Fail.empty()) {
      if (WhyNot)
        *WhyNot = Fail;
      return nullptr;
    }
    F->NumRegs = NextReg;
    F->CodeHash = stableHash64(printC(*F));
    return std::move(F);
  }

private:
  const CProgram &Program;
  std::unique_ptr<CIrFunction> F;
  std::string Fail;
  uint32_t NextReg = 0;
  std::map<std::string, uint32_t> Interned;

  void unsupported(std::string Why) {
    if (Fail.empty())
      Fail = std::move(Why);
  }

  uint32_t fresh() { return NextReg++; }

  uint32_t newRegion() {
    F->Regions.emplace_back();
    return (uint32_t)(F->Regions.size() - 1);
  }

  uint32_t intern(const std::string &S) {
    auto It = Interned.find(S);
    if (It != Interned.end())
      return It->second;
    uint32_t Idx = (uint32_t)F->Names.size();
    F->Names.push_back(S);
    Interned.emplace(S, Idx);
    return Idx;
  }

  CInstr &push(uint32_t R, CInstr In) {
    F->Regions[R].Code.push_back(std::move(In));
    return F->Regions[R].Code.back();
  }

  uint32_t size(uint32_t R) const {
    return (uint32_t)F->Regions[R].Code.size();
  }

  void span(uint32_t R, uint32_t Start) {
    F->Regions[R].Spans.push_back({Start, size(R)});
  }

  // --- expressions (rvalue position) -----------------------------------

  /// Lowers \p E into region \p R; returns the value register (CNoReg on
  /// failure). Records the node's span.
  uint32_t lowerExpr(uint32_t R, const CExpr *E) {
    uint32_t Start = size(R);
    uint32_t Reg = lowerExprNode(R, E);
    span(R, Start);
    return Reg;
  }

  uint32_t lowerExprNode(uint32_t R, const CExpr *E) {
    if (!Fail.empty())
      return CNoReg;
    switch (E->kind()) {
    case CExprKind::IntLit: {
      CInstr In;
      In.Op = COpcode::CConstInt;
      In.Dst = fresh();
      In.Imm = cast<CIntLit>(E)->value();
      return push(R, In).Dst;
    }
    case CExprKind::SizeOf: {
      // evalExpr models sizeof as the constant 8.
      CInstr In;
      In.Op = COpcode::CConstInt;
      In.Dst = fresh();
      In.Imm = 8;
      return push(R, In).Dst;
    }
    case CExprKind::StrLit: {
      CInstr In;
      In.Op = COpcode::CStr;
      In.Dst = fresh();
      In.Loc = E->loc();
      return push(R, In).Dst;
    }
    case CExprKind::NullLit: {
      CInstr In;
      In.Op = COpcode::CNull;
      In.Dst = fresh();
      return push(R, In).Dst;
    }
    case CExprKind::Ident: {
      CInstr In;
      In.Op = COpcode::CLoadIdent;
      In.Dst = fresh();
      In.Aux = intern(cast<CIdent>(E)->name());
      In.Loc = E->loc();
      return push(R, In).Dst;
    }
    case CExprKind::Unary: {
      const auto *U = cast<CUnary>(E);
      switch (U->op()) {
      case CUnaryOp::Deref: {
        uint32_t V = lowerExpr(R, U->sub());
        CInstr In;
        In.Op = COpcode::CDerefRead;
        In.Dst = fresh();
        In.A = V;
        In.Loc = E->loc();
        return push(R, In).Dst;
      }
      case CUnaryOp::AddrOf: {
        uint32_t Cells = lowerLValue(R, U->sub());
        CInstr In;
        In.Op = COpcode::CAddrOf;
        In.Dst = fresh();
        In.A = Cells;
        In.Loc = E->loc();
        return push(R, In).Dst;
      }
      case CUnaryOp::Not: {
        uint32_t V = lowerExpr(R, U->sub());
        CInstr In;
        In.Op = COpcode::CNot;
        In.Dst = fresh();
        In.A = V;
        return push(R, In).Dst;
      }
      case CUnaryOp::Neg: {
        uint32_t V = lowerExpr(R, U->sub());
        CInstr In;
        In.Op = COpcode::CNeg;
        In.Dst = fresh();
        In.A = V;
        return push(R, In).Dst;
      }
      }
      unsupported("unknown unary operator");
      return CNoReg;
    }
    case CExprKind::Binary: {
      const auto *B = cast<CBinary>(E);
      uint32_t L = lowerExpr(R, B->lhs());
      uint32_t Rr = lowerExpr(R, B->rhs());
      CInstr In;
      In.Op = COpcode::CBinOp;
      In.BOp = B->op();
      In.Dst = fresh();
      In.A = L;
      In.B = Rr;
      In.Loc = E->loc();
      return push(R, In).Dst;
    }
    case CExprKind::Assign: {
      const auto *A = cast<CAssign>(E);
      uint32_t Cells = lowerLValue(R, A->target());
      uint32_t V = lowerExpr(R, A->value());
      CInstr In;
      In.Op = COpcode::CStoreCells;
      In.A = Cells;
      In.B = V;
      In.Loc = E->loc();
      push(R, In);
      // The assignment's value is the stored value's register.
      return V;
    }
    case CExprKind::Call:
      return lowerCall(R, cast<CCall>(E));
    case CExprKind::Member: {
      uint32_t Cells = lowerLValueNode(R, E);
      CInstr In;
      In.Op = COpcode::CReadMerged;
      In.Dst = fresh();
      In.A = Cells;
      In.Loc = E->loc();
      return push(R, In).Dst;
    }
    case CExprKind::Cast: {
      const auto *C = cast<CCast>(E);
      // (T*)malloc(...): allocate an object of the cast's pointee type,
      // named after the *cast* expression's location. Arguments are
      // never evaluated (evalExpr returns before touching them).
      if (const auto *Call = dyn_cast<CCall>(C->sub()))
        if (const auto *Id = dyn_cast<CIdent>(Call->callee()))
          if (Id->name() == "malloc" && !Program.findFunc("malloc") &&
              C->target()->isPointer()) {
            CInstr In;
            In.Op = COpcode::CMalloc;
            In.Dst = fresh();
            In.Ty = C->target()->pointee();
            In.Aux = intern("malloc@" + E->loc().str());
            In.Loc = E->loc();
            return push(R, In).Dst;
          }
      // Other casts are transparent.
      return lowerExpr(R, C->sub());
    }
    }
    unsupported("unknown expression kind");
    return CNoReg;
  }

  uint32_t lowerCall(uint32_t R, const CCall *Call) {
    // Bare malloc (no cast): an int-typed object named after the call.
    if (const auto *Id = dyn_cast<CIdent>(Call->callee()))
      if (Id->name() == "malloc" && !Program.findFunc("malloc")) {
        CInstr In;
        In.Op = COpcode::CMalloc;
        In.Dst = fresh();
        In.Ty = nullptr; // int at run time
        In.Aux = intern("malloc@" + Call->loc().str());
        In.Loc = Call->loc();
        return push(R, In).Dst;
      }

    uint32_t Start = size(R);
    std::vector<uint32_t> Args;
    for (const CExpr *Arg : Call->args()) {
      Args.push_back(lowerExpr(R, Arg));
      // Prefix span: after a fork in an earlier argument, this argument
      // runs for every outcome before the next one (ArgStates).
      span(R, Start);
    }

    CInstr In;
    In.Op = COpcode::CCall;
    In.Dst = fresh();
    In.CallNode = Call;
    In.Callee = CSema::directCallee(Call, Program);
    if (!In.Callee) {
      // Indirect call: the callee pointer is evaluated per ArgState,
      // after all arguments (no prefix span — the dispatch runs with
      // the callee evaluation, per outcome).
      In.A = lowerExpr(R, Call->callee());
    }
    In.ArgsBegin = (uint32_t)F->ArgRegs.size();
    In.ArgsCount = (uint32_t)Args.size();
    for (uint32_t A : Args)
      F->ArgRegs.push_back(A);
    In.Loc = Call->loc();
    return push(R, In).Dst;
  }

  // --- lvalue positions -------------------------------------------------

  uint32_t lowerLValue(uint32_t R, const CExpr *E) {
    uint32_t Start = size(R);
    uint32_t Reg = lowerLValueNode(R, E);
    span(R, Start);
    return Reg;
  }

  /// Transcribes resolveLValue: identifiers, *ptr, and member accesses
  /// resolve to guarded cells; anything else is the walker's
  /// "expression is not an lvalue" path — not lowered, AST fallback.
  uint32_t lowerLValueNode(uint32_t R, const CExpr *E) {
    if (!Fail.empty())
      return CNoReg;
    switch (E->kind()) {
    case CExprKind::Ident: {
      CInstr In;
      In.Op = COpcode::CLValIdent;
      In.Dst = fresh();
      In.Aux = intern(cast<CIdent>(E)->name());
      In.Loc = E->loc();
      return push(R, In).Dst;
    }
    case CExprKind::Unary: {
      const auto *U = cast<CUnary>(E);
      if (U->op() != CUnaryOp::Deref)
        break;
      uint32_t V = lowerExpr(R, U->sub());
      CInstr In;
      In.Op = COpcode::CLValDeref;
      In.Dst = fresh();
      In.A = V;
      In.Loc = E->loc();
      return push(R, In).Dst;
    }
    case CExprKind::Member: {
      const auto *M = cast<CMember>(E);
      if (!M->isArrow()) {
        uint32_t Base = lowerLValue(R, M->base());
        CInstr In;
        In.Op = COpcode::CLValField;
        In.Dst = fresh();
        In.A = Base;
        In.Aux = intern(M->field());
        In.Loc = E->loc();
        return push(R, In).Dst;
      }
      uint32_t Base = lowerExpr(R, M->base());
      CInstr In;
      In.Op = COpcode::CLValArrow;
      In.Dst = fresh();
      In.A = Base;
      In.Aux = intern(M->field());
      In.Loc = E->loc();
      return push(R, In).Dst;
    }
    default:
      break;
    }
    unsupported("lvalue position holds a non-lvalue expression (" +
                E->loc().str() + ")");
    return CNoReg;
  }

  // --- statements -------------------------------------------------------

  /// Lowers \p S into region \p R: a CStmtEntry guard (skip target
  /// backpatched to the statement's end), the statement's instructions,
  /// and the node span.
  void lowerStmt(uint32_t R, const CStmt *S) {
    if (!Fail.empty())
      return;
    uint32_t Start = size(R);
    CInstr Entry;
    Entry.Op = COpcode::CStmtEntry;
    Entry.Loc = S->loc();
    push(R, Entry);
    lowerStmtNode(R, S);
    F->Regions[R].Code[Start].Imm = size(R);
    span(R, Start);
  }

  /// Lowers a statement into a fresh region (branch arms, loop bodies).
  uint32_t lowerStmtRegion(const CStmt *S) {
    uint32_t R = newRegion();
    lowerStmt(R, S);
    return R;
  }

  void lowerStmtNode(uint32_t R, const CStmt *S) {
    switch (S->kind()) {
    case CStmtKind::Expr:
      lowerExpr(R, cast<CExprStmt>(S)->expr());
      return;
    case CStmtKind::Decl: {
      const auto *D = cast<CDeclStmt>(S);
      CInstr In;
      In.Op = COpcode::CDeclLocal;
      In.Dst = fresh();
      In.Aux = intern(D->name());
      In.Aux2 = intern(F->Func->name() + "::" + D->name());
      In.Ty = D->type();
      In.Loc = S->loc();
      uint32_t Cells = push(R, In).Dst;
      if (!D->init())
        return;
      uint32_t V = lowerExpr(R, D->init());
      CInstr Init;
      Init.Op = COpcode::CInitLocal;
      Init.A = Cells;
      Init.B = V;
      push(R, Init);
      return;
    }
    case CStmtKind::If: {
      const auto *I = cast<CIfStmt>(S);
      uint32_t Cond = lowerExpr(R, I->cond());
      uint32_t Then = lowerStmtRegion(I->thenStmt());
      uint32_t Else = I->elseStmt() ? lowerStmtRegion(I->elseStmt())
                                    : CNoRegion;
      CInstr In;
      In.Op = COpcode::CBranch;
      In.A = Cond;
      In.R1 = Then;
      In.R2 = Else;
      In.Loc = S->loc();
      In.Loc2 = I->cond()->loc();
      push(R, In);
      return;
    }
    case CStmtKind::While: {
      const auto *W = cast<CWhileStmt>(S);
      uint32_t CondR = newRegion();
      F->Regions[CondR].Result = lowerExpr(CondR, W->cond());
      uint32_t Body = lowerStmtRegion(W->body());
      CInstr In;
      In.Op = COpcode::CLoop;
      In.R1 = CondR;
      In.R2 = Body;
      In.Loc = S->loc();
      In.Loc2 = W->cond()->loc();
      push(R, In);
      return;
    }
    case CStmtKind::Return: {
      const auto *Ret = cast<CReturnStmt>(S);
      CInstr In;
      In.Op = COpcode::CReturn;
      In.Loc = S->loc();
      if (Ret->value())
        In.A = lowerExpr(R, Ret->value());
      push(R, In);
      return;
    }
    case CStmtKind::Block: {
      uint32_t Start = size(R) - 1; // include the block's own entry
      for (const CStmt *Sub : cast<CBlockStmt>(S)->stmts()) {
        lowerStmt(R, Sub);
        // Prefix span: after a fork inside an earlier statement, this
        // statement runs for the whole Active set before the next.
        F->Regions[R].Spans.push_back({Start, size(R)});
      }
      return;
    }
    }
    unsupported("unknown statement kind");
  }
};

} // namespace

std::unique_ptr<CIrFunction> ir::lowerC(const CFuncDecl *Func,
                                        const CProgram &Program,
                                        std::string *WhyNot) {
  if (!Func || !Func->isDefined()) {
    if (WhyNot)
      *WhyNot = "function has no body";
    return nullptr;
  }
  return CLowerer(Func, Program).run(WhyNot);
}
