//===--- Ir.h - Flat register-based bytecode for the core language -*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flat, register-based bytecode lowered once from `lang::Ast` and
/// interpreted by the concolic executor (src/concolic/). The design goal
/// is *observational equivalence* with the AST-walking SymExecutor —
/// byte-identical diagnostics, fresh-variable numbering, trails, and
/// budgets — while letting straight-line code run as array-indexed
/// register operations instead of tree dispatch.
///
/// Shape:
///  - Every lowered expression leaves its value in a *register* (written
///    exactly once; bindings are immutable in the core language, so a
///    variable reference is just the binder's register).
///  - Control flow is *region-structured*: a Branch instruction names two
///    sub-regions (then/else). The interpreter runs a taken sub-region to
///    completion and then resumes the enclosing region after the Branch,
///    once per sub-region outcome — exactly the continuation order of the
///    AST executor's `andThen`, which is what keeps fresh-variable ids
///    and path order identical.
///  - A Step instruction is emitted at every AST node entry in pre-order,
///    replicating the AST executor's per-node step budget accounting
///    (budget trips happen at the same node with the same location).
///  - Check instructions (LetCheck, AssignCheck, CheckCallee) sit exactly
///    where the AST executor checks, so error ordering and messages match.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_IR_IR_H
#define MIX_IR_IR_H

#include "lang/Ast.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace mix {
namespace ir {

enum class Opcode : uint8_t {
  Step,         ///< per-AST-node budget tick; Loc = node location
  Unbound,      ///< statically unbound variable: fail this path; Name, Loc
  ConstInt,     ///< Dst = Imm (concrete shadow; no arena traffic)
  ConstBool,    ///< Dst = BImm
  BinOp,        ///< Dst = A <BOp> B; Loc = operator location
  Not,          ///< Dst = !A; Loc
  Branch,       ///< fork/defer/concolic on A; R1 = then, R2 = else;
                ///< Dst receives the taken/merged value; Loc = if
                ///< location, Loc2 = condition location
  LetCheck,     ///< declared-type ascription check on A against Ty; Loc
  Ref,          ///< Dst = fresh allocation address; logs (Dst ->a A)
  Deref,        ///< Dst = memory[A]; |- m ok checked; Loc
  AssignCheck,  ///< ':=' target A must be a reference; Loc
  Assign,       ///< logs write (A -> B); value is B's register
  MakeClosure,  ///< Dst = closure of Node (a FunExpr) over Scope
  CheckCallee,  ///< A must be a closure value; Loc = application location
  Call,         ///< Dst = apply closure A to B; Loc = application location
  TypedBlock,   ///< Dst = fresh var typed by the oracle for Node (a
                ///< BlockExpr), memory havocked; env rebuilt from Scope
};

const char *opcodeName(Opcode Op);

/// The visible bindings at an instruction that must materialize a
/// `SymEnv` (MakeClosure, TypedBlock): name -> register, sorted by name.
/// Shared because many instructions lowered under one scope reuse it.
using ScopeTable = std::vector<std::pair<std::string, uint32_t>>;

/// One instruction. Kept deliberately small (48 bytes): the interpreter
/// is memory-bound streaming the instruction array, so per-opcode cold
/// payloads live in a union and variable-size payloads (names, scope
/// tables) live in pools on the IrFunction, referenced by Aux index.
struct Instr {
  Opcode Op = Opcode::Step;
  BinaryOp BOp = BinaryOp::Add; ///< BinOp payload
  bool BImm = false;            ///< ConstBool payload
  uint32_t Dst = 0;             ///< result register
  uint32_t A = 0, B = 0;        ///< operand registers
  uint32_t R1 = 0, R2 = 0;      ///< Branch sub-regions
  uint32_t Aux = 0; ///< Unbound: IrFunction::Names index; MakeClosure /
                    ///< TypedBlock: IrFunction::Scopes index
  SourceLoc Loc;    ///< error/budget location
  union {
    long long Imm;     ///< ConstInt payload
    SourceLoc Loc2;    ///< Branch: condition location
    const Type *Ty;    ///< LetCheck: declared type
    const Expr *Node;  ///< MakeClosure: FunExpr; TypedBlock: BlockExpr
  };
  Instr() : Imm(0) {}
};

/// A straight-line instruction sequence ending in a result register.
struct Region {
  std::vector<Instr> Code;
  uint32_t Result = 0; ///< register holding the region's value on fall-through

  /// The [start, end) instruction range of every AST node lowered into
  /// this region, in lowering-completion (post-) order. Spans nest like
  /// the AST. They exist for *continuation barriers*: when an
  /// instruction yields several outcomes (a fork, a deferred merge with
  /// errors, a call whose body forked), the AST executor's nested
  /// `andThen` runs each enclosing node's remaining work for all
  /// outcomes before moving one level out. The interpreter replays that
  /// by running the outcomes segment-by-segment between the enclosing
  /// span ends — which is what keeps fresh-variable numbering and step
  /// accounting identical to the AST engine. Single-outcome execution
  /// never consults the table.
  std::vector<std::pair<uint32_t, uint32_t>> Spans;
};

/// One lowered root expression. Registers 0..EnvNames.size()-1 hold the
/// initial environment (in EnvNames order) when region 0 starts.
struct IrFunction {
  const Expr *Root = nullptr;
  std::vector<std::string> EnvNames;
  uint32_t NumRegs = 0;
  std::vector<Region> Regions; ///< Regions[0] is the body
  /// Payload pools referenced by Instr::Aux (see Instr).
  std::vector<std::string> Names;
  std::vector<std::shared_ptr<const ScopeTable>> Scopes;
  /// Stable content hash of the printed bytecode (observability and
  /// golden tests; lowering is deterministic, so equal programs lowered
  /// under equal environments hash equally across runs and platforms).
  uint64_t CodeHash = 0;
};

/// Lowers \p Root to bytecode. \p EnvNames are the names bound on entry
/// (register 0..n-1 in the given order); every other free variable
/// lowers to an Unbound instruction that fails its path at run time,
/// mirroring the AST executor's unbound-variable error.
IrFunction lower(const Expr *Root, std::vector<std::string> EnvNames);

/// Structural verifier: write-once registers, operands defined before
/// use, region tree well-formed (each sub-region referenced exactly
/// once), payloads present. Returns an empty string when the function is
/// well-formed, else a description of the first defect.
std::string verify(const IrFunction &F);

/// Stable printer for golden tests and debugging.
std::string print(const IrFunction &F);

} // namespace ir
} // namespace mix

#endif // MIX_IR_IR_H
