//===--- Hash.h - Shared stable and in-memory hashing -----------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One audited hashing implementation for the whole project, in two
/// flavours with different contracts:
///
///  - StableHasher / stableHash64: 64-bit FNV-1a over an explicit
///    little-endian byte encoding. The result is part of the on-disk
///    cache contract (src/persist/): it must be identical across runs,
///    platforms, build modes, and --jobs values, so nothing
///    address-dependent (pointers, iteration order of unordered
///    containers, std::hash) may ever feed it.
///
///  - hashCombine / avalanche64: in-process table and shard mixing.
///    These may change freely between builds; they are never persisted.
///    avalanche64 is the splitmix64 finalizer — every input bit affects
///    every output bit, so taking the low bits for stripe selection is
///    safe even for clustered inputs.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_SUPPORT_HASH_H
#define MIX_SUPPORT_HASH_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace mix {

/// splitmix64 finalizer: a full-avalanche bijection on 64-bit values.
inline uint64_t avalanche64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Streaming FNV-1a over an explicit byte encoding. Every update method
/// writes a fixed little-endian layout, so the digest of a value sequence
/// is identical on every platform and in every run.
class StableHasher {
public:
  StableHasher &bytes(const void *Data, size_t N) {
    const unsigned char *P = static_cast<const unsigned char *>(Data);
    for (size_t I = 0; I != N; ++I) {
      State ^= P[I];
      State *= 0x100000001b3ULL; // FNV prime
    }
    return *this;
  }

  StableHasher &u8(uint8_t V) { return bytes(&V, 1); }
  StableHasher &u16(uint16_t V) {
    uint8_t B[2] = {(uint8_t)V, (uint8_t)(V >> 8)};
    return bytes(B, 2);
  }
  StableHasher &u32(uint32_t V) {
    uint8_t B[4] = {(uint8_t)V, (uint8_t)(V >> 8), (uint8_t)(V >> 16),
                    (uint8_t)(V >> 24)};
    return bytes(B, 4);
  }
  StableHasher &u64(uint64_t V) {
    u32((uint32_t)V);
    return u32((uint32_t)(V >> 32));
  }
  StableHasher &i64(int64_t V) { return u64((uint64_t)V); }
  StableHasher &boolean(bool V) { return u8(V ? 1 : 0); }
  /// Length-prefixed, so consecutive strings cannot alias ("ab","c" vs
  /// "a","bc").
  StableHasher &str(std::string_view S) {
    u64(S.size());
    return bytes(S.data(), S.size());
  }

  /// The digest. Finalized through avalanche64 so related inputs (short
  /// strings, small integers) still differ in their low bits.
  uint64_t digest() const { return avalanche64(State); }

private:
  uint64_t State = 0xcbf29ce484222325ULL; // FNV offset basis
};

/// One-shot stable digest of a byte string.
inline uint64_t stableHash64(std::string_view S) {
  return StableHasher().str(S).digest();
}

/// Folds \p Value into \p Seed (boost-style combine over avalanched
/// halves). In-process only — never persist the result.
inline size_t hashCombine(size_t Seed, size_t Value) {
  return (size_t)avalanche64((uint64_t)Seed ^
                             (avalanche64((uint64_t)Value) +
                              0x9e3779b97f4a7c15ULL + ((uint64_t)Seed << 6) +
                              ((uint64_t)Seed >> 2)));
}

} // namespace mix

#endif // MIX_SUPPORT_HASH_H
