//===--- SourceLoc.h - Source locations and ranges --------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight value types describing positions in source buffers. Every
/// front end in this project (the core MIX language and mini-C) produces
/// these so diagnostics can point at program text.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_SUPPORT_SOURCELOC_H
#define MIX_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>

namespace mix {

/// A position in a source buffer, 1-based line and column.
///
/// An invalid (default-constructed) location has Line == 0 and is used for
/// synthesized nodes that have no textual origin.
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Column = 0;

  SourceLoc() = default;
  SourceLoc(uint32_t Line, uint32_t Column) : Line(Line), Column(Column) {}

  bool isValid() const { return Line != 0; }

  friend bool operator==(SourceLoc A, SourceLoc B) {
    return A.Line == B.Line && A.Column == B.Column;
  }
  friend bool operator!=(SourceLoc A, SourceLoc B) { return !(A == B); }
  friend bool operator<(SourceLoc A, SourceLoc B) {
    return A.Line != B.Line ? A.Line < B.Line : A.Column < B.Column;
  }

  /// Renders the location as "line:column", or "<unknown>" when invalid.
  std::string str() const;
};

/// A half-open range of source text [Begin, End).
struct SourceRange {
  SourceLoc Begin;
  SourceLoc End;

  SourceRange() = default;
  SourceRange(SourceLoc Begin, SourceLoc End) : Begin(Begin), End(End) {}
  explicit SourceRange(SourceLoc Loc) : Begin(Loc), End(Loc) {}

  bool isValid() const { return Begin.isValid(); }
};

} // namespace mix

#endif // MIX_SUPPORT_SOURCELOC_H
