//===--- StringExtras.h - String utilities ----------------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string helpers shared across the project's printers and parsers.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_SUPPORT_STRINGEXTRAS_H
#define MIX_SUPPORT_STRINGEXTRAS_H

#include <string>
#include <string_view>
#include <vector>

namespace mix {

/// Joins \p Parts with \p Sep between consecutive elements.
std::string join(const std::vector<std::string> &Parts, std::string_view Sep);

/// Returns true if \p S starts with \p Prefix.
bool startsWith(std::string_view S, std::string_view Prefix);

/// Splits \p S on \p Sep, keeping empty fields.
std::vector<std::string> split(std::string_view S, char Sep);

/// Trims ASCII whitespace from both ends of \p S.
std::string_view trim(std::string_view S);

/// Escapes \p S for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string jsonEscape(std::string_view S);

/// Levenshtein edit distance between \p A and \p B (insert, delete,
/// substitute all cost 1). Used for "did you mean" flag suggestions.
unsigned editDistance(std::string_view A, std::string_view B);

} // namespace mix

#endif // MIX_SUPPORT_STRINGEXTRAS_H
