//===--- Diagnostics.cpp - Diagnostic engine ------------------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include "support/StringExtras.h"

#include <algorithm>

using namespace mix;

std::string SourceLoc::str() const {
  if (!isValid())
    return "<unknown>";
  return std::to_string(Line) + ":" + std::to_string(Column);
}

static const char *diagKindName(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::Error:
    return "error";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Note:
    return "note";
  }
  return "unknown";
}

std::string mix::diagIdString(DiagID ID) {
  unsigned N = (unsigned)ID;
  std::string Digits = std::to_string(N);
  while (Digits.size() < 3)
    Digits.insert(Digits.begin(), '0');
  return "MIX" + Digits;
}

const char *mix::diagCategory(DiagID ID) {
  switch ((unsigned)ID / 100) {
  case 1:
    return "parse";
  case 2:
    return "type";
  case 3:
    return "path";
  case 4:
    return "null";
  case 5:
    return "driver";
  case 6:
    return "sign";
  default:
    return "general";
  }
}

std::string Diagnostic::str() const {
  return Loc.str() + ": " + diagKindName(Kind) + ": " + Message;
}

size_t DiagnosticEngine::report(DiagKind Kind, SourceLoc Loc,
                                std::string Message, DiagID ID) {
  Diagnostic D{Kind, Loc, std::move(Message), ID, Diagnostic::NoParent, {}};
  if (Kind == DiagKind::Error) {
    ++NumErrors;
  } else if (Kind == DiagKind::Warning) {
    ++NumWarnings;
  } else {
    // Attach the note to the most recent error or warning.
    for (size_t I = Diags.size(); I != 0; --I) {
      if (Diags[I - 1].Kind != DiagKind::Note) {
        D.Parent = I - 1;
        break;
      }
    }
  }
  Diags.push_back(std::move(D));
  return Diags.size() - 1;
}

std::vector<size_t> DiagnosticEngine::notesFor(size_t Parent) const {
  std::vector<size_t> Out;
  for (size_t I = Parent + 1; I < Diags.size(); ++I)
    if (Diags[I].Kind == DiagKind::Note && Diags[I].Parent == Parent)
      Out.push_back(I);
  return Out;
}

void DiagnosticEngine::clear() {
  Diags.clear();
  NumErrors = 0;
  NumWarnings = 0;
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}

static void appendDiagJSON(std::string &Out, const Diagnostic &D,
                           const char *Indent) {
  Out += Indent;
  Out += "{\"id\": \"" + diagIdString(D.ID) + "\", \"category\": \"";
  Out += diagCategory(D.ID);
  Out += "\", \"severity\": \"";
  Out += diagKindName(D.Kind);
  Out += "\", \"line\": " + std::to_string(D.Loc.Line) +
         ", \"column\": " + std::to_string(D.Loc.Column) +
         ", \"message\": \"" + jsonEscape(D.Message) + "\"";
}

std::vector<size_t> DiagnosticEngine::sortedTopLevelIndices() const {
  std::vector<size_t> Top;
  for (size_t I = 0; I != Diags.size(); ++I)
    if (Diags[I].Kind != DiagKind::Note ||
        Diags[I].Parent == Diagnostic::NoParent)
      Top.push_back(I);
  std::stable_sort(Top.begin(), Top.end(), [this](size_t A, size_t B) {
    const Diagnostic &DA = Diags[A], &DB = Diags[B];
    if (DA.Loc.Line != DB.Loc.Line)
      return DA.Loc.Line < DB.Loc.Line;
    if (DA.Loc.Column != DB.Loc.Column)
      return DA.Loc.Column < DB.Loc.Column;
    return (unsigned)DA.ID < (unsigned)DB.ID;
  });
  return Top;
}

std::string DiagnosticEngine::renderJSON(bool Sorted) const {
  std::vector<size_t> Top;
  if (Sorted) {
    Top = sortedTopLevelIndices();
  } else {
    for (size_t I = 0; I != Diags.size(); ++I)
      if (Diags[I].Kind != DiagKind::Note ||
          Diags[I].Parent == Diagnostic::NoParent)
        Top.push_back(I);
  }
  std::string Out = "[";
  bool First = true;
  for (size_t I : Top) {
    const Diagnostic &D = Diags[I];
    Out += First ? "\n" : ",\n";
    First = false;
    appendDiagJSON(Out, D, "  ");
    Out += ", \"notes\": [";
    bool FirstNote = true;
    for (size_t N : notesFor(I)) {
      Out += FirstNote ? "\n" : ",\n";
      FirstNote = false;
      appendDiagJSON(Out, Diags[N], "    ");
      Out += "}";
    }
    Out += FirstNote ? "]}" : "\n  ]}";
  }
  Out += First ? "]\n" : "\n]\n";
  return Out;
}
