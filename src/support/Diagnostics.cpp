//===--- Diagnostics.cpp - Diagnostic engine ------------------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace mix;

std::string SourceLoc::str() const {
  if (!isValid())
    return "<unknown>";
  return std::to_string(Line) + ":" + std::to_string(Column);
}

static const char *diagKindName(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::Error:
    return "error";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Note:
    return "note";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  return Loc.str() + ": " + diagKindName(Kind) + ": " + Message;
}

void DiagnosticEngine::report(DiagKind Kind, SourceLoc Loc,
                              std::string Message) {
  if (Kind == DiagKind::Error)
    ++NumErrors;
  else if (Kind == DiagKind::Warning)
    ++NumWarnings;
  Diags.push_back({Kind, Loc, std::move(Message)});
}

void DiagnosticEngine::clear() {
  Diags.clear();
  NumErrors = 0;
  NumWarnings = 0;
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}
