//===--- Json.h - Minimal JSON value and parser -----------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small recursive-descent JSON parser and value model, shared by the
/// mixyd request decoder, the service protocol tests, and every test that
/// asserts over the project's JSON renderers (tests/TestJson.h aliases
/// into this header). Numbers are kept as doubles — every number the
/// renderers emit and every number the protocol accepts fits exactly.
///
/// Writing JSON stays string-building with mix::jsonEscape (the
/// renderers' historical idiom); this header only reads it.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_SUPPORT_JSON_H
#define MIX_SUPPORT_JSON_H

#include <cctype>
#include <map>
#include <string>
#include <vector>

namespace mix::json {

struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object } K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<Value> Elems;
  std::map<std::string, Value> Fields;

  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool isString() const { return K == Kind::String; }
  bool isNumber() const { return K == Kind::Number; }
  bool isBool() const { return K == Kind::Bool; }
  bool has(const std::string &Key) const { return Fields.count(Key) != 0; }
  const Value &operator[](const std::string &Key) const {
    static const Value Missing;
    auto It = Fields.find(Key);
    return It == Fields.end() ? Missing : It->second;
  }
  const Value &operator[](size_t I) const { return Elems[I]; }
  size_t size() const { return K == Kind::Array ? Elems.size() : Fields.size(); }

  /// Typed accessors with defaults, for optional protocol fields.
  std::string str(const std::string &Default = std::string()) const {
    return K == Kind::String ? Str : Default;
  }
  double number(double Default = 0) const {
    return K == Kind::Number ? Num : Default;
  }
  bool boolean(bool Default = false) const {
    return K == Kind::Bool ? B : Default;
  }
};

class Parser {
public:
  explicit Parser(const std::string &Text) : Text(Text) {}

  /// Parses one JSON document; returns false (with Error set) on any
  /// syntax error or trailing garbage.
  bool parse(Value &Out) {
    Pos = 0;
    if (!parseValue(Out))
      return false;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing characters");
    return true;
  }

  std::string Error;

private:
  bool fail(const std::string &Why) {
    if (Error.empty())
      Error = Why + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() && std::isspace((unsigned char)Text[Pos]))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return fail(std::string("expected '") + C + "'");
  }

  bool parseValue(Value &Out) {
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end");
    char C = Text[Pos];
    if (C == '{')
      return parseObject(Out);
    if (C == '[')
      return parseArray(Out);
    if (C == '"') {
      Out.K = Value::Kind::String;
      return parseString(Out.Str);
    }
    if (C == 't' || C == 'f')
      return parseKeyword(Out);
    if (C == 'n')
      return parseNull(Out);
    return parseNumber(Out);
  }

  bool parseObject(Value &Out) {
    Out.K = Value::Kind::Object;
    if (!consume('{'))
      return false;
    skipWs();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      std::string Key;
      skipWs();
      if (!parseString(Key))
        return false;
      if (!consume(':'))
        return false;
      Value V;
      if (!parseValue(V))
        return false;
      Out.Fields.emplace(std::move(Key), std::move(V));
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      return consume('}');
    }
  }

  bool parseArray(Value &Out) {
    Out.K = Value::Kind::Array;
    if (!consume('['))
      return false;
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      Value V;
      if (!parseValue(V))
        return false;
      Out.Elems.push_back(std::move(V));
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      return consume(']');
    }
  }

  bool parseString(std::string &Out) {
    if (Pos >= Text.size() || Text[Pos] != '"')
      return fail("expected string");
    ++Pos;
    Out.clear();
    while (Pos < Text.size() && Text[Pos] != '"') {
      char C = Text[Pos++];
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("bad escape");
      char E = Text[Pos++];
      switch (E) {
      case '"': Out += '"'; break;
      case '\\': Out += '\\'; break;
      case '/': Out += '/'; break;
      case 'n': Out += '\n'; break;
      case 't': Out += '\t'; break;
      case 'r': Out += '\r'; break;
      case 'b': Out += '\b'; break;
      case 'f': Out += '\f'; break;
      case 'u': {
        // Standard clients escape non-ASCII by default (Python json.dumps
        // ensure_ascii), so the full UTF-16 escape grammar — including
        // surrogate pairs for non-BMP code points — must decode to the
        // exact UTF-8 bytes the client meant.
        unsigned Code = 0;
        if (!parseHex4(Code))
          return false;
        if (Code >= 0xD800 && Code <= 0xDBFF) {
          if (Pos + 2 > Text.size() || Text[Pos] != '\\' ||
              Text[Pos + 1] != 'u')
            return fail("unpaired surrogate");
          Pos += 2;
          unsigned Low = 0;
          if (!parseHex4(Low))
            return false;
          if (Low < 0xDC00 || Low > 0xDFFF)
            return fail("unpaired surrogate");
          Code = 0x10000 + ((Code - 0xD800) << 10) + (Low - 0xDC00);
        } else if (Code >= 0xDC00 && Code <= 0xDFFF) {
          return fail("unpaired surrogate");
        }
        appendUtf8(Out, Code);
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    if (Pos >= Text.size())
      return fail("unterminated string");
    ++Pos; // closing quote
    return true;
  }

  bool parseHex4(unsigned &Code) {
    if (Pos + 4 > Text.size())
      return fail("bad \\u escape");
    Code = 0;
    for (int I = 0; I != 4; ++I) {
      char H = Text[Pos++];
      Code <<= 4;
      if (H >= '0' && H <= '9')
        Code |= H - '0';
      else if (H >= 'a' && H <= 'f')
        Code |= H - 'a' + 10;
      else if (H >= 'A' && H <= 'F')
        Code |= H - 'A' + 10;
      else
        return fail("bad \\u digit");
    }
    return true;
  }

  static void appendUtf8(std::string &Out, unsigned Code) {
    if (Code < 0x80) {
      Out += (char)Code;
    } else if (Code < 0x800) {
      Out += (char)(0xC0 | (Code >> 6));
      Out += (char)(0x80 | (Code & 0x3F));
    } else if (Code < 0x10000) {
      Out += (char)(0xE0 | (Code >> 12));
      Out += (char)(0x80 | ((Code >> 6) & 0x3F));
      Out += (char)(0x80 | (Code & 0x3F));
    } else {
      Out += (char)(0xF0 | (Code >> 18));
      Out += (char)(0x80 | ((Code >> 12) & 0x3F));
      Out += (char)(0x80 | ((Code >> 6) & 0x3F));
      Out += (char)(0x80 | (Code & 0x3F));
    }
  }

  bool parseKeyword(Value &Out) {
    if (Text.compare(Pos, 4, "true") == 0) {
      Out.K = Value::Kind::Bool;
      Out.B = true;
      Pos += 4;
      return true;
    }
    if (Text.compare(Pos, 5, "false") == 0) {
      Out.K = Value::Kind::Bool;
      Out.B = false;
      Pos += 5;
      return true;
    }
    return fail("bad keyword");
  }

  bool parseNull(Value &Out) {
    if (Text.compare(Pos, 4, "null") == 0) {
      Out.K = Value::Kind::Null;
      Pos += 4;
      return true;
    }
    return fail("bad keyword");
  }

  bool parseNumber(Value &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit((unsigned char)Text[Pos]) || Text[Pos] == '.' ||
            Text[Pos] == 'e' || Text[Pos] == 'E' || Text[Pos] == '+' ||
            Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return fail("expected value");
    try {
      Out.Num = std::stod(Text.substr(Start, Pos - Start));
    } catch (...) {
      return fail("bad number");
    }
    Out.K = Value::Kind::Number;
    return true;
  }

  const std::string &Text;
  size_t Pos = 0;
};

/// Parses \p Text into \p Out; on failure returns false and, when
/// \p ErrorOut is given, stores the parser's first error.
inline bool parseDocument(const std::string &Text, Value &Out,
                          std::string *ErrorOut = nullptr) {
  Parser P(Text);
  bool Ok = P.parse(Out);
  if (!Ok && ErrorOut)
    *ErrorOut = P.Error;
  return Ok;
}

} // namespace mix::json

#endif // MIX_SUPPORT_JSON_H
