//===--- Diagnostics.h - Diagnostic engine ----------------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostic engine shared by every analysis in the project.
///
/// The paper's analyses report three flavours of result: hard errors (the
/// program is rejected), warnings (possible null dereference found by
/// qualifier inference or symbolic execution), and notes that explain a
/// preceding diagnostic (e.g. the qualifier flow path that witnesses a
/// warning). Library code never prints directly; it records diagnostics
/// here and tools render them.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_SUPPORT_DIAGNOSTICS_H
#define MIX_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace mix {

/// Severity of a diagnostic.
enum class DiagKind {
  Error,   ///< The analysis rejects the program.
  Warning, ///< A possible property violation (e.g. null dereference).
  Note,    ///< Additional context attached to the previous diagnostic.
};

/// A single reported diagnostic.
struct Diagnostic {
  DiagKind Kind = DiagKind::Error;
  SourceLoc Loc;
  std::string Message;

  /// Renders the diagnostic in the conventional "line:col: kind: message"
  /// shape used by compilers.
  std::string str() const;
};

/// Collects diagnostics emitted during an analysis run.
///
/// Analyses append diagnostics as they go; clients query counts afterwards
/// or render the full list. The engine is deliberately append-only so a
/// caller can snapshot size() before a sub-analysis and diff afterwards.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message) {
    report(DiagKind::Error, Loc, std::move(Message));
  }
  void warning(SourceLoc Loc, std::string Message) {
    report(DiagKind::Warning, Loc, std::move(Message));
  }
  void note(SourceLoc Loc, std::string Message) {
    report(DiagKind::Note, Loc, std::move(Message));
  }
  void report(DiagKind Kind, SourceLoc Loc, std::string Message);

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }
  size_t size() const { return Diags.size(); }
  bool empty() const { return Diags.empty(); }

  unsigned errorCount() const { return NumErrors; }
  unsigned warningCount() const { return NumWarnings; }
  bool hasErrors() const { return NumErrors != 0; }

  /// Discards all recorded diagnostics.
  void clear();

  /// Renders every diagnostic, one per line.
  std::string str() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
  unsigned NumWarnings = 0;
};

} // namespace mix

#endif // MIX_SUPPORT_DIAGNOSTICS_H
