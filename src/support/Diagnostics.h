//===--- Diagnostics.h - Diagnostic engine ----------------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostic engine shared by every analysis in the project.
///
/// The paper's analyses report three flavours of result: hard errors (the
/// program is rejected), warnings (possible null dereference found by
/// qualifier inference or symbolic execution), and notes that explain a
/// preceding diagnostic (e.g. the qualifier flow path that witnesses a
/// warning). Library code never prints directly; it records diagnostics
/// here and tools render them.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_SUPPORT_DIAGNOSTICS_H
#define MIX_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace mix {

namespace prov {
struct DiagProvenance;
} // namespace prov

/// Severity of a diagnostic.
enum class DiagKind {
  Error,   ///< The analysis rejects the program.
  Warning, ///< A possible property violation (e.g. null dereference).
  Note,    ///< Additional context attached to the previous diagnostic.
};

/// Stable identity of a diagnostic, independent of its message text.
/// Values are grouped by hundreds into categories (see diagCategory) and
/// are part of the tool output contract: renumbering an existing ID is a
/// breaking change to --format=json consumers.
enum class DiagID : uint16_t {
  None = 0, ///< Unclassified (legacy call sites); category "general".

  // 1xx — parse: lexing / parsing of either input language.
  LexError = 101,
  ParseError = 102,

  // 2xx — type: the off-the-shelf type checkers.
  TypeError = 201,

  // 3xx — path: symbolic execution and the mix rules.
  SymExecError = 301,      ///< type error on a feasible path
  PathsNotExhaustive = 302,
  ExecBudget = 303,        ///< path/step budget exhausted
  NoFeasiblePath = 304,
  ResultTypeMismatch = 305,
  MemoryInconsistent = 306, ///< |- m ok failed
  EscapedClosure = 307,

  // 4xx — null: MIXY qualifier inference / null-pointer checking.
  NullWarning = 401,
  QualFlowNote = 402,
  WitnessNote = 403,

  // 5xx — driver: tool-level failures surfaced as diagnostics.
  EntryNotFound = 501,
  CacheDegraded = 502, ///< persistent cache rejected; run started cold

  // 6xx — sign: the sign-qualifier extension.
  SignError = 601,
};

/// Stable rendering of an ID: "MIX401". DiagID::None renders as "MIX000".
std::string diagIdString(DiagID ID);

/// Category slug of an ID's hundreds group: "parse", "type", "path",
/// "null", "driver", "sign", or "general".
const char *diagCategory(DiagID ID);

/// A single reported diagnostic.
struct Diagnostic {
  DiagKind Kind = DiagKind::Error;
  SourceLoc Loc;
  std::string Message;
  DiagID ID = DiagID::None;
  /// For notes: index (into the engine's diagnostic list) of the error or
  /// warning this note elaborates, or NoParent for a free-standing note.
  /// The structural link replaces the old by-adjacency convention; text
  /// rendering still emits notes right after their parent, so str()
  /// output is unchanged.
  static constexpr size_t NoParent = (size_t)-1;
  size_t Parent = NoParent;

  /// Evidence for this diagnostic (witness path, qualifier flow chain,
  /// block context), or null when no provenance sink was attached. The
  /// payload is immutable and shared: cache replays and parallel merges
  /// re-attach the same object. Opaque to this layer — src/provenance
  /// defines the type and every renderer of it.
  std::shared_ptr<const prov::DiagProvenance> Prov;

  /// Renders the diagnostic in the conventional "line:col: kind: message"
  /// shape used by compilers.
  std::string str() const;
};

/// Collects diagnostics emitted during an analysis run.
///
/// Analyses append diagnostics as they go; clients query counts afterwards
/// or render the full list. The engine is deliberately append-only so a
/// caller can snapshot size() before a sub-analysis and diff afterwards.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message, DiagID ID = DiagID::None) {
    report(DiagKind::Error, Loc, std::move(Message), ID);
  }
  void warning(SourceLoc Loc, std::string Message, DiagID ID = DiagID::None) {
    report(DiagKind::Warning, Loc, std::move(Message), ID);
  }
  /// Notes attach structurally to the most recent error or warning (their
  /// Parent index); a note with no preceding diagnostic stands alone.
  void note(SourceLoc Loc, std::string Message, DiagID ID = DiagID::None) {
    report(DiagKind::Note, Loc, std::move(Message), ID);
  }
  /// Appends a diagnostic and returns its index, so callers can attach
  /// provenance or notes structurally.
  size_t report(DiagKind Kind, SourceLoc Loc, std::string Message,
                DiagID ID = DiagID::None);

  /// Attaches a provenance payload to the diagnostic at \p Index. A null
  /// payload clears it.
  void attachProvenance(size_t Index,
                        std::shared_ptr<const prov::DiagProvenance> P) {
    Diags[Index].Prov = std::move(P);
  }

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }
  size_t size() const { return Diags.size(); }
  bool empty() const { return Diags.empty(); }

  /// Indices of the notes attached to the diagnostic at \p Parent.
  std::vector<size_t> notesFor(size_t Parent) const;

  /// Indices of every top-level diagnostic (errors, warnings, and
  /// free-standing notes — everything except notes with a parent),
  /// stably sorted by (line, column, id). The shared result order of the
  /// sorted JSON and SARIF renderers, which makes machine output
  /// byte-identical across --jobs values.
  std::vector<size_t> sortedTopLevelIndices() const;

  unsigned errorCount() const { return NumErrors; }
  unsigned warningCount() const { return NumWarnings; }
  bool hasErrors() const { return NumErrors != 0; }

  /// Discards all recorded diagnostics.
  void clear();

  /// Renders every diagnostic, one per line.
  std::string str() const;

  /// Renders the diagnostics as a JSON array. Errors and warnings become
  /// objects with "id", "category", "severity", "line", "column",
  /// "message", and a "notes" array of their structurally attached notes;
  /// free-standing notes render as top-level objects with an empty notes
  /// list. The --format=json surface of both CLIs.
  ///
  /// With \p Sorted, top-level entries are ordered by (line, column, id)
  /// instead of emission order, so parallel runs render byte-identically
  /// (the drivers always pass true); the default mirrors engine order.
  std::string renderJSON(bool Sorted = false) const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
  unsigned NumWarnings = 0;
};

} // namespace mix

#endif // MIX_SUPPORT_DIAGNOSTICS_H
