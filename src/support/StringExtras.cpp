//===--- StringExtras.cpp - String utilities ------------------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "support/StringExtras.h"

using namespace mix;

std::string mix::join(const std::vector<std::string> &Parts,
                      std::string_view Sep) {
  std::string Out;
  for (size_t I = 0, E = Parts.size(); I != E; ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

bool mix::startsWith(std::string_view S, std::string_view Prefix) {
  return S.size() >= Prefix.size() && S.substr(0, Prefix.size()) == Prefix;
}

std::vector<std::string> mix::split(std::string_view S, char Sep) {
  std::vector<std::string> Out;
  size_t Start = 0;
  for (size_t I = 0, E = S.size(); I != E; ++I) {
    if (S[I] != Sep)
      continue;
    Out.emplace_back(S.substr(Start, I - Start));
    Start = I + 1;
  }
  Out.emplace_back(S.substr(Start));
  return Out;
}

std::string_view mix::trim(std::string_view S) {
  auto IsSpace = [](char C) {
    return C == ' ' || C == '\t' || C == '\n' || C == '\r';
  };
  while (!S.empty() && IsSpace(S.front()))
    S.remove_prefix(1);
  while (!S.empty() && IsSpace(S.back()))
    S.remove_suffix(1);
  return S;
}
