//===--- StringExtras.cpp - String utilities ------------------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "support/StringExtras.h"

#include <algorithm>

using namespace mix;

std::string mix::join(const std::vector<std::string> &Parts,
                      std::string_view Sep) {
  std::string Out;
  for (size_t I = 0, E = Parts.size(); I != E; ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

bool mix::startsWith(std::string_view S, std::string_view Prefix) {
  return S.size() >= Prefix.size() && S.substr(0, Prefix.size()) == Prefix;
}

std::vector<std::string> mix::split(std::string_view S, char Sep) {
  std::vector<std::string> Out;
  size_t Start = 0;
  for (size_t I = 0, E = S.size(); I != E; ++I) {
    if (S[I] != Sep)
      continue;
    Out.emplace_back(S.substr(Start, I - Start));
    Start = I + 1;
  }
  Out.emplace_back(S.substr(Start));
  return Out;
}

std::string mix::jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if ((unsigned char)C < 0x20) {
        static const char *Hex = "0123456789abcdef";
        Out += "\\u00";
        Out += Hex[((unsigned char)C >> 4) & 0xF];
        Out += Hex[(unsigned char)C & 0xF];
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

unsigned mix::editDistance(std::string_view A, std::string_view B) {
  // One-row dynamic program; the strings here are flag names, so the
  // quadratic cost is trivial.
  std::vector<unsigned> Row(B.size() + 1);
  for (size_t J = 0; J <= B.size(); ++J)
    Row[J] = (unsigned)J;
  for (size_t I = 1; I <= A.size(); ++I) {
    unsigned Diag = Row[0];
    Row[0] = (unsigned)I;
    for (size_t J = 1; J <= B.size(); ++J) {
      unsigned Sub = Diag + (A[I - 1] == B[J - 1] ? 0 : 1);
      Diag = Row[J];
      Row[J] = std::min({Row[J] + 1, Row[J - 1] + 1, Sub});
    }
  }
  return Row[B.size()];
}

std::string_view mix::trim(std::string_view S) {
  auto IsSpace = [](char C) {
    return C == ' ' || C == '\t' || C == '\n' || C == '\r';
  };
  while (!S.empty() && IsSpace(S.front()))
    S.remove_prefix(1);
  while (!S.empty() && IsSpace(S.back()))
    S.remove_suffix(1);
  return S;
}
