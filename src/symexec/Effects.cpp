//===--- Effects.cpp - Write-effect inference for typed blocks -------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "symexec/Effects.h"

#include <map>

using namespace mix;

namespace {

/// How a block-local binding behaves for effect purposes.
enum class BindingKind {
  FreshRef, ///< `let x = ref e`: a block-local allocation.
  Opaque,   ///< anything else: may alias an outer location.
};

class EffectWalker {
public:
  WriteEffects run(const Expr *E) {
    std::map<std::string, BindingKind> Locals;
    walk(E, Locals);
    return Effects;
  }

private:
  void writeTo(const Expr *Target,
               const std::map<std::string, BindingKind> &Locals) {
    const auto *V = dyn_cast<VarExpr>(Target);
    if (!V) {
      // A computed target (e.g. `!p := e`): could be any location.
      Effects.MayWriteUnknown = true;
      return;
    }
    auto It = Locals.find(V->name());
    if (It == Locals.end()) {
      // An outer variable's cell.
      Effects.Vars.insert(V->name());
      return;
    }
    if (It->second == BindingKind::Opaque)
      // A local alias of something unknown.
      Effects.MayWriteUnknown = true;
    // FreshRef: writes to a block-local allocation never escape.
  }

  void walk(const Expr *E, std::map<std::string, BindingKind> Locals) {
    switch (E->kind()) {
    case ExprKind::Var:
    case ExprKind::IntLit:
    case ExprKind::BoolLit:
      return;
    case ExprKind::Binary:
      walk(cast<BinaryExpr>(E)->lhs(), Locals);
      walk(cast<BinaryExpr>(E)->rhs(), Locals);
      return;
    case ExprKind::Not:
      walk(cast<NotExpr>(E)->sub(), Locals);
      return;
    case ExprKind::If: {
      const auto *I = cast<IfExpr>(E);
      walk(I->cond(), Locals);
      walk(I->thenExpr(), Locals);
      walk(I->elseExpr(), Locals);
      return;
    }
    case ExprKind::Let: {
      const auto *L = cast<LetExpr>(E);
      walk(L->init(), Locals);
      Locals[L->name()] = isa<RefExpr>(L->init()) ? BindingKind::FreshRef
                                                  : BindingKind::Opaque;
      walk(L->body(), Locals);
      return;
    }
    case ExprKind::Ref:
      walk(cast<RefExpr>(E)->sub(), Locals);
      return;
    case ExprKind::Deref:
      walk(cast<DerefExpr>(E)->sub(), Locals);
      return;
    case ExprKind::Assign: {
      const auto *A = cast<AssignExpr>(E);
      writeTo(A->target(), Locals);
      walk(A->target(), Locals);
      walk(A->value(), Locals);
      return;
    }
    case ExprKind::Seq:
      walk(cast<SeqExpr>(E)->first(), Locals);
      walk(cast<SeqExpr>(E)->second(), Locals);
      return;
    case ExprKind::Block:
      // Nested blocks execute their body either way.
      walk(cast<BlockExpr>(E)->body(), Locals);
      return;
    case ExprKind::Fun:
      // The closure body runs only when applied, and applications are
      // already treated as unknown effects; still, scan it so a later,
      // smarter treatment of App does not silently miss writes.
      walk(cast<FunExpr>(E)->body(), Locals);
      return;
    case ExprKind::App:
      // The callee may capture and write arbitrary references.
      Effects.MayWriteUnknown = true;
      walk(cast<AppExpr>(E)->fn(), Locals);
      walk(cast<AppExpr>(E)->arg(), Locals);
      return;
    }
  }

  WriteEffects Effects;
};

} // namespace

WriteEffects mix::computeWriteEffects(const Expr *E) {
  EffectWalker Walker;
  return Walker.run(E);
}
