//===--- MemCheck.h - The memory consistency judgment |- m ok --*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements the `|- m ok` judgment of Figure 3: a symbolic memory is
/// consistently typed when every pointer points to a value of its
/// annotated type, except that ill-typed writes which were later
/// overwritten (at a syntactically identical address, Overwrite-Ok) are
/// forgiven. SEDeref and both mix rules use this check before trusting
/// type annotations on memory reads.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_SYMEXEC_MEMCHECK_H
#define MIX_SYMEXEC_MEMCHECK_H

#include "sym/SymArena.h"

#include <vector>

namespace mix {

/// Result of checking `|- m ok`.
struct MemCheckResult {
  bool Ok = true;
  /// When !Ok: the log entries whose writes are inconsistently typed and
  /// never overwritten (the residual set U of the judgment).
  std::vector<const MemNode *> BadWrites;
};

/// Checks the consistency judgment `|- m ok` for \p Mem. Conditional
/// memories (the SEIf-Defer extension) are ok only when both branches are
/// ok — a sound approximation.
MemCheckResult checkMemoryOk(const MemNode *Mem);

} // namespace mix

#endif // MIX_SYMEXEC_MEMCHECK_H
