//===--- SymExecutor.h - Symbolic executor for the core language -*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The symbolic executor of Figures 2 and 3, proving judgments
///
///   Sigma |- <S ; e> || <S' ; s>       with  S = <g ; m>
///
/// Like the paper's formulation it is a very precise dynamic type checker:
/// operations applied to wrongly-typed symbolic values halt that path with
/// a type error. Conditionals either *fork* (SEIf-True / SEIf-False, the
/// DART/KLEE style) or *defer* to the solver with conditional values
/// (SEIf-Defer) — both strategies from Section 3.1 are implemented and
/// selectable, since the paper discusses the trade-off explicitly.
///
/// The SETypBlock mix rule enters through TypedBlockOracle: executing a
/// typed block checks |- m ok, asks the oracle (the type checker, wired up
/// by mix/MixChecker) for the block's type tau, yields a fresh alpha:tau,
/// and havocs memory to a fresh mu'.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_SYMEXEC_SYMEXECUTOR_H
#define MIX_SYMEXEC_SYMEXECUTOR_H

#include "lang/Ast.h"
#include "observe/Metrics.h"
#include "observe/Phase.h"
#include "observe/Trace.h"
#include "provenance/Provenance.h"
#include "support/Diagnostics.h"
#include "sym/SymArena.h"
#include "sym/SymToSmt.h"
#include "solver/PathSolver.h"

#include <optional>
#include <string>
#include <vector>

namespace mix {

/// A symbolic execution state S = <g ; m>: path condition and memory.
struct SymState {
  const SymExpr *Path = nullptr; ///< g — the path condition (bool-typed).
  const MemNode *Mem = nullptr;  ///< m — the symbolic memory.
  /// The path condition as a chain of *translated* (smt::Term) branch
  /// deltas, mirroring Path guard-for-guard. Lets the executor's
  /// PathSolver sync its incremental assertion stack by diffing against
  /// sibling paths. Empty until a solver+translator are attached; a
  /// deferred-merge path (whose condition is rebuilt as an ite) restarts
  /// the chain from the merged condition.
  smt::PathCondition PC;
  /// In concolic mode: the signed branch guards taken, in order (the
  /// decision list DART negates to reach new paths). Empty otherwise.
  std::vector<const SymExpr *> Decisions;
  /// With provenance recording on (SymExecOptions::Prov): the branch
  /// decisions that led to this state, in execution order — the witness
  /// path attached to path-sensitive diagnostics. Always empty when
  /// recording is off, so state copies stay cheap.
  std::vector<prov::WitnessStep> Trail;
};

/// A concrete valuation guiding a concolic run (the DART/CUTE style of
/// Section 3.1): values for symbolic variables (by id) and for deferred
/// memory reads (by their hash-consed select expression).
struct ConcolicSeed {
  std::map<unsigned, long long> IntVars;
  std::map<unsigned, bool> BoolVars;
  std::map<const SymExpr *, long long> IntSelects;
  std::map<const SymExpr *, bool> BoolSelects;
};

/// One outcome of executing an expression: either a value in a final
/// state, or a type error discovered along a path.
struct PathResult {
  SymState State;
  /// The resulting symbolic expression; null when IsError.
  const SymExpr *Value = nullptr;
  bool IsError = false;
  SourceLoc ErrorLoc;
  std::string ErrorMessage;

  static PathResult success(SymState S, const SymExpr *V) {
    PathResult R;
    R.State = S;
    R.Value = V;
    return R;
  }
  static PathResult failure(SymState S, SourceLoc Loc, std::string Message) {
    PathResult R;
    R.State = S;
    R.IsError = true;
    R.ErrorLoc = Loc;
    R.ErrorMessage = std::move(Message);
    return R;
  }
};

/// The hook by which the executor "executes" a typed block — the
/// SETypBlock rule of Figure 4. The MIX driver implements this with the
/// type checker; see mix/MixChecker.h.
class TypedBlockOracle {
public:
  virtual ~TypedBlockOracle() = default;

  /// Returns the type of `{t e t}` given the symbolic environment (from
  /// which the typing environment Gamma with |- Sigma : Gamma is derived)
  /// and the state at entry, or null after reporting diagnostics.
  ///
  /// The memory is passed so the oracle can verify values that *escape*
  /// into the typed world: in particular, closure values reachable from
  /// Sigma or memory carry arrow-type annotations that the typed code
  /// will trust, so their bodies must actually type check (see
  /// MixChecker::verifyEscapingClosures). The path condition lets
  /// refinement-style type systems (e.g. sign qualifiers, Section 2's
  /// "Local Refinements of Data") derive sharper qualifiers for the
  /// block's inputs.
  virtual const Type *typeOfTypedBlock(const BlockExpr *Block,
                                       const SymEnv &Env,
                                       const SymState &State) = 0;

  /// Called after typeOfTypedBlock succeeds, with the fresh variable
  /// \p ResultVar the block evaluates to. A refinement-typed oracle may
  /// return a guard to conjoin to the path condition (e.g. alpha > 0
  /// when the block's result type was `pos int`); return null for no
  /// refinement.
  virtual const SymExpr *refineTypedBlockResult(const BlockExpr *Block,
                                                const SymExpr *ResultVar,
                                                SymArena &Arena) {
    (void)Block;
    (void)ResultVar;
    (void)Arena;
    return nullptr;
  }
};

/// Tuning knobs for the executor.
struct SymExecOptions {
  /// How conditionals are handled (Section 3.1, Deferral vs Execution).
  enum class Strategy {
    Fork,  ///< SEIf-True / SEIf-False: explore both branches separately.
    Defer, ///< SEIf-Defer: merge with conditional values g ? s1 : s2.
    Concolic, ///< One path per run, chosen by a concrete valuation (the
              ///< DART/CUTE style); drive with mix/ConcolicDriver.
  };
  Strategy Strat = Strategy::Fork;

  /// Upper bound on simultaneously live paths; exceeding it aborts the
  /// execution with a resource error (which MIX treats as a rejection).
  unsigned MaxPaths = 65536;

  /// Upper bound on executor steps (AST-node visits across all paths).
  unsigned MaxSteps = 1u << 22;

  /// When a solver is attached, drop forked branches whose path condition
  /// is definitely unsatisfiable (the EXE/KLEE optimization the paper
  /// describes; soundness is unaffected because only Unsat paths go).
  bool PruneInfeasible = false;

  /// What SETypBlock does to memory (Section 3.2). FullMemory is the
  /// paper's rule: a completely fresh mu'. WriteEffects is the refinement
  /// the paper sketches ("find the effect of e and limit applying this
  /// 'havoc' operation only to locations that could have been changed"):
  /// when the block's write effect resolves to a set of variables, only
  /// their cells are replaced with fresh values; unknown effects fall
  /// back to the full havoc.
  enum class HavocPolicy { FullMemory, WriteEffects };
  HavocPolicy Havoc = HavocPolicy::FullMemory;

  /// SEDeref normally demands |- m ok for the whole memory. The paper
  /// notes the rule "may be made more precise by only requiring
  /// consistency up to a set of writes U and querying a solver to show
  /// that u1 : tau ref [is] disequal to all the address expressions in
  /// U"; with PreciseDeref the executor does exactly that (allocation
  /// addresses are distinct by construction; other pairs ask the solver).
  bool PreciseDeref = false;

  /// Route pruning/deref feasibility checks through an incremental
  /// AssertionStack (push/pop branch deltas between sibling paths)
  /// instead of from-scratch solving. Purely a query-count/latency knob:
  /// verdicts are identical either way.
  bool IncrementalSolver = true;

  /// Observability sinks (see src/observe/). With a registry attached the
  /// executor maintains "sym.forks", "sym.defers", and "sym.havocs"
  /// counters; with a trace sink it emits matching "sym.fork" /
  /// "sym.defer" / "sym.havoc" instant events. Null disables each at one
  /// branch per site.
  obs::MetricsRegistry *Metrics = nullptr;
  obs::TraceSink *Trace = nullptr;

  /// Per-request telemetry context (see src/observe/Phase.h). The IR
  /// executor charges lowering time to the request's ir-lower phase.
  /// Null — the default — costs one branch per site.
  obs::RequestTelemetry *Telemetry = nullptr;

  /// Provenance recording (see src/provenance/). When attached, every
  /// state carries its branch trail (SymState::Trail) so diagnostics can
  /// print witness paths. Null — the default — records nothing.
  prov::ProvenanceSink *Prov = nullptr;

  /// Which engine executes symbolic code (--exec=ast|ir). Ast is the
  /// direct AST walker below; Ir lowers each root expression once to the
  /// flat register bytecode (src/ir) and runs the concolic interpreter
  /// (src/concolic) over it, carrying concrete shadow values so fully
  /// concrete operations and branches never touch the arena or solver.
  /// Diagnostics are byte-identical between the two engines.
  enum class Engine { Ast, Ir };
  Engine ExecMode = Engine::Ast;

  /// (IR engine only) sweep symbolic expressions that became unreachable
  /// during a top-level run from the SymArena when that run ends.
  /// Automatically disabled under Strategy::Concolic, whose driver keeps
  /// seed tables keyed by expression identity across runs.
  bool ExprGC = true;
};

/// Parses an `--exec=` engine name; on failure fills \p Err with a
/// message listing the choices (the CLI prints it and exits 2, mirroring
/// `--solver=`).
inline bool parseExecEngine(const std::string &Name,
                            SymExecOptions::Engine &Out, std::string &Err) {
  if (Name == "ast") {
    Out = SymExecOptions::Engine::Ast;
    return true;
  }
  if (Name == "ir") {
    Out = SymExecOptions::Engine::Ir;
    return true;
  }
  Err = "unknown execution engine '" + Name + "' (available: ast ir)";
  return false;
}

inline const char *execEngineName(SymExecOptions::Engine E) {
  return E == SymExecOptions::Engine::Ir ? "ir" : "ast";
}

/// Result of a full execution: every path outcome, in exploration order.
struct SymExecResult {
  std::vector<PathResult> Paths;
  /// Set when MaxPaths/MaxSteps tripped; the result is then incomplete
  /// and must not be used to justify exhaustiveness.
  bool ResourceLimitHit = false;

  /// Convenience: true when no path ended in a type error.
  bool allPathsSucceeded() const {
    for (const PathResult &P : Paths)
      if (P.IsError)
        return false;
    return true;
  }
};

/// The execution-engine seam: both the AST-walking SymExecutor below and
/// the compiled-IR interpreter (concolic::IrExecutor) implement this
/// interface, and the mix layers (MixChecker, SignMix, ConcolicDriver)
/// drive whichever engine SymExecOptions::ExecMode selected — with
/// byte-identical diagnostics. Construct via concolic::makeExecEngine.
class ExecEngine {
public:
  virtual ~ExecEngine() = default;

  /// Installs the mix hook for typed blocks (may be null, in which case
  /// typed blocks are errors — that is "symbolic execution alone").
  virtual void setTypedBlockOracle(TypedBlockOracle *Oracle) = 0;

  /// Attaches a solver for infeasible-path pruning (optional).
  virtual void setSolver(smt::ISolver *Solver, SymToSmt *Translator) = 0;

  /// Installs the concrete valuation for Strategy::Concolic (not owned;
  /// must outlive the run).
  virtual void setConcolicSeed(const ConcolicSeed *Seed) = 0;
  virtual const ConcolicSeed *concolicSeed() const = 0;

  /// Executes \p E under \p Env from \p Init, exploring all paths.
  virtual SymExecResult run(const Expr *E, const SymEnv &Env,
                            SymState Init) = 0;

  /// Executes from the canonical initial state of the TSymBlock rule:
  /// path condition `true` and a fresh arbitrary memory mu.
  virtual SymExecResult run(const Expr *E, const SymEnv &Env) = 0;

  virtual SymArena &arena() = 0;
};

/// The symbolic executor (the AST-walking engine).
class SymExecutor : public ExecEngine {
public:
  SymExecutor(SymArena &Arena, DiagnosticEngine &Diags,
              SymExecOptions Opts = SymExecOptions())
      : Arena(Arena), Diags(Diags), Opts(Opts) {
    if (Opts.Metrics) {
      CForks = Opts.Metrics->counter("sym.forks");
      CDefers = Opts.Metrics->counter("sym.defers");
      CHavocs = Opts.Metrics->counter("sym.havocs");
      CExecPaths = Opts.Metrics->counter("exec.paths");
      CBranchesConc = Opts.Metrics->counter("exec.branches.concrete");
      CTermsBuilt = Opts.Metrics->counter("exec.terms.built");
    }
  }

  void setTypedBlockOracle(TypedBlockOracle *Oracle) override {
    TypedOracle = Oracle;
  }

  void setSolver(smt::ISolver *Solver, SymToSmt *Translator) override {
    this->Solver = Solver;
    this->Translator = Translator;
    PathChecker.reset();
    if (Solver)
      PathChecker = std::make_unique<smt::PathSolver>(
          *Solver, Opts.IncrementalSolver, Opts.Metrics);
  }

  void setConcolicSeed(const ConcolicSeed *Seed) override {
    this->Seed = Seed;
  }
  const ConcolicSeed *concolicSeed() const override { return Seed; }

  SymExecResult run(const Expr *E, const SymEnv &Env,
                    SymState Init) override;

  SymExecResult run(const Expr *E, const SymEnv &Env) override;

  SymArena &arena() override { return Arena; }

private:
  std::vector<PathResult> exec(const Expr *E, const SymEnv &Env, SymState S);
  std::vector<PathResult> execBinary(const BinaryExpr *B, const SymEnv &Env,
                                     SymState S);
  std::vector<PathResult> execIf(const IfExpr *I, const SymEnv &Env,
                                 SymState S);
  std::vector<PathResult> execIfDefer(const IfExpr *I, const SymEnv &Env,
                                      SymState S);
  std::vector<PathResult> execIfConcolic(const IfExpr *I, const SymEnv &Env,
                                         SymState S, const SymExpr *Guard);

  /// Evaluates a guard under the concolic seed (defaults: 0 / false).
  bool concreteTruth(const SymExpr *Guard) const;
  long long concreteInt(const SymExpr *E) const;
  std::vector<PathResult> execApp(const AppExpr *A, const SymEnv &Env,
                                  SymState S);
  std::vector<PathResult> execTypedBlock(const BlockExpr *B,
                                         const SymEnv &Env, SymState S);

  /// Applies the configured havoc policy to \p Mem for typed block \p B.
  const MemNode *havocForTypedBlock(const BlockExpr *B, const SymEnv &Env,
                                    const MemNode *Mem);

  /// Applies \p Next to every successful outcome in \p Outcomes,
  /// propagating errors unchanged.
  template <typename Fn>
  std::vector<PathResult> andThen(std::vector<PathResult> Outcomes, Fn Next);

  /// True when the path condition of \p S is definitely unsatisfiable and
  /// pruning is enabled.
  bool pruned(const SymState &S);

  /// SEDeref's memory premise: |- m ok, or — with PreciseDeref — ok up to
  /// inconsistent writes whose addresses are provably distinct from
  /// \p Addr under the path condition.
  bool derefMemoryOk(const SymState &S, const SymExpr *Addr);

  /// Conjoins \p Guard onto the state's path condition, mirroring the
  /// translated delta into the state's PathCondition chain so the
  /// incremental solver can diff sibling paths.
  void extendPath(SymState &S, const SymExpr *Guard) {
    S.Path = Arena.andG(S.Path, Guard);
    if (Translator)
      S.PC = S.PC.extend(Translator->terms(), Translator->translate(Guard));
  }

  bool budgetExceeded() const {
    return Steps > Opts.MaxSteps || LivePaths > Opts.MaxPaths;
  }

  SymArena &Arena;
  DiagnosticEngine &Diags;
  SymExecOptions Opts;
  TypedBlockOracle *TypedOracle = nullptr;
  smt::ISolver *Solver = nullptr;
  SymToSmt *Translator = nullptr;
  std::unique_ptr<smt::PathSolver> PathChecker;
  const ConcolicSeed *Seed = nullptr;

  unsigned Steps = 0;
  unsigned LivePaths = 1;
  bool HitLimit = false;

  /// run() nesting depth (oracle re-entry); per-run arena accounting for
  /// the exec.terms.built counter only happens at depth 0.
  unsigned Depth = 0;
  size_t RunBaseExprs = 0;

  // Registry handles (null/free when no registry is attached).
  obs::Counter CForks, CDefers, CHavocs;
  obs::Counter CExecPaths, CBranchesConc, CTermsBuilt;
};

} // namespace mix

#endif // MIX_SYMEXEC_SYMEXECUTOR_H
