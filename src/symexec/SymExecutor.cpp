//===--- SymExecutor.cpp - Symbolic executor for the core language --------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "symexec/SymExecutor.h"

#include "symexec/Effects.h"
#include "symexec/MemCheck.h"

using namespace mix;

SymExecResult SymExecutor::run(const Expr *E, const SymEnv &Env,
                               SymState Init) {
  // run() re-enters through the block oracles (a typed block's checker
  // may contain symbolic blocks); each run gets its own budget, and the
  // enclosing run's counters are restored afterwards.
  unsigned SavedSteps = Steps;
  unsigned SavedLivePaths = LivePaths;
  bool SavedHitLimit = HitLimit;
  Steps = 0;
  LivePaths = 1;
  HitLimit = false;
  if (Depth == 0)
    RunBaseExprs = Arena.numExprs();
  ++Depth;

  SymExecResult Result;
  Result.Paths = exec(E, Env, Init);
  Result.ResourceLimitHit = HitLimit;

  Steps = SavedSteps;
  LivePaths = SavedLivePaths;
  HitLimit = SavedHitLimit;
  --Depth;
  CExecPaths.add(Result.Paths.size());
  if (Depth == 0)
    CTermsBuilt.add(Arena.numExprs() - RunBaseExprs);
  return Result;
}

SymExecResult SymExecutor::run(const Expr *E, const SymEnv &Env) {
  SymState Init;
  Init.Path = Arena.trueGuard();
  Init.Mem = Arena.freshBaseMemory();
  return run(E, Env, Init);
}

template <typename Fn>
std::vector<PathResult> SymExecutor::andThen(std::vector<PathResult> Outcomes,
                                             Fn Next) {
  std::vector<PathResult> Results;
  for (PathResult &O : Outcomes) {
    if (O.IsError) {
      Results.push_back(std::move(O));
      continue;
    }
    std::vector<PathResult> Rest = Next(O.State, O.Value);
    for (PathResult &R : Rest)
      Results.push_back(std::move(R));
  }
  return Results;
}

bool SymExecutor::pruned(const SymState &S) {
  if (!Opts.PruneInfeasible || !Solver || !Translator)
    return false;
  if (S.Path->isConst())
    return !S.Path->boolValue();
  return PathChecker->checkPath(S.PC, Translator->translate(S.Path)) ==
         smt::SolveResult::Unsat;
}

bool SymExecutor::derefMemoryOk(const SymState &S, const SymExpr *Addr) {
  MemCheckResult Check = checkMemoryOk(S.Mem);
  if (Check.Ok)
    return true;
  if (!Opts.PreciseDeref)
    return false;

  // The refinement from Section 3.1: the read is still sound if the
  // address is disequal to every inconsistent write's address.
  for (const MemNode *Bad : Check.BadWrites) {
    const SymExpr *BadAddr = Bad->address();
    if (BadAddr == Addr)
      return false; // syntactically the same cell: definitely unsafe
    // Distinct address *variables* where at least one is an allocation
    // never alias ("an allocation always creates a new location that is
    // distinct from the locations in the base unknown memory" — and from
    // every input address, which predates it). Deferred reads (Select)
    // may evaluate to any address, so they do not qualify.
    bool BothVars = BadAddr->kind() == SymKind::Var &&
                    Addr->kind() == SymKind::Var;
    if (BothVars &&
        (Arena.isAllocAddress(BadAddr) || Arena.isAllocAddress(Addr)))
      continue;
    // Otherwise ask the solver to validate the disequality under the
    // path condition.
    if (!Solver || !Translator)
      return false;
    const smt::Term *Eq = Translator->terms().eqInt(
        Translator->translate(Addr), Translator->translate(BadAddr));
    if (PathChecker->checkPathWith(S.PC, Translator->translate(S.Path), Eq) !=
        smt::SolveResult::Unsat)
      return false;
  }
  return true;
}

std::vector<PathResult> SymExecutor::exec(const Expr *E, const SymEnv &Env,
                                          SymState S) {
  if (++Steps > Opts.MaxSteps) {
    HitLimit = true;
    return {PathResult::failure(S, E->loc(),
                                "symbolic execution step budget exceeded")};
  }

  switch (E->kind()) {
  case ExprKind::Var: {
    // SEVar: look the variable up; being unbound means the program is
    // stuck, which the executor reports as an error on this path.
    const auto *V = cast<VarExpr>(E);
    auto It = Env.find(V->name());
    if (It == Env.end())
      return {PathResult::failure(S, E->loc(),
                                  "unbound variable '" + V->name() + "'")};
    return {PathResult::success(S, It->second)};
  }
  case ExprKind::IntLit:
    // SEVal with typeof(n) = int.
    return {PathResult::success(
        S, Arena.intConst(cast<IntLitExpr>(E)->value()))};
  case ExprKind::BoolLit:
    // SEVal with typeof(true/false) = bool.
    return {PathResult::success(
        S, Arena.boolConst(cast<BoolLitExpr>(E)->value()))};
  case ExprKind::Binary:
    return execBinary(cast<BinaryExpr>(E), Env, S);
  case ExprKind::Not:
    // SENot: the operand must reduce to a guard.
    return andThen(exec(cast<NotExpr>(E)->sub(), Env, S),
                   [&](SymState S1, const SymExpr *V) -> std::vector<PathResult> {
                     if (!V->type()->isBool())
                       return {PathResult::failure(
                           S1, E->loc(),
                           "'not' applied to non-bool symbolic value of "
                           "type " +
                               V->type()->str())};
                     return {PathResult::success(S1, Arena.notG(V))};
                   });
  case ExprKind::If:
    return execIf(cast<IfExpr>(E), Env, S);
  case ExprKind::Let: {
    // SELet, with the dynamic counterpart of a type ascription.
    const auto *L = cast<LetExpr>(E);
    return andThen(exec(L->init(), Env, S),
                   [&](SymState S1, const SymExpr *V) -> std::vector<PathResult> {
                     if (L->declaredType() && V->type() != L->declaredType())
                       return {PathResult::failure(
                           S1, E->loc(),
                           "let binding declares " +
                               L->declaredType()->str() +
                               " but value has type " + V->type()->str())};
                     SymEnv Extended = Env;
                     Extended[L->name()] = V;
                     return exec(L->body(), Extended, S1);
                   });
  }
  case ExprKind::Ref:
    // SERef: allocate a fresh location alpha, log m,(alpha ->a v).
    return andThen(exec(cast<RefExpr>(E)->sub(), Env, S),
                   [&](SymState S1, const SymExpr *V) -> std::vector<PathResult> {
                     const Type *RefTy = Arena.types().refType(V->type());
                     const SymExpr *Addr =
                         Arena.freshVar(RefTy, /*IsAllocAddr=*/true);
                     SymState S2 = S1;
                     S2.Mem = Arena.alloc(S1.Mem, Addr, V);
                     return {PathResult::success(S2, Addr)};
                   });
  case ExprKind::Deref:
    // SEDeref: requires a ref-typed pointer and |- m ok (or, with the
    // PreciseDeref refinement, consistency up to provably-disequal
    // writes), then defers the read as m[u : tau ref] : tau.
    return andThen(exec(cast<DerefExpr>(E)->sub(), Env, S),
                   [&](SymState S1, const SymExpr *V) -> std::vector<PathResult> {
                     if (!V->type()->isRef())
                       return {PathResult::failure(
                           S1, E->loc(),
                           "'!' applied to non-reference symbolic value of "
                           "type " +
                               V->type()->str())};
                     if (!derefMemoryOk(S1, V))
                       return {PathResult::failure(
                           S1, E->loc(),
                           "memory is not consistently typed at "
                           "dereference (|- m ok fails)")};
                     return {PathResult::success(S1,
                                                 Arena.select(S1.Mem, V))};
                   });
  case ExprKind::Assign: {
    // SEAssign: log the write, even an ill-typed one — the m-ok check at
    // reads and block boundaries polices it later.
    const auto *A = cast<AssignExpr>(E);
    return andThen(
        exec(A->target(), Env, S),
        [&](SymState S1, const SymExpr *Target) -> std::vector<PathResult> {
          if (!Target->type()->isRef())
            return {PathResult::failure(
                S1, E->loc(),
                "':=' target is a non-reference symbolic value of type " +
                    Target->type()->str())};
          return andThen(
              exec(A->value(), Env, S1),
              [&](SymState S2, const SymExpr *V) -> std::vector<PathResult> {
                SymState S3 = S2;
                S3.Mem = Arena.update(S2.Mem, Target, V);
                return {PathResult::success(S3, V)};
              });
        });
  }
  case ExprKind::Seq: {
    const auto *Q = cast<SeqExpr>(E);
    return andThen(exec(Q->first(), Env, S),
                   [&](SymState S1, const SymExpr *) {
                     return exec(Q->second(), Env, S1);
                   });
  }
  case ExprKind::Block: {
    const auto *B = cast<BlockExpr>(E);
    if (B->blockKind() == BlockKind::Symbolic)
      return exec(B->body(), Env, S); // symbolic-in-symbolic passes through
    return execTypedBlock(B, Env, S);
  }
  case ExprKind::Fun: {
    const auto *F = cast<FunExpr>(E);
    const Type *FnTy =
        Arena.types().funType(F->paramType(), F->resultType());
    return {PathResult::success(S, Arena.closure(FnTy, F, Env))};
  }
  case ExprKind::App:
    return execApp(cast<AppExpr>(E), Env, S);
  }
  return {PathResult::failure(S, E->loc(), "unhandled expression form")};
}

std::vector<PathResult> SymExecutor::execBinary(const BinaryExpr *B,
                                                const SymEnv &Env,
                                                SymState S) {
  return andThen(
      exec(B->lhs(), Env, S),
      [&](SymState S1, const SymExpr *L) -> std::vector<PathResult> {
        return andThen(
            exec(B->rhs(), Env, S1),
            [&](SymState S2, const SymExpr *R) -> std::vector<PathResult> {
              auto Fail = [&](const char *Need) {
                return std::vector<PathResult>{PathResult::failure(
                    S2, B->loc(),
                    std::string("operator '") + binaryOpSpelling(B->op()) +
                        "' applied to " + L->type()->str() + " and " +
                        R->type()->str() + " (needs " + Need + ")")};
              };
              switch (B->op()) {
              case BinaryOp::Add:
                // SEPlus: both operands must be symbolic integers.
                if (!L->type()->isInt() || !R->type()->isInt())
                  return Fail("int operands");
                return {PathResult::success(S2, Arena.add(L, R))};
              case BinaryOp::Sub:
                if (!L->type()->isInt() || !R->type()->isInt())
                  return Fail("int operands");
                return {PathResult::success(S2, Arena.sub(L, R))};
              case BinaryOp::Lt:
                if (!L->type()->isInt() || !R->type()->isInt())
                  return Fail("int operands");
                return {PathResult::success(S2, Arena.lt(L, R))};
              case BinaryOp::Le:
                if (!L->type()->isInt() || !R->type()->isInt())
                  return Fail("int operands");
                return {PathResult::success(S2, Arena.le(L, R))};
              case BinaryOp::Eq:
                // SEEq: operands of equal base type.
                if (L->type() != R->type() ||
                    !(L->type()->isInt() || L->type()->isBool()))
                  return Fail("two ints or two bools");
                return {PathResult::success(S2, Arena.eq(L, R))};
              case BinaryOp::And:
                // SEAnd: both operands must be guards.
                if (!L->type()->isBool() || !R->type()->isBool())
                  return Fail("bool operands");
                return {PathResult::success(S2, Arena.andG(L, R))};
              case BinaryOp::Or:
                if (!L->type()->isBool() || !R->type()->isBool())
                  return Fail("bool operands");
                return {PathResult::success(S2, Arena.orG(L, R))};
              }
              return Fail("supported operator");
            });
      });
}

bool SymExecutor::concreteTruth(const SymExpr *Guard) const {
  switch (Guard->kind()) {
  case SymKind::BoolConst:
    return Guard->boolValue();
  case SymKind::Var: {
    if (!Seed)
      return false;
    auto It = Seed->BoolVars.find(Guard->varId());
    return It != Seed->BoolVars.end() && It->second;
  }
  case SymKind::Eq: {
    const SymExpr *L = Guard->operand(0);
    if (L->type()->isBool())
      return concreteTruth(L) == concreteTruth(Guard->operand(1));
    return concreteInt(L) == concreteInt(Guard->operand(1));
  }
  case SymKind::Lt:
    return concreteInt(Guard->operand(0)) < concreteInt(Guard->operand(1));
  case SymKind::Le:
    return concreteInt(Guard->operand(0)) <= concreteInt(Guard->operand(1));
  case SymKind::Not:
    return !concreteTruth(Guard->operand(0));
  case SymKind::And:
    return concreteTruth(Guard->operand(0)) &&
           concreteTruth(Guard->operand(1));
  case SymKind::Or:
    return concreteTruth(Guard->operand(0)) ||
           concreteTruth(Guard->operand(1));
  case SymKind::Ite:
    return concreteTruth(Guard->operand(0))
               ? concreteTruth(Guard->operand(1))
               : concreteTruth(Guard->operand(2));
  case SymKind::Select: {
    if (!Seed)
      return false;
    auto It = Seed->BoolSelects.find(Guard);
    return It != Seed->BoolSelects.end() && It->second;
  }
  default:
    return false;
  }
}

long long SymExecutor::concreteInt(const SymExpr *E) const {
  switch (E->kind()) {
  case SymKind::IntConst:
    return E->intValue();
  case SymKind::Var: {
    if (!Seed)
      return 0;
    auto It = Seed->IntVars.find(E->varId());
    return It == Seed->IntVars.end() ? 0 : It->second;
  }
  case SymKind::Add:
    return concreteInt(E->operand(0)) + concreteInt(E->operand(1));
  case SymKind::Sub:
    return concreteInt(E->operand(0)) - concreteInt(E->operand(1));
  case SymKind::Ite:
    return concreteTruth(E->operand(0)) ? concreteInt(E->operand(1))
                                        : concreteInt(E->operand(2));
  case SymKind::Select: {
    if (!Seed)
      return 0;
    auto It = Seed->IntSelects.find(E);
    return It == Seed->IntSelects.end() ? 0 : It->second;
  }
  default:
    return 0;
  }
}

std::vector<PathResult> SymExecutor::execIfConcolic(const IfExpr *I,
                                                    const SymEnv &Env,
                                                    SymState S,
                                                    const SymExpr *Guard) {
  // The DART/CUTE style: "continue down one path as guided by an
  // underlying concrete run". The taken signed guard is recorded so the
  // driver can negate it later.
  bool TakeThen = concreteTruth(Guard);
  const SymExpr *Signed = TakeThen ? Guard : Arena.notG(Guard);
  SymState Next = std::move(S);
  extendPath(Next, Signed);
  Next.Decisions.push_back(Signed);
  if (Opts.Prov)
    Next.Trail.push_back({I->cond()->loc(),
                          TakeThen ? "condition true" : "condition false"});
  return exec(TakeThen ? I->thenExpr() : I->elseExpr(), Env, Next);
}

std::vector<PathResult> SymExecutor::execIf(const IfExpr *I, const SymEnv &Env,
                                            SymState S) {
  if (Opts.Strat == SymExecOptions::Strategy::Defer)
    return execIfDefer(I, Env, S);

  // SEIf-True / SEIf-False: fork, extending the path condition with the
  // guard or its negation. Constant guards take only their branch (the
  // partial-evaluation special case the paper mentions).
  return andThen(
      exec(I->cond(), Env, S),
      [&](SymState S1, const SymExpr *G) -> std::vector<PathResult> {
        if (!G->type()->isBool())
          return {PathResult::failure(S1, I->cond()->loc(),
                                      "condition has non-bool type " +
                                          G->type()->str())};
        if (G->isConst()) {
          // Partial evaluation: a concrete guard takes one branch and
          // never consults the solver.
          CBranchesConc.inc();
          return exec(G->boolValue() ? I->thenExpr() : I->elseExpr(), Env,
                      S1);
        }
        if (Opts.Strat == SymExecOptions::Strategy::Concolic)
          return execIfConcolic(I, Env, std::move(S1), G);

        std::vector<PathResult> Results;
        ++LivePaths;
        CForks.inc();
        if (Opts.Trace)
          Opts.Trace->instant("sym.fork", "sym");
        if (LivePaths > Opts.MaxPaths) {
          HitLimit = true;
          return {PathResult::failure(S1, I->loc(),
                                      "path budget exceeded at conditional")};
        }

        SymState ThenState = S1;
        extendPath(ThenState, G);
        if (Opts.Prov)
          ThenState.Trail.push_back({I->cond()->loc(), "condition true"});
        if (!pruned(ThenState)) {
          auto Then = exec(I->thenExpr(), Env, ThenState);
          for (PathResult &R : Then)
            Results.push_back(std::move(R));
        }

        SymState ElseState = S1;
        extendPath(ElseState, Arena.notG(G));
        if (Opts.Prov)
          ElseState.Trail.push_back({I->cond()->loc(), "condition false"});
        if (!pruned(ElseState)) {
          auto Else = exec(I->elseExpr(), Env, ElseState);
          for (PathResult &R : Else)
            Results.push_back(std::move(R));
        }
        return Results;
      });
}

std::vector<PathResult> SymExecutor::execIfDefer(const IfExpr *I,
                                                 const SymEnv &Env,
                                                 SymState S) {
  // SEIf-Defer: run both branches under extended guards, then merge
  // values, path conditions, and memories with conditional expressions.
  // The rule requires both branches to produce the same type.
  return andThen(
      exec(I->cond(), Env, S),
      [&](SymState S1, const SymExpr *G) -> std::vector<PathResult> {
        if (!G->type()->isBool())
          return {PathResult::failure(S1, I->cond()->loc(),
                                      "condition has non-bool type " +
                                          G->type()->str())};
        if (G->isConst()) {
          CBranchesConc.inc();
          return exec(G->boolValue() ? I->thenExpr() : I->elseExpr(), Env,
                      S1);
        }

        CDefers.inc();
        if (Opts.Trace)
          Opts.Trace->instant("sym.defer", "sym");

        SymState ThenState = S1;
        extendPath(ThenState, G);
        SymState ElseState = S1;
        extendPath(ElseState, Arena.notG(G));
        if (Opts.Prov) {
          ThenState.Trail.push_back(
              {I->cond()->loc(), "condition true (deferred)"});
          ElseState.Trail.push_back(
              {I->cond()->loc(), "condition false (deferred)"});
        }

        std::vector<PathResult> ThenOuts =
            exec(I->thenExpr(), Env, ThenState);
        std::vector<PathResult> ElseOuts =
            exec(I->elseExpr(), Env, ElseState);

        // Errors on either side surface as errors under their own guard;
        // success pairs merge into a single deferred outcome.
        std::vector<PathResult> Results;
        for (PathResult &T : ThenOuts)
          if (T.IsError)
            Results.push_back(std::move(T));
        for (PathResult &F : ElseOuts)
          if (F.IsError)
            Results.push_back(std::move(F));

        for (const PathResult &T : ThenOuts) {
          if (T.IsError)
            continue;
          for (const PathResult &F : ElseOuts) {
            if (F.IsError)
              continue;
            if (T.Value->type() != F.Value->type()) {
              Results.push_back(PathResult::failure(
                  S1, I->loc(),
                  "SEIf-Defer requires both branches to have the same "
                  "type, got " +
                      T.Value->type()->str() + " vs " +
                      F.Value->type()->str()));
              continue;
            }
            SymState Merged;
            Merged.Path = Arena.ite(G, T.State.Path, F.State.Path);
            Merged.Mem = Arena.iteMem(G, T.State.Mem, F.State.Mem);
            // The merged condition is rebuilt as an ite, not a
            // conjunction extension; restart the delta chain from it so
            // later branch deltas still diff incrementally.
            if (Translator)
              Merged.PC = smt::PathCondition().extend(
                  Translator->terms(), Translator->translate(Merged.Path));
            if (Opts.Prov) {
              Merged.Trail = S1.Trail;
              Merged.Trail.push_back(
                  {I->cond()->loc(), "branches merged (defer)"});
            }
            Results.push_back(PathResult::success(
                Merged, Arena.ite(G, T.Value, F.Value)));
          }
        }
        return Results;
      });
}

std::vector<PathResult> SymExecutor::execApp(const AppExpr *A,
                                             const SymEnv &Env, SymState S) {
  return andThen(
      exec(A->fn(), Env, S),
      [&](SymState S1, const SymExpr *Fn) -> std::vector<PathResult> {
        if (!Fn->type()->isFun())
          return {PathResult::failure(S1, A->loc(),
                                      "application of non-function symbolic "
                                      "value of type " +
                                          Fn->type()->str())};
        if (Fn->kind() != SymKind::Closure)
          // The analogue of Otter's limited support for symbolic function
          // pointers (Section 4.5, Case 4): a function value with no known
          // body cannot be executed. Wrapping the call in a typed block is
          // the paper's remedy.
          return {PathResult::failure(
              S1, A->loc(),
              "cannot symbolically execute a call through a symbolic "
              "function value; wrap the call in a typed block")};
        return andThen(
            exec(A->arg(), Env, S1),
            [&](SymState S2, const SymExpr *Arg) -> std::vector<PathResult> {
              const FunExpr *F = Arena.closureFun(Fn);
              if (Arg->type() != F->paramType())
                return {PathResult::failure(
                    S2, A->loc(),
                    "argument has type " + Arg->type()->str() +
                        " but function expects " + F->paramType()->str())};
              SymEnv CalleeEnv = Arena.closureEnv(Fn);
              CalleeEnv[F->param()] = Arg;
              return andThen(
                  exec(F->body(), CalleeEnv, S2),
                  [&](SymState S3,
                      const SymExpr *Ret) -> std::vector<PathResult> {
                    if (Ret->type() != F->resultType())
                      return {PathResult::failure(
                          S3, A->loc(),
                          "function body produced " + Ret->type()->str() +
                              " but declares result type " +
                              F->resultType()->str())};
                    return {PathResult::success(S3, Ret)};
                  });
            });
      });
}

std::vector<PathResult> SymExecutor::execTypedBlock(const BlockExpr *B,
                                                    const SymEnv &Env,
                                                    SymState S) {
  // SETypBlock (Figure 4): |- Sigma : Gamma, |- m ok, Gamma |- e : tau;
  // the block evaluates to a fresh alpha : tau and memory is havocked to
  // a fresh mu' (the typed code may have made arbitrary well-typed
  // writes).
  if (!TypedOracle)
    return {PathResult::failure(S, B->loc(),
                                "typed block is not allowed here (no type "
                                "checker attached)")};
  if (!checkMemoryOk(S.Mem).Ok)
    return {PathResult::failure(S, B->loc(),
                                "memory is not consistently typed at typed "
                                "block entry (|- m ok fails)")};
  const Type *Tau = TypedOracle->typeOfTypedBlock(B, Env, S);
  if (!Tau)
    return {PathResult::failure(S, B->loc(),
                                "typed block failed to type check")};
  SymState S1 = S;
  S1.Mem = havocForTypedBlock(B, Env, S.Mem);
  const SymExpr *Result = Arena.freshVar(Tau);
  // Refinement-typed oracles can constrain the fresh result (e.g. a
  // `pos int` block result satisfies alpha > 0).
  if (const SymExpr *Guard =
          TypedOracle->refineTypedBlockResult(B, Result, Arena)) {
    assert(Guard->type()->isBool() && "refinement guard must be boolean");
    extendPath(S1, Guard);
  }
  return {PathResult::success(S1, Result)};
}

const MemNode *SymExecutor::havocForTypedBlock(const BlockExpr *B,
                                               const SymEnv &Env,
                                               const MemNode *Mem) {
  CHavocs.inc();
  if (Opts.Trace)
    Opts.Trace->instant("sym.havoc", "sym");
  if (Opts.Havoc == SymExecOptions::HavocPolicy::FullMemory)
    // The paper's rule: "we conservatively set the memory of the output
    // state to a fresh mu'".
    return Arena.freshBaseMemory();

  // The Section 3.2 effect refinement: havoc only what the block can
  // write. Unknown effects (computed targets, applications) fall back to
  // the full havoc.
  WriteEffects Effects = computeWriteEffects(B->body());
  if (Effects.MayWriteUnknown)
    return Arena.freshBaseMemory();

  const MemNode *Result = Mem;
  for (const std::string &Name : Effects.Vars) {
    auto It = Env.find(Name);
    if (It == Env.end())
      continue; // unbound: the type checker will have rejected the block
    const SymExpr *Target = It->second;
    if (!Target->type()->isRef())
      continue; // ill-typed write: ditto
    // The typed code may have stored any well-typed value there.
    Result = Arena.update(Result, Target,
                          Arena.freshVar(Target->type()->pointee()));
  }
  return Result;
}
