//===--- Effects.h - Write-effect inference for typed blocks ----*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The effect refinement the paper sketches in Section 3.2: "if we were
/// to use a type and effect system rather than just a type system, we
/// could avoid introducing a completely fresh memory mu' in SETypBlock —
/// instead, we could find the effect of e and limit applying this 'havoc'
/// operation only to locations that could have been changed."
///
/// computeWriteEffects() conservatively over-approximates the set of
/// *outer* variables whose referent a typed block may write:
///
///  - `x := e` with x free in the block writes x's cell;
///  - `x := e` where x is block-local and bound by `let x = ref ...`
///    writes a block-local allocation, invisible outside;
///  - `x := e` where x is block-local but bound to anything else may
///    alias an outer cell: unknown effect;
///  - writes through computed targets (`!p := e`) and any function
///    application are unknown effects (the callee may write anything).
///
/// An unknown effect forces the full havoc of the original SETypBlock
/// rule, so the refinement is sound by construction; the property tests
/// in tests/SoundnessTest.cpp check this end to end.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_SYMEXEC_EFFECTS_H
#define MIX_SYMEXEC_EFFECTS_H

#include "lang/Ast.h"

#include <set>
#include <string>

namespace mix {

/// The write effect of an expression.
struct WriteEffects {
  /// Some write's target could not be resolved: the block may modify any
  /// location, and callers must fall back to a full havoc.
  bool MayWriteUnknown = false;
  /// Free variables whose referent the expression may write.
  std::set<std::string> Vars;
};

/// Computes the write effect of \p E (typically a typed block's body).
WriteEffects computeWriteEffects(const Expr *E);

} // namespace mix

#endif // MIX_SYMEXEC_EFFECTS_H
