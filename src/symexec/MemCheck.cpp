//===--- MemCheck.cpp - The memory consistency judgment |- m ok ----------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "symexec/MemCheck.h"

#include <algorithm>

using namespace mix;

MemCheckResult mix::checkMemoryOk(const MemNode *Mem) {
  // Collect the update/alloc chain newest-first, stopping at the spine's
  // terminal node (Base or Ite).
  std::vector<const MemNode *> Chain;
  const MemNode *Cursor = Mem;
  while (Cursor->kind() == MemKind::Update || Cursor->kind() == MemKind::Alloc) {
    Chain.push_back(Cursor);
    Cursor = Cursor->previous();
  }

  MemCheckResult Result;

  // A conditional memory at the spine's end: both branches must be ok
  // (Empty-Ok generalized conservatively).
  if (Cursor->kind() == MemKind::Ite) {
    MemCheckResult Then = checkMemoryOk(Cursor->thenMemory());
    MemCheckResult Else = checkMemoryOk(Cursor->elseMemory());
    if (!Then.Ok) {
      Result.Ok = false;
      Result.BadWrites.insert(Result.BadWrites.end(), Then.BadWrites.begin(),
                              Then.BadWrites.end());
    }
    if (!Else.Ok) {
      Result.Ok = false;
      Result.BadWrites.insert(Result.BadWrites.end(), Else.BadWrites.begin(),
                              Else.BadWrites.end());
    }
  }
  // else: Base is Empty-Ok — an arbitrary memory is consistently typed.

  // Replay the log oldest-first, maintaining the set U of inconsistent
  // writes (Arbitrary-NotOk / Overwrite-Ok / Alloc-Ok of Figure 3).
  std::vector<const MemNode *> U;
  for (auto It = Chain.rbegin(), E = Chain.rend(); It != E; ++It) {
    const MemNode *Entry = *It;
    const Type *AddrTy = Entry->address()->type();
    assert(AddrTy->isRef() && "memory log address must be ref-typed");
    bool WellTyped = Entry->value()->type() == AddrTy->pointee();

    if (Entry->kind() == MemKind::Alloc) {
      // Alloc-Ok: allocations are created well-typed by SERef; an
      // ill-typed one (impossible via SymArena's executor path, but
      // constructible by clients) is treated like an arbitrary write.
      if (!WellTyped)
        U.push_back(Entry);
      continue;
    }

    if (WellTyped) {
      // Overwrite-Ok: forgive earlier ill-typed writes to a syntactically
      // identical address (pointer equality thanks to hash-consing).
      const SymExpr *Addr = Entry->address();
      U.erase(std::remove_if(U.begin(), U.end(),
                             [Addr](const MemNode *Bad) {
                               return Bad->address() == Addr;
                             }),
              U.end());
    } else {
      // Arbitrary-NotOk: record the inconsistent write.
      U.push_back(Entry);
    }
  }

  if (!U.empty()) {
    Result.Ok = false;
    Result.BadWrites.insert(Result.BadWrites.end(), U.begin(), U.end());
  }
  return Result;
}
