//===--- SymToSmt.cpp - Symbolic-expression to solver translation ---------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "sym/SymToSmt.h"

using namespace mix;
using smt::Term;

const Term *SymToSmt::translate(const SymExpr *E) {
  auto It = Cache.find(E);
  if (It != Cache.end())
    return It->second;
  const Term *T = translateUncached(E);
  Cache[E] = T;
  return T;
}

const Term *SymToSmt::varTerm(const SymExpr *E) {
  // Booleans get boolean solver variables; ints, refs (addresses), and
  // functions get integer-sorted ones.
  std::string Name = Syms.varName(E->varId());
  if (Name.empty())
    Name = "a" + std::to_string(E->varId());
  if (E->type()->isBool())
    return Terms.freshBoolVar(Name);
  return Terms.freshIntVar(Name);
}

const Term *SymToSmt::opaqueTerm(const SymExpr *E) {
  if (E->type()->isBool())
    return Terms.freshBoolVar("sel");
  return Terms.freshIntVar("sel");
}

const Term *SymToSmt::translateUncached(const SymExpr *E) {
  switch (E->kind()) {
  case SymKind::Var:
    return varTerm(E);
  case SymKind::IntConst:
    return Terms.intConst(E->intValue());
  case SymKind::BoolConst:
    return Terms.boolConst(E->boolValue());
  case SymKind::Add:
    return Terms.add(translate(E->operand(0)), translate(E->operand(1)));
  case SymKind::Sub:
    return Terms.sub(translate(E->operand(0)), translate(E->operand(1)));
  case SymKind::Eq: {
    const Term *L = translate(E->operand(0));
    const Term *R = translate(E->operand(1));
    if (L->isBool())
      return Terms.eqBool(L, R);
    return Terms.eqInt(L, R);
  }
  case SymKind::Lt:
    return Terms.lt(translate(E->operand(0)), translate(E->operand(1)));
  case SymKind::Le:
    return Terms.le(translate(E->operand(0)), translate(E->operand(1)));
  case SymKind::Not:
    return Terms.notTerm(translate(E->operand(0)));
  case SymKind::And:
    return Terms.andTerm(translate(E->operand(0)), translate(E->operand(1)));
  case SymKind::Or:
    return Terms.orTerm(translate(E->operand(0)), translate(E->operand(1)));
  case SymKind::Ite:
    return Terms.ite(translate(E->operand(0)), translate(E->operand(1)),
                     translate(E->operand(2)));
  case SymKind::Select:
    // Deferred memory reads are opaque to the solver; hash-consing makes
    // identical reads share one variable (memoized via the cache).
    return opaqueTerm(E);
  case SymKind::Closure:
    // Function values never occur in arithmetic; an opaque handle is all
    // the solver needs.
    return Terms.intConst((long long)E->closureId());
  }
  assert(false && "unhandled symbolic expression kind");
  return Terms.intConst(0);
}
