//===--- SymExpr.cpp - Typed symbolic expressions and memories ------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "sym/SymExpr.h"

using namespace mix;

std::string SymExpr::str() const {
  auto Typed = [this](std::string Bare) {
    return "(" + Bare + "):" + Ty->str();
  };
  switch (Kind) {
  case SymKind::Var:
    return "a" + std::to_string(Value) + ":" + Ty->str();
  case SymKind::IntConst:
    return std::to_string(Value) + ":int";
  case SymKind::BoolConst:
    return std::string(Value ? "true" : "false") + ":bool";
  case SymKind::Add:
    return Typed(operand(0)->str() + " + " + operand(1)->str());
  case SymKind::Sub:
    return Typed(operand(0)->str() + " - " + operand(1)->str());
  case SymKind::Eq:
    return Typed(operand(0)->str() + " = " + operand(1)->str());
  case SymKind::Lt:
    return Typed(operand(0)->str() + " < " + operand(1)->str());
  case SymKind::Le:
    return Typed(operand(0)->str() + " <= " + operand(1)->str());
  case SymKind::Not:
    return Typed("not " + operand(0)->str());
  case SymKind::And:
    return Typed(operand(0)->str() + " and " + operand(1)->str());
  case SymKind::Or:
    return Typed(operand(0)->str() + " or " + operand(1)->str());
  case SymKind::Ite:
    return Typed(operand(0)->str() + " ? " + operand(1)->str() + " : " +
                 operand(2)->str());
  case SymKind::Select:
    return Typed(Mem->str() + "[" + operand(0)->str() + "]");
  case SymKind::Closure:
    return "<closure" + std::to_string(Value) + ">:" + Ty->str();
  }
  return "<invalid-symexpr>";
}

std::string MemNode::str() const {
  switch (Kind) {
  case MemKind::Base:
    return "mu" + std::to_string(Id);
  case MemKind::Update:
    return Prev->str() + ",(" + Addr->str() + " -> " + Val->str() + ")";
  case MemKind::Alloc:
    return Prev->str() + ",(" + Addr->str() + " ->a " + Val->str() + ")";
  case MemKind::Ite:
    return "(" + Addr->str() + " ? " + Prev->str() + " : " + Else->str() +
           ")";
  }
  return "<invalid-memory>";
}
